// Package morphstreamr_test hosts the top-level benchmark harness: one
// testing.B benchmark per figure of the paper's evaluation (Section VIII),
// each driving the same experiment code as cmd/msrbench at a reduced
// scale, plus per-mechanism runtime/recovery micro-benchmarks.
//
// Run everything with
//
//	go test -bench=. -benchmem
//
// and regenerate the full-scale tables with
//
//	go run ./cmd/msrbench all
package morphstreamr_test

import (
	"fmt"
	"testing"

	"morphstreamr/internal/bench"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/workload"
)

// quick returns the reduced benchmark scale.
func quick() bench.Scale { return bench.QuickScale() }

// BenchmarkFig2 reproduces Figure 2: all fault-tolerance approaches on
// Streaming Ledger (runtime throughput and recovery time).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig2(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			msr := r.Runs[ftapi.MSR]
			b.ReportMetric(msr.RecoveryTime().Seconds()*1000, "msr-rec-ms")
			b.ReportMetric(msr.RuntimeThroughput, "msr-ev/s")
		}
	}
}

// BenchmarkFig9 reproduces Figure 9: workload-aware log commitment.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(quick(), []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 reproduces Figure 11a-c: recovery-time breakdowns.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11d reproduces Figure 11d: the factor analysis of
// MorphStreamR's recovery optimizations.
func BenchmarkFig11d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11d(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12a reproduces Figure 12a: runtime throughput comparison.
func BenchmarkFig12a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12a(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12b reproduces Figure 12b: selective-logging efficiency.
func BenchmarkFig12b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12b(quick(), []float64{0.1, 0.5, 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12c reproduces Figure 12c: artifact memory footprint.
func BenchmarkFig12c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12c(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12d reproduces Figure 12d: runtime overhead breakdown.
func BenchmarkFig12d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12d(quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 reproduces Figure 13: recovery scalability with cores.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig13(quick(), []int{1, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14a reproduces Figure 14a: multi-partition sensitivity.
func BenchmarkFig14a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig14a(quick(), []float64{0, 0.5, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14b reproduces Figure 14b: skewness sensitivity.
func BenchmarkFig14b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig14b(quick(), []float64{0, 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14c reproduces Figure 14c: abort-ratio sensitivity.
func BenchmarkFig14c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig14c(quick(), []float64{0, 0.4, 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntime measures steady-state runtime throughput per
// fault-tolerance scheme on Streaming Ledger (the per-scheme view of
// Figure 12a).
func BenchmarkRuntime(b *testing.B) {
	for _, kind := range ftapi.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			scale := quick()
			for i := 0; i < b.N; i++ {
				run, err := bench.Execute(bench.Scenario{
					Gen:   func() workload.Generator { return bench.SLFor(scale, 1) },
					Kind:  kind,
					Scale: scale,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(run.RuntimeThroughput, "ev/s")
				}
			}
		})
	}
}

// BenchmarkRecovery measures recovery throughput per scheme and workload
// (the per-scheme view of Figures 11 and 13).
func BenchmarkRecovery(b *testing.B) {
	kinds := []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	for _, app := range bench.Apps() {
		for _, kind := range kinds {
			b.Run(fmt.Sprintf("%s/%v", app.Name, kind), func(b *testing.B) {
				scale := quick()
				for i := 0; i < b.N; i++ {
					run, err := bench.Execute(bench.Scenario{
						Gen:   func() workload.Generator { return app.Make(scale, 1) },
						Kind:  kind,
						Scale: scale,
					})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(run.RecoveryThroughput(), "rec-ev/s")
						b.ReportMetric(run.RecoveryTime().Seconds()*1000, "rec-ms")
					}
				}
			})
		}
	}
}
