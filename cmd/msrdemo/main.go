// Command msrdemo runs a single process-crash-recover scenario and prints
// a detailed report: the playground counterpart to cmd/msrbench's fixed
// figures.
//
// Usage:
//
//	msrdemo [flags]
//
//	-app SL|GS|TP      workload (default SL)
//	-ft NAT|CKPT|WAL|DL|LV|MSR
//	-workers N         parallelism (default 4)
//	-batch N           events per epoch (default 4096)
//	-snapshot N        epochs per checkpoint (default 8)
//	-commit N          log commitment epoch (default 1)
//	-post N            epochs processed after the checkpoint (default 4)
//	-auto              workload-aware log commitment (MSR)
//	-seed N            generator seed (default 1)
//	-obs ADDR          serve live telemetry (/metrics, /trace, pprof) during the run
//	-trace PATH        write a Chrome trace_event JSON of the run
//	-profile           profile the recovery replay (per-worker virtual timelines;
//	                   with -obs the full profile is served at /recovery)
//	-linger            keep serving -obs after the demo completes (Ctrl-C to exit)
package main

import (
	"flag"
	"fmt"
	"os"

	"morphstreamr/internal/core"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/vtime"
	"morphstreamr/internal/workload"
)

func main() {
	appName := flag.String("app", "SL", "workload: SL, GS, or TP")
	ftName := flag.String("ft", "MSR", "fault tolerance: NAT, CKPT, WAL, DL, LV, MSR")
	workers := flag.Int("workers", 4, "worker parallelism")
	batch := flag.Int("batch", 4096, "events per epoch")
	snapshot := flag.Int("snapshot", 8, "epochs per checkpoint")
	commit := flag.Int("commit", 1, "log commitment epoch")
	post := flag.Int("post", 4, "epochs after the checkpoint (the recovery volume)")
	auto := flag.Bool("auto", false, "workload-aware log commitment (MSR)")
	seed := flag.Int64("seed", 1, "generator seed")
	obsAddr := flag.String("obs", "", "serve live telemetry (/metrics, /trace, pprof) on this address")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this path")
	profile := flag.Bool("profile", false, "profile the recovery replay (served at /recovery with -obs)")
	linger := flag.Bool("linger", false, "keep serving -obs after the demo completes")
	flag.Parse()

	var observer *obs.Observer
	var srv *obs.Server
	if *obsAddr != "" || *tracePath != "" {
		observer = obs.NewObserver(2, 1<<14)
	}
	if *obsAddr != "" {
		var err error
		srv, err = obs.Serve(*obsAddr, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry at http://%s/metrics and /trace\n", srv.URL())
	}
	if *linger && *obsAddr != "" {
		defer func() {
			fmt.Fprintf(os.Stderr, "lingering on http://%s (Ctrl-C to exit)\n", srv.URL())
			select {}
		}()
	}
	if *tracePath != "" {
		defer func() {
			events, dropped := observer.T().Drain()
			f, err := os.Create(*tracePath)
			if err == nil {
				err = obs.ExportChrome(f, events, dropped)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d spans)\n", *tracePath, len(events))
		}()
	}

	kind, err := ftapi.ParseKind(*ftName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var gen workload.Generator
	switch *appName {
	case "SL":
		p := workload.DefaultSLParams()
		p.Seed, p.Partitions = *seed, *workers
		gen = workload.NewSL(p)
	case "GS":
		p := workload.DefaultGSParams()
		p.Seed, p.Partitions = *seed, *workers
		gen = workload.NewGS(p)
	case "TP":
		p := workload.DefaultTPParams()
		p.Seed, p.Partitions = *seed, *workers
		gen = workload.NewTP(p)
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q (want SL, GS, or TP)\n", *appName)
		os.Exit(2)
	}

	var prof *vtime.Profiler
	if *profile {
		prof = vtime.NewProfiler(*workers)
	}
	sys, err := core.New(gen.App(), core.Config{
		RunShape: core.RunShape{
			Workers:       *workers,
			CommitEvery:   *commit,
			SnapshotEvery: *snapshot,
			AutoCommit:    *auto,
		},
		FT:               kind,
		BatchSize:        *batch,
		SSDModel:         true,
		Obs:              observer,
		RecoveryProfiler: prof,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	total := *snapshot + *post
	fmt.Printf("%s under %v: %d epochs x %d events, snapshot at %d, crash at %d\n",
		gen.App().Name(), kind, total, *batch, *snapshot, total)
	for i := 0; i < total; i++ {
		if err := sys.ProcessBatch(workload.Batch(gen, *batch)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nruntime:\n")
	fmt.Printf("  throughput        %.0f events/s\n", sys.Engine.Throughput())
	fmt.Printf("  ft overhead       %v\n", sys.Engine.Runtime())
	fmt.Printf("  commit epoch      %d\n", sys.Engine.CommitEvery())
	fmt.Printf("  outputs delivered %d (pending %d)\n",
		len(sys.Engine.Delivered()), sys.Engine.PendingOutputs())
	bw := sys.Cfg.Device.BytesWritten()
	fmt.Printf("  durable bytes     %d (", storage.SumBytes(bw))
	for i, name := range storage.SortedNames(bw) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s %d", name, bw[name])
	}
	fmt.Println(")")

	if kind == ftapi.NAT {
		fmt.Println("\nnative execution persists nothing; no recovery to demonstrate")
		return
	}

	sys.Crash()
	fmt.Println("\n*** crash ***")
	recovered, report, err := sys.Recover()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nrecovery:\n")
	fmt.Printf("  snapshot epoch    %d\n", report.SnapshotEpoch)
	fmt.Printf("  committed epoch   %d\n", report.CommittedEpoch)
	fmt.Printf("  events replayed   %d\n", report.EventsReplayed)
	fmt.Printf("  simulated wall    %v (at %d workers)\n", report.SimWall().Round(0), report.Workers)
	fmt.Printf("  throughput        %.0f events/s\n", report.Throughput())
	fmt.Printf("  breakdown (per-worker):\n")
	bd := report.Breakdown.PerWorker(report.Workers)
	for _, c := range bd.Components() {
		fmt.Printf("    %-10s %v\n", c.Name, c.D)
	}
	if p := report.Profile; p != nil {
		fmt.Printf("  profile (virtual): timeline %v, critical path %v, cp-ratio %.3f, stall %.1f%%, drain %.1f%%, %d phases\n",
			p.Timeline.Round(0), p.CritPath.Round(0), p.CPRatio,
			100*p.StallShare(), 100*p.DrainShare(), len(p.Phases))
		if *obsAddr != "" {
			fmt.Fprintf(os.Stderr, "full recovery profile at http://%s/recovery\n", *obsAddr)
		}
	}
	fmt.Printf("\nresumed at epoch %d; the engine is live again\n", recovered.Engine.Epoch())
}
