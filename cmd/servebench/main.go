// Command servebench measures the network serving layer under chaos: for
// every internal/serve chaos cell it drives live TCP clients against an
// ingestion front-end backed by a sharded group, injects the cell's faults
// (shard kills, reconnect storms, slow consumers, half-open connections),
// and records client-observed MTTR, ack-lag percentiles, backpressure and
// eviction counts, and — the acceptance gate — the exactly-once audit
// verdict across every kill-and-heal. The committed report is the serving
// layer's record next to the engine-level chaos numbers; regenerate after
// serve changes with:
//
//	go run ./cmd/servebench -o BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/serve"
)

// Report is the file layout of BENCH_serve.json.
type Report struct {
	GoVersion  string               `json:"go_version"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Shards     int                  `json:"shards"`
	Tenants    int                  `json:"tenants"`
	Batches    int                  `json:"batches_per_tenant"`
	Note       string               `json:"note"`
	Cells      []*serve.ChaosReport `json:"cells"`
}

// killCells marks the cells whose faults include at least one shard or
// group kill; these must report a client-observed MTTR.
var killCells = map[string]bool{
	serve.CellKillHeal:       true,
	serve.CellReconnectStorm: true,
	serve.CellSlowConsumer:   true,
	serve.CellHalfOpen:       true,
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output path for the JSON report")
	quick := flag.Bool("quick", false, "smaller stream per tenant (CI smoke)")
	shards := flag.Int("shards", 2, "shard-group fan-out behind the server")
	tenants := flag.Int("tenants", 3, "well-behaved tenants driving traffic")
	batches := flag.Int("batches", 40, "batches per tenant")
	events := flag.Int("events", 8, "events per batch")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	if *quick {
		*batches = 16
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     *shards,
		Tenants:    *tenants,
		Batches:    *batches,
		Note: "Each cell is one internal/serve.Chaos run: live TCP clients " +
			"submit per-tenant batch streams through the ingestion front-end " +
			"onto a sharded group while the cell's faults fire (shard and " +
			"group kills at progress gates, connection severs, a rogue " +
			"never-reading client, half-open handshakes). client_mttr_ms is " +
			"the worst kill-to-first-observed-ack interval as seen by a " +
			"client, including reconnect and HelloAck watermark recovery. " +
			"violations sums duplicate acks, ack-order regressions, and " +
			"exactly-once audit failures (every acked batch's events applied " +
			"exactly once across all incarnations); the acceptance gate is " +
			"violations == 0 in every cell.",
	}

	failed := false
	for _, cell := range serve.Cells() {
		cr, err := serve.Chaos(serve.ChaosConfig{
			Cell: cell, Seed: *seed, Shards: *shards, Kind: ftapi.WAL,
			Tenants: *tenants, Batches: *batches, BatchEvents: *events,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: %s: %v\n", cell, err)
			failed = true
		}
		if cr == nil {
			cr = &serve.ChaosReport{Cell: cell, Err: "no report"}
		}
		rep.Cells = append(rep.Cells, cr)
		fmt.Fprintf(os.Stderr, "%-16s acked %3d  kills=%d heals=%d evict=%d reconn=%d  mttr %6.1f ms  p99 lag %6.1f ms  violations=%d\n",
			cell, cr.AckedBatches, cr.Kills, cr.Heals, cr.Evictions, cr.Reconnects,
			cr.ClientMTTRMs, cr.P99AckLagMs, cr.Violations)
		if cr.Violations != 0 {
			fmt.Fprintf(os.Stderr, "servebench: %s: %d violations (dup=%d order=%d exactly-once=%d)\n",
				cell, cr.Violations, cr.DupAcks, cr.OrderViol, cr.ExactlyOnce)
			failed = true
		}
		if killCells[cell] && cr.ClientMTTRMs <= 0 {
			fmt.Fprintf(os.Stderr, "servebench: %s: kill cell reported no client-observed MTTR\n", cell)
			failed = true
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Cells))
	if failed {
		os.Exit(1)
	}
}
