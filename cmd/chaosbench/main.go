// Command chaosbench measures the self-healing runtime: for every
// fault-tolerance mechanism and chaos scenario it drives a supervised run
// through internal/ft/crashtest.Chaos and records detection latency, MTTR
// (detection to resumed live processing), transient-retry absorption, and
// whether the supervised recovery matched the offline crashtest path. The
// committed report is the online-recovery record next to the paper's
// offline replay numbers; regenerate it after supervisor changes with:
//
//	go run ./cmd/chaosbench -o BENCH_chaos.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"morphstreamr/internal/ft/crashtest"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Entry is one measured (mechanism, scenario, pipelined) cell: the median
// sample by MTTR, with detection/MTTR extremes across samples.
type Entry struct {
	Kind      string `json:"kind"`
	Scenario  string `json:"scenario"`
	Pipelined bool   `json:"pipelined"`
	// Shards is the group fan-out of shard-kill cells (0 for single-engine
	// scenarios).
	Shards  int `json:"shards,omitempty"`
	Samples int `json:"samples"`

	Recoveries int `json:"recoveries"`
	// DetectionUs is fault occurrence to supervisor detection (zero when
	// the fault healed below the supervisor).
	DetectionUs    float64 `json:"detection_us"`
	MinDetectionUs float64 `json:"min_detection_us"`
	// MTTRUs is detection to recovery complete and the stream resumed.
	MTTRUs    float64 `json:"mttr_us"`
	MinMTTRUs float64 `json:"min_mttr_us"`
	MaxMTTRUs float64 `json:"max_mttr_us"`
	// Retries and Absorbed count transient-retry work across the run.
	Retries  int64 `json:"retries"`
	Absorbed int64 `json:"absorbed"`
	// EventsReplayed is the recovery's replay volume (fatal/panic heals).
	EventsReplayed int `json:"events_replayed"`
	// OfflineMatch reports supervised-vs-offline recovery agreement
	// (meaningful for fatal-heal; vacuously true otherwise).
	OfflineMatch bool `json:"offline_match"`
	// WallUs is the whole supervised run's wall clock.
	WallUs float64 `json:"wall_us"`
}

// Report is the file layout of BENCH_chaos.json.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Epochs     int     `json:"epochs"`
	EpochSize  int     `json:"epoch_size"`
	Note       string  `json:"note"`
	Entries    []Entry `json:"entries"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// measure runs one chaos cell `repeat` times and keeps the median sample
// by MTTR (wall-clock healing time on a shared host is noisy; the median
// is the honest central estimate), plus min/max spread.
func measure(kind ftapi.Kind, sc crashtest.Scenario, pipelined bool, epochs, epochSize, repeat int, o *obs.Observer) (Entry, error) {
	outs := make([]*crashtest.ChaosOutcome, 0, repeat)
	for i := 0; i < repeat; i++ {
		out, err := crashtest.Chaos(crashtest.ChaosConfig{
			Config: crashtest.Config{
				Kind:      kind,
				NewGen:    func() workload.Generator { return fttest.SLGen(79) },
				Epochs:    epochs,
				EpochSize: epochSize,
				RunShape:  types.RunShape{Pipeline: pipelined},
			},
			Scenario: sc,
			Obs:      o,
		})
		if err != nil {
			return Entry{}, err
		}
		outs = append(outs, out)
	}
	// Insertion-sort by MTTR; repeat is tiny.
	for i := 1; i < len(outs); i++ {
		for j := i; j > 0 && outs[j].MTTR < outs[j-1].MTTR; j-- {
			outs[j], outs[j-1] = outs[j-1], outs[j]
		}
	}
	med := outs[len(outs)/2]
	e := Entry{
		Kind:           kind.String(),
		Scenario:       sc.String(),
		Pipelined:      pipelined,
		Samples:        len(outs),
		Recoveries:     med.Recoveries,
		DetectionUs:    us(med.Detection),
		MinDetectionUs: us(med.Detection),
		MTTRUs:         us(med.MTTR),
		MinMTTRUs:      us(outs[0].MTTR),
		MaxMTTRUs:      us(outs[len(outs)-1].MTTR),
		Retries:        med.RetryStats.Retries,
		Absorbed:       med.RetryStats.Absorbed,
		OfflineMatch:   med.OfflineMatch,
		WallUs:         us(med.Wall),
	}
	for _, o := range outs {
		if o.Detection > 0 && us(o.Detection) < e.MinDetectionUs {
			e.MinDetectionUs = us(o.Detection)
		}
	}
	if len(med.Reports) > 0 {
		e.EventsReplayed = med.Reports[0].EventsReplayed
	}
	return e, nil
}

// measureShardKill runs the single-shard-kill cell `repeat` times and
// keeps the median sample by group MTTR: one shard's device dies fatally
// under sustained group ingestion, the survivors keep committing, and the
// coordinator heals the dead shard in place (internal/ft/crashtest.ShardChaos,
// which also verifies the whole run against the sharded oracle).
func measureShardKill(kind ftapi.Kind, shards, kill, epochs, epochSize, repeat int) (Entry, error) {
	outs := make([]*crashtest.ShardChaosOutcome, 0, repeat)
	for i := 0; i < repeat; i++ {
		out, err := crashtest.ShardChaos(crashtest.ShardChaosConfig{
			Config: crashtest.Config{
				Kind:      kind,
				NewGen:    func() workload.Generator { return fttest.GSGen(43) },
				Epochs:    epochs,
				EpochSize: epochSize,
			},
			Shards:    shards,
			KillShard: kill,
			// Die mid-run (roughly epoch 5 of 10 at this write cadence) so
			// the heal's recovery has committed epochs to replay.
			FaultAt: 12,
		})
		if err != nil {
			return Entry{}, err
		}
		outs = append(outs, out)
	}
	for i := 1; i < len(outs); i++ {
		for j := i; j > 0 && outs[j].MTTR < outs[j-1].MTTR; j-- {
			outs[j], outs[j-1] = outs[j-1], outs[j]
		}
	}
	med := outs[len(outs)/2]
	e := Entry{
		Kind:         kind.String(),
		Scenario:     "shard-kill",
		Shards:       shards,
		Samples:      len(outs),
		Recoveries:   1,
		MTTRUs:       us(med.MTTR),
		MinMTTRUs:    us(outs[0].MTTR),
		MaxMTTRUs:    us(outs[len(outs)-1].MTTR),
		OfflineMatch: true, // ShardChaos verifies against the sharded oracle
	}
	if med.Report != nil {
		e.EventsReplayed = med.Report.EventsReplayed
	}
	return e, nil
}

func main() {
	out := flag.String("o", "BENCH_chaos.json", "output path for the JSON report")
	repeat := flag.Int("repeat", 5, "samples per cell; the median by MTTR is kept")
	epochs := flag.Int("epochs", 10, "epochs per run")
	epochSize := flag.Int("epochsize", 48, "events per epoch")
	obsAddr := flag.String("obs", "", "serve live telemetry (/metrics, /trace, pprof) on this address, e.g. :9090")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the whole run to this path")
	flag.Parse()

	var observer *obs.Observer
	if *obsAddr != "" || *tracePath != "" {
		// Lane 0 carries the engine driver and supervisor heals, lane 1 the
		// pipelined builder; size the rings for a full multi-cell run.
		observer = obs.NewObserver(2, 1<<16)
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry at http://%s/metrics and /trace\n", srv.URL())
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Epochs:     *epochs,
		EpochSize:  *epochSize,
		Note: "Each cell is one supervised chaos run (internal/ft/crashtest.Chaos): " +
			"a scripted fault storm against a live engine, healed in-process by " +
			"internal/supervisor. detection_us is fault injection to supervisor " +
			"detection; mttr_us is detection to recovery complete and the stream " +
			"resumed. transient-storm cells heal at the retry layer (0 recoveries, " +
			"mttr 0); fatal-heal and mid-epoch-panic cells heal with exactly one " +
			"in-process recovery, verified state- and output-equal to the oracle, " +
			"and fatal-heal additionally verified report-equal to the offline " +
			"crash-point recovery of the same write site. shard-kill cells run a " +
			"4-shard group (internal/shard) with one shard's device dying fatally: " +
			"mttr_us is the group MTTR — shard death detected to the interrupted " +
			"barrier completed and the group live again — while the survivors keep " +
			"committing; the run is verified per shard and globally against the " +
			"sharded oracle.",
	}

	kinds := []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	scenarios := []crashtest.Scenario{crashtest.TransientStorm, crashtest.FatalHeal, crashtest.MidEpochPanic}
	for _, kind := range kinds {
		for _, sc := range scenarios {
			for _, pipelined := range []bool{false, true} {
				e, err := measure(kind, sc, pipelined, *epochs, *epochSize, *repeat, observer)
				if err != nil {
					fmt.Fprintln(os.Stderr, "chaosbench:", err)
					os.Exit(1)
				}
				rep.Entries = append(rep.Entries, e)
				fmt.Fprintf(os.Stderr, "%-5s %-16s pipelined=%-5v: detect %7.0f µs, mttr %7.0f µs, %d recoveries, %d retries\n",
					e.Kind, e.Scenario, e.Pipelined, e.DetectionUs, e.MTTRUs, e.Recoveries, e.Retries)
			}
		}
	}

	// Shard-kill cells: the recoverable mechanisms at a 4-shard fan-out,
	// killing an edge shard and an interior one.
	for _, kind := range kinds {
		for _, kill := range []int{0, 2} {
			e, err := measureShardKill(kind, 4, kill, *epochs, *epochSize, *repeat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaosbench:", err)
				os.Exit(1)
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Fprintf(os.Stderr, "%-5s %-16s shards=4 kill=%d: mttr %7.0f µs, %d replayed\n",
				e.Kind, e.Scenario, kill, e.MTTRUs, e.EventsReplayed)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Entries))

	if *tracePath != "" {
		events, dropped := observer.T().Drain()
		f, err := os.Create(*tracePath)
		if err == nil {
			err = obs.ExportChrome(f, events, dropped)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d dropped)\n", *tracePath, len(events), dropped)
	}
}
