// Command benchtrend folds the per-run benchmark reports
// (BENCH_scheduler.json, BENCH_chaos.json, BENCH_recovery.json,
// BENCH_shard.json, BENCH_serve.json) into one commit-keyed trend file,
// BENCH_trend.json. Each invocation appends (or,
// for a re-run on the same commit, replaces) a point carrying a compact
// summary of every report that exists; the full reports stay the source of
// truth, the trend file is what CI charts and regression checks read.
//
//	go run ./cmd/benchtrend -sha $(git rev-parse --short HEAD)
//
// Missing input reports are skipped with a warning, so the tool works in
// partial checkouts and on CI jobs that only regenerate one report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"
)

// Point is one commit's folded benchmark summary.
type Point struct {
	SHA      string `json:"sha"`
	UnixTime int64  `json:"unix_time"`
	// GoVersion is taken from the first report that records one.
	GoVersion string `json:"go_version,omitempty"`
	// Sources maps report name ("scheduler", "chaos", "recovery") to its
	// summary block. Reports absent at fold time are absent here.
	Sources map[string]map[string]any `json:"sources"`
}

// Trend is the BENCH_trend.json layout.
type Trend struct {
	Note   string  `json:"note"`
	Points []Point `json:"points"`
}

const trendNote = "One point per commit: compact summaries folded from the full benchmark " +
	"reports by cmd/benchtrend. Re-running on the same commit replaces its point. " +
	"Points are ordered oldest-first by fold time; the full BENCH_*.json reports " +
	"remain the source of truth for any number here."

func main() {
	var (
		out       = flag.String("o", "BENCH_trend.json", "trend file to update")
		sha       = flag.String("sha", "", "commit id for this point (default: GITHUB_SHA, then git rev-parse)")
		schedPath = flag.String("scheduler", "BENCH_scheduler.json", "scheduler report (skipped if missing)")
		chaosPath = flag.String("chaos", "BENCH_chaos.json", "chaos report (skipped if missing)")
		recPath   = flag.String("recovery", "BENCH_recovery.json", "recovery report (skipped if missing)")
		shardPath = flag.String("shard", "BENCH_shard.json", "shard report (skipped if missing)")
		servePath = flag.String("serve", "BENCH_serve.json", "serving-layer report (skipped if missing)")
		storePath = flag.String("store", "BENCH_store.json", "segment-store report (skipped if missing)")
		jrnyPath  = flag.String("journey", "BENCH_journey.json", "journey-tracing report (skipped if missing)")
	)
	flag.Parse()

	id := commitID(*sha)
	pt := Point{SHA: id, UnixTime: time.Now().Unix(), Sources: map[string]map[string]any{}}

	fold := func(name, path string, summarize func(map[string]any) map[string]any) {
		doc, err := readReport(path)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "benchtrend: %s: %s not found, skipping\n", name, path)
				return
			}
			fatalf("%s: %v", path, err)
		}
		if pt.GoVersion == "" {
			if v, ok := doc["go_version"].(string); ok {
				pt.GoVersion = v
			}
		}
		pt.Sources[name] = summarize(doc)
	}
	fold("scheduler", *schedPath, summarizeScheduler)
	fold("chaos", *chaosPath, summarizeChaos)
	fold("recovery", *recPath, summarizeRecovery)
	fold("shard", *shardPath, summarizeShard)
	fold("serve", *servePath, summarizeServe)
	fold("store", *storePath, summarizeStore)
	fold("journey", *jrnyPath, summarizeJourney)

	if len(pt.Sources) == 0 {
		fatalf("no benchmark reports found; nothing to fold")
	}

	trend := Trend{Note: trendNote}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &trend); err != nil {
			fatalf("%s exists but is not a trend file: %v", *out, err)
		}
		trend.Note = trendNote
	} else if !os.IsNotExist(err) {
		fatalf("%s: %v", *out, err)
	}

	replaced := false
	for i := range trend.Points {
		if trend.Points[i].SHA == id {
			trend.Points[i] = pt
			replaced = true
			break
		}
	}
	if !replaced {
		trend.Points = append(trend.Points, pt)
	}

	raw, err := json.MarshalIndent(&trend, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatalf("write: %v", err)
	}
	verb := "appended to"
	if replaced {
		verb = "replaced in"
	}
	fmt.Fprintf(os.Stderr, "benchtrend: point %s (%d sources) %s %s (%d points)\n",
		id, len(pt.Sources), verb, *out, len(trend.Points))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtrend: "+format+"\n", args...)
	os.Exit(1)
}

// commitID resolves the point key: explicit flag, then the CI-provided
// GITHUB_SHA, then the working tree's HEAD.
func commitID(flagSHA string) string {
	if flagSHA != "" {
		return flagSHA
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	fatalf("cannot determine commit: pass -sha, set GITHUB_SHA, or run inside a git checkout")
	return ""
}

func readReport(path string) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return doc, nil
}

// entries returns a report's entry list under the given key ("entries",
// "cells") as generic maps.
func entries(doc map[string]any, key string) []map[string]any {
	list, _ := doc[key].([]any)
	out := make([]map[string]any, 0, len(list))
	for _, e := range list {
		if m, ok := e.(map[string]any); ok {
			out = append(out, m)
		}
	}
	return out
}

func num(m map[string]any, key string) (float64, bool) {
	v, ok := m[key].(float64)
	return v, ok
}

func str(m map[string]any, key string) string {
	s, _ := m[key].(string)
	return s
}

// summarizeShard keeps the shard layer's headlines: the acceptance-gate
// verdicts, the gs-local scaling curve, and the recovery speedup per
// fan-out.
func summarizeShard(doc map[string]any) map[string]any {
	out := map[string]any{}
	if checks, ok := doc["checks"].(map[string]any); ok {
		for _, k := range []string{"scaling_8x", "recovery_speedup_4x"} {
			if v, ok := num(checks, k); ok {
				out[k] = v
			}
			if v, ok := checks[k+"_pass"].(bool); ok {
				out[k+"_pass"] = v
			}
		}
	}
	scaling := entries(doc, "scaling")
	out["scaling_cells"] = len(scaling)
	for _, c := range scaling {
		if str(c, "workload") != "gs-local" {
			continue
		}
		if shards, ok := num(c, "shards"); ok {
			if x, ok := num(c, "scaling_x"); ok {
				out[fmt.Sprintf("local_scaling_%dx", int(shards))] = x
			}
		}
	}
	recovery := entries(doc, "recovery")
	out["recovery_cells"] = len(recovery)
	for _, c := range recovery {
		if shards, ok := num(c, "shards"); ok {
			if x, ok := num(c, "speedup_x"); ok {
				out[fmt.Sprintf("recovery_speedup_%dx", int(shards))] = x
			}
		}
	}
	return out
}

// summarizeServe keeps the serving layer's headlines: the total violation
// count across chaos cells (the exactly-once acceptance gate — must stay
// zero), the worst client-observed MTTR over kill cells, and per-cell p99
// ack lag.
func summarizeServe(doc map[string]any) map[string]any {
	cells := entries(doc, "cells")
	out := map[string]any{"cells": len(cells)}
	var violations, heals, evictions float64
	worstMTTR := 0.0
	for _, c := range cells {
		if v, ok := num(c, "violations"); ok {
			violations += v
		}
		if v, ok := num(c, "heals"); ok {
			heals += v
		}
		if v, ok := num(c, "evictions"); ok {
			evictions += v
		}
		if mttr, ok := num(c, "client_mttr_ms"); ok && mttr > worstMTTR {
			worstMTTR = mttr
		}
		if lag, ok := num(c, "p99_ack_lag_ms"); ok {
			out["p99_ack_lag_ms_"+str(c, "cell")] = lag
		}
	}
	out["violations"] = violations
	out["heals"] = heals
	out["evictions"] = evictions
	if worstMTTR > 0 {
		out["max_client_mttr_ms"] = worstMTTR
	}
	return out
}

// summarizeStore keeps the bounded-log headlines: the gate verdicts (replay
// flat and within the segment budget, incremental checkpoints below full),
// the worst replay volume and segment high-water mark, and the delta/base
// byte ratio per table size — the curve a trend chart plots.
func summarizeStore(doc map[string]any) map[string]any {
	out := map[string]any{
		"replay_cells":      len(entries(doc, "replay")),
		"incremental_cells": len(entries(doc, "incremental")),
	}
	if checks, ok := doc["checks"].(map[string]any); ok {
		for _, k := range []string{
			"replay_flat_pass", "replay_within_budget_pass",
			"segments_bounded_pass", "incremental_below_full_pass",
			"ratio_tracks_dirty_fraction_pass",
		} {
			if v, ok := checks[k].(bool); ok {
				out[k] = v
			}
		}
		for _, k := range []string{
			"max_events_replayed", "replay_budget_events",
			"max_live_segments", "segment_budget", "max_delta_over_base",
		} {
			if v, ok := num(checks, k); ok {
				out[k] = v
			}
		}
	}
	for _, c := range entries(doc, "incremental") {
		if rows, ok := num(c, "rows"); ok {
			if r, ok := num(c, "delta_over_base"); ok {
				out[fmt.Sprintf("delta_over_base_rows_%d", int(rows))] = r
			}
		}
	}
	return out
}

// summarizeJourney keeps the tracing headlines: the invariant verdicts
// (decomposition exact and complete, server/client cross-check, sampling-off
// overhead ≤2%) aggregated across every cell, the worst per-stage p99 over
// all cells (the stage-decomposition curve a trend chart plots), the worst
// SLO burn-rate peak, and the overhead percentages.
func summarizeJourney(doc map[string]any) map[string]any {
	cells := entries(doc, "cells")
	out := map[string]any{"cells": len(cells)}
	decompOK, xcheckOK, recoveryAll := true, true, true
	var journeys, recovered, ackViolations, exOnceNonCKPT float64
	maxDecompErr, peakBurn := 0.0, 0.0
	stageP99 := map[string]float64{}
	for _, c := range cells {
		if ok, has := c["decomposition_ok"].(bool); has && !ok {
			decompOK = false
		}
		if ok, has := c["crosscheck_ok"].(bool); has && !ok {
			xcheckOK = false
		}
		if ok, has := c["recovery_observed"].(bool); has && !ok {
			recoveryAll = false
		}
		if v, ok := num(c, "journeys"); ok {
			journeys += v
		}
		if v, ok := num(c, "recovered"); ok {
			recovered += v
		}
		if v, ok := num(c, "dup_acks"); ok {
			ackViolations += v
		}
		if v, ok := num(c, "ack_order_violations"); ok {
			ackViolations += v
		}
		// CKPT's output-union duplicates are by design (checkpoint replay
		// re-delivers); only the other mechanisms gate on them.
		if v, ok := num(c, "exactly_once_violations"); ok && str(c, "kind") != "CKPT" {
			exOnceNonCKPT += v
		}
		if v, ok := num(c, "max_decomp_err_ms"); ok && v > maxDecompErr {
			maxDecompErr = v
		}
		if v, ok := num(c, "slo_peak_burn"); ok && v > peakBurn {
			peakBurn = v
		}
		if stages, ok := c["stages"].(map[string]any); ok {
			for st, raw := range stages {
				if s, ok := raw.(map[string]any); ok {
					if p99, ok := num(s, "p99_ms"); ok && p99 > stageP99[st] {
						stageP99[st] = p99
					}
				}
			}
		}
	}
	out["decomposition_ok"] = decompOK
	out["crosscheck_ok"] = xcheckOK
	out["recovery_observed"] = recoveryAll
	out["journeys"] = journeys
	out["recovered"] = recovered
	out["ack_violations"] = ackViolations
	out["exactly_once_violations_non_ckpt"] = exOnceNonCKPT
	out["max_decomp_err_ms"] = maxDecompErr
	out["slo_peak_burn"] = peakBurn
	stages := make([]string, 0, len(stageP99))
	for st := range stageP99 {
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, st := range stages {
		out["p99_ms_"+strings.ToLower(st)] = stageP99[st]
	}
	if oh, ok := doc["overhead"].(map[string]any); ok {
		if v, ok := oh["ok"].(bool); ok {
			out["overhead_ok"] = v
		}
		if off, ok := oh["sampling_off"].(map[string]any); ok {
			if v, ok := num(off, "overhead_pct"); ok {
				out["sampling_off_overhead_pct"] = v
			}
		}
		if full, ok := oh["full_tracing"].(map[string]any); ok {
			if v, ok := num(full, "overhead_pct"); ok {
				out["full_tracing_overhead_pct"] = v
			}
		}
	}
	return out
}

// summarizeScheduler keeps the headline throughput per implementation:
// the best ops/sec over all (workload, workers) cells, plus the cell count.
func summarizeScheduler(doc map[string]any) map[string]any {
	cells := entries(doc, "entries")
	best := map[string]float64{}
	for _, c := range cells {
		impl := str(c, "impl")
		if ops, ok := num(c, "ops_per_sec"); ok && ops > best[impl] {
			best[impl] = ops
		}
	}
	out := map[string]any{"entries": len(cells)}
	impls := make([]string, 0, len(best))
	for impl := range best {
		impls = append(impls, impl)
	}
	sort.Strings(impls)
	for _, impl := range impls {
		out["max_ops_per_sec_"+impl] = best[impl]
	}
	// Adaptive section: the controller-vs-best-static ratio per trajectory,
	// the headline of the adaptive scheduling bench.
	for _, s := range entries(doc, "adaptive_summary") {
		if ratio, ok := num(s, "adaptive_over_best_static"); ok {
			out["adaptive_over_best_"+str(s, "trajectory")] = ratio
		}
	}
	// Alloc section: the arena pass's worst (smallest) bytes reduction.
	worst, haveAlloc := 0.0, false
	for _, s := range entries(doc, "alloc_summary") {
		if red, ok := num(s, "bytes_reduction"); ok && (!haveAlloc || red < worst) {
			worst, haveAlloc = red, true
		}
	}
	if haveAlloc {
		out["min_alloc_bytes_reduction"] = worst
	}
	return out
}

// summarizeChaos keeps the healing headline: recovery counts, the mean
// MTTR over cells that actually recovered, and whether every cell's
// recovered state matched the oracle.
func summarizeChaos(doc map[string]any) map[string]any {
	cells := entries(doc, "entries")
	var recoveries, mttrCells float64
	var mttrSum float64
	allMatch := true
	for _, c := range cells {
		r, _ := num(c, "recoveries")
		recoveries += r
		if mttr, ok := num(c, "mttr_us"); ok && mttr > 0 {
			mttrSum += mttr
			mttrCells++
		}
		if match, ok := c["offline_match"].(bool); ok && !match {
			allMatch = false
		}
	}
	out := map[string]any{
		"entries":       len(cells),
		"recoveries":    recoveries,
		"offline_match": allMatch,
	}
	if mttrCells > 0 {
		out["mean_mttr_us"] = mttrSum / mttrCells
	}
	return out
}

// summarizeRecovery keeps, per mechanism at the report's main worker
// count, the virtual timeline, stall share, and cp ratio — the numbers a
// trend chart plots — plus the check verdicts and the profiling-off
// overhead measurement.
func summarizeRecovery(doc map[string]any) map[string]any {
	out := map[string]any{}
	mainW := 0.0
	if checks, ok := doc["checks"].(map[string]any); ok {
		mainW, _ = num(checks, "main_workers")
		for _, k := range []string{"decomposition_exact", "wal_single_lane", "msr_lowest_stall", "cp_bound", "overhead_ok"} {
			if v, ok := checks[k].(bool); ok {
				out[k] = v
			}
		}
		if pct, ok := num(checks, "profiling_overhead_pct"); ok {
			out["profiling_overhead_pct"] = pct
		}
	}
	cells := entries(doc, "cells")
	out["cells"] = len(cells)
	for _, c := range cells {
		w, _ := num(c, "workers")
		if w != mainW {
			continue
		}
		kind := strings.ToLower(str(c, "kind"))
		if kind == "" {
			continue
		}
		if v, ok := num(c, "timeline_us"); ok {
			out[kind+"_timeline_us"] = v
		}
		if v, ok := num(c, "stall_share"); ok {
			out[kind+"_stall_share"] = v
		}
		if v, ok := num(c, "cp_ratio"); ok {
			out[kind+"_cp_ratio"] = v
		}
	}
	return out
}
