// Command msrbench regenerates the paper's evaluation figures
// (Section VIII). Each subcommand reproduces one figure as a text table;
// `all` runs the full evaluation.
//
// Usage:
//
//	msrbench [flags] fig2|fig9|fig11|fig11d|fig12a|fig12b|fig12c|fig12d|fig13|fig14a|fig14b|fig14c|all
//
// Flags:
//
//	-batch N      events per epoch (default 4096)
//	-snapshot N   epochs per checkpoint (default 8)
//	-post N       epochs between checkpoint and crash (default 4)
//	-workers N    worker parallelism (default 4)
//	-quick        reduced scale for smoke runs
//	-nossd        disable the SSD performance model
//	-obs ADDR     serve live telemetry (/metrics, /trace, pprof) while figures run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"morphstreamr/internal/bench"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/types"
)

func main() {
	batch := flag.Int("batch", 4096, "events per epoch")
	snapshot := flag.Int("snapshot", 8, "epochs per checkpoint")
	post := flag.Int("post", 4, "epochs between checkpoint and crash")
	workers := flag.Int("workers", 8, "worker parallelism")
	quick := flag.Bool("quick", false, "reduced scale for smoke runs")
	nossd := flag.Bool("nossd", false, "disable the SSD performance model")
	obsAddr := flag.String("obs", "", "serve live telemetry (/metrics, /trace, pprof) on this address while figures run")
	flag.Usage = usage
	flag.Parse()

	scale := bench.Scale{
		RunShape:   types.RunShape{Workers: *workers, SnapshotEvery: *snapshot},
		BatchSize:  *batch,
		PostEpochs: *post,
		SSD:        !*nossd,
	}
	if *quick {
		scale = bench.QuickScale()
	}
	if *obsAddr != "" {
		scale.Obs = obs.NewObserver(2, 1<<15)
		srv, err := obs.Serve(*obsAddr, scale.Obs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry at http://%s/metrics and /trace\n", srv.URL())
	}

	args := flag.Args()
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	figures := map[string]func(bench.Scale) ([]bench.Table, error){
		"fig2":   runFig2,
		"fig9":   runFig9,
		"fig11":  runFig11,
		"fig11d": runFig11d,
		"fig12a": runFig12a,
		"fig12b": runFig12b,
		"fig12c": runFig12c,
		"fig12d": runFig12d,
		"fig13":  runFig13,
		"fig14a": runFig14a,
		"fig14b": runFig14b,
		"fig14c": runFig14c,
		"ext":    runExt,
	}
	order := []string{"fig2", "fig9", "fig11", "fig11d", "fig12a", "fig12b",
		"fig12c", "fig12d", "fig13", "fig14a", "fig14b", "fig14c", "ext"}

	var todo []string
	if args[0] == "all" {
		todo = order
	} else if _, ok := figures[args[0]]; ok {
		todo = []string{args[0]}
	} else {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", args[0])
		usage()
		os.Exit(2)
	}

	for _, name := range todo {
		start := time.Now()
		tables, err := figures[name](scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			printTable(t)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: msrbench [flags] <figure>")
	fmt.Fprintln(os.Stderr, "figures: fig2 fig9 fig11 fig11d fig12a fig12b fig12c fig12d fig13 fig14a fig14b fig14c ext all")
	flag.PrintDefaults()
}

func printTable(t bench.Table) {
	fmt.Println("== " + t.Title)
	if t.Note != "" {
		fmt.Println("   " + t.Note)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	fmt.Println()
}

func runFig2(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig2(s)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}

func runFig9(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig9(s, nil)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

func runFig11(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig11(s)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

func runFig11d(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig11d(s)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}

func runFig12a(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig12a(s)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}

func runFig12b(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig12b(s, nil)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}

func runFig12c(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig12c(s)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}

func runFig12d(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig12d(s)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}

func runFig13(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig13(s, nil)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

func runFig14a(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig14a(s, nil)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table("Figure 14a: impact of multi-partition state transactions")}, nil
}

func runFig14b(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig14b(s, nil)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table("Figure 14b: impact of state access skewness")}, nil
}

func runFig14c(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Fig14c(s, nil)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table("Figure 14c: impact of aborting transactions")}, nil
}

func runExt(s bench.Scale) ([]bench.Table, error) {
	r, err := bench.Ext(s)
	if err != nil {
		return nil, err
	}
	return []bench.Table{r.Table()}, nil
}
