// Command shardbench measures the shard layer's two headline numbers:
// ingest scaling with the shard fan-out, and the parallel-over-serial group
// recovery speedup. Both are reported as simulated walls so the record is
// reproducible on oversubscribed hosts: ingest runs the shards of every
// epoch serially (Config.SerialEpochs) and derives the group wall as
// Σ over epochs of (max per-shard wall + barrier wall); recovery compares
// the deterministic virtual-time SimWall of the per-shard recoveries,
// summed (serial baseline) versus maxed (parallel). Real wall clocks ride
// along as informational fields. Regenerate the committed record with:
//
//	go run ./cmd/shardbench -o BENCH_shard.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
	"morphstreamr/internal/workload"
)

// fanouts are the shard counts both sections sweep.
var fanouts = []int{1, 2, 4, 8}

// ScalingEntry is one measured (workload variant, fan-out) ingest cell.
type ScalingEntry struct {
	// Workload names the variant: gs-local (partition-local, replication
	// off — the scaling configuration), gs-replicated (30% cross-partition
	// reads, frontier broadcast on — the replication-tax reference), or
	// gs-skewed (theta 1.0 hot shard — the imbalance reference).
	Workload   string `json:"workload"`
	Shards     int    `json:"shards"`
	LocalReads bool   `json:"local_reads"`
	Events     int    `json:"events"`
	// SimWallUs is Σ over epochs of (max per-shard wall + barrier wall):
	// the group ingest wall an N-core host would see. BarrierUs is the
	// barrier share of it.
	SimWallUs float64 `json:"sim_wall_us"`
	BarrierUs float64 `json:"barrier_us"`
	// ThroughputEps is Events / SimWall.
	ThroughputEps float64 `json:"throughput_eps"`
	// ScalingX is this cell's throughput over the same variant's 1-shard
	// throughput.
	ScalingX float64 `json:"scaling_x"`
}

// RecoveryEntry is one measured fan-out of the group recovery section.
type RecoveryEntry struct {
	Kind   string `json:"kind"`
	Shards int    `json:"shards"`
	// EventsReplayed sums the shards' replay volumes (replication events
	// included — they ride the same logs).
	EventsReplayed int    `json:"events_replayed"`
	TargetEpoch    uint64 `json:"target_epoch"`
	AlignedShards  int    `json:"aligned_shards"`
	// SerialSimUs is the summed per-shard simulated recovery wall (the
	// one-at-a-time baseline); ParallelSimUs the max (all shards at once);
	// SpeedupX their ratio — the headline number.
	SerialSimUs   float64 `json:"serial_sim_us"`
	ParallelSimUs float64 `json:"parallel_sim_us"`
	SpeedupX      float64 `json:"speedup_x"`
	// Balance is mean/max of the per-shard virtual recovery timelines (1.0
	// = perfectly balanced shards; the straggler bounds the group).
	Balance float64 `json:"balance"`
	// SerialWallUs and ParallelWallUs are the real host walls of the two
	// recovery runs (informational: this host's core count caps the real
	// parallel gain).
	SerialWallUs   float64 `json:"serial_wall_us"`
	ParallelWallUs float64 `json:"parallel_wall_us"`
}

// Checks is the pass/fail record of the shard layer's acceptance gates.
type Checks struct {
	// Scaling8x is gs-local's ScalingX at 8 shards; the gate is ≥ 0.8×8.
	Scaling8x     float64 `json:"scaling_8x"`
	Scaling8xPass bool    `json:"scaling_8x_pass"`
	// RecoverySpeedup4x is SpeedupX at 4 shards; the gate is ≥ 0.7×4.
	RecoverySpeedup4x     float64 `json:"recovery_speedup_4x"`
	RecoverySpeedup4xPass bool    `json:"recovery_speedup_4x_pass"`
}

// Report is the file layout of BENCH_shard.json.
type Report struct {
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Epochs     int             `json:"epochs"`
	EpochSize  int             `json:"epoch_size"`
	Note       string          `json:"note"`
	Scaling    []ScalingEntry  `json:"scaling"`
	Recovery   []RecoveryEntry `json:"recovery"`
	Checks     Checks          `json:"checks"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// variant parameterizes one scaling workload.
type variant struct {
	name       string
	theta      float64
	mpr        float64
	localReads bool
}

var variants = []variant{
	{name: "gs-local", theta: 0.2, mpr: 0, localReads: true},
	{name: "gs-replicated", theta: 0.2, mpr: 0.3, localReads: false},
	{name: "gs-skewed", theta: 1.0, mpr: 0.3, localReads: false},
}

// gsParams builds the benchmark Grep&Sum shape: 4096 rows, the generator's
// data partitions matched to the shard fan-out so partition-locality lines
// up with shard ownership.
func gsParams(v variant, shards int) workload.GSParams {
	p := workload.DefaultGSParams()
	p.Seed, p.Rows = 61, 4096
	p.Theta, p.MultiPartitionRatio = v.theta, v.mpr
	p.Partitions = shards
	return p
}

// shape is the per-shard engine shape every cell runs: one worker (clean
// per-shard walls on any host), commit every 2 epochs, snapshot every 4.
func shape(shards int) types.GroupShape {
	return types.GroupShape{
		RunShape: types.RunShape{Workers: 1, CommitEvery: 2, SnapshotEvery: 4},
		Shards:   shards,
	}
}

// measureScaling runs one (variant, fan-out) cell `repeat` times with
// SerialEpochs. Per-shard walls are real time measured serially, so host
// preemption inflates individual samples with a heavy right tail — and a
// max over shards of noisy samples almost surely catches one preempted
// window. The estimator therefore takes each (epoch, shard)'s minimum
// across repeats first — the shard's least-interfered processing time,
// identical work every repeat — and only then the max over shards: the
// group wall an N-core host would see from the slowest shard.
func measureScaling(v variant, shards, epochs, epochSize, repeat int) (ScalingEntry, error) {
	e := ScalingEntry{Workload: v.name, Shards: shards, LocalReads: v.localReads, Events: epochs * epochSize}
	bestShard := make([][]time.Duration, epochs)
	for i := range bestShard {
		bestShard[i] = make([]time.Duration, shards)
	}
	bestBarrier := make([]time.Duration, epochs)
	for r := 0; r < repeat; r++ {
		gen := workload.NewGS(gsParams(v, shards))
		batches := make([][]types.Event, epochs)
		for i := range batches {
			batches[i] = workload.Batch(gen, epochSize)
		}
		g, err := shard.NewGroup(shard.Config{
			GroupShape:   shape(shards),
			App:          gen.App(),
			Kind:         ftapi.WAL,
			LocalReads:   v.localReads,
			SerialEpochs: true,
		})
		if err != nil {
			return e, err
		}
		runtime.GC() // park collector debt outside the timed epochs
		if err := g.Run(batches); err != nil {
			return e, fmt.Errorf("%s shards=%d: %w", v.name, shards, err)
		}
		for i, st := range g.EpochStats() {
			for s, w := range st.ShardWalls {
				if r == 0 || w < bestShard[i][s] {
					bestShard[i][s] = w
				}
			}
			if r == 0 || st.BarrierWall < bestBarrier[i] {
				bestBarrier[i] = st.BarrierWall
			}
		}
	}
	var sim, barrier time.Duration
	for i := range bestShard {
		var max time.Duration
		for _, w := range bestShard[i] {
			if w > max {
				max = w
			}
		}
		sim += max + bestBarrier[i]
		barrier += bestBarrier[i]
	}
	e.SimWallUs = us(sim)
	e.BarrierUs = us(barrier)
	if sim > 0 {
		e.ThroughputEps = float64(e.Events) / sim.Seconds()
	}
	return e, nil
}

// recoveryRun ingests the run, crashes the group, and recovers it with the
// given strategy, returning the report and the real recovery wall.
func recoveryRun(kind ftapi.Kind, shards, epochs, epochSize int, serial bool) (*shard.GroupReport, error) {
	gen := workload.NewGS(gsParams(variant{theta: 0.2, mpr: 0.3}, shards))
	batches := make([][]types.Event, epochs)
	for i := range batches {
		batches[i] = workload.Batch(gen, epochSize)
	}
	devs := make([]storage.Device, shards)
	for i := range devs {
		devs[i] = storage.NewMem()
	}
	cfg := shard.Config{
		GroupShape: shape(shards),
		App:        gen.App(),
		Kind:       kind,
		Devices:    devs,
		CoordDev:   storage.NewMem(),
	}
	g, err := shard.NewGroup(cfg)
	if err != nil {
		return nil, err
	}
	if err := g.Run(batches); err != nil {
		return nil, fmt.Errorf("shards=%d ingest: %w", shards, err)
	}
	g.Crash()
	profilers := make([]*vtime.Profiler, shards)
	for i := range profilers {
		profilers[i] = vtime.NewProfiler(1)
	}
	_, rep, err := shard.GroupRecover(shard.RecoverConfig{
		Config:    cfg,
		Source:    shard.BatchSource(batches),
		Serial:    serial,
		Profilers: profilers,
	})
	if err != nil {
		return nil, fmt.Errorf("shards=%d recover: %w", shards, err)
	}
	return rep, nil
}

// measureRecovery runs the serial-baseline and parallel recoveries for one
// fan-out (one fresh ingest each — alignment appends to the devices, so
// recoveries do not share media) and combines them into the entry. The
// speedup is SimWall-based and identical in both runs; the two real walls
// are informational.
func measureRecovery(kind ftapi.Kind, shards, epochs, epochSize int) (RecoveryEntry, error) {
	e := RecoveryEntry{Kind: kind.String(), Shards: shards}
	serialRep, err := recoveryRun(kind, shards, epochs, epochSize, true)
	if err != nil {
		return e, err
	}
	parallelRep, err := recoveryRun(kind, shards, epochs, epochSize, false)
	if err != nil {
		return e, err
	}
	for _, r := range parallelRep.Reports {
		e.EventsReplayed += r.EventsReplayed
	}
	e.TargetEpoch = parallelRep.Target
	e.AlignedShards = parallelRep.AlignedShards
	e.SerialSimUs = us(parallelRep.SerialSim)
	e.ParallelSimUs = us(parallelRep.ParallelSim)
	e.SpeedupX = parallelRep.Speedup()
	if parallelRep.Profile != nil {
		e.Balance = parallelRep.Profile.Balance()
	}
	e.SerialWallUs = us(serialRep.Wall)
	e.ParallelWallUs = us(parallelRep.Wall)
	return e, nil
}

func main() {
	out := flag.String("o", "BENCH_shard.json", "output path for the JSON report")
	quick := flag.Bool("quick", false, "small epochs/sizes for CI smoke")
	strict := flag.Bool("strict", false, "exit non-zero when an acceptance gate fails")
	epochs := flag.Int("epochs", 6, "scaling epochs per run")
	epochSize := flag.Int("epochsize", 2048, "scaling events per epoch")
	repeat := flag.Int("repeat", 5, "scaling samples per cell; each (epoch, shard)'s fastest is kept")
	recEpochs := flag.Int("recepochs", 11, "recovery epochs per run (snapshot at 8, tail past 10)")
	recEpochSize := flag.Int("recepochsize", 512, "recovery events per epoch")
	flag.Parse()
	if *quick {
		*epochs, *epochSize, *repeat = 4, 256, 2
		*recEpochs, *recEpochSize = 7, 128
	}

	// The scaling estimator times sub-millisecond per-shard windows; a GC
	// cycle landing inside one inflates the epoch's max-over-shards. Run
	// collections only between repeats (measureScaling calls runtime.GC).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Epochs:     *epochs,
		EpochSize:  *epochSize,
		Note: "Scaling cells run the shard group with SerialEpochs and derive the " +
			"group ingest wall as sum over epochs of (max per-shard wall + barrier " +
			"wall) — the wall an N-core host would see. gs-local is the " +
			"partition-local configuration (LocalReads, replication off) the 0.8xN " +
			"gate applies to; gs-replicated shows the frontier-broadcast tax; " +
			"gs-skewed the theta=1.0 hot-shard imbalance. Recovery cells ingest, " +
			"crash, and group-recover; speedup_x is the deterministic simulated " +
			"serial-over-parallel ratio (sum vs max of per-shard SimWall), gated " +
			"at 0.7xN for N=4. Real walls are informational on shared hosts.",
	}

	for _, v := range variants {
		var base float64
		for _, n := range fanouts {
			e, err := measureScaling(v, n, *epochs, *epochSize, *repeat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "shardbench:", err)
				os.Exit(1)
			}
			if n == 1 {
				base = e.ThroughputEps
			}
			if base > 0 {
				e.ScalingX = e.ThroughputEps / base
			}
			rep.Scaling = append(rep.Scaling, e)
			fmt.Fprintf(os.Stderr, "%-13s shards=%d: sim wall %8.0f µs, %9.0f ev/s, scaling %.2fx\n",
				v.name, n, e.SimWallUs, e.ThroughputEps, e.ScalingX)
			if v.name == "gs-local" && n == 8 {
				rep.Checks.Scaling8x = e.ScalingX
				rep.Checks.Scaling8xPass = e.ScalingX >= 0.8*8
			}
		}
	}

	for _, n := range fanouts {
		e, err := measureRecovery(ftapi.WAL, n, *recEpochs, *recEpochSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shardbench:", err)
			os.Exit(1)
		}
		rep.Recovery = append(rep.Recovery, e)
		fmt.Fprintf(os.Stderr, "recovery WAL shards=%d: %5d replayed, serial sim %8.0f µs, parallel sim %8.0f µs, speedup %.2fx, balance %.2f\n",
			n, e.EventsReplayed, e.SerialSimUs, e.ParallelSimUs, e.SpeedupX, e.Balance)
		if n == 4 {
			rep.Checks.RecoverySpeedup4x = e.SpeedupX
			rep.Checks.RecoverySpeedup4xPass = e.SpeedupX >= 0.7*4
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "shardbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d scaling cells, %d recovery cells)\n", *out, len(rep.Scaling), len(rep.Recovery))
	fmt.Fprintf(os.Stderr, "checks: scaling_8x %.2fx (pass=%v), recovery_speedup_4x %.2fx (pass=%v)\n",
		rep.Checks.Scaling8x, rep.Checks.Scaling8xPass,
		rep.Checks.RecoverySpeedup4x, rep.Checks.RecoverySpeedup4xPass)
	if *strict && (!rep.Checks.Scaling8xPass || !rep.Checks.RecoverySpeedup4xPass) {
		os.Exit(1)
	}
}
