// Command journeybench measures the end-to-end journey tracing layer: for
// every recoverable fault-tolerance mechanism and shard count it drives the
// kill-and-heal chaos cell with sampled tracing on and reports the
// per-stage latency decomposition (admission / queue / route / execute /
// commit / ack, plus the explicit RECOVERY stage for time spent inside
// heals), cross-checked server-side against the client-observed ack lag.
// A final set of interleaved steady-cell pairs measures the overhead of
// tracing itself (sampling off vs on), gated at 2%. Regenerate with:
//
//	go run ./cmd/journeybench -o BENCH_journey.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/journey"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/serve"
)

// Cell is one measured (mechanism, shards) kill-and-heal run with tracing.
type Cell struct {
	Kind    string `json:"kind"`
	Shards  int    `json:"shards"`
	Cell    string `json:"cell"`
	Tenants int    `json:"tenants"`
	Batches int    `json:"batches_per_tenant"`

	Journeys  int `json:"journeys"`
	Shed      int `json:"shed"`
	Recovered int `json:"recovered"`
	Kills     int `json:"kills"`
	Heals     int `json:"heals"`
	// The harness's audits, broken out: DupAcks and OrderViol check the
	// server's ack stream (must be 0 for every mechanism); ExactlyOnce
	// checks the raw output-union and is nonzero for CKPT by design —
	// checkpoint-only recovery replays every epoch since the last snapshot
	// and re-delivers their outputs (no per-epoch delivery watermark).
	DupAcks     int `json:"dup_acks"`
	OrderViol   int `json:"ack_order_violations"`
	ExactlyOnce int `json:"exactly_once_violations"`

	// Stages is the per-stage decomposition across sampled journeys;
	// DecompositionOK says every pipeline stage was observed and
	// MaxDecompErrMs (|sum(stages) − total|, must be 0) held.
	Stages           map[journey.Stage]journey.StageStats `json:"stages"`
	Total            journey.StageStats                   `json:"total"`
	MaxDecompErrMs   float64                              `json:"max_decomp_err_ms"`
	DecompositionOK  bool                                 `json:"decomposition_ok"`
	RecoveryObserved bool                                 `json:"recovery_observed"`

	// Server-side journey totals vs the clients' own submit→ack stopwatch:
	// the cross-check that the decomposition measures the latency the
	// client actually saw, not some internal proxy.
	ServerP50Ms  float64 `json:"server_p50_ms"`
	ServerP99Ms  float64 `json:"server_p99_ms"`
	ClientP50Ms  float64 `json:"client_p50_ms"`
	ClientP99Ms  float64 `json:"client_p99_ms"`
	CrosscheckOK bool    `json:"crosscheck_ok"`

	// SLO engine readings over the run's acked population.
	SLOCompliance float64 `json:"slo_compliance"`
	SLOPeakBurn   float64 `json:"slo_peak_burn"`
	SLOBreaches   int64   `json:"slo_breaches"`

	WallMs float64 `json:"wall_ms"`
}

// OverheadRow is one A/B wall-clock comparison over interleaved steady-cell
// pairs: the serve pump is ticker-paced, so alternating run order inside
// each pair and taking the median of per-pair ratios keeps scheduler noise
// and warmup drift out of the estimate.
type OverheadRow struct {
	Pairs       int     `json:"pairs"`
	MedianRatio float64 `json:"median_ratio"`
	OverheadPct float64 `json:"overhead_pct"`
	BaseWallMs  float64 `json:"base_wall_ms"`
	WithWallMs  float64 `json:"with_wall_ms"`
}

// Overhead is the tracing cost measurement. SamplingOff is the gated
// number — the observability layer attached (recorder + SLO) but no batch
// sampled, i.e. what every deployment pays whether or not it traces; it
// must stay within 2% of a server with no recorder at all. FullTracing
// (every batch traced) is informational.
type Overhead struct {
	SamplingOff OverheadRow `json:"sampling_off"`
	// OK gates SamplingOff.OverheadPct at 2%.
	OK          bool        `json:"ok"`
	FullTracing OverheadRow `json:"full_tracing"`
}

// Report is the file layout of BENCH_journey.json.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Note       string   `json:"note"`
	Cells      []Cell   `json:"cells"`
	Overhead   Overhead `json:"overhead"`
}

// measureCell runs one traced kill-and-heal cell. observer may be nil; when
// set, the run's heals and SLO breaches land on its incident timeline and
// the cell's /slo and /incidents views stay live on the telemetry endpoint.
func measureCell(kind ftapi.Kind, shards, tenants, batches int, seed int64, observer *obs.Observer) (Cell, error) {
	rec := journey.NewRecorder(journey.Config{SampleEvery: 3})
	slo := obs.NewSLOMonitor(obs.SLOConfig{
		Name: "ack", Objective: 100 * time.Millisecond, Timeline: observer.Timeline(),
	})
	rep, err := serve.Chaos(serve.ChaosConfig{
		Cell:            serve.CellKillHeal,
		Kind:            kind,
		Seed:            seed,
		Shards:          shards,
		Tenants:         tenants,
		Batches:         batches,
		BatchEvents:     6,
		Obs:             observer,
		Journeys:        rec,
		SLO:             slo,
		SampleFlagEvery: 2, // client-side flag path, interleaved with the server modulus
	})
	c := Cell{
		Kind: kind.String(), Shards: shards, Cell: serve.CellKillHeal,
		Tenants: tenants, Batches: batches,
	}
	if err != nil {
		return c, err
	}
	recs, _ := rec.Drain()
	sum := journey.Summarize(recs)
	c.Journeys = sum.Journeys
	c.Shed = sum.Shed
	c.Recovered = sum.Recovered
	c.Kills = rep.Kills
	c.Heals = rep.Heals
	c.DupAcks = rep.DupAcks
	c.OrderViol = rep.OrderViol
	c.ExactlyOnce = rep.ExactlyOnce
	c.Stages = sum.Stages
	c.Total = sum.Total
	c.MaxDecompErrMs = sum.MaxDecompErrMs
	c.RecoveryObserved = sum.Stages[journey.StageRecovery].Count > 0

	c.DecompositionOK = sum.MaxDecompErrMs < 0.001
	for _, st := range []journey.Stage{
		journey.StageAdmission, journey.StageQueue, journey.StageRoute,
		journey.StageExecute, journey.StageCommit, journey.StageAck,
	} {
		if sum.Stages[st].Count == 0 {
			c.DecompositionOK = false
		}
	}

	c.ServerP50Ms = sum.Total.P50Ms
	c.ServerP99Ms = sum.Total.P99Ms
	c.ClientP50Ms = rep.P50AckLagMs
	c.ClientP99Ms = rep.P99AckLagMs
	// The journeys are a deterministic sample of the acked population and
	// the clients time from first submit, so the medians must agree up to
	// sampling alignment; the heal's bimodal tail makes p99 too noisy to
	// gate, so the cross-check is on the median with a generous epsilon.
	eps := 50.0
	if half := 0.5 * c.ClientP50Ms; half > eps {
		eps = half
	}
	diff := c.ServerP50Ms - c.ClientP50Ms
	if diff < 0 {
		diff = -diff
	}
	c.CrosscheckOK = diff <= eps

	snap := slo.Snapshot()
	c.SLOCompliance = snap.Compliance
	c.SLOBreaches = snap.Breaches
	c.SLOPeakBurn = slo.PeakBurn()
	c.WallMs = rep.WallMs
	return c, nil
}

// steadyCell runs one untraced-vs-instrumented steady pair and returns the
// two wall clocks. sampleEvery/flagEvery shape the instrumented side:
// (0, 0) is sampling-off — recorder and SLO attached, nothing traced.
func steadyCell(seed int64, tenants, batches int, sampleEvery, flagEvery uint64, instrumentedFirst bool) (base, with float64, err error) {
	baseCfg := serve.ChaosConfig{
		Cell: serve.CellSteady, Kind: ftapi.WAL, Seed: seed,
		Tenants: tenants, Batches: batches, BatchEvents: 6,
	}
	run := func(instrumented bool) (float64, error) {
		cfg := baseCfg
		if instrumented {
			cfg.Journeys = journey.NewRecorder(journey.Config{SampleEvery: sampleEvery})
			cfg.SLO = obs.NewSLOMonitor(obs.SLOConfig{Name: "ack"})
			cfg.SampleFlagEvery = flagEvery
		}
		rep, err := serve.Chaos(cfg)
		if err != nil {
			return 0, err
		}
		return rep.WallMs, nil
	}
	first, second := false, true
	if instrumentedFirst {
		first, second = true, false
	}
	w1, err := run(first)
	if err != nil {
		return 0, 0, err
	}
	w2, err := run(second)
	if err != nil {
		return 0, 0, err
	}
	if instrumentedFirst {
		return w2, w1, nil
	}
	return w1, w2, nil
}

// measureOverheadRow runs `pairs` interleaved steady pairs (order alternating
// inside each pair) and reduces to the median per-pair wall ratio.
func measureOverheadRow(pairs, tenants, batches int, sampleEvery, flagEvery uint64) (OverheadRow, error) {
	row := OverheadRow{Pairs: pairs}
	ratios := make([]float64, 0, pairs)
	var baseWall, withWall []float64
	for i := 0; i < pairs; i++ {
		base, with, err := steadyCell(int64(1000+i*37), tenants, batches, sampleEvery, flagEvery, i%2 == 1)
		if err != nil {
			return row, err
		}
		ratios = append(ratios, with/base)
		baseWall = append(baseWall, base)
		withWall = append(withWall, with)
	}
	row.MedianRatio = median(ratios)
	row.OverheadPct = (row.MedianRatio - 1) * 100
	row.BaseWallMs = median(baseWall)
	row.WithWallMs = median(withWall)
	return row, nil
}

// measureOverhead measures the gated sampling-off overhead and the
// informational full-tracing overhead.
func measureOverhead(pairs, tenants, batches int) (Overhead, error) {
	var o Overhead
	off, err := measureOverheadRow(pairs, tenants, batches, 0, 0)
	if err != nil {
		return o, err
	}
	full, err := measureOverheadRow(pairs, tenants, batches, 1, 1)
	if err != nil {
		return o, err
	}
	o.SamplingOff = off
	o.FullTracing = full
	o.OK = off.OverheadPct <= 2.0
	return o, nil
}

func median(s []float64) float64 {
	sort.Float64s(s)
	return obs.Percentile(s, 0.50)
}

func main() {
	out := flag.String("o", "BENCH_journey.json", "output path for the JSON report")
	tenants := flag.Int("tenants", 3, "tenants per cell")
	batches := flag.Int("batches", 40, "batches per tenant")
	pairs := flag.Int("pairs", 7, "interleaved off/on pairs for the overhead measurement")
	obatches := flag.Int("obatches", 250, "batches per tenant in each overhead run (long runs amortize scheduler noise)")
	shardsList := flag.String("shards", "1,2", "comma-separated shard counts")
	kindsList := flag.String("kinds", "CKPT,WAL,DL,LV,MSR", "comma-separated mechanisms")
	obsAddr := flag.String("obs", "", "serve live telemetry (/metrics, /slo, /incidents) on this address, e.g. :9090")
	linger := flag.Bool("linger", false, "keep serving -obs after the cells complete")
	flag.Parse()

	var observer *obs.Observer
	var obsSrv *obs.Server
	if *obsAddr != "" {
		observer = obs.NewObserver(1, 1<<14)
		srv, err := obs.Serve(*obsAddr, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journeybench:", err)
			os.Exit(1)
		}
		obsSrv = srv
		defer obsSrv.Close()
		fmt.Fprintf(os.Stderr, "telemetry at %s/slo and /incidents\n", srv.URL())
	}

	kinds := map[string]ftapi.Kind{}
	for _, k := range ftapi.Kinds() {
		kinds[k.String()] = k
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "Each cell is one kill-and-heal chaos run (internal/serve.Chaos) with " +
			"journey tracing sampled both client-side (Submit flag, every 2nd batch) " +
			"and server-side (modulus 3): per-stage stats decompose the sampled " +
			"batches' server-observed submit→ack latency into admission/queue/route/" +
			"execute/commit/ack, with time inside heals attributed to the explicit " +
			"RECOVERY stage. dup_acks and ack_order_violations gate the server's " +
			"exactly-once ack stream (0 for every mechanism); exactly_once_violations " +
			"audits the raw output union and is nonzero for CKPT by design, since " +
			"checkpoint-only recovery re-executes — and re-delivers — every epoch " +
			"since the last snapshot. decomposition_ok requires every stage observed and the " +
			"stage sums exactly equal to each journey's total; crosscheck_ok requires " +
			"the server-side total median to match the clients' own stopwatch. The " +
			"overhead section interleaves order-alternating steady-cell pairs: " +
			"sampling_off compares no recorder vs recorder+SLO attached with nothing " +
			"sampled (the always-on cost every deployment pays, gated at 2%); " +
			"full_tracing compares against every batch traced (informational).",
	}

	for _, ks := range strings.Split(*kindsList, ",") {
		kind, ok := kinds[strings.TrimSpace(ks)]
		if !ok || kind == ftapi.NAT {
			fmt.Fprintf(os.Stderr, "journeybench: skipping unknown/non-recoverable kind %q\n", ks)
			continue
		}
		for _, ss := range strings.Split(*shardsList, ",") {
			var shards int
			fmt.Sscanf(strings.TrimSpace(ss), "%d", &shards)
			if shards <= 0 {
				continue
			}
			c, err := measureCell(kind, shards, *tenants, *batches, int64(11+shards), observer)
			if err != nil {
				fmt.Fprintln(os.Stderr, "journeybench:", err)
				os.Exit(1)
			}
			rep.Cells = append(rep.Cells, c)
			fmt.Fprintf(os.Stderr,
				"%-5s shards=%d: %3d journeys (%d recovered), total p50 %6.1f ms / client %6.1f ms, recovery p99 %6.1f ms, decomp=%v xcheck=%v\n",
				c.Kind, c.Shards, c.Journeys, c.Recovered, c.ServerP50Ms, c.ClientP50Ms,
				c.Stages[journey.StageRecovery].P99Ms, c.DecompositionOK, c.CrosscheckOK)
		}
	}

	oh, err := measureOverhead(*pairs, *tenants, *obatches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "journeybench:", err)
		os.Exit(1)
	}
	rep.Overhead = oh
	fmt.Fprintf(os.Stderr, "overhead: sampling-off %.2f%% (ok=%v), full tracing %.2f%%\n",
		oh.SamplingOff.OverheadPct, oh.OK, oh.FullTracing.OverheadPct)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "journeybench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "journeybench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Cells))

	if *linger && obsSrv != nil {
		fmt.Fprintf(os.Stderr, "lingering on %s (Ctrl-C to exit)\n", obsSrv.URL())
		select {}
	}
}
