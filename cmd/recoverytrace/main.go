// Command recoverytrace profiles the recovery replay of every
// fault-tolerance mechanism: it drives the standard snapshot-then-crash
// protocol with a vtime.Profiler attached, then records per-virtual-worker
// timelines, stall attribution, and the critical-path analysis side by
// side for CKPT, WAL, DL, LV, and MSR across worker counts.
//
// The committed report pins the cost model with -fixed (host-independent
// virtual times); regenerate it after recovery-path changes with:
//
//	go run ./cmd/recoverytrace -o BENCH_recovery.json -tracedir traces
//
// The report's checks block records the profiler's structural invariants
// (exact per-lane decomposition, WAL's single active redo lane, MSR's
// lowest stall share, makespan >= the list-scheduling lower bound) and the
// measured profiling overhead; any violated invariant exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"morphstreamr/internal/bench"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/vtime"
	"morphstreamr/internal/workload"
)

// seed fixes the workload stream so every mechanism replays the same
// transactions and cells are comparable across runs.
const seed = 79

// PhaseCell summarises one recovery phase of a cell's profile.
type PhaseCell struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	MakespanUs   float64 `json:"makespan_us"`
	CritPathUs   float64 `json:"critical_path_us"`
	LowerBoundUs float64 `json:"lower_bound_us"`
	ActiveLanes  int     `json:"active_lanes"`
}

// StallCell is one aggregated (edge, blocker) stall cause.
type StallCell struct {
	Edge    string  `json:"edge"`
	Blocker string  `json:"blocker,omitempty"`
	TotalUs float64 `json:"total_us"`
	Count   int64   `json:"count"`
}

// Cell is one measured (mechanism, workers) grid point.
type Cell struct {
	Kind           string `json:"kind"`
	Workers        int    `json:"workers"`
	EventsReplayed int    `json:"events_replayed"`
	// TimelineUs is the virtual recovery length (sum of phase makespans);
	// CritPathUs/LowerBoundUs the summed per-phase bounds; CPRatio is
	// timeline over lower bound (1.0 = optimal schedule under the model).
	TimelineUs   float64 `json:"timeline_us"`
	CritPathUs   float64 `json:"critical_path_us"`
	LowerBoundUs float64 `json:"lower_bound_us"`
	CPRatio      float64 `json:"cp_ratio"`
	// StallShare is dependency-attributed stall time (TD/LD/PD, logged
	// deps, LSN vectors, serial phases) over total lane-time; DrainShare
	// is end-of-phase load imbalance. The aggregate decomposition follows
	// (summed across lanes, so exec+explore+abort+phase+stall ==
	// workers * timeline).
	StallShare float64 `json:"stall_share"`
	DrainShare float64 `json:"drain_share"`
	ExecUs     float64 `json:"exec_us"`
	ExploreUs  float64 `json:"explore_us"`
	AbortUs    float64 `json:"abort_us"`
	PhaseUs    float64 `json:"phase_us"`
	StallUs    float64 `json:"stall_us"`
	Spans      int     `json:"spans"`
	// BreakdownShares is the Figure 11 six-way recovery breakdown,
	// normalised (see metrics.RecoveryBreakdown.Shares).
	BreakdownShares map[string]float64 `json:"breakdown_shares"`
	Phases          []PhaseCell        `json:"phases"`
	TopStalls       []StallCell        `json:"top_stalls"`
}

// ProfilerCost records what turning the profiler ON costs one mechanism:
// minimum recovery wall over the repeats with the profiler off and on.
// This is the price of profiling, not an invariant — the guarded 2%
// budget applies to the profiling-OFF path (see Checks).
type ProfilerCost struct {
	Kind     string  `json:"kind"`
	OffUs    float64 `json:"recovery_wall_off_us"`
	OnUs     float64 `json:"recovery_wall_on_us"`
	DeltaPct float64 `json:"delta_pct"`
}

// Checks is the invariant block the CI smoke job and the acceptance
// criteria read.
type Checks struct {
	MainWorkers int `json:"main_workers"`
	// DecompositionExact: every lane's exec+explore+abort+phase+stall
	// equals the cell's timeline exactly, for every cell.
	DecompositionExact bool `json:"decomposition_exact"`
	// WalSingleLane: WAL's redo phase shows exactly one active lane at
	// every worker count.
	WalSingleLane bool `json:"wal_single_lane"`
	// MsrLowestStall: at the main worker count, MSR's stall share is
	// strictly the lowest of the five mechanisms.
	MsrLowestStall bool `json:"msr_lowest_stall"`
	// CPBound: timeline >= lower bound for every cell, and phase makespan
	// >= phase lower bound for every phase of every cell.
	CPBound bool `json:"cp_bound"`
	// ProfilingOverheadPct is the profiling-off overhead on the replay
	// hot path: the shipped simulator (nil profiler) timed against a
	// frozen pre-instrumentation replica on identical graphs (minimum of
	// the repeats each). OverheadOK asserts the 2% budget.
	ProfilingOverheadPct float64 `json:"profiling_overhead_pct"`
	OverheadOK           bool    `json:"overhead_ok"`
	OverheadBaselineUs   float64 `json:"overhead_baseline_us"`
	OverheadOffUs        float64 `json:"overhead_off_us"`
	OverheadSimEvents    int     `json:"overhead_sim_events"`
	// ProfilerOnCost is informational: the recovery-wall price of turning
	// the profiler ON, per mechanism.
	ProfilerOnCost []ProfilerCost `json:"profiler_on_cost"`
}

// Report is the file layout of BENCH_recovery.json.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Quick      bool    `json:"quick"`
	FixedCosts bool    `json:"fixed_costs"`
	Workers    int     `json:"workers"`
	BatchSize  int     `json:"batch_size"`
	PostEpochs int     `json:"post_epochs"`
	Note       string  `json:"note"`
	Cells      []Cell  `json:"cells"`
	Checks     Checks  `json:"checks"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// scenario builds one profiled run of the crash-recover protocol.
func scenario(kind ftapi.Kind, sc bench.Scale, w int, prof *vtime.Profiler) bench.Scenario {
	sc.Workers = w
	return bench.Scenario{
		Gen:   func() workload.Generator { return fttest.SLGen(seed) },
		Kind:  kind,
		Scale: sc,
		Prof:  prof,
	}
}

// measure runs one grid cell and converts its profile.
func measure(kind ftapi.Kind, sc bench.Scale, w int) (Cell, *vtime.Profiler, *vtime.Profile, error) {
	prof := vtime.NewProfiler(w)
	run, err := bench.Execute(scenario(kind, sc, w, prof))
	if err != nil {
		return Cell{}, nil, nil, fmt.Errorf("%v W=%d: %w", kind, w, err)
	}
	p := run.Recovery.Profile
	if p == nil {
		return Cell{}, nil, nil, fmt.Errorf("%v W=%d: no profile recorded", kind, w)
	}
	c := Cell{
		Kind:            kind.String(),
		Workers:         w,
		EventsReplayed:  run.Recovery.EventsReplayed,
		TimelineUs:      us(p.Timeline),
		CritPathUs:      us(p.CritPath),
		LowerBoundUs:    us(p.LowerBound),
		CPRatio:         p.CPRatio,
		StallShare:      p.StallShare(),
		DrainShare:      p.DrainShare(),
		Spans:           p.Spans,
		BreakdownShares: run.Recovery.Breakdown.Shares(),
	}
	for _, l := range p.Lanes {
		c.ExecUs += us(l.Exec)
		c.ExploreUs += us(l.Explore)
		c.AbortUs += us(l.Abort)
		c.PhaseUs += us(l.PhaseWork)
		c.StallUs += us(l.Stall)
	}
	for _, ph := range p.Phases {
		c.Phases = append(c.Phases, PhaseCell{
			Name: ph.Name, Kind: ph.Kind,
			MakespanUs: us(ph.Makespan), CritPathUs: us(ph.CritPath),
			LowerBoundUs: us(ph.LowerBound), ActiveLanes: ph.ActiveLanes,
		})
	}
	for i, s := range p.TopStalls {
		if i == 3 {
			break
		}
		c.TopStalls = append(c.TopStalls, StallCell{
			Edge: s.Edge, Blocker: s.Blocker, TotalUs: us(s.Total), Count: s.Count,
		})
	}
	return c, prof, p, nil
}

// minWall runs the cell repeat times and returns the minimum recovery
// wall — the least-perturbed estimate on a shared host.
func minWall(kind ftapi.Kind, sc bench.Scale, w, repeat int, profiled bool) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < repeat; i++ {
		var prof *vtime.Profiler
		if profiled {
			prof = vtime.NewProfiler(w)
		}
		run, err := bench.Execute(scenario(kind, sc, w, prof))
		if err != nil {
			return 0, err
		}
		if i == 0 || run.Recovery.Wall < best {
			best = run.Recovery.Wall
		}
	}
	return best, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "recoverytrace:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "BENCH_recovery.json", "output path for the JSON report")
	quick := flag.Bool("quick", false, "reduced scale for smoke runs")
	fixed := flag.Bool("fixed", true, "pin the cost model to vtime.FixedCosts (host-independent virtual times)")
	tracedir := flag.String("tracedir", "", "write per-mechanism Chrome traces (recovery_trace_<kind>.json) to this directory")
	repeat := flag.Int("repeat", 5, "samples per overhead measurement; the minimum wall is kept")
	strict := flag.Bool("strict", false, "treat an over-budget profiling overhead as fatal (structural invariants always are)")
	flag.Parse()

	if *fixed {
		vtime.SetCalibration(vtime.FixedCosts())
	}
	scale := bench.DefaultScale()
	if *quick {
		scale = bench.QuickScale()
	}
	mainW := scale.Workers

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      *quick,
		FixedCosts: *fixed,
		Workers:    mainW,
		BatchSize:  scale.BatchSize,
		PostEpochs: scale.PostEpochs,
		Note: "Each cell profiles one crash-recovery replay (vtime.Profiler): " +
			"timeline_us is the virtual recovery length, critical_path_us the " +
			"longest dependency path under the cost model, lower_bound_us the " +
			"list-scheduling bound max(critical path, work/W), cp_ratio " +
			"timeline/lower bound. stall_share is dependency-attributed stall " +
			"time (TD/LD/PD, logged deps, LSN vectors, serial phases) over " +
			"total lane-time, itemised per edge in top_stalls; drain_share is " +
			"end-of-phase load imbalance. checks records the structural " +
			"invariants (exact lane decomposition, WAL's single-lane redo, " +
			"MSR's lowest stall share at the main worker count, makespan >= " +
			"lower bound) and the profiling-off overhead: the shipped nil-" +
			"profiler simulator timed against a frozen pre-instrumentation " +
			"replica on identical graphs.",
	}

	kinds := []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	sweep := []int{1, 4, 8}
	if !contains(sweep, mainW) {
		sweep = append(sweep, mainW)
		sort.Ints(sweep)
	}

	ck := Checks{
		MainWorkers:        mainW,
		DecompositionExact: true,
		WalSingleLane:      true,
		CPBound:            true,
		OverheadOK:         true,
	}
	var failures []string
	stallAtMain := map[string]float64{}

	for _, kind := range kinds {
		for _, w := range sweep {
			cell, prof, p, err := measure(kind, scale, w)
			if err != nil {
				fail(err)
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(os.Stderr, "%-5s W=%d: timeline %9.0f µs, cp-ratio %.3f, stall %5.1f%%, %d spans\n",
				cell.Kind, w, cell.TimelineUs, cell.CPRatio, 100*cell.StallShare, cell.Spans)

			if err := p.Consistent(); err != nil {
				ck.DecompositionExact = false
				failures = append(failures, fmt.Sprintf("%v W=%d: %v", kind, w, err))
			}
			if kind == ftapi.WAL {
				redo := p.Phase("redo")
				if redo == nil || redo.ActiveLanes != 1 {
					ck.WalSingleLane = false
					failures = append(failures, fmt.Sprintf("WAL W=%d: redo phase not single-lane", w))
				}
			}
			if p.Timeline < p.LowerBound {
				ck.CPBound = false
				failures = append(failures, fmt.Sprintf("%v W=%d: timeline %v < lower bound %v", kind, w, p.Timeline, p.LowerBound))
			}
			for _, ph := range p.Phases {
				if ph.Makespan < ph.LowerBound {
					ck.CPBound = false
					failures = append(failures, fmt.Sprintf("%v W=%d phase %s: makespan %v < lower bound %v",
						kind, w, ph.Name, ph.Makespan, ph.LowerBound))
				}
			}
			if w == mainW {
				stallAtMain[cell.Kind] = cell.StallShare
				if *tracedir != "" {
					if err := os.MkdirAll(*tracedir, 0o755); err != nil {
						fail(err)
					}
					path := filepath.Join(*tracedir, "recovery_trace_"+cell.Kind+".json")
					f, err := os.Create(path)
					if err == nil {
						err = prof.WriteChrome(f)
						if cerr := f.Close(); err == nil {
							err = cerr
						}
					}
					if err != nil {
						fail(fmt.Errorf("trace %s: %w", path, err))
					}
					fmt.Fprintf(os.Stderr, "wrote %s\n", path)
				}
			}
		}
	}

	// MSR's restructuring exists to minimise stalls; at the main worker
	// count its stall share must be strictly the lowest. (At W=1 every
	// mechanism is stall-free, so the comparison is only meaningful with
	// real parallelism.)
	ck.MsrLowestStall = true
	for kind, share := range stallAtMain {
		if kind != ftapi.MSR.String() && share <= stallAtMain[ftapi.MSR.String()] {
			ck.MsrLowestStall = false
			failures = append(failures, fmt.Sprintf("W=%d: %s stall share %.4f <= MSR %.4f",
				mainW, kind, share, stallAtMain[ftapi.MSR.String()]))
		}
	}

	// Profiling-off overhead: the shipped simulator with a nil profiler
	// against the frozen pre-instrumentation replica, on identical graphs.
	// A full-size graph even under -quick: the A/B is cheap and a larger
	// simulation drowns the timer and scheduler noise.
	simEvents := 4096
	ck.OverheadSimEvents = simEvents
	simRepeat := *repeat
	if simRepeat < 25 {
		simRepeat = 25
	}
	baselineT, offT, err := measureOffOverhead(simEvents, mainW, simRepeat, vtime.Calibrate())
	if err != nil {
		fail(err)
	}
	ck.OverheadBaselineUs = us(baselineT)
	ck.OverheadOffUs = us(offT)
	ck.ProfilingOverheadPct = 100 * (float64(offT) - float64(baselineT)) / float64(baselineT)
	fmt.Fprintf(os.Stderr, "profiling-off overhead: baseline %7.0f µs, shipped %7.0f µs (%+.2f%%)\n",
		us(baselineT), us(offT), ck.ProfilingOverheadPct)
	if ck.ProfilingOverheadPct > 2.0 {
		ck.OverheadOK = false
		msg := fmt.Sprintf("profiling-off overhead %.2f%% exceeds the 2%% budget", ck.ProfilingOverheadPct)
		if *strict {
			failures = append(failures, msg)
		} else {
			fmt.Fprintln(os.Stderr, "recoverytrace: warning:", msg)
		}
	}

	// Informational: what profiling costs when it is ON.
	for _, kind := range kinds {
		off, err := minWall(kind, scale, mainW, *repeat, false)
		if err != nil {
			fail(err)
		}
		on, err := minWall(kind, scale, mainW, *repeat, true)
		if err != nil {
			fail(err)
		}
		delta := 100 * (float64(on) - float64(off)) / float64(off)
		ck.ProfilerOnCost = append(ck.ProfilerOnCost, ProfilerCost{
			Kind: kind.String(), OffUs: us(off), OnUs: us(on), DeltaPct: delta,
		})
		fmt.Fprintf(os.Stderr, "%-5s profiler-on cost: off %7.0f µs, on %7.0f µs (%+.2f%%)\n",
			kind, us(off), us(on), delta)
	}
	rep.Checks = ck

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Cells))

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "recoverytrace: FAIL:", f)
		}
		os.Exit(1)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
