package main

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"time"

	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
	"morphstreamr/internal/workload"
)

// simulateBaseline is a frozen replica of the list scheduler as it was
// before the profiler instrumentation landed: no profiler parameter, no
// nil checks, no critical-path bookkeeping. It exists purely as the
// overhead yardstick — measuring vtime.SimulateGraph (the shipped
// profiling-off path) against this replica on identical graphs isolates
// exactly what the instrumentation costs when profiling is off. Keep it
// in lockstep with the un-profiled branches of vtime.SimulateGraphProf.
func simulateBaseline(g *tpg.Graph, st *store.Store, workers int, costs vtime.Costs) vtime.Result {
	clocks := make([]vtime.Clock, workers)
	if g.NumOps == 0 {
		return vtime.Finish(clocks)
	}
	ready := make([]baseHeap, workers)
	seq := make(map[*tpg.OpNode]int, g.NumOps)
	readyAt := make(map[*tpg.OpNode]time.Duration, g.NumOps)
	i := 0
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			seq[n] = i
			i++
		}
	}
	for _, ch := range g.ChainList {
		for _, n := range ch.Ops {
			if n.Pending() == 0 {
				heap.Push(&ready[ch.Owner], baseItem{node: n, readyAt: 0, seq: seq[n]})
			}
		}
	}
	remaining := g.NumOps
	for remaining > 0 {
		best, bestStart := -1, time.Duration(0)
		for w := range ready {
			if len(ready[w]) == 0 {
				continue
			}
			start := clocks[w].Now
			if ra := ready[w][0].readyAt; ra > start {
				start = ra
			}
			if best == -1 || start < bestStart {
				best, bestStart = w, start
			}
		}
		if best == -1 {
			panic("recoverytrace: no runnable operations with work remaining")
		}
		item := heap.Pop(&ready[best]).(baseItem)
		n := item.node

		tpg.Fire(n, st)
		explore := costs.Explore
		for _, src := range n.PDSrc {
			if src != nil && src.Chain.Owner != n.Chain.Owner {
				explore += costs.Sync
			}
		}
		if n.CondSrc != nil && n.CondSrc.Chain.Owner != n.Chain.Owner {
			explore += costs.Sync
		}
		cost := costs.Op + time.Duration(len(n.DepVals))*costs.PerDep
		fin := clocks[best].Advance(bestStart, explore, cost, n.Txn.Aborted())
		remaining--

		resolve := func(d *tpg.OpNode) {
			if fin > readyAt[d] {
				readyAt[d] = fin
			}
			if d.AddPending(-1) == 0 {
				heap.Push(&ready[d.Chain.Owner], baseItem{node: d, readyAt: readyAt[d], seq: seq[d]})
			}
		}
		if nx := n.ChainNext; nx != nil {
			resolve(nx)
		}
		for _, d := range n.LDOut {
			resolve(d)
		}
		for _, d := range n.PDOut {
			resolve(d)
		}
	}
	return vtime.Finish(clocks)
}

type baseItem struct {
	node    *tpg.OpNode
	readyAt time.Duration
	seq     int
}

type baseHeap []baseItem

func (h baseHeap) Len() int { return len(h) }
func (h baseHeap) Less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].seq < h[j].seq
}
func (h baseHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *baseHeap) Push(x any)     { *h = append(*h, x.(baseItem)) }
func (h *baseHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// buildSimGraph constructs a deterministic StreamLedger TPG for the
// overhead A/B: Fire mutates pending counts and the store, so every
// simulation run gets a fresh graph built from the identical stream.
func buildSimGraph(events, workers int) (*tpg.Graph, *store.Store) {
	gen := workload.NewSL(workload.DefaultSLParams())
	st := store.New(gen.App().Tables())
	batch := workload.Batch(gen, events)
	txns := make([]*types.Txn, len(batch))
	for i := range batch {
		txn := gen.App().Preprocess(batch[i])
		txns[i] = &txn
	}
	g := tpg.Build(txns, st.Get)
	assign := scheduler.HashAssign(workers)
	for _, ch := range g.ChainList {
		ch.Owner = assign(ch)
	}
	return g, st
}

// measureOffOverhead times the shipped profiling-off simulator against the
// frozen baseline replica on identical graphs and cross-checks that both
// schedulers agree on the makespan (they run the same algorithm).
//
// Estimator: the two variants run as adjacent pairs (order alternating,
// heap collected before each timed section), each pair yields a
// shipped/baseline ratio, and the median ratio is reported. Single-shot
// comparisons of two ~5ms functions swing several percent either way from
// per-instance noise (map hash seeds, allocation placement, scheduler
// preemption); pairing keeps process conditions adjacent and the median
// discards the tails, which is what makes a 2% budget checkable at all.
// The reported baseline is the minimum sample; off is baseline scaled by
// the median ratio, so the recorded pair is consistent with the verdict.
func measureOffOverhead(events, workers, repeat int, costs vtime.Costs) (baseline, off time.Duration, err error) {
	timed := func(shipped bool) (time.Duration, time.Duration) {
		g, st := buildSimGraph(events, workers)
		runtime.GC()
		t0 := time.Now()
		var r vtime.Result
		if shipped {
			r = vtime.SimulateGraph(g, st, workers, costs)
		} else {
			r = simulateBaseline(g, st, workers, costs)
		}
		return time.Since(t0), r.Makespan
	}
	ratios := make([]float64, 0, repeat)
	for i := 0; i < repeat; i++ {
		shippedFirst := i%2 == 0
		da, ma := timed(shippedFirst)
		db, mb := timed(!shippedFirst)
		if ma != mb {
			return 0, 0, fmt.Errorf("baseline and shipped makespans differ (%v vs %v): replica out of sync", ma, mb)
		}
		ds, dbase := da, db
		if !shippedFirst {
			ds, dbase = db, da
		}
		ratios = append(ratios, float64(ds)/float64(dbase))
		if i == 0 || dbase < baseline {
			baseline = dbase
		}
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		med = (med + ratios[len(ratios)/2-1]) / 2
	}
	off = time.Duration(float64(baseline) * med)
	return baseline, off, nil
}
