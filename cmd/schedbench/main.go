// Command schedbench runs the scheduler microbenchmark grid — workloads ×
// implementations × worker counts, see internal/schedbench — and writes
// the results to a JSON report (default BENCH_scheduler.json at the repo
// root). The committed report is the before/after record of the
// work-stealing scheduler against the seed channel implementation;
// regenerate it after scheduler changes with:
//
//	go run ./cmd/schedbench -o BENCH_scheduler.json
//
// Observability flags:
//
//	-obs ADDR       serve live telemetry (/metrics, /trace, pprof) while the grid runs
//	-trace PATH     write a Chrome trace_event JSON of the run
//	-baseline PATH  compare steal cells against a prior report; warn beyond 2%
//	-quick          one workload, workers {1,4}, single sample (CI smoke)
//	-linger         keep serving -obs after the grid completes (Ctrl-C to exit)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/schedbench"
	"morphstreamr/internal/workload"
)

// Entry is one measured cell of the grid.
type Entry struct {
	Workload       string  `json:"workload"`
	Impl           string  `json:"impl"`
	Workers        int     `json:"workers"`
	Iterations     int     `json:"iterations"`
	NsPerEpoch     float64 `json:"ns_per_epoch"`
	NsPerOp        float64 `json:"ns_per_op"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	AllocsPerEpoch int64   `json:"allocs_per_epoch"`
	BytesPerEpoch  int64   `json:"bytes_per_epoch"`
}

// Speedup compares the implementations at one grid point.
type Speedup struct {
	Workload string `json:"workload"`
	Workers  int    `json:"workers"`
	// Throughput is steal ops/s over chanref ops/s (>1 means the
	// work-stealing scheduler is faster).
	Throughput float64 `json:"throughput_steal_over_chanref"`
	// Bytes is chanref bytes-per-epoch over steal bytes-per-epoch (>1
	// means the work-stealing scheduler allocates less).
	Bytes float64 `json:"bytes_chanref_over_steal"`
}

// AdaptiveEntry is one measured trajectory run of the adaptive section:
// a fresh multi-epoch stream executed end to end by one strategy mode —
// a fixed static worker count, or the adaptive controller.
type AdaptiveEntry struct {
	Trajectory string `json:"trajectory"`
	// Mode is "static-wN" or "adaptive".
	Mode      string  `json:"mode"`
	Epochs    int     `json:"epochs"`
	NsTotal   float64 `json:"ns_total"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Morphs counts controller decisions (adaptive mode only).
	Morphs int `json:"morphs,omitempty"`
}

// AdaptiveSummary ratios the adaptive controller against the best static
// worker count on one trajectory. The committed gates: on steady
// trajectories the ratio must stay >= 0.97 (adaptivity is nearly free when
// there is nothing to adapt to), and on the phase-shifting trajectory it
// must reach >= 1.15 (adaptivity pays when no static choice is right).
type AdaptiveSummary struct {
	Trajectory string `json:"trajectory"`
	BestStatic string `json:"best_static"`
	// AdaptiveOverBest is adaptive ops/s over best-static ops/s.
	AdaptiveOverBest float64 `json:"adaptive_over_best_static"`
}

// AllocEntry is one measured cell of the allocation section: an encode
// hot path run either "fresh" (allocate the payload per call, the
// pre-arena behaviour) or "arena" (encode into a pooled buffer, the seal
// path's behaviour since the arena pass).
type AllocEntry struct {
	Path        string `json:"path"`
	Mode        string `json:"mode"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// AllocSummary is the committed record of the arena pass on one path:
// BytesReduction = 1 - arena/fresh allocated bytes per op, gated >= 0.20.
type AllocSummary struct {
	Path           string  `json:"path"`
	BytesReduction float64 `json:"bytes_reduction"`
}

// BaselineCell compares one steal cell against the same cell of a prior
// report — the observability layer's hot-path overhead record: with
// tracing off, after/before must stay within noise of 1.0.
type BaselineCell struct {
	Workload string  `json:"workload"`
	Workers  int     `json:"workers"`
	NsBefore float64 `json:"ns_per_epoch_before"`
	NsAfter  float64 `json:"ns_per_epoch_after"`
	// Ratio is after/before; >1 means this run is slower than the baseline.
	Ratio float64 `json:"ratio"`
}

// Baseline is the comparison section written when -baseline is given.
type Baseline struct {
	Path string `json:"path"`
	// MaxRatio is the worst (largest) after/before ratio across cells.
	MaxRatio float64        `json:"max_ratio"`
	Cells    []BaselineCell `json:"cells"`
}

// Report is the file layout of BENCH_scheduler.json.
type Report struct {
	GoVersion       string            `json:"go_version"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
	NumCPU          int               `json:"num_cpu"`
	EpochEvents     int               `json:"epoch_events"`
	Note            string            `json:"note"`
	Entries         []Entry           `json:"entries"`
	Speedups        []Speedup         `json:"speedups"`
	Adaptive        []AdaptiveEntry   `json:"adaptive,omitempty"`
	AdaptiveSummary []AdaptiveSummary `json:"adaptive_summary,omitempty"`
	Alloc           []AllocEntry      `json:"alloc,omitempty"`
	AllocSummary    []AllocSummary    `json:"alloc_summary,omitempty"`
	Baseline        *Baseline         `json:"baseline,omitempty"`
}

// measure benchmarks one grid cell, keeping the fastest of repeat samples:
// the host is shared, so the minimum is the least-perturbed estimate of
// the scheduler's actual cost (allocation stats are deterministic and
// identical across samples). With a non-nil observer each run additionally
// emits an execute span and scheduler counters — that cost is part of what
// the sample then measures, which is the point of benchmarking with -trace.
func measure(wl schedbench.Workload, impl string, workers, repeat int, o *obs.Observer, stats *obs.SchedStats) Entry {
	ep := schedbench.Prepare(wl)
	numOps := ep.G.NumOps
	var res testing.BenchmarkResult
	best := 0.0
	for s := 0; s < repeat; s++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := schedbench.RunObserved(impl, ep, workers, o, stats); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if s == 0 || ns < best {
			best, res = ns, r
		}
	}
	nsPerEpoch := best
	return Entry{
		Workload:       wl.Name,
		Impl:           impl,
		Workers:        workers,
		Iterations:     res.N,
		NsPerEpoch:     nsPerEpoch,
		NsPerOp:        nsPerEpoch / float64(numOps),
		OpsPerSec:      float64(numOps) * 1e9 / nsPerEpoch,
		AllocsPerEpoch: res.AllocsPerOp(),
		BytesPerEpoch:  res.AllocedBytesPerOp(),
	}
}

// measureTrajectory runs one trajectory/mode cell, keeping the fastest of
// repeat samples (same minimum-as-estimate rationale as measure).
func measureTrajectory(tr schedbench.Trajectory, mode string, repeat int,
	run func() (schedbench.TrajectoryResult, error)) (AdaptiveEntry, error) {
	var best schedbench.TrajectoryResult
	for s := 0; s < repeat; s++ {
		r, err := run()
		if err != nil {
			return AdaptiveEntry{}, err
		}
		if s == 0 || r.Wall < best.Wall {
			best = r
		}
	}
	ns := float64(best.Wall.Nanoseconds())
	return AdaptiveEntry{
		Trajectory: tr.Name,
		Mode:       mode,
		Epochs:     tr.Epochs,
		NsTotal:    ns,
		OpsPerSec:  float64(best.Ops) * 1e9 / ns,
		Morphs:     best.Morphs,
	}, nil
}

// measureAlloc benchmarks one encode-path mode; bytes and allocs are the
// quantities of record (they are deterministic), the wall time is not kept.
func measureAlloc(path, mode string, fn func()) AllocEntry {
	fn() // warm the buffer pool so the arena numbers are steady-state
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return AllocEntry{
		Path:        path,
		Mode:        mode,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// allocProbes builds the encode hot-path fresh/arena pairs from one
// epoch-sized event batch.
func allocProbes() []struct {
	Path         string
	Fresh, Arena func()
} {
	events := workload.Batch(workload.NewGS(workload.DefaultGSParams()), schedbench.EpochEvents)
	recs := make([]codec.WALRecord, len(events))
	for i, ev := range events {
		recs[i] = codec.WALRecord{Event: ev}
	}
	return []struct {
		Path         string
		Fresh, Arena func()
	}{
		{
			Path:  "codec.EncodeEvents",
			Fresh: func() { codec.EncodeEvents(events) },
			Arena: func() {
				w := codec.GetBuffer()
				codec.EncodeEventsInto(w, events)
				codec.PutBuffer(w)
			},
		},
		{
			Path:  "codec.EncodeWAL",
			Fresh: func() { codec.EncodeWAL(recs) },
			Arena: func() {
				w := codec.GetBuffer()
				codec.EncodeWALInto(w, recs)
				codec.PutBuffer(w)
			},
		},
	}
}

// compareBaseline loads a prior report and ratios every current steal cell
// against its counterpart there (cells present in only one report are
// skipped, so grid changes do not break comparison).
func compareBaseline(path string, entries []Entry) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prior Report
	if err := json.Unmarshal(buf, &prior); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	before := map[string]float64{}
	for _, e := range prior.Entries {
		if e.Impl == schedbench.ImplSteal {
			before[fmt.Sprintf("%s/%d", e.Workload, e.Workers)] = e.NsPerEpoch
		}
	}
	b := &Baseline{Path: path}
	for _, e := range entries {
		if e.Impl != schedbench.ImplSteal {
			continue
		}
		prev, ok := before[fmt.Sprintf("%s/%d", e.Workload, e.Workers)]
		if !ok || prev <= 0 {
			continue
		}
		cell := BaselineCell{
			Workload: e.Workload,
			Workers:  e.Workers,
			NsBefore: prev,
			NsAfter:  e.NsPerEpoch,
			Ratio:    e.NsPerEpoch / prev,
		}
		b.Cells = append(b.Cells, cell)
		if cell.Ratio > b.MaxRatio {
			b.MaxRatio = cell.Ratio
		}
	}
	return b, nil
}

func main() {
	out := flag.String("o", "BENCH_scheduler.json", "output path for the JSON report")
	repeat := flag.Int("repeat", 3, "samples per cell; the fastest is kept")
	obsAddr := flag.String("obs", "", "serve live telemetry (/metrics, /trace, pprof) on this address, e.g. :9090")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this path")
	baselinePath := flag.String("baseline", "", "prior report to ratio steal cells against (overhead check)")
	quick := flag.Bool("quick", false, "one workload, workers {1,4}, single sample (CI smoke)")
	linger := flag.Bool("linger", false, "keep serving -obs after the grid completes")
	flag.Parse()

	var observer *obs.Observer
	var stats *obs.SchedStats
	if *obsAddr != "" || *tracePath != "" {
		observer = obs.NewObserver(1, 1<<15)
		stats = &obs.SchedStats{}
		stats.Register(observer.Registry())
	}
	var srv *obs.Server
	if *obsAddr != "" {
		var err error
		srv, err = obs.Serve(*obsAddr, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry at http://%s/metrics and /trace\n", srv.URL())
	}

	rep := Report{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		EpochEvents: schedbench.EpochEvents,
		Note: "One epoch graph per cell, rebuilt never: each iteration " +
			"ResetExec()s the graph and reruns the scheduler, so numbers " +
			"isolate scheduling cost from graph construction. chanref is " +
			"the seed channel-based scheduler preserved in " +
			"internal/scheduler/chanref.go; steal is the work-stealing " +
			"scheduler on the production path. The adaptive section runs " +
			"whole multi-epoch trajectories (fresh graphs per epoch) and " +
			"ratios the adaptive controller against the best static worker " +
			"count; the alloc section records the arena pass's fresh vs " +
			"pooled-buffer encode cost. The baseline section, when " +
			"present, ratios steal cells against a prior report — the " +
			"observability layer's tracing-off overhead record.",
	}

	workloads := schedbench.Workloads()
	workers := schedbench.Workers()
	if *quick {
		workloads = workloads[:1]
		workers = []int{1, 4}
		*repeat = 1
	}

	byKey := map[string]Entry{}
	for _, wl := range workloads {
		for _, impl := range schedbench.Impls() {
			for _, w := range workers {
				e := measure(wl, impl, w, *repeat, observer, stats)
				rep.Entries = append(rep.Entries, e)
				byKey[fmt.Sprintf("%s/%s/%d", wl.Name, impl, w)] = e
				fmt.Fprintf(os.Stderr, "%-12s %-8s w%d: %.0f ns/epoch, %.2f ns/op, %d B/op, %d allocs/op\n",
					wl.Name, impl, w, e.NsPerEpoch, e.NsPerOp, e.BytesPerEpoch, e.AllocsPerEpoch)
			}
		}
	}
	for _, wl := range workloads {
		for _, w := range workers {
			ref := byKey[fmt.Sprintf("%s/%s/%d", wl.Name, schedbench.ImplChanRef, w)]
			st := byKey[fmt.Sprintf("%s/%s/%d", wl.Name, schedbench.ImplSteal, w)]
			sp := Speedup{
				Workload:   wl.Name,
				Workers:    w,
				Throughput: st.OpsPerSec / ref.OpsPerSec,
			}
			if st.BytesPerEpoch > 0 {
				sp.Bytes = float64(ref.BytesPerEpoch) / float64(st.BytesPerEpoch)
			}
			rep.Speedups = append(rep.Speedups, sp)
		}
	}

	// Adaptive section: whole trajectories, static grid vs controller.
	trajectories := schedbench.Trajectories()
	if *quick {
		// CI smoke keeps the trajectory that actually exercises morphing.
		for _, tr := range trajectories {
			if tr.Name == "GS-phased" {
				trajectories = []schedbench.Trajectory{tr}
				break
			}
		}
	}
	maxWorkers := workers[len(workers)-1]
	for _, tr := range trajectories {
		bestStatic := AdaptiveEntry{}
		for _, w := range workers {
			w := w
			e, err := measureTrajectory(tr, fmt.Sprintf("static-w%d", w), *repeat,
				func() (schedbench.TrajectoryResult, error) { return schedbench.RunTrajectoryStatic(tr, w) })
			if err != nil {
				fmt.Fprintln(os.Stderr, "schedbench: adaptive:", err)
				os.Exit(1)
			}
			rep.Adaptive = append(rep.Adaptive, e)
			if e.OpsPerSec > bestStatic.OpsPerSec {
				bestStatic = e
			}
			fmt.Fprintf(os.Stderr, "%-18s %-10s: %8.2f ms, %.2f Mops/s\n",
				tr.Name, e.Mode, e.NsTotal/1e6, e.OpsPerSec/1e6)
		}
		e, err := measureTrajectory(tr, "adaptive", *repeat,
			func() (schedbench.TrajectoryResult, error) { return schedbench.RunTrajectoryAdaptive(tr, maxWorkers) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench: adaptive:", err)
			os.Exit(1)
		}
		rep.Adaptive = append(rep.Adaptive, e)
		sum := AdaptiveSummary{
			Trajectory:       tr.Name,
			BestStatic:       bestStatic.Mode,
			AdaptiveOverBest: e.OpsPerSec / bestStatic.OpsPerSec,
		}
		rep.AdaptiveSummary = append(rep.AdaptiveSummary, sum)
		fmt.Fprintf(os.Stderr, "%-18s %-10s: %8.2f ms, %.2f Mops/s, %d morphs (x%.2f of best static %s)\n",
			tr.Name, e.Mode, e.NsTotal/1e6, e.OpsPerSec/1e6, e.Morphs, sum.AdaptiveOverBest, sum.BestStatic)
	}

	// Allocation section: the arena pass's before/after on encode paths.
	for _, p := range allocProbes() {
		fresh := measureAlloc(p.Path, "fresh", p.Fresh)
		arena := measureAlloc(p.Path, "arena", p.Arena)
		rep.Alloc = append(rep.Alloc, fresh, arena)
		sum := AllocSummary{Path: p.Path}
		if fresh.BytesPerOp > 0 {
			sum.BytesReduction = 1 - float64(arena.BytesPerOp)/float64(fresh.BytesPerOp)
		}
		rep.AllocSummary = append(rep.AllocSummary, sum)
		fmt.Fprintf(os.Stderr, "%-20s fresh %d B/op %d allocs/op -> arena %d B/op %d allocs/op (-%.0f%% bytes)\n",
			p.Path, fresh.BytesPerOp, fresh.AllocsPerOp, arena.BytesPerOp, arena.AllocsPerOp, sum.BytesReduction*100)
	}

	if *baselinePath != "" {
		b, err := compareBaseline(*baselinePath, rep.Entries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench: baseline:", err)
			os.Exit(1)
		}
		rep.Baseline = b
		for _, c := range b.Cells {
			fmt.Fprintf(os.Stderr, "baseline %-12s w%d: %.0f -> %.0f ns/epoch (x%.3f)\n",
				c.Workload, c.Workers, c.NsBefore, c.NsAfter, c.Ratio)
		}
		if b.MaxRatio > 1.02 {
			fmt.Fprintf(os.Stderr, "schedbench: WARNING: worst cell is x%.3f of baseline (>1.02 budget)\n", b.MaxRatio)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Entries))

	if *tracePath != "" {
		events, dropped := observer.T().Drain()
		f, err := os.Create(*tracePath)
		if err == nil {
			err = obs.ExportChrome(f, events, dropped)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbench: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d dropped)\n", *tracePath, len(events), dropped)
	}

	if *linger && srv != nil {
		fmt.Fprintf(os.Stderr, "lingering on http://%s (Ctrl-C to exit)\n", srv.URL())
		select {}
	}
}
