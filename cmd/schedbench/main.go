// Command schedbench runs the scheduler microbenchmark grid — workloads ×
// implementations × worker counts, see internal/schedbench — and writes
// the results to a JSON report (default BENCH_scheduler.json at the repo
// root). The committed report is the before/after record of the
// work-stealing scheduler against the seed channel implementation;
// regenerate it after scheduler changes with:
//
//	go run ./cmd/schedbench -o BENCH_scheduler.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"morphstreamr/internal/schedbench"
)

// Entry is one measured cell of the grid.
type Entry struct {
	Workload       string  `json:"workload"`
	Impl           string  `json:"impl"`
	Workers        int     `json:"workers"`
	Iterations     int     `json:"iterations"`
	NsPerEpoch     float64 `json:"ns_per_epoch"`
	NsPerOp        float64 `json:"ns_per_op"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	AllocsPerEpoch int64   `json:"allocs_per_epoch"`
	BytesPerEpoch  int64   `json:"bytes_per_epoch"`
}

// Speedup compares the implementations at one grid point.
type Speedup struct {
	Workload string `json:"workload"`
	Workers  int    `json:"workers"`
	// Throughput is steal ops/s over chanref ops/s (>1 means the
	// work-stealing scheduler is faster).
	Throughput float64 `json:"throughput_steal_over_chanref"`
	// Bytes is chanref bytes-per-epoch over steal bytes-per-epoch (>1
	// means the work-stealing scheduler allocates less).
	Bytes float64 `json:"bytes_chanref_over_steal"`
}

// Report is the file layout of BENCH_scheduler.json.
type Report struct {
	GoVersion   string    `json:"go_version"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	NumCPU      int       `json:"num_cpu"`
	EpochEvents int       `json:"epoch_events"`
	Note        string    `json:"note"`
	Entries     []Entry   `json:"entries"`
	Speedups    []Speedup `json:"speedups"`
}

// measure benchmarks one grid cell, keeping the fastest of repeat samples:
// the host is shared, so the minimum is the least-perturbed estimate of
// the scheduler's actual cost (allocation stats are deterministic and
// identical across samples).
func measure(wl schedbench.Workload, impl string, workers, repeat int) Entry {
	ep := schedbench.Prepare(wl)
	numOps := ep.G.NumOps
	var res testing.BenchmarkResult
	best := 0.0
	for s := 0; s < repeat; s++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := schedbench.Run(impl, ep, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if s == 0 || ns < best {
			best, res = ns, r
		}
	}
	nsPerEpoch := best
	return Entry{
		Workload:       wl.Name,
		Impl:           impl,
		Workers:        workers,
		Iterations:     res.N,
		NsPerEpoch:     nsPerEpoch,
		NsPerOp:        nsPerEpoch / float64(numOps),
		OpsPerSec:      float64(numOps) * 1e9 / nsPerEpoch,
		AllocsPerEpoch: res.AllocsPerOp(),
		BytesPerEpoch:  res.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_scheduler.json", "output path for the JSON report")
	repeat := flag.Int("repeat", 3, "samples per cell; the fastest is kept")
	flag.Parse()

	rep := Report{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		EpochEvents: schedbench.EpochEvents,
		Note: "One epoch graph per cell, rebuilt never: each iteration " +
			"ResetExec()s the graph and reruns the scheduler, so numbers " +
			"isolate scheduling cost from graph construction. chanref is " +
			"the seed channel-based scheduler preserved in " +
			"internal/scheduler/chanref.go; steal is the work-stealing " +
			"scheduler on the production path.",
	}

	byKey := map[string]Entry{}
	for _, wl := range schedbench.Workloads() {
		for _, impl := range schedbench.Impls() {
			for _, workers := range schedbench.Workers() {
				e := measure(wl, impl, workers, *repeat)
				rep.Entries = append(rep.Entries, e)
				byKey[fmt.Sprintf("%s/%s/%d", wl.Name, impl, workers)] = e
				fmt.Fprintf(os.Stderr, "%-12s %-8s w%d: %.0f ns/epoch, %.2f ns/op, %d B/op, %d allocs/op\n",
					wl.Name, impl, workers, e.NsPerEpoch, e.NsPerOp, e.BytesPerEpoch, e.AllocsPerEpoch)
			}
		}
	}
	for _, wl := range schedbench.Workloads() {
		for _, workers := range schedbench.Workers() {
			ref := byKey[fmt.Sprintf("%s/%s/%d", wl.Name, schedbench.ImplChanRef, workers)]
			st := byKey[fmt.Sprintf("%s/%s/%d", wl.Name, schedbench.ImplSteal, workers)]
			sp := Speedup{
				Workload:   wl.Name,
				Workers:    workers,
				Throughput: st.OpsPerSec / ref.OpsPerSec,
			}
			if st.BytesPerEpoch > 0 {
				sp.Bytes = float64(ref.BytesPerEpoch) / float64(st.BytesPerEpoch)
			}
			rep.Speedups = append(rep.Speedups, sp)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d cells)\n", *out, len(rep.Entries))
}
