// Command storebench measures the bounded segment store: that recovery
// replay stays flat as the run length grows (the checkpoint-GC-release
// cycle bounds the live log to a fixed segment budget, so replay cost is a
// function of the snapshot interval, never of history length), and that
// incremental checkpoints shrink durable snapshot bytes in proportion to
// the dirty fraction. The committed report, BENCH_store.json, carries the
// acceptance gates CI reads with jq; the tool exits non-zero when a gate
// fails. Regenerate after storage or checkpoint changes with:
//
//	go run ./cmd/storebench -o BENCH_store.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Run shape shared by every replay cell: commit markers every 2 epochs,
// snapshots (and therefore segment releases) every 4.
const (
	commitEvery   = 2
	snapshotEvery = 4
	// tailEpochs pushes each run past its last snapshot so the recovery has
	// a real tail to replay — the same 2-epoch window at every run length.
	tailEpochs = 2
)

// ReplayCell is one (mechanism, run length) measurement.
type ReplayCell struct {
	Kind   string `json:"kind"`
	Epochs int    `json:"epochs"`
	Events int    `json:"events_total"`
	// EventsReplayed is the recovery's replay volume: inputs reloaded above
	// the snapshot frontier. Bounded replay means this number is identical
	// across run lengths.
	EventsReplayed int    `json:"events_replayed"`
	SnapshotEpoch  uint64 `json:"snapshot_epoch"`
	LastEpoch      uint64 `json:"last_epoch"`
	// LiveSegments is the max live (unreleased) segment count over the
	// input, ft, and checkpoint logs at the crash point; SegmentBudget is
	// the device's configured per-log cap, which the run ran under without
	// ever hitting ErrSegmentBudget.
	LiveSegments     int `json:"live_segments"`
	ReleasedSegments int `json:"released_segments"`
	SegmentBudget    int `json:"segment_budget"`
}

// IncCell is one dirty-fraction measurement of incremental checkpoints.
type IncCell struct {
	Rows       uint32  `json:"rows"`
	EpochSize  int     `json:"epoch_size"`
	BaseCount  int     `json:"base_count"`
	DeltaCount int     `json:"delta_count"`
	AvgBase    float64 `json:"avg_base_bytes"`
	AvgDelta   float64 `json:"avg_delta_bytes"`
	// Ratio is avg delta bytes over avg base bytes — the incremental
	// saving; it must stay below 1 and shrink as the table grows (the
	// per-interval dirty fraction falls).
	Ratio float64 `json:"delta_over_base"`
}

// Report is the file layout of BENCH_store.json.
type Report struct {
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Note        string         `json:"note"`
	Replay      []ReplayCell   `json:"replay"`
	Incremental []IncCell      `json:"incremental"`
	Checks      map[string]any `json:"checks"`
}

var mechanisms = []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}

func main() {
	var (
		out       = flag.String("o", "BENCH_store.json", "output path for the JSON report")
		quick     = flag.Bool("quick", false, "smaller cells (CI smoke)")
		epochSize = flag.Int("events", 24, "events per epoch")
		segBytes  = flag.Int("segbytes", 2048, "segment payload cap in bytes")
		segBudget = flag.Int("segments", 24, "per-log live-segment budget (MaxSegments)")
		seed      = flag.Int64("seed", 41, "workload seed")
	)
	flag.Parse()

	runLengths := []int{12, 24, 48}
	if *quick {
		runLengths = []int{12, 24}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Checks:     map[string]any{},
		Note: "replay: each cell runs the seeded SL workload on the bounded " +
			"segment store (MaxSegments enforced by the device) for the given " +
			"run length plus a 2-epoch tail, crashes, and recovers; " +
			"events_replayed is the input volume reloaded above the snapshot " +
			"frontier. Bounded replay means events_replayed and live_segments " +
			"are flat across run lengths — replay cost is set by the snapshot " +
			"interval and the segment budget, never by history length. " +
			"incremental: delta-over-base is the durable byte ratio of delta " +
			"checkpoints to full base snapshots as the table (and so the " +
			"clean fraction) grows; the gate is ratio < 1 everywhere, " +
			"shrinking with the dirty fraction.",
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "storebench: "+format+"\n", args...)
		failed = true
	}

	// --- Bounded replay across run lengths -------------------------------
	replayBudget := snapshotEvery * *epochSize
	perKindReplay := map[string][]int{}
	maxReplayed, maxLive := 0, 0
	for _, kind := range mechanisms {
		for _, n := range runLengths {
			cell, err := replayCell(kind, n, *epochSize, *segBytes, *segBudget, *seed)
			if err != nil {
				fail("%v epochs=%d: %v", kind, n, err)
				continue
			}
			rep.Replay = append(rep.Replay, *cell)
			perKindReplay[cell.Kind] = append(perKindReplay[cell.Kind], cell.EventsReplayed)
			if cell.EventsReplayed > maxReplayed {
				maxReplayed = cell.EventsReplayed
			}
			if cell.LiveSegments > maxLive {
				maxLive = cell.LiveSegments
			}
			fmt.Fprintf(os.Stderr, "%-4s epochs=%2d  replayed %3d events  snap=%2d last=%2d  live=%2d released=%2d\n",
				cell.Kind, n, cell.EventsReplayed, cell.SnapshotEpoch, cell.LastEpoch,
				cell.LiveSegments, cell.ReleasedSegments)
		}
	}
	replayFlat := true
	for kind, rs := range perKindReplay {
		for _, r := range rs[1:] {
			if r != rs[0] {
				replayFlat = false
				fail("%s: replay grows with run length: %v", kind, rs)
			}
		}
	}
	withinBudget := maxReplayed <= replayBudget && maxReplayed > 0
	if !withinBudget {
		fail("max replay %d events outside budget %d (snapshot interval x epoch size)", maxReplayed, replayBudget)
	}
	segmentsBounded := maxLive <= *segBudget && maxLive > 0
	if !segmentsBounded {
		fail("live segments %d outside budget %d", maxLive, *segBudget)
	}
	rep.Checks["replay_budget_events"] = replayBudget
	rep.Checks["max_events_replayed"] = maxReplayed
	rep.Checks["replay_flat_pass"] = replayFlat
	rep.Checks["replay_within_budget_pass"] = withinBudget
	rep.Checks["segment_budget"] = *segBudget
	rep.Checks["max_live_segments"] = maxLive
	rep.Checks["segments_bounded_pass"] = segmentsBounded

	// --- Incremental checkpoint bytes vs dirty fraction ------------------
	incRows := []uint32{512, 2048, 8192}
	if *quick {
		incRows = []uint32{512, 2048}
	}
	maxRatio, prevRatio := 0.0, 0.0
	ratioShrinks := true
	for i, rows := range incRows {
		cell, err := incrementalCell(rows, *epochSize, *seed)
		if err != nil {
			fail("incremental rows=%d: %v", rows, err)
			continue
		}
		rep.Incremental = append(rep.Incremental, *cell)
		if cell.Ratio > maxRatio {
			maxRatio = cell.Ratio
		}
		if i > 0 && cell.Ratio >= prevRatio {
			ratioShrinks = false
		}
		prevRatio = cell.Ratio
		fmt.Fprintf(os.Stderr, "inc rows=%5d  bases=%d deltas=%d  avg base %7.0f B  avg delta %7.0f B  ratio %.3f\n",
			rows, cell.BaseCount, cell.DeltaCount, cell.AvgBase, cell.AvgDelta, cell.Ratio)
	}
	incBelowFull := maxRatio > 0 && maxRatio < 1
	if !incBelowFull {
		fail("incremental checkpoint ratio %.3f not below 1", maxRatio)
	}
	if !ratioShrinks {
		fail("delta-over-base ratio does not shrink as the dirty fraction falls")
	}
	rep.Checks["max_delta_over_base"] = maxRatio
	rep.Checks["incremental_below_full_pass"] = incBelowFull
	rep.Checks["ratio_tracks_dirty_fraction_pass"] = ratioShrinks

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "storebench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "storebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d replay cells, %d incremental cells)\n",
		*out, len(rep.Replay), len(rep.Incremental))
	if failed {
		os.Exit(1)
	}
}

func slGen(seed int64, rows uint32) workload.Generator {
	p := workload.DefaultSLParams()
	p.Seed, p.Rows = seed, rows
	return workload.NewSL(p)
}

// replayCell runs one mechanism for n epochs plus the tail on the bounded
// segment store, crashes, recovers, and measures the replay volume and the
// live-segment high-water mark.
func replayCell(kind ftapi.Kind, n, epochSize, segBytes, segBudget int, seed int64) (*ReplayCell, error) {
	seg := storage.NewSegStore(storage.SegConfig{SegmentBytes: segBytes, MaxSegments: segBudget})
	gen := slGen(seed, 512)
	shape := types.RunShape{Workers: 2, CommitEvery: commitEvery, SnapshotEvery: snapshotEvery}
	bytes := metrics.NewBytes()
	e, err := engine.New(engine.Config{
		App: gen.App(), Device: seg, RunShape: shape, Bytes: bytes,
		Mechanism: core.NewMechanism(kind, seg, bytes, msr.Default()),
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i := 0; i < n+tailEpochs; i++ {
		batch := workload.Batch(gen, epochSize)
		total += len(batch)
		if err := e.ProcessEpoch(batch); err != nil {
			return nil, err
		}
	}
	live := 0
	for _, log := range []string{storage.LogInput, storage.LogFT, storage.LogCkpt} {
		if s := seg.Segments(log); s > live {
			live = s
		}
	}
	released := seg.Released(storage.LogInput) + seg.Released(storage.LogFT) + seg.Released(storage.LogCkpt)
	e.Crash()

	b2 := metrics.NewBytes()
	_, report, err := engine.Recover(engine.Config{
		App: gen.App(), Device: seg, RunShape: shape, Bytes: b2,
		Mechanism: core.NewMechanism(kind, seg, b2, msr.Default()),
	})
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	return &ReplayCell{
		Kind:             kind.String(),
		Epochs:           n + tailEpochs,
		Events:           total,
		EventsReplayed:   report.EventsReplayed,
		SnapshotEpoch:    report.SnapshotEpoch,
		LastEpoch:        report.LastEpoch,
		LiveSegments:     live,
		ReleasedSegments: released,
		SegmentBudget:    segBudget,
	}, nil
}

// incrementalCell runs the WAL mechanism with incremental checkpoints
// (snapshots every 2 epochs, a full base every 4th snapshot) over tables of
// the given size and reports the durable byte ratio of deltas to bases.
func incrementalCell(rows uint32, epochSize int, seed int64) (*IncCell, error) {
	const (
		snapEvery = 2
		snapBase  = 4
		epochs    = 16
	)
	dev := storage.NewSegStore(storage.SegConfig{SegmentBytes: 4096})
	gen := slGen(seed, rows)
	bytes := metrics.NewBytes()
	e, err := engine.New(engine.Config{
		App: gen.App(), Device: dev, Bytes: bytes,
		Mechanism: core.NewMechanism(ftapi.WAL, dev, bytes, msr.Default()),
		RunShape:  types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: snapEvery, SnapshotBase: snapBase},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < epochs; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, epochSize)); err != nil {
			return nil, err
		}
	}
	// The device's byte counters accumulate every write: total base bytes
	// land under the snapshot blob, total delta bytes under the checkpoint
	// log. The marker schedule fixes the counts: snapshots at every
	// snapEvery epochs, a base when the snapshot ordinal divides snapBase.
	written := dev.BytesWritten()
	snapshots := epochs / snapEvery
	bases := 0
	for ord := 1; ord <= snapshots; ord++ {
		if ord%snapBase == 0 {
			bases++
		}
	}
	deltas := snapshots - bases
	if bases == 0 || deltas == 0 {
		return nil, fmt.Errorf("degenerate schedule: %d bases, %d deltas", bases, deltas)
	}
	avgBase := float64(written[storage.BlobSnapshot]) / float64(bases)
	avgDelta := float64(written[storage.LogCkpt]) / float64(deltas)
	return &IncCell{
		Rows:       rows,
		EpochSize:  epochSize,
		BaseCount:  bases,
		DeltaCount: deltas,
		AvgBase:    avgBase,
		AvgDelta:   avgDelta,
		Ratio:      avgDelta / avgBase,
	}, nil
}
