package supervisor

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/tpg"
)

// TestClassifyWrappedChains (satellite: error-identity plumbing): the
// incident taxonomy must see through arbitrary fmt.Errorf %w nesting — the
// layers between a device fault and the supervisor (mechanism, engine,
// shard coordinator) all annotate errors, and a single %v anywhere in that
// chain silently turns every cause into "io-fatal".
func TestClassifyWrappedChains(t *testing.T) {
	deep := func(err error) error {
		return fmt.Errorf("engine: epoch 7: %w", fmt.Errorf("seal: %w", err))
	}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"poisoned direct", ftapi.ErrPoisoned, "poisoned"},
		{"poisoned nested", deep(fmt.Errorf("commit: %w: %w", ftapi.ErrPoisoned, errors.New("disk gone"))), "poisoned"},
		{"exhausted nested", deep(fmt.Errorf("storage: append: %w after 4 attempts: %w", storage.ErrRetryExhausted, storage.Transient(errors.New("timeout")))), "io-transient-exhausted"},
		{"circuit open nested", deep(storage.ErrCircuitOpen), "io-transient-exhausted"},
		{"panic nested", deep(fmt.Errorf("worker 3: %w: boom", scheduler.ErrOpPanic)), "panic"},
		{"plain fatal", deep(errors.New("device unplugged")), "io-fatal"},
		{"bare transient is not exhausted", deep(storage.Transient(errors.New("timeout"))), "io-fatal"},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q (chain: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}

// TestRecoveryBudgetPreservesCauseIdentity: the terminal budget error wraps
// the last failure with %w, so callers can still errors.Is the root cause
// (here the confined panic sentinel) through ErrRecoveryBudget.
func TestRecoveryBudgetPreservesCauseIdentity(t *testing.T) {
	app, batches := fixedBatches(31)
	sup, err := New(Config{
		App: app, Device: storage.NewMem(),
		Mechanism:     mechFactory(ftapi.WAL),
		Source:        BatchSource(batches),
		RunShape:      tShape,
		MaxRecoveries: 1,
		FireHook:      func(n *tpg.OpNode) { panic("chaos: persistent fault") },
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sup.Run()
	if !errors.Is(err, ErrRecoveryBudget) {
		t.Fatalf("want ErrRecoveryBudget, got %v", err)
	}
	if !errors.Is(err, scheduler.ErrOpPanic) {
		t.Fatalf("budget error lost the root cause identity: %v", err)
	}
	if Classify(err) != "panic" {
		t.Fatalf("budget error classifies as %q, want panic: %v", Classify(err), err)
	}
}

// TestOnStateObservesTransitions: OnState sees the lifecycle as it happens —
// Recovering during a heal, Running when the heal completes, Stopped at the
// end — so a serving layer can shed load the moment a heal begins, not after
// it ends. (The initial Running is the construction state, not a transition,
// so OnState does not report it.)
func TestOnStateObservesTransitions(t *testing.T) {
	app, batches := fixedBatches(32)
	flaky := storage.NewFlaky(storage.NewMem())
	flaky.AddOutage(6, 1)
	var mu sync.Mutex
	var seen []State
	sup, err := New(Config{
		App: app, Device: flaky,
		Mechanism: mechFactory(ftapi.WAL),
		Source:    BatchSource(batches),
		RunShape:  tShape,
		OnState: func(st State) {
			mu.Lock()
			seen = append(seen, st)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 || seen[len(seen)-1] != Stopped {
		t.Fatalf("transitions = %v, want Stopped last", seen)
	}
	var recovering, running bool
	for i, st := range seen {
		if st == Recovering {
			recovering = true
		}
		if st == Running && recovering && i < len(seen)-1 {
			running = true // back to Running after the heal
		}
	}
	if !recovering {
		t.Fatalf("heal ran but OnState never saw Recovering: %v", seen)
	}
	if !running {
		t.Fatalf("heal never returned to Running before Stopped: %v", seen)
	}
}
