// Package supervisor makes the engine self-healing: it watches a live
// engine for failures — surfaced I/O errors, poisoned committers, worker
// panics, and silent stalls — and on failure runs the configured
// mechanism's recovery *in-process*, re-seats the stream at the last
// committed punctuation, and resumes processing, recording detection
// latency and MTTR for every incident.
//
// The paper measures replay speed; fault-recovery benchmarking (Vogel et
// al.) measures what operators actually wait for: end-to-end healing time
// while the stream is live. The supervisor is the machinery that turns the
// repo's offline recovery path into that online story.
//
// # Failure handling layers
//
// Transient device faults never reach the supervisor: each engine
// incarnation writes through its own storage.Retrying wrapper, which
// absorbs error storms under backoff (state dips to Degraded while a storm
// is being absorbed, back to Running on the next completed epoch). Only
// retry exhaustion, fatal errors, panics, and stalls escalate to healing.
//
// # Incarnations and fencing
//
// Each live engine is one incarnation, bound to a write-fence generation.
// Healing advances the fence first — after that, every durable write from
// the abandoned incarnation fails with storage.ErrFenced, so a zombie
// goroutine that wakes up later (a stall that un-wedges mid-recovery)
// cannot interleave its log records with the new incarnation's. Because
// every output-release gate requires a durable write, a fenced zombie can
// also never release outputs: exactly-once delivery holds across
// incarnations, which is what lets the supervisor accumulate the output
// stream through the engine Sink callback.
package supervisor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// State is the supervisor's coarse health gauge:
// Running → Degraded (absorbing a transient storm) → Running, or
// Running → Recovering (in-process heal) → Running, terminating in
// Stopped (source exhausted) or Failed (heal impossible or budget spent).
type State int32

// Supervisor states.
const (
	Running State = iota
	Degraded
	Recovering
	Stopped
	Failed
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Degraded:
		return "degraded"
	case Recovering:
		return "recovering"
	case Stopped:
		return "stopped"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrStalled marks a watchdog-detected stall: no epoch completed within
// the stall timeout while the source still had input.
var ErrStalled = errors.New("supervisor: epoch progress stalled")

// ErrRecoveryBudget is returned when failures keep recurring past
// MaxRecoveries: the fault is evidently not one healing can fix.
var ErrRecoveryBudget = errors.New("supervisor: recovery budget exhausted")

// Source feeds the stream: it returns the batch for a 1-based epoch, or
// ok=false when the stream is exhausted. It must be rewindable — after a
// recovery the supervisor re-reads from the last committed punctuation
// onward, so repeated calls for the same epoch must return the same batch.
// (Epochs the crashed incarnation persisted are replayed from the device,
// not the source; the source re-supplies only what never became durable.)
type Source func(epoch uint64) ([]types.Event, bool)

// BatchSource adapts a fixed batch list into a (trivially rewindable)
// Source: batch i serves epoch i+1.
func BatchSource(batches [][]types.Event) Source {
	return func(epoch uint64) ([]types.Event, bool) {
		if epoch == 0 || epoch > uint64(len(batches)) {
			return nil, false
		}
		return batches[epoch-1], true
	}
}

// Config assembles a supervised engine.
type Config struct {
	// App is the transactional stream application.
	App types.App
	// Device is the durable device (possibly a chaos injector stack). The
	// supervisor owns the resilience wrappers: each incarnation writes
	// through a fresh Retrying wrapper and a fence-generation view, so
	// Device itself should NOT already be wrapped in either.
	Device storage.Device
	// Mechanism creates a fresh fault-tolerance mechanism against the
	// given device and byte accounting. Called once per incarnation:
	// mechanisms hold volatile replay state that dies with the incarnation
	// it belonged to. Must not return a NAT mechanism (nothing to recover
	// from).
	Mechanism func(dev storage.Device, bytes *metrics.Bytes) ftapi.Mechanism
	// Source feeds input batches; required.
	Source Source

	// RunShape carries the engine knobs (Workers, CommitEvery,
	// SnapshotEvery, AutoCommit, Pipeline), passed through to every
	// incarnation; see types.RunShape for the zero-value rule.
	types.RunShape
	// AsyncCommit passes through to every incarnation (see engine.Config).
	AsyncCommit bool

	// Retry tunes each incarnation's transient-fault absorption.
	Retry storage.RetryPolicy
	// StallTimeout is how long the watchdog waits without a completed
	// epoch before declaring a stall (default 2s). It must comfortably
	// exceed the slowest healthy epoch.
	StallTimeout time.Duration
	// PollInterval is the watchdog's check period (default StallTimeout/8,
	// floor 5ms).
	PollInterval time.Duration
	// MaxRecoveries bounds in-process heals before giving up (default 4).
	MaxRecoveries int
	// OnState, when non-nil, observes every state transition as it
	// happens, including the lock-free Degraded dips on the retry path and
	// the Recovering window of an in-process heal. It is invoked from
	// supervisor and engine goroutines, so implementations must be
	// concurrency-safe and fast (a gauge store, a channel send). The
	// serving layer uses the Recovering notification to shed load by
	// tenant priority while a heal is in flight.
	OnState func(State)
	// OnStall, when non-nil, runs after the fence advances during a stall
	// heal. It is the cancellation hook that un-wedges the stuck operation
	// (chaos tests park an op on a channel; production hooks would cancel
	// a context), letting the abandoned incarnation's goroutines drain —
	// into the fence, harmlessly — instead of leaking.
	OnStall func()
	// FireHook passes through to each incarnation's scheduler (chaos
	// injection point).
	FireHook func(*tpg.OpNode)
	// Health receives incident records; nil allocates a fresh log.
	Health *metrics.Health
	// Obs, when non-nil, observes the supervised run: the incident log and
	// state transitions are published to its registry, a "reseat" recovery
	// span brackets every heal, and each incarnation's engine emits its
	// epoch/recovery telemetry through it.
	Obs *obs.Observer
}

func (c *Config) normalize() error {
	if c.App == nil || c.Device == nil || c.Mechanism == nil || c.Source == nil {
		return errors.New("supervisor: App, Device, Mechanism, and Source are required")
	}
	if err := c.RunShape.Normalize(); err != nil {
		return fmt.Errorf("supervisor: %w", err)
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = c.StallTimeout / 8
		if c.PollInterval < 5*time.Millisecond {
			c.PollInterval = 5 * time.Millisecond
		}
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 4
	}
	if c.Health == nil {
		c.Health = metrics.NewHealth()
	}
	return nil
}

// progressCell is one incarnation's liveness signal. Each incarnation
// stamps only its own cell, so a zombie waking up after its fence cannot
// suppress the watchdog of the incarnation that replaced it.
type progressCell struct {
	epochs atomic.Uint64 // last completed epoch
	touch  atomic.Int64  // UnixNano of the last completed epoch (or start)
}

// Supervisor runs and heals one engine. Create with New, drive with Run.
type Supervisor struct {
	cfg   Config
	fence *storage.Fence
	state atomic.Int32

	mu         sync.Mutex
	liveGen    uint64
	cells      map[uint64]*progressCell
	outputs    []types.Output
	reports    []*engine.RecoveryReport
	savedStats storage.RetryStats
	retry      *storage.Retrying
	eng        *engine.Engine
	recoveries int
}

// New validates the configuration and prepares a supervisor. Processing
// starts when Run is called.
func New(cfg Config) (*Supervisor, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if k := cfg.Mechanism(storage.NewMem(), metrics.NewBytes()).Kind(); k == ftapi.NAT {
		return nil, errors.New("supervisor: native execution persists nothing; self-healing requires a recoverable mechanism")
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		reg.AttachHealth("health", cfg.Health)
	}
	return &Supervisor{cfg: cfg, fence: storage.NewFence(cfg.Device)}, nil
}

// State returns the current health gauge.
func (s *Supervisor) State() State { return State(s.state.Load()) }

func (s *Supervisor) setState(st State) {
	if prev := State(s.state.Swap(int32(st))); prev != st {
		s.observeTransition(st)
	}
}

// Outputs returns a snapshot of every output released downstream so far,
// across all incarnations, in release order.
func (s *Supervisor) Outputs() []types.Output {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]types.Output, len(s.outputs))
	copy(out, s.outputs)
	return out
}

// Reports returns the recovery reports of the heals performed so far.
func (s *Supervisor) Reports() []*engine.RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*engine.RecoveryReport, len(s.reports))
	copy(out, s.reports)
	return out
}

// Health returns the incident log.
func (s *Supervisor) Health() *metrics.Health { return s.cfg.Health }

// Recoveries returns how many in-process heals have completed.
func (s *Supervisor) Recoveries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoveries
}

// RetryStats aggregates transient-fault absorption across incarnations.
func (s *Supervisor) RetryStats() storage.RetryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.savedStats
	if s.retry != nil {
		cur := s.retry.Stats()
		total.Retries += cur.Retries
		total.Absorbed += cur.Absorbed
		total.Exhausted += cur.Exhausted
		total.Fatal += cur.Fatal
		total.BreakerOpens += cur.BreakerOpens
		total.FastFails += cur.FastFails
	}
	return total
}

// Engine exposes the live incarnation (nil before Run). Test inspection
// only; the supervisor owns its lifecycle.
func (s *Supervisor) Engine() *engine.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// failure describes one detected incident before healing.
type failure struct {
	cause      string // "panic" | "poisoned" | "io-transient-exhausted" | "io-fatal" | "stall"
	err        error  // nil for stalls
	detectedAt time.Time
	detection  time.Duration
}

// Classify maps a surfaced engine error to its incident cause label
// ("panic", "poisoned", "io-transient-exhausted", or "io-fatal"). The
// shard coordinator's per-shard heal shares the supervisor's taxonomy so
// incident logs read identically whether one engine or one shard died.
func Classify(err error) string { return classify(err) }

// classify maps a surfaced engine error to its incident cause.
func classify(err error) string {
	switch {
	case errors.Is(err, scheduler.ErrOpPanic):
		return "panic"
	case errors.Is(err, ftapi.ErrPoisoned):
		return "poisoned"
	case errors.Is(err, storage.ErrRetryExhausted), errors.Is(err, storage.ErrCircuitOpen):
		return "io-transient-exhausted"
	default:
		return "io-fatal"
	}
}

// Run processes the stream to exhaustion, healing failures along the way.
// It returns nil once the source is drained and everything committed, or
// the terminal error when healing is impossible or the recovery budget is
// spent. Run must be called at most once.
func (s *Supervisor) Run() error {
	s.setState(Running)
	eng, retry, err := s.newIncarnation()
	if err != nil {
		s.setState(Failed)
		return err
	}
	s.install(eng, retry)
	next := uint64(1)
	for {
		fail, done := s.supervise(eng, next)
		if done {
			s.setState(Stopped)
			return nil
		}
		s.mu.Lock()
		over := s.recoveries >= s.cfg.MaxRecoveries
		s.mu.Unlock()
		if over {
			s.recordIncident(fail, 0, false)
			s.setState(Failed)
			// %w on the last failure keeps the underlying identity
			// (ErrPoisoned, ErrRetryExhausted, ...) matchable through the
			// budget error, so callers can still classify what kept killing
			// the engine.
			return fmt.Errorf("%w (%d heals): last failure %s: %w",
				ErrRecoveryBudget, s.cfg.MaxRecoveries, fail.cause, fail.err)
		}
		healed, report, err := s.heal(fail)
		if err != nil {
			s.setState(Failed)
			return fmt.Errorf("supervisor: heal after %s failed: %w", fail.cause, err)
		}
		eng = healed
		next = report.LastEpoch + 1
		s.setState(Running)
	}
}

// newIncarnation builds the storage stack and a fresh engine for the
// current fence generation: engine → Retrying → fence view → Device.
func (s *Supervisor) newIncarnation() (*engine.Engine, *storage.Retrying, error) {
	dev, retry := s.stack()
	bytes := metrics.NewBytes()
	eng, err := engine.New(s.engineConfig(dev, bytes))
	if err != nil {
		return nil, nil, err
	}
	return eng, retry, nil
}

// stack builds one incarnation's device stack bound to the current fence
// generation. The Retrying wrapper sits OUTSIDE the fence view so each
// retry attempt takes the fence check individually: advancing the fence
// never waits out a backoff sleep, and a fenced retry loop dies on its
// next attempt (ErrFenced is fatal, not transient).
func (s *Supervisor) stack() (storage.Device, *storage.Retrying) {
	pol := s.cfg.Retry
	userRetry := pol.OnRetry
	pol.OnRetry = func(op string, attempt int, err error) {
		// A storm is being absorbed: dip to Degraded until an epoch lands.
		if s.state.CompareAndSwap(int32(Running), int32(Degraded)) {
			s.observeTransition(Degraded)
		}
		if userRetry != nil {
			userRetry(op, attempt, err)
		}
	}
	st := storage.NewStack(s.cfg.Device).WithFence(s.fence).WithRetry(pol)
	return st.MustBuild(), st.Retrying
}

// observeTransition accounts a state change that bypassed setState (the
// lock-free Degraded dips on the retry and epoch paths) and notifies the
// configured state listener.
func (s *Supervisor) observeTransition(st State) {
	if reg := s.cfg.Obs.Registry(); reg != nil {
		reg.Gauge("supervisor.state").Set(int64(st))
		reg.Counter("supervisor.transitions").Inc()
		reg.Counter("supervisor.to_" + st.String()).Inc()
	}
	s.cfg.Obs.Timeline().Add("supervisor", "state", st.String(), nil)
	if s.cfg.OnState != nil {
		s.cfg.OnState(st)
	}
}

// engineConfig assembles one incarnation's engine configuration. The
// OnEpoch and Sink closures are bound to the current fence generation:
// only the live incarnation's callbacks mutate supervisor state.
func (s *Supervisor) engineConfig(dev storage.Device, bytes *metrics.Bytes) engine.Config {
	gen := s.fence.Generation()
	cell := s.cellFor(gen)
	return engine.Config{
		RunShape:    s.cfg.RunShape,
		App:         s.cfg.App,
		Device:      dev,
		Mechanism:   s.cfg.Mechanism(dev, bytes),
		AsyncCommit: s.cfg.AsyncCommit,
		Bytes:       bytes,
		Obs:         s.cfg.Obs,
		OnEpoch: func(epoch uint64) {
			cell.epochs.Store(epoch)
			cell.touch.Store(time.Now().UnixNano())
			// Storm absorbed (if any): a completed epoch means the device
			// is accepting writes again.
			if s.state.CompareAndSwap(int32(Degraded), int32(Running)) {
				s.observeTransition(Running)
			}
		},
		Sink: func(outs []types.Output) {
			s.mu.Lock()
			if s.liveGen == gen {
				s.outputs = append(s.outputs, outs...)
			}
			s.mu.Unlock()
		},
		FireHook: s.cfg.FireHook,
	}
}

// cells maps fence generation → progress cell, created lazily so the
// engineConfig and supervise of one incarnation share a cell.
func (s *Supervisor) cellFor(gen uint64) *progressCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cells == nil {
		s.cells = make(map[uint64]*progressCell)
	}
	c, ok := s.cells[gen]
	if !ok {
		c = &progressCell{}
		s.cells[gen] = c
	}
	return c
}

// install publishes an incarnation as live.
func (s *Supervisor) install(eng *engine.Engine, retry *storage.Retrying) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retry != nil {
		// Bank the dead incarnation's counters before replacing it.
		cur := s.retry.Stats()
		s.savedStats.Retries += cur.Retries
		s.savedStats.Absorbed += cur.Absorbed
		s.savedStats.Exhausted += cur.Exhausted
		s.savedStats.Fatal += cur.Fatal
		s.savedStats.BreakerOpens += cur.BreakerOpens
		s.savedStats.FastFails += cur.FastFails
	}
	s.eng = eng
	s.retry = retry
	s.liveGen = s.fence.Generation()
}

// supervise drives one incarnation from epoch `next` and watches it. It
// returns done=true when the source drained cleanly, or the detected
// failure otherwise. The drive goroutine is never joined on failure — it
// may be wedged; the fence plus the OnStall hook make abandoning it safe.
func (s *Supervisor) supervise(eng *engine.Engine, next uint64) (failure, bool) {
	cell := s.cellFor(s.fence.Generation())
	cell.touch.Store(time.Now().UnixNano())

	done := make(chan error, 1)
	go func() { done <- s.drive(eng, next) }()

	ticker := time.NewTicker(s.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			if err == nil {
				return failure{}, true
			}
			return failure{
				cause:      classify(err),
				err:        err,
				detectedAt: time.Now(),
			}, false
		case <-ticker.C:
			last := time.Unix(0, cell.touch.Load())
			if idle := time.Since(last); idle >= s.cfg.StallTimeout {
				return failure{
					cause:      "stall",
					err:        fmt.Errorf("%w: no epoch completed in %v", ErrStalled, idle.Round(time.Millisecond)),
					detectedAt: time.Now(),
					detection:  idle,
				}, false
			}
		}
	}
}

// drive feeds the source into the engine from epoch `next` until the
// source drains or the engine fails.
func (s *Supervisor) drive(eng *engine.Engine, next uint64) error {
	if s.cfg.Pipeline {
		var batches [][]types.Event
		for ep := next; ; ep++ {
			events, ok := s.cfg.Source(ep)
			if !ok {
				break
			}
			batches = append(batches, events)
		}
		if len(batches) == 0 {
			return nil
		}
		return eng.ProcessEpochs(batches)
	}
	for ep := next; ; ep++ {
		events, ok := s.cfg.Source(ep)
		if !ok {
			return nil
		}
		if err := eng.ProcessEpoch(events); err != nil {
			return err
		}
	}
}

// heal performs one in-process recovery: fence off the failed incarnation,
// un-wedge it if stalled, rebuild an engine from the durable device, and
// account the incident. The returned report locates where processing
// resumes (LastEpoch + 1).
func (s *Supervisor) heal(fail failure) (*engine.Engine, *engine.RecoveryReport, error) {
	s.setState(Recovering)
	// The reseat span brackets the whole heal — fence, recovery (whose
	// log-read/rebuild/replay spans nest inside on the same lane), and
	// re-seating the stream at the recovered punctuation.
	sp := s.cfg.Obs.Begin(0, obs.CatRecovery, "reseat", 0)
	defer sp.End()

	// Fence first: after Advance returns, no in-flight zombie write
	// remains and none can land later, so the device content is stable
	// for recovery to read.
	s.fence.Advance()
	// The fence already rejects the zombie's next attempt; cancelling its
	// retry wrapper additionally interrupts an in-flight backoff sleep, so
	// an abandoned goroutine parked mid-backoff drains promptly instead of
	// waiting out the window.
	s.mu.Lock()
	zombie := s.retry
	s.mu.Unlock()
	if zombie != nil {
		zombie.Close()
	}
	if fail.cause == "stall" && s.cfg.OnStall != nil {
		// Un-wedge the stuck operation now that its writes are fenced: the
		// zombie incarnation drains into ErrFenced instead of leaking.
		s.cfg.OnStall()
	}

	dev, retry := s.stack()
	bytes := metrics.NewBytes()
	cfg := s.engineConfig(dev, bytes)
	// Publish the new generation before recovery runs: the recovered
	// tail's outputs release through the Sink during engine.Recover and
	// must be accepted as live.
	s.mu.Lock()
	s.liveGen = s.fence.Generation()
	s.mu.Unlock()

	eng, report, err := engine.Recover(cfg)
	if err != nil {
		s.recordIncident(fail, 0, false)
		return nil, nil, err
	}
	// Belt and braces: a mechanism that carries a group committer across
	// recovery re-arms it — the durable log is the source of truth again.
	if r, ok := cfg.Mechanism.(interface{ Rearm() }); ok {
		r.Rearm()
	}

	s.install(eng, retry)
	s.mu.Lock()
	s.recoveries++
	s.reports = append(s.reports, report)
	s.mu.Unlock()
	s.recordIncident(fail, report.LastEpoch+1, true)
	return eng, report, nil
}

// recordIncident appends one incident to the health log, stamping MTTR as
// detection → now (recovery complete and the stream ready to resume).
func (s *Supervisor) recordIncident(fail failure, resumeEpoch uint64, healed bool) {
	errText := ""
	if fail.err != nil {
		errText = fail.err.Error()
	}
	s.cfg.Health.Record(metrics.Incident{
		Cause:          fail.cause,
		Err:            errText,
		DetectedAt:     fail.detectedAt,
		Detection:      fail.detection,
		MTTR:           time.Since(fail.detectedAt),
		RecoveredEpoch: resumeEpoch,
		Healed:         healed,
	})
}
