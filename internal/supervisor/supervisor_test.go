package supervisor

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

const (
	tEpochs    = 8
	tEpochSize = 16
	tWorkers   = 2
	tCommit    = 2
	tSnapshot  = 4
)

// tShape is the run shape every test run uses.
var tShape = types.RunShape{Workers: tWorkers, CommitEvery: tCommit, SnapshotEvery: tSnapshot}

// pipeShape is tShape with epoch pipelining on.
func pipeShape() types.RunShape {
	s := tShape
	s.Pipeline = true
	return s
}

// fixedBatches pre-generates the whole stream so the Source is rewindable.
func fixedBatches(seed int64) (types.App, [][]types.Event) {
	p := workload.DefaultSLParams()
	p.Rows, p.Seed, p.AbortRatio = 256, seed, 0.15
	gen := workload.NewSL(p)
	batches := make([][]types.Event, tEpochs)
	for i := range batches {
		batches[i] = workload.Batch(gen, tEpochSize)
	}
	return gen.App(), batches
}

// referenceRun processes the same stream on a clean un-supervised engine
// and returns its delivered outputs and final state — what a supervised
// run, healed or not, must reproduce.
func referenceRun(t *testing.T, app types.App, batches [][]types.Event, kind ftapi.Kind) (*engine.Engine, []types.Output) {
	t.Helper()
	dev := storage.NewMem()
	eng, err := engine.New(engine.Config{
		App: app, Device: dev,
		Mechanism: core.NewMechanism(kind, dev, metrics.NewBytes(), msr.Default()),
		RunShape:  tShape,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := eng.ProcessEpoch(b); err != nil {
			t.Fatal(err)
		}
	}
	return eng, eng.Delivered()
}

func mechFactory(kind ftapi.Kind) func(storage.Device, *metrics.Bytes) ftapi.Mechanism {
	return func(dev storage.Device, bytes *metrics.Bytes) ftapi.Mechanism {
		return core.NewMechanism(kind, dev, bytes, msr.Default())
	}
}

func checkSameOutputs(t *testing.T, got, want []types.Output) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %d outputs, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		same := g.EventSeq == w.EventSeq && g.Kind == w.Kind && len(g.Vals) == len(w.Vals)
		if same {
			for j := range g.Vals {
				if g.Vals[j] != w.Vals[j] {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatalf("output %d = %+v, want %+v", i, g, w)
		}
	}
}

func checkSameState(t *testing.T, app types.App, got, want *engine.Engine) {
	t.Helper()
	bad := 0
	for _, spec := range app.Tables() {
		for row := uint32(0); row < spec.Rows; row++ {
			k := types.Key{Table: spec.ID, Row: row}
			if g, w := got.Store().Get(k), want.Store().Get(k); g != w {
				bad++
				if bad <= 3 {
					t.Errorf("%v: supervised=%d reference=%d", k, g, w)
				}
			}
		}
	}
	if bad > 3 {
		t.Errorf("... and %d more state mismatches", bad-3)
	}
}

func TestCleanRunStops(t *testing.T) {
	app, batches := fixedBatches(1)
	ref, wantOuts := referenceRun(t, app, batches, ftapi.WAL)
	sup, err := New(Config{
		App: app, Device: storage.NewMem(),
		Mechanism: mechFactory(ftapi.WAL),
		Source:    BatchSource(batches),
		RunShape:  tShape,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	if sup.State() != Stopped {
		t.Fatalf("state = %v, want stopped", sup.State())
	}
	if sup.Recoveries() != 0 {
		t.Fatalf("clean run performed %d recoveries", sup.Recoveries())
	}
	checkSameOutputs(t, sup.Outputs(), wantOuts)
	checkSameState(t, app, sup.Engine(), ref)
}

// TestTransientStormAbsorbed: a storm shorter than the retry budget heals
// at the retry layer — zero recoveries, no incident, same outputs.
func TestTransientStormAbsorbed(t *testing.T) {
	app, batches := fixedBatches(2)
	ref, wantOuts := referenceRun(t, app, batches, ftapi.WAL)
	flaky := storage.NewFlaky(storage.NewMem())
	flaky.AddStorm(5, 3)
	var degradedSeen atomic.Bool
	sup, err := New(Config{
		App: app, Device: flaky,
		Mechanism: mechFactory(ftapi.WAL),
		Source:    BatchSource(batches),
		RunShape:  tShape,
		Retry: storage.RetryPolicy{
			MaxAttempts: 6,
			BaseBackoff: 100 * time.Microsecond,
			OnRetry:     func(string, int, error) { degradedSeen.Store(true) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	if sup.Recoveries() != 0 {
		t.Fatalf("storm triggered %d recoveries, want 0 (retry should absorb)", sup.Recoveries())
	}
	if !degradedSeen.Load() {
		t.Fatal("retry callback never fired; storm not exercised")
	}
	st := sup.RetryStats()
	if st.Absorbed == 0 || st.Retries < 3 {
		t.Fatalf("retry stats = %+v", st)
	}
	if len(sup.Health().Incidents()) != 0 {
		t.Fatalf("storm logged incidents: %+v", sup.Health().Incidents())
	}
	checkSameOutputs(t, sup.Outputs(), wantOuts)
	checkSameState(t, app, sup.Engine(), ref)
}

// TestFatalFaultHealsOnce: a fatal device fault triggers exactly one
// in-process recovery, after which the stream completes with oracle-equal
// state and exactly-once outputs.
func TestFatalFaultHealsOnce(t *testing.T) {
	for _, kind := range []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR} {
		t.Run(kind.String(), func(t *testing.T) {
			app, batches := fixedBatches(3)
			ref, wantOuts := referenceRun(t, app, batches, kind)
			flaky := storage.NewFlaky(storage.NewMem())
			flaky.AddOutage(6, 1)
			sup, err := New(Config{
				App: app, Device: flaky,
				Mechanism: mechFactory(kind),
				Source:    BatchSource(batches),
				RunShape:  tShape,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sup.Run(); err != nil {
				t.Fatal(err)
			}
			if sup.Recoveries() != 1 {
				t.Fatalf("recoveries = %d, want exactly 1", sup.Recoveries())
			}
			incs := sup.Health().Incidents()
			if len(incs) != 1 || !incs[0].Healed || incs[0].Cause != "io-fatal" {
				t.Fatalf("incidents = %+v", incs)
			}
			if incs[0].MTTR <= 0 {
				t.Fatalf("MTTR not recorded: %+v", incs[0])
			}
			checkSameOutputs(t, sup.Outputs(), wantOuts)
			checkSameState(t, app, sup.Engine(), ref)
		})
	}
}

// TestPanicHeals: a mid-epoch operation panic is confined, detected, and
// healed in-process.
func TestPanicHeals(t *testing.T) {
	app, batches := fixedBatches(4)
	ref, wantOuts := referenceRun(t, app, batches, ftapi.DL)
	var fired atomic.Int64
	var armed atomic.Bool
	armed.Store(true)
	sup, err := New(Config{
		App: app, Device: storage.NewMem(),
		Mechanism: mechFactory(ftapi.DL),
		Source:    BatchSource(batches),
		RunShape:  tShape,
		FireHook: func(n *tpg.OpNode) {
			// One-shot: panic mid-stream, well past the first commit.
			if fired.Add(1) == 3*tEpochSize && armed.CompareAndSwap(true, false) {
				panic("chaos: op panic")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	if sup.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", sup.Recoveries())
	}
	incs := sup.Health().Incidents()
	if len(incs) != 1 || incs[0].Cause != "panic" || !incs[0].Healed {
		t.Fatalf("incidents = %+v", incs)
	}
	checkSameOutputs(t, sup.Outputs(), wantOuts)
	checkSameState(t, app, sup.Engine(), ref)
}

// TestStallWatchdog (satellite: scheduler stall detection): a deliberately
// wedged worker — an injected infinite-loop op parked on a channel — is
// detected by the watchdog within the configured timeout, the cancellation
// hook un-wedges it, and the supervised run heals and completes.
func TestStallWatchdog(t *testing.T) {
	app, batches := fixedBatches(5)
	ref, wantOuts := referenceRun(t, app, batches, ftapi.WAL)

	wedge := make(chan struct{})
	var fired atomic.Int64
	var armed atomic.Bool
	armed.Store(true)
	const stallTimeout = 250 * time.Millisecond
	started := time.Now()
	sup, err := New(Config{
		App: app, Device: storage.NewMem(),
		Mechanism:    mechFactory(ftapi.WAL),
		Source:       BatchSource(batches),
		RunShape:     tShape,
		StallTimeout: stallTimeout,
		FireHook: func(n *tpg.OpNode) {
			if fired.Add(1) == 3*tEpochSize && armed.CompareAndSwap(true, false) {
				<-wedge // wedged until the supervisor cancels
			}
		},
		OnStall: func() { close(wedge) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	detected := time.Since(started)
	if sup.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", sup.Recoveries())
	}
	incs := sup.Health().Incidents()
	if len(incs) != 1 || incs[0].Cause != "stall" || !incs[0].Healed {
		t.Fatalf("incidents = %+v", incs)
	}
	if incs[0].Detection < stallTimeout {
		t.Fatalf("stall detected after %v, below the %v timeout", incs[0].Detection, stallTimeout)
	}
	// The watchdog fired within the configured timeout plus slack — it did
	// not wait for the wedged op to release on its own (it never would).
	if detected > 20*stallTimeout {
		t.Fatalf("whole run took %v; watchdog too slow for a %v timeout", detected, stallTimeout)
	}
	checkSameOutputs(t, sup.Outputs(), wantOuts)
	checkSameState(t, app, sup.Engine(), ref)
}

// TestRecoveryBudget: a fault that recurs after every heal exhausts
// MaxRecoveries and Run surfaces ErrRecoveryBudget instead of looping.
func TestRecoveryBudget(t *testing.T) {
	app, batches := fixedBatches(6)
	sup, err := New(Config{
		App: app, Device: storage.NewMem(),
		Mechanism:     mechFactory(ftapi.WAL),
		Source:        BatchSource(batches),
		RunShape:      tShape,
		MaxRecoveries: 2,
		FireHook:      func(n *tpg.OpNode) { panic("chaos: persistent fault") },
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sup.Run()
	if !errors.Is(err, ErrRecoveryBudget) {
		t.Fatalf("want ErrRecoveryBudget, got %v", err)
	}
	if sup.State() != Failed {
		t.Fatalf("state = %v, want failed", sup.State())
	}
	if sup.Recoveries() != 2 {
		t.Fatalf("recoveries = %d, want 2", sup.Recoveries())
	}
}

// TestNATRejected: native execution has nothing to recover from.
func TestNATRejected(t *testing.T) {
	app, batches := fixedBatches(7)
	_, err := New(Config{
		App: app, Device: storage.NewMem(),
		Mechanism: func(dev storage.Device, bytes *metrics.Bytes) ftapi.Mechanism {
			return core.NewMechanism(core.NAT, dev, bytes, msr.Default())
		},
		Source: BatchSource(batches),
	})
	if err == nil {
		t.Fatal("NAT mechanism accepted")
	}
}

// TestPipelinedSupervision: the same heal paths work when the engine runs
// its pipelined epoch overlap.
func TestPipelinedSupervision(t *testing.T) {
	app, batches := fixedBatches(8)
	ref, wantOuts := referenceRun(t, app, batches, ftapi.MSR)
	flaky := storage.NewFlaky(storage.NewMem())
	flaky.AddOutage(7, 1)
	sup, err := New(Config{
		App: app, Device: flaky,
		Mechanism: mechFactory(ftapi.MSR),
		Source:    BatchSource(batches),
		RunShape:  pipeShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(); err != nil {
		t.Fatal(err)
	}
	if sup.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", sup.Recoveries())
	}
	checkSameOutputs(t, sup.Outputs(), wantOuts)
	checkSameState(t, app, sup.Engine(), ref)
}
