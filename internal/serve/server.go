package serve

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morphstreamr/internal/journey"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/types"
)

// Config assembles one Server.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Backend is the processing engine (required). The server owns it
	// after New: it is fed from the pump goroutine and closed by Close.
	Backend Backend
	// Tenants declares the admission envelope per tenant; clients naming
	// an undeclared tenant are rejected at Hello.
	Tenants []TenantConfig

	// EpochEvery is the pump tick: at most one group epoch is fed per tick
	// (default 2ms). MaxEpochEvents caps one epoch's gathered events
	// (default 4096). MaxInflightEpochs bounds fed-but-uncommitted epochs —
	// the pump stops gathering rather than let ack debt grow without bound
	// (default 64).
	EpochEvery        time.Duration
	MaxEpochEvents    int
	MaxInflightEpochs int
	// GCEvery is the manifest GC cadence in committed epochs (default 256).
	GCEvery uint64

	// HelloTimeout bounds the wait for a connection's Hello (half-open
	// connections are shed without touching the accept loop; default 2s).
	// IdleTimeout bounds the wait for any subsequent frame (default 30s).
	// WriteTimeout bounds one outbound frame write (default 5s).
	HelloTimeout time.Duration
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// AckBuffer is the per-session outbound frame buffer; a session that
	// cannot drain it — a slow consumer — is evicted, never allowed to
	// wedge the pump or grow the buffer (default 256).
	AckBuffer int
	// MaxFrame bounds one inbound frame (default DefaultMaxFrame).
	MaxFrame int

	// ShedBelow is the degradation threshold: while a heal is in flight,
	// Submits from tenants with Priority below it are answered with
	// Slowdown(degraded) instead of being queued (default 0: shed nobody).
	ShedBelow int
	// MaxHeals is the heal budget; one more backend failure turns the
	// server terminal (default 16).
	MaxHeals int

	// Obs, when non-nil, receives per-tenant gauges, ack-lag histograms,
	// the /tenants view, and — when it carries a Timeline — heal and
	// slowdown events for the /incidents view.
	Obs *obs.Observer
	// Journeys, when non-nil, traces sampled batches end-to-end: every
	// pipeline stage stamps the batch's journey, heals bracket a RECOVERY
	// stage, and completed journeys are drained via the recorder. Nil
	// disables tracing (the hot path pays one nil check per stage).
	Journeys *journey.Recorder
	// SLO, when non-nil, observes every acked batch's client-observed
	// lag (admission to ack flush) against its latency objective; the
	// server publishes it as the Obs view "slo" (the /slo endpoint).
	SLO *obs.SLOMonitor
	// Health receives heal incidents; nil allocates a fresh log.
	Health *metrics.Health
	// AckLog, when non-nil, observes every acknowledgement decision
	// (tenant, batch sequence, assigned global range, covering epoch) —
	// the chaos harness's exactly-once audit trail. Called from the pump
	// goroutine, once per acked batch across all incarnations.
	AckLog func(tenant string, batchSeq, firstSeq, events, epoch uint64)
}

func (c *Config) normalize() error {
	if c.Backend == nil {
		return errors.New("serve: Backend is required")
	}
	if len(c.Tenants) == 0 {
		return errors.New("serve: at least one tenant is required")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.EpochEvery <= 0 {
		c.EpochEvery = 2 * time.Millisecond
	}
	if c.MaxEpochEvents <= 0 {
		c.MaxEpochEvents = 4096
	}
	if c.MaxInflightEpochs <= 0 {
		c.MaxInflightEpochs = 64
	}
	if c.GCEvery == 0 {
		c.GCEvery = 256
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 2 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.AckBuffer <= 0 {
		c.AckBuffer = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.MaxHeals <= 0 {
		c.MaxHeals = 16
	}
	if c.Health == nil {
		c.Health = metrics.NewHealth()
	}
	return nil
}

// Server is the ingestion front-end. Start with New, stop with Close.
type Server struct {
	cfg Config
	ln  net.Listener
	be  Backend

	tenants map[string]*tenant
	order   []*tenant // feeding order: priority desc, then name

	// degraded is set while a heal is in flight; admission sheds
	// low-priority tenants. committed caches the backend's punctuation
	// frontier for lock-free reads off the pump goroutine.
	degraded  atomic.Bool
	committed atomic.Uint64

	// Pump-only state (single goroutine, no locks needed).
	nextSeq   uint64
	inflight  map[uint64][]*batch      // fed epoch → its batches, unacked
	fedEpochs map[uint64][]types.Event // fed epoch → global batch (heal Source)
	lastGC        uint64
	manifestFails int
	heals         atomic.Int64

	mu       sync.Mutex
	sessions map[*session]struct{}
	termErr  error // terminal pump error (heal budget exhausted)

	closeOnce sync.Once
	closedCh  chan struct{}
	wg        sync.WaitGroup
}

// New recovers the ingest state from the backend's coordinator device,
// binds the listener, and starts the accept loop and the feeding pump.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	be := cfg.Backend
	st, err := RecoverIngest(be.Coord(), be.Epoch())
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		be:        be,
		tenants:   map[string]*tenant{},
		nextSeq:   st.NextSeq,
		inflight:  map[uint64][]*batch{},
		fedEpochs: map[uint64][]types.Event{},
		lastGC:    be.Committed(),
		sessions:  map[*session]struct{}{},
		closedCh:  make(chan struct{}),
	}
	now := time.Now()
	for _, tc := range cfg.Tenants {
		if tc.Name == "" || len(tc.Name) > MaxTenantName {
			ln.Close()
			return nil, fmt.Errorf("serve: bad tenant name %q", tc.Name)
		}
		if _, dup := s.tenants[tc.Name]; dup {
			ln.Close()
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		s.tenants[tc.Name] = newTenant(tc, st.Watermarks[tc.Name], now)
	}
	for _, t := range s.tenants {
		s.order = append(s.order, t)
	}
	sort.Slice(s.order, func(a, b int) bool {
		if s.order[a].cfg.Priority != s.order[b].cfg.Priority {
			return s.order[a].cfg.Priority > s.order[b].cfg.Priority
		}
		return s.order[a].cfg.Name < s.order[b].cfg.Name
	})
	s.committed.Store(be.Committed())
	s.registerObs()
	s.wg.Add(2)
	go s.acceptLoop()
	go s.pump()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Committed returns the cached committed punctuation frontier.
func (s *Server) Committed() uint64 { return s.committed.Load() }

// Degraded reports whether a heal is in flight.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Health returns the server's heal incident log.
func (s *Server) Health() *metrics.Health { return s.cfg.Health }

// Heals returns how many backend heals the server has performed.
func (s *Server) Heals() int { return int(s.heals.Load()) }

// Err returns the terminal pump error, if the server failed.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.termErr
}

// Tenant returns the named tenant's acked watermark and whether it exists.
func (s *Server) Tenant(name string) (uint64, bool) {
	t, ok := s.tenants[name]
	if !ok {
		return 0, false
	}
	return t.Watermark(), true
}

// Close stops the listener, evicts every session, stops the pump, and
// closes the backend. Unacked batches die with the server; their tenants'
// watermarks survive in the ingest manifest, so a restarted server dedupes
// re-sent survivors and re-feeds the rest.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closedCh)
		s.ln.Close()
		s.mu.Lock()
		open := make([]*session, 0, len(s.sessions))
		for sess := range s.sessions {
			open = append(open, sess)
		}
		s.mu.Unlock()
		for _, sess := range open {
			sess.close()
		}
		s.wg.Wait()
		s.be.Close()
		// No ack will ever come for what is still in flight: finalize the
		// sampled journeys as shed so none is left orphaned.
		s.cfg.Journeys.ShedActive()
	})
}

// acceptLoop accepts connections until the listener closes. Per-connection
// work — including the Hello wait — happens on session goroutines, so a
// half-open connection never stalls accept.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closedCh:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.count("serve.accepted")
		newSession(s, conn)
	}
}

// addSession registers a live session; it reports false when the server is
// already closing (the session must shut itself down).
func (s *Server) addSession(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closedCh:
		return false
	default:
	}
	s.sessions[sess] = struct{}{}
	s.gauge("serve.sessions", int64(len(s.sessions)))
	return true
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, sess)
	s.gauge("serve.sessions", int64(len(s.sessions)))
}

// registerObs publishes the serving layer's metrics and the /tenants view.
func (s *Server) registerObs() {
	o := s.cfg.Obs
	reg := o.Registry()
	if reg != nil {
		reg.GaugeFunc("serve.committed", func() int64 { return int64(s.committed.Load()) })
		reg.GaugeFunc("serve.degraded", func() int64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
		for _, t := range s.order {
			t := t
			reg.GaugeFunc("serve.tenant."+t.cfg.Name+".queue", func() int64 {
				return int64(t.stats().Queue)
			})
			reg.GaugeFunc("serve.tenant."+t.cfg.Name+".watermark", func() int64 {
				return int64(t.Watermark())
			})
		}
	}
	if s.cfg.SLO != nil {
		o.SetView("slo", func() any { return s.cfg.SLO.Snapshot() })
	}
	o.SetView("tenants", func() any {
		out := make([]tenantStats, 0, len(s.order))
		for _, t := range s.order {
			out = append(out, t.stats())
		}
		return map[string]any{
			"committed": s.committed.Load(),
			"degraded":  s.degraded.Load(),
			"tenants":   out,
		}
	})
}

// count and gauge are nil-safe registry helpers.
func (s *Server) count(name string) {
	if reg := s.cfg.Obs.Registry(); reg != nil {
		reg.Counter(name).Inc()
	}
}

func (s *Server) gauge(name string, v int64) {
	if reg := s.cfg.Obs.Registry(); reg != nil {
		reg.Gauge(name).Set(v)
	}
}

func (s *Server) observeAckLag(since time.Time) {
	if reg := s.cfg.Obs.Registry(); reg != nil {
		reg.Histogram("serve.ack_lag_seconds").ObserveSince(since)
	}
}

// timeline is the nil-safe incident timeline accessor.
func (s *Server) timeline() *obs.Timeline { return s.cfg.Obs.Timeline() }

// shardRouter is the optional backend capability the journey tracer uses
// to record which shards a sampled batch routed to.
type shardRouter interface {
	ShardOf(ev types.Event) int
}

// commitTimer is the optional backend capability exposing when an epoch
// was first covered by the committed frontier (the commit stage boundary).
type commitTimer interface {
	CommittedAt(ep uint64) (time.Time, bool)
}
