package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"morphstreamr/internal/types"
)

// Client is a minimal synchronous protocol client: Dial performs the
// Hello handshake and surfaces the server's acked watermark; Submit and
// Next exchange frames. It is deliberately thin — reconnect policy,
// windowing, and backoff live in the chaos driver, not here.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	// Watermark is the acked high-watermark the HelloAck reported: every
	// batch at or below it is durably committed from a past connection.
	Watermark uint64
	// Committed is the server's punctuation frontier at handshake time.
	Committed uint64

	maxFrame int
	timeout  time.Duration
}

// Dial connects, handshakes as tenant, and returns a ready client.
func Dial(addr, tenant string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), maxFrame: DefaultMaxFrame, timeout: timeout}
	if err := c.write(EncodeHello(tenant)); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := c.Next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Type == FrameError {
		conn.Close()
		return nil, fmt.Errorf("serve: hello rejected (code %d): %s", f.Code, f.Msg)
	}
	if f.Type != FrameHelloAck {
		conn.Close()
		return nil, fmt.Errorf("%w: expected HelloAck, got 0x%02x", ErrBadFrame, byte(f.Type))
	}
	c.Watermark = f.Watermark
	c.Committed = f.Epoch
	return c, nil
}

// Submit sends one batch.
func (c *Client) Submit(batchSeq uint64, events []types.Event) error {
	return c.write(EncodeSubmit(batchSeq, events))
}

// SubmitFlags sends one batch with Submit flags (e.g. SubmitFlagSampled to
// request an end-to-end journey trace for this batch).
func (c *Client) SubmitFlags(batchSeq uint64, events []types.Event, flags uint64) error {
	return c.write(EncodeSubmitFlags(batchSeq, events, flags))
}

// Ping sends a liveness probe.
func (c *Client) Ping() error { return c.write(EncodePing()) }

// Next reads the next frame under the client timeout.
func (c *Client) Next() (Frame, error) {
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	payload, err := ReadFrame(c.br, c.maxFrame)
	if err != nil {
		return Frame{}, err
	}
	return DecodeFrame(payload)
}

func (c *Client) write(frame []byte) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	_, err := c.conn.Write(frame)
	return err
}

// Conn exposes the raw connection (the chaos harness severs it mid-run).
func (c *Client) Conn() net.Conn { return c.conn }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
