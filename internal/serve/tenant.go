package serve

import (
	"sync"
	"time"

	"morphstreamr/internal/journey"
	"morphstreamr/internal/types"
)

// TenantConfig declares one tenant's admission envelope.
type TenantConfig struct {
	// Name identifies the tenant; clients present it in Hello.
	Name string
	// Rate is the token-bucket refill in batches per second; 0 disables
	// rate limiting. Burst is the bucket depth (default max(1, Rate/10)).
	Rate  float64
	Burst int
	// QueueCap bounds the tenant's admitted-but-unfed queue (default 64).
	// A full queue answers Slowdown(queue), never a silent drop.
	QueueCap int
	// Priority orders tenants for feeding and degradation: higher feeds
	// first, and while the server is mid-heal tenants with Priority below
	// the server's ShedBelow threshold are shed with Slowdown(degraded).
	Priority int
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Burst <= 0 {
		c.Burst = 1
		if b := int(c.Rate / 10); b > 1 {
			c.Burst = b
		}
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	return c
}

// batch is one admitted Submit moving through the pipeline: tenant queue →
// in-flight epoch → ack. A batch admitted once is never silently dropped —
// it either commits (and is acked) or survives a heal by being requeued.
type batch struct {
	tn  *tenant
	seq uint64 // client batch sequence, contiguous per tenant
	ev  []types.Event

	// firstSeq is the assigned global event sequence; set once, kept
	// across heal requeues so re-fed batches replay identically.
	firstSeq uint64
	seqed    bool

	submitted time.Time // first admission, for client-observed ack lag

	// j is the batch's journey when sampled (nil otherwise; every stamp
	// on it is nil-safe).
	j *journey.J
}

// Admission verdicts.
type verdict int

const (
	vAccept verdict = iota
	// vDupAcked: at or below the acked watermark — answer with an
	// immediate duplicate Ack (the reconnect path).
	vDupAcked
	// vDupPending: already admitted, not yet committed — silent; the real
	// ack arrives when the covering epoch commits.
	vDupPending
	// vOutOfOrder: gap in the sequence — Slowdown(order) with resend-from.
	vOutOfOrder
	// vShed: server mid-heal and the tenant is below the shed threshold.
	vShed
	// vThrottle: token bucket empty.
	vThrottle
	// vQueueFull: ingest queue at capacity.
	vQueueFull
)

// tenantStats is a snapshot of one tenant's counters for the /tenants view.
type tenantStats struct {
	Name      string  `json:"name"`
	Priority  int     `json:"priority"`
	Watermark uint64  `json:"watermark"`
	MaxSeen   uint64  `json:"max_seen"`
	Queue     int     `json:"queue"`
	QueueCap  int     `json:"queue_cap"`
	MaxQueue  int     `json:"max_queue"`
	Pending   int     `json:"pending"`
	Accepted  int64   `json:"accepted"`
	Acked     int64   `json:"acked"`
	DupAcked  int64   `json:"dup_acked"`
	Throttled int64   `json:"throttled"`
	QueueFull int64   `json:"queue_full"`
	Shed      int64   `json:"shed"`
	OutOfOrd  int64   `json:"out_of_order"`
	Tokens    float64 `json:"tokens"`
}

// tenant is one tenant's runtime. Its mutex guards everything below it;
// sessions (admission), the pump (feeding, acking), and the /tenants view
// all take it briefly and never while holding another lock.
type tenant struct {
	cfg TenantConfig

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time
	queue      []*batch          // admitted, not yet fed (FIFO)
	pending    map[uint64]*batch // fed, awaiting commit (batch seq → batch)
	watermark  uint64            // highest acked batch sequence
	maxSeen    uint64            // highest admitted batch sequence
	sess       *session          // current session for acks (latest Hello wins)

	maxQueue  int
	accepted  int64
	acked     int64
	dupAcked  int64
	throttled int64
	queueFull int64
	shed      int64
	outOfOrd  int64
}

func newTenant(cfg TenantConfig, watermark uint64, now time.Time) *tenant {
	c := cfg.withDefaults()
	return &tenant{
		cfg:        c,
		tokens:     float64(c.Burst),
		lastRefill: now,
		pending:    map[uint64]*batch{},
		watermark:  watermark,
		maxSeen:    watermark,
	}
}

// refill tops up the token bucket; callers hold t.mu.
func (t *tenant) refill(now time.Time) {
	if t.cfg.Rate <= 0 {
		return
	}
	t.tokens += now.Sub(t.lastRefill).Seconds() * t.cfg.Rate
	if max := float64(t.cfg.Burst); t.tokens > max {
		t.tokens = max
	}
	t.lastRefill = now
}

// admit runs the admission state machine for one Submit. The order is
// load-bearing: dedupe checks come before contiguity (a replayed batch must
// be answered, not rejected as out of order), contiguity before any
// resource verdict (a gap batch must never consume tokens or queue space,
// or the high-watermark would stop meaning "contiguous acked prefix"), and
// shedding before rate/queue (a mid-heal rejection should say "degraded",
// the reason the client can act on, not a coincidental "rate").
// rec/sampled carry the journey tracer: a sampled batch's rejections note
// the first-attempt time (so the eventual journey's admission stage covers
// the token-bucket wait across retries) and its acceptance opens the
// journey.
func (t *tenant) admit(seq uint64, ev []types.Event, degraded bool, shedBelow int, now time.Time, rec *journey.Recorder, sampled bool) verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq <= t.watermark {
		t.dupAcked++
		return vDupAcked
	}
	if seq <= t.maxSeen {
		return vDupPending
	}
	if seq != t.maxSeen+1 {
		t.outOfOrd++
		if sampled {
			rec.NoteRejected(t.cfg.Name, seq)
		}
		return vOutOfOrder
	}
	if degraded && t.cfg.Priority < shedBelow {
		t.shed++
		if sampled {
			rec.NoteRejected(t.cfg.Name, seq)
		}
		return vShed
	}
	if t.cfg.Rate > 0 {
		t.refill(now)
		if t.tokens < 1 {
			t.throttled++
			if sampled {
				rec.NoteRejected(t.cfg.Name, seq)
			}
			return vThrottle
		}
	}
	if len(t.queue) >= t.cfg.QueueCap {
		t.queueFull++
		if sampled {
			rec.NoteRejected(t.cfg.Name, seq)
		}
		return vQueueFull
	}
	if t.cfg.Rate > 0 {
		t.tokens--
	}
	t.maxSeen = seq
	b := &batch{tn: t, seq: seq, ev: ev, submitted: now}
	if sampled {
		b.j = rec.Start(t.cfg.Name, seq)
	}
	t.queue = append(t.queue, b)
	if len(t.queue) > t.maxQueue {
		t.maxQueue = len(t.queue)
	}
	t.accepted++
	return vAccept
}

// take pops up to n batches off the queue front (the pump's gather step).
// skip leaves the queue untouched (a shed tenant keeps its backlog).
func (t *tenant) take(n int) []*batch {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.queue) {
		n = len(t.queue)
	}
	if n <= 0 {
		return nil
	}
	out := make([]*batch, n)
	copy(out, t.queue)
	t.queue = append(t.queue[:0], t.queue[n:]...)
	for _, b := range out {
		t.pending[b.seq] = b
	}
	return out
}

// requeue pushes heal-surviving batches back onto the queue front in their
// original order, keeping their assigned sequences (ascending seqs must be
// re-fed before anything admitted later).
func (t *tenant) requeue(batches []*batch) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range batches {
		delete(t.pending, b.seq)
	}
	t.queue = append(append(make([]*batch, 0, len(batches)+len(t.queue)), batches...), t.queue...)
	if len(t.queue) > t.maxQueue {
		t.maxQueue = len(t.queue)
	}
}

// ack marks one batch durably committed: drop it from pending, advance the
// watermark, and return the session to notify (nil when disconnected — the
// client learns from HelloAck's watermark on reconnect).
func (t *tenant) ack(b *batch) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.pending, b.seq)
	if b.seq > t.watermark {
		t.watermark = b.seq
	}
	t.acked++
	return t.sess
}

// attach installs a session as the tenant's ack target (latest Hello wins)
// and returns the acked watermark for the HelloAck.
func (t *tenant) attach(s *session) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sess = s
	return t.watermark
}

// detach clears the session if it is still the current one.
func (t *tenant) detach(s *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sess == s {
		t.sess = nil
	}
}

// resendFrom is the next sequence admission will accept — what an
// out-of-order Slowdown tells the client to resend from.
func (t *tenant) resendFrom() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxSeen + 1
}

// retryAfterMs estimates when the token bucket next holds a whole token,
// clamped to [1ms, 1s].
func (t *tenant) retryAfterMs() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Rate <= 0 {
		return 1
	}
	deficit := 1 - t.tokens
	if deficit <= 0 {
		return 1
	}
	ms := uint64(deficit / t.cfg.Rate * 1000)
	if ms < 1 {
		ms = 1
	}
	if ms > 1000 {
		ms = 1000
	}
	return ms
}

// Watermark returns the tenant's acked high-watermark.
func (t *tenant) Watermark() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

func (t *tenant) stats() tenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return tenantStats{
		Name: t.cfg.Name, Priority: t.cfg.Priority,
		Watermark: t.watermark, MaxSeen: t.maxSeen,
		Queue: len(t.queue), QueueCap: t.cfg.QueueCap, MaxQueue: t.maxQueue,
		Pending: len(t.pending), Accepted: t.accepted, Acked: t.acked,
		DupAcked: t.dupAcked, Throttled: t.throttled, QueueFull: t.queueFull,
		Shed: t.shed, OutOfOrd: t.outOfOrd, Tokens: t.tokens,
	}
}
