package serve

import (
	"fmt"
	"sort"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
)

// The ingest manifest is the serving layer's write-ahead record of what it
// fed the group: one record per fed epoch on the coordinator device,
// appended *before* the epoch is fed, carrying every batch's identity
// (tenant, batch sequence, assigned global sequence range) plus the full
// event payload. It closes the two gaps the engine logs leave open:
//
//   - exactly-once across restarts: a cold-started server recovers every
//     tenant's acked high-watermark from the manifest (a batch is durable
//     iff its epoch is at or below the recovered frontier, and admission's
//     contiguity rule makes "highest seen" equal "contiguous prefix"), so a
//     reconnecting client's re-sent batches are deduplicated, never re-fed;
//   - group recovery's Source contract: GroupRecover and HealShard re-feed
//     the alignment epoch from the *global pre-routing batch*, which no
//     per-shard log retains. The manifest record is exactly that batch.
//
// GC runs blob-then-truncate: the tenant watermarks and the next global
// sequence are checkpointed into BlobIngest, then the log is truncated
// below the committed frontier. A crash between the two steps only leaves
// extra log records, which recovery tolerates.
const (
	// LogIngest is the per-epoch manifest log on the coordinator device.
	LogIngest = "ingest"
	// BlobIngest is the watermark checkpoint blob on the coordinator device.
	BlobIngest = "ingest.wm"
)

// ManifestEntry identifies one batch inside a fed epoch.
type ManifestEntry struct {
	Tenant   string
	BatchSeq uint64
	// FirstSeq is the first assigned global event sequence; the batch
	// covers [FirstSeq, FirstSeq+Events).
	FirstSeq uint64
	Events   uint64
}

// encodeIngestRecord encodes one fed epoch's manifest entries plus the full
// (seq-assigned, pre-routing) event batch.
func encodeIngestRecord(entries []ManifestEntry, events []types.Event) []byte {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		putString(w, e.Tenant)
		w.Uvarint(e.BatchSeq)
		w.Uvarint(e.FirstSeq)
		w.Uvarint(e.Events)
	}
	codec.EncodeEventsInto(w, events)
	return append([]byte(nil), w.Bytes()...)
}

// decodeIngestRecord decodes one manifest record. Counts are validated
// against the remaining payload before allocation.
func decodeIngestRecord(b []byte) ([]ManifestEntry, []types.Event, error) {
	r := codec.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil, nil, fmt.Errorf("%w: ingest record entry count", ErrBadFrame)
	}
	entries := make([]ManifestEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e ManifestEntry
		var ok bool
		if e.Tenant, ok = readString(r, MaxTenantName); !ok {
			return nil, nil, fmt.Errorf("%w: ingest record tenant", ErrBadFrame)
		}
		e.BatchSeq = r.Uvarint()
		e.FirstSeq = r.Uvarint()
		e.Events = r.Uvarint()
		if r.Err() != nil {
			return nil, nil, fmt.Errorf("%w: ingest record entry", ErrBadFrame)
		}
		entries = append(entries, e)
	}
	ne := r.Uvarint()
	if r.Err() != nil || ne > uint64(r.Remaining()) {
		return nil, nil, fmt.Errorf("%w: ingest record event count", ErrBadFrame)
	}
	events := make([]types.Event, 0, ne)
	for i := uint64(0); i < ne; i++ {
		ev := r.Event()
		if r.Err() != nil {
			return nil, nil, fmt.Errorf("%w: ingest record event", ErrBadFrame)
		}
		events = append(events, ev)
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("%w: ingest record trailing bytes", ErrBadFrame)
	}
	return entries, events, nil
}

// encodeWatermarks encodes the GC checkpoint blob: per-tenant acked
// high-watermarks plus the next global event sequence.
func encodeWatermarks(wm map[string]uint64, nextSeq uint64) []byte {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Canonical order keeps the blob deterministic for byte-level tests.
	names := make([]string, 0, len(wm))
	for name := range wm {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		putString(w, name)
		w.Uvarint(wm[name])
	}
	w.Uvarint(nextSeq)
	return append([]byte(nil), w.Bytes()...)
}

// decodeWatermarks decodes the GC checkpoint blob.
func decodeWatermarks(b []byte) (map[string]uint64, uint64, error) {
	r := codec.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil, 0, fmt.Errorf("%w: watermark blob count", ErrBadFrame)
	}
	wm := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		name, ok := readString(r, MaxTenantName)
		if !ok {
			return nil, 0, fmt.Errorf("%w: watermark blob tenant", ErrBadFrame)
		}
		wm[name] = r.Uvarint()
	}
	nextSeq := r.Uvarint()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, 0, fmt.Errorf("%w: watermark blob", ErrBadFrame)
	}
	return wm, nextSeq, nil
}

// IngestState is what a restarted server recovers from the manifest.
type IngestState struct {
	// Watermarks maps tenant name to the highest batch sequence that is
	// durably committed (and therefore acked or ackable). Admission's
	// contiguity rule makes this a contiguous prefix per tenant.
	Watermarks map[string]uint64
	// NextSeq is the lowest safe global event sequence: past every
	// assignment any manifest record ever made, durable or torn.
	NextSeq uint64
	// Epochs maps every fed epoch still in the log to its global
	// pre-routing batch — the shard.Source recovery re-feeds from.
	Epochs map[uint64][]types.Event
}

// RecoverIngest rebuilds the ingest state from the coordinator device.
// durable is the group's recovered punctuation frontier: a batch counts
// toward a tenant watermark iff its epoch is at or below it (epochs beyond
// the frontier never survived the crash, so their batches must be re-sent
// and re-fed). A torn final record — the manifest append that died mid-
// write — is tolerated and ignored, like the engine's torn input tails.
func RecoverIngest(dev storage.Device, durable uint64) (IngestState, error) {
	st := IngestState{
		Watermarks: map[string]uint64{},
		NextSeq:    1,
		Epochs:     map[uint64][]types.Event{},
	}
	if blob, ok, err := dev.ReadBlob(BlobIngest); err != nil {
		return st, fmt.Errorf("serve: read %s: %w", BlobIngest, err)
	} else if ok {
		wm, nextSeq, err := decodeWatermarks(blob)
		if err != nil {
			return st, fmt.Errorf("serve: %s: %w", BlobIngest, err)
		}
		st.Watermarks = wm
		if nextSeq > st.NextSeq {
			st.NextSeq = nextSeq
		}
	}
	recs, err := dev.ReadLog(LogIngest)
	if err != nil {
		return st, fmt.Errorf("serve: read %s: %w", LogIngest, err)
	}
	// Latest record wins per epoch: an incarnation that died between the
	// manifest append and the feed leaves a record for an epoch it never
	// processed, and its successor re-appends that epoch number with
	// whatever it actually feeds there. Only the authoritative (last)
	// record's batches may count toward watermarks — a superseded batch was
	// never fed, and acking it would punch a hole in the tenant's stream.
	// NextSeq, by contrast, folds every record including superseded ones:
	// skipping sequence numbers is always safe, reusing them never is.
	latest := map[uint64][]ManifestEntry{}
	for i, rec := range recs {
		entries, events, err := decodeIngestRecord(rec.Payload)
		if err != nil {
			if i == len(recs)-1 {
				break // torn tail: the append this record belongs to died
			}
			return st, fmt.Errorf("serve: %s epoch %d: %w", LogIngest, rec.Epoch, err)
		}
		st.Epochs[rec.Epoch] = events
		latest[rec.Epoch] = entries
		for _, e := range entries {
			if end := e.FirstSeq + e.Events; end > st.NextSeq {
				st.NextSeq = end
			}
		}
	}
	for ep, entries := range latest {
		if ep > durable {
			continue // never survived the crash: must be re-sent and re-fed
		}
		for _, e := range entries {
			if e.BatchSeq > st.Watermarks[e.Tenant] {
				st.Watermarks[e.Tenant] = e.BatchSeq
			}
		}
	}
	return st, nil
}

// IngestSource builds the group-recovery Source from the coordinator
// device's manifest: epoch → global pre-routing batch. Epochs GC already
// truncated are reported unknown, which GroupRecover's counter restoration
// tolerates; the alignment epoch always sits above the GC horizon because
// GC never truncates past the committed frontier.
func IngestSource(dev storage.Device, durable uint64) (shard.Source, error) {
	st, err := RecoverIngest(dev, durable)
	if err != nil {
		return nil, err
	}
	return func(epoch uint64) ([]types.Event, bool) {
		ev, ok := st.Epochs[epoch]
		return ev, ok
	}, nil
}
