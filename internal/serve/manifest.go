package serve

import (
	"fmt"
	"sort"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
)

// The ingest manifest is the serving layer's write-ahead record of what it
// fed the group: one record per fed epoch on the coordinator device,
// appended *before* the epoch is fed, carrying every batch's identity
// (tenant, batch sequence, assigned global sequence range) plus the full
// event payload. It closes the two gaps the engine logs leave open:
//
//   - exactly-once across restarts: a cold-started server recovers every
//     tenant's acked high-watermark from the manifest (a batch is durable
//     iff its epoch is at or below the recovered frontier, and admission's
//     contiguity rule makes "highest seen" equal "contiguous prefix"), so a
//     reconnecting client's re-sent batches are deduplicated, never re-fed;
//   - group recovery's Source contract: GroupRecover and HealShard re-feed
//     the alignment epoch from the *global pre-routing batch*, which no
//     per-shard log retains. The manifest record is exactly that batch.
//
// GC runs blob-then-release: the tenant watermarks and the next global
// sequence are checkpointed into BlobIngest, then the log's segments are
// reclaimed below the committed frontier through storage.Release. A crash
// between the two steps only leaves extra log records, which recovery
// tolerates — as does the segment store's conservative retention of a
// straddling segment.
const (
	// LogIngest is the per-epoch manifest log on the coordinator device.
	LogIngest = "ingest"
	// BlobIngest is the watermark checkpoint blob on the coordinator device.
	BlobIngest = "ingest.wm"

	// Both durable shapes ride the shared storage.Manifest codec; the kinds
	// keep an ingest record from ever being misread as a watermark blob (or
	// either as another layer's metadata).
	manifestKindIngest   = "ingest"
	manifestKindIngestWM = "ingest-wm"
	fieldNextSeq         = "next_seq"
)

// ManifestEntry identifies one batch inside a fed epoch.
type ManifestEntry struct {
	Tenant   string
	BatchSeq uint64
	// FirstSeq is the first assigned global event sequence; the batch
	// covers [FirstSeq, FirstSeq+Events).
	FirstSeq uint64
	Events   uint64
}

// encodeIngestRecord encodes one fed epoch's manifest entries plus the full
// (seq-assigned, pre-routing) event batch: a storage.Manifest with one
// entry per batch (named by tenant, values [batchSeq, firstSeq, events])
// and the encoded event batch as the opaque payload.
func encodeIngestRecord(entries []ManifestEntry, events []types.Event) []byte {
	m := storage.Manifest{Kind: manifestKindIngest}
	for _, e := range entries {
		m.Entries = append(m.Entries, storage.ManifestEntry{
			Name: e.Tenant, Vals: []uint64{e.BatchSeq, e.FirstSeq, e.Events},
		})
	}
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	codec.EncodeEventsInto(w, events)
	m.Payload = append([]byte(nil), w.Bytes()...)
	return m.Encode()
}

// decodeIngestRecord decodes one manifest record.
func decodeIngestRecord(b []byte) ([]ManifestEntry, []types.Event, error) {
	m, err := storage.DecodeManifestKind(b, manifestKindIngest)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: ingest record: %v", ErrBadFrame, err)
	}
	entries := make([]ManifestEntry, 0, len(m.Entries))
	for _, e := range m.Entries {
		if len(e.Name) > MaxTenantName || len(e.Vals) != 3 {
			return nil, nil, fmt.Errorf("%w: ingest record entry", ErrBadFrame)
		}
		entries = append(entries, ManifestEntry{
			Tenant: e.Name, BatchSeq: e.Vals[0], FirstSeq: e.Vals[1], Events: e.Vals[2],
		})
	}
	events, err := codec.DecodeEvents(m.Payload)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: ingest record events: %v", ErrBadFrame, err)
	}
	return entries, events, nil
}

// encodeWatermarks encodes the GC checkpoint blob: per-tenant acked
// high-watermarks (one manifest entry each, in canonical order so the blob
// stays deterministic for byte-level tests) plus the next global event
// sequence as a named field.
func encodeWatermarks(wm map[string]uint64, nextSeq uint64) []byte {
	m := storage.Manifest{Kind: manifestKindIngestWM}
	m.SetField(fieldNextSeq, nextSeq)
	names := make([]string, 0, len(wm))
	for name := range wm {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Entries = append(m.Entries, storage.ManifestEntry{Name: name, Vals: []uint64{wm[name]}})
	}
	return m.Encode()
}

// decodeWatermarks decodes the GC checkpoint blob.
func decodeWatermarks(b []byte) (map[string]uint64, uint64, error) {
	m, err := storage.DecodeManifestKind(b, manifestKindIngestWM)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: watermark blob: %v", ErrBadFrame, err)
	}
	wm := make(map[string]uint64, len(m.Entries))
	for _, e := range m.Entries {
		if len(e.Name) > MaxTenantName || len(e.Vals) != 1 {
			return nil, 0, fmt.Errorf("%w: watermark blob tenant", ErrBadFrame)
		}
		wm[e.Name] = e.Vals[0]
	}
	return wm, m.Field(fieldNextSeq), nil
}

// IngestState is what a restarted server recovers from the manifest.
type IngestState struct {
	// Watermarks maps tenant name to the highest batch sequence that is
	// durably committed (and therefore acked or ackable). Admission's
	// contiguity rule makes this a contiguous prefix per tenant.
	Watermarks map[string]uint64
	// NextSeq is the lowest safe global event sequence: past every
	// assignment any manifest record ever made, durable or torn.
	NextSeq uint64
	// Epochs maps every fed epoch still in the log to its global
	// pre-routing batch — the shard.Source recovery re-feeds from.
	Epochs map[uint64][]types.Event
}

// RecoverIngest rebuilds the ingest state from the coordinator device.
// durable is the group's recovered punctuation frontier: a batch counts
// toward a tenant watermark iff its epoch is at or below it (epochs beyond
// the frontier never survived the crash, so their batches must be re-sent
// and re-fed). A torn final record — the manifest append that died mid-
// write — is tolerated and ignored, like the engine's torn input tails.
func RecoverIngest(dev storage.Device, durable uint64) (IngestState, error) {
	st := IngestState{
		Watermarks: map[string]uint64{},
		NextSeq:    1,
		Epochs:     map[uint64][]types.Event{},
	}
	if blob, ok, err := dev.ReadBlob(BlobIngest); err != nil {
		return st, fmt.Errorf("serve: read %s: %w", BlobIngest, err)
	} else if ok {
		wm, nextSeq, err := decodeWatermarks(blob)
		if err != nil {
			return st, fmt.Errorf("serve: %s: %w", BlobIngest, err)
		}
		st.Watermarks = wm
		if nextSeq > st.NextSeq {
			st.NextSeq = nextSeq
		}
	}
	cur, err := storage.ReadFrom(dev, LogIngest, 0)
	if err != nil {
		return st, fmt.Errorf("serve: read %s: %w", LogIngest, err)
	}
	defer cur.Close()
	// Latest record wins per epoch: an incarnation that died between the
	// manifest append and the feed leaves a record for an epoch it never
	// processed, and its successor re-appends that epoch number with
	// whatever it actually feeds there. Only the authoritative (last)
	// record's batches may count toward watermarks — a superseded batch was
	// never fed, and acking it would punch a hole in the tenant's stream.
	// NextSeq, by contrast, folds every record including superseded ones:
	// skipping sequence numbers is always safe, reusing them never is.
	// The log streams through a cursor with one record of lookahead: a
	// record that fails to decode is a torn tail only when nothing follows.
	latest := map[uint64][]ManifestEntry{}
	rec, ok, err := cur.Next()
	if err != nil {
		return st, fmt.Errorf("serve: read %s: %w", LogIngest, err)
	}
	for ok {
		next, nok, nerr := cur.Next()
		if nerr != nil {
			return st, fmt.Errorf("serve: read %s: %w", LogIngest, nerr)
		}
		entries, events, derr := decodeIngestRecord(rec.Payload)
		if derr != nil {
			if !nok {
				break // torn tail: the append this record belongs to died
			}
			return st, fmt.Errorf("serve: %s epoch %d: %w", LogIngest, rec.Epoch, derr)
		}
		st.Epochs[rec.Epoch] = events
		latest[rec.Epoch] = entries
		for _, e := range entries {
			if end := e.FirstSeq + e.Events; end > st.NextSeq {
				st.NextSeq = end
			}
		}
		rec, ok = next, nok
	}
	for ep, entries := range latest {
		if ep > durable {
			continue // never survived the crash: must be re-sent and re-fed
		}
		for _, e := range entries {
			if e.BatchSeq > st.Watermarks[e.Tenant] {
				st.Watermarks[e.Tenant] = e.BatchSeq
			}
		}
	}
	return st, nil
}

// IngestSource builds the group-recovery Source from the coordinator
// device's manifest: epoch → global pre-routing batch. Epochs GC already
// truncated are reported unknown, which GroupRecover's counter restoration
// tolerates; the alignment epoch always sits above the GC horizon because
// GC never truncates past the committed frontier.
func IngestSource(dev storage.Device, durable uint64) (shard.Source, error) {
	st, err := RecoverIngest(dev, durable)
	if err != nil {
		return nil, err
	}
	return func(epoch uint64) ([]types.Event, bool) {
		ev, ok := st.Epochs[epoch]
		return ev, ok
	}, nil
}
