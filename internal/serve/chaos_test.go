package serve

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
)

func runCell(t *testing.T, cell string) *ChaosReport {
	t.Helper()
	rep, err := Chaos(ChaosConfig{
		Cell: cell, Seed: 42, Shards: 2, Kind: ftapi.WAL,
		Tenants: 3, Batches: 20, BatchEvents: 6,
	})
	if err != nil {
		t.Fatalf("Chaos(%s): %v (report %+v)", cell, err, rep)
	}
	if rep.Violations != 0 {
		t.Fatalf("%s: %d violations (dup=%d order=%d exactly-once=%d)",
			cell, rep.Violations, rep.DupAcks, rep.OrderViol, rep.ExactlyOnce)
	}
	want := rep.Tenants * rep.Batches
	if cell == CellSlowConsumer {
		want += rep.Batches // the rogue tenant's stream is acked too
	}
	if rep.AckedBatches != want {
		t.Fatalf("%s: acked %d batches, want %d", cell, rep.AckedBatches, want)
	}
	if rep.MaxQueue > rep.QueueCap {
		t.Fatalf("%s: queue depth %d exceeded cap %d", cell, rep.MaxQueue, rep.QueueCap)
	}
	return rep
}

func TestChaosSteady(t *testing.T) {
	rep := runCell(t, CellSteady)
	if rep.Heals != 0 {
		t.Fatalf("steady cell healed %d times", rep.Heals)
	}
}

func TestChaosKillHeal(t *testing.T) {
	rep := runCell(t, CellKillHeal)
	if rep.Kills != 2 {
		t.Fatalf("kill-heal: %d kills fired, want 2", rep.Kills)
	}
	if rep.Heals < 1 {
		t.Fatal("kill-heal: no heals recorded")
	}
	if rep.ClientMTTRMs <= 0 {
		t.Fatal("kill-heal: no client-observed MTTR")
	}
}

func TestChaosReconnectStorm(t *testing.T) {
	rep := runCell(t, CellReconnectStorm)
	if rep.Reconnects == 0 {
		t.Fatal("reconnect storm produced no reconnects")
	}
	if rep.Kills != 1 || rep.Heals < 1 {
		t.Fatalf("storm: kills=%d heals=%d, want a mid-storm kill and heal", rep.Kills, rep.Heals)
	}
}

func TestChaosSlowConsumer(t *testing.T) {
	rep := runCell(t, CellSlowConsumer)
	if rep.Evictions == 0 {
		t.Fatal("slow-consumer cell evicted nothing")
	}
	if rep.Heals < 1 {
		t.Fatal("slow-consumer cell healed nothing")
	}
}

func TestChaosHalfOpen(t *testing.T) {
	rep := runCell(t, CellHalfOpen)
	if rep.Heals < 1 {
		t.Fatal("half-open cell healed nothing")
	}
}
