// Package serve is the network serving layer: a TCP ingestion front-end
// that accepts event batches from many concurrent clients, tags them per
// tenant, feeds them onto the sharded engine path, and returns exactly-once
// acknowledgements keyed to commit punctuation — an ack is sent only once
// the covering epoch is durably committed on every shard, so no ack is ever
// emitted for a batch that can fail to survive recovery.
//
// # Wire protocol
//
// Every frame is one uvarint length prefix followed by exactly that many
// bytes: a one-byte frame type and a type-specific body in internal/codec's
// varint vocabulary. A connection opens with Hello (the tenant name); the
// server answers HelloAck carrying the tenant's acked high-watermark, which
// is how a reconnecting client learns which batches survived — batches it
// re-sends at or below the watermark are answered with an immediate
// duplicate ack instead of being fed twice.
//
// Submit carries a client-assigned, per-tenant contiguous batch sequence
// number plus the batch events. The server admits batches strictly in
// sequence order (seq == maxSeen+1); a gap is answered with
// Slowdown(reason=order) naming the sequence to resend from. Admission
// failures are always explicit — Slowdown frames with a retry-after hint
// and a reason (rate, queue, degraded, order) — never silent drops.
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/types"
)

// FrameType identifies a wire frame.
type FrameType byte

const (
	// FrameHello opens a connection: body is the tenant name.
	FrameHello FrameType = 0x01
	// FrameHelloAck answers Hello: body is the tenant's acked batch
	// high-watermark and the server's committed punctuation frontier.
	FrameHelloAck FrameType = 0x02
	// FrameSubmit carries one batch: batch sequence number plus events.
	FrameSubmit FrameType = 0x03
	// FrameAck acknowledges one batch as durably committed: batch sequence
	// number plus the committed epoch that covers it.
	FrameAck FrameType = 0x04
	// FrameSlowdown rejects one batch with an explicit reason and a
	// retry-after hint; BatchSeq is the sequence to resend from.
	FrameSlowdown FrameType = 0x05
	// FrameError reports a protocol violation before the server closes the
	// connection.
	FrameError FrameType = 0x06
	// FramePing and FramePong are liveness probes.
	FramePing FrameType = 0x07
	FramePong FrameType = 0x08
)

// Submit frame flag bits (an optional trailing uvarint after the events;
// older encoders simply omit it, which strict decode accepts as flags 0).
const (
	// SubmitFlagSampled asks the server to trace this batch's journey
	// end-to-end regardless of its server-side sampling modulus.
	SubmitFlagSampled uint64 = 1 << 0
)

// SlowReason says why a Submit was rejected.
type SlowReason byte

const (
	// SlowRate: the tenant's token bucket is empty.
	SlowRate SlowReason = 1
	// SlowQueue: the tenant's ingest queue is at capacity.
	SlowQueue SlowReason = 2
	// SlowDegraded: the server is mid-heal and this tenant's priority is
	// below the shedding threshold.
	SlowDegraded SlowReason = 3
	// SlowOrder: the batch sequence leaves a gap; resend from BatchSeq.
	SlowOrder SlowReason = 4
)

func (r SlowReason) String() string {
	switch r {
	case SlowRate:
		return "rate"
	case SlowQueue:
		return "queue"
	case SlowDegraded:
		return "degraded"
	case SlowOrder:
		return "order"
	default:
		return fmt.Sprintf("reason(%d)", byte(r))
	}
}

// Wire limits. Oversized frames are rejected before allocation, so a
// hostile length prefix cannot balloon memory.
const (
	// DefaultMaxFrame bounds one frame's encoded size.
	DefaultMaxFrame = 1 << 20
	// MaxTenantName bounds the Hello tenant name.
	MaxTenantName = 64
	// MaxBatchEvents bounds one Submit's event count.
	MaxBatchEvents = 8192
	// maxErrorMsg bounds an Error frame's message.
	maxErrorMsg = 256
)

// Protocol errors.
var (
	// ErrFrameTooLarge rejects a frame whose length prefix exceeds the
	// connection's frame limit.
	ErrFrameTooLarge = errors.New("serve: frame exceeds size limit")
	// ErrBadFrame rejects a frame that does not decode exactly: unknown
	// type, truncated body, trailing bytes, or out-of-range fields.
	ErrBadFrame = errors.New("serve: malformed frame")
)

// Frame is one decoded wire frame; which fields are meaningful depends on
// Type (see the frame type constants).
type Frame struct {
	Type FrameType

	// Tenant is the Hello tenant name.
	Tenant string
	// Watermark is the HelloAck acked batch high-watermark.
	Watermark uint64
	// Epoch is the HelloAck committed frontier, or the Ack covering epoch.
	Epoch uint64
	// BatchSeq is the Submit/Ack batch sequence, or the Slowdown
	// resend-from sequence.
	BatchSeq uint64
	// Events is the Submit batch payload.
	Events []types.Event
	// Flags are the Submit frame's option bits (SubmitFlag*); 0 when the
	// optional trailing flags field is absent.
	Flags uint64
	// RetryAfterMs is the Slowdown retry hint in milliseconds.
	RetryAfterMs uint64
	// Reason is the Slowdown reason.
	Reason SlowReason
	// Code and Msg describe an Error frame.
	Code uint64
	Msg  string
}

// ReadFrame reads one length-prefixed frame payload (type byte + body) from
// br, enforcing the size limit before any payload allocation.
func ReadFrame(br *bufio.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBadFrame)
	}
	if n > uint64(max) {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeFrame decodes one frame payload strictly: every byte must be
// consumed, every count must fit the remaining payload (so a hostile count
// cannot force a large allocation), and Submit events must be routable
// (at least one key, no reserved replication kind).
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) == 0 {
		return f, fmt.Errorf("%w: empty frame", ErrBadFrame)
	}
	f.Type = FrameType(b[0])
	r := codec.NewReader(b[1:])
	switch f.Type {
	case FrameHello:
		var ok bool
		if f.Tenant, ok = readString(r, MaxTenantName); !ok {
			return f, fmt.Errorf("%w: bad tenant name", ErrBadFrame)
		}
	case FrameHelloAck:
		f.Watermark = r.Uvarint()
		f.Epoch = r.Uvarint()
	case FrameSubmit:
		f.BatchSeq = r.Uvarint()
		n := r.Uvarint()
		if n == 0 {
			return f, fmt.Errorf("%w: empty batch", ErrBadFrame)
		}
		if n > MaxBatchEvents || n > uint64(r.Remaining()) {
			return f, fmt.Errorf("%w: batch of %d events exceeds limits", ErrBadFrame, n)
		}
		f.Events = make([]types.Event, 0, n)
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			ev := r.Event()
			if r.Err() != nil {
				break
			}
			if ev.Kind == shard.KindReplicate {
				return f, fmt.Errorf("%w: event uses reserved replication kind", ErrBadFrame)
			}
			if len(ev.Keys) == 0 {
				return f, fmt.Errorf("%w: event has no routing key", ErrBadFrame)
			}
			f.Events = append(f.Events, ev)
		}
		if r.Err() == nil && r.Remaining() > 0 {
			// Optional trailing flags uvarint: absent on frames from older
			// encoders, consumed here so strict decode stays exact.
			f.Flags = r.Uvarint()
		}
	case FrameAck:
		f.BatchSeq = r.Uvarint()
		f.Epoch = r.Uvarint()
	case FrameSlowdown:
		f.BatchSeq = r.Uvarint()
		f.RetryAfterMs = r.Uvarint()
		f.Reason = SlowReason(r.Byte())
		if r.Err() == nil && (f.Reason < SlowRate || f.Reason > SlowOrder) {
			return f, fmt.Errorf("%w: unknown slowdown reason %d", ErrBadFrame, f.Reason)
		}
	case FrameError:
		f.Code = r.Uvarint()
		var ok bool
		if f.Msg, ok = readString(r, maxErrorMsg); !ok {
			return f, fmt.Errorf("%w: bad error message", ErrBadFrame)
		}
	case FramePing, FramePong:
		// No body.
	default:
		return f, fmt.Errorf("%w: unknown frame type 0x%02x", ErrBadFrame, b[0])
	}
	if r.Err() != nil {
		return f, fmt.Errorf("%w: %v", ErrBadFrame, r.Err())
	}
	if r.Remaining() != 0 {
		return f, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, r.Remaining())
	}
	return f, nil
}

// readString reads a uvarint-prefixed string bounded by max; the length is
// checked against the remaining payload before any allocation.
func readString(r *codec.Reader, max int) (string, bool) {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(max) || n > uint64(r.Remaining()) {
		return "", false
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = r.Byte()
	}
	return string(b), r.Err() == nil
}

// putString appends a uvarint-prefixed string.
func putString(w *codec.Buffer, s string) {
	w.Uvarint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.Byte(s[i])
	}
}

// encode assembles one wire frame: length prefix, type byte, body.
func encode(t FrameType, body func(*codec.Buffer)) []byte {
	b := codec.GetBuffer()
	defer codec.PutBuffer(b)
	b.Byte(byte(t))
	if body != nil {
		body(b)
	}
	out := make([]byte, 0, b.Len()+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(b.Len()))
	return append(out, b.Bytes()...)
}

// EncodeHello encodes a Hello frame.
func EncodeHello(tenant string) []byte {
	return encode(FrameHello, func(w *codec.Buffer) { putString(w, tenant) })
}

// EncodeHelloAck encodes a HelloAck frame.
func EncodeHelloAck(watermark, epoch uint64) []byte {
	return encode(FrameHelloAck, func(w *codec.Buffer) {
		w.Uvarint(watermark)
		w.Uvarint(epoch)
	})
}

// EncodeSubmit encodes a Submit frame.
func EncodeSubmit(batchSeq uint64, events []types.Event) []byte {
	return EncodeSubmitFlags(batchSeq, events, 0)
}

// EncodeSubmitFlags encodes a Submit frame with option bits. Zero flags
// omit the trailing field, producing the exact legacy encoding.
func EncodeSubmitFlags(batchSeq uint64, events []types.Event, flags uint64) []byte {
	return encode(FrameSubmit, func(w *codec.Buffer) {
		w.Uvarint(batchSeq)
		codec.EncodeEventsInto(w, events)
		if flags != 0 {
			w.Uvarint(flags)
		}
	})
}

// EncodeAck encodes an Ack frame.
func EncodeAck(batchSeq, epoch uint64) []byte {
	return encode(FrameAck, func(w *codec.Buffer) {
		w.Uvarint(batchSeq)
		w.Uvarint(epoch)
	})
}

// EncodeSlowdown encodes a Slowdown frame.
func EncodeSlowdown(batchSeq, retryAfterMs uint64, reason SlowReason) []byte {
	return encode(FrameSlowdown, func(w *codec.Buffer) {
		w.Uvarint(batchSeq)
		w.Uvarint(retryAfterMs)
		w.Byte(byte(reason))
	})
}

// EncodeError encodes an Error frame.
func EncodeError(code uint64, msg string) []byte {
	if len(msg) > maxErrorMsg {
		msg = msg[:maxErrorMsg]
	}
	return encode(FrameError, func(w *codec.Buffer) {
		w.Uvarint(code)
		putString(w, msg)
	})
}

// EncodePing and EncodePong encode liveness probes.
func EncodePing() []byte { return encode(FramePing, nil) }
func EncodePong() []byte { return encode(FramePong, nil) }
