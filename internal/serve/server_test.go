package serve

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

const testRows = uint32(512)

// newTestShardConfig builds a group config with explicit devices so a test
// can close the backend and recover a second one from the same storage.
func newTestShardConfig(shards int) shard.Config {
	devs := make([]storage.Device, shards)
	for i := range devs {
		devs[i] = storage.NewMem()
	}
	return shard.Config{
		GroupShape: types.GroupShape{
			RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 8},
			Shards:   shards,
		},
		App:      workload.NewGSApp(testRows),
		Kind:     ftapi.WAL,
		Devices:  devs,
		CoordDev: storage.NewMem(),
	}
}

func newTestServer(t *testing.T, cfg Config, shardCfg shard.Config) *Server {
	t.Helper()
	be, err := NewGroupBackend(shardCfg)
	if err != nil {
		t.Fatalf("NewGroupBackend: %v", err)
	}
	cfg.Backend = be
	if cfg.EpochEvery == 0 {
		cfg.EpochEvery = time.Millisecond
	}
	srv, err := New(cfg)
	if err != nil {
		be.Close()
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func genBatches(seed int64, n, events int) [][]types.Event {
	gen := workload.NewGS(workload.GSParams{
		Seed: seed, Rows: testRows, Partitions: 2,
		Theta: 0.6, Reads: 2, MultiPartitionRatio: 0.2,
	})
	out := make([][]types.Event, n)
	for b := range out {
		evs := make([]types.Event, events)
		for e := range evs {
			evs[e] = gen.Next()
		}
		out[b] = evs
	}
	return out
}

// submitAndDrain submits batches [from..to] and reads frames until every
// batch is acked (or the deadline passes).
func submitAndDrain(t *testing.T, c *Client, batches [][]types.Event, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := c.Submit(seq, batches[seq-1]); err != nil {
			t.Fatalf("Submit(%d): %v", seq, err)
		}
	}
	acked := from - 1
	deadline := time.Now().Add(10 * time.Second)
	for acked < to && time.Now().Before(deadline) {
		f, err := c.Next()
		if err != nil {
			t.Fatalf("Next: %v (acked %d of %d)", err, acked, to)
		}
		if f.Type == FrameAck && f.BatchSeq > acked {
			acked = f.BatchSeq
		}
	}
	if acked < to {
		t.Fatalf("timed out: acked %d of %d", acked, to)
	}
}

func TestAckFlowEndToEnd(t *testing.T) {
	srv := newTestServer(t, Config{Tenants: []TenantConfig{{Name: "a"}}}, newTestShardConfig(2))
	c, err := Dial(srv.Addr(), "a", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Watermark != 0 {
		t.Fatalf("fresh tenant watermark = %d, want 0", c.Watermark)
	}
	batches := genBatches(1, 5, 4)
	submitAndDrain(t, c, batches, 1, 5)
	if wm, ok := srv.Tenant("a"); !ok || wm != 5 {
		t.Fatalf("server watermark = %d/%v, want 5", wm, ok)
	}
}

func TestDuplicateAckOnReplay(t *testing.T) {
	srv := newTestServer(t, Config{Tenants: []TenantConfig{{Name: "a"}}}, newTestShardConfig(2))
	c, err := Dial(srv.Addr(), "a", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	batches := genBatches(2, 3, 4)
	submitAndDrain(t, c, batches, 1, 3)

	// Replaying an acked batch answers an immediate duplicate ack and never
	// feeds the batch again (the watermark dedupe path).
	if err := c.Submit(2, batches[1]); err != nil {
		t.Fatalf("replay Submit: %v", err)
	}
	f, err := c.Next()
	if err != nil {
		t.Fatalf("Next after replay: %v", err)
	}
	if f.Type != FrameAck || f.BatchSeq != 2 {
		t.Fatalf("replay answer = %+v, want Ack(2)", f)
	}
}

func TestOutOfOrderSubmit(t *testing.T) {
	srv := newTestServer(t, Config{Tenants: []TenantConfig{{Name: "a"}}}, newTestShardConfig(2))
	c, err := Dial(srv.Addr(), "a", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	batches := genBatches(3, 3, 4)
	if err := c.Submit(3, batches[2]); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	f, err := c.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Type != FrameSlowdown || f.Reason != SlowOrder || f.BatchSeq != 1 {
		t.Fatalf("gap answer = %+v, want Slowdown(order, resend from 1)", f)
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	srv := newTestServer(t, Config{Tenants: []TenantConfig{{Name: "a"}}}, newTestShardConfig(1))
	if _, err := Dial(srv.Addr(), "nobody", 2*time.Second); err == nil ||
		!strings.Contains(err.Error(), "hello rejected") {
		t.Fatalf("unknown tenant: got %v, want hello rejected", err)
	}
}

func TestExplicitBackpressureVerdicts(t *testing.T) {
	// A pump that effectively never runs keeps admitted batches queued, so
	// the rate and queue verdicts are deterministic.
	srv := newTestServer(t, Config{
		EpochEvery: time.Hour,
		Tenants: []TenantConfig{
			{Name: "rated", Rate: 0.001, Burst: 1},
			{Name: "queued", QueueCap: 1},
		},
	}, newTestShardConfig(1))
	batches := genBatches(4, 3, 2)

	rated, err := Dial(srv.Addr(), "rated", 2*time.Second)
	if err != nil {
		t.Fatalf("Dial rated: %v", err)
	}
	defer rated.Close()
	if err := rated.Submit(1, batches[0]); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := rated.Submit(2, batches[1]); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	f, err := rated.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Type != FrameSlowdown || f.Reason != SlowRate || f.RetryAfterMs == 0 {
		t.Fatalf("rate verdict = %+v, want Slowdown(rate) with retry hint", f)
	}

	queued, err := Dial(srv.Addr(), "queued", 2*time.Second)
	if err != nil {
		t.Fatalf("Dial queued: %v", err)
	}
	defer queued.Close()
	if err := queued.Submit(1, batches[0]); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := queued.Submit(2, batches[1]); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	f, err = queued.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Type != FrameSlowdown || f.Reason != SlowQueue {
		t.Fatalf("queue verdict = %+v, want Slowdown(queue)", f)
	}
}

func TestHalfOpenConnectionShed(t *testing.T) {
	srv := newTestServer(t, Config{
		HelloTimeout: 50 * time.Millisecond,
		Tenants:      []TenantConfig{{Name: "a"}},
	}, newTestShardConfig(1))

	// A connection that never says Hello is shed on HelloTimeout.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("half-open connection was not closed")
	}

	// And the accept loop is still serving real clients.
	c, err := Dial(srv.Addr(), "a", 2*time.Second)
	if err != nil {
		t.Fatalf("Dial after half-open shed: %v", err)
	}
	c.Close()
}

func TestNonHelloFirstFrameRejected(t *testing.T) {
	srv := newTestServer(t, Config{Tenants: []TenantConfig{{Name: "a"}}}, newTestShardConfig(1))
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	if _, err := raw.Write(EncodePing()); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := ReadFrame(bufio.NewReader(raw), DefaultMaxFrame)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	f, err := DecodeFrame(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Type != FrameError || f.Code != errCodeHelloFirst {
		t.Fatalf("answer = %+v, want Error(hello first)", f)
	}
}

// TestColdRestartExactlyOnce kills the whole stack and recovers a second
// server from the surviving devices: the reconnecting client's replays are
// deduplicated against the recovered watermark, and new batches flow.
func TestColdRestartExactlyOnce(t *testing.T) {
	shardCfg := newTestShardConfig(2)
	type ackKey struct {
		tenant string
		seq    uint64
	}
	ackCounts := map[ackKey]int{}
	ackLog := func(tenant string, batchSeq, firstSeq, events, epoch uint64) {
		ackCounts[ackKey{tenant, batchSeq}]++
	}

	be, err := NewGroupBackend(shardCfg)
	if err != nil {
		t.Fatalf("NewGroupBackend: %v", err)
	}
	srv, err := New(Config{
		Backend: be, EpochEvery: time.Millisecond,
		Tenants: []TenantConfig{{Name: "a"}},
		AckLog:  ackLog,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	batches := genBatches(5, 8, 4)
	c, err := Dial(srv.Addr(), "a", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	submitAndDrain(t, c, batches, 1, 6)
	c.Close()
	srv.Close() // kills the listener, the pump, and the backend

	// Second incarnation: recover the group from the shard logs and the
	// ingest manifest, then a fresh server over it.
	be2, err := RecoverGroupBackend(shardCfg)
	if err != nil {
		t.Fatalf("RecoverGroupBackend: %v", err)
	}
	srv2, err := New(Config{
		Backend: be2, EpochEvery: time.Millisecond,
		Tenants: []TenantConfig{{Name: "a"}},
		AckLog:  ackLog,
	})
	if err != nil {
		t.Fatalf("New (recovered): %v", err)
	}
	defer srv2.Close()

	c2, err := Dial(srv2.Addr(), "a", 5*time.Second)
	if err != nil {
		t.Fatalf("Dial (recovered): %v", err)
	}
	defer c2.Close()
	if c2.Watermark != 6 {
		t.Fatalf("recovered watermark = %d, want 6", c2.Watermark)
	}
	// A replayed survivor is answered with a duplicate ack, not re-fed.
	if err := c2.Submit(4, batches[3]); err != nil {
		t.Fatalf("replay Submit: %v", err)
	}
	f, err := c2.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Type != FrameAck || f.BatchSeq != 4 {
		t.Fatalf("replay answer = %+v, want Ack(4)", f)
	}
	// New traffic continues from the watermark.
	submitAndDrain(t, c2, batches, 7, 8)

	// The server-side audit trail saw each batch acked exactly once across
	// both incarnations (the duplicate ack above bypasses AckLog by design).
	for k, n := range ackCounts {
		if n != 1 {
			t.Errorf("batch %+v acked %d times across incarnations", k, n)
		}
	}
	if len(ackCounts) != 8 {
		t.Errorf("acked %d distinct batches, want 8", len(ackCounts))
	}
}

func TestRecoverIngestLatestRecordWins(t *testing.T) {
	dev := storage.NewMem()
	evs := genBatches(6, 1, 2)[0]
	// First incarnation appends epoch 1 claiming batch (a,1) with seqs 1..2,
	// then dies before feeding it. The second incarnation re-appends epoch 1
	// empty (it had nothing to feed there).
	rec1 := encodeIngestRecord([]ManifestEntry{{Tenant: "a", BatchSeq: 1, FirstSeq: 1, Events: 2}}, evs)
	if err := dev.Append(LogIngest, storage.Record{Epoch: 1, Payload: rec1}); err != nil {
		t.Fatal(err)
	}
	rec2 := encodeIngestRecord(nil, nil)
	if err := dev.Append(LogIngest, storage.Record{Epoch: 1, Payload: rec2}); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverIngest(dev, 1)
	if err != nil {
		t.Fatalf("RecoverIngest: %v", err)
	}
	// The superseded record's batch was never fed: it must NOT count toward
	// the watermark, or the tenant's stream would have a hole.
	if st.Watermarks["a"] != 0 {
		t.Fatalf("watermark from superseded record: %d, want 0", st.Watermarks["a"])
	}
	// But its sequence assignment is burned: NextSeq must skip it.
	if st.NextSeq != 3 {
		t.Fatalf("NextSeq = %d, want 3 (superseded seqs are never reused)", st.NextSeq)
	}
	// The latest record is the authoritative epoch batch for recovery.
	if got := st.Epochs[1]; len(got) != 0 {
		t.Fatalf("epoch 1 batch = %d events, want 0 (latest record wins)", len(got))
	}
}

func TestRecoverIngestTornTail(t *testing.T) {
	dev := storage.NewMem()
	evs := genBatches(7, 1, 2)[0]
	rec := encodeIngestRecord([]ManifestEntry{{Tenant: "a", BatchSeq: 1, FirstSeq: 1, Events: 2}}, evs)
	if err := dev.Append(LogIngest, storage.Record{Epoch: 1, Payload: rec}); err != nil {
		t.Fatal(err)
	}
	// A torn final record — the append that died mid-write — is ignored.
	if err := dev.Append(LogIngest, storage.Record{Epoch: 2, Payload: []byte{0xff, 0x01, 0x02}}); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverIngest(dev, 2)
	if err != nil {
		t.Fatalf("RecoverIngest with torn tail: %v", err)
	}
	if st.Watermarks["a"] != 1 || st.NextSeq != 3 {
		t.Fatalf("state = %+v, want watermark 1, next 3", st)
	}
	// The same corruption anywhere else in the log is a hard error.
	if err := dev.Append(LogIngest, storage.Record{Epoch: 3, Payload: rec}); err != nil {
		t.Fatal(err)
	}
	// Log is now: good(1), torn(2), good(3) — the torn record is no longer
	// the tail, so recovery must refuse rather than silently skip an epoch.
	if _, err := RecoverIngest(dev, 3); err == nil {
		t.Fatal("mid-log corruption: want error")
	}
}

func TestRecoverIngestFromBlob(t *testing.T) {
	dev := storage.NewMem()
	if err := dev.WriteBlob(BlobIngest, encodeWatermarks(map[string]uint64{"a": 7, "b": 2}, 42)); err != nil {
		t.Fatal(err)
	}
	st, err := RecoverIngest(dev, 100)
	if err != nil {
		t.Fatalf("RecoverIngest: %v", err)
	}
	if st.Watermarks["a"] != 7 || st.Watermarks["b"] != 2 || st.NextSeq != 42 {
		t.Fatalf("blob state = %+v", st)
	}
}
