package serve

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Error frame codes.
const (
	errCodeProtocol     = 1
	errCodeUnknownTenant = 2
	errCodeHelloFirst   = 3
)

// session is one client connection: a read loop that admits Submits and a
// write loop that drains a bounded outbound buffer. The two loops share
// nothing but the buffer channel, so a stalled peer can only ever block its
// own write loop — and once the buffer fills, trySend evicts the session
// rather than let acks queue without bound (slow-consumer protection).
type session struct {
	srv  *Server
	conn net.Conn
	tn   atomic.Pointer[tenant] // set after Hello

	out       chan []byte
	closed    atomic.Bool
	closeOnce sync.Once
	done      chan struct{}
}

func newSession(srv *Server, conn net.Conn) {
	sess := &session{
		srv:  srv,
		conn: conn,
		out:  make(chan []byte, srv.cfg.AckBuffer),
		done: make(chan struct{}),
	}
	if !srv.addSession(sess) {
		conn.Close()
		return
	}
	srv.wg.Add(2)
	go sess.readLoop()
	go sess.writeLoop()
}

// close tears the session down (idempotent, safe from any goroutine).
func (s *session) close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.done)
		s.conn.Close()
		if tn := s.tn.Load(); tn != nil {
			tn.detach(s)
		}
		s.srv.dropSession(s)
	})
}

// trySend queues one frame without blocking; a full buffer evicts the
// session. Acks for an evicted session are not lost — the batch's
// watermark advance is durable, and the client learns it from HelloAck on
// reconnect.
func (s *session) trySend(frame []byte) {
	if s.closed.Load() {
		return
	}
	select {
	case s.out <- frame:
	default:
		s.srv.count("serve.evictions")
		s.close()
	}
}

func (s *session) writeLoop() {
	defer s.srv.wg.Done()
	defer s.close()
	for {
		select {
		case <-s.done:
			return
		case frame := <-s.out:
			s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
			if _, err := s.conn.Write(frame); err != nil {
				return
			}
		}
	}
}

func (s *session) readLoop() {
	defer s.srv.wg.Done()
	defer s.close()
	br := bufio.NewReader(s.conn)

	// Hello first, under its own (shorter) deadline: half-open connections
	// are shed here, on this goroutine, leaving the accept loop free.
	s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.HelloTimeout))
	payload, err := ReadFrame(br, s.srv.cfg.MaxFrame)
	if err != nil {
		return
	}
	hello, err := DecodeFrame(payload)
	if err != nil || hello.Type != FrameHello {
		s.trySend(EncodeError(errCodeHelloFirst, "expected Hello"))
		time.Sleep(time.Millisecond) // let the error frame flush
		return
	}
	tn, ok := s.srv.tenants[hello.Tenant]
	if !ok {
		s.trySend(EncodeError(errCodeUnknownTenant, "unknown tenant "+hello.Tenant))
		time.Sleep(time.Millisecond)
		return
	}
	s.tn.Store(tn)
	wm := tn.attach(s)
	s.trySend(EncodeHelloAck(wm, s.srv.Committed()))

	for {
		s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.IdleTimeout))
		payload, err := ReadFrame(br, s.srv.cfg.MaxFrame)
		if err != nil {
			return
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			s.trySend(EncodeError(errCodeProtocol, err.Error()))
			time.Sleep(time.Millisecond)
			return
		}
		switch f.Type {
		case FrameSubmit:
			s.handleSubmit(tn, f)
		case FramePing:
			s.trySend(EncodePong())
		case FrameHello:
			// Re-Hello on a live connection: re-attach and re-sync.
			s.trySend(EncodeHelloAck(tn.attach(s), s.srv.Committed()))
		default:
			s.trySend(EncodeError(errCodeProtocol, "unexpected frame"))
			time.Sleep(time.Millisecond)
			return
		}
	}
}

// handleSubmit runs admission and answers with the protocol's explicit
// verdicts. Accepted batches are acked later, by the pump, once their
// epoch commits; everything else is answered here.
func (s *session) handleSubmit(tn *tenant, f Frame) {
	rec := s.srv.cfg.Journeys
	sampled := rec.ShouldSample(f.BatchSeq, f.Flags&SubmitFlagSampled != 0)
	v := tn.admit(f.BatchSeq, f.Events, s.srv.degraded.Load(), s.srv.cfg.ShedBelow, time.Now(), rec, sampled)
	switch v {
	case vAccept:
		// The ack comes from the pump when the covering epoch commits.
	case vDupAcked:
		// Already durable: answer immediately, do not feed twice. This is
		// the reconnect replay path; it bypasses the pump's AckLog because
		// it re-states a past decision rather than making a new one.
		s.srv.count("serve.dedupe_acks")
		s.trySend(EncodeAck(f.BatchSeq, s.srv.Committed()))
	case vDupPending:
		// Admitted earlier, still in flight: the real ack is coming.
	case vOutOfOrder:
		s.noteSlowdown(tn, SlowOrder)
		s.trySend(EncodeSlowdown(tn.resendFrom(), 0, SlowOrder))
	case vShed:
		s.noteSlowdown(tn, SlowDegraded)
		s.trySend(EncodeSlowdown(f.BatchSeq, 20, SlowDegraded))
	case vThrottle:
		s.noteSlowdown(tn, SlowRate)
		s.trySend(EncodeSlowdown(f.BatchSeq, tn.retryAfterMs(), SlowRate))
	case vQueueFull:
		s.noteSlowdown(tn, SlowQueue)
		s.trySend(EncodeSlowdown(f.BatchSeq, 10, SlowQueue))
	}
}

// noteSlowdown counts a Slowdown and drops a rate-limited marker on the
// incident timeline (one per reason per 250ms — a rejection storm reads
// as a burst marker, not thousands of events).
func (s *session) noteSlowdown(tn *tenant, reason SlowReason) {
	s.srv.count("serve.slowdowns")
	s.srv.timeline().AddLimited(250*time.Millisecond, "serve", "slowdown",
		tn.cfg.Name+": "+reason.String(), nil)
}
