package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"morphstreamr/internal/journey"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/supervisor"
	"morphstreamr/internal/types"
)

// pump is the single feeding goroutine: every tick it gathers admitted
// batches by tenant priority, assigns global event sequences, appends the
// epoch's ingest manifest record (write-ahead), feeds the backend, flushes
// acks for newly committed epochs, and garbage-collects the manifest.
// Backend failures are healed inline, with the degraded flag raised so
// admission sheds by priority while the heal runs — the accept loop and
// the session read loops never stall.
func (s *Server) pump() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.EpochEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.closedCh:
			return
		case <-ticker.C:
			if err := s.tick(); err != nil {
				s.mu.Lock()
				s.termErr = err
				s.mu.Unlock()
				s.degraded.Store(true) // shed everything; the server is dead
				s.timeline().Add("serve", "terminal", err.Error(), nil)
				s.cfg.Journeys.ShedActive()
				return
			}
		}
	}
}

// errManifest marks a coordinator-device manifest append failure: the
// epoch was never fed, its batches are already requeued, and the backend
// is intact — retry next tick rather than heal a healthy group.
var errManifest = errors.New("serve: ingest manifest append failed")

func (s *Server) tick() error {
	batches := s.gather()
	// Feed even with no new batches while epochs are in flight: commit
	// markers fire on epoch cadence, so pending acks need empty heartbeat
	// epochs to reach their durability gate during traffic lulls.
	if len(batches) == 0 && len(s.inflight) == 0 {
		s.flushAcks()
		return nil
	}
	if err := s.feed(batches); err != nil {
		if errors.Is(err, errManifest) {
			s.manifestFails++
			if s.manifestFails > 8 {
				return err
			}
			return nil
		}
		if herr := s.heal(err); herr != nil {
			return herr
		}
	}
	s.manifestFails = 0
	s.flushAcks()
	s.maybeGC()
	return nil
}

// gather collects whole batches in feeding order — tenants by priority
// descending, each tenant's FIFO queue drained in turn — until the epoch
// event budget is reached. Shed-eligible tenants are skipped while
// degraded (their queues keep their backlog; only new Submits bounce).
func (s *Server) gather() []*batch {
	if len(s.inflight) >= s.cfg.MaxInflightEpochs {
		return nil // ack debt bound: stop feeding until commits catch up
	}
	degraded := s.degraded.Load()
	room := s.cfg.MaxEpochEvents
	var out []*batch
	for _, t := range s.order {
		if degraded && t.cfg.Priority < s.cfg.ShedBelow {
			continue
		}
		for room > 0 {
			got := t.take(1)
			if len(got) == 0 {
				break
			}
			b := got[0]
			if len(b.ev) > room && len(out) > 0 {
				// Batch does not fit this epoch: put it back for the next.
				t.requeue(got)
				room = 0
				break
			}
			out = append(out, b)
			b.j.Stamp(journey.StageQueue)
			room -= len(b.ev)
		}
	}
	return out
}

// feed assigns sequences, writes the manifest record, and feeds one epoch.
func (s *Server) feed(batches []*batch) error {
	ep := s.be.Epoch() + 1
	var events []types.Event
	entries := make([]ManifestEntry, 0, len(batches))
	for _, b := range batches {
		if !b.seqed {
			// Assign once; heal requeues keep the assignment so a re-fed
			// batch replays with identical sequences.
			b.firstSeq = s.nextSeq
			s.nextSeq += uint64(len(b.ev))
			for i := range b.ev {
				b.ev[i].Seq = b.firstSeq + uint64(i)
			}
			b.seqed = true
		}
		events = append(events, b.ev...)
		entries = append(entries, ManifestEntry{
			Tenant: b.tn.cfg.Name, BatchSeq: b.seq,
			FirstSeq: b.firstSeq, Events: uint64(len(b.ev)),
		})
	}
	// Requeued batches carry older sequences than freshly gathered ones;
	// feed the epoch in global sequence order.
	sort.Slice(events, func(a, b int) bool { return events[a].Seq < events[b].Seq })

	// Record the epoch before feeding it: the manifest is the write-ahead
	// truth recovery re-feeds from, so it must cover every epoch the
	// backend might have started. The in-memory mirrors serve the heal
	// path without a device read.
	s.inflight[ep] = batches
	s.fedEpochs[ep] = events
	if len(events) == 0 {
		s.fedEpochs[ep] = []types.Event{} // present-but-empty: heartbeat
	}
	rec := storage.Record{Epoch: ep, Payload: encodeIngestRecord(entries, events)}
	if err := s.be.Coord().Append(LogIngest, rec); err != nil {
		// The epoch was never fed; unwind the mirrors and requeue.
		delete(s.inflight, ep)
		delete(s.fedEpochs, ep)
		s.requeueBatches(batches)
		return fmt.Errorf("%w: epoch %d: %v", errManifest, ep, err)
	}
	for _, b := range batches {
		if b.j != nil {
			b.j.Stamp(journey.StageRoute)
			b.j.SetRoute(ep, s.routeShards(b))
		}
	}
	if err := s.be.Feed(events); err != nil {
		return err
	}
	for _, b := range batches {
		b.j.Stamp(journey.StageExecute)
	}
	s.count("serve.epochs")
	return nil
}

// routeShards returns the distinct shards a sampled batch's events route
// to, when the backend exposes its router (nil otherwise).
func (s *Server) routeShards(b *batch) []int {
	sr, ok := s.be.(shardRouter)
	if !ok {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, ev := range b.ev {
		sh := sr.ShardOf(ev)
		if !seen[sh] {
			seen[sh] = true
			out = append(out, sh)
		}
	}
	sort.Ints(out)
	return out
}

// memSource serves group recovery from the pump's in-memory epoch mirror,
// which matches the durable manifest exactly: both record every fed epoch
// and both are pruned only below the committed frontier, so any epoch
// recovery can ask for — the alignment epoch is never below the frontier —
// is present.
func (s *Server) memSource() shard.Source {
	return func(ep uint64) ([]types.Event, bool) {
		ev, ok := s.fedEpochs[ep]
		return ev, ok
	}
}

// heal recovers the backend after a failed Feed. While it runs, admission
// sheds tenants below the priority threshold; admitted work is never
// dropped — batches from epochs the recovery could not preserve are
// requeued (with their assigned sequences) and re-fed after the heal.
func (s *Server) heal(procErr error) error {
	detected := time.Now()
	cause := supervisor.Classify(procErr)
	s.degraded.Store(true)
	defer s.degraded.Store(false)
	// Bracket the heal for the journey tracer: time any sampled in-flight
	// batch spends inside this window is attributed to its RECOVERY stage,
	// stitching the journey across the backend incarnations.
	s.cfg.Journeys.RecoveryBegin()
	defer s.cfg.Journeys.RecoveryEnd()
	s.timeline().Add("serve", "heal-begin", cause, map[string]any{"err": procErr.Error()})
	s.heals.Add(1)
	s.count("serve.heals")
	if int(s.heals.Load()) > s.cfg.MaxHeals {
		s.cfg.Health.Record(metrics.Incident{
			Cause: cause, Err: procErr.Error(), DetectedAt: detected, Healed: false,
		})
		s.timeline().Add("serve", "heal-failed", "heal budget exhausted", nil)
		return fmt.Errorf("serve: heal budget exhausted (%d): %w", s.cfg.MaxHeals, procErr)
	}

	recovered, err := s.be.Heal(procErr, s.memSource())
	if err != nil {
		s.cfg.Health.Record(metrics.Incident{
			Cause: cause, Err: procErr.Error(), DetectedAt: detected,
			MTTR: time.Since(detected), Healed: false,
		})
		s.timeline().Add("serve", "heal-failed", err.Error(), nil)
		return fmt.Errorf("serve: heal: %w", err)
	}

	// Epochs above the recovery point were lost with the crash: requeue
	// their batches, ascending, at the front of their tenants' queues so
	// re-feeding preserves per-tenant order and global sequence order.
	var lost []uint64
	for ep := range s.inflight {
		if ep > recovered {
			lost = append(lost, ep)
		}
	}
	sort.Slice(lost, func(a, b int) bool { return lost[a] > lost[b] })
	for _, ep := range lost {
		s.requeueBatches(s.inflight[ep])
		delete(s.inflight, ep)
		delete(s.fedEpochs, ep)
	}

	s.cfg.Health.Record(metrics.Incident{
		Cause: cause, Err: procErr.Error(), DetectedAt: detected,
		MTTR: time.Since(detected), RecoveredEpoch: recovered, Healed: true,
	})
	if reg := s.cfg.Obs.Registry(); reg != nil {
		reg.Histogram("serve.heal_seconds").ObserveSince(detected)
	}
	s.timeline().Add("serve", "heal-end", cause, map[string]any{
		"mttr_ms":         float64(time.Since(detected)) / float64(time.Millisecond),
		"recovered_epoch": recovered,
	})
	return nil
}

// requeueBatches returns batches to their tenants' queue fronts, grouped
// per tenant in original order.
func (s *Server) requeueBatches(batches []*batch) {
	perTenant := map[*tenant][]*batch{}
	var order []*tenant
	for _, b := range batches {
		if _, seen := perTenant[b.tn]; !seen {
			order = append(order, b.tn)
		}
		perTenant[b.tn] = append(perTenant[b.tn], b)
	}
	for _, t := range order {
		t.requeue(perTenant[t])
	}
}

// flushAcks acknowledges every in-flight epoch at or below the committed
// punctuation frontier: ascending epoch order, batches in fed order, so
// each tenant's watermark advances contiguously. This — and only this —
// is where an ack originates; by construction it cannot fire before the
// covering epoch is durable on every shard.
func (s *Server) flushAcks() {
	committed := s.be.Committed()
	s.committed.Store(committed)
	var done []uint64
	for ep := range s.inflight {
		if ep <= committed {
			done = append(done, ep)
		}
	}
	sort.Slice(done, func(a, b int) bool { return done[a] < done[b] })
	ct, hasCT := s.be.(commitTimer)
	for _, ep := range done {
		// The commit stage boundary is when the frontier actually covered
		// the epoch (recorded by the shard group on its coordinator
		// goroutine — this one); epochs committed by a previous
		// incarnation have no stamp and fall back to now.
		commitAt := time.Now()
		if hasCT {
			if t, ok := ct.CommittedAt(ep); ok {
				commitAt = t
			}
		}
		for _, b := range s.inflight[ep] {
			sess := b.tn.ack(b)
			if s.cfg.AckLog != nil {
				s.cfg.AckLog(b.tn.cfg.Name, b.seq, b.firstSeq, uint64(len(b.ev)), ep)
			}
			s.count("serve.acks")
			s.observeAckLag(b.submitted)
			s.cfg.SLO.Observe(time.Since(b.submitted))
			if sess != nil {
				sess.trySend(EncodeAck(b.seq, ep))
			}
			b.j.StampAt(journey.StageCommit, commitAt)
			b.j.Complete()
		}
		delete(s.inflight, ep)
	}
}

// maybeGC checkpoints tenant watermarks and releases the ingest manifest's
// segments below the committed frontier, blob first: a crash between the
// two steps only leaves extra log records. The in-memory epoch mirror is
// pruned to the same horizon. Epochs at or above committed are always
// retained — group recovery's alignment epoch can never sit below the
// frontier, and storage.Release only ever under-reclaims.
func (s *Server) maybeGC() {
	committed := s.committed.Load()
	if committed < 1 || committed-s.lastGC < s.cfg.GCEvery {
		return
	}
	wm := make(map[string]uint64, len(s.order))
	for _, t := range s.order {
		wm[t.cfg.Name] = t.Watermark()
	}
	if err := s.be.Coord().WriteBlob(BlobIngest, encodeWatermarks(wm, s.nextSeq)); err != nil {
		return // skip this round; the log still has everything
	}
	upTo := committed - 1
	if err := storage.Release(s.be.Coord(), LogIngest, upTo); err != nil {
		return
	}
	for ep := range s.fedEpochs {
		if ep <= upTo {
			delete(s.fedEpochs, ep)
		}
	}
	s.lastGC = committed
	s.count("serve.gcs")
}
