package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/journey"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Chaos cells.
const (
	// CellSteady is the no-fault baseline.
	CellSteady = "steady"
	// CellKillHeal kills one shard mid-traffic, then the whole group.
	CellKillHeal = "kill-heal"
	// CellReconnectStorm repeatedly severs every client connection while a
	// shard kill lands mid-storm.
	CellReconnectStorm = "reconnect-storm"
	// CellSlowConsumer adds a rogue tenant that submits without reading
	// acks, exercising bounded ack buffers and eviction.
	CellSlowConsumer = "slow-consumer"
	// CellHalfOpen floods the server with connections that never Hello
	// (and some that send a truncated frame) while real traffic runs.
	CellHalfOpen = "half-open"
)

// Cells lists every chaos cell.
func Cells() []string {
	return []string{CellSteady, CellKillHeal, CellReconnectStorm, CellSlowConsumer, CellHalfOpen}
}

// ChaosConfig parameterizes one chaos run.
type ChaosConfig struct {
	Cell string
	Seed int64
	// Shards and Kind shape the backend (defaults 2 shards, WAL).
	Shards int
	Kind   ftapi.Kind
	// Tenants, Batches (per tenant), and BatchEvents shape the traffic
	// (defaults 3, 30, 8).
	Tenants     int
	Batches     int
	BatchEvents int
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
	// Obs, when non-nil, observes the run (a fresh observer is created
	// otherwise so eviction/slowdown counters are always available).
	Obs *obs.Observer
	// Journeys, when non-nil, traces sampled batches end-to-end through
	// the run (see internal/journey); drained by the caller afterwards.
	Journeys *journey.Recorder
	// SLO, when non-nil, observes every acked batch's lag.
	SLO *obs.SLOMonitor
	// SampleFlagEvery, when > 0, makes every driver set the Submit
	// sampled flag on batch sequences divisible by it (the client-side
	// sampling path; server-side sampling comes from Journeys' config).
	SampleFlagEvery uint64
}

func (c *ChaosConfig) normalize() {
	if c.Cell == "" {
		c.Cell = CellSteady
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.Batches <= 0 {
		c.Batches = 30
	}
	if c.BatchEvents <= 0 {
		c.BatchEvents = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.NewObserver(1, 64)
	}
}

// AckRecord is one server-side acknowledgement decision.
type AckRecord struct {
	Tenant   string
	BatchSeq uint64
	FirstSeq uint64
	Events   uint64
	Epoch    uint64
	At       time.Time
}

// ChaosReport is one cell's outcome. Violations is the acceptance gate:
// zero means every acked batch is present exactly once in the recovered
// output union, no batch was acked twice, and every tenant's ack stream
// is contiguous.
type ChaosReport struct {
	Cell        string  `json:"cell"`
	Tenants     int     `json:"tenants"`
	Batches     int     `json:"batches_per_tenant"`
	AckedBatches int    `json:"acked_batches"`
	DupAcks     int     `json:"dup_acks"`
	ExactlyOnce int     `json:"exactly_once_violations"`
	OrderViol   int     `json:"ack_order_violations"`
	Violations  int     `json:"violations"`
	Kills       int     `json:"kills"`
	Heals       int     `json:"heals"`
	Evictions   int64   `json:"evictions"`
	Slowdowns   int64   `json:"slowdowns"`
	Reconnects  int64   `json:"reconnects"`
	ClientMTTRMs float64 `json:"client_mttr_ms"`
	P50AckLagMs float64 `json:"p50_ack_lag_ms"`
	P99AckLagMs float64 `json:"p99_ack_lag_ms"`
	MaxQueue    int     `json:"max_queue_depth"`
	QueueCap    int     `json:"queue_cap"`
	WallMs      float64 `json:"wall_ms"`
	Err         string  `json:"err,omitempty"`
}

// ackAudit collects the server's acknowledgement decisions thread-safely.
type ackAudit struct {
	mu   sync.Mutex
	recs []AckRecord
}

func (a *ackAudit) add(r AckRecord) {
	a.mu.Lock()
	a.recs = append(a.recs, r)
	a.mu.Unlock()
}

func (a *ackAudit) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.recs)
}

func (a *ackAudit) all() []AckRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AckRecord(nil), a.recs...)
}

// Chaos runs one cell: live traffic from concurrent tenant clients against
// a sharded backend while the cell's fault schedule fires, then a full
// exactly-once audit of every acknowledgement against the union of
// delivered outputs across all backend incarnations.
func Chaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg.normalize()
	start := time.Now()
	rep := &ChaosReport{Cell: cfg.Cell, Tenants: cfg.Tenants, Batches: cfg.Batches}

	rows := uint32(256 * cfg.Shards)
	app := workload.NewGSApp(rows)
	// Devices are created explicitly (not left for the group to default):
	// heal-time group recovery rebuilds from cfg's devices, which must be
	// the same ones the dead incarnation wrote.
	devs := make([]storage.Device, cfg.Shards)
	for i := range devs {
		devs[i] = storage.NewMem()
	}
	be, err := NewGroupBackend(shard.Config{
		GroupShape: types.GroupShape{
			RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 8},
			Shards:   cfg.Shards,
		},
		App:      app,
		Kind:     cfg.Kind,
		Devices:  devs,
		CoordDev: storage.NewMem(),
		Obs:      cfg.Obs,
	})
	if err != nil {
		return rep, err
	}

	audit := &ackAudit{}
	tenants := make([]TenantConfig, 0, cfg.Tenants)
	for i := 0; i < cfg.Tenants; i++ {
		tenants = append(tenants, TenantConfig{
			Name:     fmt.Sprintf("t%d", i),
			Priority: i,
			QueueCap: 64,
		})
	}
	ackBuffer := 256
	if cfg.Cell == CellSlowConsumer {
		tenants = append(tenants, TenantConfig{Name: "rogue", Priority: cfg.Tenants, QueueCap: 64})
		ackBuffer = 8
	}
	helloTimeout := 2 * time.Second
	if cfg.Cell == CellHalfOpen {
		helloTimeout = 100 * time.Millisecond
	}
	srv, err := New(Config{
		Backend:      be,
		Tenants:      tenants,
		EpochEvery:   time.Millisecond,
		ShedBelow:    1, // tenant t0 sheds while a heal is in flight
		AckBuffer:    ackBuffer,
		HelloTimeout: helloTimeout,
		MaxHeals:     16,
		Obs:          cfg.Obs,
		Journeys:     cfg.Journeys,
		SLO:          cfg.SLO,
		AckLog: func(tenant string, batchSeq, firstSeq, events, epoch uint64) {
			audit.add(AckRecord{
				Tenant: tenant, BatchSeq: batchSeq, FirstSeq: firstSeq,
				Events: events, Epoch: epoch, At: time.Now(),
			})
		},
	})
	if err != nil {
		be.Close()
		return rep, err
	}
	defer srv.Close()

	// Pre-generate each tenant's batch stream so reconnect replays are
	// byte-identical.
	drivers := make([]*chaosDriver, cfg.Tenants)
	for i := range drivers {
		gen := workload.NewGS(workload.GSParams{
			Seed: cfg.Seed + int64(i)*101, Rows: rows, Partitions: cfg.Shards,
			Theta: 0.6, Reads: 2, MultiPartitionRatio: 0.2,
		})
		batches := make([][]types.Event, cfg.Batches)
		for b := range batches {
			evs := make([]types.Event, cfg.BatchEvents)
			for e := range evs {
				evs[e] = gen.Next()
			}
			batches[b] = evs
		}
		drivers[i] = newChaosDriver(srv.Addr(), fmt.Sprintf("t%d", i), batches)
		drivers[i].sampleEvery = cfg.SampleFlagEvery
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, d := range drivers {
		wg.Add(1)
		go func(d *chaosDriver) { defer wg.Done(); d.run(stop) }(d)
	}

	// Cell fault schedules run on the harness goroutine while traffic
	// flows; each returns the kill timestamps for MTTR attribution.
	var kills []time.Time
	totalBatches := cfg.Tenants * cfg.Batches
	progress := func(frac float64) bool {
		return waitFor(stop, cfg.Timeout, func() bool {
			return audit.count() >= int(frac*float64(totalBatches))
		})
	}
	switch cfg.Cell {
	case CellKillHeal:
		if progress(0.25) {
			kills = append(kills, time.Now())
			be.KillShard(1 % cfg.Shards)
		}
		if progress(0.55) {
			kills = append(kills, time.Now())
			be.KillGroup()
		}
	case CellReconnectStorm:
		// Arm the kill while most of the stream is still unacked — the
		// remaining batches guarantee future feeds, so the kill is consumed
		// and healed under live reconnect pressure.
		if progress(0.15) {
			kills = append(kills, time.Now())
			be.KillShard(1 % cfg.Shards)
		}
		for round := 0; round < 12 && audit.count() < totalBatches; round++ {
			for _, d := range drivers {
				d.sever()
			}
			time.Sleep(8 * time.Millisecond)
		}
	case CellSlowConsumer:
		wg.Add(1)
		go func() {
			defer wg.Done()
			runRogue(srv.Addr(), cfg.Batches, cfg.BatchEvents, rows, cfg.Seed, stop)
		}()
		if progress(0.3) {
			kills = append(kills, time.Now())
			be.KillShard(0)
		}
	case CellHalfOpen:
		// Kill early (most of the stream unacked guarantees the armed kill
		// is consumed by a live feed), then flood with connections that
		// never complete the handshake while the heal and traffic run.
		if progress(0.2) {
			kills = append(kills, time.Now())
			be.KillShard(1 % cfg.Shards)
		}
		var conns []*halfOpenConn
		for round := 0; round < 20; round++ {
			if c := dialHalfOpen(srv.Addr(), round%2 == 0); c != nil {
				conns = append(conns, c)
			}
			time.Sleep(5 * time.Millisecond)
		}
		defer func() {
			for _, c := range conns {
				c.close()
			}
		}()
	}

	// Wait for every declared tenant to finish its stream.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(cfg.Timeout):
		close(stop)
		<-doneCh
		rep.Err = "chaos run timed out before all batches were acked"
	}
	if rep.Err == "" {
		close(stop)
	}
	srv.Close() // stops the pump; the backend is quiescent for the audit

	rep.Kills = len(kills)
	rep.Heals = srv.Heals()
	rep.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	if reg := cfg.Obs.Registry(); reg != nil {
		rep.Evictions = reg.Counter("serve.evictions").Value()
		rep.Slowdowns = reg.Counter("serve.slowdowns").Value()
	}
	for _, t := range srv.tenants {
		st := t.stats()
		if st.MaxQueue > rep.MaxQueue {
			rep.MaxQueue = st.MaxQueue
		}
		rep.QueueCap = st.QueueCap
	}

	audited := audit.all()
	rep.AckedBatches = len(audited)
	rep.DupAcks, rep.OrderViol = auditAckStream(audited)
	rep.ExactlyOnce = auditExactlyOnce(be, audited)
	rep.Violations = rep.DupAcks + rep.OrderViol + rep.ExactlyOnce

	// Client-observed recovery and latency.
	var lags []time.Duration
	var ackTimes []time.Time
	for _, d := range drivers {
		lags = append(lags, d.lags...)
		ackTimes = append(ackTimes, d.ackTimes...)
		rep.Reconnects += d.reconnects
	}
	// Interpolated percentiles via the shared obs helper — the old
	// index-truncation (`lags[n*99/100]`) reported the max at small n.
	if len(lags) > 0 {
		rep.P50AckLagMs = float64(obs.DurPercentile(lags, 0.50)) / float64(time.Millisecond)
		rep.P99AckLagMs = float64(obs.DurPercentile(lags, 0.99)) / float64(time.Millisecond)
	}
	sort.Slice(ackTimes, func(a, b int) bool { return ackTimes[a].Before(ackTimes[b]) })
	for _, k := range kills {
		for _, at := range ackTimes {
			if at.After(k) {
				if mttr := float64(at.Sub(k)) / float64(time.Millisecond); mttr > rep.ClientMTTRMs {
					rep.ClientMTTRMs = mttr
				}
				break
			}
		}
	}
	if rep.Err != "" {
		return rep, fmt.Errorf("serve: chaos %s: %s", cfg.Cell, rep.Err)
	}
	return rep, nil
}

// waitFor polls cond until true, stop, or deadline; reports cond's state.
func waitFor(stop <-chan struct{}, timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		select {
		case <-stop:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
	return cond()
}

// auditAckStream checks the server's ack decisions: no batch acked twice,
// and every tenant's acked sequence stream contiguous from its first ack.
func auditAckStream(recs []AckRecord) (dups, orderViol int) {
	last := map[string]uint64{}
	seen := map[string]map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Tenant] == nil {
			seen[r.Tenant] = map[uint64]bool{}
		}
		if seen[r.Tenant][r.BatchSeq] {
			dups++
			continue
		}
		seen[r.Tenant][r.BatchSeq] = true
		if prev, ok := last[r.Tenant]; ok && r.BatchSeq != prev+1 {
			orderViol++
		}
		last[r.Tenant] = r.BatchSeq
	}
	return dups, orderViol
}

// auditExactlyOnce verifies that every acked batch's assigned sequence
// range appears exactly once in the union of real (non-replication)
// outputs delivered across every backend incarnation — no premature ack
// (a batch acked but lost to a crash) and no duplicate delivery.
func auditExactlyOnce(be *GroupBackend, recs []AckRecord) int {
	counts := map[uint64]int{}
	for i := 0; i < be.Group().Shards(); i++ {
		for _, out := range be.AllDelivered(i) {
			if shard.IsReplication(out) {
				continue
			}
			counts[out.EventSeq]++
		}
	}
	violations := 0
	for _, r := range recs {
		for q := r.FirstSeq; q < r.FirstSeq+r.Events; q++ {
			if counts[q] != 1 {
				violations++
			}
		}
	}
	return violations
}
