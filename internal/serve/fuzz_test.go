package serve

import (
	"testing"

	"morphstreamr/internal/types"
)

// FuzzDecodeFrame throws arbitrary payloads at the strict frame decoder:
// it must never panic, never allocate past the wire limits (hostile counts
// are checked against the remaining payload before allocation), and accept
// only frames that decode exactly.
func FuzzDecodeFrame(f *testing.F) {
	evs := []types.Event{
		{Seq: 9, Kind: 1, Keys: []types.Key{{Row: 3}, {Row: 5}}, Vals: []types.Value{int64(7)}},
		{Seq: 10, Kind: 2, Keys: []types.Key{{Table: 1, Row: 1}}, Vals: nil},
	}
	for _, wire := range [][]byte{
		EncodeHello("tenant"),
		EncodeHelloAck(12, 34),
		EncodeSubmit(3, evs),
		EncodeAck(4, 8),
		EncodeSlowdown(5, 100, SlowOrder),
		EncodeError(2, "unknown tenant"),
		EncodePing(),
		EncodePong(),
	} {
		// Seed with the frame payload (the part DecodeFrame sees).
		f.Add(wire[1:])
	}
	// Seeds that historically tripped naive decoders.
	f.Add([]byte{byte(FrameSubmit), 1, 0xff, 0xff, 0xff, 0xff, 0x0f}) // hostile count
	f.Add([]byte{byte(FrameHello), 0x7f})                             // length past end
	f.Add([]byte{})                                                   // empty

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if len(fr.Events) > MaxBatchEvents {
			t.Fatalf("decoded %d events past the batch limit", len(fr.Events))
		}
		if fr.Type == FrameSubmit {
			for _, ev := range fr.Events {
				if len(ev.Keys) == 0 {
					t.Fatal("accepted a keyless event")
				}
			}
		}
		if len(fr.Tenant) > MaxTenantName || len(fr.Msg) > maxErrorMsg {
			t.Fatalf("decoded oversized string: tenant=%d msg=%d", len(fr.Tenant), len(fr.Msg))
		}
	})
}

// FuzzDecodeIngestRecord covers the manifest decoders the recovery path
// trusts: arbitrary bytes must never panic or blow up allocation.
func FuzzDecodeIngestRecord(f *testing.F) {
	evs := []types.Event{{Seq: 1, Kind: 1, Keys: []types.Key{{Row: 2}}, Vals: []types.Value{int64(3)}}}
	f.Add(encodeIngestRecord([]ManifestEntry{{Tenant: "a", BatchSeq: 1, FirstSeq: 1, Events: 1}}, evs))
	f.Add(encodeIngestRecord(nil, nil))
	f.Add(encodeWatermarks(map[string]uint64{"a": 3, "b": 9}, 17))
	f.Add([]byte{0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, b []byte) {
		entries, _, err := decodeIngestRecord(b)
		if err == nil {
			for _, e := range entries {
				if len(e.Tenant) > MaxTenantName {
					t.Fatal("decoded oversized tenant name")
				}
			}
		}
		decodeWatermarks(b)
	})
}
