package serve

import (
	"testing"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/journey"
	"morphstreamr/internal/obs"
)

// TestJourneyStitchingKillHeal drives the kill-heal chaos cell with every
// batch sampled and checks the stitching invariants the recorder promises
// across engine incarnations: no journey is left active once the run ends,
// none is finalized twice, every drained record's stage decomposition sums
// exactly to its end-to-end total, and the heals show up as an explicit
// RECOVERY stage on journeys that lived through them. Under -race this also
// exercises the recorder's locking against the session read loops, the
// pump, and the heal path concurrently.
func TestJourneyStitchingKillHeal(t *testing.T) {
	rec := journey.NewRecorder(journey.Config{SampleEvery: 1})
	slo := obs.NewSLOMonitor(obs.SLOConfig{Name: "ack"})
	rep, err := Chaos(ChaosConfig{
		Cell:            CellKillHeal,
		Kind:            ftapi.WAL,
		Seed:            7,
		Tenants:         3,
		Batches:         30,
		BatchEvents:     4,
		Journeys:        rec,
		SLO:             slo,
		SampleFlagEvery: 1,
	})
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	if rep.Violations != 0 {
		t.Fatalf("exactly-once violations: %d", rep.Violations)
	}
	if rep.Heals == 0 {
		t.Fatal("kill-heal cell performed zero heals")
	}

	if n := rec.ActiveCount(); n != 0 {
		t.Errorf("orphaned journeys still active after the run: %d", n)
	}
	if d := rec.DoubleCompletes(); d != 0 {
		t.Errorf("double-completed journeys: %d", d)
	}

	recs, dropped := rec.Drain()
	if len(recs) == 0 {
		t.Fatal("no journeys drained despite full sampling")
	}
	if dropped != 0 {
		t.Errorf("done buffer dropped %d records (raise MaxDone)", dropped)
	}

	recovered := 0
	for _, r := range recs {
		var sum time.Duration
		for st, d := range r.StageDurs {
			if d < 0 {
				t.Fatalf("journey %s/%d: negative %q duration %v", r.Tenant, r.Seq, st, d)
			}
			sum += d
		}
		if sum != r.Total {
			t.Errorf("journey %s/%d: stage sum %v != total %v", r.Tenant, r.Seq, sum, r.Total)
		}
		if r.Total != r.End.Sub(r.Start) {
			t.Errorf("journey %s/%d: total %v != end-start %v", r.Tenant, r.Seq, r.Total, r.End.Sub(r.Start))
		}
		if !r.Shed {
			// Every acked journey must carry the full pipeline decomposition:
			// it was admitted and its ack flushed, whatever happened between.
			for _, st := range []journey.Stage{journey.StageAdmission, journey.StageAck} {
				if _, ok := r.StageDurs[st]; !ok {
					t.Errorf("journey %s/%d: completed without %q stage", r.Tenant, r.Seq, st)
				}
			}
			if len(r.Shards) == 0 {
				t.Errorf("journey %s/%d: completed without a shard route", r.Tenant, r.Seq)
			}
		}
		if r.StageDurs[journey.StageRecovery] > 0 {
			recovered++
			if !r.Recovered {
				t.Errorf("journey %s/%d: RECOVERY stage without Recovered flag", r.Tenant, r.Seq)
			}
		}
	}
	if recovered == 0 {
		t.Errorf("no journey carries RECOVERY time despite %d heal(s)", rep.Heals)
	}
	if rec.Incarnation() != rep.Heals {
		t.Errorf("recorder saw %d incarnations, server healed %d times", rec.Incarnation(), rep.Heals)
	}

	snap := slo.Snapshot()
	if snap.Total == 0 {
		t.Error("SLO monitor observed no acked batches")
	}
	if snap.Total < int64(len(recs))-int64(dropped) {
		// Journeys are a sample of the acked population; the SLO sees all
		// of it, so it can never have observed fewer than the sample.
		t.Errorf("SLO observed %d acks < %d sampled journeys", snap.Total, len(recs))
	}
}
