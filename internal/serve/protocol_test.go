package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"morphstreamr/internal/shard"
	"morphstreamr/internal/types"
)

// readOne round-trips one encoded frame through ReadFrame + DecodeFrame.
func readOne(t *testing.T, wire []byte) Frame {
	t.Helper()
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), DefaultMaxFrame)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	f, err := DecodeFrame(payload)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	return f
}

func testEvents(n int) []types.Event {
	evs := make([]types.Event, n)
	for i := range evs {
		evs[i] = types.Event{
			Seq:  uint64(100 + i),
			Kind: 1,
			Keys: []types.Key{{Row: uint32(i)}, {Table: 1, Row: uint32(i + 7)}},
			Vals: []types.Value{int64(i * 3)},
		}
	}
	return evs
}

func TestFrameRoundTrip(t *testing.T) {
	if f := readOne(t, EncodeHello("tenant-a")); f.Type != FrameHello || f.Tenant != "tenant-a" {
		t.Fatalf("hello round trip: %+v", f)
	}
	if f := readOne(t, EncodeHelloAck(41, 97)); f.Type != FrameHelloAck || f.Watermark != 41 || f.Epoch != 97 {
		t.Fatalf("helloack round trip: %+v", f)
	}
	evs := testEvents(3)
	f := readOne(t, EncodeSubmit(7, evs))
	if f.Type != FrameSubmit || f.BatchSeq != 7 || len(f.Events) != 3 {
		t.Fatalf("submit round trip: %+v", f)
	}
	for i, ev := range f.Events {
		if ev.Seq != evs[i].Seq || len(ev.Keys) != 2 || ev.Keys[0] != evs[i].Keys[0] {
			t.Fatalf("submit event %d mangled: %+v vs %+v", i, ev, evs[i])
		}
	}
	if f := readOne(t, EncodeAck(9, 12)); f.Type != FrameAck || f.BatchSeq != 9 || f.Epoch != 12 {
		t.Fatalf("ack round trip: %+v", f)
	}
	f = readOne(t, EncodeSlowdown(5, 250, SlowQueue))
	if f.Type != FrameSlowdown || f.BatchSeq != 5 || f.RetryAfterMs != 250 || f.Reason != SlowQueue {
		t.Fatalf("slowdown round trip: %+v", f)
	}
	f = readOne(t, EncodeError(errCodeUnknownTenant, "nope"))
	if f.Type != FrameError || f.Code != errCodeUnknownTenant || f.Msg != "nope" {
		t.Fatalf("error round trip: %+v", f)
	}
	if f := readOne(t, EncodePing()); f.Type != FramePing {
		t.Fatalf("ping round trip: %+v", f)
	}
	if f := readOne(t, EncodePong()); f.Type != FramePong {
		t.Fatalf("pong round trip: %+v", f)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	evs := testEvents(1)
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknown type", []byte{0x7f}},
		{"trailing bytes", append(append([]byte{}, payloadOf(t, EncodeAck(1, 1))...), 0xaa)},
		{"truncated submit", payloadOf(t, EncodeSubmit(1, evs))[:4]},
		{"empty batch", append([]byte{byte(FrameSubmit)}, 1, 0)},
		{"hostile event count", append([]byte{byte(FrameSubmit)}, 1, 0xff, 0xff, 0xff, 0xff, 0x07)},
		{"oversized tenant", append([]byte{byte(FrameHello)}, 0xc8)},
		{"bad slowdown reason", append([]byte{byte(FrameSlowdown)}, 1, 1, 99)},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", tc.name, err)
		}
	}

	// Events with no routing key or the reserved replication kind must be
	// rejected at decode — the group would refuse them at feed time.
	keyless := EncodeSubmit(1, []types.Event{{Seq: 1, Kind: 1, Vals: []types.Value{int64(1)}}})
	if _, err := DecodeFrame(payloadOf(t, keyless)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("keyless event: want ErrBadFrame, got %v", err)
	}
	repl := EncodeSubmit(1, []types.Event{{Seq: 1, Kind: shard.KindReplicate, Keys: []types.Key{{Row: 1}}}})
	if _, err := DecodeFrame(payloadOf(t, repl)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("replicate kind: want ErrBadFrame, got %v", err)
	}
}

// payloadOf strips the length prefix off an encoded wire frame.
func payloadOf(t *testing.T, wire []byte) []byte {
	t.Helper()
	n, w := binary.Uvarint(wire)
	if w <= 0 || int(n) != len(wire)-w {
		t.Fatalf("bad wire frame: n=%d w=%d len=%d", n, w, len(wire))
	}
	return wire[w:]
}

func TestReadFrameLimits(t *testing.T) {
	// A hostile length prefix is rejected before any payload allocation.
	big := binary.AppendUvarint(nil, uint64(DefaultMaxFrame)+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(big)), DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize prefix: want ErrFrameTooLarge, got %v", err)
	}
	// Zero-length frames are malformed.
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader([]byte{0})), 0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero frame: want ErrBadFrame, got %v", err)
	}
	// A truncated payload surfaces the transport error.
	trunc := append(binary.AppendUvarint(nil, 10), 1, 2, 3)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(trunc)), 0); err == nil {
		t.Fatal("truncated payload: want error")
	}
	// A frame within a custom limit passes; one over it fails.
	wire := EncodeHello("abc")
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), 2); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("tight limit: want ErrFrameTooLarge, got %v", err)
	}
}

func TestSlowReasonString(t *testing.T) {
	for r, want := range map[SlowReason]string{
		SlowRate: "rate", SlowQueue: "queue", SlowDegraded: "degraded",
		SlowOrder: "order", SlowReason(9): "reason(9)",
	} {
		if got := r.String(); got != want {
			t.Errorf("SlowReason(%d).String() = %q, want %q", byte(r), got, want)
		}
	}
}
