package serve

import (
	"errors"
	"sync/atomic"
	"time"

	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
)

// Backend is the processing engine behind the server: the pump feeds it one
// epoch per tick and keys acknowledgements to its committed punctuation
// frontier. Feed, Heal, Epoch, and Committed are called only from the
// pump goroutine; Coord and Delivered-style accessors only before start or
// after Close.
type Backend interface {
	// Feed processes one epoch (the events carry server-assigned global
	// sequences). A failure leaves the backend crashed until Heal.
	Feed(events []types.Event) error
	// Epoch is the number of epochs completed; Committed is the durably
	// committed punctuation frontier acknowledgements key to.
	Epoch() uint64
	Committed() uint64
	// Coord is the coordinator device the ingest manifest lives on.
	Coord() storage.Device
	// Heal recovers from a failed Feed using src to re-feed whatever the
	// mechanisms did not replay. It returns the epoch the backend resumed
	// from: every fed epoch above it was lost and must be re-fed.
	Heal(procErr error, src shard.Source) (uint64, error)
	// Close releases backend resources.
	Close()
}

// GroupBackend drives a shard.Group as the server's backend, with
// fail-stop injection seams for the chaos harness: kills are armed as
// atomic flags and consumed at the next Feed, so the crash lands on an
// epoch boundary on the pump goroutine — exactly the fail-stop model the
// group's recovery protocol is built for (a concurrent Crash mid-epoch
// would race the engines' own crash bookkeeping).
type GroupBackend struct {
	cfg shard.Config
	g   *shard.Group

	killGroup atomic.Bool
	killShard atomic.Int64 // shard to crash at next Feed; <0 none

	// banked collects per-shard outputs delivered by abandoned
	// incarnations across group-wide recoveries; AllDelivered joins them
	// with the live group's union for exactly-once audits.
	banked [][]types.Output

	heals int
}

// NewGroupBackend starts a fresh group. cfg.CoordDev doubles as the ingest
// manifest device; cfg.OnCommit is preserved and re-armed across heals.
func NewGroupBackend(cfg shard.Config) (*GroupBackend, error) {
	g, err := shard.NewGroup(cfg)
	if err != nil {
		return nil, err
	}
	b := &GroupBackend{cfg: cfg, g: g, banked: make([][]types.Output, g.Shards())}
	b.killShard.Store(-1)
	return b, nil
}

// RecoverGroupBackend cold-starts a backend from surviving devices: the
// group recovers in parallel from its shard logs, re-feeding alignment
// epochs from the ingest manifest on cfg.CoordDev.
func RecoverGroupBackend(cfg shard.Config) (*GroupBackend, error) {
	// The manifest covers every fed epoch; recovery decides durability, so
	// the source is built with no durable cutoff (watermarks are cut by the
	// caller once the recovered frontier is known).
	src, err := IngestSource(cfg.CoordDev, ^uint64(0))
	if err != nil {
		return nil, err
	}
	g, _, err := shard.GroupRecover(shard.RecoverConfig{Config: cfg, Source: src})
	if err != nil {
		return nil, err
	}
	b := &GroupBackend{cfg: cfg, g: g, banked: make([][]types.Output, g.Shards())}
	b.killShard.Store(-1)
	return b, nil
}

// KillGroup arms a whole-group fail-stop at the next Feed.
func (b *GroupBackend) KillGroup() { b.killGroup.Store(true) }

// KillShard arms a single-shard fail-stop at the next Feed.
func (b *GroupBackend) KillShard(i int) { b.killShard.Store(int64(i)) }

// Feed implements Backend.
func (b *GroupBackend) Feed(events []types.Event) error {
	if b.killGroup.CompareAndSwap(true, false) {
		b.g.Crash()
	}
	if i := b.killShard.Swap(-1); i >= 0 && int(i) < b.g.Shards() {
		// Crash one engine just before feeding: ProcessEpoch surfaces it
		// as a *ShardError wrapping engine.ErrCrashed, the single-shard
		// heal path's entry condition.
		b.g.Engine(int(i)).Crash()
	}
	return b.g.ProcessEpoch(events)
}

// Epoch implements Backend.
func (b *GroupBackend) Epoch() uint64 { return b.g.Epoch() }

// Committed implements Backend.
func (b *GroupBackend) Committed() uint64 { return b.g.Committed() }

// Coord implements Backend.
func (b *GroupBackend) Coord() storage.Device { return b.cfg.CoordDev }

// Heals returns how many heals the backend has performed.
func (b *GroupBackend) Heals() int { return b.heals }

// ShardOf implements the server's shardRouter capability: the shard that
// owns ev's routing key.
func (b *GroupBackend) ShardOf(ev types.Event) int { return b.g.Router().Of(ev.Keys[0]) }

// CommittedAt implements the server's commitTimer capability: when epoch
// ep was first covered by the committed frontier (pump goroutine only).
func (b *GroupBackend) CommittedAt(ep uint64) (time.Time, bool) { return b.g.CommittedAt(ep) }

// Group exposes the live group for tests.
func (b *GroupBackend) Group() *shard.Group { return b.g }

// Heal implements Backend: a *ShardError first tries the in-place
// single-shard heal (survivors keep their state, the interrupted barrier
// completes); anything else — or a failed shard heal — falls back to a
// group-wide parallel recovery from the durable logs.
func (b *GroupBackend) Heal(procErr error, src shard.Source) (uint64, error) {
	b.heals++
	var serr *shard.ShardError
	if errors.As(procErr, &serr) {
		if _, err := b.g.HealShard(procErr, src); err == nil {
			// The interrupted epoch completed during the heal; nothing
			// above the current epoch exists to re-feed.
			return b.g.Epoch(), nil
		}
	}
	// Group-wide: bank the dead incarnation's delivered outputs (they left
	// the building; exactly-once accounting must keep them — recovery does
	// not re-release outputs below each shard's delivery watermark), then
	// rebuild the group from the surviving devices.
	for i := 0; i < b.g.Shards(); i++ {
		b.banked[i] = append(b.banked[i], b.g.DeliveredUnion(i)...)
	}
	g, _, err := shard.GroupRecover(shard.RecoverConfig{Config: b.cfg, Source: src})
	if err != nil {
		return 0, err
	}
	b.g = g
	return g.Epoch(), nil
}

// AllDelivered returns every output shard i released across all backend
// incarnations — the union exactly-once audits run against.
func (b *GroupBackend) AllDelivered(i int) []types.Output {
	out := append([]types.Output(nil), b.banked[i]...)
	return append(out, b.g.DeliveredUnion(i)...)
}

// Close implements Backend.
func (b *GroupBackend) Close() {
	for i := 0; i < b.g.Shards(); i++ {
		b.g.Engine(i).Close()
	}
}
