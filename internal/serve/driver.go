package serve

import (
	"fmt"
	"net"
	"sync"
	"time"

	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// chaosDriver is one tenant's client under chaos: it submits a fixed batch
// stream with a small in-flight window, absorbs Slowdown frames, and — when
// the connection dies — redials, learns the surviving watermark from the
// HelloAck, and resumes from the first unacked batch. It records every
// ack-observation time (the raw material for client-observed MTTR) and
// per-batch ack lag.
type chaosDriver struct {
	addr    string
	tenant  string
	batches [][]types.Event
	window  uint64
	// sampleEvery, when > 0, sets the Submit sampled flag on every batch
	// sequence divisible by it — the client-side journey sampling path.
	sampleEvery uint64

	// Written only by the driver goroutine; read by the harness after the
	// driver's goroutine joins.
	lags       []time.Duration
	ackTimes   []time.Time
	reconnects int64
	err        error

	mu  sync.Mutex
	cur net.Conn // live connection, for sever()
}

func newChaosDriver(addr, tenant string, batches [][]types.Event) *chaosDriver {
	return &chaosDriver{addr: addr, tenant: tenant, batches: batches, window: 4}
}

// sever hard-closes the driver's live connection from the harness goroutine
// (the reconnect-storm cell). The driver's blocked read fails and it redials.
func (d *chaosDriver) sever() {
	d.mu.Lock()
	if d.cur != nil {
		d.cur.Close()
	}
	d.mu.Unlock()
}

func (d *chaosDriver) setConn(c net.Conn) {
	d.mu.Lock()
	d.cur = c
	d.mu.Unlock()
}

// run drives the stream to completion: every batch acked, or stop closed.
func (d *chaosDriver) run(stop <-chan struct{}) {
	total := uint64(len(d.batches))
	acked := uint64(0)
	submitted := map[uint64]time.Time{} // batch seq → first submit, for lag
	first := true
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !first {
			d.reconnects++
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		first = false
		c, err := Dial(d.addr, d.tenant, time.Second)
		if err != nil {
			continue
		}
		d.setConn(c.Conn())
		if c.Watermark > acked {
			// Batches acked while disconnected: the HelloAck is the moment
			// this client observes the service recovered.
			acked = c.Watermark
			d.ackTimes = append(d.ackTimes, time.Now())
		}
		if acked >= total {
			c.Close()
			d.setConn(nil)
			return
		}
		done := d.session(c, &acked, total, submitted, stop)
		c.Close()
		d.setConn(nil)
		if done || acked >= total {
			return
		}
	}
}

// session runs one connection's submit/ack loop; it returns true when the
// whole stream is acked (or stop fired) and false when the connection died.
func (d *chaosDriver) session(c *Client, acked *uint64, total uint64, submitted map[uint64]time.Time, stop <-chan struct{}) bool {
	cursor := *acked + 1
	for {
		select {
		case <-stop:
			return true
		default:
		}
		for cursor <= total && cursor-*acked <= d.window {
			if _, ok := submitted[cursor]; !ok {
				submitted[cursor] = time.Now()
			}
			var flags uint64
			if d.sampleEvery > 0 && cursor%d.sampleEvery == 0 {
				flags |= SubmitFlagSampled
			}
			if err := c.SubmitFlags(cursor, d.batches[cursor-1], flags); err != nil {
				return false
			}
			cursor++
		}
		f, err := c.Next()
		if err != nil {
			return false
		}
		switch f.Type {
		case FrameAck:
			if f.BatchSeq > *acked {
				if t0, ok := submitted[f.BatchSeq]; ok {
					d.lags = append(d.lags, time.Since(t0))
				}
				*acked = f.BatchSeq
				d.ackTimes = append(d.ackTimes, time.Now())
			}
			if *acked >= total {
				return true
			}
		case FrameSlowdown:
			// Resume from what the server says (order) or from the rejected
			// batch (rate/queue/degraded) after the advised pause; sequences
			// in between are re-sent and dedupe as pending.
			next := f.BatchSeq
			if next <= *acked {
				next = *acked + 1
			}
			if next < cursor {
				cursor = next
			}
			if f.Reason != SlowOrder {
				wait := time.Duration(f.RetryAfterMs) * time.Millisecond
				if wait <= 0 {
					wait = time.Millisecond
				}
				select {
				case <-stop:
					return true
				case <-time.After(wait):
				}
			}
		case FramePong, FrameHelloAck:
			// Ignorable here.
		case FrameError:
			d.err = fmt.Errorf("serve: driver %s: server error %d: %s", d.tenant, f.Code, f.Msg)
			return false
		}
	}
}

// runRogue is the slow-consumer cell's misbehaving client: it submits its
// whole stream but never reads acks, so the server's bounded ack buffer
// fills and the session is evicted. It then redials (learning progress only
// from HelloAck watermarks) and resumes — proving eviction loses no acks
// and never wedges the pump.
func runRogue(addr string, batches, batchEvents int, rows uint32, seed int64, stop <-chan struct{}) {
	gen := workload.NewGS(workload.GSParams{
		Seed: seed + 9973, Rows: rows, Partitions: 2,
		Theta: 0.6, Reads: 2, MultiPartitionRatio: 0.2,
	})
	stream := make([][]types.Event, batches)
	for b := range stream {
		evs := make([]types.Event, batchEvents)
		for e := range evs {
			evs[e] = gen.Next()
		}
		stream[b] = evs
	}
	total := uint64(batches)
	for {
		select {
		case <-stop:
			return
		default:
		}
		c, err := Dial(addr, "rogue", time.Second)
		if err != nil {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if c.Watermark >= total {
			c.Close()
			return
		}
		// Submit everything outstanding without ever reading an ack.
		for seq := c.Watermark + 1; seq <= total; seq++ {
			if err := c.Submit(seq, stream[seq-1]); err != nil {
				break
			}
		}
		// Blast replays of an already-acked batch, still without reading:
		// each one triggers an immediate duplicate ack from the session's
		// read loop, so the bounded ack buffer must fill and evict us.
		if c.Watermark >= 1 {
			for i := 0; i < 400; i++ {
				if err := c.Submit(1, stream[0]); err != nil {
					break
				}
			}
		}
		// Linger briefly (still not reading), then reconnect for progress.
		select {
		case <-stop:
			c.Close()
			return
		case <-time.After(30 * time.Millisecond):
		}
		c.Close()
	}
}

// halfOpenConn is a connection that never completes the handshake: either
// silent after connect, or a truncated frame (a length prefix promising
// bytes that never arrive). The server must shed these on HelloTimeout
// without stalling accept or leaking sessions.
type halfOpenConn struct {
	c net.Conn
}

func dialHalfOpen(addr string, truncated bool) *halfOpenConn {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil
	}
	if truncated {
		// Length prefix claims 100 bytes; only the type byte follows.
		c.Write([]byte{100, byte(FrameHello)})
	}
	return &halfOpenConn{c: c}
}

func (h *halfOpenConn) close() {
	if h.c != nil {
		h.c.Close()
	}
}
