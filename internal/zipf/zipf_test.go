package zipf

import (
	"testing"
	"testing/quick"
)

func TestBounds(t *testing.T) {
	f := func(seed int64, n uint16, pick uint8) bool {
		size := uint64(n%1000) + 1
		theta := []float64{0, 0.4, 0.8, 1.2}[pick%4]
		g := New(seed, size, theta)
		for i := 0; i < 100; i++ {
			if r := g.Next(); r >= size {
				return false
			}
		}
		return g.N() == size && g.Theta() == theta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(7, 1000, 0.8), New(7, 1000, 0.8)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	const n, draws = 10, 100000
	g := New(1, n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	for r, c := range counts {
		frac := float64(c) / draws
		if frac < 0.07 || frac > 0.13 {
			t.Errorf("rank %d drawn with frequency %.3f; want ~0.10", r, frac)
		}
	}
}

// TestSkewConcentratesMass: the share of draws landing on rank 0 must grow
// strictly with theta — the property the sensitivity study (Figure 14b)
// depends on.
func TestSkewConcentratesMass(t *testing.T) {
	const n, draws = 1000, 50000
	prev := -1.0
	for _, theta := range []float64{0, 0.4, 0.8, 1.2} {
		g := New(5, n, theta)
		hot := 0
		for i := 0; i < draws; i++ {
			if g.Next() == 0 {
				hot++
			}
		}
		share := float64(hot) / draws
		if share <= prev {
			t.Errorf("theta=%.1f: hottest share %.4f did not grow (prev %.4f)", theta, share, prev)
		}
		prev = share
	}
	if prev < 0.1 {
		t.Errorf("theta=1.2 hottest share %.4f; expected strong concentration", prev)
	}
}

func TestHighSkewRankOrdering(t *testing.T) {
	// Lower ranks must be at least roughly as popular as higher ranks.
	const n, draws = 100, 200000
	g := New(9, n, 1.2)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Errorf("rank 0 (%d draws) not hotter than mid/tail ranks (%d, %d)",
			counts[0], counts[50], counts[99])
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with n=0 must panic")
		}
	}()
	New(1, 0, 0.5)
}

// TestThetaOneSingularityGuarded: theta = 1 must not degenerate (the
// Gray/Jain formula diverges there); the generator nudges it to 0.99 and
// still covers a wide key range.
func TestThetaOneSingularityGuarded(t *testing.T) {
	g := New(3, 4096, 1.0)
	if g.Theta() != 0.99 {
		t.Errorf("theta = %v, want nudged 0.99", g.Theta())
	}
	distinct := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		distinct[g.Next()] = true
	}
	if len(distinct) < 200 {
		t.Errorf("theta~1 produced only %d distinct ranks; sampler degenerated", len(distinct))
	}
}
