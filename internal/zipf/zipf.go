// Package zipf provides a seeded Zipfian integer generator used by the
// workload generators to model skewed state access (Section VI-B1).
//
// The generator draws from {0, 1, ..., n-1} with probability proportional to
// 1/(i+1)^theta. theta = 0 degenerates to the uniform distribution, matching
// the paper's "skew factor 0" configurations; larger theta concentrates mass
// on low ranks. The implementation uses the classic Gray/Jain bounded
// rejection-inversion-free approach from the YCSB generator: it derives the
// sample analytically from the zeta normalisation constants, so sampling is
// O(1) after an O(n) one-time setup.
package zipf

import (
	"math"
	"math/rand"
)

// Generator produces Zipf-distributed ranks in [0, n).
type Generator struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	// Precomputed constants (Gray et al.).
	alpha, zetan, eta float64
	uniform           bool
}

// New creates a generator over n items with skew theta, seeded
// deterministically. theta must be >= 0; callers use values like 0, 0.4,
// 0.8, 1.2 per the paper's sweeps. theta = 1 is the harmonic singularity
// of the Gray/Jain formula (alpha = 1/(1-theta) diverges and the sampler
// degenerates to a handful of ranks), so values within 0.005 of 1 are
// nudged to 0.99 — the YCSB convention for "theta 1".
func New(seed int64, n uint64, theta float64) *Generator {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	if theta > 0.995 && theta < 1.005 {
		theta = 0.99
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), n: n, theta: theta}
	if theta == 0 {
		g.uniform = true
		return g
	}
	g.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	g.alpha = 1.0 / (1.0 - theta)
	g.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/g.zetan)
	return g
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank in [0, n). Rank 0 is the hottest item.
func (g *Generator) Next() uint64 {
	if g.uniform {
		return uint64(g.rng.Int63n(int64(g.n)))
	}
	u := g.rng.Float64()
	uz := u * g.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, g.theta) {
		return 1
	}
	r := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1.0, g.alpha))
	if r >= g.n {
		r = g.n - 1
	}
	return r
}

// N returns the domain size.
func (g *Generator) N() uint64 { return g.n }

// Theta returns the skew parameter.
func (g *Generator) Theta() float64 { return g.theta }
