package types

import "fmt"

// RunShape is the one definition of the engine-facing run knobs shared by
// every configuration surface in the tree: core.Config, engine.Config,
// supervisor.Config, crashtest.Config (and its chaos variant), and
// bench.Scale all embed it instead of re-declaring Workers/CommitEvery/
// SnapshotEvery with their own drifted zero-value defaults.
//
// Zero-value rule (the single defaulting path, applied by Normalize):
//
//   - Workers      0 → 1. One rule everywhere: the scheduler historically
//     treated zero as GOMAXPROCS while the engine documented "zero means
//     1"; both now route through Normalize and zero means one worker.
//     Parallelism is always an explicit decision.
//   - CommitEvery  0 → 1 (commit every epoch).
//   - SnapshotEvery 0 → 8.
//
// Validation (the single validation path): CommitEvery must divide
// SnapshotEvery, so every snapshot marker lands on a commit boundary and
// garbage collection never outruns an uncommitted group.
type RunShape struct {
	// Workers is the execution parallelism. Zero means 1.
	Workers int
	// CommitEvery is the log commitment interval in epochs (the paper's
	// commit marker cadence). Zero means 1. Must divide SnapshotEvery.
	CommitEvery int
	// SnapshotEvery is the checkpoint interval in epochs. Zero means 8.
	SnapshotEvery int
	// SnapshotBase is the incremental-checkpoint cadence: every SnapshotBase-th
	// snapshot marker persists a full base snapshot, the markers between them
	// persist only the partitions written since the previous marker (a delta
	// appended to the checkpoint log). Zero or 1 means every marker is a full
	// snapshot — the legacy behaviour. The cadence is positional (snapshot
	// ordinal modulo SnapshotBase), so a recovered incarnation computes the
	// same schedule without any carried state.
	SnapshotBase int
	// AutoCommit lets an advisor mechanism (MSR) pick CommitEvery from the
	// first epoch's profile instead of the configured value.
	AutoCommit bool
	// Pipeline overlaps epoch N+1's stream-processing phase with epoch N's
	// transaction processing when batches are submitted as one run.
	Pipeline bool
	// Adaptive enables the per-epoch scheduling controller
	// (internal/adaptive): the engine observes each epoch's graph shape and
	// the previous epoch's scheduler feedback, and morphs the execution
	// strategy — worker count, work-stealing vs sequential execution, and
	// log-commit granularity — between epochs. Workers becomes the
	// controller's parallelism ceiling rather than a fixed degree. Durable
	// artifacts are unaffected: chains are re-labelled with the canonical
	// Workers-way partitioning before each epoch is sealed, so the write
	// sequence is byte-identical to a static run of the same shape.
	Adaptive bool
}

// Normalize applies the zero-value defaults in place and validates the
// marker relationship. It is idempotent; every configuration surface calls
// it exactly once on its embedded shape.
func (s *RunShape) Normalize() error {
	if s.Workers <= 0 {
		s.Workers = 1
	}
	if s.CommitEvery <= 0 {
		s.CommitEvery = 1
	}
	if s.SnapshotEvery <= 0 {
		s.SnapshotEvery = 8
	}
	if s.SnapshotBase <= 0 {
		s.SnapshotBase = 1
	}
	if s.SnapshotEvery%s.CommitEvery != 0 {
		return fmt.Errorf("types: SnapshotEvery (%d) must be a multiple of CommitEvery (%d)",
			s.SnapshotEvery, s.CommitEvery)
	}
	return nil
}

// IsZero reports whether no knob has been set, letting harnesses with an
// explicit preset shape (the crash-point sweep's compact run) distinguish
// "caller chose nothing" from "caller chose the defaults".
func (s RunShape) IsZero() bool { return s == RunShape{} }

// GroupShape is RunShape lifted to a sharded deployment: the per-shard
// engine knobs plus the shard fan-out. The shard coordinator
// (internal/shard), the sharded crash-point sweep, and cmd/shardbench all
// embed it instead of re-declaring a Shards field next to a RunShape.
type GroupShape struct {
	// RunShape configures every shard's engine identically; punctuation
	// alignment across shards requires equal CommitEvery/SnapshotEvery, so
	// the group shape deliberately has one RunShape, not one per shard.
	RunShape
	// Shards is the engine fan-out. Zero means 1 (an unsharded group,
	// which behaves exactly like a single engine plus a coordinator).
	Shards int
}

// Normalize applies the zero-value defaults of both layers in place.
func (s *GroupShape) Normalize() error {
	if s.Shards <= 0 {
		s.Shards = 1
	}
	return s.RunShape.Normalize()
}

// NormalizeWorkers is the worker-count half of the zero-value rule for
// callers that only deal in parallelism (scheduler.Options). Zero or
// negative means 1, the same rule Normalize applies.
func NormalizeWorkers(w int) int {
	s := RunShape{Workers: w, CommitEvery: 1, SnapshotEvery: 1}
	_ = s.Normalize() // cannot fail: 1 divides 1
	return s.Workers
}
