package types

import (
	"strings"
	"testing"
)

func validTxn() Txn {
	return Txn{
		ID: 7, TS: 7,
		Ops: []Operation{
			{TxnID: 7, TS: 7, Idx: 0, Key: Key{Table: 0, Row: 1}, Fn: FnGuardedSubSelf, Const: 5},
			{TxnID: 7, TS: 7, Idx: 1, Key: Key{Table: 0, Row: 2}, Fn: FnGuardedAdd, Const: 5,
				Deps: []Key{{Table: 0, Row: 1}}},
		},
	}
}

func TestValidateTxnAccepts(t *testing.T) {
	txn := validTxn()
	if err := ValidateTxn(&txn); err != nil {
		t.Fatalf("valid txn rejected: %v", err)
	}
}

func TestValidateTxnRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Txn)
		want   string
	}{
		{"empty", func(x *Txn) { x.Ops = nil }, "no operations"},
		{"id-ts", func(x *Txn) { x.TS = 8 }, "ID and TS differ"},
		{"wrong-op-txn", func(x *Txn) { x.Ops[1].TxnID = 9 }, "wrong txn id"},
		{"idx-order", func(x *Txn) { x.Ops[1].Idx = 0 }, "out of order"},
		{"dup-key", func(x *Txn) { x.Ops[1].Key = x.Ops[0].Key; x.Ops[1].Deps = []Key{{Row: 3}} }, "duplicate key"},
		{"bad-func", func(x *Txn) { x.Ops[0].Fn = FuncID(200) }, "unknown func"},
		{"bad-arity", func(x *Txn) { x.Ops[1].Deps = nil }, "wants 1 deps"},
		{"self-dep", func(x *Txn) { x.Ops[1].Deps = []Key{x.Ops[1].Key} }, "self-dependency"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			txn := validTxn()
			tc.mutate(&txn)
			err := ValidateTxn(&txn)
			if err == nil {
				t.Fatal("mutation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCloneEventIsDeep(t *testing.T) {
	ev := Event{Seq: 1, Keys: []Key{{Row: 1}}, Vals: []Value{10}}
	cp := CloneEvent(ev)
	cp.Keys[0].Row = 99
	cp.Vals[0] = 99
	if ev.Keys[0].Row != 1 || ev.Vals[0] != 10 {
		t.Error("CloneEvent shares slices with the original")
	}
	empty := CloneEvent(Event{Seq: 2})
	if empty.Keys != nil || empty.Vals != nil {
		t.Error("CloneEvent invented slices for nil fields")
	}
}

func TestKeyOrderingAndString(t *testing.T) {
	a := Key{Table: 0, Row: 5}
	b := Key{Table: 1, Row: 0}
	c := Key{Table: 0, Row: 9}
	if !a.Less(b) || b.Less(a) {
		t.Error("table ordering broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("row ordering broken")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
	if a.String() != "t0/r5" {
		t.Errorf("Key.String() = %q", a.String())
	}
}
