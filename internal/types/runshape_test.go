package types

import "testing"

func TestRunShapeNormalize(t *testing.T) {
	cases := []struct {
		name    string
		in      RunShape
		want    RunShape
		wantErr bool
	}{
		{
			name: "zero value gets the documented defaults",
			in:   RunShape{},
			want: RunShape{Workers: 1, CommitEvery: 1, SnapshotEvery: 8, SnapshotBase: 1},
		},
		{
			name: "negative knobs are treated as unset",
			in:   RunShape{Workers: -3, CommitEvery: -1, SnapshotEvery: -8, SnapshotBase: -2},
			want: RunShape{Workers: 1, CommitEvery: 1, SnapshotEvery: 8, SnapshotBase: 1},
		},
		{
			name: "explicit values survive untouched",
			in:   RunShape{Workers: 8, CommitEvery: 2, SnapshotEvery: 4, SnapshotBase: 4, AutoCommit: true, Pipeline: true},
			want: RunShape{Workers: 8, CommitEvery: 2, SnapshotEvery: 4, SnapshotBase: 4, AutoCommit: true, Pipeline: true},
		},
		{
			name: "commit interval defaulted against explicit snapshot interval",
			in:   RunShape{SnapshotEvery: 6},
			want: RunShape{Workers: 1, CommitEvery: 1, SnapshotEvery: 6, SnapshotBase: 1},
		},
		{
			name:    "commit interval must divide snapshot interval",
			in:      RunShape{CommitEvery: 3, SnapshotEvery: 8},
			wantErr: true,
		},
		{
			name:    "defaulted snapshot interval still validated",
			in:      RunShape{CommitEvery: 5},
			wantErr: true, // 5 does not divide the default 8
		},
		{
			name: "commit equal to snapshot is legal",
			in:   RunShape{CommitEvery: 4, SnapshotEvery: 4},
			want: RunShape{Workers: 1, CommitEvery: 4, SnapshotEvery: 4, SnapshotBase: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in
			err := got.Normalize()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Normalize(%+v) = %+v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Normalize(%+v): %v", tc.in, err)
			}
			if got != tc.want {
				t.Fatalf("Normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestRunShapeNormalizeIdempotent(t *testing.T) {
	s := RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 8}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	first := s
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s != first {
		t.Fatalf("second Normalize changed the shape: %+v != %+v", s, first)
	}
}

func TestRunShapeIsZero(t *testing.T) {
	if !(RunShape{}).IsZero() {
		t.Fatal("zero shape should report IsZero")
	}
	if (RunShape{Workers: 1}).IsZero() {
		t.Fatal("non-zero shape should not report IsZero")
	}
	if (RunShape{Pipeline: true}).IsZero() {
		t.Fatal("shape with a bool knob set should not report IsZero")
	}
}

func TestNormalizeWorkers(t *testing.T) {
	for in, want := range map[int]int{-1: 1, 0: 1, 1: 1, 7: 7} {
		if got := NormalizeWorkers(in); got != want {
			t.Fatalf("NormalizeWorkers(%d) = %d, want %d", in, got, want)
		}
	}
}
