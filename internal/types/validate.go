package types

import "fmt"

// ValidateTxn checks the structural invariants every transaction must
// satisfy before it enters the engine:
//
//   - at least one operation;
//   - all operations carry the transaction's ID and timestamp, with Idx
//     equal to their position;
//   - no two operations of the transaction target the same key (a single
//     event never reads and writes a record twice at one timestamp);
//   - no operation lists its own key among its deps;
//   - dep arity matches the function's declared NumDeps.
//
// Applications are exercised against ValidateTxn in tests; the engine also
// validates in debug builds of the pipeline.
func ValidateTxn(t *Txn) error {
	if len(t.Ops) == 0 {
		return fmt.Errorf("txn %d: no operations", t.ID)
	}
	if t.ID != t.TS {
		return fmt.Errorf("txn %d: ID and TS differ (%d != %d)", t.ID, t.ID, t.TS)
	}
	seen := make(map[Key]struct{}, len(t.Ops))
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.TxnID != t.ID || op.TS != t.TS {
			return fmt.Errorf("txn %d op %d: wrong txn id/ts (%d/%d)", t.ID, i, op.TxnID, op.TS)
		}
		if int(op.Idx) != i {
			return fmt.Errorf("txn %d op %d: Idx %d out of order", t.ID, i, op.Idx)
		}
		if _, dup := seen[op.Key]; dup {
			return fmt.Errorf("txn %d op %d: duplicate key %v within txn", t.ID, i, op.Key)
		}
		seen[op.Key] = struct{}{}
		if op.Fn >= FuncID(NumFuncs) {
			return fmt.Errorf("txn %d op %d: unknown func %d", t.ID, i, op.Fn)
		}
		if want := op.Fn.NumDeps(); want >= 0 && len(op.Deps) != want {
			return fmt.Errorf("txn %d op %d: func %v wants %d deps, has %d",
				t.ID, i, op.Fn, want, len(op.Deps))
		}
		for _, d := range op.Deps {
			if d == op.Key {
				return fmt.Errorf("txn %d op %d: self-dependency on %v", t.ID, i, op.Key)
			}
		}
	}
	return nil
}

// CloneEvent deep-copies an event so that decoded log records and generator
// outputs never alias caller-owned slices.
func CloneEvent(ev Event) Event {
	cp := ev
	if ev.Keys != nil {
		cp.Keys = append([]Key(nil), ev.Keys...)
	}
	if ev.Vals != nil {
		cp.Vals = append([]Value(nil), ev.Vals...)
	}
	return cp
}
