// Package types defines the fundamental vocabulary shared by every layer of
// the engine: keys, values, events, state-access operations, and state
// transactions.
//
// The definitions mirror Section II of the MorphStreamR paper:
//
//   - A state access operation (Definition 1) is a read or write on shared
//     mutable state, parameterised by a deterministic function drawn from a
//     fixed registry (see funcs.go).
//   - A state transaction (Definition 2) is the set of state accesses
//     triggered by a single input event; all operations of a transaction
//     carry the event's timestamp.
//
// Everything in this package is plain data with value semantics. Runtime
// execution state (dependency counters, results, abort flags) lives in
// package tpg so that types stays reusable by codecs, logs, and oracles.
package types

import "fmt"

// TableID identifies one of the application's shared mutable state tables.
type TableID uint8

// Key addresses a single record of shared mutable state: a (table, row)
// pair. Keys are small value types used pervasively as map keys.
type Key struct {
	Table TableID
	Row   uint32
}

// String renders the key as "t<table>/r<row>", e.g. "t0/r42".
func (k Key) String() string { return fmt.Sprintf("t%d/r%d", k.Table, k.Row) }

// Less orders keys first by table then by row. It provides the canonical
// total order used when deterministic iteration over keys is required.
func (k Key) Less(o Key) bool {
	if k.Table != o.Table {
		return k.Table < o.Table
	}
	return k.Row < o.Row
}

// Value is the content of one record. All paper workloads (balances, asset
// counts, road speeds, vehicle counts) fit in a signed 64-bit integer;
// fixed-point scaling is used where fractional values appear.
type Value = int64

// EventKind tags an input event with its application-specific type
// (deposit, transfer, sum, toll report, ...). The engine treats it as
// opaque; each workload package defines its own kinds.
type EventKind uint8

// Event is a single input record of the stream. Seq is the global sequence
// number assigned by the spout; it doubles as the transaction identifier and
// the timestamp of every state access the event triggers, which yields the
// total event order that correct schedules must be conflict-equivalent to.
//
// Keys and Vals carry the event payload; their meaning depends on Kind and
// is interpreted by the application's Preprocess. Events are deterministic
// and self-contained so that command logging (WAL) and input-event
// persistence can replay them byte-for-byte.
type Event struct {
	Seq  uint64
	Kind EventKind
	Keys []Key
	Vals []Value
}

// Operation is one state access of a transaction (Definition 1).
//
// The operation writes Key with the value produced by Fn applied to the
// record's current value, the values of the Deps keys as of the start of the
// transaction, and the immediate Const. Deps induce parametric dependencies
// (PDs) on the most recent earlier writer of each dep key; membership in a
// transaction induces logical dependencies (LDs) on the transaction's
// condition operation (always index 0); and sharing Key with another
// transaction's operation induces a temporal dependency (TD).
type Operation struct {
	TxnID uint64
	TS    uint64
	Idx   uint8 // position within the transaction; 0 is the condition op
	Key   Key
	Fn    FuncID
	Const Value
	Deps  []Key
}

// IsCondition reports whether the operation is its transaction's
// condition-variable-check: the first state access, on which all other
// operations of the same transaction logically depend (Section VI-A2).
func (o *Operation) IsCondition() bool { return o.Idx == 0 }

// Txn is a state transaction (Definition 2): the operations triggered by
// one input event. ID and TS both equal Event.Seq.
type Txn struct {
	ID    uint64
	TS    uint64
	Event Event
	Ops   []Operation
}

// Output is the downstream-visible product of postprocessing one event
// (a balance statement, an invoice, a toll notification, ...). Outputs are
// delivered exactly once: the engine suppresses re-delivery during replay.
type Output struct {
	EventSeq uint64
	Kind     EventKind
	Vals     []Value
}

// ExecutedTxn is a transaction together with its execution outcome: the
// post-operation value of each operation (aligned with Txn.Ops) and whether
// the transaction aborted. Results of aborted operations are the unchanged
// prior values, which keeps downstream parametric reads version-exact.
type ExecutedTxn struct {
	Txn     *Txn
	Results []Value
	Aborted bool
}

// TableSpec declares one shared mutable state table: its identifier, the
// number of rows, and the initial value of every record.
type TableSpec struct {
	ID   TableID
	Rows uint32
	Init Value
}

// App is a transactional stream application following the three-step
// programming model of Section II-B: preprocessing turns events into state
// transactions with deterministic read/write sets, the engine performs the
// state accesses, and postprocessing turns execution results into outputs.
//
// Implementations must be deterministic: the same event must always yield
// the same transaction, and the same executed transaction the same output.
// This property is what makes command logging and replay-based recovery
// correct.
type App interface {
	// Name returns a short identifier such as "SL", "GS", or "TP".
	Name() string
	// Tables declares the shared mutable state the application uses.
	Tables() []TableSpec
	// Preprocess converts an input event into a state transaction.
	Preprocess(ev Event) Txn
	// Postprocess converts an executed transaction into its output. The
	// view is only valid for the duration of the call: the engine reuses
	// one scratch ExecutedTxn across the epoch's transactions, so
	// implementations must not retain t or its Results slice.
	Postprocess(t *ExecutedTxn) Output
}
