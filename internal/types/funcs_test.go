package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplySemantics(t *testing.T) {
	tests := []struct {
		name   string
		fn     FuncID
		cur    Value
		deps   []Value
		c      Value
		want   Value
		commit bool
	}{
		{"put", FnPut, 7, nil, 42, 42, true},
		{"add", FnAdd, 10, nil, 5, 15, true},
		{"add-negative", FnAdd, 10, nil, -4, 6, true},
		{"gsub-self-ok", FnGuardedSubSelf, 100, nil, 30, 70, true},
		{"gsub-self-exact", FnGuardedSubSelf, 30, nil, 30, 0, true},
		{"gsub-self-abort", FnGuardedSubSelf, 29, nil, 30, 29, false},
		{"gadd-ok", FnGuardedAdd, 5, []Value{100}, 30, 35, true},
		{"gadd-abort", FnGuardedAdd, 5, []Value{29}, 30, 5, false},
		{"gsub-ok", FnGuardedSub, 50, []Value{100}, 30, 20, true},
		{"gsub-abort", FnGuardedSub, 50, []Value{10}, 30, 50, false},
		{"sum-empty", FnSum, 3, nil, 0, 3, true},
		{"sum", FnSum, 3, []Value{1, 2, 4}, 0, 10, true},
		{"ewma-first", FnEwmaGuard, 0, nil, 64, 64, true},
		{"ewma-fold", FnEwmaGuard, 80, nil, 8, (80*7 + 8) / 8, true},
		{"ewma-abort", FnEwmaGuard, 80, nil, -5, 80, false},
		{"inc", FnInc, 9, nil, 1234, 10, true},
		{"sum-abort-if-ok", FnSumAbortIf, 3, []Value{1, 2}, 0, 6, true},
		{"sum-abort-if-abort", FnSumAbortIf, 3, []Value{1, 2}, 1, 3, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, commit := Apply(tc.fn, tc.cur, tc.deps, tc.c)
			if got != tc.want || commit != tc.commit {
				t.Errorf("Apply(%v, %d, %v, %d) = (%d, %v), want (%d, %v)",
					tc.fn, tc.cur, tc.deps, tc.c, got, commit, tc.want, tc.commit)
			}
		})
	}
}

func TestApplyUnknownFuncAborts(t *testing.T) {
	got, commit := Apply(FuncID(200), 5, nil, 0)
	if commit || got != 5 {
		t.Errorf("unknown func: got (%d, %v), want value-preserving abort", got, commit)
	}
}

func TestApplyShortDepsDoesNotPanic(t *testing.T) {
	// Guarded functions read deps[0]; a missing dep must read as zero,
	// never panic.
	got, commit := Apply(FnGuardedAdd, 5, nil, 3)
	if commit || got != 5 {
		t.Errorf("FnGuardedAdd with no deps: got (%d, %v), want abort", got, commit)
	}
}

// TestApplyAbortPreservesValue: property — whenever Apply reports
// commit=false, the returned value equals the current value.
func TestApplyAbortPreservesValue(t *testing.T) {
	f := func(fn uint8, cur int64, deps []int64, c int64) bool {
		got, commit := Apply(FuncID(fn%NumFuncs), cur, deps, c)
		return commit || got == cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSumOrderIndependent: property — FnSum is invariant under dependency
// permutation, the algebraic fact MorphStreamR's restructured execution
// relies on when chains replay in different relative orders.
func TestSumOrderIndependent(t *testing.T) {
	f := func(cur int64, deps []int64, seed int64) bool {
		a, _ := Apply(FnSum, cur, deps, 0)
		shuffled := append([]int64(nil), deps...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, _ := Apply(FnSum, cur, shuffled, 0)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFuncIDStrings(t *testing.T) {
	for fn := FuncID(0); fn < FuncID(NumFuncs); fn++ {
		if s := fn.String(); s == "" || s[0] == 'f' && s != "put" && len(s) > 8 && s[:5] == "func(" {
			t.Errorf("FuncID %d has fallback name %q", fn, s)
		}
	}
	if s := FuncID(99).String(); s != "func(99)" {
		t.Errorf("unknown FuncID string = %q", s)
	}
}

func TestNumDepsArity(t *testing.T) {
	if FnGuardedAdd.NumDeps() != 1 || FnGuardedSub.NumDeps() != 1 {
		t.Error("guarded functions must require exactly one dep")
	}
	if FnSum.NumDeps() != -1 || FnSumAbortIf.NumDeps() != -1 {
		t.Error("sum functions accept any dep count")
	}
	if FnPut.NumDeps() != 0 || FnAdd.NumDeps() != 0 || FnInc.NumDeps() != 0 {
		t.Error("nullary functions must require zero deps")
	}
}
