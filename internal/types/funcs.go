package types

import "fmt"

// FuncID selects a deterministic state-access function from the fixed
// registry below. Modelling user-defined functions as a closed enum keeps
// operations serialisable, which command logging (WAL) and dependency
// logging (DL) require: a logged operation can be re-applied during
// recovery without shipping code.
//
// Each function maps (cur, deps, c) -> (new value, commit?) where cur is the
// current value of the operation's own key, deps are the values of the
// operation's Deps keys as of the transaction's start, and c is the
// operation's immediate constant. A false commit result aborts the whole
// transaction (consistency guard violated).
type FuncID uint8

const (
	// FnPut writes the constant: new = c. Used by write-only workloads.
	FnPut FuncID = iota
	// FnAdd adds the constant: new = cur + c. Used by deposits and counters.
	FnAdd
	// FnGuardedSubSelf debits the operation's own key guarded by its own
	// balance: if cur >= c then new = cur - c else abort. This is the
	// condition op of a Streaming Ledger transfer (f2 in Figure 3).
	FnGuardedSubSelf
	// FnGuardedAdd credits guarded by the first dep value (the source
	// account's pre-transaction balance): if deps[0] >= c then
	// new = cur + c else abort (f3 in Figure 3).
	FnGuardedAdd
	// FnGuardedSub debits guarded by the first dep value: if deps[0] >= c
	// then new = cur - c else abort. Used for the asset-table side of a
	// transfer.
	FnGuardedSub
	// FnSum writes the sum of the operation's own value and all dep values:
	// new = cur + Σ deps. This is Grep&Sum's state access.
	FnSum
	// FnEwmaGuard folds a new speed sample into an exponentially weighted
	// moving average: if c >= 0 then new = (cur*7 + c) / 8 (or c when the
	// segment has no history) else abort. Negative samples model invalid
	// vehicle reports, Toll Processing's abort source.
	FnEwmaGuard
	// FnInc increments by one regardless of c: new = cur + 1. Used for the
	// unique-vehicle counter in Toll Processing.
	FnInc
	// FnSumAbortIf is FnSum with a validation guard: a non-zero constant
	// aborts the transaction (modelling a failed input-validation check),
	// otherwise new = cur + Σ deps. The abort-ratio sensitivity sweeps use
	// it to dial in exact abort percentages on Grep&Sum.
	FnSumAbortIf

	// numFuncs bounds the registry; keep it last.
	numFuncs
)

// NumFuncs is the number of registered functions; FuncIDs must be < NumFuncs.
const NumFuncs = uint8(numFuncs)

// String names the function for logs and test failure messages.
func (f FuncID) String() string {
	switch f {
	case FnPut:
		return "put"
	case FnAdd:
		return "add"
	case FnGuardedSubSelf:
		return "gsub-self"
	case FnGuardedAdd:
		return "gadd"
	case FnGuardedSub:
		return "gsub"
	case FnSum:
		return "sum"
	case FnEwmaGuard:
		return "ewma-guard"
	case FnInc:
		return "inc"
	case FnSumAbortIf:
		return "sum-abort-if"
	default:
		return fmt.Sprintf("func(%d)", uint8(f))
	}
}

// NumDeps returns the number of dependency values the function consumes, or
// -1 if it accepts any number (FnSum). Operations are validated against
// this arity when transactions are built.
func (f FuncID) NumDeps() int {
	switch f {
	case FnGuardedAdd, FnGuardedSub:
		return 1
	case FnSum, FnSumAbortIf:
		return -1
	default:
		return 0
	}
}

// Apply evaluates the function. It is the single definition of state-access
// semantics: the parallel scheduler, the sequential oracle, and every
// recovery replay path all funnel through it, so an agreement test against
// the oracle covers the whole registry.
//
// Apply never panics on short dep slices; missing deps read as zero, which
// the validating transaction builders prevent from occurring in practice.
func Apply(fn FuncID, cur Value, deps []Value, c Value) (Value, bool) {
	switch fn {
	case FnPut:
		return c, true
	case FnAdd:
		return cur + c, true
	case FnGuardedSubSelf:
		if cur >= c {
			return cur - c, true
		}
		return cur, false
	case FnGuardedAdd:
		if dep0(deps) >= c {
			return cur + c, true
		}
		return cur, false
	case FnGuardedSub:
		if dep0(deps) >= c {
			return cur - c, true
		}
		return cur, false
	case FnSum:
		s := cur
		for _, d := range deps {
			s += d
		}
		return s, true
	case FnEwmaGuard:
		if c < 0 {
			return cur, false
		}
		if cur == 0 {
			return c, true
		}
		return (cur*7 + c) / 8, true
	case FnInc:
		return cur + 1, true
	case FnSumAbortIf:
		if c != 0 {
			return cur, false
		}
		s := cur
		for _, d := range deps {
			s += d
		}
		return s, true
	default:
		return cur, false
	}
}

func dep0(deps []Value) Value {
	if len(deps) == 0 {
		return 0
	}
	return deps[0]
}
