package partition_test

import (
	"fmt"
	"testing"

	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/workload"
)

// TestGoldenRouting pins the shard assignment of the first 64 events of
// each seeded workload at four shards. The shard coordinator's routed
// history, the frontier log, and every sharded crash-sweep oracle all
// assume the key→shard map is a stable pure function of the table specs;
// an innocent-looking change to NewRanges or Of that re-homes keys would
// silently invalidate every durable frontier log written before it, so it
// must show up here as an explicit golden diff.
func TestGoldenRouting(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  workload.Generator
		want string
	}{
		{"GS", fttest.GSGen(43), "2230213330320020310300221200020223333122330031001032130202322301"},
		{"SL", fttest.SLGen(41), "3222302002211031101100103300223122231131201312133331003311311113"},
		{"TP", fttest.TPGen(53), "3220220220323331330000030331303230222332312011132323321122323033"},
	} {
		r := partition.NewRanges(tc.gen.App().Tables(), 4)
		got := ""
		for _, ev := range workload.Batch(tc.gen, 64) {
			got += fmt.Sprint(r.Of(ev.Keys[0]))
		}
		if got != tc.want {
			t.Errorf("%s: routed assignment drifted\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
}
