package partition_test

import (
	"testing"

	"morphstreamr/internal/partition"
	"morphstreamr/internal/types"
)

// FuzzRangesOf fuzzes the key→shard router over arbitrary table sizes,
// partition counts, and rows. The properties the shard coordinator builds
// on: every key maps into [0, count); the assignment is a pure function of
// the table specs (stable across NewRanges rebuilds — a recovered
// coordinator must route exactly like the crashed one); and Of agrees with
// RowsIn (the key falls inside its partition's half-open row range, and
// the ranges tile the table without gaps or overlap).
func FuzzRangesOf(f *testing.F) {
	f.Add(uint32(4096), 4, uint32(17), uint8(0))
	f.Add(uint32(512), 8, uint32(511), uint8(1))
	f.Add(uint32(1), 1, uint32(0), uint8(0))
	f.Add(uint32(7), 64, uint32(6), uint8(3))
	f.Add(uint32(1<<31), 16, uint32(1<<30), uint8(0))
	f.Fuzz(func(t *testing.T, rows uint32, count int, row uint32, table uint8) {
		if rows == 0 {
			rows = 1
		}
		if count < 1 || count > 256 {
			count = count&0xff + 1
		}
		specs := []types.TableSpec{{ID: types.TableID(table), Rows: rows}}
		r := partition.NewRanges(specs, count)

		k := types.Key{Table: types.TableID(table), Row: row % rows}
		s := r.Of(k)
		if s < 0 || s >= r.Count() {
			t.Fatalf("Of(%v) = %d, outside [0, %d)", k, s, r.Count())
		}
		if again := partition.NewRanges(specs, count).Of(k); again != s {
			t.Fatalf("rebuild moved %v: %d then %d", k, s, again)
		}
		lo, hi := r.RowsIn(k.Table, s)
		if k.Row < lo || k.Row >= hi {
			t.Fatalf("Of(%v) = %d but RowsIn gives [%d, %d)", k, s, lo, hi)
		}
		// The partitions tile [0, rows): consecutive ranges abut, the
		// first starts at 0, the last ends at rows.
		prevHi := uint32(0)
		for p := 0; p < r.Count(); p++ {
			plo, phi := r.RowsIn(k.Table, p)
			if plo != prevHi {
				t.Fatalf("partition %d starts at %d, previous ended at %d", p, plo, prevHi)
			}
			if phi < plo {
				t.Fatalf("partition %d range [%d, %d) inverted", p, plo, phi)
			}
			prevHi = phi
		}
		if prevHi != rows {
			t.Fatalf("partitions end at %d, table has %d rows", prevHi, rows)
		}
		// A key outside the table still clamps into range.
		if s := r.Of(types.Key{Table: types.TableID(table), Row: row}); s < 0 || s >= r.Count() {
			t.Fatalf("Of(out-of-table row %d) = %d, outside [0, %d)", row, s, r.Count())
		}
		// An unknown table routes to partition 0 rather than out of range.
		if s := r.Of(types.Key{Table: types.TableID(table) + 1, Row: row}); s != 0 {
			t.Fatalf("Of(unknown table) = %d, want 0", s)
		}
	})
}
