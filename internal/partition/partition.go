// Package partition provides the three placement algorithms the system
// needs:
//
//   - a static range partitioner mapping keys to data partitions, used by
//     workload generators to control the multi-partition transaction ratio
//     and by the runtime scheduler for locality;
//   - a greedy weighted graph partitioner (after Yao et al., used by
//     selective logging, Section VI-A1) that groups operation chains to
//     balance load while minimising the dependencies that cross groups;
//   - a greedy LPT (longest processing time first) task assigner used by
//     MorphStreamR's optimized task assignment during recovery
//     (Section V-B3).
package partition

import (
	"container/heap"
	"sort"

	"morphstreamr/internal/types"
)

// Ranges maps keys to data partitions by dividing every table's row space
// into count contiguous ranges. Range partitioning (rather than hashing)
// matches how TSPEs shard state across executors and makes "multi-partition
// transaction" a property the generators can control exactly.
type Ranges struct {
	count int
	rows  map[types.TableID]uint32
}

// NewRanges builds a range partitioner over the given tables.
func NewRanges(specs []types.TableSpec, count int) *Ranges {
	if count <= 0 {
		count = 1
	}
	r := &Ranges{count: count, rows: make(map[types.TableID]uint32, len(specs))}
	for _, sp := range specs {
		r.rows[sp.ID] = sp.Rows
	}
	return r
}

// Count returns the number of partitions.
func (r *Ranges) Count() int { return r.count }

// Of returns the partition of a key in [0, Count()). It is the exact
// inverse of the RowsIn tiling — the unique p with
// RowsIn(t,p).lo <= row < RowsIn(t,p).hi — for every table size, not just
// sizes divisible by the partition count: floor(row*count/rows) would
// drift below the tiling whenever rows%count != 0 and strand rows in a
// partition that doesn't own them (found by FuzzRangesOf). Rows at or
// beyond the table's end clamp into the last partition.
func (r *Ranges) Of(k types.Key) int {
	rows := r.rows[k.Table]
	if rows == 0 {
		return 0
	}
	if k.Row >= rows {
		return r.count - 1
	}
	return int(((uint64(k.Row)+1)*uint64(r.count) - 1) / uint64(rows))
}

// RowsIn returns the half-open row range [lo, hi) of partition p for the
// given table, so generators can draw intra-partition keys directly.
func (r *Ranges) RowsIn(t types.TableID, p int) (lo, hi uint32) {
	rows := uint64(r.rows[t])
	lo = uint32(rows * uint64(p) / uint64(r.count))
	hi = uint32(rows * uint64(p+1) / uint64(r.count))
	return lo, hi
}

// GraphVertex is one vertex of the chain graph handed to Greedy: a chain of
// state accesses with its operation-count weight and weighted edges to
// other vertices (the number of LDs and PDs connecting the two chains).
type GraphVertex struct {
	Weight int
	Edges  map[int]int // neighbour vertex index -> dependency count
}

// Greedy partitions the vertices into k groups, balancing total vertex
// weight while preferring to co-locate heavily connected vertices. It
// processes vertices in decreasing weight order and scores each candidate
// group by the dependency weight already co-located there minus a balance
// penalty proportional to the group's relative load.
//
// The returned slice maps vertex index to group in [0, k).
func Greedy(vertices []GraphVertex, k int) []int {
	if k <= 0 {
		k = 1
	}
	assign := make([]int, len(vertices))
	for i := range assign {
		assign[i] = -1
	}
	order := make([]int, len(vertices))
	total := 0
	for i := range vertices {
		order[i] = i
		total += vertices[i].Weight
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vertices[order[a]].Weight > vertices[order[b]].Weight
	})
	load := make([]int, k)
	avg := float64(total)/float64(k) + 1
	for _, v := range order {
		bestGroup, bestScore := 0, -1e18
		for g := 0; g < k; g++ {
			gain := 0
			for nb, w := range vertices[v].Edges {
				if assign[nb] == g {
					gain += w
				}
			}
			// The balance penalty dominates once a group exceeds the
			// average load, matching the algorithm's stated goal of
			// near-equal workloads with reduced cut size.
			score := float64(gain) - 2*float64(load[g])/avg*float64(vertices[v].Weight+1)
			if score > bestScore {
				bestScore, bestGroup = score, g
			}
		}
		assign[v] = bestGroup
		load[bestGroup] += vertices[v].Weight
	}
	return assign
}

// GreedyAdj is the allocation-lean variant of Greedy used on the runtime
// hot path (selective logging partitions every epoch's chain graph). The
// graph is given as unweighted multi-edge adjacency lists: adj[v] holds one
// entry per dependency between v and the neighbour, so repeated entries
// carry the edge weight. Semantics match Greedy: vertices in decreasing
// weight order, each placed by co-location gain minus a balance penalty.
func GreedyAdj(weights []int, adj [][]int32, k int) []int {
	if k <= 0 {
		k = 1
	}
	n := len(weights)
	assign := make([]int, n)
	order := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		assign[i] = -1
		order[i] = i
		total += weights[i]
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]int, k)
	gain := make([]int, k)
	avg := float64(total)/float64(k) + 1
	for _, v := range order {
		for i := range gain {
			gain[i] = 0
		}
		for _, nb := range adj[v] {
			if g := assign[nb]; g >= 0 {
				gain[g]++
			}
		}
		bestGroup, bestScore := 0, -1e18
		for g := 0; g < k; g++ {
			score := float64(gain[g]) - 2*float64(load[g])/avg*float64(weights[v]+1)
			if score > bestScore {
				bestScore, bestGroup = score, g
			}
		}
		assign[v] = bestGroup
		load[bestGroup] += weights[v]
	}
	return assign
}

// CutWeight sums the edge weight crossing groups under an assignment:
// the number of dependencies selective logging must record.
func CutWeight(vertices []GraphVertex, assign []int) int {
	cut := 0
	for i := range vertices {
		for nb, w := range vertices[i].Edges {
			if nb > i && assign[nb] != assign[i] {
				cut += w
			}
		}
	}
	return cut
}

// Imbalance returns max group load divided by average group load (1.0 is
// perfect balance). Empty groups count as zero load.
func Imbalance(vertices []GraphVertex, assign []int, k int) float64 {
	load := make([]int, k)
	total := 0
	for i, g := range assign {
		load[g] += vertices[i].Weight
		total += vertices[i].Weight
	}
	if total == 0 {
		return 1
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return float64(maxLoad) * float64(k) / float64(total)
}

// LPT assigns weighted tasks to workers using the longest-processing-time
// greedy rule: tasks in decreasing weight order, each to the currently
// least-loaded worker. Its makespan is within 4/3 of optimal, which is why
// the paper's optimized task assignment uses it. Returns the worker of
// each task.
func LPT(weights []int, workers int) []int {
	if workers <= 0 {
		workers = 1
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	h := make(loadHeap, workers)
	for w := 0; w < workers; w++ {
		h[w] = workerLoad{worker: w}
	}
	heap.Init(&h)
	assign := make([]int, len(weights))
	for _, t := range order {
		least := h[0]
		assign[t] = least.worker
		least.load += weights[t]
		h[0] = least
		heap.Fix(&h, 0)
	}
	return assign
}

// Makespan returns the maximum per-worker load under an assignment.
func Makespan(weights []int, assign []int, workers int) int {
	load := make([]int, workers)
	for i, w := range assign {
		load[w] += weights[i]
	}
	m := 0
	for _, l := range load {
		if l > m {
			m = l
		}
	}
	return m
}

type workerLoad struct {
	worker int
	load   int
}

type loadHeap []workerLoad

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].worker < h[j].worker
}
func (h loadHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x any)     { *h = append(*h, x.(workerLoad)) }
func (h *loadHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
