package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"morphstreamr/internal/types"
)

func specs() []types.TableSpec {
	return []types.TableSpec{{ID: 0, Rows: 1000}, {ID: 1, Rows: 64}}
}

func TestRangesCoverAllRows(t *testing.T) {
	r := NewRanges(specs(), 7)
	counts := make([]int, 7)
	for row := uint32(0); row < 1000; row++ {
		p := r.Of(types.Key{Table: 0, Row: row})
		if p < 0 || p >= 7 {
			t.Fatalf("row %d in partition %d", row, p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 1000/7-1 || c > 1000/7+2 {
			t.Errorf("partition %d holds %d rows; range partitioning should balance", p, c)
		}
	}
}

func TestRangesRowsInMatchesOf(t *testing.T) {
	r := NewRanges(specs(), 5)
	for p := 0; p < 5; p++ {
		lo, hi := r.RowsIn(0, p)
		if lo >= hi {
			t.Fatalf("partition %d empty: [%d, %d)", p, lo, hi)
		}
		for _, row := range []uint32{lo, hi - 1} {
			if got := r.Of(types.Key{Table: 0, Row: row}); got != p {
				t.Errorf("row %d: Of=%d, RowsIn says %d", row, got, p)
			}
		}
	}
	// Ranges tile the row space exactly.
	prevHi := uint32(0)
	for p := 0; p < 5; p++ {
		lo, hi := r.RowsIn(0, p)
		if lo != prevHi {
			t.Errorf("gap/overlap at partition %d: lo=%d, prev hi=%d", p, lo, prevHi)
		}
		prevHi = hi
	}
	if prevHi != 1000 {
		t.Errorf("ranges end at %d, want 1000", prevHi)
	}
}

func TestRangesDegenerateCases(t *testing.T) {
	r := NewRanges(specs(), 0) // clamps to 1
	if r.Count() != 1 || r.Of(types.Key{Table: 0, Row: 999}) != 0 {
		t.Error("zero-count partitioner must behave as a single partition")
	}
	if p := r.Of(types.Key{Table: 9, Row: 0}); p != 0 {
		t.Errorf("unknown table partition = %d, want 0", p)
	}
}

// randomGraph builds a connected-ish weighted graph.
func randomGraph(rng *rand.Rand, n int) []GraphVertex {
	vs := make([]GraphVertex, n)
	for i := range vs {
		vs[i].Weight = 1 + rng.Intn(20)
	}
	addEdge := func(a, b, w int) {
		if vs[a].Edges == nil {
			vs[a].Edges = map[int]int{}
		}
		if vs[b].Edges == nil {
			vs[b].Edges = map[int]int{}
		}
		vs[a].Edges[b] += w
		vs[b].Edges[a] += w
	}
	for i := 0; i < 3*n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addEdge(a, b, 1+rng.Intn(3))
		}
	}
	return vs
}

func TestGreedyAssignsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := randomGraph(rng, 200)
	assign := Greedy(vs, 6)
	if len(assign) != len(vs) {
		t.Fatalf("assignment length %d, want %d", len(assign), len(vs))
	}
	for i, g := range assign {
		if g < 0 || g >= 6 {
			t.Fatalf("vertex %d in group %d", i, g)
		}
	}
}

func TestGreedyBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		vs := randomGraph(rng, 150)
		assign := Greedy(vs, 4)
		if imb := Imbalance(vs, assign, 4); imb > 1.6 {
			t.Errorf("trial %d: imbalance %.2f exceeds 1.6", trial, imb)
		}
	}
}

func TestGreedyBeatsRandomCut(t *testing.T) {
	// The partitioner's whole point: fewer cut dependencies than naive
	// placement at comparable balance.
	rng := rand.New(rand.NewSource(3))
	better := 0
	for trial := 0; trial < 10; trial++ {
		vs := randomGraph(rng, 120)
		greedy := Greedy(vs, 4)
		random := make([]int, len(vs))
		for i := range random {
			random[i] = rng.Intn(4)
		}
		if CutWeight(vs, greedy) <= CutWeight(vs, random) {
			better++
		}
	}
	if better < 7 {
		t.Errorf("greedy beat random cut only %d/10 times", better)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := randomGraph(rng, 100)
	a := Greedy(vs, 4)
	b := Greedy(vs, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Greedy is nondeterministic on identical input")
		}
	}
}

func TestGreedyEmptyAndSmall(t *testing.T) {
	if got := Greedy(nil, 4); len(got) != 0 {
		t.Error("empty graph should yield empty assignment")
	}
	assign := Greedy([]GraphVertex{{Weight: 5}}, 0) // k clamps to 1
	if len(assign) != 1 || assign[0] != 0 {
		t.Errorf("single vertex: %v", assign)
	}
}

// TestLPTBound: LPT's makespan is at most 4/3 - 1/(3m) of optimal; against
// the trivial lower bound max(avg, maxTask) that means makespan <=
// 4/3*max(avg, maxTask) + maxTask slack. Check the usual practical bound:
// makespan <= avg + maxTask.
func TestLPTBound(t *testing.T) {
	f := func(raw []uint16, workersRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		weights := make([]int, len(raw))
		total, maxW := 0, 0
		for i, r := range raw {
			weights[i] = int(r % 1000)
			total += weights[i]
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
		assign := LPT(weights, workers)
		if len(assign) != len(weights) {
			return false
		}
		for _, w := range assign {
			if w < 0 || w >= workers {
				return false
			}
		}
		return Makespan(weights, assign, workers) <= total/workers+maxW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLPTExactOnEasyCase(t *testing.T) {
	// Four equal tasks over four workers: perfect spread.
	assign := LPT([]int{5, 5, 5, 5}, 4)
	seen := make(map[int]bool)
	for _, w := range assign {
		if seen[w] {
			t.Fatalf("two tasks on worker %d; want one each", w)
		}
		seen[w] = true
	}
	if Makespan([]int{5, 5, 5, 5}, assign, 4) != 5 {
		t.Error("makespan should be 5")
	}
}

func TestLPTBeatsInOrderOnSkew(t *testing.T) {
	// A classic case where naive in-order placement loses: one giant task
	// plus many small ones.
	weights := []int{100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	lpt := LPT(weights, 2)
	if Makespan(weights, lpt, 2) != 100 {
		t.Errorf("LPT makespan = %d, want 100 (giant task alone)", Makespan(weights, lpt, 2))
	}
}

// TestGreedyAdjMatchesGreedySemantics: the hot-path adjacency variant must
// balance and cut like the map-based Greedy on equivalent input.
func TestGreedyAdjBalancesAndCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 150
		weights := make([]int, n)
		adj := make([][]int32, n)
		vs := make([]GraphVertex, n)
		for i := range weights {
			weights[i] = 1 + rng.Intn(20)
			vs[i] = GraphVertex{Weight: weights[i]}
		}
		for e := 0; e < 3*n; e++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			if a == b {
				continue
			}
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
			if vs[a].Edges == nil {
				vs[a].Edges = map[int]int{}
			}
			if vs[b].Edges == nil {
				vs[b].Edges = map[int]int{}
			}
			vs[a].Edges[int(b)]++
			vs[b].Edges[int(a)]++
		}
		assign := GreedyAdj(weights, adj, 4)
		for i, g := range assign {
			if g < 0 || g >= 4 {
				t.Fatalf("vertex %d in group %d", i, g)
			}
		}
		if imb := Imbalance(vs, assign, 4); imb > 1.6 {
			t.Errorf("trial %d: GreedyAdj imbalance %.2f", trial, imb)
		}
		random := make([]int, n)
		for i := range random {
			random[i] = rng.Intn(4)
		}
		if CutWeight(vs, assign) > CutWeight(vs, random)*3/2 {
			t.Errorf("trial %d: GreedyAdj cut worse than 1.5x random", trial)
		}
	}
}

// TestGreedyAdjDeterministic: the runtime partitioner must be a pure
// function of its input (recovery reproducibility depends on it).
func TestGreedyAdjDeterministic(t *testing.T) {
	weights := []int{5, 3, 8, 1, 9, 2, 7}
	adj := [][]int32{{1, 2}, {0}, {0, 4}, {}, {2, 5}, {4}, {}}
	a := GreedyAdj(weights, adj, 3)
	b := GreedyAdj(weights, adj, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GreedyAdj nondeterministic")
		}
	}
}
