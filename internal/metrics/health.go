package metrics

import (
	"sync"
	"time"
)

// Incident records one detected runtime failure and, if healing succeeded,
// how long it took. Detection is fault-occurrence to detection (zero-ish
// for surfaced errors, up to the stall timeout for wedged epochs); MTTR is
// detection to resumed live processing — the end-to-end healing time that
// fault-recovery benchmarking measures on top of the paper's replay speed.
type Incident struct {
	// Cause classifies the failure: "io-transient-exhausted", "io-fatal",
	// "poisoned", "panic", or "stall".
	Cause string
	// Err is the surfaced error text ("" for stalls).
	Err string
	// DetectedAt is when the supervisor observed the failure.
	DetectedAt time.Time
	// Detection is the latency from fault occurrence (first injection or
	// last observed progress) to DetectedAt, when the baseline is known.
	Detection time.Duration
	// MTTR is DetectedAt to recovery completed and the stream resumed.
	MTTR time.Duration
	// RecoveredEpoch is the epoch processing resumed from (last committed
	// punctuation + 1). Zero when healing failed.
	RecoveredEpoch uint64
	// Healed reports whether in-process recovery succeeded.
	Healed bool
}

// Health is a thread-safe incident log kept by the supervisor.
type Health struct {
	mu        sync.Mutex
	incidents []Incident
}

// NewHealth creates an empty incident log.
func NewHealth() *Health { return &Health{} }

// Record appends one incident.
func (h *Health) Record(inc Incident) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.incidents = append(h.incidents, inc)
}

// Incidents returns a snapshot of all recorded incidents in order.
func (h *Health) Incidents() []Incident {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Incident, len(h.incidents))
	copy(out, h.incidents)
	return out
}

// Healed counts incidents that recovered successfully.
func (h *Health) Healed() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, inc := range h.incidents {
		if inc.Healed {
			n++
		}
	}
	return n
}

// MeanMTTR averages MTTR over healed incidents (zero when none).
func (h *Health) MeanMTTR() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sum time.Duration
	n := 0
	for _, inc := range h.incidents {
		if inc.Healed {
			sum += inc.MTTR
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}
