// Package metrics defines the measurement vocabulary of the evaluation:
// the runtime overhead breakdown of Figure 12d (I/O, tracking, sync), the
// recovery-time breakdown of Figure 11 (reload, construct, abort, explore,
// execute, wait), throughput accounting, and byte/memory accounting for the
// storage-footprint study of Figure 12c.
//
// Duration counters are plain values accumulated by a single owner (the
// engine or a recovery driver); per-worker quantities are recorded in
// per-worker slots and merged at barriers. Byte accounting is mutex-backed
// because asynchronous group commits report from their own goroutine.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// RuntimeBreakdown decomposes the fault-tolerance overhead paid during
// normal processing, relative to native execution (Figure 12d).
type RuntimeBreakdown struct {
	// IO is time spent serialising and persisting durable artifacts:
	// input events, log records, views, snapshots.
	IO time.Duration
	// Tracking is time spent observing execution to build log records:
	// dependency tracking, LSN vector computation, view collection, and
	// selective-logging partitioning.
	Tracking time.Duration
	// Sync is time spent synchronising at punctuation markers for
	// consistent snapshots and group commit.
	Sync time.Duration
}

// Total returns the sum of all components.
func (r RuntimeBreakdown) Total() time.Duration { return r.IO + r.Tracking + r.Sync }

// Add accumulates another breakdown into r.
func (r *RuntimeBreakdown) Add(o RuntimeBreakdown) {
	r.IO += o.IO
	r.Tracking += o.Tracking
	r.Sync += o.Sync
}

// String renders the breakdown as "io=... track=... sync=...".
func (r RuntimeBreakdown) String() string {
	return fmt.Sprintf("io=%v track=%v sync=%v", r.IO, r.Tracking, r.Sync)
}

// RecoveryBreakdown decomposes recovery time into the six operations of
// Figure 11's bar charts.
//
// Accounting convention: every component is aggregate thread-time across
// the configured W workers, the same convention the paper's stacked bars
// use. Parallel phases contribute the sum of their per-worker clocks
// (busy plus idle, so a fully utilised phase of wall length t contributes
// W*t). Single-threaded phases that occupy the whole machine — reloading
// logs, rebuilding dependency graphs — contribute W times their wall time
// to their own component (see ChargeSerial). Sequential redo under WAL is
// the one phase whose idle threads the paper attributes to wait time, and
// the WAL mechanism charges it that way explicitly. Dividing a total by W
// recovers wall-clock seconds; PerWorker does this for presentation.
type RecoveryBreakdown struct {
	// Reload is time reloading states, input events, and log records.
	Reload time.Duration
	// Construct is time identifying dependencies and building auxiliary
	// structures (TPGs, dependency graphs, LSN tables, view indexes).
	Construct time.Duration
	// Abort is time handling state transaction aborts.
	Abort time.Duration
	// Explore is time searching for ready operations to process.
	Explore time.Duration
	// Execute is time performing state accesses and user functions.
	Execute time.Duration
	// Wait is synchronisation/idle time, including load-imbalance stalls.
	Wait time.Duration
}

// Total returns the sum of all components.
func (r RecoveryBreakdown) Total() time.Duration {
	return r.Reload + r.Construct + r.Abort + r.Explore + r.Execute + r.Wait
}

// Add accumulates another breakdown into r.
func (r *RecoveryBreakdown) Add(o RecoveryBreakdown) {
	r.Reload += o.Reload
	r.Construct += o.Construct
	r.Abort += o.Abort
	r.Explore += o.Explore
	r.Execute += o.Execute
	r.Wait += o.Wait
}

// Components returns the breakdown as ordered (name, duration) pairs for
// table printing.
func (r RecoveryBreakdown) Components() []Component {
	return []Component{
		{"reload", r.Reload}, {"construct", r.Construct}, {"abort", r.Abort},
		{"explore", r.Explore}, {"execute", r.Execute}, {"wait", r.Wait},
	}
}

// String renders all six components.
func (r RecoveryBreakdown) String() string {
	parts := make([]string, 0, 6)
	for _, c := range r.Components() {
		parts = append(parts, fmt.Sprintf("%s=%v", c.Name, c.D))
	}
	return strings.Join(parts, " ")
}

// PerWorker scales the breakdown down to per-worker (≈ wall clock) time.
func (r RecoveryBreakdown) PerWorker(workers int) RecoveryBreakdown {
	if workers <= 1 {
		return r
	}
	w := time.Duration(workers)
	return RecoveryBreakdown{
		Reload: r.Reload / w, Construct: r.Construct / w, Abort: r.Abort / w,
		Explore: r.Explore / w, Execute: r.Execute / w, Wait: r.Wait / w,
	}
}

// Shares returns each component's fraction of the total as ordered
// (name, fraction) pairs — the normalised form of the paper's stacked
// bars, and the shape BENCH_recovery.json records per mechanism. A zero
// breakdown yields all-zero shares.
func (r RecoveryBreakdown) Shares() map[string]float64 {
	out := make(map[string]float64, 6)
	total := float64(r.Total())
	for _, c := range r.Components() {
		if total > 0 {
			out[c.Name] = float64(c.D) / total
		} else {
			out[c.Name] = 0
		}
	}
	return out
}

// Component is one named slice of a breakdown.
type Component struct {
	Name string
	D    time.Duration
}

// ChargeSerial adds a single-threaded phase of the given wall-clock length
// to *d under the aggregate-thread-time convention: the phase occupies the
// whole W-worker machine, so it contributes W times its wall time.
func ChargeSerial(d *time.Duration, wall time.Duration, workers int) {
	if workers < 1 {
		workers = 1
	}
	*d += wall * time.Duration(workers)
}

// SerialTimer starts a timer for a single-threaded phase and returns a stop
// function that charges it via ChargeSerial.
func SerialTimer(d *time.Duration, workers int) func() {
	start := time.Now()
	return func() { ChargeSerial(d, time.Since(start), workers) }
}

// WorkerClock accumulates the per-worker explore/execute/wait split of the
// parallel schedulers. Each worker owns one slot; Merge folds the slots of
// all workers into a breakdown after the scheduling barrier.
type WorkerClock struct {
	Explore time.Duration
	Execute time.Duration
	Wait    time.Duration
	Abort   time.Duration
}

// MergeWorkerClocks sums per-worker clocks into the corresponding fields of
// a RecoveryBreakdown. Durations are summed across workers (total CPU time),
// matching the paper's stacked per-operation accounting.
func MergeWorkerClocks(clocks []WorkerClock) RecoveryBreakdown {
	var out RecoveryBreakdown
	for i := range clocks {
		out.Explore += clocks[i].Explore
		out.Execute += clocks[i].Execute
		out.Wait += clocks[i].Wait
		out.Abort += clocks[i].Abort
	}
	return out
}

// Bytes tracks durable and in-memory artifact sizes per category, feeding
// the memory-footprint study (Figure 12c). It is safe for concurrent use:
// asynchronous group commits account their writes from another goroutine.
type Bytes struct {
	mu     sync.Mutex
	counts map[string]int64
	peak   map[string]int64
	live   map[string]int64
}

// NewBytes creates an empty byte tracker.
func NewBytes() *Bytes {
	return &Bytes{
		counts: make(map[string]int64),
		peak:   make(map[string]int64),
		live:   make(map[string]int64),
	}
}

// Written records n bytes written under a category ("input", "wal",
// "views", "snapshot", ...). Cumulative, never decremented.
func (b *Bytes) Written(category string, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.counts[category] += n
}

// Alloc records n live in-memory bytes added under a category and updates
// the category's peak. Free releases them.
func (b *Bytes) Alloc(category string, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.live[category] += n
	if b.live[category] > b.peak[category] {
		b.peak[category] = b.live[category]
	}
}

// Free releases n live bytes from a category.
func (b *Bytes) Free(category string, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.live[category] -= n
	if b.live[category] < 0 {
		b.live[category] = 0
	}
}

// TotalWritten returns cumulative bytes written across all categories.
func (b *Bytes) TotalWritten() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t int64
	for _, n := range b.counts {
		t += n
	}
	return t
}

// WrittenBy returns cumulative bytes written for one category.
func (b *Bytes) WrittenBy(category string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[category]
}

// Live returns the current live bytes summed across categories.
func (b *Bytes) Live() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t int64
	for _, n := range b.live {
		t += n
	}
	return t
}

// PeakLive returns the peak live bytes summed across categories: the
// maximum per-category peaks, a close upper bound on true peak usage given
// the engine's epoch-synchronised lifecycle.
func (b *Bytes) PeakLive() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t int64
	for _, n := range b.peak {
		t += n
	}
	return t
}

// Categories returns the category names seen so far, sorted.
func (b *Bytes) Categories() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := make(map[string]struct{})
	for c := range b.counts {
		set[c] = struct{}{}
	}
	for c := range b.peak {
		set[c] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Throughput converts an event count and a duration into events/second.
func Throughput(events int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(events) / d.Seconds()
}

// Timer is a tiny helper for charging wall time to breakdown fields:
//
//	defer metrics.Since(&bd.Construct)()
type stopFunc = func()

// Since starts a timer and returns a function that adds the elapsed time to
// *d when called.
func Since(d *time.Duration) stopFunc {
	start := time.Now()
	return func() { *d += time.Since(start) }
}
