package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdownArithmetic(t *testing.T) {
	a := RecoveryBreakdown{Reload: 1, Construct: 2, Abort: 3, Explore: 4, Execute: 5, Wait: 6}
	b := a
	b.Add(a)
	if b.Total() != 2*a.Total() || a.Total() != 21 {
		t.Errorf("Add/Total wrong: %v, %v", a.Total(), b.Total())
	}
	comps := a.Components()
	if len(comps) != 6 || comps[0].Name != "reload" || comps[5].Name != "wait" {
		t.Errorf("Components() = %v", comps)
	}
	if !strings.Contains(a.String(), "construct=2ns") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestRuntimeBreakdown(t *testing.T) {
	r := RuntimeBreakdown{IO: 3, Tracking: 4, Sync: 5}
	r.Add(RuntimeBreakdown{IO: 1})
	if r.Total() != 13 || r.IO != 4 {
		t.Errorf("runtime breakdown arithmetic: %+v", r)
	}
	if !strings.Contains(r.String(), "io=4ns") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestPerWorker(t *testing.T) {
	a := RecoveryBreakdown{Reload: 8, Wait: 4}
	half := a.PerWorker(2)
	if half.Reload != 4 || half.Wait != 2 {
		t.Errorf("PerWorker(2) = %+v", half)
	}
	same := a.PerWorker(1)
	if same != a {
		t.Error("PerWorker(1) must be identity")
	}
}

func TestChargeSerial(t *testing.T) {
	var d time.Duration
	ChargeSerial(&d, 10, 4)
	if d != 40 {
		t.Errorf("ChargeSerial: %v, want 40ns", d)
	}
	ChargeSerial(&d, 10, 0) // clamps workers to 1
	if d != 50 {
		t.Errorf("ChargeSerial with 0 workers: %v, want 50ns", d)
	}
}

func TestMergeWorkerClocks(t *testing.T) {
	clocks := []WorkerClock{
		{Explore: 1, Execute: 2, Wait: 3, Abort: 4},
		{Explore: 10, Execute: 20, Wait: 30, Abort: 40},
	}
	m := MergeWorkerClocks(clocks)
	if m.Explore != 11 || m.Execute != 22 || m.Wait != 33 || m.Abort != 44 {
		t.Errorf("merge = %+v", m)
	}
}

func TestBytesAccounting(t *testing.T) {
	b := NewBytes()
	b.Written("wal", 100)
	b.Written("wal", 50)
	b.Written("input", 10)
	if b.WrittenBy("wal") != 150 || b.TotalWritten() != 160 {
		t.Errorf("written accounting: wal=%d total=%d", b.WrittenBy("wal"), b.TotalWritten())
	}
	b.Alloc("views", 100)
	b.Alloc("views", 200)
	b.Free("views", 250)
	b.Alloc("views", 10)
	if got := b.PeakLive(); got != 300 {
		t.Errorf("peak = %d, want 300", got)
	}
	b.Free("views", 1000) // clamps at zero
	b.Alloc("views", 5)
	if got := b.PeakLive(); got != 300 {
		t.Errorf("peak after clamp = %d, want 300", got)
	}
	cats := b.Categories()
	if len(cats) != 3 || cats[0] != "input" {
		t.Errorf("Categories() = %v", cats)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %f", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Errorf("zero-duration throughput = %f, want 0", got)
	}
}

func TestSinceAndSerialTimer(t *testing.T) {
	var d time.Duration
	stop := Since(&d)
	time.Sleep(time.Millisecond)
	stop()
	if d < time.Millisecond {
		t.Errorf("Since measured %v", d)
	}
	var s time.Duration
	stop = SerialTimer(&s, 3)
	time.Sleep(time.Millisecond)
	stop()
	if s < 3*time.Millisecond {
		t.Errorf("SerialTimer measured %v, want >= 3ms aggregate", s)
	}
}
