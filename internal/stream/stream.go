// Package stream is the integration surface for continuous operation: it
// connects an input Source and an output Sink to a core.System and drives
// processing epoch by epoch, forwarding exactly-once outputs downstream as
// their durability gates open.
//
// In the paper's deployment picture (Section II-C) the node is "connected
// to external sources/sinks through a reliable network"; Source and Sink
// are those endpoints. A deployment supplies its own implementations
// (message queue consumers, transactional sinks); the package ships
// adapters for the common cases — a workload generator source, a bounded
// source, function and memory sinks.
package stream

import (
	"fmt"

	"morphstreamr/internal/core"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Source yields input events in timestamp order. Next returns ok=false
// when the stream is exhausted (a batch boundary is still honoured).
//
// After a crash the engine replays persisted inputs itself; the Source is
// only asked for events the engine has never seen, so implementations
// need no rewind support.
type Source interface {
	Next() (types.Event, bool)
}

// Sink receives released outputs, in release order, exactly once.
type Sink interface {
	Emit(outs []types.Output) error
}

// Pipeline drives a System from a Source to a Sink.
type Pipeline struct {
	Sys    *core.System
	Source Source
	Sink   Sink
	// BatchSize overrides the system's configured punctuation interval
	// when positive.
	BatchSize int

	emitted int // outputs already forwarded to the sink
}

// NewPipeline assembles a pipeline. The sink starts at the system's
// current delivery ledger position, so re-attaching after recovery never
// re-emits outputs that reached a sink before the crash.
func NewPipeline(sys *core.System, src Source, sink Sink) *Pipeline {
	return &Pipeline{Sys: sys, Source: src, Sink: sink, emitted: len(sys.Engine.Delivered())}
}

// Step pulls one epoch's worth of events, processes it, and forwards any
// newly released outputs. It returns done=true when the source is
// exhausted (any final partial batch is still processed first).
func (p *Pipeline) Step() (done bool, err error) {
	n := p.BatchSize
	if n <= 0 {
		n = p.Sys.Cfg.BatchSize
	}
	batch := make([]types.Event, 0, n)
	for len(batch) < n {
		ev, ok := p.Source.Next()
		if !ok {
			done = true
			break
		}
		batch = append(batch, ev)
	}
	if len(batch) > 0 {
		if err := p.Sys.ProcessBatch(batch); err != nil {
			return done, fmt.Errorf("stream: %w", err)
		}
	}
	if err := p.flush(); err != nil {
		return done, err
	}
	return done, nil
}

// Run steps until the source is exhausted or maxEpochs have been
// processed (0 = unlimited).
func (p *Pipeline) Run(maxEpochs int) error {
	for i := 0; maxEpochs <= 0 || i < maxEpochs; i++ {
		done, err := p.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return nil
}

// flush forwards outputs released since the last flush.
func (p *Pipeline) flush() error {
	delivered := p.Sys.Engine.Delivered()
	if p.emitted >= len(delivered) {
		return nil
	}
	batch := delivered[p.emitted:]
	if err := p.Sink.Emit(batch); err != nil {
		return fmt.Errorf("stream: sink: %w", err)
	}
	p.emitted = len(delivered)
	return nil
}

// GeneratorSource adapts a workload generator into a (bounded or
// unbounded) Source.
type GeneratorSource struct {
	Gen workload.Generator
	// Limit bounds the total events yielded; 0 means unbounded.
	Limit int

	yielded int
}

// Next implements Source.
func (g *GeneratorSource) Next() (types.Event, bool) {
	if g.Limit > 0 && g.yielded >= g.Limit {
		return types.Event{}, false
	}
	g.yielded++
	return g.Gen.Next(), true
}

// SliceSource yields a fixed set of events.
type SliceSource struct {
	Events []types.Event
	pos    int
}

// Next implements Source.
func (s *SliceSource) Next() (types.Event, bool) {
	if s.pos >= len(s.Events) {
		return types.Event{}, false
	}
	ev := s.Events[s.pos]
	s.pos++
	return ev, true
}

// Skip advances past events the engine already consumed (used when
// re-attaching a SliceSource after recovery).
func (s *SliceSource) Skip(n int) { s.pos += n }

// MemorySink accumulates outputs in memory.
type MemorySink struct {
	Outputs []types.Output
}

// Emit implements Sink.
func (m *MemorySink) Emit(outs []types.Output) error {
	m.Outputs = append(m.Outputs, outs...)
	return nil
}

// FuncSink adapts a function into a Sink.
type FuncSink func(outs []types.Output) error

// Emit implements Sink.
func (f FuncSink) Emit(outs []types.Output) error { return f(outs) }
