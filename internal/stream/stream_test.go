package stream

import (
	"errors"
	"sort"
	"testing"

	"morphstreamr/internal/core"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

func newSys(t *testing.T, kind ftapi.Kind) (*core.System, workload.Generator) {
	t.Helper()
	p := workload.DefaultSLParams()
	p.Rows = 512
	gen := workload.NewSL(p)
	sys, err := core.New(gen.App(), core.Config{
		RunShape: core.RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 4},
		FT:       kind, BatchSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// TestPipelineEndToEnd: events flow source -> system -> sink with every
// output arriving exactly once and matching the oracle.
func TestPipelineEndToEnd(t *testing.T) {
	sys, gen := newSys(t, ftapi.MSR)
	events := workload.Batch(gen, 800) // 8 epochs of 100
	want := oracle.New(sys.App).Run(events)

	sink := &MemorySink{}
	p := NewPipeline(sys, &SliceSource{Events: events}, sink)
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(sink.Outputs) != len(want) {
		t.Fatalf("sink received %d outputs, want %d", len(sink.Outputs), len(want))
	}
	sort.Slice(sink.Outputs, func(i, j int) bool {
		return sink.Outputs[i].EventSeq < sink.Outputs[j].EventSeq
	})
	for i := range want {
		if sink.Outputs[i].EventSeq != want[i].EventSeq {
			t.Fatalf("output %d: got event %d, want %d", i, sink.Outputs[i].EventSeq, want[i].EventSeq)
		}
	}
}

// TestPipelineCrashResume: a pipeline re-attached to a recovered system
// must not re-emit outputs a sink already saw, and must deliver the rest.
func TestPipelineCrashResume(t *testing.T) {
	sys, gen := newSys(t, ftapi.MSR)
	events := workload.Batch(gen, 800)
	want := oracle.New(sys.App).Run(events)

	sink := &MemorySink{}
	src := &SliceSource{Events: events}
	p := NewPipeline(sys, src, sink)
	// Process five epochs, then crash.
	for i := 0; i < 5; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sys.Crash()
	recovered, report, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The recovered engine already holds epochs the source fed before the
	// crash; the source continues from the first unseen event.
	consumed := int(report.LastEpoch) * 100
	src2 := &SliceSource{Events: events}
	src2.Skip(consumed)
	p2 := NewPipeline(recovered, src2, sink)
	if err := p2.Run(0); err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]int)
	for _, out := range sink.Outputs {
		seen[out.EventSeq]++
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("event %d emitted %d times", seq, n)
		}
	}
	if len(sink.Outputs) != len(want) {
		t.Fatalf("sink received %d outputs, want %d", len(sink.Outputs), len(want))
	}
}

// TestPipelinePartialFinalBatch: a source that ends mid-batch still gets
// its tail processed.
func TestPipelinePartialFinalBatch(t *testing.T) {
	sys, gen := newSys(t, ftapi.CKPT)
	events := workload.Batch(gen, 250) // 2.5 epochs of 100
	sink := &MemorySink{}
	p := NewPipeline(sys, &SliceSource{Events: events}, sink)
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine.Events(); got != 250 {
		t.Errorf("engine processed %d events, want 250", got)
	}
}

// TestPipelineSinkErrorPropagates.
func TestPipelineSinkErrorPropagates(t *testing.T) {
	sys, gen := newSys(t, ftapi.MSR)
	boom := errors.New("downstream unavailable")
	p := NewPipeline(sys, &SliceSource{Events: workload.Batch(gen, 100)},
		FuncSink(func([]types.Output) error { return boom }))
	if _, err := p.Step(); err == nil || !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

// TestGeneratorSourceBounded.
func TestGeneratorSourceBounded(t *testing.T) {
	p := workload.DefaultTPParams()
	p.Segments = 64
	src := &GeneratorSource{Gen: workload.NewTP(p), Limit: 42}
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
		if n > 100 {
			t.Fatal("bounded source did not stop")
		}
	}
	if n != 42 {
		t.Errorf("yielded %d events, want 42", n)
	}
}

// TestPipelineRunMaxEpochs.
func TestPipelineRunMaxEpochs(t *testing.T) {
	sys, gen := newSys(t, ftapi.MSR)
	src := &GeneratorSource{Gen: gen} // unbounded
	p := NewPipeline(sys, src, &MemorySink{})
	if err := p.Run(3); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine.Epoch(); got != 3 {
		t.Errorf("processed %d epochs, want 3", got)
	}
}
