package engine

import (
	"errors"
	"reflect"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// drawBatches pre-generates one run's epoch batches from a fresh seed.
func drawBatches(seed int64, epochs, size int) [][]types.Event {
	gen := slGen(seed)
	batches := make([][]types.Event, epochs)
	for i := range batches {
		batches[i] = workload.Batch(gen, size)
	}
	return batches
}

// pipelineEngine assembles an engine over a tracing device with the
// Pipeline flag set as requested.
func pipelineEngine(t *testing.T, kind ftapi.Kind, pipeline bool) (*Engine, *storage.Trace) {
	t.Helper()
	trace := storage.NewTrace(storage.NewMem())
	e := newEngine(t, kind, slGen(0), trace, 2, 4)
	e.cfg.Pipeline = pipeline
	return e, trace
}

// TestPipelineEquivalence: a pipelined run is observably identical to the
// sequential run — same store, same delivered outputs in the same order,
// same pending counts, and the exact same durable write sequence.
func TestPipelineEquivalence(t *testing.T) {
	for _, kind := range []ftapi.Kind{ftapi.WAL, ftapi.MSR, ftapi.CKPT} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			const epochs, size = 10, 96 // crosses commit and snapshot markers
			batches := drawBatches(11, epochs, size)

			seq, seqTrace := pipelineEngine(t, kind, false)
			if err := seq.ProcessEpochs(batches); err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			pip, pipTrace := pipelineEngine(t, kind, true)
			if err := pip.ProcessEpochs(batches); err != nil {
				t.Fatalf("pipelined run: %v", err)
			}

			if seq.Epoch() != pip.Epoch() {
				t.Fatalf("epoch: sequential %d, pipelined %d", seq.Epoch(), pip.Epoch())
			}
			if !seq.Store().Equal(pip.Store()) {
				t.Fatalf("stores diverge: %v", seq.Store().Diff(pip.Store(), 5))
			}
			if !reflect.DeepEqual(seq.Delivered(), pip.Delivered()) {
				t.Fatalf("delivered ledgers diverge: %d vs %d outputs",
					len(seq.Delivered()), len(pip.Delivered()))
			}
			if seq.PendingOutputs() != pip.PendingOutputs() {
				t.Fatalf("pending outputs: sequential %d, pipelined %d",
					seq.PendingOutputs(), pip.PendingOutputs())
			}
			// The recovery invariants lean on the durable write sequence
			// being schedule-independent; compare it site by site (order,
			// kind, log, epoch, and payload size all must match).
			if !reflect.DeepEqual(seqTrace.Sites(), pipTrace.Sites()) {
				t.Fatalf("durable write sequences diverge:\nseq: %v\npip: %v",
					seqTrace.Sites(), pipTrace.Sites())
			}
		})
	}
}

// TestPipelineRecoveryEquivalence: crash after a pipelined run and recover;
// the result must match recovery from the sequential run's device.
func TestPipelineRecoveryEquivalence(t *testing.T) {
	const epochs, size = 7, 80 // ends between markers: uncommitted tail
	batches := drawBatches(23, epochs, size)

	recovered := make(map[bool]*Engine)
	for _, pipeline := range []bool{false, true} {
		e, trace := pipelineEngine(t, ftapi.MSR, pipeline)
		if err := e.ProcessEpochs(batches); err != nil {
			t.Fatalf("pipeline=%v: %v", pipeline, err)
		}
		e.Crash()
		cfg := e.cfg
		cfg.Device = trace.Inner
		cfg.Bytes = metrics.NewBytes()
		cfg.Mechanism = msr.New(trace.Inner, cfg.Bytes, msr.Default())
		e2, _, err := Recover(cfg)
		if err != nil {
			t.Fatalf("pipeline=%v: recover: %v", pipeline, err)
		}
		recovered[pipeline] = e2
	}
	if !recovered[false].Store().Equal(recovered[true].Store()) {
		t.Fatalf("recovered stores diverge: %v",
			recovered[false].Store().Diff(recovered[true].Store(), 5))
	}
	if recovered[false].Epoch() != recovered[true].Epoch() {
		t.Fatalf("recovered epochs diverge: %d vs %d",
			recovered[false].Epoch(), recovered[true].Epoch())
	}
}

// TestPipelineCrashSurfacesOnce: a device failure mid-run surfaces exactly
// one error from ProcessEpochs, marks the engine crashed, and joins the
// builder goroutine (the -race runner would flag a leaked builder touching
// the recycler).
func TestPipelineCrashSurfacesOnce(t *testing.T) {
	const epochs, size = 8, 64
	batches := drawBatches(31, epochs, size)
	// Die on the 5th durable write: mid-run, after at least one commit.
	dev := storage.NewFaultyMode(storage.NewMem(), 4, storage.FailStop, "")
	e := newEngine(t, ftapi.WAL, slGen(0), dev, 2, 4)
	e.cfg.Pipeline = true

	err := e.ProcessEpochs(batches)
	if err == nil {
		t.Fatal("faulty device never surfaced an error")
	}
	if errors.Is(err, ErrCrashed) {
		t.Fatal("first error must be the device failure, not ErrCrashed")
	}
	if !errors.Is(e.ProcessEpoch(batches[0]), ErrCrashed) {
		t.Fatal("engine not marked crashed after pipelined failure")
	}
	if !errors.Is(e.ProcessEpochs(batches), ErrCrashed) {
		t.Fatal("ProcessEpochs on a crashed engine must return ErrCrashed")
	}
}
