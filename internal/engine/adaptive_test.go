package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"morphstreamr/internal/adaptive"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// transcript renders the full durable content of a Mem device — every log
// record and blob, in order — so two runs can be compared byte-for-byte.
func transcript(t *testing.T, dev *storage.Mem) string {
	t.Helper()
	var b strings.Builder
	for _, log := range []string{storage.LogInput, storage.LogFT} {
		recs, err := dev.ReadLog(log)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			fmt.Fprintf(&b, "%s@%d:%x\n", log, r.Epoch, r.Payload)
		}
	}
	for _, blob := range []string{storage.BlobSnapshot, storage.BlobMeta} {
		if p, ok, err := dev.ReadBlob(blob); err != nil {
			t.Fatal(err)
		} else if ok {
			fmt.Fprintf(&b, "%s:%x\n", blob, p)
		}
	}
	return b.String()
}

// adaptiveEngine builds a WAL engine over a fresh Mem device with the given
// adaptive settings, processes epochs, and returns it with its device.
func adaptiveEngine(t *testing.T, shape types.RunShape, budget int64, force *adaptive.Strategy, epochs, epochSize int) (*Engine, *storage.Mem) {
	t.Helper()
	gen := slGen(42)
	dev := storage.NewMem()
	e := newEngine(t, ftapi.WAL, gen, dev, shape.CommitEvery, shape.SnapshotEvery)
	e.cfg.RunShape = shape
	// Rebuild through the public constructor so the adaptive wiring runs.
	cfg := e.cfg
	cfg.AdaptiveBudget = budget
	cfg.AdaptiveForce = force
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	for i := 0; i < epochs; i++ {
		if err := e2.ProcessEpoch(workload.Batch(gen, epochSize)); err != nil {
			t.Fatal(err)
		}
	}
	return e2, dev
}

// TestAdaptiveDurableTranscriptPin: with commit morphing off (zero budget),
// an adaptive run's durable write sequence is byte-identical to the static
// run of the same shape — whatever strategies the controller morphed
// through, the sealed records, group commits, and snapshots must not
// betray it. This is the invariant that lets adaptivity coexist with
// crash recovery unchanged.
func TestAdaptiveDurableTranscriptPin(t *testing.T) {
	shape := types.RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 4}

	static := shape
	gen := slGen(42)
	devS := storage.NewMem()
	eS := newEngine(t, ftapi.WAL, gen, devS, static.CommitEvery, static.SnapshotEvery)
	cfgS := eS.cfg
	cfgS.RunShape = static
	eS, err := New(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := eS.ProcessEpoch(workload.Batch(gen, 64)); err != nil {
			t.Fatal(err)
		}
	}

	adaptiveShape := shape
	adaptiveShape.Adaptive = true
	eA, devA := adaptiveEngine(t, adaptiveShape, 0, nil, 8, 64)

	if got, want := transcript(t, devA), transcript(t, devS); got != want {
		t.Fatalf("adaptive durable transcript diverges from static:\nadaptive:\n%s\nstatic:\n%s", got, want)
	}
	if !reflect.DeepEqual(eA.Delivered(), eS.Delivered()) {
		t.Fatal("adaptive delivered outputs diverge from static")
	}
	if !eA.Store().Equal(eS.Store()) {
		t.Fatalf("adaptive final state diverges from static: %v", eA.Store().Diff(eS.Store(), 5))
	}
}

// TestAdaptiveDeterminism: two adaptive runs with commit morphing ON are
// durably identical to each other. Strategy choices may differ run to run
// (they react to wall-clock feedback), but the commit-granularity rule is
// a pure function of buffered bytes — so the durable history cannot
// flutter.
func TestAdaptiveDeterminism(t *testing.T) {
	shape := types.RunShape{Workers: 4, CommitEvery: 4, SnapshotEvery: 4, Adaptive: true}
	_, dev1 := adaptiveEngine(t, shape, 1500, nil, 8, 64)
	_, dev2 := adaptiveEngine(t, shape, 1500, nil, 8, 64)
	if t1, t2 := transcript(t, dev1), transcript(t, dev2); t1 != t2 {
		t.Fatalf("two adaptive runs diverge durably:\nrun1:\n%s\nrun2:\n%s", t1, t2)
	}
}

// TestAdaptiveCommitMorph: a tiny budget forces per-epoch commits, a huge
// budget keeps the configured interval.
func TestAdaptiveCommitMorph(t *testing.T) {
	shape := types.RunShape{Workers: 2, CommitEvery: 4, SnapshotEvery: 4, Adaptive: true}

	tight, _ := adaptiveEngine(t, shape, 1, nil, 1, 64)
	if got := tight.CommittedEpoch(); got != 1 {
		t.Fatalf("tiny budget: committed epoch %d after epoch 1, want 1 (per-epoch commits)", got)
	}

	loose, _ := adaptiveEngine(t, shape, 1<<40, nil, 1, 64)
	if got := loose.CommittedEpoch(); got != 0 {
		t.Fatalf("huge budget: committed epoch %d after epoch 1, want 0 (configured interval)", got)
	}
}

// TestAdaptiveForce: the override pins the controller (and the run still
// matches the oracle-by-proxy static transcript, since strategy never
// affects durable bytes).
func TestAdaptiveForce(t *testing.T) {
	shape := types.RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 4, Adaptive: true}
	for _, impl := range []string{adaptive.ImplSeq, adaptive.ImplChanRef, adaptive.ImplSteal} {
		force := &adaptive.Strategy{Impl: impl, Workers: 2}
		e, _ := adaptiveEngine(t, shape, 0, force, 4, 64)
		if got := e.Adaptive().Current(); got != *force {
			t.Fatalf("forced %v, controller reports %v", *force, got)
		}
		if n := e.Store().NumRecords(); n == 0 {
			t.Fatalf("forced %s run left an empty store", impl)
		}
	}
}
