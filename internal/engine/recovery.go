package engine

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/vtime"
)

// RecoveryReport quantifies one recovery run: the six-way breakdown of
// Figure 11 (aggregate thread-time; divide by workers for wall-clock
// scale), the wall-clock duration, and the replayed volume. Recovery
// throughput (Figure 13/14) is EventsReplayed divided by Wall.
type RecoveryReport struct {
	Breakdown metrics.RecoveryBreakdown
	// CommitIO is time spent re-sealing and re-committing the uncommitted
	// tail, outside the six-way decomposition.
	CommitIO time.Duration
	// Wall is the real wall-clock duration of the recovery run on this
	// host (single-threaded replay plus simulation overhead); use
	// SimWall for the recovery time a W-worker machine would take.
	Wall time.Duration
	// Workers is the parallelism the recovery was simulated at.
	Workers int
	// Shard is the group shard identity of the recovered engine
	// (Config.Shard; zero for unsharded engines).
	Shard int
	// EventsReplayed counts input events between snapshot and failure point.
	EventsReplayed int
	// SnapshotEpoch, CommittedEpoch, and LastEpoch locate the recovery:
	// state restored from SnapshotEpoch, mechanism log replayed through
	// CommittedEpoch, inputs reprocessed through LastEpoch.
	SnapshotEpoch  uint64
	CommittedEpoch uint64
	LastEpoch      uint64
	// Profile is the recovery profiler's report (per-worker virtual-time
	// decomposition, phase table, critical-path bounds, stall
	// attribution); nil unless Config.RecoveryProfiler was set.
	Profile *vtime.Profile
}

// SimWall is the simulated wall-clock recovery time under the configured
// worker count: the aggregate thread-time breakdown divided by workers
// (see metrics.RecoveryBreakdown's accounting convention). This is the
// "recovery time" of Figures 2 and 11.
func (r *RecoveryReport) SimWall() time.Duration {
	w := r.Workers
	if w < 1 {
		w = 1
	}
	return (r.Breakdown.Total() + r.CommitIO*time.Duration(w)) / time.Duration(w)
}

// Throughput returns the recovery throughput in events per simulated
// second — the y-axis of Figures 13 and 14.
func (r *RecoveryReport) Throughput() float64 {
	return metrics.Throughput(r.EventsReplayed, r.SimWall())
}

// Recover rebuilds a working engine from the durable device after a crash,
// following the protocol of Figure 7:
//
//  1. restore application state from the latest snapshot;
//  2. reload persisted input events;
//  3. let the mechanism replay its committed epochs (outputs suppressed —
//     they were delivered before the crash);
//  4. reprocess the uncommitted tail through the normal pipeline (outputs
//     delivered — their durability gate never fired before the crash).
//
// The configuration must match the crashed engine's (same application,
// same worker count, a fresh Mechanism instance of the same kind), and
// Device must be the surviving device.
func Recover(cfg Config) (*Engine, *RecoveryReport, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if e.cfg.Mechanism.Kind() == ftapi.NAT {
		return nil, nil, fmt.Errorf("engine: native execution persists nothing; recovery impossible")
	}
	report := &RecoveryReport{}
	start := time.Now()

	// Restore from checkpoint (Figure 7 steps 1-2). Device reads are real
	// time (the throttle models the paper's SSD); state restore and input
	// decode charge the calibrated virtual cost model so recovery times
	// stay deterministic (see package vtime).
	costs := vtime.Calibrate()
	logRead := e.cfg.Obs.Begin(0, obs.CatRecovery, "log-read", 0)
	readStop := metrics.SerialTimer(&report.Breakdown.Reload, e.cfg.Workers)
	blob, ok, err := e.cfg.Device.ReadBlob(storage.BlobSnapshot)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: recover: %w", err)
	}
	// Under asynchronous commit, mechanism replay must not cross the
	// delivery watermark: a commit record may be durable whose outputs
	// never released; those epochs reprocess through the tail path.
	commitLimit := uint64(1<<63 - 1)
	if e.cfg.AsyncCommit {
		wm, wok, err := e.cfg.Device.ReadBlob(storage.BlobMeta)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: recover watermark: %w", err)
		}
		// Async engine that never released anything yet reads as zero; the
		// clamp below raises it to the snapshot epoch.
		commitLimit = 0
		if wok {
			if m, merr := storage.DecodeManifestKind(wm, manifestKindDelivery); merr == nil {
				commitLimit = m.Epoch
			} else if len(wm) == 8 {
				// Pre-manifest watermark blob (a device written by an older
				// build): a bare big-endian epoch.
				commitLimit = binary.BigEndian.Uint64(wm)
			}
		}
	}
	readStop()
	logRead.End()

	rebuild := e.cfg.Obs.Begin(0, obs.CatRecovery, "rebuild", 0)
	prof := e.cfg.RecoveryProfiler
	var snapEpoch uint64
	if ok {
		snapEpoch, err = decodeSnapshotBlob(blob, e.st)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: recover snapshot: %w", err)
		}
		metrics.ChargeSerial(&report.Breakdown.Reload,
			time.Duration(e.st.NumRecords())*costs.Compare, e.cfg.Workers)
		prof.SerialPhase("snapshot-restore", time.Duration(e.st.NumRecords())*costs.Compare)
	}

	// Compose the delta chain on top of the base (or on the initial state
	// when no base committed yet): each checkpoint-log record above the base
	// epoch restores its partitions and advances the snapshot frontier. A
	// decode failure on the final record is a torn delta append — that
	// marker never completed, nothing downstream (GC included) acted on it,
	// so it is logically truncated like any torn tail.
	snapEpoch, restored, err := e.composeDeltas(snapEpoch)
	if err != nil {
		return nil, nil, err
	}
	if restored > 0 {
		metrics.ChargeSerial(&report.Breakdown.Reload,
			time.Duration(restored)*costs.Compare, e.cfg.Workers)
		prof.SerialPhase("delta-restore", time.Duration(restored)*costs.Compare)
	}

	// Reload input events after the snapshot frontier (Figure 7 step 4),
	// streamed through the log cursor: the segment store seeks past the
	// checkpoint-covered prefix instead of materialising the whole log. A
	// decode failure on the log's final record is a torn tail: the device
	// died mid-append, the epoch never processed to completion and nothing
	// downstream can reference it, so it is logically truncated here.
	// Failures anywhere earlier are real corruption.
	inCur, err := storage.ReadFrom(e.cfg.Device, storage.LogInput, snapEpoch)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: recover inputs: %w", err)
	}
	var inputs []ftapi.EpochEvents
	nEvents := 0
	tornInput := uint64(0)
	rec, okNext, err := inCur.Next()
	if err != nil {
		inCur.Close()
		return nil, nil, fmt.Errorf("engine: recover inputs: %w", err)
	}
	for okNext {
		next, nok, nerr := inCur.Next()
		if nerr != nil {
			inCur.Close()
			return nil, nil, fmt.Errorf("engine: recover inputs: %w", nerr)
		}
		events, derr := codec.DecodeEvents(rec.Payload)
		if derr != nil {
			if !nok {
				tornInput = rec.Epoch
				break
			}
			inCur.Close()
			return nil, nil, fmt.Errorf("engine: recover inputs epoch %d: %w", rec.Epoch, derr)
		}
		inputs = append(inputs, ftapi.EpochEvents{Epoch: rec.Epoch, Events: events})
		nEvents += len(events)
		rec, okNext = next, nok
	}
	inCur.Close()
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Epoch < inputs[j].Epoch })
	report.Breakdown.Reload += time.Duration(nEvents) * costs.Record
	prof.SpreadPhase("input-decode", time.Duration(nEvents)*costs.Record)
	rebuild.End()

	// Mechanism-specific replay of committed epochs (Figure 7 steps 3-7).
	replay := e.cfg.Obs.Begin(0, obs.CatRecovery, "replay", 0)
	if commitLimit < snapEpoch {
		commitLimit = snapEpoch
	}
	rc := &ftapi.RecoveryContext{
		App:           e.cfg.App,
		Store:         e.st,
		Device:        e.cfg.Device,
		Workers:       e.cfg.Workers,
		SnapshotEpoch: snapEpoch,
		Inputs:        inputs,
		CommitLimit:   commitLimit,
		Breakdown:     &report.Breakdown,
		Prof:          prof,
	}
	committed, err := e.cfg.Mechanism.Recover(rc)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: recover (%v): %w", e.cfg.Mechanism.Kind(), err)
	}
	if committed < snapEpoch {
		committed = snapEpoch
	}
	// A torn input record can only be the epoch the crash interrupted —
	// input persists before processing, so no commit record may cover it.
	// A mechanism claiming otherwise replayed state whose inputs are gone.
	if tornInput != 0 && committed >= tornInput {
		return nil, nil, fmt.Errorf("engine: recover: input log torn at epoch %d but %v committed through %d",
			tornInput, e.cfg.Mechanism.Kind(), committed)
	}

	// Reprocess the uncommitted tail through the normal pipeline. Inputs
	// are already durable; outputs deliver because their gate never fired.
	e.epoch = committed
	e.lastCommit = committed
	e.lastSnap = snapEpoch
	for _, ee := range inputs {
		if ee.Epoch <= committed {
			report.EventsReplayed += len(ee.Events)
			continue
		}
		if ee.Epoch != e.epoch+1 {
			return nil, nil, fmt.Errorf("engine: recover: input log gap: have epoch %d, expected %d",
				ee.Epoch, e.epoch+1)
		}
		ioBefore := e.runtime.IO
		if err := e.processEpochAt(ee.Epoch, ee.Events, false, &report.Breakdown); err != nil {
			return nil, nil, fmt.Errorf("engine: recover tail epoch %d: %w", ee.Epoch, err)
		}
		report.CommitIO += e.runtime.IO - ioBefore
		e.epoch = ee.Epoch
		report.EventsReplayed += len(ee.Events)
	}

	replay.End()
	if prof != nil {
		p := prof.Profile()
		report.Profile = &p
	}
	if reg := e.cfg.Obs.Registry(); reg != nil {
		reg.Counter("recovery.count").Inc()
		reg.Counter("recovery.events_replayed").Add(int64(report.EventsReplayed))
		reg.Histogram("recovery.seconds").ObserveSince(start)
		if p := report.Profile; p != nil {
			reg.Gauge("recovery.vtimeline_us").Set(p.Timeline.Microseconds())
			reg.Gauge("recovery.critical_path_us").Set(p.CritPath.Microseconds())
			reg.Histogram("recovery.cp_ratio").Observe(p.CPRatio)
			reg.Histogram("recovery.stall_share").Observe(p.StallShare())
		}
	}
	if p := report.Profile; p != nil && e.cfg.Obs != nil {
		e.cfg.Obs.SetView("recovery", func() any { return p })
	}

	report.Wall = time.Since(start)
	report.Workers = e.cfg.Workers
	report.Shard = e.cfg.Shard
	report.SnapshotEpoch = snapEpoch
	report.CommittedEpoch = committed
	report.LastEpoch = e.epoch
	// Runtime accounting restarts clean: recovery costs live in the report.
	e.runtime = metrics.RuntimeBreakdown{}
	e.procWall, e.totalWall, e.events = 0, 0, 0
	return e, report, nil
}
