package engine

import (
	"strings"
	"testing"

	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/ft/wal"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// newIncEngine builds an engine with incremental checkpoints on: snapshots
// every 2 epochs, a full base only every second snapshot.
func newIncEngine(t *testing.T, dev storage.Device, gen workload.Generator) *Engine {
	t.Helper()
	bytes := metrics.NewBytes()
	e, err := New(Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: 2},
		Bytes:    bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIncrementalCadence: with SnapshotEvery=2 and SnapshotBase=2, markers
// fire at epochs 2 (delta), 4 (base), 6 (delta): after six epochs the
// device holds a base blob for epoch 4 and exactly one live delta record
// (epoch 6) in the checkpoint log — the base's GC released the composed
// delta from epoch 2.
func TestIncrementalCadence(t *testing.T) {
	gen := slGen(11)
	dev := storage.NewMem()
	e := newIncEngine(t, dev, gen)
	for i := 0; i < 6; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
			t.Fatal(err)
		}
	}
	blob, ok, err := dev.ReadBlob(storage.BlobSnapshot)
	if err != nil || !ok {
		t.Fatalf("base blob missing: ok=%v err=%v", ok, err)
	}
	chk, err := New(Config{
		App: gen.App(), Device: storage.NewMem(), Mechanism: wal.New(storage.NewMem(), metrics.NewBytes()),
		RunShape: types.RunShape{Workers: 1}, Bytes: metrics.NewBytes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	baseEp, err := decodeSnapshotBlob(blob, chk.Store())
	if err != nil {
		t.Fatal(err)
	}
	if baseEp != 4 {
		t.Errorf("base blob at epoch %d, want 4", baseEp)
	}
	recs, err := dev.ReadLog(storage.LogCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch != 6 {
		eps := make([]uint64, len(recs))
		for i, r := range recs {
			eps[i] = r.Epoch
		}
		t.Errorf("checkpoint log holds deltas at epochs %v, want [6]", eps)
	}
}

// TestIncrementalDeltaBytes: a delta record covers only the partitions the
// interval dirtied, so on a workload whose per-interval working set is a
// fraction of the table it must be strictly smaller than the full base blob.
func TestIncrementalDeltaBytes(t *testing.T) {
	p := workload.DefaultSLParams()
	p.Seed, p.Rows = 12, 4096
	gen := workload.NewSL(p)
	dev := storage.NewMem()
	e := newIncEngine(t, dev, gen)
	for i := 0; i < 6; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 20)); err != nil {
			t.Fatal(err)
		}
	}
	blob, ok, _ := dev.ReadBlob(storage.BlobSnapshot)
	if !ok {
		t.Fatal("base blob missing")
	}
	recs, _ := dev.ReadLog(storage.LogCkpt)
	if len(recs) == 0 {
		t.Fatal("no delta records")
	}
	for _, rec := range recs {
		if len(rec.Payload) >= len(blob) {
			t.Errorf("delta at epoch %d is %d bytes, not below the %d-byte base",
				rec.Epoch, len(rec.Payload), len(blob))
		}
	}
}

// TestIncrementalRecoveryComposesDeltas: recovery from base + delta chain
// restores the exact pre-crash store and reports the composed frontier.
func TestIncrementalRecoveryComposesDeltas(t *testing.T) {
	gen := slGen(13)
	dev := storage.NewMem()
	e := newIncEngine(t, dev, gen)
	for i := 0; i < 6; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
			t.Fatal(err)
		}
	}
	want := e.Store()
	e.Crash()

	bytes := metrics.NewBytes()
	e2, report, err := Recover(Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: 2},
		Bytes:    bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.SnapshotEpoch != 6 {
		t.Errorf("composed snapshot frontier %d, want 6 (base 4 + delta 6)", report.SnapshotEpoch)
	}
	if !want.Equal(e2.Store()) {
		t.Errorf("recovered store diverges: %v", want.Diff(e2.Store(), 3))
	}
}

// TestIncrementalTornDelta: a torn final delta record is logically
// truncated — recovery composes through the last whole delta and replays
// the rest from the input log — while the same garbage followed by another
// record is corruption and must fail loudly.
func TestIncrementalTornDelta(t *testing.T) {
	gen := slGen(13)
	dev := storage.NewMem()
	e := newIncEngine(t, dev, gen)
	for i := 0; i < 6; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
			t.Fatal(err)
		}
	}
	want := e.Store()
	e.Crash()
	if err := dev.Append(storage.LogCkpt, storage.Record{Epoch: 7, Payload: []byte{0xff, 0x01}}); err != nil {
		t.Fatal(err)
	}

	bytes := metrics.NewBytes()
	e2, report, err := Recover(Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: 2},
		Bytes:    bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.SnapshotEpoch != 6 {
		t.Errorf("torn delta: composed frontier %d, want 6", report.SnapshotEpoch)
	}
	if !want.Equal(e2.Store()) {
		t.Errorf("recovered store diverges: %v", want.Diff(e2.Store(), 3))
	}

	// The same garbage mid-log (another record follows) is corruption.
	if err := dev.Append(storage.LogCkpt, storage.Record{Epoch: 8, Payload: []byte{0x00}}); err != nil {
		t.Fatal(err)
	}
	_, _, err = Recover(Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, metrics.NewBytes()),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: 2},
		Bytes:    metrics.NewBytes(),
	})
	if err == nil || !strings.Contains(err.Error(), "delta") {
		t.Errorf("mid-log delta corruption: got %v, want a delta decode error", err)
	}
}

// TestIncrementalAgreesWithFull: the same workload run with and without
// incremental checkpoints must recover identical stores — the delta chain
// is an encoding of the snapshot, not a different semantics.
func TestIncrementalAgreesWithFull(t *testing.T) {
	run := func(base int) *Engine {
		gen := slGen(14)
		dev := storage.NewMem()
		bytes := metrics.NewBytes()
		e, err := New(Config{
			App: gen.App(), Device: dev, Mechanism: msr.New(dev, bytes, msr.Default()),
			RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: base},
			Bytes:    bytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := e.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
				t.Fatal(err)
			}
		}
		e.Crash()
		b2 := metrics.NewBytes()
		e2, _, err := Recover(Config{
			App: gen.App(), Device: dev, Mechanism: msr.New(dev, b2, msr.Default()),
			RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: base},
			Bytes:    b2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e2
	}
	full, inc := run(1), run(3)
	if !full.Store().Equal(inc.Store()) {
		t.Errorf("full and incremental recoveries disagree: %v", full.Store().Diff(inc.Store(), 3))
	}
}
