package engine

import (
	"time"

	"morphstreamr/internal/obs"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// builtEpoch is one epoch's stream-processing result handed from the
// builder goroutine to the barrier goroutine: the batch index plus the
// structural task precedence graph (bases not yet captured).
type builtEpoch struct {
	idx int
	g   *tpg.Graph
}

// ProcessEpochs ingests a run of punctuation intervals, one batch per
// epoch, in order. Semantically it is exactly a loop of ProcessEpoch calls
// — same outputs, same durable write sequence, same error behaviour (the
// first failing epoch surfaces its error and the engine marks itself
// crashed; earlier epochs' effects stand).
//
// With Config.Pipeline set, it additionally overlaps stream processing
// with transaction processing across adjacent epochs: a builder goroutine
// preprocesses events and constructs the structural TPG for epoch N+1
// while the caller's goroutine executes epoch N. The overlap is safe
// because structural construction reads nothing but the batch itself —
// epoch-start dependency values are captured from the store at the
// barrier, after epoch N has fully executed — and every effectful step
// (input persistence, execution, sealing, markers, output release) stays
// on the caller's goroutine in epoch order. A crash at any point therefore
// leaves the device in a state reachable by the sequential schedule, which
// is what the recovery invariants (and the crash-point sweep) assume.
func (e *Engine) ProcessEpochs(batches [][]types.Event) error {
	if !e.cfg.Pipeline || len(batches) < 2 {
		for _, b := range batches {
			if err := e.ProcessEpoch(b); err != nil {
				return err
			}
		}
		return nil
	}
	if e.crashed {
		return ErrCrashed
	}

	// The unbuffered channel gives one epoch of lookahead: the builder
	// blocks handing over epoch N+1 until the barrier goroutine is done
	// with epoch N, so at most two graphs are live at once.
	built := make(chan builtEpoch)
	stop := make(chan struct{})
	// The builder emits its spans on lane 1 — the caller's goroutine owns
	// lane 0 — so a trace shows the compute/construct overlap directly.
	base := e.epoch
	go func() {
		defer close(built)
		for i := range batches {
			ep := base + uint64(i) + 1
			sp := e.cfg.Obs.Begin(1, obs.CatEpoch, "preprocess", ep)
			txns := e.preprocess(batches[i])
			sp.End()
			sp = e.cfg.Obs.Begin(1, obs.CatEpoch, "construct", ep)
			g := e.builder.Build(txns)
			sp.End()
			select {
			case built <- builtEpoch{idx: i, g: g}:
			case <-stop:
				// The barrier goroutine hit an error and will not drain
				// us; drop the graph back into the recycler and quit.
				e.builder.Release(g)
				return
			}
		}
	}()

	for range batches {
		start := time.Now() // include any stall waiting on the builder
		b := <-built
		e.epoch++
		err := e.pipelinedEpoch(e.epoch, batches[b.idx], b.g)
		if err != nil {
			e.markCrashed()
			close(stop)
			for range built { // unblock and join the builder
			}
			return err
		}
		e.totalWall += time.Since(start)
		e.observeEpoch(start, len(batches[b.idx]))
		if e.cfg.OnEpoch != nil {
			e.cfg.OnEpoch(e.epoch)
		}
	}
	return nil
}

// pipelinedEpoch is the barrier half of one pipelined epoch: everything
// except preprocessing and structural graph construction, in the same
// order the sequential path performs it. Input persistence deliberately
// happens here (not on the builder goroutine) so the durable write
// sequence is identical to ProcessEpoch's.
func (e *Engine) pipelinedEpoch(ep uint64, events []types.Event, g *tpg.Graph) error {
	if err := e.persistEpochInput(ep, events, true); err != nil {
		return err
	}
	proc := time.Now()
	// Barrier: the previous epoch has fully executed and sealed, so the
	// store now holds this epoch's start-state; capture the dependency
	// base values structural construction had to leave open.
	g.CaptureBases(e.st.Get)
	return e.finishEpoch(ep, events, g, proc)
}
