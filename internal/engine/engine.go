// Package engine implements the transactional stream processing engine of
// Figure 4: Execution Managers (stream + transaction processing over a
// task precedence graph), a Logging Manager (the pluggable fault-tolerance
// mechanism), and a Fault-tolerance Manager (punctuation markers, input
// persistence, snapshots, garbage collection, and the recovery driver).
//
// Processing is epoch-based: each call to ProcessEpoch handles one
// punctuation interval. Three marker kinds structure the run (Section
// VI-C): the transaction marker is the epoch boundary itself; the commit
// marker fires every CommitEvery epochs and group-commits the mechanism's
// buffered log records, releasing the covered epochs' outputs downstream;
// the snapshot marker fires every SnapshotEvery epochs, persists a
// transaction-consistent snapshot, and garbage-collects everything the
// snapshot covers.
//
// Exactly-once delivery: an epoch's outputs are released if and only if
// its covering commit record (for log-based schemes) or snapshot (for
// CKPT) is durable. Crash() models a power failure — every volatile
// structure is abandoned, only the storage device survives — and Recover
// rebuilds a working engine from the device, replaying committed epochs
// with outputs suppressed and reprocessing uncommitted ones with outputs
// delivered.
package engine

import (
	"errors"
	"fmt"
	"time"

	"morphstreamr/internal/adaptive"
	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// Advisor is implemented by mechanisms that support workload-aware log
// commitment (MSR): given the first epoch's graph, recommend a commit
// interval.
type Advisor interface {
	AdviseCommitEvery(g *tpg.Graph, snapshotEvery int) int
}

// Config assembles one engine instance.
type Config struct {
	// RunShape is the shared run-configuration surface: Workers,
	// CommitEvery, SnapshotEvery, AutoCommit, and Pipeline, with the one
	// zero-value/validation rule every configuration surface in the tree
	// uses (see types.RunShape). Pipeline overlaps stream processing with
	// transaction processing across epochs (the TStream-style
	// compute/construct overlap): when a run of epochs is submitted
	// together via ProcessEpochs, epoch N+1's preprocessing and structural
	// graph construction happen on a builder goroutine while epoch N
	// executes; every durable write and marker stays on the submitting
	// goroutine in epoch order, so the observable history — including the
	// exact durable write sequence — is identical to sequential
	// processing.
	types.RunShape
	// App is the transactional stream application to run.
	App types.App
	// Device is the durable storage surviving crashes.
	Device storage.Device
	// Mechanism is the fault-tolerance scheme; it must have been created
	// against the same Device and Bytes.
	Mechanism ftapi.Mechanism
	// AsyncCommit moves the durable group-commit write off the critical
	// path (the Lineage Stash-style direction of Section VII): the commit
	// is prepared synchronously, written on a background goroutine, and
	// its epochs' outputs release only once the write completes — so
	// exactly-once delivery is preserved while processing overlaps I/O.
	// Requires a mechanism implementing ftapi.AsyncCommitter; others fall
	// back to synchronous commits.
	AsyncCommit bool
	// AdaptiveBudget, when positive and the RunShape's Adaptive knob is on,
	// enables commit-granularity morphing: the adaptive controller targets
	// group commits of about this many buffered log bytes, choosing a
	// divisor of SnapshotEvery as the effective interval each epoch. Zero
	// keeps the configured CommitEvery — the durable write sequence is then
	// byte-identical to a non-adaptive run, which the crash-consistency
	// suite pins.
	AdaptiveBudget int64
	// AdaptiveForce pins the adaptive controller to one strategy (tests and
	// A/B measurement). Nil lets the controller decide.
	AdaptiveForce *adaptive.Strategy
	// Bytes receives artifact-size accounting; nil allocates a fresh one.
	Bytes *metrics.Bytes
	// Obs, when non-nil, receives epoch/recovery phase spans, throughput
	// counters, and latency histograms. Nil disables observability at the
	// cost of a pointer check per instrument call.
	Obs *obs.Observer
	// RecoveryProfiler, when non-nil, records the recovery replay's
	// per-virtual-worker span timeline, stall attribution, and
	// critical-path bounds (see vtime.Profiler). Nil disables profiling
	// at the cost of a pointer check per replayed unit.
	RecoveryProfiler *vtime.Profiler
	// OnEpoch, when non-nil, is called after each successfully processed
	// epoch with its number. The supervisor's watchdog uses it as the
	// liveness signal for stall detection.
	OnEpoch func(epoch uint64)
	// Sink, when non-nil, receives every batch of outputs at the moment
	// they are released downstream (in release order), in addition to the
	// engine's internal delivered ledger. It lets a supervisor accumulate
	// outputs across engine incarnations without reading an abandoned
	// engine's ledger from another goroutine.
	Sink func(outs []types.Output)
	// FireHook, when non-nil, is passed to the scheduler and runs before
	// every operation fires on the live parallel path. Chaos testing and
	// the supervisor's cancellation hooks use it; nil costs nothing.
	FireHook func(*tpg.OpNode)
	// Shard and OfShards identify this engine as shard Shard of an
	// OfShards-wide group (internal/shard). OfShards zero means an
	// unsharded engine. The identity labels the engine's observer series
	// and its recovery reports; it changes no processing behaviour.
	Shard    int
	OfShards int
	// OnWriteSet, when non-nil, receives after each executed epoch the
	// epoch number and the distinct keys its transactions wrote (the TPG's
	// chain keys — write-attempted keys, including chains whose every
	// operation aborted). The shard coordinator uses it to extract the
	// epoch's cross-shard replication delta without diffing snapshots. The
	// slice is only valid for the duration of the call.
	OnWriteSet func(epoch uint64, keys []types.Key)
	// OnCommit, when non-nil, is called each time the engine's durability
	// gate fires with the highest epoch whose outputs have just been
	// released downstream: at every commit marker for log-based mechanisms,
	// at every snapshot for CKPT (whose snapshot is its durability gate).
	// It also fires during recovery's tail reprocessing, where the markers
	// re-fire through the normal pipeline. The serving layer keys
	// exactly-once client acknowledgements to this notification.
	OnCommit func(epoch uint64)
}

func (c *Config) normalize() error {
	if c.App == nil || c.Device == nil || c.Mechanism == nil {
		return errors.New("engine: App, Device, and Mechanism are required")
	}
	if err := c.RunShape.Normalize(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if c.Bytes == nil {
		c.Bytes = metrics.NewBytes()
	}
	return nil
}

// epochOutputs buffers one epoch's outputs until their release marker.
type epochOutputs struct {
	epoch uint64
	outs  []types.Output
}

// Engine is one running TSPE instance.
type Engine struct {
	cfg    Config
	st     *store.Store
	ranges *partition.Ranges

	epoch      uint64
	lastCommit uint64
	lastSnap   uint64

	pending   []epochOutputs
	delivered []types.Output

	runtime   metrics.RuntimeBreakdown
	procWall  time.Duration
	totalWall time.Duration
	events    int

	commitEvery int // may be tuned by AutoCommit on the first epoch
	crashed     bool

	// inflight is the pending asynchronous commit, if any: once done
	// reports success, outputs up to its epoch may release.
	inflight *asyncCommit

	// builder recycles TPG memory across epochs: a graph is released back
	// to it once its epoch is sealed (mechanisms do not retain graphs),
	// so steady-state processing reuses two graphs' worth of arenas.
	builder *tpg.Builder

	// sched receives the scheduler's steal/park/stall counters when
	// observability is on (nil otherwise; the scheduler tolerates nil).
	sched *obs.SchedStats
	// commDepth mirrors the mechanism's buffered-epoch count into a gauge.
	// It is sampled on the engine goroutine at seal time — GroupCommitter's
	// Buffered is not synchronised, so a pull-gauge read from the telemetry
	// endpoint would race the commit path.
	commDepth *obs.Gauge
	buffered  interface{ Buffered() int }

	// Adaptive execution (nil unless Config.Adaptive): ctrl observes each
	// epoch's structure and feedback and picks the execution strategy; pool
	// is the persistent worker fleet it resizes (created on first use);
	// rangesBy caches chain partitions per live worker count. commSize
	// reads the mechanism's buffered group size for commit-granularity
	// morphing (nil when disabled or unsupported by the mechanism).
	ctrl     *adaptive.Controller
	pool     *scheduler.Pool
	rangesBy map[int]*partition.Ranges
	commSize interface {
		Buffered() int
		BufferedBytes() int64
	}
}

// asyncCommit tracks one background group-commit write.
type asyncCommit struct {
	epoch uint64
	done  chan error
}

// New creates an engine with fresh application state.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		st:          store.New(cfg.App.Tables()),
		commitEvery: cfg.CommitEvery,
		builder:     tpg.NewBuilder(),
	}
	e.ranges = partition.NewRanges(cfg.App.Tables(), cfg.Workers)
	if cfg.SnapshotBase > 1 {
		// Incremental checkpoints: track written partitions per snapshot
		// interval. Enabled before any processing (and before recovery
		// replay), so the dirty map covers every post-marker write.
		e.st.EnableDirtyTracking()
	}
	if cfg.Adaptive {
		e.ctrl = adaptive.New(adaptive.Config{
			MaxWorkers:  cfg.Workers,
			GroupBudget: cfg.AdaptiveBudget,
			Force:       cfg.AdaptiveForce,
			Obs:         cfg.Obs,
		})
		e.rangesBy = map[int]*partition.Ranges{cfg.Workers: e.ranges}
		if cfg.AdaptiveBudget > 0 {
			if cs, ok := cfg.Mechanism.(interface {
				Buffered() int
				BufferedBytes() int64
			}); ok {
				e.commSize = cs
			}
		}
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		e.sched = &obs.SchedStats{}
		e.sched.Register(reg)
		reg.AttachBytes("bytes", cfg.Bytes)
		// Committer queue depth: every mechanism embeds a GroupCommitter,
		// but check the interface so bespoke mechanisms remain legal.
		if b, ok := cfg.Mechanism.(interface{ Buffered() int }); ok {
			e.buffered = b
			e.commDepth = reg.Gauge("committer.depth")
		}
	}
	return e, nil
}

// Store exposes the live state for inspection and tests.
func (e *Engine) Store() *store.Store { return e.st }

// Epoch returns the number of epochs processed so far.
func (e *Engine) Epoch() uint64 { return e.epoch }

// CommitEvery returns the effective log commitment interval (after any
// workload-aware adjustment).
func (e *Engine) CommitEvery() int { return e.commitEvery }

// Delivered returns the outputs released downstream so far, in release
// order. The slice is the live ledger; callers must not mutate it.
func (e *Engine) Delivered() []types.Output { return e.delivered }

// PendingOutputs returns how many outputs await their release marker.
func (e *Engine) PendingOutputs() int {
	n := 0
	for _, p := range e.pending {
		n += len(p.outs)
	}
	return n
}

// PendingOutputsMatching returns how many buffered outputs satisfy match.
// Layered harnesses use it to account subsets of the pending ledger — the
// shard coordinator's exactly-once check counts application outputs
// separately from replication acknowledgements.
func (e *Engine) PendingOutputsMatching(match func(types.Output) bool) int {
	n := 0
	for _, p := range e.pending {
		for _, out := range p.outs {
			if match(out) {
				n++
			}
		}
	}
	return n
}

// CommittedEpoch returns the highest epoch whose commit marker has fired —
// the engine's current punctuation frontier. The shard coordinator's
// determinism test records this vector after every aligned epoch.
func (e *Engine) CommittedEpoch() uint64 { return e.lastCommit }

// Runtime returns the accumulated fault-tolerance overhead breakdown.
func (e *Engine) Runtime() metrics.RuntimeBreakdown { return e.runtime }

// Bytes returns the artifact-size accounting shared with the mechanism.
func (e *Engine) Bytes() *metrics.Bytes { return e.cfg.Bytes }

// Events returns the number of input events processed.
func (e *Engine) Events() int { return e.events }

// ProcessingWall returns wall time spent in pure stream/transaction
// processing (excluding fault-tolerance work).
func (e *Engine) ProcessingWall() time.Duration { return e.procWall }

// TotalWall returns wall time spent in ProcessEpoch overall; events/second
// against it is the runtime throughput of Figure 12a.
func (e *Engine) TotalWall() time.Duration { return e.totalWall }

// Throughput returns the runtime throughput in events per second.
func (e *Engine) Throughput() float64 { return metrics.Throughput(e.events, e.totalWall) }

// ErrCrashed is returned by ProcessEpoch after Crash.
var ErrCrashed = errors.New("engine: crashed; recover with engine.Recover")

// ProcessEpoch ingests one punctuation interval's events. Event sequence
// numbers must continue from the previous epoch (the spout's numbering).
//
// An error from the epoch pipeline — a failed input append, group commit,
// snapshot, or garbage collection — leaves volatile state that no longer
// matches the durable log (the epoch counter advanced, outputs may be
// buffered against a commit that never landed), so the engine marks itself
// crashed: the error surfaces to the caller exactly once and every further
// call returns ErrCrashed. The only way forward is engine.Recover against
// the surviving device, which is precisely what a real stoppage requires.
func (e *Engine) ProcessEpoch(events []types.Event) error {
	if e.crashed {
		return ErrCrashed
	}
	start := time.Now()
	e.epoch++
	if err := e.processEpochAt(e.epoch, events, true, nil); err != nil {
		e.markCrashed()
		return err
	}
	e.totalWall += time.Since(start)
	e.observeEpoch(start, len(events))
	if e.cfg.OnEpoch != nil {
		e.cfg.OnEpoch(e.epoch)
	}
	return nil
}

// observeEpoch accounts one completed epoch with the observer.
func (e *Engine) observeEpoch(start time.Time, events int) {
	reg := e.cfg.Obs.Registry()
	if reg == nil {
		return
	}
	reg.Counter("engine.epochs").Inc()
	reg.Counter("engine.events").Add(int64(events))
	reg.Histogram("epoch.seconds").ObserveSince(start)
	if e.cfg.OfShards > 0 {
		// Sharded groups share one observer; per-shard series keep the
		// shards distinguishable in /metrics.
		reg.Counter(fmt.Sprintf("shard.%d.epochs", e.cfg.Shard)).Inc()
		reg.Counter(fmt.Sprintf("shard.%d.events", e.cfg.Shard)).Add(int64(events))
		reg.Gauge(fmt.Sprintf("shard.%d.committed", e.cfg.Shard)).Set(int64(e.lastCommit))
	}
}

// processEpochAt runs the full epoch pipeline. persistInput is false when
// reprocessing already-persisted epochs during recovery; breakdown, when
// non-nil, receives recovery-convention timing instead of the runtime
// overhead accounting.
func (e *Engine) processEpochAt(ep uint64, events []types.Event, persistInput bool, breakdown *metrics.RecoveryBreakdown) error {
	if breakdown == nil {
		if err := e.persistEpochInput(ep, events, persistInput); err != nil {
			return err
		}
		// Stream processing phase: preprocessing builds state transactions
		// and the structural task precedence graph on recycled memory;
		// epoch-start dependency values come from the store afterwards
		// (they are only valid once the previous epoch has fully executed,
		// which also lets the pipelined path build structure early).
		proc := time.Now()
		sp := e.cfg.Obs.Begin(0, obs.CatEpoch, "preprocess", ep)
		txns := e.preprocess(events)
		sp.End()
		sp = e.cfg.Obs.Begin(0, obs.CatEpoch, "construct", ep)
		g := e.builder.Build(txns)
		g.CaptureBases(e.st.Get)
		sp.End()
		return e.finishEpoch(ep, events, g, proc)
	}
	return e.reprocessEpoch(ep, events, breakdown)
}

// persistEpochInput persists input events before processing (Figure 10
// step 1), so the epoch survives a crash at any later point.
func (e *Engine) persistEpochInput(ep uint64, events []types.Event, persistInput bool) error {
	if !persistInput || e.cfg.Mechanism.Kind() == ftapi.NAT {
		return nil
	}
	t0 := time.Now()
	// Pooled encode buffer: the device copies the payload on Append, so the
	// buffer recycles as soon as the write returns.
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	codec.EncodeEventsInto(w, events)
	payload := w.Bytes()
	if err := e.cfg.Device.Append(storage.LogInput, storage.Record{Epoch: ep, Payload: payload}); err != nil {
		return fmt.Errorf("engine: persist input: %w", err)
	}
	e.cfg.Bytes.Written("input", int64(len(payload)))
	e.runtime.IO += time.Since(t0)
	return nil
}

// preprocess turns raw events into state transactions. It reads no engine
// state besides the immutable App, so the pipelined path may run it on the
// builder goroutine.
func (e *Engine) preprocess(events []types.Event) []*types.Txn {
	txns := make([]*types.Txn, 0, len(events))
	for _, ev := range events {
		txn := e.cfg.App.Preprocess(ev)
		txns = append(txns, &txn)
	}
	return txns
}

// reprocessEpoch replays one epoch during recovery on the virtual W-worker
// simulation (see package vtime), so that CKPT-style full reprocessing is
// charged the stalls and load imbalance a real multicore would experience.
func (e *Engine) reprocessEpoch(ep uint64, events []types.Event, breakdown *metrics.RecoveryBreakdown) error {
	proc := time.Now()
	txns := e.preprocess(events)
	g := tpg.Build(txns, e.st.Get)
	// Preprocessing and graph construction parallelize across the
	// stream-processing executors; charge aggregate thread-time.
	costs := vtime.Calibrate()
	breakdown.Construct += costs.GraphCost(len(events), g.NumOps)
	prof := e.cfg.RecoveryProfiler
	prof.SpreadPhase("construct", costs.GraphCost(len(events), g.NumOps))

	for _, ch := range g.ChainList {
		ch.Owner = e.ranges.Of(ch.Key)
	}
	prof.BeginPhase("reprocess")
	result := vtime.SimulateGraphProf(g, e.st, e.cfg.Workers, costs, prof)
	prof.EndPhase(result.Makespan)
	result.Charge(breakdown, false)
	// Full reprocessing replays the entire stream-processing dataflow —
	// operator queues, postprocessing, output regeneration — which
	// log-based redo paths bypass; charge it as parallelizable
	// thread-time.
	breakdown.Execute += time.Duration(len(events)) * (costs.Pipeline + costs.Postprocess)
	prof.SpreadPhase("pipeline", time.Duration(len(events))*(costs.Pipeline+costs.Postprocess))

	// Postprocessing: outputs are buffered until their release marker. One
	// scratch view serves the whole loop (zero-copy record view — the
	// Postprocess contract forbids retaining it).
	outs := make([]types.Output, 0, len(txns))
	var view types.ExecutedTxn
	for _, tn := range g.Txns {
		outs = append(outs, e.cfg.App.Postprocess(tn.ExecutedInto(&view)))
	}
	e.pending = append(e.pending, epochOutputs{epoch: ep, outs: outs})
	e.procWall += time.Since(proc)
	e.events += len(events)
	e.notifyWriteSet(ep, g)

	if e.cfg.Mechanism.Kind() == ftapi.NAT {
		e.release(ep)
		return nil
	}
	return e.sealAndMark(ep, events, g)
}

// notifyWriteSet surfaces the epoch's chain keys to Config.OnWriteSet. It
// runs on both the live path and the recovery tail reprocessing path, so a
// coordinator sees the write set of every epoch executed through the
// normal pipeline (mechanism-replayed committed epochs do not execute
// through it; coordinators fall back to a conservative full delta there).
func (e *Engine) notifyWriteSet(ep uint64, g *tpg.Graph) {
	if e.cfg.OnWriteSet == nil {
		return
	}
	keys := make([]types.Key, len(g.ChainList))
	for i, ch := range g.ChainList {
		keys[i] = ch.Key
	}
	e.cfg.OnWriteSet(ep, keys)
}

// finishEpoch executes an already-built epoch graph and drives it through
// postprocessing, sealing, and the commit/snapshot markers. proc is when
// the epoch's stream-processing phase started (for procWall accounting).
// The graph is handed back to the recycler once the mechanism has sealed
// the epoch; on error the engine is crashing anyway, so it is simply
// dropped.
func (e *Engine) finishEpoch(ep uint64, events []types.Event, g *tpg.Graph, proc time.Time) error {
	// Workload-aware log commitment: on the very first epoch, let the
	// mechanism inspect the graph and pick the commit interval.
	if e.cfg.AutoCommit && ep == 1 {
		if adv, ok := e.cfg.Mechanism.(Advisor); ok {
			if ce := adv.AdviseCommitEvery(g, e.cfg.SnapshotEvery); ce > 0 {
				e.commitEvery = ce
			}
		}
	}

	// Transaction processing phase: real parallel exploration of the graph.
	sp := e.cfg.Obs.Begin(0, obs.CatEpoch, "execute", ep)
	var err error
	if e.ctrl != nil {
		err = e.executeAdaptive(ep, g)
	} else {
		_, err = scheduler.Run(g, e.st, scheduler.Options{
			Workers:  e.cfg.Workers,
			Assign:   func(c *tpg.Chain) int { return e.ranges.Of(c.Key) },
			FireHook: e.cfg.FireHook,
			Stats:    e.sched,
		})
	}
	sp.End()
	if err != nil {
		return fmt.Errorf("engine: epoch %d: %w", ep, err)
	}

	// Postprocessing: outputs are buffered until their release marker. One
	// scratch view serves the whole loop (see reprocessEpoch).
	outs := make([]types.Output, 0, len(g.Txns))
	var view types.ExecutedTxn
	for _, tn := range g.Txns {
		outs = append(outs, e.cfg.App.Postprocess(tn.ExecutedInto(&view)))
	}
	e.pending = append(e.pending, epochOutputs{epoch: ep, outs: outs})
	e.procWall += time.Since(proc)
	e.events += len(events)
	e.notifyWriteSet(ep, g)

	if e.cfg.Mechanism.Kind() == ftapi.NAT {
		// Native execution has no durability gate; release immediately.
		e.release(ep)
		e.builder.Release(g)
		return nil
	}
	return e.sealAndMark(ep, events, g)
}

// executeAdaptive runs one epoch under the adaptive controller: the graph's
// structural signals pick the strategy (scheduler implementation and worker
// count), execution feedback trains the controller for later epochs, and —
// critically — the chain owners are re-labelled to the canonical
// Config.Workers-way partition before the mechanism seals the epoch, so the
// durable record order never depends on what strategy happened to execute
// the epoch. Durable artifacts of an adaptive run are byte-identical to a
// static run's (commit-granularity morphing, off by default, is the one
// documented exception).
func (e *Engine) executeAdaptive(ep uint64, g *tpg.Graph) error {
	maxChain := 0
	for _, ch := range g.ChainList {
		if len(ch.Ops) > maxChain {
			maxChain = len(ch.Ops)
		}
	}
	strat := e.ctrl.Decide(adaptive.Signals{
		Epoch:    ep,
		Ops:      g.NumOps,
		Chains:   len(g.ChainList),
		MaxChain: maxChain,
		Heads:    len(g.Heads()),
	})
	impl := strat.Impl
	if e.cfg.FireHook != nil && impl != adaptive.ImplSteal {
		// The sequential and chanref paths do not run fire hooks; chaos
		// injection and supervisor cancellation must not silently lapse, so
		// hooked engines always execute on the (hook-aware) pool.
		impl = adaptive.ImplSteal
	}

	var eps obs.SchedStats
	t0 := time.Now()
	var err error
	switch impl {
	case adaptive.ImplSeq:
		_, err = scheduler.RunSequential(g, e.st, false)
	case adaptive.ImplChanRef:
		_, err = scheduler.RunChanRef(g, e.st, scheduler.Options{
			Workers: strat.Workers,
			Assign:  e.assignFor(strat.Workers),
			Stats:   &eps,
		})
	default:
		if e.pool == nil {
			e.pool = scheduler.NewPool(e.cfg.Workers, e.sched)
		}
		_, err = e.pool.Run(g, e.st, scheduler.Options{
			Workers:  strat.Workers,
			Assign:   e.assignFor(strat.Workers),
			FireHook: e.cfg.FireHook,
			Stats:    &eps,
		})
	}
	wall := time.Since(t0)

	// Canonical re-labelling: SealEpoch orders records by chain owner, so
	// restore the configured partition whatever the strategy assigned.
	for _, ch := range g.ChainList {
		ch.Owner = e.ranges.Of(ch.Key)
	}
	if err != nil {
		return err
	}
	e.mergeSched(&eps)
	// Feedback carries the impl that actually executed (a hook-forced pool
	// run must not be credited to the sequential side's grain EWMA).
	ran := strat
	ran.Impl = impl
	e.ctrl.Feedback(adaptive.Feedback{
		Epoch:      ep,
		Strategy:   ran,
		Wall:       wall,
		Ops:        g.NumOps,
		Steals:     eps.Steals.Load(),
		StealFails: eps.StealFails.Load(),
		Parks:      eps.Parks.Load(),
		Stalls:     eps.Stalls.Load(),
	})
	return nil
}

// assignFor returns the chain partitioner for a live worker count, caching
// the range tables the controller's worker morphs alternate between.
func (e *Engine) assignFor(w int) func(*tpg.Chain) int {
	r, ok := e.rangesBy[w]
	if !ok {
		r = partition.NewRanges(e.cfg.App.Tables(), w)
		e.rangesBy[w] = r
	}
	return func(c *tpg.Chain) int { return r.Of(c.Key) }
}

// mergeSched folds one adaptive epoch's scheduler counters into the
// registry-attached block (the adaptive path needs per-epoch counters for
// controller feedback, so it cannot hand e.sched to the scheduler
// directly).
func (e *Engine) mergeSched(eps *obs.SchedStats) {
	if e.sched == nil {
		return
	}
	e.sched.Steals.Add(eps.Steals.Load())
	e.sched.StealFails.Add(eps.StealFails.Load())
	e.sched.Parks.Add(eps.Parks.Load())
	e.sched.Wakes.Add(eps.Wakes.Load())
	e.sched.Stalls.Add(eps.Stalls.Load())
	e.sched.Panics.Add(eps.Panics.Load())
}

// Adaptive exposes the engine's adaptive controller (nil unless the
// Adaptive knob is on); tests and benchmarks read its decision trace.
func (e *Engine) Adaptive() *adaptive.Controller { return e.ctrl }

// Close releases the engine's background resources — today the adaptive
// worker pool. It is safe on any engine and idempotent; a crashed or
// recovered-from engine is closed automatically.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// markCrashed transitions the engine to the crashed state and releases its
// background resources (a crashed engine never executes again).
func (e *Engine) markCrashed() {
	e.crashed = true
	e.Close()
}

// sealAndMark records the epoch with the fault-tolerance mechanism and
// processes any commit/snapshot markers that fire at this epoch.
func (e *Engine) sealAndMark(ep uint64, events []types.Event, g *tpg.Graph) error {
	// Record intermediate results / log records (Figure 10 step 2).
	t0 := time.Now()
	e.cfg.Mechanism.SealEpoch(&ftapi.EpochResult{
		Epoch:   ep,
		Events:  events,
		Graph:   g,
		Workers: e.cfg.Workers,
	})
	e.runtime.Tracking += time.Since(t0)
	// Mechanisms encode everything they need during SealEpoch and retain
	// no graph references (the ftapi contract), so the graph's memory can
	// be recycled for a later epoch.
	e.builder.Release(g)
	if e.commDepth != nil {
		e.commDepth.Set(int64(e.buffered.Buffered()))
	}

	// Commit marker: group commit, then release the covered outputs. With
	// AsyncCommit the durable write happens on a background goroutine and
	// the outputs release when it completes (checked at the next marker or
	// drained at snapshots); without it, both happen here.
	//
	// Commit-granularity morphing (adaptive, budgeted): the interval is a
	// stateless function of the buffered group's byte size, so a recovered
	// engine reprocessing the tail recomputes the exact pre-crash commit
	// cadence. Every candidate divides SnapshotEvery, so a snapshot epoch
	// always commits first.
	interval := uint64(e.commitEvery)
	if e.ctrl != nil && e.commSize != nil {
		if n := e.commSize.Buffered(); n > 0 {
			perEpoch := e.commSize.BufferedBytes() / int64(n)
			interval = uint64(e.ctrl.CommitInterval(perEpoch, e.commitEvery, e.cfg.SnapshotEvery))
		}
	}
	if ep%interval == 0 {
		if err := e.commitMarker(ep); err != nil {
			return fmt.Errorf("engine: epoch %d: %w", ep, err)
		}
	}

	// Snapshot marker. Any in-flight commit must land first: the snapshot
	// garbage-collects the log the write appends to.
	if ep%uint64(e.cfg.SnapshotEvery) == 0 {
		if err := e.drainInflight(); err != nil {
			return fmt.Errorf("engine: epoch %d: %w", ep, err)
		}
		if err := e.snapshot(ep); err != nil {
			return fmt.Errorf("engine: epoch %d: %w", ep, err)
		}
	}
	return nil
}

// commitMarker performs one commit-marker firing (see sealAndMark).
func (e *Engine) commitMarker(ep uint64) error {
	sp := e.cfg.Obs.Begin(0, obs.CatEpoch, "commit", ep)
	defer sp.End()
	if reg := e.cfg.Obs.Registry(); reg != nil {
		t := time.Now()
		defer func() {
			reg.Counter("engine.commits").Inc()
			reg.Histogram("commit.seconds").ObserveSince(t)
		}()
	}
	ac, _ := e.cfg.Mechanism.(ftapi.AsyncCommitter)
	if e.cfg.AsyncCommit && ac != nil {
		// The previous in-flight write must finish first: group
		// commits are ordered, and the device is one channel.
		if err := e.drainInflight(); err != nil {
			return err
		}
		t0 := time.Now()
		write, ok := ac.PrepareCommit(ep)
		e.runtime.IO += time.Since(t0)
		if ok {
			fl := &asyncCommit{epoch: ep, done: make(chan error, 1)}
			e.inflight = fl
			go func() { fl.done <- write() }()
			return nil
		}
		return e.commitVisible(ep)
	}
	t0 := time.Now()
	if err := e.cfg.Mechanism.Commit(ep); err != nil {
		return err
	}
	e.runtime.IO += time.Since(t0)
	t0 = time.Now()
	if err := e.commitVisible(ep); err != nil {
		return err
	}
	e.runtime.Sync += time.Since(t0)
	return nil
}

// commitVisible marks epochs <= ep durably committed: the watermark moves
// and, for log-gated mechanisms, their outputs release downstream.
//
// Under asynchronous commit the release is decoupled from the commit
// record, so a durable delivery watermark records how far outputs have
// actually been released; recovery caps mechanism replay at the watermark
// and reprocesses the rest with outputs delivered. The watermark write and
// the release model one atomic step (a transactional sink), the same
// assumption the synchronous path makes about commit+release.
func (e *Engine) commitVisible(ep uint64) error {
	e.lastCommit = ep
	if e.cfg.Mechanism.Kind() == ftapi.CKPT {
		return nil
	}
	if e.cfg.AsyncCommit {
		t0 := time.Now()
		m := storage.Manifest{Kind: manifestKindDelivery, Epoch: ep}
		if err := e.cfg.Device.WriteBlob(storage.BlobMeta, m.Encode()); err != nil {
			return fmt.Errorf("delivery watermark: %w", err)
		}
		e.runtime.IO += time.Since(t0)
	}
	e.release(ep)
	if e.cfg.OnCommit != nil {
		e.cfg.OnCommit(ep)
	}
	return nil
}

// drainInflight waits for the pending asynchronous commit, if any, and
// makes its epochs visible. The wait is synchronisation at a marker.
func (e *Engine) drainInflight() error {
	if e.inflight == nil {
		return nil
	}
	t0 := time.Now()
	err := <-e.inflight.done
	e.runtime.Sync += time.Since(t0)
	if err != nil {
		e.inflight = nil
		return err
	}
	ep := e.inflight.epoch
	e.inflight = nil
	return e.commitVisible(ep)
}

// release moves pending outputs of epochs <= upTo to the delivered ledger
// (and the configured Sink, if any).
func (e *Engine) release(upTo uint64) {
	kept := e.pending[:0]
	for _, p := range e.pending {
		if p.epoch <= upTo {
			e.delivered = append(e.delivered, p.outs...)
			if e.cfg.Sink != nil {
				e.cfg.Sink(p.outs)
			}
		} else {
			kept = append(kept, p)
		}
	}
	e.pending = kept
}

// snapshot persists a transaction-consistent snapshot and garbage-collects
// everything it covers (Figure 10 steps 4-6).
func (e *Engine) snapshot(ep uint64) error {
	sp := e.cfg.Obs.Begin(0, obs.CatEpoch, "snapshot", ep)
	defer sp.End()
	if reg := e.cfg.Obs.Registry(); reg != nil {
		t := time.Now()
		defer func() {
			reg.Counter("engine.snapshots").Inc()
			reg.Histogram("snapshot.seconds").ObserveSince(t)
		}()
	}
	t0 := time.Now()
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	if e.snapshotIsBase(ep) {
		encodeSnapshotBlobInto(w, ep, e.st.Snapshot())
		payload := w.Bytes()
		if err := e.cfg.Device.WriteBlob(storage.BlobSnapshot, payload); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		e.cfg.Bytes.Written("snapshot", int64(len(payload)))
	} else {
		// Incremental marker: persist only the partitions written since the
		// previous marker, appended to the checkpoint log at this epoch.
		encodeDeltaInto(w, e.st)
		payload := w.Bytes()
		if err := e.cfg.Device.Append(storage.LogCkpt, storage.Record{Epoch: ep, Payload: payload}); err != nil {
			return fmt.Errorf("snapshot delta: %w", err)
		}
		e.cfg.Bytes.Written("snapshot-delta", int64(len(payload)))
	}
	if e.st.DirtyTracking() {
		// The marker is durable: the next interval starts clean. (On write
		// failure the engine crashes with bits intact, which only over-
		// includes the next delta — never under.)
		e.st.ResetDirty()
	}
	e.runtime.IO += time.Since(t0)

	// CKPT releases outputs only here: the snapshot is its durability gate.
	t0 = time.Now()
	if e.cfg.Mechanism.Kind() == ftapi.CKPT {
		e.release(ep)
		if e.cfg.OnCommit != nil {
			e.cfg.OnCommit(ep)
		}
	}
	e.lastSnap = ep
	e.runtime.Sync += time.Since(t0)

	// Garbage collection: input events and log records covered by the
	// snapshot are dead (Figure 10: "deleted upon the completion of the
	// current checkpoint").
	t0 = time.Now()
	if e.snapshotIsBase(ep) {
		// Deltas at or below the base are composed into it; their segments
		// release through the single GC path. This (like all GC) runs only
		// after outputs released: the blob write is the marker's one atomic
		// commit point, and no device write may come between it and the
		// release for CKPT, whose snapshot is the durability gate.
		if err := storage.Release(e.cfg.Device, storage.LogCkpt, ep); err != nil {
			return fmt.Errorf("snapshot gc: %w", err)
		}
	}
	if err := storage.Release(e.cfg.Device, storage.LogInput, ep); err != nil {
		return fmt.Errorf("snapshot gc: %w", err)
	}
	if err := storage.Release(e.cfg.Device, storage.LogFT, ep); err != nil {
		return fmt.Errorf("snapshot gc: %w", err)
	}
	e.cfg.Mechanism.GC(ep)
	e.runtime.IO += time.Since(t0)
	return nil
}

// Crash models a single-node stoppage: the engine becomes unusable and
// only the storage device's content survives. The engine object remains
// inspectable (its ledger tells tests what had been delivered), but
// rejects further processing.
func (e *Engine) Crash() {
	e.markCrashed()
}

// encodeSnapshotBlob frames a snapshot with its covering epoch, making the
// blob self-describing: recovery learns the restart epoch from the blob
// itself, so blob and metadata can never disagree.
func encodeSnapshotBlob(ep uint64, snap *store.Snapshot) []byte {
	w := codec.NewBuffer(1024)
	encodeSnapshotBlobInto(w, ep, snap)
	return w.Bytes()
}

// encodeSnapshotBlobInto appends the encodeSnapshotBlob framing to w — the
// snapshot writer's arena pass (the blob is the largest single allocation
// of the epoch loop, so reusing its buffer matters most).
func encodeSnapshotBlobInto(w *codec.Buffer, ep uint64, snap *store.Snapshot) {
	tables := make([]codec.SnapshotTable, 0, len(snap.Tables))
	for _, t := range snap.Tables {
		tables = append(tables, codec.SnapshotTable{ID: t.Spec.ID, Init: t.Spec.Init, Vals: t.Vals})
	}
	w.Uvarint(ep)
	codec.EncodeSnapshotInto(w, tables)
}

// decodeSnapshotBlob parses encodeSnapshotBlob output and restores it into
// the store.
func decodeSnapshotBlob(payload []byte, st *store.Store) (uint64, error) {
	r := codec.NewReader(payload)
	ep := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	tables, err := codec.DecodeSnapshot(payload[len(payload)-r.Remaining():])
	if err != nil {
		return 0, err
	}
	snap := &store.Snapshot{}
	for _, t := range tables {
		snap.Tables = append(snap.Tables, store.TableSnapshot{
			Spec: types.TableSpec{ID: t.ID, Rows: uint32(len(t.Vals)), Init: t.Init},
			Vals: t.Vals,
		})
	}
	if err := st.Restore(snap); err != nil {
		return 0, err
	}
	return ep, nil
}
