package engine

import (
	"errors"
	"strings"
	"testing"

	"morphstreamr/internal/ft/checkpoint"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/ft/wal"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

func slGen(seed int64) workload.Generator {
	p := workload.DefaultSLParams()
	p.Seed, p.Rows = seed, 512
	return workload.NewSL(p)
}

func newEngine(t *testing.T, kind ftapi.Kind, gen workload.Generator, dev storage.Device, commitEvery, snapEvery int) *Engine {
	t.Helper()
	bytes := metrics.NewBytes()
	var mech ftapi.Mechanism
	switch kind {
	case ftapi.CKPT:
		mech = checkpoint.New()
	case ftapi.WAL:
		mech = wal.New(dev, bytes)
	case ftapi.MSR:
		mech = msr.New(dev, bytes, msr.Default())
	default:
		t.Fatalf("unsupported kind %v in this helper", kind)
	}
	e, err := New(Config{
		App: gen.App(), Device: dev, Mechanism: mech,
		RunShape: types.RunShape{Workers: 2, CommitEvery: commitEvery, SnapshotEvery: snapEvery},
		Bytes:    bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	gen := slGen(1)
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	_, err := New(Config{
		App: gen.App(), Device: storage.NewMem(), Mechanism: checkpoint.New(),
		RunShape: types.RunShape{CommitEvery: 3, SnapshotEvery: 8},
	})
	if err == nil || !strings.Contains(err.Error(), "multiple") {
		t.Errorf("misaligned markers accepted: %v", err)
	}
}

// TestOutputReleasePolicies: log-based schemes release at commit markers,
// CKPT only at snapshot markers.
func TestOutputReleasePolicies(t *testing.T) {
	gen := slGen(2)
	dev := storage.NewMem()
	e := newEngine(t, ftapi.WAL, gen, dev, 2, 8)
	if err := e.ProcessEpoch(workload.Batch(gen, 100)); err != nil {
		t.Fatal(err)
	}
	if len(e.Delivered()) != 0 || e.PendingOutputs() != 100 {
		t.Fatalf("epoch 1 (no marker): delivered=%d pending=%d", len(e.Delivered()), e.PendingOutputs())
	}
	if err := e.ProcessEpoch(workload.Batch(gen, 100)); err != nil {
		t.Fatal(err)
	}
	if len(e.Delivered()) != 200 || e.PendingOutputs() != 0 {
		t.Fatalf("epoch 2 (commit marker): delivered=%d pending=%d", len(e.Delivered()), e.PendingOutputs())
	}

	genC := slGen(2)
	ec := newEngine(t, ftapi.CKPT, genC, storage.NewMem(), 2, 4)
	for i := 0; i < 3; i++ {
		if err := ec.ProcessEpoch(workload.Batch(genC, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ec.Delivered()) != 0 {
		t.Fatalf("CKPT released %d outputs before any snapshot", len(ec.Delivered()))
	}
	if err := ec.ProcessEpoch(workload.Batch(genC, 50)); err != nil {
		t.Fatal(err)
	}
	if len(ec.Delivered()) != 200 {
		t.Fatalf("CKPT at snapshot: delivered=%d, want 200", len(ec.Delivered()))
	}
}

// TestGCShrinksLogs: after a snapshot, covered input and FT records are
// truncated from the device.
func TestGCShrinksLogs(t *testing.T) {
	gen := slGen(3)
	dev := storage.NewMem()
	e := newEngine(t, ftapi.WAL, gen, dev, 1, 4)
	for i := 0; i < 4; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
			t.Fatal(err)
		}
	}
	inputs, _ := dev.ReadLog(storage.LogInput)
	ftrecs, _ := dev.ReadLog(storage.LogFT)
	if len(inputs) != 0 || len(ftrecs) != 0 {
		t.Errorf("after snapshot: %d input records, %d ft records; GC failed", len(inputs), len(ftrecs))
	}
	blob, ok, _ := dev.ReadBlob(storage.BlobSnapshot)
	if !ok || len(blob) == 0 {
		t.Error("snapshot blob missing")
	}
}

// TestRuntimeBreakdownPopulated: a logging scheme must charge I/O and
// tracking time.
func TestRuntimeBreakdownPopulated(t *testing.T) {
	gen := slGen(4)
	e := newEngine(t, ftapi.WAL, gen, storage.NewMem(), 1, 8)
	for i := 0; i < 2; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 200)); err != nil {
			t.Fatal(err)
		}
	}
	rt := e.Runtime()
	if rt.IO == 0 || rt.Tracking == 0 {
		t.Errorf("runtime breakdown = %v; IO and tracking must be non-zero", rt)
	}
	if e.Events() != 400 || e.Throughput() <= 0 || e.ProcessingWall() <= 0 {
		t.Errorf("counters: events=%d tput=%f", e.Events(), e.Throughput())
	}
}

// TestAutoCommitConsultsAdvisor: with AutoCommit on, an MSR engine tunes
// its commit interval from the first epoch's profile.
func TestAutoCommitConsultsAdvisor(t *testing.T) {
	p := workload.DefaultGSParams()
	p.Rows, p.Theta, p.Reads = 4096, 0, 0 // LSFD: uniform, no deps
	gen := workload.NewGS(p)
	dev := storage.NewMem()
	bytes := metrics.NewBytes()
	e, err := New(Config{
		App: gen.App(), Device: dev, Mechanism: msr.New(dev, bytes, msr.Default()),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 8, AutoCommit: true},
		Bytes:    bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessEpoch(workload.Batch(gen, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := e.CommitEvery(); got != 8 {
		t.Errorf("LSFD auto commit interval = %d, want 8", got)
	}
}

func TestCrashRejectsWork(t *testing.T) {
	gen := slGen(5)
	e := newEngine(t, ftapi.WAL, gen, storage.NewMem(), 1, 8)
	e.Crash()
	if err := e.ProcessEpoch(nil); err != ErrCrashed {
		t.Errorf("crashed engine returned %v", err)
	}
}

func TestNativeRecoveryImpossible(t *testing.T) {
	gen := slGen(6)
	dev := storage.NewMem()
	_, _, err := Recover(Config{
		App: gen.App(), Device: dev, Mechanism: nativeStub{},
		RunShape: types.RunShape{Workers: 1},
	})
	if err == nil {
		t.Error("native recovery must fail")
	}
}

type nativeStub struct{}

func (nativeStub) Kind() ftapi.Kind                               { return ftapi.NAT }
func (nativeStub) SealEpoch(*ftapi.EpochResult)                   {}
func (nativeStub) Commit(uint64) error                            { return nil }
func (nativeStub) GC(uint64)                                      {}
func (nativeStub) Recover(*ftapi.RecoveryContext) (uint64, error) { return 0, nil }

// TestSnapshotBlobRoundTrip: the self-describing snapshot blob restores
// both the epoch and the state.
func TestSnapshotBlobRoundTrip(t *testing.T) {
	st := store.New([]types.TableSpec{{ID: 0, Rows: 4, Init: 9}})
	st.Set(types.Key{Table: 0, Row: 2}, -5)
	blob := encodeSnapshotBlob(17, st.Snapshot())

	st2 := store.New([]types.TableSpec{{ID: 0, Rows: 4, Init: 9}})
	ep, err := decodeSnapshotBlob(blob, st2)
	if err != nil || ep != 17 {
		t.Fatalf("decode: epoch=%d err=%v", ep, err)
	}
	if !st.Equal(st2) {
		t.Errorf("state mismatch after round trip: %v", st.Diff(st2, 5))
	}
}

// TestRecoveryReportShape: replayed event counts and epochs line up.
func TestRecoveryReportShape(t *testing.T) {
	gen := slGen(7)
	dev := storage.NewMem()
	bytes := metrics.NewBytes()
	cfg := Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 4},
		Bytes:    bytes,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := e.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
			t.Fatal(err)
		}
	}
	e.Crash()
	bytes2 := metrics.NewBytes()
	cfg2 := cfg
	cfg2.Mechanism = wal.New(dev, bytes2)
	cfg2.Bytes = bytes2
	e2, report, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if report.SnapshotEpoch != 4 || report.CommittedEpoch != 6 || report.LastEpoch != 6 {
		t.Errorf("report epochs = %d/%d/%d, want 4/6/6",
			report.SnapshotEpoch, report.CommittedEpoch, report.LastEpoch)
	}
	if report.EventsReplayed != 100 {
		t.Errorf("events replayed = %d, want 100", report.EventsReplayed)
	}
	if report.Wall <= 0 || report.Breakdown.Total() <= 0 {
		t.Error("report timings empty")
	}
	if report.Throughput() <= 0 {
		t.Error("recovery throughput must be positive")
	}
	// The recovered engine continues processing.
	if err := e2.ProcessEpoch(workload.Batch(gen, 50)); err != nil {
		t.Fatal(err)
	}
	if e2.Epoch() != 7 {
		t.Errorf("epoch after continue = %d, want 7", e2.Epoch())
	}
}

// TestFailedEpochMarksCrashed: once ProcessEpoch surfaces a durable-write
// failure, the engine's volatile state has diverged from the device
// (outputs buffered, store mutated, epoch counter advanced past what the
// log covers), so it must refuse further work until Recover rebuilds it.
func TestFailedEpochMarksCrashed(t *testing.T) {
	gen := slGen(9)
	dev := storage.NewFaulty(storage.NewMem(), 0)
	bytes := metrics.NewBytes()
	e, err := New(Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 2},
		Bytes:    bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessEpoch(workload.Batch(gen, 20)); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if err := e.ProcessEpoch(workload.Batch(gen, 20)); err != ErrCrashed {
		t.Fatalf("engine accepted work after a failed epoch: %v", err)
	}
}

// TestRecoverTornInputTail: a crash mid-append can leave a torn final
// input record. Recovery must discard it (the epoch never processed, so
// nothing references it) and come back in the state of the last full
// epoch — matching a clean run of the same seeded workload.
func TestRecoverTornInputTail(t *testing.T) {
	gen := slGen(10)
	inner := storage.NewMem()
	dev := storage.NewFaultyMode(inner, 2, storage.TornWrite, storage.LogInput)
	bytes := metrics.NewBytes()
	cfg := Config{
		App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
		RunShape: types.RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 8},
		Bytes:    bytes,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err = e.ProcessEpoch(workload.Batch(gen, 30))
		if i < 2 && err != nil {
			t.Fatalf("epoch %d: %v", i+1, err)
		}
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("epoch 3 input append should have torn: %v", err)
	}
	if recs, _ := inner.ReadLog(storage.LogInput); len(recs) != 3 {
		t.Fatalf("input log has %d records, want 2 intact + 1 torn", len(recs))
	}

	// Recover against the surviving (healed) medium.
	bytes2 := metrics.NewBytes()
	cfg2 := cfg
	cfg2.Device = inner
	cfg2.Mechanism = wal.New(inner, bytes2)
	cfg2.Bytes = bytes2
	e2, report, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if report.CommittedEpoch != 2 || report.LastEpoch != 2 {
		t.Fatalf("recovered to committed=%d last=%d, want 2/2 (torn epoch 3 dropped)",
			report.CommittedEpoch, report.LastEpoch)
	}

	// The recovered state matches a clean 2-epoch run of the same seed.
	genRef := slGen(10)
	ref := newEngine(t, ftapi.WAL, genRef, storage.NewMem(), 1, 8)
	for i := 0; i < 2; i++ {
		if err := ref.ProcessEpoch(workload.Batch(genRef, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if !ref.st.Equal(e2.st) {
		t.Errorf("recovered state diverges: %v", ref.st.Diff(e2.st, 5))
	}
}

// TestWriteFailuresSurface: every durable-write path must return the
// device's error instead of silently diverging state from the log.
func TestWriteFailuresSurface(t *testing.T) {
	gen := slGen(8)
	for budget := 0; budget < 12; budget++ {
		inner := storage.NewMem()
		dev := storage.NewFaulty(inner, budget)
		bytes := metrics.NewBytes()
		e, err := New(Config{
			App: gen.App(), Device: dev, Mechanism: wal.New(dev, bytes),
			RunShape: types.RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 2},
			Bytes:    bytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		failed := false
		for i := 0; i < 4; i++ {
			if err := e.ProcessEpoch(workload.Batch(gen, 20)); err != nil {
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("budget %d: unexpected error %v", budget, err)
				}
				failed = true
				break
			}
		}
		// 4 epochs of WAL need: 4 input appends + 4 commits + 2 snapshots
		// + 2*2 truncates = 14 writes; any smaller budget must fail.
		if !failed {
			t.Fatalf("budget %d: no failure surfaced", budget)
		}
	}
}
