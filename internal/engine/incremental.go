package engine

import (
	"fmt"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
)

// Incremental checkpoints (PACMAN-style delta snapshots on the bounded
// segment store). With SnapshotBase > 1 the engine persists a full base
// snapshot only on every SnapshotBase-th snapshot marker; the markers in
// between append a delta — the partitions written since the previous
// marker — to the checkpoint log. Recovery composes base + the ascending
// delta chain to reach the committed snapshot frontier, so checkpoint bytes
// scale with the write working set instead of total state.
//
// The base cadence is positional (snapshot ordinal modulo SnapshotBase):
// stateless across incarnations, so a recovered engine re-derives the exact
// pre-crash schedule from the epoch number alone.

// manifestKindDelivery tags the engine's delivery-watermark manifest
// (storage.BlobMeta) so no other layer's blob can be misread as it.
const manifestKindDelivery = "delivery"

// snapshotIsBase reports whether the marker at ep persists a full base.
func (e *Engine) snapshotIsBase(ep uint64) bool {
	if e.cfg.SnapshotBase <= 1 || !e.st.DirtyTracking() {
		return true
	}
	ord := ep / uint64(e.cfg.SnapshotEvery)
	return ord%uint64(e.cfg.SnapshotBase) == 0
}

// partDelta is one partition's section of a decoded delta record; vals are
// still relative to the table's initial value (applyDelta adds it back).
type partDelta struct {
	ref  store.PartitionRef
	vals []types.Value
}

// encodeDeltaInto frames the store's dirty partitions: a count, then per
// partition its table, partition index, and values. Partition order is the
// store's deterministic (table, partition) sort, so delta bytes are pinned
// by the byte-determinism harness like every other durable write. Values
// encode relative to the table's initial value, like the snapshot codec:
// rows a dirty partition happens to hold at init cost one byte each, so
// delta bytes track the write working set, not the partition grain.
func encodeDeltaInto(w *codec.Buffer, st *store.Store) (parts int) {
	inits := tableInits(st)
	dirty := st.DirtyPartitions()
	w.Uvarint(uint64(len(dirty)))
	for _, ref := range dirty {
		vals := st.PartitionVals(ref)
		init := inits[ref.Table]
		w.Byte(byte(ref.Table))
		w.Uvarint(uint64(ref.Part))
		w.Uvarint(uint64(len(vals)))
		for _, v := range vals {
			w.Varint(int64(v - init))
		}
	}
	return len(dirty)
}

// tableInits maps each table to its initial row value, the bias the delta
// codec encodes against.
func tableInits(st *store.Store) map[types.TableID]types.Value {
	inits := make(map[types.TableID]types.Value)
	for _, sp := range st.Specs() {
		inits[sp.ID] = sp.Init
	}
	return inits
}

// decodeDelta parses one delta record.
func decodeDelta(payload []byte) ([]partDelta, error) {
	r := codec.NewReader(payload)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("delta: partition count %d overruns payload", n)
	}
	out := make([]partDelta, 0, n)
	for i := uint64(0); i < n; i++ {
		d := partDelta{ref: store.PartitionRef{
			Table: types.TableID(r.Byte()),
			Part:  uint32(r.Uvarint()),
		}}
		nv := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nv > store.DirtyPartitionRows {
			return nil, fmt.Errorf("delta: partition %d claims %d values", i, nv)
		}
		d.vals = make([]types.Value, nv)
		for j := uint64(0); j < nv; j++ {
			d.vals[j] = types.Value(r.Varint())
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("delta: %d trailing bytes", r.Remaining())
	}
	return out, nil
}

// composeDeltas streams the checkpoint log above the base epoch and applies
// each delta in order, returning the resulting snapshot frontier and how
// many values were restored. A decode failure on the final record is a torn
// delta append (the marker never completed; no GC acted on it) and is
// logically truncated; anywhere earlier it is corruption.
func (e *Engine) composeDeltas(base uint64) (frontier uint64, restored int, err error) {
	frontier = base
	cur, err := storage.ReadFrom(e.cfg.Device, storage.LogCkpt, base)
	if err != nil {
		return 0, 0, fmt.Errorf("engine: recover deltas: %w", err)
	}
	defer cur.Close()
	rec, ok, err := cur.Next()
	if err != nil {
		return 0, 0, fmt.Errorf("engine: recover deltas: %w", err)
	}
	for ok {
		next, nok, nerr := cur.Next()
		if nerr != nil {
			return 0, 0, fmt.Errorf("engine: recover deltas: %w", nerr)
		}
		parts, derr := decodeDelta(rec.Payload)
		if derr != nil {
			if !nok {
				return frontier, restored, nil // torn tail: marker never completed
			}
			return 0, 0, fmt.Errorf("engine: recover delta epoch %d: %w", rec.Epoch, derr)
		}
		if rec.Epoch <= frontier {
			return 0, 0, fmt.Errorf("engine: recover deltas: epoch %d not above frontier %d",
				rec.Epoch, frontier)
		}
		if err := applyDelta(e.st, parts); err != nil {
			return 0, 0, fmt.Errorf("engine: recover delta epoch %d: %w", rec.Epoch, err)
		}
		for _, d := range parts {
			restored += len(d.vals)
		}
		frontier = rec.Epoch
		rec, ok = next, nok
	}
	return frontier, restored, nil
}

// applyDelta restores one decoded delta into the store, undoing the
// relative-to-init encoding.
func applyDelta(st *store.Store, parts []partDelta) error {
	inits := tableInits(st)
	for _, d := range parts {
		init := inits[d.ref.Table]
		vals := make([]types.Value, len(d.vals))
		for i, v := range d.vals {
			vals[i] = v + init
		}
		if !st.RestorePartition(d.ref, vals) {
			return fmt.Errorf("delta: partition {table %d part %d} does not fit the store",
				d.ref.Table, d.ref.Part)
		}
	}
	return nil
}
