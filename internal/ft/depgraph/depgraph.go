// Package depgraph implements DL, dependency logging in the style of
// DistDGCC (Section III-B): every committed transaction's log record
// carries the command plus its incoming dependency edges (the committed
// transactions whose writes it consumed, temporally or parametrically).
//
// At runtime the record size grows with the dependency count — the
// overhead the paper attributes to DL under complex TSP dependencies. At
// recovery the dependency graph must be rebuilt from the records before
// any replay can start (the construct time dominating DL's bars in
// Figure 11), after which transactions replay in parallel constrained by
// the graph: exactly the workload's inherent parallelism, no more.
package depgraph

import (
	"fmt"
	"slices"
	"strconv"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// Mech is the DL mechanism.
type Mech struct {
	ftapi.GroupCommitter
	bytes *metrics.Bytes
	deps  *ftapi.DepTracker
}

// New creates the DL mechanism writing to dev, accounting into bytes.
func New(dev storage.Device, bytes *metrics.Bytes) *Mech {
	return &Mech{
		GroupCommitter: ftapi.NewGroupCommitter(dev, bytes, "dl-buffer", "dl-log"),
		bytes:          bytes,
		deps:           ftapi.NewDepTracker(),
	}
}

// Kind implements ftapi.Mechanism.
func (m *Mech) Kind() ftapi.Kind { return ftapi.DL }

// SealEpoch implements ftapi.Mechanism: it derives each committed
// transaction's incoming edges (read-after-write, write-after-write, and
// write-after-read) from the cross-epoch dependency tracker and buffers
// one dependency record per transaction. Record size grows with the
// dependency count — DL's characteristic runtime cost.
func (m *Mech) SealEpoch(ep *ftapi.EpochResult) {
	recs := make([]codec.DLRecord, 0, len(ep.Graph.Txns))
	depSet := make(map[uint64]struct{}, 8)
	for _, tn := range ep.Graph.Txns {
		if tn.Aborted() {
			continue
		}
		clear(depSet)
		self := ftapi.WriterRef{TxnID: tn.Txn.ID}
		m.deps.TxnDeps(tn.Txn, self, func(ref ftapi.WriterRef) {
			depSet[ref.TxnID] = struct{}{}
		})
		in := make([]uint64, 0, len(depSet))
		for id := range depSet {
			in = append(in, id)
		}
		slices.Sort(in)
		recs = append(recs, codec.DLRecord{Event: tn.Txn.Event, In: in})
	}
	m.SealInto(ep.Epoch, func(w *codec.Buffer) { codec.EncodeDLInto(w, recs) })
	m.accountTracker()
}

func (m *Mech) accountTracker() {
	// ~24 bytes per tracker entry; tracked as a live high-water mark.
	live := int64(m.deps.Size()) * 24
	m.bytes.Free("dl-tracker", 1<<62) // clamp to zero, then set
	m.bytes.Alloc("dl-tracker", live)
}

// GC implements ftapi.Mechanism: edges into snapshot-covered transactions
// are pre-satisfied, so the dependency tracker resets.
func (m *Mech) GC(uint64) {
	m.deps.Reset()
	m.accountTracker()
}

// txnNode is one vertex of the rebuilt recovery graph.
type txnNode struct {
	txn      types.Txn
	out      []int32 // indices of dependent transactions
	indegree int32
}

// Recover implements ftapi.Mechanism: reload records, rebuild the
// dependency graph, then replay transactions in parallel as their
// dependencies complete. A torn tail record (the group commit the device
// died inside) is discarded; its epochs reprocess as uncommitted tail.
func (m *Mech) Recover(rc *ftapi.RecoveryContext) (uint64, error) {
	costs := vtime.Calibrate()
	readStop := metrics.SerialTimer(&rc.Breakdown.Reload, rc.Workers)
	cur, err := storage.ReadFrom(rc.Device, storage.LogFT, rc.SnapshotEpoch)
	readStop()
	if err != nil {
		return 0, fmt.Errorf("depgraph: recover: %w", err)
	}
	groups, committed, _, err := ftapi.DecodeCommittedCursor(cur, rc.SnapshotEpoch, rc.CommitLimit,
		func(_ uint64, payload []byte) ([]codec.DLRecord, error) { return codec.DecodeDL(payload) })
	if err != nil {
		return 0, fmt.Errorf("depgraph: recover: %w", err)
	}
	var recs []codec.DLRecord
	for _, cg := range groups {
		for _, ep := range cg.Epochs {
			recs = append(recs, ep.Recs...)
		}
	}
	// Decoding the fine-grained dependency records is part of reload;
	// group segments decode independently.
	rc.Breakdown.Reload += time.Duration(len(recs)) * costs.Record
	rc.Prof.SpreadPhase("decode", time.Duration(len(recs))*costs.Record)

	// Rebuild the dependency graph: index transactions, then translate
	// incoming-edge ID lists into adjacency and indegree counts. Edges to
	// transactions outside the recovery set are pre-satisfied by the
	// snapshot. This is DL's dominant recovery cost — every record must be
	// re-preprocessed and indexed, every edge inserted, before any replay
	// can start. The same pass re-seeds the runtime dependency tracker
	// (records arrive in timestamp order), so post-recovery transactions
	// depend correctly on replayed ones.
	m.deps.Reset()
	nodes := make([]txnNode, len(recs))
	index := make(map[uint64]int32, len(recs))
	edges := 0
	for i := range recs {
		nodes[i].txn = rc.App.Preprocess(recs[i].Event)
		index[recs[i].Event.Seq] = int32(i)
		m.deps.Register(&nodes[i].txn, ftapi.WriterRef{TxnID: recs[i].Event.Seq})
	}
	for i := range recs {
		for _, dep := range recs[i].In {
			j, ok := index[dep]
			if !ok {
				continue
			}
			nodes[j].out = append(nodes[j].out, int32(i))
			nodes[i].indegree++
			edges++
		}
	}
	construct := time.Duration(len(recs))*(costs.Preprocess+2*costs.Record) +
		time.Duration(edges)*costs.Edge
	metrics.ChargeSerial(&rc.Breakdown.Construct, construct, rc.Workers)
	rc.Prof.SerialPhase("rebuild", construct)

	if len(nodes) == 0 {
		return committed, nil
	}

	// Replay on W virtual workers: a transaction becomes ready when all
	// its logged dependencies have replayed, so parallelism is bounded by
	// the rebuilt graph — the inherent-parallelism ceiling the paper
	// contrasts MorphStreamR against. Transactions execute for real in
	// the simulated order; the clocks are virtual.
	vg := &vtime.TxnGraph{
		Out:      make([][]int32, len(nodes)),
		Indegree: make([]int32, len(nodes)),
	}
	indegree := make([]int32, len(nodes))
	for i := range nodes {
		vg.Out[i] = nodes[i].out
		vg.Indegree[i] = nodes[i].indegree
		indegree[i] = nodes[i].indegree
	}
	rc.Prof.BeginPhase("replay")
	result := vtime.SimulateTxnGraphProf(vg, rc.Workers, func(i int32) (time.Duration, time.Duration, bool) {
		aborted := ftapi.ExecuteTxnOnStore(rc.Store, &nodes[i].txn)
		// Each incoming edge was resolved by a cross-thread
		// notification during the graph replay.
		explore := costs.Explore + time.Duration(indegree[i])*costs.Sync
		return costs.TxnCost(&nodes[i].txn), explore, aborted
	}, rc.Prof, func(i int32) string {
		return "t" + strconv.FormatUint(nodes[i].txn.ID, 10)
	})
	rc.Prof.EndPhase(result.Makespan)
	result.Charge(rc.Breakdown, false)
	return committed, nil
}
