package depgraph

import (
	"testing"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
)

func TestRecoverMatchesOracle(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(1), m, dev, 4)
	for i := 0; i < 4; i++ {
		h.RunEpoch(300)
	}
	h.Commit()
	st, bd, committed := h.Recover(New(dev, metrics.NewBytes()))
	if committed != 4 {
		t.Fatalf("committed = %d, want 4", committed)
	}
	h.CheckAgainstOracle(st)
	if bd.Construct == 0 {
		t.Error("graph rebuild must charge construct time")
	}
}

func TestRecoverSkewedWorkload(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.GSGen(2), m, dev, 4)
	for i := 0; i < 3; i++ {
		h.RunEpoch(400)
	}
	h.Commit()
	st, _, _ := h.Recover(New(dev, metrics.NewBytes()))
	h.CheckAgainstOracle(st)
}

// TestRecordEdgesOrderReplay: construct a deliberate write-write chain on
// one key across epochs and verify the log encodes the ordering edges.
func TestRecordEdges(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.GSGen(3), m, dev, 2)
	h.RunEpoch(300)
	h.RunEpoch(300)
	h.Commit()

	recs, err := dev.ReadLog(storage.LogFT)
	if err != nil || len(recs) != 1 {
		t.Fatal(err)
	}
	groups, err := ftapi.DecodeGroup(recs[0].Payload)
	if err != nil || len(groups) != 2 {
		t.Fatalf("groups: %v, %v", len(groups), err)
	}
	totalEdges := 0
	var all []codec.DLRecord
	for _, g := range groups {
		rs, err := codec.DecodeDL(g.Payload)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
		for _, r := range rs {
			totalEdges += len(r.In)
			// Every edge must point to an earlier transaction.
			for _, dep := range r.In {
				if dep >= r.Event.Seq {
					t.Fatalf("txn %d depends on non-earlier txn %d", r.Event.Seq, dep)
				}
			}
		}
	}
	if totalEdges == 0 {
		t.Fatal("a skewed workload must produce dependency edges")
	}
	// Cross-epoch edges must exist: epoch 2 txns depending on epoch 1
	// txns (group commit removes epoch barriers from replay).
	firstEpochMax := groups[0].Epoch
	_ = firstEpochMax
	seenCross := false
	boundary := all[0].Event.Seq + 299 // last seq of epoch 1
	for _, r := range all {
		if r.Event.Seq > boundary {
			for _, dep := range r.In {
				if dep <= boundary {
					seenCross = true
				}
			}
		}
	}
	if !seenCross {
		t.Error("no cross-epoch dependency edges recorded")
	}
}

// TestAbortedNotLogged: aborted transactions are absent from the log.
func TestAbortedNotLogged(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(4), m, dev, 2)
	ep := h.RunEpoch(400)
	h.Commit()
	committed := 0
	for _, tn := range ep.Graph.Txns {
		if !tn.Aborted() {
			committed++
		}
	}
	recs, _ := dev.ReadLog(storage.LogFT)
	groups, _ := ftapi.DecodeGroup(recs[0].Payload)
	rs, _ := codec.DecodeDL(groups[0].Payload)
	if len(rs) != committed {
		t.Errorf("log holds %d records, want %d committed", len(rs), committed)
	}
}

func TestGCResetsTracker(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.GSGen(5), m, dev, 2)
	h.RunEpoch(200)
	h.Commit()
	if m.deps.Size() == 0 {
		t.Fatal("tracker empty after an epoch")
	}
	m.GC(1)
	if m.deps.Size() != 0 {
		t.Error("GC must reset the tracker")
	}
}

func TestEmptyLogRecovery(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	st, _, committed := fttest.New(t, fttest.SLGen(6), m, dev, 2).Recover(m)
	if committed != 0 {
		t.Errorf("empty log committed = %d", committed)
	}
	_ = st
}
