package ftapi

import (
	"errors"
	"fmt"
	"sync"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
)

// ErrPoisoned marks errors surfaced by a poisoned GroupCommitter: an
// earlier durable group-commit write failed, and committing anything after
// the lost group would leave a silent gap in the log. Callers match it with
// errors.Is (and reach the original write failure with errors.As/Is through
// the chain); the supervisor uses it to classify the failure and, after a
// successful recovery, calls Rearm on the replacement mechanism's committer.
var ErrPoisoned = errors.New("ftapi: group committer poisoned")

// GroupCommitter is the buffered group-commit machinery shared by every
// logging mechanism: sealed epochs buffer their encoded payloads, and a
// commit marker flushes the whole group as one atomic storage record
// (a torn group would leak released outputs — see package doc).
//
// It also supports splitting a commit into a cheap synchronous prepare
// (snapshot the buffer, frame the record) and an expensive asynchronous
// durable write — the "logging off the critical path" future-work
// direction the paper takes from Lineage Stash (Section VII). The engine
// uses the split under its AsyncCommit option; outputs still release only
// after the write completes, so exactly-once delivery is unaffected.
type GroupCommitter struct {
	dev   storage.Device
	bytes *metrics.Bytes
	// bufCategory accounts buffered (live) bytes; logCategory accounts
	// durable bytes written.
	bufCategory string
	logCategory string

	buffered []EpochPayload
	bufBytes int64

	// owned tracks the pooled encode buffers backing SealInto payloads.
	// They return to the codec pool when their bytes become durable (the
	// write closure ran — devices copy payloads on Append) or when Rearm
	// discards the buffer.
	owned []*codec.Buffer

	// state is shared with prepared write closures (which may run on
	// another goroutine): a failed durable write poisons the committer, so
	// that later commits surface the failure instead of silently writing a
	// log with the failed group's epochs missing — a gap recovery would
	// misread as "those epochs never committed" while their successors did.
	state *commitState
}

type commitState struct {
	mu     sync.Mutex
	failed error
}

func (s *commitState) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.mu.Unlock()
}

func (s *commitState) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// NewGroupCommitter creates the machinery for one mechanism.
func NewGroupCommitter(dev storage.Device, bytes *metrics.Bytes, bufCategory, logCategory string) GroupCommitter {
	return GroupCommitter{dev: dev, bytes: bytes, bufCategory: bufCategory, logCategory: logCategory,
		state: &commitState{}}
}

// Buffer appends one sealed epoch's encoded payload.
func (g *GroupCommitter) Buffer(epoch uint64, payload []byte) {
	g.buffered = append(g.buffered, EpochPayload{Epoch: epoch, Payload: payload})
	g.bufBytes += int64(len(payload))
	g.bytes.Alloc(g.bufCategory, int64(len(payload)))
}

// SealInto is the arena-reuse variant of Buffer: the mechanism's encoder
// writes the epoch payload directly into a pooled codec buffer that the
// committer owns until the group's durable write completes (or Rearm drops
// it). Steady-state sealing then recycles a handful of grown buffers
// instead of allocating a fresh payload slice per epoch.
func (g *GroupCommitter) SealInto(epoch uint64, encode func(*codec.Buffer)) {
	w := codec.GetBuffer()
	encode(w)
	g.buffered = append(g.buffered, EpochPayload{Epoch: epoch, Payload: w.Bytes()})
	g.owned = append(g.owned, w)
	g.bufBytes += int64(w.Len())
	g.bytes.Alloc(g.bufCategory, int64(w.Len()))
}

// Buffered reports how many sealed epochs await commit.
func (g *GroupCommitter) Buffered() int { return len(g.buffered) }

// BufferedBytes reports the total encoded size of the epochs awaiting
// commit. The adaptive controller's commit-granularity rule reads it to
// decide, from durable bytes alone, whether to commit early.
func (g *GroupCommitter) BufferedBytes() int64 { return g.bufBytes }

// Commit synchronously persists the buffered group.
func (g *GroupCommitter) Commit(hi uint64) error {
	write, ok := g.PrepareCommit(hi)
	if !ok {
		return nil
	}
	return write()
}

// Failed reports the error of the first durable group-commit write that
// failed, if any. A poisoned committer refuses further commits: the failed
// group's epochs are gone from the buffer, so anything written after them
// would leave a silent gap in the log.
func (g *GroupCommitter) Failed() error { return g.state.err() }

// Rearm clears the poison after a successful recovery and drops anything
// still buffered. It is only sound once recovery has re-established the
// durable log as the source of truth: the poisoned committer's lost group
// was replayed (or re-executed) from the last committed punctuation, so the
// gap the poison guarded against no longer exists. Buffered epochs are
// discarded for the same reason — the new incarnation reprocesses them.
func (g *GroupCommitter) Rearm() {
	g.state.mu.Lock()
	g.state.failed = nil
	g.state.mu.Unlock()
	if g.bufBytes > 0 {
		g.bytes.Free(g.bufCategory, g.bufBytes)
	}
	for _, w := range g.owned {
		codec.PutBuffer(w)
	}
	g.buffered, g.bufBytes, g.owned = nil, 0, nil
}

// PrepareCommit snapshots and frames the buffered group, clears the
// buffer, and returns the durable write as a closure. The closure touches
// only the storage device, the byte accounting, and the shared failure
// state (all thread-safe), so it may run on another goroutine while the
// mechanism seals later epochs. ok is false when nothing is buffered; a
// poisoned committer returns a closure that surfaces the original failure.
func (g *GroupCommitter) PrepareCommit(hi uint64) (write func() error, ok bool) {
	if err := g.state.err(); err != nil {
		logCat := g.logCategory
		return func() error {
			return fmt.Errorf("%s: commit: %w: %w", logCat, ErrPoisoned, err)
		}, true
	}
	if len(g.buffered) == 0 {
		return nil, false
	}
	gw := codec.GetBuffer()
	EncodeGroupInto(gw, g.buffered)
	payload := gw.Bytes()
	freed := g.bufBytes
	owned := g.owned
	g.buffered, g.bufBytes, g.owned = nil, 0, nil
	dev, bytes, bufCat, logCat, state := g.dev, g.bytes, g.bufCategory, g.logCategory, g.state
	return func() error {
		// The group left the buffer at prepare time, so its live bytes are
		// released whether or not the write lands; on failure the payload is
		// dropped (and the committer poisoned), not retained. The device
		// copies the payload on Append, so the pooled buffers behind the
		// frame and the sealed epochs recycle here either way.
		defer func() {
			bytes.Free(bufCat, freed)
			codec.PutBuffer(gw)
			for _, w := range owned {
				codec.PutBuffer(w)
			}
		}()
		if err := dev.Append(storage.LogFT, storage.Record{Epoch: hi, Payload: payload}); err != nil {
			state.fail(err)
			return fmt.Errorf("%s: commit: %w", logCat, err)
		}
		bytes.Written(logCat, int64(len(payload)))
		return nil
	}, true
}

// AsyncCommitter is the optional mechanism capability behind the engine's
// AsyncCommit mode: a commit that can be prepared synchronously and
// written durably off the critical path.
type AsyncCommitter interface {
	PrepareCommit(hi uint64) (write func() error, ok bool)
}
