package ftapi

import (
	"reflect"
	"testing"

	"morphstreamr/internal/oracle"
	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind must not parse")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind fallback string wrong")
	}
}

func TestGroupRoundTrip(t *testing.T) {
	group := []EpochPayload{
		{Epoch: 1, Payload: []byte("one")},
		{Epoch: 2, Payload: nil},
		{Epoch: 9, Payload: []byte{0, 1, 2, 255}},
	}
	got, err := DecodeGroup(EncodeGroup(group))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Epoch != 1 || string(got[0].Payload) != "one" {
		t.Fatalf("group round trip: %+v", got)
	}
	if len(got[1].Payload) != 0 || !reflect.DeepEqual(got[2].Payload, group[2].Payload) {
		t.Fatalf("group round trip payloads: %+v", got)
	}
}

func TestDecodeGroupTruncated(t *testing.T) {
	b := EncodeGroup([]EpochPayload{{Epoch: 1, Payload: []byte("payload")}})
	for cut := 0; cut < len(b); cut++ {
		if got, err := DecodeGroup(b[:cut]); err == nil && len(got) == 1 && string(got[0].Payload) == "payload" {
			t.Fatalf("truncation at %d decoded as complete", cut)
		}
	}
}

func TestInputsThrough(t *testing.T) {
	rc := &RecoveryContext{Inputs: []EpochEvents{{Epoch: 2}, {Epoch: 3}, {Epoch: 4}}}
	if got := rc.InputsThrough(3); len(got) != 2 || got[1].Epoch != 3 {
		t.Errorf("InputsThrough(3) = %v", got)
	}
	if got := rc.InputsThrough(9); len(got) != 3 {
		t.Errorf("InputsThrough(9) = %v", got)
	}
	if got := rc.InputsThrough(1); len(got) != 0 {
		t.Errorf("InputsThrough(1) = %v", got)
	}
}

// mkTxn builds a one-op write transaction, optionally reading deps.
func mkTxn(id uint64, key types.Key, deps ...types.Key) *types.Txn {
	return &types.Txn{ID: id, TS: id, Ops: []types.Operation{{
		TxnID: id, TS: id, Idx: 0, Key: key, Fn: types.FnSum, Deps: deps,
	}}}
}

func collect(t *DepTracker, txn *types.Txn) []uint64 {
	var out []uint64
	t.TxnDeps(txn, WriterRef{TxnID: txn.ID}, func(r WriterRef) { out = append(out, r.TxnID) })
	return out
}

func TestDepTrackerEdges(t *testing.T) {
	ka := types.Key{Table: 0, Row: 1}
	kb := types.Key{Table: 0, Row: 2}
	tr := NewDepTracker()

	// T1 writes A: no deps.
	if deps := collect(tr, mkTxn(1, ka)); len(deps) != 0 {
		t.Fatalf("T1 deps = %v", deps)
	}
	// T2 writes B reading A: read-after-write on T1.
	if deps := collect(tr, mkTxn(2, kb, ka)); !reflect.DeepEqual(deps, []uint64{1}) {
		t.Fatalf("T2 deps = %v, want [1]", deps)
	}
	// T3 writes A: write-after-write on T1 AND write-after-read on T2 —
	// the anti-dependency without which T3 could clobber A before T2 read it.
	deps := collect(tr, mkTxn(3, ka))
	want := map[uint64]bool{1: true, 2: true}
	if len(deps) != 2 || !want[deps[0]] || !want[deps[1]] {
		t.Fatalf("T3 deps = %v, want {1,2}", deps)
	}
	// T4 writes A: only write-after-write on T3 (T3's write covered the
	// earlier reader transitively).
	if deps := collect(tr, mkTxn(4, ka)); !reflect.DeepEqual(deps, []uint64{3}) {
		t.Fatalf("T4 deps = %v, want [3]", deps)
	}
}

func TestDepTrackerSelfDepsExcluded(t *testing.T) {
	ka := types.Key{Table: 0, Row: 1}
	kb := types.Key{Table: 0, Row: 2}
	tr := NewDepTracker()
	collect(tr, mkTxn(1, ka))
	// T2 both reads and writes A (transfer-shaped: op0 writes A, op1
	// writes B reading A).
	txn := &types.Txn{ID: 2, TS: 2, Ops: []types.Operation{
		{TxnID: 2, TS: 2, Idx: 0, Key: ka, Fn: types.FnGuardedSubSelf, Const: 1},
		{TxnID: 2, TS: 2, Idx: 1, Key: kb, Fn: types.FnGuardedAdd, Const: 1, Deps: []types.Key{ka}},
	}}
	deps := collect(tr, txn)
	for _, d := range deps {
		if d == 2 {
			t.Fatal("transaction depends on itself")
		}
	}
}

func TestDepTrackerResetAndSize(t *testing.T) {
	tr := NewDepTracker()
	collect(tr, mkTxn(1, types.Key{Row: 1}))
	collect(tr, mkTxn(2, types.Key{Row: 2}, types.Key{Row: 3}))
	if tr.Size() == 0 {
		t.Fatal("tracker empty after registrations")
	}
	tr.Reset()
	if tr.Size() != 0 {
		t.Fatal("Reset left entries behind")
	}
	if deps := collect(tr, mkTxn(3, types.Key{Row: 1})); len(deps) != 0 {
		t.Fatalf("deps after reset = %v", deps)
	}
}

// TestExecuteTxnOnStoreMatchesOracle: the replay executor and the oracle
// must agree on every workload — they are the two independent statements
// of transaction semantics used during recovery.
func TestExecuteTxnOnStoreMatchesOracle(t *testing.T) {
	p := workload.DefaultSLParams()
	p.Rows, p.AbortRatio = 512, 0.2
	gen := workload.NewSL(p)
	st := store.New(gen.App().Tables())
	o := oracle.New(gen.App())
	for i := 0; i < 2000; i++ {
		ev := gen.Next()
		txnA := gen.App().Preprocess(ev)
		txnB := gen.App().Preprocess(ev)
		gotAborted := ExecuteTxnOnStore(st, &txnA)
		want := o.ExecuteTxn(&txnB)
		if gotAborted != want.Aborted {
			t.Fatalf("event %d: store-executor aborted=%v oracle=%v", ev.Seq, gotAborted, want.Aborted)
		}
	}
	for _, spec := range gen.App().Tables() {
		for row := uint32(0); row < spec.Rows; row++ {
			k := types.Key{Table: spec.ID, Row: row}
			if st.Get(k) != o.Value(k) {
				t.Fatalf("state diverged at %v: %d vs %d", k, st.Get(k), o.Value(k))
			}
		}
	}
}
