package ftapi

import (
	"fmt"

	"morphstreamr/internal/storage"
)

// DecodedEpoch is one committed epoch's decoded records of type T.
type DecodedEpoch[T any] struct {
	Epoch uint64
	Recs  T
}

// CommitGroup is one atomic group-commit record after decoding: the epochs
// it covers and their records. Mechanisms that replay per commit group
// (MSR) keep the structure; the others flatten it.
type CommitGroup[T any] struct {
	Lo, Hi uint64
	Epochs []DecodedEpoch[T]
}

// DecodeCommitted decodes a mechanism's group-commit log: for every record
// within (snapEpoch, limit] it parses the group frame and runs the
// mechanism's decode on each epoch section, returning the groups in log
// order and the highest committed epoch seen.
//
// A decode failure in the log's final record is tolerated: the record is a
// torn tail — the device died mid-append during the group commit, so the
// commit never acknowledged, no outputs depending on it were released, and
// discarding it (recovery's logical truncation) is the only consistent
// choice. The whole group is dropped, never a prefix of it: group commits
// are all-or-nothing (see EncodeGroup). A decode failure anywhere before
// the final record is real corruption and returns an error naming the
// record.
//
// A limit of zero means no cap.
//
// DecodeCommitted is the slice-shaped shim kept for tests and materialised
// callers; recovery paths stream through DecodeCommittedCursor instead.
func DecodeCommitted[T any](recs []storage.Record, snapEpoch, limit uint64,
	decode func(epoch uint64, payload []byte) (T, error)) (groups []CommitGroup[T], committed uint64, torn bool, err error) {

	committed = snapEpoch
	if limit == 0 {
		limit = ^uint64(0)
	}
	for i, g := range recs {
		if g.Epoch <= snapEpoch || g.Epoch > limit {
			continue
		}
		tail := i == len(recs)-1
		eps, err := DecodeGroup(g.Payload)
		if err != nil {
			if tail {
				return groups, committed, true, nil
			}
			return nil, 0, false, fmt.Errorf("log record %d (epoch %d): %w", i, g.Epoch, err)
		}
		cg := CommitGroup[T]{}
		ok := true
		for _, ep := range eps {
			rs, err := decode(ep.Epoch, ep.Payload)
			if err != nil {
				if tail {
					ok = false // torn inside the group: drop it whole
					break
				}
				return nil, 0, false, fmt.Errorf("log record %d epoch %d: %w", i, ep.Epoch, err)
			}
			cg.Epochs = append(cg.Epochs, DecodedEpoch[T]{Epoch: ep.Epoch, Recs: rs})
			if cg.Lo == 0 || ep.Epoch < cg.Lo {
				cg.Lo = ep.Epoch
			}
			if ep.Epoch > cg.Hi {
				cg.Hi = ep.Epoch
			}
		}
		if !ok {
			return groups, committed, true, nil
		}
		groups = append(groups, cg)
		if cg.Hi > committed {
			committed = cg.Hi
		}
	}
	return groups, committed, false, nil
}

// DecodeCommittedCursor is DecodeCommitted over a streaming log cursor —
// the shape every mechanism's recovery path uses against the bounded
// segment store, where the cursor has already seeked past the checkpoint-
// covered prefix. Decode memory is bounded by one commit group at a time
// plus the decoded results; the raw log is never materialised.
//
// Torn-tail detection needs to know whether a failing record is the log's
// final one, which a stream learns by one-record lookahead: the cursor is
// always one record ahead of the group being decoded. The cursor is closed
// before returning.
func DecodeCommittedCursor[T any](cur storage.Cursor, snapEpoch, limit uint64,
	decode func(epoch uint64, payload []byte) (T, error)) (groups []CommitGroup[T], committed uint64, torn bool, err error) {

	defer cur.Close()
	committed = snapEpoch
	if limit == 0 {
		limit = ^uint64(0)
	}
	rec, ok, err := cur.Next()
	if err != nil {
		return nil, 0, false, fmt.Errorf("log read: %w", err)
	}
	for i := 0; ok; i++ {
		next, nok, nerr := cur.Next()
		if nerr != nil {
			return nil, 0, false, fmt.Errorf("log read after record %d: %w", i, nerr)
		}
		tail := !nok
		if rec.Epoch <= snapEpoch || rec.Epoch > limit {
			rec, ok = next, nok
			continue
		}
		eps, err := DecodeGroup(rec.Payload)
		if err != nil {
			if tail {
				return groups, committed, true, nil
			}
			return nil, 0, false, fmt.Errorf("log record %d (epoch %d): %w", i, rec.Epoch, err)
		}
		cg := CommitGroup[T]{}
		good := true
		for _, ep := range eps {
			rs, err := decode(ep.Epoch, ep.Payload)
			if err != nil {
				if tail {
					good = false // torn inside the group: drop it whole
					break
				}
				return nil, 0, false, fmt.Errorf("log record %d epoch %d: %w", i, ep.Epoch, err)
			}
			cg.Epochs = append(cg.Epochs, DecodedEpoch[T]{Epoch: ep.Epoch, Recs: rs})
			if cg.Lo == 0 || ep.Epoch < cg.Lo {
				cg.Lo = ep.Epoch
			}
			if ep.Epoch > cg.Hi {
				cg.Hi = ep.Epoch
			}
		}
		if !good {
			return groups, committed, true, nil
		}
		groups = append(groups, cg)
		if cg.Hi > committed {
			committed = cg.Hi
		}
		rec, ok = next, nok
	}
	return groups, committed, false, nil
}
