package ftapi

import (
	"errors"
	"testing"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
)

func TestGroupCommitterLifecycle(t *testing.T) {
	dev := storage.NewMem()
	bytes := metrics.NewBytes()
	g := NewGroupCommitter(dev, bytes, "buf", "log")

	// Nothing buffered: commit is a no-op.
	if err := g.Commit(1); err != nil {
		t.Fatal(err)
	}
	if recs, _ := dev.ReadLog(storage.LogFT); len(recs) != 0 {
		t.Fatal("empty commit wrote a record")
	}

	g.Buffer(1, []byte("one"))
	g.Buffer(2, []byte("two"))
	if g.Buffered() != 2 {
		t.Fatalf("buffered = %d", g.Buffered())
	}
	if bytes.PeakLive() == 0 {
		t.Error("buffered bytes not accounted live")
	}
	if err := g.Commit(2); err != nil {
		t.Fatal(err)
	}
	if g.Buffered() != 0 {
		t.Error("commit did not clear the buffer")
	}
	recs, _ := dev.ReadLog(storage.LogFT)
	if len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("log = %+v, want one record at epoch 2", recs)
	}
	group, err := DecodeGroup(recs[0].Payload)
	if err != nil || len(group) != 2 {
		t.Fatalf("group decode: %v, %v", group, err)
	}
	if group[0].Epoch != 1 || string(group[0].Payload) != "one" ||
		group[1].Epoch != 2 || string(group[1].Payload) != "two" {
		t.Errorf("group content wrong: %+v", group)
	}
	if bytes.WrittenBy("log") == 0 {
		t.Error("durable bytes not accounted")
	}
}

// TestPrepareCommitDecouplesWrite: after PrepareCommit returns, the buffer
// is free for new epochs while the returned closure still writes the old
// group — the property asynchronous commit depends on.
func TestPrepareCommitDecouplesWrite(t *testing.T) {
	dev := storage.NewMem()
	g := NewGroupCommitter(dev, metrics.NewBytes(), "buf", "log")
	g.Buffer(1, []byte("a"))
	write, ok := g.PrepareCommit(1)
	if !ok {
		t.Fatal("prepare with a buffered epoch returned ok=false")
	}
	// New sealing happens before the write lands.
	g.Buffer(2, []byte("b"))
	if err := write(); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(2); err != nil {
		t.Fatal(err)
	}
	recs, _ := dev.ReadLog(storage.LogFT)
	if len(recs) != 2 || recs[0].Epoch != 1 || recs[1].Epoch != 2 {
		t.Fatalf("log order wrong: %+v", recs)
	}
	group1, _ := DecodeGroup(recs[0].Payload)
	group2, _ := DecodeGroup(recs[1].Payload)
	if len(group1) != 1 || len(group2) != 1 {
		t.Errorf("groups split wrong: %d, %d", len(group1), len(group2))
	}
	if _, ok := g.PrepareCommit(3); ok {
		t.Error("prepare with empty buffer returned ok=true")
	}
}

// TestPrepareCommitErrorSurfaces: a failing device error must come back
// from the closure.
func TestPrepareCommitErrorSurfaces(t *testing.T) {
	dev := storage.NewFaulty(storage.NewMem(), 0)
	g := NewGroupCommitter(dev, metrics.NewBytes(), "buf", "log")
	g.Buffer(1, []byte("x"))
	write, ok := g.PrepareCommit(1)
	if !ok {
		t.Fatal("prepare failed")
	}
	if err := write(); err == nil {
		t.Error("injected device failure not surfaced")
	}
}

// TestCommitFailurePoisons: PrepareCommit clears the buffer before the
// durable write runs, so a failed write leaves the failed group's epochs
// gone from the buffer. If later commits then succeeded, the log would
// have a silent gap recovery misreads as "those epochs never committed"
// while their successors did. A failed write must therefore poison the
// committer: later commits surface the original failure, and nothing
// further reaches the log.
func TestCommitFailurePoisons(t *testing.T) {
	inner := storage.NewMem()
	dev := storage.NewFaulty(inner, 0) // first write dies
	g := NewGroupCommitter(dev, metrics.NewBytes(), "buf", "log")

	g.Buffer(1, []byte("lost"))
	if err := g.Commit(1); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if g.Failed() == nil {
		t.Fatal("failed commit did not poison the committer")
	}

	// Point the committer at the healthy inner device: without poisoning,
	// the next commit would land and leave epoch 1 silently missing.
	g.dev = inner
	g.Buffer(2, []byte("would-gap"))
	if err := g.Commit(2); err == nil {
		t.Fatal("poisoned committer accepted a later commit")
	}
	if recs, _ := inner.ReadLog(storage.LogFT); len(recs) != 0 {
		t.Fatalf("poisoned committer wrote %d records past the gap", len(recs))
	}

	// The async split is poisoned the same way.
	write, ok := g.PrepareCommit(2)
	if !ok {
		t.Fatal("poisoned PrepareCommit returned ok=false; failure would be silent")
	}
	if err := write(); err == nil {
		t.Fatal("poisoned prepared write returned nil")
	}
}

// TestPoisonSentinelMatchable: poison errors carry the exported sentinel
// and the original device failure through the chain, so supervisors can
// classify with errors.Is instead of string matching.
func TestPoisonSentinelMatchable(t *testing.T) {
	dev := storage.NewFaulty(storage.NewMem(), 0)
	g := NewGroupCommitter(dev, metrics.NewBytes(), "buf", "log")

	g.Buffer(1, []byte("lost"))
	first := g.Commit(1)
	if first == nil {
		t.Fatal("injected failure not surfaced")
	}
	// The first failure is the device error itself, not yet a poison error.
	if errors.Is(first, ErrPoisoned) {
		t.Fatalf("first failure already marked poisoned: %v", first)
	}

	g.Buffer(2, []byte("later"))
	later := g.Commit(2)
	if !errors.Is(later, ErrPoisoned) {
		t.Fatalf("later commit not matchable as ErrPoisoned: %v", later)
	}
	if !errors.Is(later, storage.ErrInjected) {
		t.Fatalf("original write failure lost from the chain: %v", later)
	}
	if !errors.Is(g.Failed(), storage.ErrInjected) {
		t.Fatalf("Failed() = %v", g.Failed())
	}
}

// TestRearmClearsPoison: after recovery re-establishes the log as the
// source of truth, Rearm restores the committer to a working state with an
// empty buffer.
func TestRearmClearsPoison(t *testing.T) {
	inner := storage.NewMem()
	dev := storage.NewFaulty(inner, 0)
	bytes := metrics.NewBytes()
	g := NewGroupCommitter(dev, bytes, "buf", "log")

	g.Buffer(1, []byte("lost"))
	if err := g.Commit(1); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	g.Buffer(2, []byte("stale")) // buffered while poisoned

	g.dev = inner // device healed
	g.Rearm()
	if g.Failed() != nil {
		t.Fatalf("Rearm left poison: %v", g.Failed())
	}
	if g.Buffered() != 0 {
		t.Fatalf("Rearm left %d buffered epochs", g.Buffered())
	}
	if live := bytes.Live(); live != 0 {
		t.Fatalf("Rearm leaked %d live buffered bytes", live)
	}

	g.Buffer(3, []byte("fresh"))
	if err := g.Commit(3); err != nil {
		t.Fatalf("rearmed commit failed: %v", err)
	}
	recs, _ := inner.ReadLog(storage.LogFT)
	if len(recs) != 1 || recs[0].Epoch != 3 {
		t.Fatalf("log after rearm = %+v", recs)
	}
}
