// Package ftapi defines the contract between the engine and its pluggable
// fault-tolerance mechanisms.
//
// The engine drives the shared protocol (Sections IV, V-C, VI-C): it
// persists input events before processing, snapshots the store at snapshot
// markers, garbage-collects covered artifacts, and reprocesses the
// uncommitted tail after a crash. A Mechanism contributes the
// scheme-specific parts: what to record when an epoch seals, how to commit
// the records (group commit at commit markers), and how to replay its
// committed epochs during recovery.
//
// Exactly-once delivery hinges on one rule shared by all mechanisms:
// outputs become visible downstream if and only if their epoch's log
// commit record (or, for CKPT, the covering snapshot) is durable. Recovery
// therefore re-executes committed epochs with outputs suppressed, and the
// engine reprocesses uncommitted epochs through the normal path with
// outputs delivered.
package ftapi

import (
	"fmt"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// Kind enumerates the implemented fault-tolerance schemes, matching the
// comparison set of Section VIII-A.
type Kind uint8

const (
	// NAT is native execution: no fault tolerance, the runtime upper bound.
	NAT Kind = iota
	// CKPT is global checkpointing: snapshots plus full reprocessing.
	CKPT
	// WAL is write-ahead command logging with sequential redo.
	WAL
	// DL is dependency logging in the style of DistDGCC.
	DL
	// LV is LSN-vector logging in the style of Taurus.
	LV
	// MSR is MorphStreamR: intermediate-result logging with
	// dependency-aware parallel recovery.
	MSR
)

// String returns the scheme's paper abbreviation.
func (k Kind) String() string {
	switch k {
	case NAT:
		return "NAT"
	case CKPT:
		return "CKPT"
	case WAL:
		return "WAL"
	case DL:
		return "DL"
	case LV:
		return "LV"
	case MSR:
		return "MSR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists all schemes in presentation order.
func Kinds() []Kind { return []Kind{NAT, CKPT, WAL, DL, LV, MSR} }

// ParseKind converts a paper abbreviation (case-sensitive) to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return NAT, fmt.Errorf("ftapi: unknown fault-tolerance kind %q", s)
}

// EpochResult is the engine's hand-off to SealEpoch: one fully executed
// epoch, before its outputs are released. Mechanisms read but never mutate
// it; the graph carries operation results, abort flags, and chain
// structure — everything dependency tracking needs.
//
// The Graph (its nodes, chains, and transactions) is valid only for the
// duration of the SealEpoch call: the engine recycles graph memory across
// epochs, so a mechanism must encode whatever it needs during the call
// and retain no references into the graph afterwards. (Epoch, Events, and
// plain values copied out of the graph are fine to keep.)
type EpochResult struct {
	Epoch   uint64
	Events  []types.Event
	Graph   *tpg.Graph
	Workers int
}

// EpochEvents pairs an epoch number with its reloaded input events.
type EpochEvents struct {
	Epoch  uint64
	Events []types.Event
}

// RecoveryContext carries everything a mechanism needs to replay its
// committed epochs after the engine has restored the latest snapshot.
type RecoveryContext struct {
	App    types.App
	Store  *store.Store
	Device storage.Device
	// Workers is the parallelism available to the replay.
	Workers int
	// SnapshotEpoch is the epoch covered by the restored snapshot; replay
	// starts at SnapshotEpoch+1.
	SnapshotEpoch uint64
	// Inputs holds the persisted input events of every epoch after the
	// snapshot, in epoch order (the engine already paid the reload cost).
	Inputs []EpochEvents
	// CommitLimit caps replay: log records of commit groups above it are
	// ignored even if durable (zero means no cap). The engine sets it
	// below the mechanism's committed watermark only under asynchronous
	// commit, where a commit may have landed whose outputs were never
	// released — those epochs must reprocess through the normal
	// (output-delivering) path instead.
	CommitLimit uint64
	// Breakdown accumulates the recovery-time decomposition of Figure 11.
	Breakdown *metrics.RecoveryBreakdown
	// Prof, when non-nil, receives the per-worker virtual-time span events
	// of the replay (phase structure, op execution, stall attribution,
	// critical-path bounds). A nil profiler is fully disabled — mechanisms
	// call it unconditionally.
	Prof *vtime.Profiler
}

// InputsThrough returns the prefix of rc.Inputs with Epoch <= hi.
func (rc *RecoveryContext) InputsThrough(hi uint64) []EpochEvents {
	for i, ee := range rc.Inputs {
		if ee.Epoch > hi {
			return rc.Inputs[:i]
		}
	}
	return rc.Inputs
}

// Mechanism is one fault-tolerance scheme.
//
// Lifecycle at runtime: SealEpoch after every processed epoch (buffer
// records; the engine charges the call to tracking time), Commit at commit
// markers (persist buffered records atomically; charged to I/O time), and
// GC after a snapshot commits (drop artifacts the snapshot covers).
//
// Recover replays the mechanism's committed epochs from its durable log
// onto rc.Store with outputs suppressed, charges rc.Breakdown, and returns
// the highest epoch it replayed; the engine reprocesses every later epoch
// through the normal path. A mechanism with no log of its own (CKPT)
// returns rc.SnapshotEpoch.
type Mechanism interface {
	Kind() Kind
	SealEpoch(ep *EpochResult)
	Commit(hi uint64) error
	GC(upTo uint64)
	Recover(rc *RecoveryContext) (committed uint64, err error)
}
