package ftapi

import (
	"fmt"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
)

// EpochPayload is one epoch's section inside an atomic commit record.
type EpochPayload struct {
	Epoch   uint64
	Payload []byte
}

// EncodeGroup frames the epochs of one group commit into a single log
// record payload. Group commits must be all-or-nothing — a torn commit
// would make some outputs of the group durable-committed and others not —
// so every mechanism persists one group as exactly one storage record.
func EncodeGroup(group []EpochPayload) []byte {
	n := 16
	for _, g := range group {
		n += 16 + len(g.Payload)
	}
	w := codec.NewBuffer(n)
	EncodeGroupInto(w, group)
	return w.Bytes()
}

// EncodeGroupInto appends the EncodeGroup framing to w (the commit path's
// arena pass — see GroupCommitter.SealInto).
func EncodeGroupInto(w *codec.Buffer, group []EpochPayload) {
	w.Uvarint(uint64(len(group)))
	for _, g := range group {
		w.Uvarint(g.Epoch)
		w.Uvarint(uint64(len(g.Payload)))
		for _, b := range g.Payload {
			w.Byte(b)
		}
	}
}

// DecodeGroup parses EncodeGroup output.
func DecodeGroup(b []byte) ([]EpochPayload, error) {
	r := codec.NewReader(b)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("ftapi: group count %d exceeds input", n)
	}
	out := make([]EpochPayload, 0, n)
	for i := uint64(0); i < n; i++ {
		var g EpochPayload
		g.Epoch = r.Uvarint()
		ln := r.Uvarint()
		if r.Err() != nil || ln > uint64(r.Remaining()) {
			return nil, fmt.Errorf("ftapi: truncated group section %d", i)
		}
		g.Payload = make([]byte, ln)
		for j := range g.Payload {
			g.Payload[j] = r.Byte()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, r.Err()
}

// ExecuteTxnOnStore runs one transaction directly against the store under
// the shared abort contract, returning whether it committed. It is the
// replay executor used by the logging mechanisms (WAL redo, DL graph
// replay, LV vector replay): by the time a transaction is eligible to
// replay, every transaction it depends on has already been applied, so
// reading the live store is version-exact.
//
// The caller guarantees exclusive access to the transaction's keys (WAL by
// being sequential; DL and LV by their dependency gating).
func ExecuteTxnOnStore(st *store.Store, txn *types.Txn) (aborted bool) {
	// Capture dependency values before any write of this transaction.
	var depVals [][]types.Value
	for i := range txn.Ops {
		op := &txn.Ops[i]
		if len(op.Deps) == 0 {
			continue
		}
		if depVals == nil {
			depVals = make([][]types.Value, len(txn.Ops))
		}
		dv := make([]types.Value, len(op.Deps))
		for j, dk := range op.Deps {
			dv[j] = st.Get(dk)
		}
		depVals[i] = dv
	}
	for i := range txn.Ops {
		op := &txn.Ops[i]
		if aborted && !op.IsCondition() {
			continue
		}
		var dv []types.Value
		if depVals != nil {
			dv = depVals[i]
		}
		v, ok := types.Apply(op.Fn, st.Get(op.Key), dv, op.Const)
		if !ok {
			if op.IsCondition() {
				aborted = true
			}
			continue
		}
		st.Set(op.Key, v)
	}
	return aborted
}

// WriterRef identifies a committed transaction and, for LV, where its log
// record lives (the logging worker and its per-worker sequence number).
type WriterRef struct {
	TxnID  uint64
	Worker uint32
	LSN    uint64
}

// DepTracker derives, for committed transactions processed in timestamp
// order, the full set of transactions each one must wait for during log
// replay: read-after-write (a consumed parameter's producer),
// write-after-write (the previous writer of an updated key), and
// write-after-read (earlier committed readers of an updated key, without
// which a replayed writer could clobber a value a reader has yet to
// consume). DL turns these into explicit graph edges; LV folds them into
// LSN vectors. The tracker spans epochs — group commit removes epoch
// barriers from replay — and resets when a snapshot commits, because
// dependencies on snapshot-covered transactions are pre-satisfied.
type DepTracker struct {
	lastWriter map[types.Key]WriterRef
	readers    map[types.Key][]WriterRef
}

// NewDepTracker creates an empty tracker.
func NewDepTracker() *DepTracker {
	return &DepTracker{
		lastWriter: make(map[types.Key]WriterRef),
		readers:    make(map[types.Key][]WriterRef),
	}
}

// TxnDeps reports every transaction the given committed transaction
// depends on via add (possibly with duplicates; callers deduplicate), then
// registers the transaction's own reads and writes. Transactions must be
// fed in ascending timestamp order, committed ones only.
func (t *DepTracker) TxnDeps(txn *types.Txn, self WriterRef, add func(WriterRef)) {
	// Collect edges against the pre-transaction state of the maps; a
	// transaction never depends on itself.
	for i := range txn.Ops {
		op := &txn.Ops[i]
		for _, dk := range op.Deps {
			if ref, ok := t.lastWriter[dk]; ok && ref.TxnID != self.TxnID {
				add(ref) // read-after-write
			}
		}
		if ref, ok := t.lastWriter[op.Key]; ok && ref.TxnID != self.TxnID {
			add(ref) // write-after-write
		}
		for _, ref := range t.readers[op.Key] {
			if ref.TxnID != self.TxnID {
				add(ref) // write-after-read
			}
		}
	}
	// Apply this transaction's footprint. (A key both read and written by
	// this transaction ends up with the write superseding the read, which
	// is correct: the write-after-write edge covers future conflicts.)
	t.Register(txn, self)
}

// Register applies a transaction's footprint without collecting edges.
// Mechanisms use it during recovery to rebuild the tracker from their own
// replayed log records (in timestamp order), so that transactions
// processed after recovery carry correct dependencies on pre-crash
// transactions — without it, a second crash could replay them unordered.
func (t *DepTracker) Register(txn *types.Txn, self WriterRef) {
	for i := range txn.Ops {
		op := &txn.Ops[i]
		for _, dk := range op.Deps {
			t.readers[dk] = append(t.readers[dk], self)
		}
	}
	for i := range txn.Ops {
		op := &txn.Ops[i]
		t.lastWriter[op.Key] = self
		delete(t.readers, op.Key)
	}
}

// Reset drops all tracked state (snapshot committed).
func (t *DepTracker) Reset() {
	t.lastWriter = make(map[types.Key]WriterRef)
	t.readers = make(map[types.Key][]WriterRef)
}

// Size estimates the tracker's live entry count, for memory accounting.
func (t *DepTracker) Size() int {
	n := len(t.lastWriter)
	for _, rs := range t.readers {
		n += len(rs)
	}
	return n
}
