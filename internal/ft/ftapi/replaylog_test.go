package ftapi

import (
	"errors"
	"testing"

	"morphstreamr/internal/storage"
)

// groupRec frames one commit group holding raw per-epoch payloads.
func groupRec(hi uint64, eps ...EpochPayload) storage.Record {
	return storage.Record{Epoch: hi, Payload: EncodeGroup(eps)}
}

// passthrough decodes an epoch payload as-is; it errors on a "bad" marker.
func passthrough(_ uint64, payload []byte) ([]byte, error) {
	if string(payload) == "bad" {
		return nil, errors.New("bad payload")
	}
	return payload, nil
}

func TestDecodeCommittedHappyPath(t *testing.T) {
	recs := []storage.Record{
		groupRec(2, EpochPayload{Epoch: 1, Payload: []byte("a")}, EpochPayload{Epoch: 2, Payload: []byte("b")}),
		groupRec(4, EpochPayload{Epoch: 3, Payload: []byte("c")}, EpochPayload{Epoch: 4, Payload: []byte("d")}),
	}
	groups, committed, torn, err := DecodeCommitted(recs, 0, 0, passthrough)
	if err != nil || torn {
		t.Fatalf("err=%v torn=%v", err, torn)
	}
	if committed != 4 || len(groups) != 2 {
		t.Fatalf("committed=%d groups=%d", committed, len(groups))
	}
	if groups[0].Lo != 1 || groups[0].Hi != 2 || groups[1].Lo != 3 || groups[1].Hi != 4 {
		t.Fatalf("group bounds: %+v", groups)
	}
	if string(groups[1].Epochs[0].Recs) != "c" {
		t.Fatalf("epoch payload = %q", groups[1].Epochs[0].Recs)
	}
}

func TestDecodeCommittedSkipsCoveredAndCapped(t *testing.T) {
	recs := []storage.Record{
		groupRec(2, EpochPayload{Epoch: 2, Payload: []byte("covered")}),
		groupRec(4, EpochPayload{Epoch: 4, Payload: []byte("live")}),
		groupRec(6, EpochPayload{Epoch: 6, Payload: []byte("beyond-limit")}),
	}
	groups, committed, torn, err := DecodeCommitted(recs, 2, 4, passthrough)
	if err != nil || torn {
		t.Fatalf("err=%v torn=%v", err, torn)
	}
	if committed != 4 || len(groups) != 1 || groups[0].Hi != 4 {
		t.Fatalf("committed=%d groups=%+v", committed, groups)
	}
}

// TestDecodeCommittedTornTail: a tail record that fails group framing or
// the mechanism decode is discarded whole; committed stays behind it.
func TestDecodeCommittedTornTail(t *testing.T) {
	intact := groupRec(2, EpochPayload{Epoch: 1, Payload: []byte("a")}, EpochPayload{Epoch: 2, Payload: []byte("b")})

	full := groupRec(4, EpochPayload{Epoch: 3, Payload: []byte("cc")}, EpochPayload{Epoch: 4, Payload: []byte("dd")})
	for cut := 0; cut < len(full.Payload); cut++ {
		tornRec := storage.Record{Epoch: 4, Payload: full.Payload[:cut]}
		groups, committed, torn, err := DecodeCommitted([]storage.Record{intact, tornRec}, 0, 0, passthrough)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if committed != 2 || len(groups) != 1 {
			t.Fatalf("cut %d: committed=%d groups=%d; torn group must be dropped whole", cut, committed, len(groups))
		}
	}

	// Mechanism-level decode failure in the tail is also a torn group.
	badTail := groupRec(4, EpochPayload{Epoch: 3, Payload: []byte("ok")}, EpochPayload{Epoch: 4, Payload: []byte("bad")})
	groups, committed, torn, err := DecodeCommitted([]storage.Record{intact, badTail}, 0, 0, passthrough)
	if err != nil || !torn || committed != 2 || len(groups) != 1 {
		t.Fatalf("decode-failure tail: groups=%d committed=%d torn=%v err=%v", len(groups), committed, torn, err)
	}

	// An empty (dropped-tail) record is likewise discarded.
	empty := storage.Record{Epoch: 4}
	_, committed, torn, err = DecodeCommitted([]storage.Record{intact, empty}, 0, 0, passthrough)
	if err != nil || !torn || committed != 2 {
		t.Fatalf("dropped tail: committed=%d torn=%v err=%v", committed, torn, err)
	}
}

// TestDecodeCommittedMidLogCorruption: the torn-tail tolerance must not
// mask corruption before the final record.
func TestDecodeCommittedMidLogCorruption(t *testing.T) {
	good := groupRec(2, EpochPayload{Epoch: 2, Payload: []byte("x")})
	corrupt := storage.Record{Epoch: 4, Payload: []byte{0xff, 0x01, 0x02}}
	if _, _, _, err := DecodeCommitted([]storage.Record{corrupt, good}, 0, 0, passthrough); err == nil {
		t.Fatal("mid-log corruption went undetected")
	}
	badMid := groupRec(4, EpochPayload{Epoch: 4, Payload: []byte("bad")})
	if _, _, _, err := DecodeCommitted([]storage.Record{badMid, good}, 0, 0, passthrough); err == nil {
		t.Fatal("mid-log decode failure went undetected")
	}
}
