package ftapi_test

import (
	"reflect"
	"testing"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/core"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// realCommitRecords drives one logging mechanism through a few committed
// epochs — the way the engine would — and returns the LogFT records it
// wrote: real group-commit frames as corpus seeds, so the fuzzers start
// from the byte shapes recovery actually parses rather than synthetic
// minimal cases.
func realCommitRecords(kind ftapi.Kind) []storage.Record {
	dev := storage.NewMem()
	mech := core.NewMechanism(kind, dev, metrics.NewBytes(), msr.Default())
	p := workload.DefaultSLParams()
	p.Rows, p.Seed, p.AbortRatio = 64, 7, 0.2
	gen := workload.NewSL(p)
	st := store.New(gen.App().Tables())
	for epoch := uint64(1); epoch <= 4; epoch++ {
		events := workload.Batch(gen, 12)
		if err := dev.Append(storage.LogInput, storage.Record{Epoch: epoch}); err != nil {
			panic(err)
		}
		txns := make([]*types.Txn, len(events))
		for i := range events {
			txn := gen.App().Preprocess(events[i])
			txns[i] = &txn
		}
		g := tpg.Build(txns, st.Get)
		if _, err := scheduler.Run(g, st, scheduler.Options{Workers: 2}); err != nil {
			panic(err)
		}
		mech.SealEpoch(&ftapi.EpochResult{Epoch: epoch, Events: events, Graph: g, Workers: 2})
		if epoch%2 == 0 {
			if err := mech.Commit(epoch); err != nil {
				panic(err)
			}
		}
	}
	recs, err := dev.ReadLog(storage.LogFT)
	if err != nil {
		panic(err)
	}
	return recs
}

// seedGroups adds every real group frame plus torn and empty variants,
// mirroring the codec fuzz corpus convention.
func seedGroups(f *testing.F) {
	for _, kind := range []ftapi.Kind{ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR} {
		for _, rec := range realCommitRecords(kind) {
			f.Add(rec.Payload)
			f.Add(rec.Payload[:len(rec.Payload)/2])
			if len(rec.Payload) > 0 {
				f.Add(rec.Payload[:len(rec.Payload)-1])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
}

// FuzzDecodeGroup: the group frame decoder never panics, and whatever it
// accepts survives an encode/decode round trip unchanged — the same
// contract the codec fuzzers enforce on the per-record formats.
func FuzzDecodeGroup(f *testing.F) {
	seedGroups(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		group, err := ftapi.DecodeGroup(b)
		if err != nil {
			return
		}
		again, err := ftapi.DecodeGroup(ftapi.EncodeGroup(group))
		if err != nil {
			t.Fatalf("re-decode of re-encoded group failed: %v", err)
		}
		if !reflect.DeepEqual(group, again) {
			t.Fatalf("group decode not idempotent:\n first: %+v\nsecond: %+v", group, again)
		}
	})
}

// FuzzDecodeCommitted: the committed-log walker never panics on arbitrary
// record payloads and preserves its structural invariants — a torn verdict
// only ever comes from the tail record with a nil error, and the committed
// watermark never moves backwards or past the cap.
func FuzzDecodeCommitted(f *testing.F) {
	seedGroups(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		valid := ftapi.EncodeGroup([]ftapi.EpochPayload{{Epoch: 2, Payload: codec.EncodeWAL(nil)}})
		cases := [][]storage.Record{
			{{Epoch: 2, Payload: b}},                             // lone record: decode failures are a torn tail
			{{Epoch: 2, Payload: b}, {Epoch: 4, Payload: valid}}, // non-tail: failures are corruption
		}
		const snapEpoch, limit = 1, 10
		for i, recs := range cases {
			groups, committed, torn, err := ftapi.DecodeCommitted(recs, snapEpoch, limit,
				func(epoch uint64, payload []byte) ([]codec.WALRecord, error) {
					return codec.DecodeWAL(payload)
				})
			if torn && err != nil {
				t.Fatalf("case %d: torn verdict with error: %v", i, err)
			}
			if torn && i == 1 {
				t.Fatal("non-tail decode failure reported as torn")
			}
			if err != nil {
				continue
			}
			// Note: committed derives from the frames' inner epoch stamps,
			// which the decoder trusts (real logs never stamp past the record
			// epoch), so only the lower bound is structural.
			if committed < snapEpoch {
				t.Fatalf("case %d: committed %d below snapshot %d", i, committed, snapEpoch)
			}
			for _, g := range groups {
				if g.Lo > g.Hi || g.Hi > committed {
					t.Fatalf("case %d: group bounds [%d, %d] vs committed %d", i, g.Lo, g.Hi, committed)
				}
			}
		}
	})
}
