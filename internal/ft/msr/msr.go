// Package msr implements MorphStreamR, the paper's contribution: instead
// of recording inter-transaction dependencies (DL's edges, LV's vectors),
// the Logging Manager records the intermediate results of dependencies the
// scheduler has already resolved — the AbortView (which transactions
// aborted) and the ParametricView (which value each parametric dependency
// consumed). During recovery these results eliminate logical and
// parametric dependencies outright, so operations restructure into
// independent per-key chains that replay in parallel without lock
// contention (Section V).
//
// Runtime cost is kept low by two mechanisms from Section VI:
//
//   - Selective logging: chains are grouped by a greedy weighted graph
//     partitioning; only dependencies crossing group boundaries — the ones
//     that would force cross-thread communication during recovery — are
//     logged. Intra-group dependencies are re-resolved during recovery by
//     the single worker owning the group (shadow-based exploration).
//   - Workload-aware log commitment: the engine's commit-epoch length is
//     chosen from profiled contention (see Advisor), trading group-commit
//     batching against view-index size and runtime load balance.
package msr

import (
	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// Options selects MorphStreamR's logging behaviour and recovery
// optimizations. The zero value disables everything (the paper's "Simple"
// factor-analysis configuration); Default enables everything.
type Options struct {
	// SelectiveLogging records only dependencies that cross chain-group
	// boundaries (Section VI-A). Off = log every resolved dependency.
	SelectiveLogging bool
	// OpRestructure resolves parametric dependencies from the
	// ParametricView during recovery (Section V-B2).
	OpRestructure bool
	// AbortPushdown discards input events of aborted transactions before
	// preprocessing during recovery (Section V-B1).
	AbortPushdown bool
	// OptTaskAssign uses LPT greedy task assignment during recovery
	// (Section V-B3); off = hash assignment.
	OptTaskAssign bool
}

// Default returns the full MorphStreamR configuration.
func Default() Options {
	return Options{
		SelectiveLogging: true,
		OpRestructure:    true,
		AbortPushdown:    true,
		OptTaskAssign:    true,
	}
}

// repartitionEvery controls how often selective logging recomputes the
// chain-group partitioning. Workload shape drifts slowly, so the groups of
// recently seen keys stay valid across epochs; recovery is insensitive to
// the choice because it classifies by view-entry presence, not by
// recomputing groups. Keys not covered by the cached partitioning are
// conservatively treated as inter-group (logged).
const repartitionEvery = 8

// Mech is the MorphStreamR mechanism.
type Mech struct {
	ftapi.GroupCommitter
	opts Options

	groupCache    map[types.Key]int
	groupCooldown int
}

// New creates the MSR mechanism writing to dev, accounting into bytes.
func New(dev storage.Device, bytes *metrics.Bytes, opts Options) *Mech {
	return &Mech{
		GroupCommitter: ftapi.NewGroupCommitter(dev, bytes, "msr-views", "msr-log"),
		opts:           opts,
	}
}

// Kind implements ftapi.Mechanism.
func (m *Mech) Kind() ftapi.Kind { return ftapi.MSR }

// Options returns the mechanism's configuration.
func (m *Mech) Options() Options { return m.opts }

// SealEpoch implements ftapi.Mechanism: it collects the epoch's AbortView
// and ParametricView. Under selective logging it first partitions the
// epoch's chains with the greedy graph partitioner and records only the
// parametric results whose edges cross groups.
func (m *Mech) SealEpoch(ep *ftapi.EpochResult) {
	var views codec.MSRViews
	var groups map[types.Key]int
	if m.opts.SelectiveLogging {
		if m.groupCache == nil || m.groupCooldown <= 0 {
			m.groupCache = PartitionChains(ep.Graph, ep.Workers)
			m.groupCooldown = repartitionEvery
		}
		m.groupCooldown--
		groups = m.groupCache
	}
	// needGroup collects the chains recovery must co-locate: the endpoints
	// of parametric dependencies deliberately left unlogged. Logical
	// dependencies never need co-location — the AbortView always carries
	// the full abort verdicts.
	var needGroup map[types.Key]struct{}
	for _, tn := range ep.Graph.Txns {
		if tn.Aborted() {
			views.Aborted = append(views.Aborted, tn.Txn.ID)
		}
		for _, opn := range tn.Ops {
			for i, src := range opn.PDSrc {
				if src == nil {
					continue
				}
				if groups != nil && sameGroup(groups, src.Op.Key, opn.Op.Key) {
					// Intra-group: shadow-resolved during recovery by the
					// worker owning both chains.
					if needGroup == nil {
						needGroup = make(map[types.Key]struct{})
					}
					needGroup[src.Op.Key] = struct{}{}
					needGroup[opn.Op.Key] = struct{}{}
					continue
				}
				views.Parametric = append(views.Parametric, codec.ViewEntry{
					From:  opn.Op.Deps[i],
					To:    opn.Op.Key,
					TS:    opn.Op.TS,
					Value: opn.DepVals[i],
				})
			}
		}
	}
	// Persist the group of every co-location-relevant chain: the group map
	// is itself an intermediate result of the resolved classification.
	if len(needGroup) > 0 {
		views.Groups = make([]codec.GroupEntry, 0, len(needGroup))
		for _, ch := range ep.Graph.ChainList {
			if _, need := needGroup[ch.Key]; need {
				views.Groups = append(views.Groups, codec.GroupEntry{Key: ch.Key, Group: uint8(groups[ch.Key])})
			}
		}
	}
	m.SealInto(ep.Epoch, func(w *codec.Buffer) { codec.EncodeMSRInto(w, views) })
}

// GC implements ftapi.Mechanism; views live only until their covering
// commit, so there is nothing left to drop.
func (m *Mech) GC(uint64) {}

// sameGroup reports whether both keys fall in the same cached group; keys
// the cached partitioning has not seen default to inter-group (logged).
func sameGroup(groups map[types.Key]int, a, b types.Key) bool {
	ga, ok := groups[a]
	if !ok {
		return false
	}
	gb, ok := groups[b]
	return ok && ga == gb
}

// PartitionChains groups an epoch's chains into k groups with the greedy
// weighted graph partitioner: chain weight is its operation count, edge
// weight the number of logical plus parametric dependencies between two
// chains. The result maps chain key to group. It is deterministic in the
// graph, which recovery relies on to reproduce the runtime classification.
func PartitionChains(g *tpg.Graph, k int) map[types.Key]int {
	n := len(g.ChainList)
	idx := make(map[*tpg.Chain]int32, n)
	for i, ch := range g.ChainList {
		idx[ch] = int32(i)
	}
	weights := make([]int, n)
	for i, ch := range g.ChainList {
		weights[i] = len(ch.Ops)
	}
	adj := make([][]int32, n)
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, tn := range g.Txns {
		for _, opn := range tn.Ops {
			if opn.CondSrc != nil {
				addEdge(idx[opn.CondSrc.Chain], idx[opn.Chain])
			}
			for _, src := range opn.PDSrc {
				if src != nil {
					addEdge(idx[src.Chain], idx[opn.Chain])
				}
			}
		}
	}
	assign := partition.GreedyAdj(weights, adj, k)
	out := make(map[types.Key]int, n)
	for i, ch := range g.ChainList {
		out[ch.Key] = assign[i]
	}
	return out
}
