package msr

import (
	"testing"

	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/workload"
)

// Merged commit-group replay: epochs committed together replay as one
// batch (the recovery-side benefit of longer log commitment epochs). The
// harness commits all epochs in one group, so recovery must merge them —
// and still converge to the oracle.
func TestMergedGroupReplayMatchesOracle(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes(), Default())
	h := fttest.New(t, fttest.SLGen(21), m, dev, 4)
	for i := 0; i < 4; i++ {
		h.RunEpoch(300)
	}
	h.Commit() // one group covering epochs 1-4
	st, _, committed := h.Recover(New(dev, metrics.NewBytes(), Default()))
	if committed != 4 {
		t.Fatalf("committed = %d, want 4", committed)
	}
	h.CheckAgainstOracle(st)
}

// Multiple separate commit groups replay group by group.
func TestPerGroupReplayMatchesOracle(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes(), Default())
	h := fttest.New(t, fttest.GSGen(22), m, dev, 4)
	h.RunEpoch(400)
	h.Commit()
	h.RunEpoch(400)
	h.RunEpoch(400)
	h.Commit()
	st, _, committed := h.Recover(New(dev, metrics.NewBytes(), Default()))
	if committed != 3 {
		t.Fatalf("committed = %d, want 3", committed)
	}
	h.CheckAgainstOracle(st)
}

// Every factor-analysis configuration must be state-correct, not merely
// fast — the optimizations change scheduling, never results.
func TestAllOptionCombinationsCorrect(t *testing.T) {
	for mask := 0; mask < 16; mask++ {
		opts := Options{
			SelectiveLogging: mask&1 != 0,
			OpRestructure:    mask&2 != 0,
			AbortPushdown:    mask&4 != 0,
			OptTaskAssign:    mask&8 != 0,
		}
		dev := storage.NewMem()
		m := New(dev, metrics.NewBytes(), opts)
		h := fttest.New(t, fttest.SLGen(23), m, dev, 4)
		for i := 0; i < 3; i++ {
			h.RunEpoch(250)
		}
		h.Commit()
		st, _, _ := h.Recover(New(dev, metrics.NewBytes(), opts))
		h.CheckAgainstOracle(st)
		if t.Failed() {
			t.Fatalf("state mismatch under options %+v", opts)
		}
	}
}

// Group entries persist only for chains that carry unlogged intra-group
// parametric dependencies; a workload without parametric dependencies
// (write-only) must log no group entries at all.
func TestGroupsOnlyWhenNeeded(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes(), Default())
	gp := workload.DefaultGSParams()
	gp.Seed, gp.Rows, gp.WriteOnly = 25, 512, true
	h := fttest.New(t, workload.NewGS(gp), m, dev, 4)
	h.RunEpoch(300)
	h.Commit()
	views := decodeSealed(t, m, dev, 1)[1]
	if len(views.Groups) != 0 {
		t.Errorf("write-only workload logged %d group entries; none needed", len(views.Groups))
	}
	if len(views.Parametric) != 0 {
		t.Errorf("write-only workload logged %d parametric entries", len(views.Parametric))
	}
}
