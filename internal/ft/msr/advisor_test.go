package msr

import (
	"testing"

	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

func profileOf(t *testing.T, gen workload.Generator, n int) Profile {
	t.Helper()
	st := store.New(gen.App().Tables())
	ep := runEpoch(t, gen, st, 1, n, 4)
	return ProfileGraph(ep.Graph)
}

// TestProfileQuadrants: the four Figure 9 workload classes must land in
// their quadrants when profiled.
func TestProfileQuadrants(t *testing.T) {
	mk := func(theta, mp float64) workload.Generator {
		p := workload.DefaultGSParams()
		p.Rows, p.Theta, p.MultiPartitionRatio, p.Reads = 4096, theta, mp, 3
		if mp == 0 {
			p.Reads = 0
		}
		return workload.NewGS(p)
	}
	cases := []struct {
		name  string
		gen   workload.Generator
		class string
	}{
		{"LSFD", mk(0, 0), "LSFD"},
		{"LSMD", mk(0, 0.9), "LSMD"},
		{"HSFD", mk(1.2, 0), "HSFD"},
		{"HSMD", mk(1.2, 0.9), "HSMD"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := profileOf(t, tc.gen, 2000)
			if got := p.Class(); got != tc.class {
				t.Errorf("profile %+v classified %s, want %s", p, got, tc.class)
			}
		})
	}
}

// TestRecommendations: the advisor's commit-epoch choices must follow the
// paper's trade-off: long for LSFD, medium for LSMD, short for HS*.
func TestRecommendations(t *testing.T) {
	lsfd := Profile{HotChainShare: 0.05, DepsPerOp: 0.1}
	lsmd := Profile{HotChainShare: 0.05, DepsPerOp: 0.6}
	hsmd := Profile{HotChainShare: 0.5, DepsPerOp: 0.6}
	if got := RecommendCommitEvery(lsfd, 8); got != 8 {
		t.Errorf("LSFD -> %d, want 8", got)
	}
	if got := RecommendCommitEvery(lsmd, 8); got != 4 {
		t.Errorf("LSMD -> %d, want 4", got)
	}
	if got := RecommendCommitEvery(hsmd, 8); got != 2 {
		t.Errorf("HSMD -> %d, want 2", got)
	}
	// Alignment: the recommendation must divide the snapshot interval.
	if got := RecommendCommitEvery(lsfd, 6); got != 6 && 6%got != 0 {
		t.Errorf("LSFD with SnapshotEvery=6 -> %d, which does not divide 6", got)
	}
	if got := RecommendCommitEvery(hsmd, 3); 3%got != 0 {
		t.Errorf("HSMD with SnapshotEvery=3 -> %d, which does not divide 3", got)
	}
}

func TestAdviseCommitEveryHook(t *testing.T) {
	gen := slGen(11)
	st := store.New(gen.App().Tables())
	ep := runEpoch(t, gen, st, 1, 500, 4)
	m := New(nil, nil, Default())
	got := m.AdviseCommitEvery(ep.Graph, 8)
	if got < 1 || 8%got != 0 {
		t.Errorf("advice %d must divide the snapshot interval 8", got)
	}
}

func TestProfileEmptyGraph(t *testing.T) {
	g := tpg.Build(nil, func(types.Key) types.Value { return 0 })
	if p := ProfileGraph(g); p.HotChainShare != 0 || p.DepsPerOp != 0 {
		t.Errorf("empty graph profile = %+v, want zeros", p)
	}
}

func TestSumTopK(t *testing.T) {
	vals := []int{5, 1, 9, 3, 7}
	if got := sumTopK(vals, 2); got != 16 {
		t.Errorf("sumTopK(2) = %d, want 16", got)
	}
	if got := sumTopK(vals, 10); got != 25 {
		t.Errorf("sumTopK(all) = %d, want 25", got)
	}
	if got := sumTopK(vals, 1); got != 9 {
		t.Errorf("sumTopK(1) = %d, want 9", got)
	}
}
