package msr

import (
	"fmt"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// viewKey addresses one ParametricView entry: the (From_key, To_key) pair
// of Figure 5 plus the consuming operation's timestamp.
type viewKey struct {
	From types.Key
	To   types.Key
	TS   uint64
}

// Recover implements ftapi.Mechanism. The protocol follows Figure 7:
// construct the intermediate-result indexes from the log records, then
// replay each committed epoch's input events with abort pushdown,
// operation restructuring, and optimized task assignment applied.
func (m *Mech) Recover(rc *ftapi.RecoveryContext) (uint64, error) {
	// Reload the view log.
	costs := vtime.Calibrate()
	readStop := metrics.SerialTimer(&rc.Breakdown.Reload, rc.Workers)
	cur, err := storage.ReadFrom(rc.Device, storage.LogFT, rc.SnapshotEpoch)
	readStop()
	if err != nil {
		return 0, fmt.Errorf("msr: recover: %w", err)
	}
	// Views stay segmented per commit group: each group commits (and was
	// group-committed) atomically, so its epochs replay as one merged
	// batch. Longer log commitment epochs therefore hand recovery larger
	// batches — more chains to balance, fewer scheduling rounds — which is
	// the recovery-side benefit the workload-aware commitment of Section
	// VI-B trades against runtime overhead. A torn tail record (the group
	// commit the device died inside) is discarded whole; its epochs
	// reprocess through the engine's uncommitted-tail path.
	decoded, committed, _, err := ftapi.DecodeCommittedCursor(cur, rc.SnapshotEpoch, rc.CommitLimit,
		func(_ uint64, payload []byte) (codec.MSRViews, error) { return codec.DecodeMSR(payload) })
	if err != nil {
		return 0, fmt.Errorf("msr: recover: %w", err)
	}
	type commitGroup struct {
		lo, hi uint64
		views  codec.MSRViews
		epochs map[uint64]bool
	}
	entries := 0
	var merged []commitGroup
	for _, dg := range decoded {
		cg := commitGroup{lo: dg.Lo, hi: dg.Hi, epochs: make(map[uint64]bool, len(dg.Epochs))}
		for _, ep := range dg.Epochs {
			views := ep.Recs
			cg.views.Aborted = append(cg.views.Aborted, views.Aborted...)
			cg.views.Parametric = append(cg.views.Parametric, views.Parametric...)
			cg.views.Groups = append(cg.views.Groups, views.Groups...)
			cg.epochs[ep.Epoch] = true
			entries += len(views.Aborted) + len(views.Parametric) + len(views.Groups)
		}
		merged = append(merged, cg)
	}
	// Decoding the (selectively small) view entries is part of reload;
	// group segments decode independently, so the work parallelizes.
	rc.Breakdown.Reload += time.Duration(entries) * costs.Record
	rc.Prof.SpreadPhase("view-decode", time.Duration(entries)*costs.Record)

	inputs := rc.InputsThrough(committed)
	for _, cg := range merged {
		batch := ftapi.EpochEvents{Epoch: cg.hi}
		covered := 0
		for _, ee := range inputs {
			if ee.Epoch >= cg.lo && ee.Epoch <= cg.hi {
				if !cg.epochs[ee.Epoch] {
					return 0, fmt.Errorf("msr: recover: no views for committed epoch %d", ee.Epoch)
				}
				batch.Events = append(batch.Events, ee.Events...)
				covered++
			}
		}
		if covered != len(cg.epochs) {
			return 0, fmt.Errorf("msr: recover: inputs missing for commit group %d-%d", cg.lo, cg.hi)
		}
		if err := m.replayEpoch(rc, batch, cg.views); err != nil {
			return 0, fmt.Errorf("msr: recover group %d-%d: %w", cg.lo, cg.hi, err)
		}
	}
	return committed, nil
}

// replayEpoch replays one committed epoch under the configured recovery
// optimizations. Outputs are suppressed: they were delivered before the
// crash (the epoch is committed).
func (m *Mech) replayEpoch(rc *ftapi.RecoveryContext, ee ftapi.EpochEvents, views codec.MSRViews) error {
	costs := vtime.Calibrate()
	// Index the views (Figure 7 step 3: construct intermediate results).
	abortSet := make(map[uint64]struct{}, len(views.Aborted))
	for _, id := range views.Aborted {
		abortSet[id] = struct{}{}
	}
	pview := make(map[viewKey]types.Value, len(views.Parametric))
	for _, e := range views.Parametric {
		pview[viewKey{From: e.From, To: e.To, TS: e.TS}] = e.Value
	}
	// The persisted chain-group map: the selective-logging contract says
	// every unlogged dependency is intra-group, so co-locating each
	// group's chains on one worker makes all surviving edges local.
	var groups map[types.Key]int
	if len(views.Groups) > 0 {
		groups = make(map[types.Key]int, len(views.Groups))
		for _, e := range views.Groups {
			groups[e.Key] = int(e.Group)
		}
	}
	rc.Breakdown.Construct += time.Duration(len(views.Aborted)+len(views.Parametric)+len(views.Groups)) * costs.Record
	rc.Prof.SpreadPhase("index", time.Duration(len(views.Aborted)+len(views.Parametric)+len(views.Groups))*costs.Record)

	// Abort pushdown (Figure 7 step 5): discard doomed input events before
	// preprocessing, eliminating their whole pipeline cost.
	events := ee.Events
	if m.opts.AbortPushdown && len(abortSet) > 0 {
		kept := make([]types.Event, 0, len(events))
		for _, ev := range events {
			if _, doomed := abortSet[ev.Seq]; doomed {
				continue
			}
			kept = append(kept, ev)
		}
		events = kept
		// One AbortView probe per input event.
		rc.Breakdown.Abort += time.Duration(len(ee.Events)) * costs.Lookup
		rc.Prof.SpreadPhase("abort-scan", time.Duration(len(ee.Events))*costs.Lookup)
	}

	// Preprocess and build the replay graph.
	txns := make([]*types.Txn, 0, len(events))
	for _, ev := range events {
		txn := rc.App.Preprocess(ev)
		txns = append(txns, &txn)
	}
	g := tpg.Build(txns, rc.Store.Get)
	rc.Breakdown.Construct += costs.GraphCost(len(events), g.NumOps)
	rc.Prof.SpreadPhase("build", costs.GraphCost(len(events), g.NumOps))

	// Operation restructuring (Figure 7 step 6): inject recorded
	// intermediate results to sever parametric edges, and — when abort
	// pushdown guarantees every remaining transaction commits — sever
	// logical edges too. A ParametricView entry's presence *is* the
	// selective-logging classification: inter-group resolutions were
	// logged, intra-group ones were not and keep their edges, which
	// shadow exploration resolves locally (the consumer's chain is
	// co-located with the producer's by task assignment below).
	severed := 0
	if m.opts.OpRestructure {
		for _, tn := range g.Txns {
			for _, opn := range tn.Ops {
				for i, src := range opn.PDSrc {
					if src == nil {
						continue
					}
					vk := viewKey{From: opn.Op.Deps[i], To: opn.Op.Key, TS: opn.Op.TS}
					v, ok := pview[vk]
					if !ok {
						continue // intra-group: not logged, resolve in place
					}
					opn.DepVals[i] = v
					unlinkPD(src, opn, i)
					severed++
				}
			}
		}
	}
	if m.opts.AbortPushdown {
		for _, tn := range g.Txns {
			cond := tn.Ops[0]
			for _, d := range cond.LDOut {
				d.CondSrc = nil
				d.AddPending(-1)
				severed++
			}
			cond.LDOut = nil
		}
	}

	// Task assignment (Figure 7 step 7): co-locate each logged group's
	// chains (their surviving dependencies are intra-group by the
	// selective-logging contract) and spread tasks by LPT.
	assignChains(g, groups, rc.Workers, m.opts.OptTaskAssign)
	rc.Breakdown.Construct += time.Duration(severed)*costs.Lookup +
		time.Duration(len(g.ChainList))*costs.Compare
	rc.Prof.SpreadPhase("restructure", time.Duration(severed)*costs.Lookup+
		time.Duration(len(g.ChainList))*costs.Compare)

	// Parallel replay, simulated in virtual time (see package vtime):
	// restructured chains carry no cross-worker edges, so workers run
	// stall-free; whatever dependencies survive (intra-group shadow
	// resolution, or everything under the Simple configuration) show up
	// as stalls.
	rc.Prof.BeginPhase("replay")
	result := vtime.SimulateGraphProf(g, rc.Store, rc.Workers, costs, rc.Prof)
	rc.Prof.EndPhase(result.Makespan)
	result.Charge(rc.Breakdown, false)
	return nil
}

// unlinkPD severs the parametric edge src -> (consumer, depIndex): the
// consumer's value now comes from the ParametricView, so the producer must
// no longer notify it (a stale notification would double-decrement the
// consumer's pending count).
func unlinkPD(src, consumer *tpg.OpNode, depIndex int) {
	consumer.PDSrc[depIndex] = nil
	for i, d := range src.PDOut {
		if d == consumer {
			src.PDOut = append(src.PDOut[:i], src.PDOut[i+1:]...)
			break
		}
	}
	consumer.AddPending(-1)
}

// assignChains sets every chain's owner for the replay run.
//
// With optimized task assignment and a persisted group map (selective
// logging), each group becomes one task: the partitioner already balanced
// the groups, and the logging contract guarantees unlogged dependencies
// stay inside them, so co-location makes every surviving edge local.
// Without a group map (full logging severed everything), chains still
// connected by surviving dependencies are grouped via union-find and
// spread by LPT on operation-count weights — with components exceeding a
// worker's fair share hash-spread instead, so a straggler component
// degrades to cross-worker resolution rather than serialising the replay.
// Without optimized assignment, chains fall back to hash placement — the
// runtime default, which skewed workloads punish.
func assignChains(g *tpg.Graph, groups map[types.Key]int, workers int, opt bool) {
	if !opt {
		hash := scheduler.HashAssign(workers)
		for _, ch := range g.ChainList {
			ch.Owner = hash(ch)
		}
		return
	}
	if groups != nil {
		weights := make([]int, workers)
		for _, ch := range g.ChainList {
			if t, ok := groups[ch.Key]; ok && t < workers {
				weights[t] += len(ch.Ops)
			}
		}
		taskWorker := partition.LPT(weights, workers)
		hash := scheduler.HashAssign(workers)
		for _, ch := range g.ChainList {
			if t, ok := groups[ch.Key]; ok && t < workers {
				ch.Owner = taskWorker[t]
			} else {
				// Chains the runtime classified after the cached
				// partitioning: their dependencies were logged (treated
				// as inter-group), so placement is unconstrained.
				ch.Owner = hash(ch)
			}
		}
		return
	}
	// Union chains along surviving LD/PD edges.
	idx := make(map[*tpg.Chain]int, len(g.ChainList))
	for i, ch := range g.ChainList {
		idx[ch] = i
	}
	uf := newUnionFind(len(g.ChainList))
	for _, tn := range g.Txns {
		for _, opn := range tn.Ops {
			if opn.CondSrc != nil {
				uf.union(idx[opn.CondSrc.Chain], idx[opn.Chain])
			}
			for _, src := range opn.PDSrc {
				if src != nil {
					uf.union(idx[src.Chain], idx[opn.Chain])
				}
			}
		}
	}
	// Tasks = connected components, weighted by operation count.
	taskOf := make(map[int]int)
	var weights []int
	taskIdx := make([]int, len(g.ChainList))
	total := 0
	for i, ch := range g.ChainList {
		root := uf.find(i)
		t, ok := taskOf[root]
		if !ok {
			t = len(weights)
			taskOf[root] = t
			weights = append(weights, 0)
		}
		weights[t] += len(ch.Ops)
		taskIdx[i] = t
		total += len(ch.Ops)
	}
	// A component larger than a worker's fair share would serialise the
	// replay if co-located; split it across workers by hash instead. Its
	// internal dependencies then resolve across threads — slower, but
	// parallel — exactly the graceful degradation a straggler needs.
	fair := total/workers + 1
	oversized := make([]bool, len(weights))
	for t, w := range weights {
		if w > fair+fair/4 {
			oversized[t] = true
			weights[t] = 0 // its chains leave the LPT pool
		}
	}
	taskWorker := partition.LPT(weights, workers)
	hash := scheduler.HashAssign(workers)
	for i, ch := range g.ChainList {
		if oversized[taskIdx[i]] {
			ch.Owner = hash(ch)
		} else {
			ch.Owner = taskWorker[taskIdx[i]]
		}
	}
}

// unionFind is a plain weighted-union, path-halving disjoint set.
type unionFind struct {
	parent []int
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
