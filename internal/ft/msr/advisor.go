package msr

import "morphstreamr/internal/tpg"

// This file implements workload-aware log commitment (Section VI-B): the
// commit-epoch length is chosen from two profiled workload characteristics,
// the skewness of state accesses and the density of cross-chain
// dependencies. The paper's Figure 9 quadrants map onto the profile as:
//
//	LSFD (low skew, few deps)   -> long epochs: batching wins everywhere.
//	LSMD (low skew, more deps)  -> medium epochs: view indexing offsets
//	                               part of the batching benefit.
//	HSFD/HSMD (high skew)       -> short epochs: skewed chains make large
//	                               commit batches load-imbalanced at
//	                               runtime, while recovery still prefers
//	                               batching — the compromise is short.

// Profile summarises one epoch's workload characteristics.
type Profile struct {
	// HotChainShare is the fraction of all operations that land on the
	// hottest 1% of chains (minimum one chain) — the skewness signal.
	HotChainShare float64
	// DepsPerOp is the number of logical plus parametric dependencies per
	// operation — the dependency-density signal.
	DepsPerOp float64
}

// Thresholds separating the Figure 9 quadrants.
const (
	highSkewThreshold = 0.20
	manyDepsThreshold = 0.25
)

// HighSkew reports whether the profile falls in the HS quadrants.
func (p Profile) HighSkew() bool { return p.HotChainShare > highSkewThreshold }

// ManyDeps reports whether the profile falls in the MD quadrants.
func (p Profile) ManyDeps() bool { return p.DepsPerOp > manyDepsThreshold }

// Class returns the paper's quadrant label (LSFD, LSMD, HSFD, HSMD).
func (p Profile) Class() string {
	switch {
	case !p.HighSkew() && !p.ManyDeps():
		return "LSFD"
	case !p.HighSkew():
		return "LSMD"
	case !p.ManyDeps():
		return "HSFD"
	default:
		return "HSMD"
	}
}

// ProfileGraph measures one epoch's graph.
func ProfileGraph(g *tpg.Graph) Profile {
	if g.NumOps == 0 {
		return Profile{}
	}
	// Skew: operations on the hottest 1% of chains.
	hot := len(g.ChainList) / 100
	if hot < 1 {
		hot = 1
	}
	// Selection without a full sort: find the hot chains by weight.
	weights := make([]int, len(g.ChainList))
	for i, ch := range g.ChainList {
		weights[i] = len(ch.Ops)
	}
	hotOps := sumTopK(weights, hot)

	// Dependency density is a property of the transaction shapes — how
	// many parameter reads and logical couplings each operation declares —
	// not of which producers happened to land in this epoch, so count the
	// declared dependencies rather than the resolved edges.
	deps := 0
	for _, tn := range g.Txns {
		for _, opn := range tn.Ops {
			if opn.CondSrc != nil {
				deps++
			}
			deps += len(opn.Op.Deps)
		}
	}
	return Profile{
		HotChainShare: float64(hotOps) / float64(g.NumOps),
		DepsPerOp:     float64(deps) / float64(g.NumOps),
	}
}

// sumTopK returns the sum of the k largest values.
func sumTopK(vals []int, k int) int {
	if k >= len(vals) {
		total := 0
		for _, v := range vals {
			total += v
		}
		return total
	}
	// Small k in practice (1% of chains): simple selection with a bounded
	// min-tracking slice.
	top := make([]int, 0, k)
	minIdx := 0
	for _, v := range vals {
		if len(top) < k {
			top = append(top, v)
			if top[minIdx] > v {
				minIdx = len(top) - 1
			}
			continue
		}
		if v > top[minIdx] {
			top[minIdx] = v
			for i, t := range top {
				if t < top[minIdx] {
					minIdx = i
				}
			}
		}
	}
	sum := 0
	for _, v := range top {
		sum += v
	}
	return sum
}

// AdviseCommitEvery implements the engine's Advisor hook: profile the
// first epoch's graph and recommend a log commitment interval.
func (m *Mech) AdviseCommitEvery(g *tpg.Graph, snapshotEvery int) int {
	return RecommendCommitEvery(ProfileGraph(g), snapshotEvery)
}

// RecommendCommitEvery maps a profile to a commit-epoch length in epochs,
// constrained to divide snapshotEvery so commit and snapshot markers stay
// aligned.
func RecommendCommitEvery(p Profile, snapshotEvery int) int {
	var want int
	switch {
	case !p.HighSkew() && !p.ManyDeps():
		want = 8
	case !p.HighSkew():
		want = 4
	default:
		want = 2
	}
	for want > 1 {
		if snapshotEvery%want == 0 {
			return want
		}
		want--
	}
	return 1
}
