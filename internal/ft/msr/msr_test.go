package msr

import (
	"testing"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// runEpoch executes one epoch of generated events and returns the sealed
// EpochResult the engine would hand the mechanism.
func runEpoch(t *testing.T, gen workload.Generator, st *store.Store, epoch uint64, n, workers int) *ftapi.EpochResult {
	t.Helper()
	events := workload.Batch(gen, n)
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := gen.App().Preprocess(events[i])
		txns[i] = &txn
	}
	g := tpg.Build(txns, st.Get)
	if _, err := scheduler.Run(g, st, scheduler.Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	return &ftapi.EpochResult{Epoch: epoch, Events: events, Graph: g, Workers: workers}
}

func slGen(seed int64) workload.Generator {
	p := workload.DefaultSLParams()
	p.Seed, p.Rows, p.AbortRatio, p.MultiPartitionRatio = seed, 512, 0.3, 0.8
	return workload.NewSL(p)
}

// decodeSealed commits the mechanism and decodes what landed on the device.
func decodeSealed(t *testing.T, m *Mech, dev storage.Device, hi uint64) map[uint64]codec.MSRViews {
	t.Helper()
	if err := m.Commit(hi); err != nil {
		t.Fatal(err)
	}
	recs, err := dev.ReadLog(storage.LogFT)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]codec.MSRViews)
	for _, rec := range recs {
		eps, err := ftapi.DecodeGroup(rec.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			views, err := codec.DecodeMSR(ep.Payload)
			if err != nil {
				t.Fatal(err)
			}
			out[ep.Epoch] = views
		}
	}
	return out
}

// TestSealRecordsAbortsAndViews: the AbortView must list exactly the
// aborted transactions, and the ParametricView must cover every
// cross-group parametric resolution with the consumed value.
func TestSealRecordsAbortsAndViews(t *testing.T) {
	gen := slGen(1)
	st := store.New(gen.App().Tables())
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes(), Default())

	ep := runEpoch(t, gen, st, 1, 400, 4)
	m.SealEpoch(ep)
	views := decodeSealed(t, m, dev, 1)[1]

	wantAborted := map[uint64]bool{}
	for _, tn := range ep.Graph.Txns {
		if tn.Aborted() {
			wantAborted[tn.Txn.ID] = true
		}
	}
	if len(wantAborted) == 0 {
		t.Fatal("test needs aborts; raise the abort ratio")
	}
	if len(views.Aborted) != len(wantAborted) {
		t.Fatalf("AbortView has %d ids, want %d", len(views.Aborted), len(wantAborted))
	}
	for _, id := range views.Aborted {
		if !wantAborted[id] {
			t.Fatalf("AbortView lists %d, which committed", id)
		}
	}

	// Every logged parametric entry must carry the value the consumer
	// actually used at runtime.
	index := map[[3]uint64]types.Value{}
	for _, tn := range ep.Graph.Txns {
		for _, opn := range tn.Ops {
			for i, src := range opn.PDSrc {
				if src != nil {
					index[[3]uint64{uint64(opn.Op.Deps[i].Row), uint64(opn.Op.Key.Row), opn.Op.TS}] = opn.DepVals[i]
				}
			}
		}
	}
	if len(views.Parametric) == 0 {
		t.Fatal("no parametric entries logged despite multi-partition transfers")
	}
	for _, e := range views.Parametric {
		want, ok := index[[3]uint64{uint64(e.From.Row), uint64(e.To.Row), e.TS}]
		if !ok {
			t.Fatalf("view entry %v->%v@%d has no matching runtime resolution", e.From, e.To, e.TS)
		}
		if e.Value != want {
			t.Fatalf("view entry %v->%v@%d value %d, runtime consumed %d", e.From, e.To, e.TS, e.Value, want)
		}
	}
}

// TestSelectiveLogsLess: selective logging must record no more parametric
// entries than full logging, and strictly fewer when intra-group
// dependencies exist.
func TestSelectiveLogsLess(t *testing.T) {
	count := func(selective bool) int {
		gen := slGen(3)
		st := store.New(gen.App().Tables())
		dev := storage.NewMem()
		opts := Default()
		opts.SelectiveLogging = selective
		m := New(dev, metrics.NewBytes(), opts)
		ep := runEpoch(t, gen, st, 1, 600, 4)
		m.SealEpoch(ep)
		return len(decodeSealed(t, m, dev, 1)[1].Parametric)
	}
	full, sel := count(false), count(true)
	if sel > full {
		t.Errorf("selective logged %d entries, full logged %d", sel, full)
	}
	if full == 0 {
		t.Fatal("full logging recorded nothing")
	}
	if sel == full {
		t.Logf("selective == full (%d); acceptable but unusual for SL", sel)
	}
}

// TestPartitionChainsDeterministicAndInRange: recovery recomputes the
// runtime partitioning, so it must be a pure function of the graph.
func TestPartitionChainsDeterministic(t *testing.T) {
	gen := slGen(5)
	st := store.New(gen.App().Tables())
	ep := runEpoch(t, gen, st, 1, 500, 4)
	a := PartitionChains(ep.Graph, 4)
	b := PartitionChains(ep.Graph, 4)
	if len(a) != len(ep.Graph.ChainList) {
		t.Fatalf("partitioning covers %d chains of %d", len(a), len(ep.Graph.ChainList))
	}
	for k, g := range a {
		if g < 0 || g >= 4 {
			t.Fatalf("chain %v in group %d", k, g)
		}
		if b[k] != g {
			t.Fatalf("PartitionChains nondeterministic at %v", k)
		}
	}
}

// TestRecoverMissingViewsFails: recovery must fail loudly, not silently
// produce wrong state, when a committed epoch's views are absent.
func TestRecoverMissingViewsFails(t *testing.T) {
	gen := slGen(7)
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes(), Default())
	events := workload.Batch(gen, 50)
	// Inputs exist for epoch 1 and the FT log claims epoch 1 committed,
	// but the group payload holds views for epoch 2 instead.
	bogus := ftapi.EncodeGroup([]ftapi.EpochPayload{{Epoch: 2, Payload: codec.EncodeMSR(codec.MSRViews{})}})
	if err := dev.Append(storage.LogFT, storage.Record{Epoch: 2, Payload: bogus}); err != nil {
		t.Fatal(err)
	}
	st := store.New(gen.App().Tables())
	var bd metrics.RecoveryBreakdown
	_, err := m.Recover(&ftapi.RecoveryContext{
		App: gen.App(), Store: st, Device: dev, Workers: 2,
		Inputs:    []ftapi.EpochEvents{{Epoch: 1, Events: events}},
		Breakdown: &bd,
	})
	if err == nil {
		t.Fatal("recovery with missing views must fail")
	}
}

func TestOptionsDefault(t *testing.T) {
	d := Default()
	if !d.SelectiveLogging || !d.OpRestructure || !d.AbortPushdown || !d.OptTaskAssign {
		t.Errorf("Default() = %+v; every optimization should be on", d)
	}
	m := New(storage.NewMem(), metrics.NewBytes(), d)
	if m.Kind() != ftapi.MSR || m.Options() != d {
		t.Error("mechanism identity wrong")
	}
}

func TestCommitClearsBuffer(t *testing.T) {
	gen := slGen(9)
	st := store.New(gen.App().Tables())
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes(), Default())
	m.SealEpoch(runEpoch(t, gen, st, 1, 100, 2))
	if err := m.Commit(1); err != nil {
		t.Fatal(err)
	}
	before := dev.BytesWritten()[storage.LogFT]
	if before == 0 {
		t.Fatal("commit wrote nothing")
	}
	// A second commit with an empty buffer must write nothing.
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	if dev.BytesWritten()[storage.LogFT] != before {
		t.Error("empty commit appended a record")
	}
}
