package lsnvector

import (
	"testing"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
)

func TestRecoverMatchesOracle(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(1), m, dev, 4)
	for i := 0; i < 4; i++ {
		h.RunEpoch(300)
	}
	h.Commit()
	st, bd, committed := h.Recover(New(dev, metrics.NewBytes()))
	if committed != 4 {
		t.Fatalf("committed = %d, want 4", committed)
	}
	h.CheckAgainstOracle(st)
	if bd.Execute == 0 {
		t.Errorf("breakdown missing execute time: %v", bd)
	}
}

func TestRecoverSkewedWorkload(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.GSGen(2), m, dev, 4)
	for i := 0; i < 3; i++ {
		h.RunEpoch(400)
	}
	h.Commit()
	st, _, _ := h.Recover(New(dev, metrics.NewBytes()))
	h.CheckAgainstOracle(st)
}

// decodeAll pulls every LV record off the device.
func decodeAll(t *testing.T, dev storage.Device) []codec.LVRecord {
	t.Helper()
	recs, err := dev.ReadLog(storage.LogFT)
	if err != nil {
		t.Fatal(err)
	}
	var out []codec.LVRecord
	for _, rec := range recs {
		groups, err := ftapi.DecodeGroup(rec.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range groups {
			rs, err := codec.DecodeLV(g.Payload)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rs...)
		}
	}
	return out
}

// TestLSNsMonotonicPerWorker: every worker's LSNs must increase by one in
// commit order — the invariant the replay's in-order bucket draining
// depends on.
func TestLSNsMonotonicPerWorker(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(3), m, dev, 4)
	h.RunEpoch(400)
	h.RunEpoch(400)
	h.Commit()
	next := map[uint32]uint64{}
	for _, rec := range decodeAll(t, dev) {
		want := next[rec.Worker] + 1
		if rec.LSN != want {
			t.Fatalf("worker %d: LSN %d, want %d", rec.Worker, rec.LSN, want)
		}
		next[rec.Worker] = rec.LSN
		if len(rec.Vector) != 4 {
			t.Fatalf("vector length %d, want 4 (one per worker)", len(rec.Vector))
		}
	}
	if len(next) < 2 {
		t.Errorf("only %d workers logged transactions; expected several", len(next))
	}
}

// TestVectorsRespectDependencies: for any two records where the later one
// names the earlier's (worker, LSN) in its vector, replay order is
// enforced; sanity-check that vectors never reference LSNs that do not
// exist yet (i.e. from the future).
func TestVectorsNeverReferenceFuture(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.GSGen(4), m, dev, 4)
	h.RunEpoch(500)
	h.Commit()
	recs := decodeAll(t, dev)
	// Track the max LSN assigned per worker at each point in commit order.
	high := map[uint32]uint64{}
	for _, rec := range recs {
		for w, lsn := range rec.Vector {
			if lsn > high[uint32(w)] && !(uint32(w) == rec.Worker && lsn == rec.LSN) {
				t.Fatalf("txn %d references (w%d, lsn %d) before it was assigned",
					rec.Event.Seq, w, lsn)
			}
		}
		if rec.LSN > high[rec.Worker] {
			high[rec.Worker] = rec.LSN
		}
	}
}

func TestGCRestartsLSNs(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(5), m, dev, 2)
	h.RunEpoch(200)
	h.Commit()
	m.GC(1)
	if err := dev.Truncate(storage.LogFT, 1); err != nil {
		t.Fatal(err)
	}
	h.RunEpoch(200)
	h.Commit()
	for _, rec := range decodeAll(t, dev) {
		if rec.LSN == 0 {
			t.Fatal("LSNs must start at 1")
		}
	}
	// First record per worker after GC restarts at LSN 1.
	seen := map[uint32]bool{}
	for _, rec := range decodeAll(t, dev) {
		if !seen[rec.Worker] {
			if rec.LSN != 1 {
				t.Errorf("worker %d restarted at LSN %d, want 1", rec.Worker, rec.LSN)
			}
			seen[rec.Worker] = true
		}
	}
}

func TestEmptyLogRecovery(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	_, _, committed := fttest.New(t, fttest.SLGen(6), m, dev, 2).Recover(m)
	if committed != 0 {
		t.Errorf("empty log committed = %d", committed)
	}
}
