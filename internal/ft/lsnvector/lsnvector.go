// Package lsnvector implements LV, lightweight parallel logging in the
// style of Taurus (Section III-B): each worker numbers the transactions it
// commits with a per-worker log sequence number (LSN), and every log
// record carries a dependency vector — one LSN per worker — encoding the
// partial order the transaction must respect during replay.
//
// Runtime cost: computing and materialising a worker-count-sized vector
// per transaction, the computation overhead the paper attributes to LV.
// Recovery: workers replay their own records in LSN order, each record
// waiting until the global recovered-LSN vector dominates its dependency
// vector; the waiting shows up as explore time (vector checking), which
// grows with the workload's dependency density — LV's weakness on SL.
package lsnvector

import (
	"fmt"
	"strconv"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// Mech is the LV mechanism.
type Mech struct {
	ftapi.GroupCommitter
	bytes *metrics.Bytes

	deps    *ftapi.DepTracker
	nextLSN []uint64
}

// New creates the LV mechanism writing to dev, accounting into bytes.
func New(dev storage.Device, bytes *metrics.Bytes) *Mech {
	return &Mech{
		GroupCommitter: ftapi.NewGroupCommitter(dev, bytes, "lv-buffer", "lv-log"),
		bytes:          bytes,
		deps:           ftapi.NewDepTracker(),
	}
}

// Kind implements ftapi.Mechanism.
func (m *Mech) Kind() ftapi.Kind { return ftapi.LV }

// SealEpoch implements ftapi.Mechanism: assigns each committed transaction
// to the worker that owned its condition operation's chain, stamps it with
// that worker's next LSN, and computes its dependency vector from the
// cross-epoch dependency tracker.
func (m *Mech) SealEpoch(ep *ftapi.EpochResult) {
	if len(m.nextLSN) < ep.Workers {
		grown := make([]uint64, ep.Workers)
		copy(grown, m.nextLSN)
		for i := len(m.nextLSN); i < ep.Workers; i++ {
			grown[i] = 1
		}
		if len(m.nextLSN) == 0 {
			for i := range grown {
				grown[i] = 1
			}
		}
		m.nextLSN = grown
	}
	recs := make([]codec.LVRecord, 0, len(ep.Graph.Txns))
	for _, tn := range ep.Graph.Txns {
		if tn.Aborted() {
			continue
		}
		w := uint32(tn.Ops[0].Chain.Owner)
		lsn := m.nextLSN[w]
		m.nextLSN[w]++
		self := ftapi.WriterRef{TxnID: tn.Txn.ID, Worker: w, LSN: lsn}
		vector := make([]uint64, ep.Workers)
		m.deps.TxnDeps(tn.Txn, self, func(ref ftapi.WriterRef) {
			if int(ref.Worker) < len(vector) && ref.LSN > vector[ref.Worker] {
				vector[ref.Worker] = ref.LSN
			}
		})
		// A worker's own records are implicitly ordered by LSN; the self
		// entry is redundant but kept when a dependency demands it anyway.
		recs = append(recs, codec.LVRecord{Event: tn.Txn.Event, Worker: w, LSN: lsn, Vector: vector})
	}
	m.SealInto(ep.Epoch, func(w *codec.Buffer) { codec.EncodeLVInto(w, recs) })
	m.accountTracker()
}

func (m *Mech) accountTracker() {
	live := int64(m.deps.Size()) * 32 // entries carry worker+LSN besides the key
	m.bytes.Free("lv-tracker", 1<<62)
	m.bytes.Alloc("lv-tracker", live)
}

// GC implements ftapi.Mechanism: LSNs restart after a snapshot, since all
// earlier records are truncated and their order is pre-satisfied.
func (m *Mech) GC(uint64) {
	m.deps.Reset()
	for i := range m.nextLSN {
		m.nextLSN[i] = 1
	}
	m.accountTracker()
}

// replayRec pairs a log record with its pre-built transaction.
type replayRec struct {
	rec codec.LVRecord
	txn types.Txn
}

// Recover implements ftapi.Mechanism: bucket the records per logging
// worker in LSN order, then let one goroutine per worker replay its bucket,
// each record spinning until the recovered-LSN vector dominates its
// dependency vector.
func (m *Mech) Recover(rc *ftapi.RecoveryContext) (uint64, error) {
	costs := vtime.Calibrate()
	readStop := metrics.SerialTimer(&rc.Breakdown.Reload, rc.Workers)
	cur, err := storage.ReadFrom(rc.Device, storage.LogFT, rc.SnapshotEpoch)
	readStop()
	if err != nil {
		return 0, fmt.Errorf("lsnvector: recover: %w", err)
	}
	// A torn tail record — the group commit the device died inside — is
	// discarded; its epochs reprocess through the uncommitted-tail path.
	groups, committed, _, err := ftapi.DecodeCommittedCursor(cur, rc.SnapshotEpoch, rc.CommitLimit,
		func(_ uint64, payload []byte) ([]codec.LVRecord, error) { return codec.DecodeLV(payload) })
	if err != nil {
		return 0, fmt.Errorf("lsnvector: recover: %w", err)
	}
	var recs []codec.LVRecord
	for _, cg := range groups {
		for _, ep := range cg.Epochs {
			recs = append(recs, ep.Recs...)
		}
	}
	// Decoding a worker-count-sized vector per record is part of reload;
	// group segments decode independently.
	rc.Breakdown.Reload += time.Duration(len(recs)) * (costs.Record + time.Duration(rc.Workers)*costs.Compare)
	rc.Prof.SpreadPhase("decode", time.Duration(len(recs))*(costs.Record+time.Duration(rc.Workers)*costs.Compare))
	if len(recs) == 0 {
		return committed, nil
	}

	// Construct: bucket records per logging worker, re-seed the runtime
	// dependency tracker and LSN counters (records arrive in timestamp
	// order), and pre-build the transactions to replay.
	buckets := 0
	for i := range recs {
		if int(recs[i].Worker)+1 > buckets {
			buckets = int(recs[i].Worker) + 1
		}
	}
	if buckets < rc.Workers {
		buckets = rc.Workers
	}
	m.deps.Reset()
	if len(m.nextLSN) < buckets {
		m.nextLSN = make([]uint64, buckets)
	}
	for i := range m.nextLSN {
		m.nextLSN[i] = 1
	}
	perWorker := make([][]replayRec, buckets)
	for _, rec := range recs {
		txn := rc.App.Preprocess(rec.Event)
		m.deps.Register(&txn, ftapi.WriterRef{TxnID: rec.Event.Seq, Worker: rec.Worker, LSN: rec.LSN})
		if next := rec.LSN + 1; next > m.nextLSN[rec.Worker] {
			m.nextLSN[rec.Worker] = next
		}
		perWorker[rec.Worker] = append(perWorker[rec.Worker], replayRec{rec: rec, txn: txn})
	}
	// Records were appended in commit order, so each bucket is already in
	// ascending LSN order; verify rather than trust the log.
	for w := range perWorker {
		for i := 1; i < len(perWorker[w]); i++ {
			if perWorker[w][i-1].rec.LSN >= perWorker[w][i].rec.LSN {
				return 0, fmt.Errorf("lsnvector: worker %d log out of LSN order", w)
			}
		}
	}
	rc.Breakdown.Construct += time.Duration(len(recs)) * (costs.Preprocess + costs.Record)
	rc.Prof.SpreadPhase("bucket", time.Duration(len(recs))*(costs.Preprocess+costs.Record))

	// Virtual replay: each logging worker drains its bucket in LSN order;
	// a record starts once the recovered-LSN vector dominates its
	// dependency vector, i.e. no earlier than every referenced record's
	// virtual finish time. The time a worker spends blocked is *explore*
	// time — Taurus workers actively poll the shared vector — and it grows
	// with the workload's dependency density, LV's weakness on SL.
	// Records execute for real in global timestamp order (which respects
	// every dependency), while the clocks are simulated.
	clocks := make([]vtime.Clock, buckets)
	// finishes[w][lsn-1] is the virtual finish time of (w, lsn); LSN
	// numbering restarts at 1 after every snapshot, so buckets index
	// contiguously.
	finishes := make([][]time.Duration, buckets)
	for w := range finishes {
		finishes[w] = make([]time.Duration, len(perWorker[w]))
	}
	pos := make([]int, buckets) // next unexecuted record per bucket
	// Critical-path bookkeeping (profiler only): LV's replay schedule is
	// fully determined by its log — records are pinned to their logging
	// worker and ordered by LSN — so a record's earliest finish chains
	// through both its own lane's predecessor and its vector dependencies,
	// and the explore charge (a pure function of the record's vector) is
	// part of the path.
	var efFin [][]time.Duration
	if rc.Prof != nil {
		efFin = make([][]time.Duration, buckets)
		for w := range efFin {
			efFin[w] = make([]time.Duration, len(perWorker[w]))
		}
		rc.Prof.BeginPhase("replay")
	}
	for _, rec := range recs {
		w := int(rec.Worker)
		rr := &perWorker[w][pos[w]]
		pos[w]++
		start := clocks[w].Now
		// Scanning the shared recovered-LSN vector costs a probe per
		// worker slot plus a synchronisation round-trip per referenced
		// dependency — the vector-checking overhead the paper singles
		// out for LV.
		explore := costs.Explore + time.Duration(len(rr.rec.Vector))*costs.Lookup
		blockV, blockLSN := -1, uint64(0) // binding cross-worker dependency
		for v := 0; v < len(rr.rec.Vector) && v < buckets; v++ {
			lsn := rr.rec.Vector[v]
			if v == w || lsn == 0 {
				continue
			}
			explore += costs.Sync
			if fin := finishes[v][lsn-1]; fin > start {
				start = fin
				blockV, blockLSN = v, lsn
			}
		}
		aborted := ftapi.ExecuteTxnOnStore(rc.Store, &rr.txn)
		cost := costs.TxnCost(&rr.txn)
		fin := clocks[w].Advance(start, explore, cost, aborted)
		finishes[w][rr.rec.LSN-1] = fin
		if rc.Prof != nil {
			var ef time.Duration
			if idx := int(rr.rec.LSN) - 2; idx >= 0 && idx < len(efFin[w]) {
				ef = efFin[w][idx] // own-lane LSN-order predecessor
			}
			edge, blocker := vtime.EdgeNone, ""
			if blockV >= 0 {
				edge = vtime.EdgeVec
				blocker = "t" + strconv.FormatUint(perWorker[blockV][blockLSN-1].rec.Event.Seq, 10)
			}
			for v := 0; v < len(rr.rec.Vector) && v < buckets; v++ {
				lsn := rr.rec.Vector[v]
				if v == w || lsn == 0 {
					continue
				}
				if e := efFin[v][lsn-1]; e > ef {
					ef = e
				}
			}
			ef += explore + cost
			efFin[w][rr.rec.LSN-1] = ef
			rc.Prof.Op(w, "t"+strconv.FormatUint(rr.rec.Event.Seq, 10),
				start, explore, cost, aborted, edge, blocker, ef)
		}
	}
	result := vtime.Finish(clocks)
	rc.Prof.EndPhase(result.Makespan)
	result.Charge(rc.Breakdown, true)
	return committed, nil
}
