package crashtest

import (
	"fmt"

	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// ShardConfig describes one sharded sweep: the usual mechanism, workload,
// shape, and fault flavour — fanned out over a shard group, with the fault
// injected into one device at a time.
type ShardConfig struct {
	Config
	// Shards is the group fan-out. Zero means 2.
	Shards int
	// SampleEvery strides the enumerated sites of each device (1 sweeps
	// every site; k sweeps every k-th). CI's race-enabled smoke uses a
	// stride so the exhaustive sweep stays a test-time decision.
	SampleEvery int
}

func (c *ShardConfig) normalize() error {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	return c.Config.normalize()
}

// ShardFailure is one diverged sharded crash point: the device the fault
// was injected into plus the usual site/mechanism/mode triple.
type ShardFailure struct {
	Device string
	Failure
}

func (f ShardFailure) String() string {
	return fmt.Sprintf("[%s] %v", f.Device, f.Failure)
}

// ShardResult summarises one sharded sweep.
type ShardResult struct {
	// SitesByDevice maps device name ("shard0".."shardN-1", "coord") to
	// its enumerated (target-filtered) write sites.
	SitesByDevice map[string][]storage.WriteSite
	// Runs counts full crash → parallel-recover → verify cycles.
	Runs int
	// Failures lists every diverged crash point; empty means pass.
	Failures []ShardFailure
}

// Sites counts all enumerated sites across devices.
func (r *ShardResult) Sites() int {
	n := 0
	for _, sites := range r.SitesByDevice {
		n += len(sites)
	}
	return n
}

// deviceName labels injection targets: per-shard devices and the
// coordinator's frontier-log device.
func deviceName(shards, i int) string {
	if i == shards {
		return "coord"
	}
	return fmt.Sprintf("shard%d", i)
}

// shardRef is the sharded sweep's reference run: the pre-generated global
// batches (one extra for the Continue epoch) and the sharded oracle.
type shardRef struct {
	app     types.App
	batches [][]types.Event
	orc     *shard.GroupOracle
}

func buildShardRef(cfg *ShardConfig) (*shardRef, error) {
	gen := cfg.NewGen()
	app := gen.App()
	batches := make([][]types.Event, cfg.Epochs+1)
	for i := range batches {
		batches[i] = workload.Batch(gen, cfg.EpochSize)
	}
	orc, err := shard.NewGroupOracle(app, cfg.Shards, batches)
	if err != nil {
		return nil, err
	}
	return &shardRef{app: app, batches: batches, orc: orc}, nil
}

// newShardGroup assembles a group of cfg's shape over the given devices.
func newShardGroup(cfg *ShardConfig, ref *shardRef, devs []storage.Device, coord storage.Device) (*shard.Group, error) {
	return shard.NewGroup(shard.Config{
		GroupShape: types.GroupShape{RunShape: cfg.RunShape, Shards: cfg.Shards},
		App:        ref.app,
		Kind:       cfg.Kind,
		Devices:    devs,
		CoordDev:   coord,
	})
}

// ShardEnumerate runs the sharded workload fault-free with a counting
// wrapper on every device and returns each device's (target-filtered)
// write sites. Per-device write sequences are deterministic — each shard's
// engine issues its own writes in program order regardless of how the
// shards interleave — which is what makes per-device crash points
// enumerable at all. The fault-free run doubles as the sanity check that
// the sharded protocol already matches its oracle.
func ShardEnumerate(cfg ShardConfig) (map[string][]storage.WriteSite, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ref, err := buildShardRef(&cfg)
	if err != nil {
		return nil, err
	}
	return shardEnumerate(&cfg, ref)
}

func shardEnumerate(cfg *ShardConfig, ref *shardRef) (map[string][]storage.WriteSite, error) {
	traces := make([]*storage.Trace, cfg.Shards+1)
	devs := make([]storage.Device, cfg.Shards)
	for i := range devs {
		st := storage.NewStack(storage.NewMem()).WithTrace()
		traces[i] = st.Trace
		devs[i] = st.MustBuild()
	}
	coordStack := storage.NewStack(storage.NewMem()).WithTrace()
	traces[cfg.Shards] = coordStack.Trace

	g, err := newShardGroup(cfg, ref, devs, coordStack.MustBuild())
	if err != nil {
		return nil, err
	}
	if err := g.Run(ref.batches[:cfg.Epochs]); err != nil {
		return nil, fmt.Errorf("crashtest: fault-free sharded run failed: %w", err)
	}
	for s := 0; s < cfg.Shards; s++ {
		if err := ref.orc.CheckState(s, uint64(cfg.Epochs), g.Engine(s).Store()); err != nil {
			return nil, fmt.Errorf("crashtest: fault-free sharded run already diverges: %w", err)
		}
	}
	out := make(map[string][]storage.WriteSite, len(traces))
	for i, trace := range traces {
		sites := trace.Sites()
		if cfg.Target != "" {
			var filtered []storage.WriteSite
			for _, s := range sites {
				if s.Name == cfg.Target {
					filtered = append(filtered, s)
				}
			}
			sites = filtered
		}
		out[deviceName(cfg.Shards, i)] = sites
	}
	return out, nil
}

// ShardSweep enumerates every durable write across all shard devices and
// the coordinator's frontier log, and replays the sharded workload once
// per site with that one device dying there: the group crashes, recovers
// all shards in parallel from the surviving media, and must come back
// oracle-equivalent — per-shard state, exactly-once application outputs,
// and (with Continue) a live post-recovery epoch.
func ShardSweep(cfg ShardConfig) (*ShardResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ref, err := buildShardRef(&cfg)
	if err != nil {
		return nil, err
	}
	sitesBy, err := shardEnumerate(&cfg, ref)
	if err != nil {
		return nil, err
	}
	res := &ShardResult{SitesByDevice: sitesBy}
	for d := 0; d <= cfg.Shards; d++ {
		name := deviceName(cfg.Shards, d)
		for k := 0; k < len(sitesBy[name]); k += cfg.SampleEvery {
			res.Runs++
			if err := shardRunOne(&cfg, ref, d, k); err != nil {
				res.Failures = append(res.Failures, ShardFailure{
					Device: name,
					Failure: Failure{
						Kind: cfg.Kind, Mode: cfg.Mode, Site: sitesBy[name][k], Err: err,
					},
				})
			}
		}
	}
	return res, nil
}

// shardRunOne executes one sharded crash-recover-verify cycle with device
// d (shard index, or Shards for the coordinator) dying at its k-th
// target-matching write.
func shardRunOne(cfg *ShardConfig, ref *shardRef, d, k int) error {
	inner := make([]storage.Device, cfg.Shards)
	devs := make([]storage.Device, cfg.Shards)
	for i := range inner {
		inner[i] = storage.NewMem()
		devs[i] = inner[i]
		if i == d {
			devs[i] = storage.NewStack(inner[i]).WithFaulty(k, cfg.Mode, cfg.Target).MustBuild()
		}
	}
	coordInner := storage.NewMem()
	coord := storage.Device(coordInner)
	if d == cfg.Shards {
		coord = storage.NewStack(coordInner).WithFaulty(k, cfg.Mode, cfg.Target).MustBuild()
	}

	g, err := newShardGroup(cfg, ref, devs, coord)
	if err != nil {
		return err
	}
	if procErr := g.Run(ref.batches[:cfg.Epochs]); procErr == nil {
		return fmt.Errorf("budget %d never hit the injected fault", k)
	}
	// Bank each shard's pre-crash ledger before abandoning the group.
	precrash := make([][]types.Output, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		precrash[s] = append([]types.Output(nil), g.Engine(s).Delivered()...)
	}
	g.Crash()

	// Parallel group recovery from the surviving media (the Faulty wrapper
	// stays dead; the inner devices are the platters that survived).
	g2, report, err := shard.GroupRecover(shard.RecoverConfig{
		Config: shard.Config{
			GroupShape: types.GroupShape{RunShape: recoverShape(&cfg.Config), Shards: cfg.Shards},
			App:        ref.app,
			Kind:       cfg.Kind,
			Devices:    inner,
			CoordDev:   coordInner,
		},
		Source: shard.BatchSource(ref.batches),
	})
	if err != nil {
		return fmt.Errorf("group recover: %w", err)
	}
	last := report.Target
	if last > uint64(cfg.Epochs) {
		return fmt.Errorf("recovered through epoch %d, beyond the %d run", last, cfg.Epochs)
	}
	for s := 0; s < cfg.Shards; s++ {
		if err := ref.orc.CheckState(s, last, g2.Engine(s).Store()); err != nil {
			return err
		}
	}
	if err := checkShardOutputs(cfg, ref, g2, precrash, last); err != nil {
		return err
	}
	if cfg.Continue && int(last) < len(ref.batches) {
		if err := g2.ProcessEpoch(ref.batches[last]); err != nil {
			return fmt.Errorf("post-recovery epoch %d: %w", last+1, err)
		}
		for s := 0; s < cfg.Shards; s++ {
			if err := ref.orc.CheckState(s, last+1, g2.Engine(s).Store()); err != nil {
				return fmt.Errorf("post-recovery: %w", err)
			}
		}
		if err := checkShardOutputs(cfg, ref, g2, precrash, last+1); err != nil {
			return fmt.Errorf("post-recovery: %w", err)
		}
	}
	return nil
}

// checkShardOutputs verifies exactly-once application delivery per shard —
// the union of each shard's pre-crash and post-recovery ledgers, with
// replication acknowledgements filtered — and the cross-shard agreement
// that the union over shards accounts for every event of the run exactly
// once (routing is a partition: no event may surface on two shards).
func checkShardOutputs(cfg *ShardConfig, ref *shardRef, g *shard.Group, precrash [][]types.Output, last uint64) error {
	global := make(map[uint64]int, cfg.EpochSize*int(last))
	for s := 0; s < cfg.Shards; s++ {
		union := append(append([]types.Output(nil), precrash[s]...), g.DeliveredUnion(s)...)
		union = shard.RealOutputs(union)
		pending := g.Engine(s).PendingOutputsMatching(func(o types.Output) bool {
			return !shard.IsReplication(o)
		})
		if err := ref.orc.CheckOutputs(s, last, union, pending); err != nil {
			return err
		}
		for _, out := range union {
			if prev, dup := global[out.EventSeq]; dup {
				return fmt.Errorf("event %d surfaced on shard %d and shard %d", out.EventSeq, prev, s)
			}
			global[out.EventSeq] = s
		}
	}
	return nil
}
