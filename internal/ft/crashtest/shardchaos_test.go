package crashtest

import (
	"testing"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/workload"
)

// TestShardChaosSingleKill kills one shard's device under sustained
// ingestion for each recoverable mechanism: the survivors must keep
// committing, the coordinator must heal the dead shard in place, and the
// whole run must stay oracle-equivalent with gap-free exactly-once
// outputs on every shard.
func TestShardChaosSingleKill(t *testing.T) {
	for _, kind := range []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV} {
		for _, kill := range []int{0, 2} {
			out, err := ShardChaos(ShardChaosConfig{
				Config: Config{
					Kind:   kind,
					NewGen: func() workload.Generator { return fttest.GSGen(43) },
				},
				Shards:    4,
				KillShard: kill,
				FaultAt:   8,
			})
			if err != nil {
				t.Fatalf("%v kill=%d: %v", kind, kill, err)
			}
			if out.Cause != "io-fatal" {
				t.Errorf("%v kill=%d: classified %q, want io-fatal", kind, kill, out.Cause)
			}
			if out.MTTR <= 0 {
				t.Errorf("%v kill=%d: zero MTTR", kind, kill)
			}
			if len(out.SurvivorCommits) != 4 {
				t.Fatalf("%v kill=%d: committed vector %v", kind, kill, out.SurvivorCommits)
			}
			// Survivors completed the interrupted epoch's processing; their
			// committed frontier is at most one commit interval behind it
			// and never behind the previous commit point.
			for s, committed := range out.SurvivorCommits {
				if s == kill {
					continue
				}
				if committed+2 < out.FailedEpoch {
					t.Errorf("%v kill=%d: survivor %d committed only through %d at a death in epoch %d",
						kind, kill, s, committed, out.FailedEpoch)
				}
			}
			t.Logf("%v kill=%d: died epoch %d, cause %s, MTTR %v, survivors %v",
				kind, kill, out.FailedEpoch, out.Cause, out.MTTR, out.SurvivorCommits)
		}
	}
}

// TestShardChaosTransientIsInvisible pins the boundary between the retry
// layer and the heal path at group scale: wrap one shard's device in the
// retry policy and script a transient storm — the group must absorb it
// with no shard death at all.
func TestShardChaosTransientIsInvisible(t *testing.T) {
	scfg := ShardConfig{
		Config: Config{
			Kind:   ftapi.WAL,
			NewGen: func() workload.Generator { return fttest.GSGen(43) },
		},
		Shards: 2,
	}
	if err := scfg.normalize(); err != nil {
		t.Fatal(err)
	}
	ref, err := buildShardRef(&scfg)
	if err != nil {
		t.Fatal(err)
	}
	retry := storage.RetryPolicy{
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		MaxAttempts: 5,
	}
	st := storage.NewStack(storage.NewMem()).WithFlaky().WithRetry(retry)
	st.Flaky.AddStorm(8, 2)
	devs := []storage.Device{st.MustBuild(), storage.NewMem()}
	g, err := newShardGroup(&scfg, ref, devs, storage.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(ref.batches[:scfg.Epochs]); err != nil {
		t.Fatalf("transient storm leaked through the retry layer: %v", err)
	}
	for s := 0; s < scfg.Shards; s++ {
		if err := ref.orc.CheckState(s, uint64(scfg.Epochs), g.Engine(s).Store()); err != nil {
			t.Fatal(err)
		}
	}
}
