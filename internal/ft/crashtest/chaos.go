package crashtest

import (
	"fmt"
	"sync/atomic"
	"time"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/supervisor"
	"morphstreamr/internal/tpg"
)

// Scenario names one chaos pattern driven through the supervisor. Where
// the crash-point sweep proves offline recovery correct, a chaos run
// proves the *online* story: the supervised engine keeps the exactly-once
// ledger through live fault storms, heals in-process, and resumes.
type Scenario int

// Chaos scenarios.
const (
	// TransientStorm scripts a short error storm the retry layer must
	// absorb: the run completes with ZERO recoveries.
	TransientStorm Scenario = iota
	// FatalHeal scripts one fatal device fault: the supervisor must heal
	// with EXACTLY ONE in-process recovery, and the recovery report must
	// match the offline crashtest path for the same crash site.
	FatalHeal
	// MidEpochPanic injects a worker panic mid-epoch: panic isolation
	// converts it to a failed epoch and the supervisor heals once.
	MidEpochPanic
)

func (s Scenario) String() string {
	switch s {
	case TransientStorm:
		return "transient-storm"
	case FatalHeal:
		return "fatal-heal"
	case MidEpochPanic:
		return "mid-epoch-panic"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// ChaosConfig shapes one supervised chaos run: the sweep Config describes
// the workload (so chaos runs and crash-point sweeps share one reference
// execution), the scenario describes the fault.
type ChaosConfig struct {
	// Config is the workload shape; its Mode and Target fields are unused
	// here (chaos injects through Flaky, not Faulty).
	Config
	Scenario Scenario
	// FaultAt is the 0-based durable-write index the device fault lands on
	// (default 5 — mid-run for every mechanism at the default shape).
	// Ignored for MidEpochPanic, whose site is an op-count threshold.
	FaultAt int
	// StormLen is the transient storm length (default 3).
	StormLen int
	// StallTimeout passes through to the supervisor (default 2s; chaos
	// scenarios never stall, so this only bounds harness hangs).
	StallTimeout time.Duration
	// Obs, when non-nil, passes through to the supervisor: the chaos run's
	// epochs, heals, and state transitions land in its registry and tracer,
	// so a live /trace capture shows the incident end to end.
	Obs *obs.Observer
}

func (c *ChaosConfig) normalizeChaos() error {
	if err := c.Config.normalize(); err != nil {
		return err
	}
	if c.FaultAt <= 0 {
		c.FaultAt = 5
	}
	if c.StormLen <= 0 {
		c.StormLen = 3
	}
	return nil
}

// ChaosOutcome reports what one chaos run observed. Chaos verifies the
// run against the oracle before returning it, so a non-error outcome
// means state equality and exactly-once delivery already held.
type ChaosOutcome struct {
	Scenario   Scenario
	Kind       ftapi.Kind
	Pipeline   bool
	Recoveries int
	// Detection is fault occurrence (first injection, or the panic) to
	// supervisor detection; zero when nothing escalated.
	Detection time.Duration
	// MTTR is detection to recovery complete and the stream resumed; zero
	// when the scenario healed below the supervisor (TransientStorm).
	MTTR time.Duration
	// RetryStats aggregates transient absorption across incarnations.
	RetryStats storage.RetryStats
	// Incidents is the supervisor's incident log.
	Incidents []metrics.Incident
	// Reports holds the recovery reports of any heals.
	Reports []*engine.RecoveryReport
	// OfflineMatch reports whether the supervised recovery report agreed
	// with the offline crashtest recovery of the same crash site
	// (FatalHeal only; vacuously true otherwise).
	OfflineMatch bool
	// Wall is the whole supervised run's wall-clock time.
	Wall time.Duration
}

// Chaos executes one supervised chaos run and verifies it: scenario-exact
// recovery count, final state equal to the oracle, and exactly-once
// outputs across every incarnation. Any divergence is the returned error.
func Chaos(cc ChaosConfig) (*ChaosOutcome, error) {
	if err := cc.normalizeChaos(); err != nil {
		return nil, err
	}
	cfg := &cc.Config
	ref := buildOracle(cfg)

	st := storage.NewStack(storage.NewMem()).WithFlaky()
	flaky := st.Flaky
	var fireHook func(*tpg.OpNode)
	var panicAt atomic.Int64 // wall-clock ns of the injected panic
	retry := storage.RetryPolicy{
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
	}
	switch cc.Scenario {
	case TransientStorm:
		flaky.AddStorm(cc.FaultAt, cc.StormLen)
		// Each retried attempt consumes one storm arrival, so a storm of
		// length n needs n+1 attempts; leave margin.
		retry.MaxAttempts = cc.StormLen + 3
	case FatalHeal:
		flaky.AddOutage(cc.FaultAt, 1)
	case MidEpochPanic:
		// Panic once, mid-stream: ops fired ≥ events, so half the event
		// count is always reached and always before the run ends.
		threshold := int64(cfg.Epochs*cfg.EpochSize) / 2
		var fired atomic.Int64
		var armed atomic.Bool
		armed.Store(true)
		fireHook = func(*tpg.OpNode) {
			if fired.Add(1) == threshold && armed.CompareAndSwap(true, false) {
				panicAt.Store(time.Now().UnixNano())
				panic("chaos: injected mid-epoch op panic")
			}
		}
	default:
		return nil, fmt.Errorf("chaos: unknown scenario %v", cc.Scenario)
	}

	gen := cfg.NewGen()
	sup, err := supervisor.New(supervisor.Config{
		RunShape: cfg.RunShape,
		App:      gen.App(),
		Device:   st.MustBuild(),
		Mechanism: func(dev storage.Device, bytes *metrics.Bytes) ftapi.Mechanism {
			return core.NewMechanism(cfg.Kind, dev, bytes, msr.Default())
		},
		Source:       supervisor.BatchSource(ref.batches),
		Retry:        retry,
		StallTimeout: cc.StallTimeout,
		FireHook:     fireHook,
		Obs:          cc.Obs,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sup.Run(); err != nil {
		return nil, fmt.Errorf("chaos %v/%v: supervised run: %w", cfg.Kind, cc.Scenario, err)
	}
	out := &ChaosOutcome{
		Scenario:     cc.Scenario,
		Kind:         cfg.Kind,
		Pipeline:     cfg.Pipeline,
		Recoveries:   sup.Recoveries(),
		RetryStats:   sup.RetryStats(),
		Incidents:    sup.Health().Incidents(),
		Reports:      sup.Reports(),
		OfflineMatch: true,
		Wall:         time.Since(start),
	}

	// Scenario-exact healing behaviour.
	wantRecoveries := 1
	if cc.Scenario == TransientStorm {
		wantRecoveries = 0
	}
	if out.Recoveries != wantRecoveries {
		return nil, fmt.Errorf("chaos %v/%v: %d recoveries, want %d",
			cfg.Kind, cc.Scenario, out.Recoveries, wantRecoveries)
	}
	if cc.Scenario == TransientStorm && out.RetryStats.Absorbed == 0 {
		return nil, fmt.Errorf("chaos %v/%v: storm never exercised the retry layer", cfg.Kind, cc.Scenario)
	}

	// Detection latency and MTTR from the incident log.
	if len(out.Incidents) > 0 {
		inc := out.Incidents[0]
		out.MTTR = inc.MTTR
		if at, ok := flaky.FirstInjectionAt(); ok {
			out.Detection = inc.DetectedAt.Sub(at)
		} else if ns := panicAt.Load(); ns != 0 {
			out.Detection = inc.DetectedAt.Sub(time.Unix(0, ns))
		} else {
			out.Detection = inc.Detection
		}
	}

	// Oracle verification: final state and exactly-once outputs across all
	// incarnations.
	last := uint64(cfg.Epochs)
	if err := ref.checkState(last, sup.Engine().Store()); err != nil {
		return nil, fmt.Errorf("chaos %v/%v: %w", cfg.Kind, cc.Scenario, err)
	}
	if err := ref.checkOutputs(last, sup.Outputs(), sup.Engine().PendingOutputs()); err != nil {
		return nil, fmt.Errorf("chaos %v/%v: %w", cfg.Kind, cc.Scenario, err)
	}

	// FatalHeal: the supervised recovery must tell the same story as the
	// offline crashtest path for the same crash site. Flaky's outage at
	// write k and Faulty's budget k leave identical device content at
	// recovery time, so the deterministic report fields must agree.
	if cc.Scenario == FatalHeal {
		offline, err := offlineReport(cfg, ref, cc.FaultAt)
		if err != nil {
			return nil, fmt.Errorf("chaos %v/%v: offline twin: %w", cfg.Kind, cc.Scenario, err)
		}
		if len(out.Reports) != 1 {
			return nil, fmt.Errorf("chaos %v/%v: %d recovery reports, want 1", cfg.Kind, cc.Scenario, len(out.Reports))
		}
		sr := out.Reports[0]
		if sr.SnapshotEpoch != offline.SnapshotEpoch ||
			sr.CommittedEpoch != offline.CommittedEpoch ||
			sr.LastEpoch != offline.LastEpoch ||
			sr.EventsReplayed != offline.EventsReplayed {
			out.OfflineMatch = false
			return nil, fmt.Errorf(
				"chaos %v/%v: supervised recovery (snap=%d committed=%d last=%d replayed=%d) "+
					"!= offline crashtest recovery (snap=%d committed=%d last=%d replayed=%d)",
				cfg.Kind, cc.Scenario,
				sr.SnapshotEpoch, sr.CommittedEpoch, sr.LastEpoch, sr.EventsReplayed,
				offline.SnapshotEpoch, offline.CommittedEpoch, offline.LastEpoch, offline.EventsReplayed)
		}
	}
	return out, nil
}

// offlineReport replays the workload against a Faulty device dying
// fail-stop at 0-based write k — exactly the device content a Flaky
// outage at write k leaves behind — and returns the offline recovery
// report for comparison against the supervised one.
func offlineReport(cfg *Config, ref *oracleRef, k int) (*engine.RecoveryReport, error) {
	inner := storage.NewMem()
	dev := storage.NewStack(inner).WithFaulty(k, storage.FailStop, "").MustBuild()
	gen := cfg.NewGen()
	e, err := newEngine(cfg, dev, gen)
	if err != nil {
		return nil, err
	}
	if procErr := processAll(e, ref.batches); procErr == nil {
		return nil, fmt.Errorf("budget %d never hit the injected fault", k)
	}
	e.Crash()
	bytes := metrics.NewBytes()
	_, report, err := engine.Recover(engine.Config{
		RunShape:  recoverShape(cfg),
		App:       gen.App(),
		Device:    inner,
		Mechanism: core.NewMechanism(cfg.Kind, inner, bytes, msr.Default()),
		Bytes:     bytes,
	})
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	return report, nil
}
