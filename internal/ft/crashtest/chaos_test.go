package crashtest

import (
	"fmt"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// TestChaosMatrix drives the supervisor through every fault scenario for
// every recoverable mechanism, pipelined and not: transient storms heal
// with zero recoveries, fatal faults and mid-epoch panics with exactly
// one, and every run's final state and output ledger match the oracle.
// Chaos() itself performs the verification; a non-nil error is a failure.
func TestChaosMatrix(t *testing.T) {
	kinds := []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	scenarios := []Scenario{TransientStorm, FatalHeal, MidEpochPanic}
	for _, kind := range kinds {
		for _, sc := range scenarios {
			for _, pipelined := range []bool{false, true} {
				kind, sc, pipelined := kind, sc, pipelined
				name := fmt.Sprintf("%v/%v/pipelined=%v", kind, sc, pipelined)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					out, err := Chaos(ChaosConfig{
						Config: Config{
							Kind:     kind,
							NewGen:   func() workload.Generator { return fttest.SLGen(61) },
							RunShape: types.RunShape{Pipeline: pipelined},
						},
						Scenario: sc,
					})
					if err != nil {
						t.Fatal(err)
					}
					if sc == FatalHeal {
						if !out.OfflineMatch {
							t.Fatal("supervised recovery diverged from the offline crashtest path")
						}
						if out.MTTR <= 0 {
							t.Fatalf("MTTR not measured: %+v", out)
						}
					}
					if sc == MidEpochPanic && len(out.Incidents) == 1 && out.Incidents[0].Cause != "panic" {
						t.Fatalf("panic classified as %q", out.Incidents[0].Cause)
					}
				})
			}
		}
	}
}

// TestChaosFaultSitePlacement moves the fatal fault across the write
// sequence — early (before the first commit), middle, and late — to cover
// heals that resume from different punctuations.
func TestChaosFaultSitePlacement(t *testing.T) {
	for _, at := range []int{1, 4, 9} {
		at := at
		t.Run(fmt.Sprintf("write=%d", at), func(t *testing.T) {
			t.Parallel()
			_, err := Chaos(ChaosConfig{
				Config: Config{
					Kind:   ftapi.WAL,
					NewGen: func() workload.Generator { return fttest.SLGen(67) },
				},
				Scenario: FatalHeal,
				FaultAt:  at,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosLongStorm stretches the storm to many consecutive writes and
// the retry budget with it: still zero recoveries, still oracle-equal.
func TestChaosLongStorm(t *testing.T) {
	out, err := Chaos(ChaosConfig{
		Config: Config{
			Kind:   ftapi.MSR,
			NewGen: func() workload.Generator { return fttest.SLGen(71) },
		},
		Scenario: TransientStorm,
		StormLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.RetryStats.Retries < 8 {
		t.Fatalf("storm of 8 produced only %d retries", out.RetryStats.Retries)
	}
}
