// Package crashtest is the exhaustive crash-point sweep harness: it proves
// that recovery is correct no matter which durable write the device dies
// on, for every fault-tolerance mechanism and every fault flavour.
//
// The harness exploits determinism end to end. A seeded workload produces
// the same event sequence on every run, and the engine issues the same
// durable writes in the same order for it, so the sweep can:
//
//  1. run the workload once against a counting device (storage.Trace) to
//     enumerate every durable write — input appends, group commits,
//     snapshot blobs, GC truncations — as storage.WriteSite values;
//  2. run an oracle pass capturing the reference state after every epoch
//     and the reference output of every event;
//  3. for each enumerated site k, re-run the same workload against a
//     storage.Faulty device that dies exactly at write k (fail-stop, torn
//     write, or dropped tail), crash the engine, recover from the
//     surviving medium, and check the recovered store against the oracle
//     state of the recovered epoch and the union of delivered outputs for
//     exactly-once delivery.
//
// A sweep failure pinpoints the write site, mechanism, and fault mode that
// diverged — "WAL under torn-write dies at write 7: append[ft] epoch=4 and
// recovers the wrong value for {table 0 row 12}" — which is the whole
// debugging loop for recovery bugs.
package crashtest

import (
	"fmt"
	"sort"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Config describes one sweep: a mechanism, a seeded workload shape, and a
// fault flavour.
type Config struct {
	// Kind is the fault-tolerance mechanism under test.
	Kind ftapi.Kind
	// NewGen returns a fresh generator of the same seeded workload; it is
	// called once per pass, so every pass sees the identical event stream.
	NewGen func() workload.Generator
	// Epochs and EpochSize shape the run: Epochs punctuation intervals of
	// EpochSize events each.
	Epochs    int
	EpochSize int
	// RunShape carries the engine knobs (Workers, CommitEvery,
	// SnapshotEvery, Pipeline — submitting batches as one ProcessEpochs run
	// so epoch N+1 builds while N executes; the durable write sequence must
	// be identical to the sequential schedule, so the same sweep invariants
	// apply verbatim). When every numeric knob is left zero the sweep
	// substitutes DefaultSweepShape, a compact shape that exercises both
	// marker kinds several times per run; partial settings fall through to
	// the tree-wide RunShape defaults.
	types.RunShape
	// Mode is what the dying write leaves on the medium.
	Mode storage.FaultMode
	// Target, when non-empty, restricts the sweep to writes touching that
	// log or blob (e.g. storage.LogFT sweeps only group-commit records).
	Target string
	// Continue additionally processes one post-recovery epoch and checks
	// the state again, proving the recovered engine is live, not a husk.
	Continue bool
	// Store selects the base medium under the fault wrappers: "mem" (the
	// default flat in-memory device) or "seg", the bounded segment store —
	// whose durable write sites (seals, index pops, segment reuse) the
	// sweep then crosses exactly like any other.
	Store string
	// SegmentBytes sets the segment payload cap when Store is "seg"; small
	// values force records across segment seals so torn writes land inside
	// and astride sealed segments. Zero keeps the SegStore default.
	SegmentBytes int
}

// DefaultSweepShape is the run shape the sweep uses when the caller left
// Workers, CommitEvery, and SnapshotEvery all unset: two workers, commit
// markers every 2 epochs, snapshots every 4 — small enough that the
// exhaustive per-write replay stays fast, dense enough that every marker
// kind fires several times per 6-epoch run.
func DefaultSweepShape() types.RunShape {
	return types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 4}
}

func (c *Config) normalize() error {
	if c.Epochs <= 0 {
		c.Epochs = 6
	}
	if c.EpochSize <= 0 {
		c.EpochSize = 24
	}
	if c.Workers == 0 && c.CommitEvery == 0 && c.SnapshotEvery == 0 {
		shape := DefaultSweepShape()
		shape.AutoCommit = c.AutoCommit
		shape.Pipeline = c.Pipeline
		shape.Adaptive = c.Adaptive
		c.RunShape = shape
	}
	if err := c.RunShape.Normalize(); err != nil {
		return fmt.Errorf("crashtest: %w", err)
	}
	switch c.Store {
	case "":
		c.Store = "mem"
	case "mem", "seg":
	default:
		return fmt.Errorf("crashtest: unknown store %q (want \"mem\" or \"seg\")", c.Store)
	}
	return nil
}

// newBase builds the configured base medium. Every pass — enumeration,
// oracle, and each crash replay — uses a fresh one so runs stay identical.
func newBase(cfg *Config) storage.Device {
	if cfg.Store == "seg" {
		return storage.NewSegStore(storage.SegConfig{SegmentBytes: cfg.SegmentBytes})
	}
	return storage.NewMem()
}

// Failure records one crash point whose recovery diverged.
type Failure struct {
	Kind ftapi.Kind
	Mode storage.FaultMode
	Site storage.WriteSite
	Err  error
}

// String renders the failure the way acceptance reports want it: exact
// write site, mechanism, and fault mode.
func (f Failure) String() string {
	return fmt.Sprintf("%v under %v dies at %v: %v", f.Kind, f.Mode, f.Site, f.Err)
}

// Result summarises one sweep.
type Result struct {
	// Sites are the crash points swept (already filtered to Target).
	Sites []storage.WriteSite
	// Runs counts full crash-recover-verify cycles executed.
	Runs int
	// Failures lists every diverged crash point; empty means the sweep
	// passed.
	Failures []Failure
}

// oracleRef is the reference run: pre-generated per-epoch batches, the
// oracle state after every epoch, and the oracle output of every event.
type oracleRef struct {
	specs   []types.TableSpec
	batches [][]types.Event // batches[e-1] is epoch e's events
	states  []map[types.Key]types.Value
	inits   map[types.TableID]types.Value
	outputs map[uint64]types.Output // by EventSeq
	events  []int                   // events[e] = total events through epoch e
}

func buildOracle(cfg *Config) *oracleRef {
	gen := cfg.NewGen()
	ref := &oracleRef{
		specs:   gen.App().Tables(),
		inits:   make(map[types.TableID]types.Value),
		outputs: make(map[uint64]types.Output),
		states:  []map[types.Key]types.Value{{}}, // states[0]: initial
		events:  []int{0},
	}
	for _, sp := range ref.specs {
		ref.inits[sp.ID] = sp.Init
	}
	o := oracle.New(gen.App())
	total := 0
	for e := 1; e <= cfg.Epochs; e++ {
		batch := workload.Batch(gen, cfg.EpochSize)
		ref.batches = append(ref.batches, batch)
		for _, ev := range batch {
			ref.outputs[ev.Seq] = o.Apply(ev)
		}
		total += len(batch)
		ref.states = append(ref.states, o.State())
		ref.events = append(ref.events, total)
	}
	return ref
}

// value returns the reference value of k after epoch e.
func (r *oracleRef) value(e uint64, k types.Key) types.Value {
	if v, ok := r.states[e][k]; ok {
		return v
	}
	return r.inits[k.Table]
}

// checkState compares a recovered store against the reference state after
// epoch e, returning a description of the first divergences.
func (r *oracleRef) checkState(e uint64, st storeReader) error {
	var diffs []string
	for _, sp := range r.specs {
		for row := uint32(0); row < sp.Rows; row++ {
			k := types.Key{Table: sp.ID, Row: row}
			if got, want := st.Get(k), r.value(e, k); got != want {
				if len(diffs) < 3 {
					diffs = append(diffs, fmt.Sprintf("%v: got %d want %d", k, got, want))
				} else {
					diffs = append(diffs, "...")
					goto done
				}
			}
		}
	}
done:
	if len(diffs) > 0 {
		return fmt.Errorf("state diverges from oracle at epoch %d: %v", e, diffs)
	}
	return nil
}

// storeReader is the slice of store.Store the checker needs.
type storeReader interface {
	Get(types.Key) types.Value
}

// checkOutputs verifies exactly-once delivery: the union of outputs
// delivered before the crash and during/after recovery must contain no
// duplicates, match the oracle value-for-value, and together with the
// still-pending outputs account for every event through epoch last.
func (r *oracleRef) checkOutputs(last uint64, delivered []types.Output, pending int) error {
	sort.Slice(delivered, func(i, j int) bool { return delivered[i].EventSeq < delivered[j].EventSeq })
	seen := make(map[uint64]bool, len(delivered))
	for _, out := range delivered {
		if seen[out.EventSeq] {
			return fmt.Errorf("output for event %d delivered twice", out.EventSeq)
		}
		seen[out.EventSeq] = true
		want, ok := r.outputs[out.EventSeq]
		if !ok {
			return fmt.Errorf("output for unknown event %d delivered", out.EventSeq)
		}
		if out.Kind != want.Kind || len(out.Vals) != len(want.Vals) {
			return fmt.Errorf("output for event %d diverges: got %+v want %+v", out.EventSeq, out, want)
		}
		for i := range out.Vals {
			if out.Vals[i] != want.Vals[i] {
				return fmt.Errorf("output for event %d diverges: got %+v want %+v", out.EventSeq, out, want)
			}
		}
	}
	if got, want := len(delivered)+pending, r.events[last]; got != want {
		return fmt.Errorf("delivered %d + pending %d outputs != %d events through epoch %d",
			len(delivered), pending, want, last)
	}
	return nil
}

// newEngine assembles an engine of cfg's shape over dev.
func newEngine(cfg *Config, dev storage.Device, gen workload.Generator) (*engine.Engine, error) {
	bytes := metrics.NewBytes()
	return engine.New(engine.Config{
		RunShape:  cfg.RunShape,
		App:       gen.App(),
		Device:    dev,
		Mechanism: core.NewMechanism(cfg.Kind, dev, bytes, msr.Default()),
		Bytes:     bytes,
	})
}

// recoverShape is the crashed run's shape with the live-run-only knobs
// cleared: recovery neither pipelines (it replays one tail sequentially)
// nor re-runs the commit-interval advisor.
func recoverShape(cfg *Config) types.RunShape {
	shape := cfg.RunShape
	shape.Pipeline = false
	shape.AutoCommit = false
	return shape
}

// processAll drives the reference batches through the engine as one
// ProcessEpochs run — pipelined when the engine was built with
// Config.Pipeline — whose first failing epoch surfaces as the error.
func processAll(e *engine.Engine, batches [][]types.Event) error {
	return e.ProcessEpochs(batches)
}

// Enumerate runs the workload fault-free against a counting device and
// returns every durable write site, filtered to cfg.Target. The fault-free
// run doubles as a sanity check: it must complete and already match the
// oracle, or the sweep's premise (faults cause any divergence) is wrong.
func Enumerate(cfg Config) ([]storage.WriteSite, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ref := buildOracle(&cfg)
	return enumerate(&cfg, ref)
}

func enumerate(cfg *Config, ref *oracleRef) ([]storage.WriteSite, error) {
	st := storage.NewStack(newBase(cfg)).WithTrace()
	trace := st.Trace
	gen := cfg.NewGen()
	e, err := newEngine(cfg, st.MustBuild(), gen)
	if err != nil {
		return nil, err
	}
	if err := processAll(e, ref.batches); err != nil {
		return nil, fmt.Errorf("crashtest: fault-free run failed: %w", err)
	}
	if err := ref.checkState(uint64(cfg.Epochs), e.Store()); err != nil {
		return nil, fmt.Errorf("crashtest: fault-free run already diverges: %w", err)
	}
	sites := trace.Sites()
	if cfg.Target == "" {
		return sites, nil
	}
	// The Faulty device counts budget against target-matching writes only,
	// so the k-th filtered site is exactly where budget k dies.
	var filtered []storage.WriteSite
	for _, s := range sites {
		if s.Name == cfg.Target {
			filtered = append(filtered, s)
		}
	}
	return filtered, nil
}

// Sweep enumerates every durable write of the configured run and replays
// the workload once per site with the device dying there, verifying each
// recovery against the oracle. It returns an error only when the harness
// itself cannot run; divergences are reported in Result.Failures.
func Sweep(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ref := buildOracle(&cfg)
	sites, err := enumerate(&cfg, ref)
	if err != nil {
		return nil, err
	}
	res := &Result{Sites: sites}
	for k, site := range sites {
		res.Runs++
		if err := runOne(&cfg, ref, k); err != nil {
			res.Failures = append(res.Failures, Failure{
				Kind: cfg.Kind, Mode: cfg.Mode, Site: site, Err: err,
			})
		}
	}
	return res, nil
}

// runOne executes one crash-recover-verify cycle with the device dying at
// the k-th (target-matching) write.
func runOne(cfg *Config, ref *oracleRef, k int) error {
	inner := newBase(cfg)
	dev := storage.NewStack(inner).WithFaulty(k, cfg.Mode, cfg.Target).MustBuild()
	gen := cfg.NewGen()
	e, err := newEngine(cfg, dev, gen)
	if err != nil {
		return err
	}
	if procErr := processAll(e, ref.batches); procErr == nil {
		return fmt.Errorf("budget %d never hit the injected fault", k)
	}
	// The pre-crash ledger: outputs whose durability gate fired in time.
	crashed := append([]types.Output(nil), e.Delivered()...)
	e.Crash()

	// Recover against the surviving medium. The Faulty wrapper stays dead,
	// so recovery runs on the inner device directly — the usual "new disk
	// controller, same platters" restart.
	bytes := metrics.NewBytes()
	e2, report, err := engine.Recover(engine.Config{
		RunShape:  recoverShape(cfg),
		App:       gen.App(),
		Device:    inner,
		Mechanism: core.NewMechanism(cfg.Kind, inner, bytes, msr.Default()),
		Bytes:     bytes,
	})
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	last := report.LastEpoch
	if last > uint64(cfg.Epochs) {
		return fmt.Errorf("recovered through epoch %d, beyond the %d run", last, cfg.Epochs)
	}
	if err := ref.checkState(last, e2.Store()); err != nil {
		return err
	}
	union := append(crashed, e2.Delivered()...)
	if err := ref.checkOutputs(last, union, e2.PendingOutputs()); err != nil {
		return err
	}
	if cfg.Continue && int(last) < len(ref.batches) {
		if err := e2.ProcessEpoch(ref.batches[last]); err != nil {
			return fmt.Errorf("post-recovery epoch %d: %w", last+1, err)
		}
		if err := ref.checkState(last+1, e2.Store()); err != nil {
			return fmt.Errorf("post-recovery: %w", err)
		}
	}
	return nil
}

// BoundaryStores runs each mechanism fault-free for the configured number
// of epochs, crashes it cleanly, recovers, and returns the recovered
// engines — the cross-mechanism agreement check: on equivalent histories,
// every mechanism must recover the identical store.
func BoundaryStores(cfg Config, kinds []ftapi.Kind) (map[ftapi.Kind]*engine.Engine, *oracleRef, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	ref := buildOracle(&cfg)
	out := make(map[ftapi.Kind]*engine.Engine, len(kinds))
	for _, kind := range kinds {
		kcfg := cfg
		kcfg.Kind = kind
		dev := newBase(&kcfg)
		gen := kcfg.NewGen()
		e, err := newEngine(&kcfg, dev, gen)
		if err != nil {
			return nil, nil, err
		}
		if err := processAll(e, ref.batches); err != nil {
			return nil, nil, fmt.Errorf("%v: %w", kind, err)
		}
		e.Crash()
		bytes := metrics.NewBytes()
		e2, _, err := engine.Recover(engine.Config{
			RunShape:  recoverShape(&kcfg),
			App:       gen.App(),
			Device:    dev,
			Mechanism: core.NewMechanism(kind, dev, bytes, msr.Default()),
			Bytes:     bytes,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%v recover: %w", kind, err)
		}
		out[kind] = e2
	}
	return out, ref, nil
}

// CheckState exposes the oracle comparison for tests that hold their own
// recovered stores.
func (r *oracleRef) CheckState(e uint64, st storeReader) error { return r.checkState(e, st) }

// Epochs reports how many epochs the reference run covers.
func (r *oracleRef) Epochs() int { return len(r.batches) }
