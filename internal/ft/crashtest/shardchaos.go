package crashtest

import (
	"fmt"
	"time"

	"morphstreamr/internal/engine"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
)

// ShardChaosConfig scripts the single-shard-kill cell: one shard's device
// suffers a fatal write outage under sustained group ingestion; the other
// shards keep committing while the coordinator heals the dead shard in
// place and completes the interrupted barrier.
type ShardChaosConfig struct {
	Config
	// Shards is the group fan-out. Zero means 2.
	Shards int
	// KillShard is the shard whose device fails.
	KillShard int
	// FaultAt is the 0-based write index on that device where the fatal
	// outage strikes (one write fails; the outage has passed by the time
	// the heal's recovery writes).
	FaultAt int
}

// ShardChaosOutcome reports what the single-shard-kill cell observed.
type ShardChaosOutcome struct {
	// KilledShard and FailedEpoch locate the injected death.
	KilledShard int
	FailedEpoch uint64
	// Cause is the supervisor classification of the surfaced error.
	Cause string
	// MTTR is the group's heal time: shard death detected to the barrier
	// completed and the group live again (the group MTTR of
	// BENCH_chaos.json's shard-kill entries).
	MTTR time.Duration
	// SurvivorCommits is the committed-epoch vector at detection: the
	// survivors' punctuation frontiers, proving they kept committing while
	// one shard was dead.
	SurvivorCommits []uint64
	// Epochs is the group epoch reached after the full run (fault epoch
	// included — the heal completes it, nothing is skipped).
	Epochs uint64
	// Report is the dead shard's recovery report.
	Report *engine.RecoveryReport
	// Incident is the health-log record of the heal.
	Incident metrics.Incident
}

// ShardChaos runs the single-shard-kill cell and verifies the run end to
// end against the sharded oracle: every shard's state, each shard's
// exactly-once application outputs (gap-free for the survivors — nothing
// delivered twice, nothing lost across the dead shard's heal), and the
// cross-shard agreement that routing surfaced every event on exactly one
// shard.
func ShardChaos(cc ShardChaosConfig) (*ShardChaosOutcome, error) {
	scfg := ShardConfig{Config: cc.Config, Shards: cc.Shards}
	if err := scfg.normalize(); err != nil {
		return nil, err
	}
	if cc.KillShard < 0 || cc.KillShard >= scfg.Shards {
		return nil, fmt.Errorf("crashtest: KillShard %d out of range for %d shards", cc.KillShard, scfg.Shards)
	}
	if cc.FaultAt <= 0 {
		cc.FaultAt = 8
	}
	ref, err := buildShardRef(&scfg)
	if err != nil {
		return nil, err
	}

	devs := make([]storage.Device, scfg.Shards)
	for i := range devs {
		devs[i] = storage.NewMem()
	}
	st := storage.NewStack(storage.NewMem()).WithFlaky()
	st.Flaky.AddOutage(cc.FaultAt, 1)
	devs[cc.KillShard] = st.MustBuild()

	health := metrics.NewHealth()
	g, err := shard.NewGroup(shard.Config{
		GroupShape: types.GroupShape{RunShape: scfg.RunShape, Shards: scfg.Shards},
		App:        ref.app,
		Kind:       scfg.Kind,
		Devices:    devs,
		CoordDev:   storage.NewMem(),
		Health:     health,
	})
	if err != nil {
		return nil, err
	}

	out := &ShardChaosOutcome{KilledShard: cc.KillShard}
	source := shard.BatchSource(ref.batches)
	for e := 0; e < scfg.Epochs; e++ {
		err := g.ProcessEpoch(ref.batches[e])
		if err == nil {
			continue
		}
		if out.FailedEpoch != 0 {
			return nil, fmt.Errorf("crashtest: second failure at epoch %d: %w", e+1, err)
		}
		out.FailedEpoch = uint64(e + 1)
		out.SurvivorCommits = g.CommittedVector()
		rep, healErr := g.HealShard(err, source)
		if healErr != nil {
			return nil, fmt.Errorf("crashtest: heal after %w: %v", err, healErr)
		}
		out.Report = rep
	}
	if out.FailedEpoch == 0 {
		return nil, fmt.Errorf("crashtest: outage at write %d never killed shard %d", cc.FaultAt, cc.KillShard)
	}
	out.Epochs = g.Epoch()
	if out.Epochs != uint64(scfg.Epochs) {
		return nil, fmt.Errorf("crashtest: group reached epoch %d of %d despite the heal", out.Epochs, scfg.Epochs)
	}

	incidents := health.Incidents()
	if len(incidents) != 1 || !incidents[0].Healed {
		return nil, fmt.Errorf("crashtest: expected one healed incident, health log has %+v", incidents)
	}
	out.Incident = incidents[0]
	out.Cause = incidents[0].Cause
	out.MTTR = incidents[0].MTTR

	// Full oracle verification at the end of the run.
	last := uint64(scfg.Epochs)
	global := make(map[uint64]int)
	for s := 0; s < scfg.Shards; s++ {
		if err := ref.orc.CheckState(s, last, g.Engine(s).Store()); err != nil {
			return nil, err
		}
		union := shard.RealOutputs(g.DeliveredUnion(s))
		pending := g.Engine(s).PendingOutputsMatching(func(o types.Output) bool {
			return !shard.IsReplication(o)
		})
		if err := ref.orc.CheckOutputs(s, last, union, pending); err != nil {
			return nil, err
		}
		for _, o := range union {
			if prev, dup := global[o.EventSeq]; dup {
				return nil, fmt.Errorf("crashtest: event %d surfaced on shard %d and shard %d", o.EventSeq, prev, s)
			}
			global[o.EventSeq] = s
		}
	}
	return out, nil
}
