package crashtest

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/workload"
)

// shardKinds are the mechanisms the sharded sweep covers — all five
// recoverable ones (NAT persists nothing; its group contract is pinned by
// TestShardSweepNAT).
var shardKinds = []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}

// shardSweepConfig is the compact sharded run: Grep&Sum (write-local by
// construction; StreamLedger's cross-shard transfers are rejected by the
// barrier and covered by the shard package's locality test).
func shardSweepConfig(kind ftapi.Kind, shards int, mode storage.FaultMode) ShardConfig {
	return ShardConfig{
		Config: Config{
			Kind:     kind,
			NewGen:   func() workload.Generator { return fttest.GSGen(43) },
			Mode:     mode,
			Continue: true,
		},
		Shards: shards,
	}
}

// TestShardSweepAllMechanisms is the sharded crash-point sweep: for each
// fan-out and mechanism, enumerate every durable write across every shard
// device and the coordinator's frontier log, kill that device there,
// recover the whole group in parallel, and verify oracle-equivalent state
// and exactly-once outputs per shard and globally.
func TestShardSweepAllMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sharded sweep")
	}
	for _, shards := range []int{2, 4} {
		for _, kind := range shardKinds {
			res, err := ShardSweep(shardSweepConfig(kind, shards, storage.FailStop))
			if err != nil {
				t.Fatalf("%v shards=%d: %v", kind, shards, err)
			}
			if res.Sites() == 0 || res.Runs == 0 {
				t.Fatalf("%v shards=%d: empty sweep (%d sites, %d runs)", kind, shards, res.Sites(), res.Runs)
			}
			for _, f := range res.Failures {
				t.Errorf("%v shards=%d: %v", kind, shards, f)
			}
			t.Logf("%v shards=%d: %d sites, %d runs, %d failures", kind, shards, res.Sites(), res.Runs, len(res.Failures))
		}
	}
}

// TestShardSweepTornAndDropped sweeps the byte-level fault flavours at the
// smaller fan-out: torn frontier/input/log tails and dropped tails must
// all recover like fail-stop does.
func TestShardSweepTornAndDropped(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sharded sweep")
	}
	for _, mode := range []storage.FaultMode{storage.TornWrite, storage.DroppedTail} {
		for _, kind := range []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV} {
			res, err := ShardSweep(shardSweepConfig(kind, 2, mode))
			if err != nil {
				t.Fatalf("%v under %v: %v", kind, mode, err)
			}
			for _, f := range res.Failures {
				t.Errorf("%v under %v: %v", kind, mode, f)
			}
		}
	}
}

// TestShardSweepSampled is the race-detector-friendly slice of the sweep:
// every 5th site, one fan-out, two mechanisms. CI runs this under -race.
func TestShardSweepSampled(t *testing.T) {
	for _, kind := range []ftapi.Kind{ftapi.WAL, ftapi.CKPT} {
		cfg := shardSweepConfig(kind, 2, storage.FailStop)
		cfg.SampleEvery = 5
		res, err := ShardSweep(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Runs == 0 {
			t.Fatalf("%v: sampled sweep ran nothing", kind)
		}
		for _, f := range res.Failures {
			t.Errorf("%v: %v", kind, f)
		}
	}
}

// TestShardSweepNAT pins the native-execution contract at group scale:
// the group runs (and matches its oracle fault-free via ShardEnumerate's
// sanity pass), but a crash is unrecoverable.
func TestShardSweepNAT(t *testing.T) {
	cfg := shardSweepConfig(ftapi.NAT, 2, storage.FailStop)
	sites, err := ShardEnumerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// NAT persists nothing durable on shard devices, so only the
	// coordinator's frontier log has write sites.
	for name, s := range sites {
		if name != "coord" && len(s) != 0 {
			t.Fatalf("NAT wrote %d durable records on %s", len(s), name)
		}
	}
	if len(sites["coord"]) == 0 {
		t.Fatal("coordinator wrote no frontier records")
	}
}
