package crashtest

import (
	"testing"

	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// TestSweepAdaptive: the exhaustive crash-point sweep with the adaptive
// controller enabled. Adaptivity morphs the execution strategy per epoch
// but must never change the durable write sequence (commit morphing stays
// off — zero budget — exactly as the engine defaults it), so every
// mechanism recovers to oracle-equivalent state from every write site just
// as in the static sweeps. The recovered engine also runs adaptively
// (recoverShape preserves the knob), proving a post-recovery incarnation
// keeps morphing.
func TestSweepAdaptive(t *testing.T) {
	shape := DefaultSweepShape()
	shape.Workers = 4 // give the controller a ladder to morph across
	shape.Adaptive = true
	for _, kind := range logBased {
		for _, mode := range modes {
			kind, mode := kind, mode
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				sweep(t, Config{
					Kind:     kind,
					NewGen:   func() workload.Generator { return fttest.SLGen(43) },
					RunShape: shape,
					Mode:     mode,
					Continue: true,
				})
			})
		}
	}
}

// TestAdaptiveSweepMatchesStatic: the site enumeration of an adaptive run
// is identical to the static run's — same writes, same order, same
// targets. A durable-write count or reorder introduced by a morph would
// shift every later crash point and show up here before any recovery even
// runs.
func TestAdaptiveSweepMatchesStatic(t *testing.T) {
	base := Config{
		Kind:   logBased[0],
		NewGen: func() workload.Generator { return fttest.SLGen(44) },
		Mode:   storage.FailStop,
	}
	static := base
	static.RunShape = types.RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 4}
	adaptiveCfg := base
	adaptiveCfg.RunShape = static.RunShape
	adaptiveCfg.Adaptive = true

	sitesS, err := Enumerate(static)
	if err != nil {
		t.Fatal(err)
	}
	sitesA, err := Enumerate(adaptiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sitesS) != len(sitesA) {
		t.Fatalf("adaptive run enumerates %d write sites, static %d", len(sitesA), len(sitesS))
	}
	for i := range sitesS {
		if sitesS[i] != sitesA[i] {
			t.Fatalf("write site %d diverges: static %v, adaptive %v", i, sitesS[i], sitesA[i])
		}
	}
}
