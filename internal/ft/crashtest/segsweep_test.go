package crashtest

import (
	"testing"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// segSegmentBytes is small enough that every log spans many segments per
// run, so torn writes land inside and astride sealed segments and GC
// releases real segments at every snapshot.
const segSegmentBytes = 128

// TestSweepSegStore runs the exhaustive crash-point sweep with the bounded
// segment store as the base medium: every durable write site of every
// mechanism, under every fault flavour, must recover to oracle-equivalent
// state with exactly-once outputs — including writes that seal segments
// mid-record and the release sites that pop the segment index.
func TestSweepSegStore(t *testing.T) {
	for _, kind := range recoverable {
		for _, mode := range modes {
			kind, mode := kind, mode
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				sweep(t, Config{
					Kind:         kind,
					NewGen:       func() workload.Generator { return fttest.SLGen(41) },
					Mode:         mode,
					Continue:     true,
					Store:        "seg",
					SegmentBytes: segSegmentBytes,
				})
			})
		}
	}
}

// TestSweepSegIncremental sweeps the incremental-checkpoint shape on the
// segment store: snapshots every 2 epochs with a full base only every
// second snapshot, so the run interleaves base blobs, delta appends to the
// checkpoint log, and the releases that fold composed deltas away. Every
// crash point — including a torn delta append — must recover exactly.
func TestSweepSegIncremental(t *testing.T) {
	for _, kind := range recoverable {
		for _, mode := range []storage.FaultMode{storage.FailStop, storage.TornWrite} {
			kind, mode := kind, mode
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				sweep(t, Config{
					Kind:   kind,
					NewGen: func() workload.Generator { return fttest.SLGen(67) },
					Epochs: 10, EpochSize: 16,
					RunShape: types.RunShape{
						Workers: 2, CommitEvery: 2, SnapshotEvery: 2, SnapshotBase: 2,
					},
					Mode:         mode,
					Continue:     true,
					Store:        "seg",
					SegmentBytes: segSegmentBytes,
				})
			})
		}
	}
}

// segCrash is the sentinel the hook panics with to stop the engine at an
// exact point inside a segment release.
type segCrash struct{}

// TestSegStoreCrashInsideRelease crashes the engine precisely between the
// two halves of a segment release — after the index update ("release-index",
// the sealed index popped but no slab recycled) and after the first slab
// reuse ("segment-reuse") — and verifies recovery from the store in exactly
// that state. This is the crash window a flat truncate never has: the index
// and the segment ring disagree transiently, and recovery must only depend
// on what the index still covers.
func TestSegStoreCrashInsideRelease(t *testing.T) {
	for _, event := range []string{"release-index", "segment-reuse"} {
		for _, kind := range recoverable {
			event, kind := event, kind
			t.Run(event+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				crashes := 0
				for k := 1; k <= 64; k++ {
					crashed, err := runSegHookCrash(kind, event, k)
					if err != nil {
						t.Fatalf("crash at %s #%d: %v", event, k, err)
					}
					if !crashed {
						break // the run fires the event fewer than k times
					}
					crashes++
				}
				if crashes == 0 {
					t.Fatalf("the run never fired %q; the crash window was not exercised", event)
				}
			})
		}
	}
}

// runSegHookCrash runs the seeded workload on a bare segment store with a
// hook that kills the engine at the k-th firing of the named seam event,
// then recovers from the store and checks state and exactly-once outputs
// against the oracle. Returns false when the run completes before the k-th
// firing (the sweep over k is exhausted).
func runSegHookCrash(kind ftapi.Kind, event string, k int) (bool, error) {
	cfg := Config{
		Kind:         kind,
		NewGen:       func() workload.Generator { return fttest.SLGen(41) },
		Store:        "seg",
		SegmentBytes: segSegmentBytes,
	}
	if err := cfg.normalize(); err != nil {
		return false, err
	}
	ref := buildOracle(&cfg)
	seg := storage.NewSegStore(storage.SegConfig{SegmentBytes: cfg.SegmentBytes})
	fired := 0
	seg.SetHook(func(ev, _ string) {
		if ev != event {
			return
		}
		if fired++; fired == k {
			panic(segCrash{})
		}
	})
	gen := cfg.NewGen()
	e, err := newEngine(&cfg, seg, gen)
	if err != nil {
		return false, err
	}
	crashed := false
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(segCrash); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		return processAll(e, ref.batches)
	}()
	if !crashed {
		// Fault-free completion: sanity-check it, then report the sweep done.
		if err != nil {
			return false, err
		}
		return false, ref.checkState(uint64(cfg.Epochs), e.Store())
	}
	delivered := append([]types.Output(nil), e.Delivered()...)
	e.Crash()
	seg.SetHook(nil)

	bytes := metrics.NewBytes()
	e2, report, err := engine.Recover(engine.Config{
		RunShape:  recoverShape(&cfg),
		App:       gen.App(),
		Device:    seg,
		Mechanism: core.NewMechanism(cfg.Kind, seg, bytes, msr.Default()),
		Bytes:     bytes,
	})
	if err != nil {
		return true, err
	}
	last := report.LastEpoch
	if err := ref.checkState(last, e2.Store()); err != nil {
		return true, err
	}
	union := append(delivered, e2.Delivered()...)
	return true, ref.checkOutputs(last, union, e2.PendingOutputs())
}
