package crashtest

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// recoverable are the mechanisms with a recovery story; NAT persists
// nothing and is excluded by construction.
var recoverable = []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}

var logBased = []ftapi.Kind{ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}

var modes = []storage.FaultMode{storage.FailStop, storage.TornWrite, storage.DroppedTail}

func sweep(t *testing.T, cfg Config) {
	t.Helper()
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 || res.Runs != len(res.Sites) {
		t.Fatalf("swept %d runs over %d sites; expected one run per site", res.Runs, len(res.Sites))
	}
	// An untargeted sweep must have enumerated every write category the
	// run performs: input appends, the snapshot blob, GC truncations, and
	// (for log-based schemes) group-commit appends.
	if cfg.Target == "" {
		ops := map[string]bool{}
		for _, s := range res.Sites {
			ops[s.Op+":"+s.Name] = true
		}
		want := []string{"append:" + storage.LogInput, "blob:" + storage.BlobSnapshot, "release:" + storage.LogInput}
		if cfg.Kind != ftapi.CKPT {
			want = append(want, "append:"+storage.LogFT)
		}
		for _, w := range want {
			if !ops[w] {
				t.Errorf("sweep never crossed a %q write; enumeration incomplete (sites: %v)", w, res.Sites)
			}
		}
	}
	for _, f := range res.Failures {
		t.Errorf("%v", f)
	}
}

// TestSweepSL: every enumerated write point of a Streaming Ledger run,
// for every mechanism and every fault flavour, recovers to
// oracle-equivalent state with exactly-once outputs — and the recovered
// engine processes a further epoch correctly.
func TestSweepSL(t *testing.T) {
	for _, kind := range recoverable {
		for _, mode := range modes {
			kind, mode := kind, mode
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				sweep(t, Config{
					Kind:     kind,
					NewGen:   func() workload.Generator { return fttest.SLGen(41) },
					Mode:     mode,
					Continue: true,
				})
			})
		}
	}
}

// TestSweepGS: the same exhaustive sweep over the skewed Grep&Sum
// workload, whose parametric reads stress dependency replay.
func TestSweepGS(t *testing.T) {
	for _, kind := range recoverable {
		for _, mode := range modes {
			kind, mode := kind, mode
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				sweep(t, Config{
					Kind:     kind,
					NewGen:   func() workload.Generator { return fttest.GSGen(43) },
					Mode:     mode,
					Continue: true,
				})
			})
		}
	}
}

// TestSweepTargetedFTLog aims torn writes exclusively at group-commit
// records: every log-based mechanism must truncate the partial tail
// record on Recover and come back at the preceding commit.
func TestSweepTargetedFTLog(t *testing.T) {
	for _, kind := range logBased {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Sweep(Config{
				Kind:     kind,
				NewGen:   func() workload.Generator { return fttest.SLGen(47) },
				Mode:     storage.TornWrite,
				Target:   storage.LogFT,
				Continue: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Sites) == 0 {
				t.Fatalf("%v wrote nothing to the FT log; targeted sweep is vacuous", kind)
			}
			for _, s := range res.Sites {
				if s.Name != storage.LogFT {
					t.Fatalf("targeted sweep leaked site %v", s)
				}
			}
			for _, f := range res.Failures {
				t.Errorf("%v", f)
			}
		})
	}
}

// TestSweepTP: one fail-stop sweep over the Toll Processing workload,
// whose conditional aborts exercise the abort-replay path of every
// mechanism.
func TestSweepTP(t *testing.T) {
	for _, kind := range recoverable {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			sweep(t, Config{
				Kind:   kind,
				NewGen: func() workload.Generator { return fttest.TPGen(53) },
				Mode:   storage.FailStop,
			})
		})
	}
}

// TestCrossMechanismAgreement: on equivalent histories (same workload,
// same crash boundary), all five mechanisms must recover the identical
// store — each equals the oracle, and they pairwise agree.
func TestCrossMechanismAgreement(t *testing.T) {
	for _, epochs := range []int{3, 4, 6} { // mid-group, snapshot boundary, full run
		cfg := Config{
			NewGen: func() workload.Generator { return fttest.SLGen(59) },
			Epochs: epochs,
		}
		engines, ref, err := BoundaryStores(cfg, recoverable)
		if err != nil {
			t.Fatal(err)
		}
		for kind, e := range engines {
			if err := ref.CheckState(uint64(epochs), e.Store()); err != nil {
				t.Errorf("epochs=%d %v: %v", epochs, kind, err)
			}
		}
		base := engines[recoverable[0]]
		for _, kind := range recoverable[1:] {
			if !base.Store().Equal(engines[kind].Store()) {
				t.Errorf("epochs=%d: %v and %v disagree: %v", epochs, recoverable[0], kind,
					base.Store().Diff(engines[kind].Store(), 3))
			}
		}
	}
}

// TestSweepPipelined repeats a representative slice of the sweep with
// epoch pipelining enabled: the overlap must leave the durable write
// sequence — and therefore every crash point's recovery — untouched. MSR
// under fail-stop and WAL under torn writes cover both the richest and the
// most literal logging scheme against both clean and corrupted tails.
func TestSweepPipelined(t *testing.T) {
	cases := []struct {
		kind ftapi.Kind
		mode storage.FaultMode
	}{
		{ftapi.MSR, storage.FailStop},
		{ftapi.WAL, storage.TornWrite},
		{ftapi.CKPT, storage.DroppedTail},
	}
	for _, c := range cases {
		c := c
		t.Run(c.kind.String()+"/"+c.mode.String(), func(t *testing.T) {
			t.Parallel()
			sweep(t, Config{
				Kind:     c.kind,
				NewGen:   func() workload.Generator { return fttest.SLGen(41) },
				Mode:     c.mode,
				Continue: true,
				RunShape: types.RunShape{Pipeline: true},
			})
		})
	}
}

// TestPipelinedWriteSequence: the pipelined and sequential schedules must
// enumerate the identical crash-point set — the premise TestSweepPipelined
// relies on, checked explicitly so a divergence fails loudly here rather
// than as a cryptic budget miss.
func TestPipelinedWriteSequence(t *testing.T) {
	for _, kind := range recoverable {
		cfg := Config{
			Kind:   kind,
			NewGen: func() workload.Generator { return fttest.GSGen(61) },
		}
		seqSites, err := Enumerate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		cfg.Pipeline = true
		pipSites, err := Enumerate(cfg)
		if err != nil {
			t.Fatalf("%v pipelined: %v", kind, err)
		}
		if len(seqSites) != len(pipSites) {
			t.Fatalf("%v: %d sequential sites vs %d pipelined", kind, len(seqSites), len(pipSites))
		}
		for i := range seqSites {
			if seqSites[i] != pipSites[i] {
				t.Fatalf("%v: write %d diverges: %v vs %v", kind, i, seqSites[i], pipSites[i])
			}
		}
	}
}
