// Package fttest provides the shared harness for mechanism-level tests:
// it drives epochs through the real scheduler against a mechanism (the
// way the engine would), runs the oracle alongside, and compares
// recovered state — without pulling in the full engine, so mechanism
// tests stay focused on logging and replay behaviour.
package fttest

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Harness drives one mechanism through runtime epochs.
type Harness struct {
	T       *testing.T
	Gen     workload.Generator
	Mech    ftapi.Mechanism
	Dev     storage.Device
	Workers int

	Store  *store.Store
	Oracle *oracle.Oracle
	Inputs []ftapi.EpochEvents
	epoch  uint64
}

// New creates a harness with fresh state.
func New(t *testing.T, gen workload.Generator, mech ftapi.Mechanism, dev storage.Device, workers int) *Harness {
	return &Harness{
		T: t, Gen: gen, Mech: mech, Dev: dev, Workers: workers,
		Store:  store.New(gen.App().Tables()),
		Oracle: oracle.New(gen.App()),
	}
}

// RunEpoch processes one epoch of n events: persist inputs, execute,
// seal. Commit is separate (CommitAll) so tests control grouping.
func (h *Harness) RunEpoch(n int) *ftapi.EpochResult {
	h.T.Helper()
	ep, err := h.TryRunEpoch(n)
	if err != nil {
		h.T.Fatal(err)
	}
	return ep
}

// TryRunEpoch is RunEpoch with the error surfaced instead of t.Fatal —
// the crash-injection harness uses it to drive epochs into a dying device
// and observe where the failure lands. On error, the epoch is not counted:
// the oracle, the input list, and the epoch counter stay where they were,
// so the harness state still describes only completed epochs.
func (h *Harness) TryRunEpoch(n int) (*ftapi.EpochResult, error) {
	events := workload.Batch(h.Gen, n)
	epoch := h.epoch + 1
	if err := h.Dev.Append(storage.LogInput, storage.Record{Epoch: epoch, Payload: nil}); err != nil {
		return nil, err
	}

	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := h.Gen.App().Preprocess(events[i])
		txns[i] = &txn
	}
	g := tpg.Build(txns, h.Store.Get)
	if _, err := scheduler.Run(g, h.Store, scheduler.Options{Workers: h.Workers}); err != nil {
		return nil, err
	}
	h.epoch = epoch
	h.Inputs = append(h.Inputs, ftapi.EpochEvents{Epoch: epoch, Events: events})
	for _, ev := range events {
		h.Oracle.Apply(ev)
	}
	ep := &ftapi.EpochResult{Epoch: epoch, Events: events, Graph: g, Workers: h.Workers}
	h.Mech.SealEpoch(ep)
	return ep, nil
}

// Commit group-commits everything sealed so far.
func (h *Harness) Commit() {
	h.T.Helper()
	if err := h.TryCommit(); err != nil {
		h.T.Fatal(err)
	}
}

// TryCommit is Commit with the error surfaced instead of t.Fatal.
func (h *Harness) TryCommit() error {
	return h.Mech.Commit(h.epoch)
}

// Recover replays the mechanism's committed epochs onto a fresh store and
// returns it with the breakdown.
func (h *Harness) Recover(mech ftapi.Mechanism) (*store.Store, *metrics.RecoveryBreakdown, uint64) {
	h.T.Helper()
	st, bd, committed, err := h.TryRecover(mech)
	if err != nil {
		h.T.Fatal(err)
	}
	return st, bd, committed
}

// TryRecover is Recover with the error surfaced instead of t.Fatal.
func (h *Harness) TryRecover(mech ftapi.Mechanism) (*store.Store, *metrics.RecoveryBreakdown, uint64, error) {
	st := store.New(h.Gen.App().Tables())
	var bd metrics.RecoveryBreakdown
	committed, err := mech.Recover(&ftapi.RecoveryContext{
		App:       h.Gen.App(),
		Store:     st,
		Device:    h.Dev,
		Workers:   h.Workers,
		Inputs:    h.Inputs,
		Breakdown: &bd,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return st, &bd, committed, nil
}

// Epoch reports the last completed epoch.
func (h *Harness) Epoch() uint64 { return h.epoch }

// CheckAgainstOracle compares a store to the harness oracle record by
// record.
func (h *Harness) CheckAgainstOracle(st *store.Store) {
	h.T.Helper()
	bad := 0
	for _, spec := range h.Gen.App().Tables() {
		for row := uint32(0); row < spec.Rows; row++ {
			k := types.Key{Table: spec.ID, Row: row}
			if got, want := st.Get(k), h.Oracle.Value(k); got != want {
				bad++
				if bad <= 3 {
					h.T.Errorf("%v: recovered=%d oracle=%d", k, got, want)
				}
			}
		}
	}
	if bad > 3 {
		h.T.Errorf("... and %d more mismatches", bad-3)
	}
}

// SLGen returns a small Streaming Ledger generator for mechanism tests.
func SLGen(seed int64) workload.Generator {
	p := workload.DefaultSLParams()
	p.Seed, p.Rows, p.AbortRatio = seed, 512, 0.2
	return workload.NewSL(p)
}

// GSGen returns a small skewed Grep&Sum generator.
func GSGen(seed int64) workload.Generator {
	p := workload.DefaultGSParams()
	p.Seed, p.Rows, p.Theta = seed, 512, 1.0
	return workload.NewGS(p)
}

// TPGen returns a small Toll Processing generator with the default's high
// invalid-report rate, so mechanism tests cover aborting transactions.
func TPGen(seed int64) workload.Generator {
	p := workload.DefaultTPParams()
	p.Seed, p.Segments = seed, 256
	return workload.NewTP(p)
}
