// External test package: the harness is exercised with real mechanisms,
// which would be an import cycle from inside package fttest.
package fttest_test

import (
	"errors"
	"reflect"
	"testing"

	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/ft/wal"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/workload"
)

// TestHarnessRoundTrip: the harness drives a real mechanism through
// sealed epochs and a group commit, and the recovered store matches the
// oracle it ran alongside.
func TestHarnessRoundTrip(t *testing.T) {
	for _, mk := range []struct {
		name string
		gen  workload.Generator
	}{
		{"SL", fttest.SLGen(1)},
		{"GS", fttest.GSGen(1)},
		{"TP", fttest.TPGen(1)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			dev := storage.NewMem()
			bytes := metrics.NewBytes()
			h := fttest.New(t, mk.gen, wal.New(dev, bytes), dev, 2)
			for i := 0; i < 3; i++ {
				h.RunEpoch(40)
			}
			h.Commit()
			st, _, committed := h.Recover(wal.New(dev, metrics.NewBytes()))
			if committed != 3 {
				t.Fatalf("committed = %d, want 3", committed)
			}
			h.CheckAgainstOracle(st)
		})
	}
}

// TestGeneratorsDeterministic: the seeded generators the crash sweep
// depends on reproduce the same event sequence for the same seed — the
// property that makes "re-run the workload and crash at write k"
// meaningful at all.
func TestGeneratorsDeterministic(t *testing.T) {
	mks := []struct {
		name string
		mk   func(int64) workload.Generator
	}{
		{"SL", fttest.SLGen}, {"GS", fttest.GSGen}, {"TP", fttest.TPGen},
	}
	for _, m := range mks {
		t.Run(m.name, func(t *testing.T) {
			a := workload.Batch(m.mk(7), 100)
			b := workload.Batch(m.mk(7), 100)
			if !reflect.DeepEqual(a, b) {
				t.Error("same seed produced different events")
			}
			c := workload.Batch(m.mk(8), 100)
			if reflect.DeepEqual(a, c) {
				t.Error("different seeds produced identical events")
			}
		})
	}
}

// TestTPGenExercisesAborts: TP keeps the default invalid-report rate, so
// a batch must contain both committing and aborting transactions — the
// abort path is exactly what differentiates the mechanisms' replay logic.
func TestTPGenExercisesAborts(t *testing.T) {
	gen := fttest.TPGen(2)
	o := oracle.New(gen.App())
	aborts, commits := 0, 0
	for _, ev := range workload.Batch(gen, 200) {
		txn := gen.App().Preprocess(ev)
		if o.ExecuteTxn(&txn).Aborted {
			aborts++
		} else {
			commits++
		}
	}
	if aborts == 0 || commits == 0 {
		t.Errorf("TP batch: %d aborts, %d commits; need both", aborts, commits)
	}
}

// TestTryHooksSurfaceErrors: the Try variants return device failures
// instead of failing the test, and a failed epoch leaves the harness
// describing only completed epochs.
func TestTryHooksSurfaceErrors(t *testing.T) {
	gen := fttest.SLGen(3)
	dev := storage.NewFaulty(storage.NewMem(), 1) // one write allowed
	h := fttest.New(t, gen, wal.New(dev, metrics.NewBytes()), dev, 2)

	if _, err := h.TryRunEpoch(20); err != nil {
		t.Fatalf("epoch 1 (within budget): %v", err)
	}
	before := len(h.Inputs)
	if _, err := h.TryRunEpoch(20); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("epoch 2 should hit the injected fault, got %v", err)
	}
	if h.Epoch() != 1 || len(h.Inputs) != before {
		t.Errorf("failed epoch counted: epoch=%d inputs=%d", h.Epoch(), len(h.Inputs))
	}
	if err := h.TryCommit(); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("commit on dead device returned %v", err)
	}
	if _, _, _, err := h.TryRecover(wal.New(dev, metrics.NewBytes())); err != nil {
		t.Errorf("recover reads only; device read paths are healthy: %v", err)
	}
}
