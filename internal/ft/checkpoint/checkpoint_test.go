package checkpoint

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
)

func TestIdentity(t *testing.T) {
	m := New()
	if m.Kind() != ftapi.CKPT {
		t.Errorf("Kind = %v", m.Kind())
	}
}

// TestNoDurableArtifacts: CKPT must write nothing per epoch — its minimal
// runtime overhead is the paper's Figure 12a baseline property.
func TestNoDurableArtifacts(t *testing.T) {
	dev := storage.NewMem()
	m := New()
	h := fttest.New(t, fttest.SLGen(1), m, dev, 2)
	h.RunEpoch(200)
	h.Commit()
	if n := dev.BytesWritten()[storage.LogFT]; n != 0 {
		t.Errorf("CKPT wrote %d FT-log bytes; must be zero", n)
	}
	m.GC(1) // must not panic or do anything observable
}

// TestRecoverDelegatesEverything: CKPT replays nothing itself; it reports
// the snapshot epoch so the engine reprocesses every later epoch.
func TestRecoverDelegatesEverything(t *testing.T) {
	m := New()
	var bd metrics.RecoveryBreakdown
	committed, err := m.Recover(&ftapi.RecoveryContext{
		SnapshotEpoch: 5,
		Breakdown:     &bd,
	})
	if err != nil || committed != 5 {
		t.Errorf("Recover = %d, %v; want 5, nil", committed, err)
	}
	if bd.Total() != 0 {
		t.Error("CKPT.Recover must not charge any time itself")
	}
}
