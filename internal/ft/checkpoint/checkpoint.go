// Package checkpoint implements CKPT, the global checkpointing baseline
// (Section III-A): the engine's periodic snapshots and persisted input
// events are the only durable artifacts. Nothing is logged per epoch, so
// runtime overhead is minimal; recovery must reprocess every input event
// after the latest checkpoint through the engine's normal path, which is
// what makes CKPT recovery slow on long checkpoint intervals.
package checkpoint

import "morphstreamr/internal/ft/ftapi"

// Mech is the CKPT mechanism. All methods besides Recover are no-ops: the
// engine itself takes the snapshots and persists the inputs.
type Mech struct{}

// New creates the CKPT mechanism.
func New() *Mech { return &Mech{} }

// Kind implements ftapi.Mechanism.
func (m *Mech) Kind() ftapi.Kind { return ftapi.CKPT }

// SealEpoch implements ftapi.Mechanism; CKPT records nothing per epoch.
func (m *Mech) SealEpoch(*ftapi.EpochResult) {}

// Commit implements ftapi.Mechanism; there is no log to commit.
func (m *Mech) Commit(uint64) error { return nil }

// GC implements ftapi.Mechanism; there are no artifacts beyond those the
// engine already garbage-collects.
func (m *Mech) GC(uint64) {}

// Recover implements ftapi.Mechanism. CKPT replays nothing itself: it
// reports the snapshot epoch as its committed watermark, and the engine
// reprocesses every later epoch through the normal path — full
// reprocessing, outputs delivered (CKPT releases outputs only at snapshot
// markers, so nothing after the snapshot was visible downstream).
func (m *Mech) Recover(rc *ftapi.RecoveryContext) (uint64, error) {
	return rc.SnapshotEpoch, nil
}
