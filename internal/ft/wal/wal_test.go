package wal

import (
	"testing"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
)

func TestSealAndRecoverMatchesOracle(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(1), m, dev, 4)
	for i := 0; i < 4; i++ {
		h.RunEpoch(300)
	}
	h.Commit()
	st, bd, committed := h.Recover(New(dev, metrics.NewBytes()))
	if committed != 4 {
		t.Fatalf("committed = %d, want 4", committed)
	}
	h.CheckAgainstOracle(st)
	if bd.Reload == 0 || bd.Execute == 0 {
		t.Errorf("breakdown missing components: %v", bd)
	}
	// Sequential redo with 4 workers: three of them idle — wait time must
	// dominate, matching the paper's WAL profile.
	if bd.Wait < bd.Execute {
		t.Errorf("wait (%v) should exceed execute (%v) for sequential redo on 4 workers",
			bd.Wait, bd.Execute)
	}
}

// TestOnlyCommittedLogged: aborted transactions must not appear in the
// command log (the paper's Figure 14c effect: WAL speeds up with aborts).
func TestOnlyCommittedLogged(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(2), m, dev, 2)
	ep := h.RunEpoch(400)
	h.Commit()

	committed := 0
	for _, tn := range ep.Graph.Txns {
		if !tn.Aborted() {
			committed++
		}
	}
	if committed == len(ep.Graph.Txns) {
		t.Fatal("test needs aborts")
	}
	recs, err := dev.ReadLog(storage.LogFT)
	if err != nil || len(recs) != 1 {
		t.Fatal(err)
	}
	groups, err := ftapi.DecodeGroup(recs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := codec.DecodeWAL(groups[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != committed {
		t.Errorf("log holds %d commands, want %d committed transactions", len(cmds), committed)
	}
}

// TestPerWorkerOrderRequiresSort: the log's commands are not in global
// sequence order when several workers own chains — the reason recovery
// pays for a sort.
func TestPerWorkerOrderRequiresSort(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(3), m, dev, 4)
	h.RunEpoch(400)
	h.Commit()
	recs, _ := dev.ReadLog(storage.LogFT)
	groups, _ := ftapi.DecodeGroup(recs[0].Payload)
	cmds, _ := codec.DecodeWAL(groups[0].Payload)
	sorted := true
	for i := 1; i < len(cmds); i++ {
		if cmds[i-1].Event.Seq > cmds[i].Event.Seq {
			sorted = false
			break
		}
	}
	if sorted {
		t.Error("per-worker log came out globally sorted; the sort cost would be untested")
	}
	// Recovery must still produce oracle state despite the disorder.
	st, _, _ := h.Recover(New(dev, metrics.NewBytes()))
	h.CheckAgainstOracle(st)
}

// TestUncommittedEpochsNotReplayed: sealed but uncommitted epochs are not
// in the durable log; recovery must stop at the commit watermark.
func TestUncommittedEpochsNotReplayed(t *testing.T) {
	dev := storage.NewMem()
	m := New(dev, metrics.NewBytes())
	h := fttest.New(t, fttest.SLGen(4), m, dev, 2)
	h.RunEpoch(100)
	h.Commit()
	h.RunEpoch(100) // sealed, never committed
	_, _, committed := h.Recover(New(dev, metrics.NewBytes()))
	if committed != 1 {
		t.Errorf("committed watermark = %d, want 1", committed)
	}
}

func TestBytesAccounting(t *testing.T) {
	dev := storage.NewMem()
	bytes := metrics.NewBytes()
	m := New(dev, bytes)
	h := fttest.New(t, fttest.SLGen(5), m, dev, 2)
	h.RunEpoch(200)
	if bytes.PeakLive() == 0 {
		t.Error("sealed records not accounted as live")
	}
	h.Commit()
	if bytes.WrittenBy("wal-log") == 0 {
		t.Error("commit bytes not accounted")
	}
}
