// Package wal implements WAL, the write-ahead command-logging baseline
// (Section III-B): committed commands (input events) are logged before
// their outputs are released, and recovery redoes them sequentially.
//
// Two deliberate inefficiencies reproduce the paper's findings. First,
// each worker logs the transactions it executed, so the durable log is
// ordered per worker, not globally; recovery must sort every record back
// into timestamp order, the cost the paper observed dominating WAL's
// reload time. Second, redo is single-threaded — command logs admit no
// safe parallelism without dependency information — so with W workers
// configured, W-1 of them idle for the whole redo, which the breakdown
// charges to wait time exactly as the paper's stacked bars do.
package wal

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/vtime"
)

// Mech is the WAL mechanism.
type Mech struct {
	ftapi.GroupCommitter
}

// New creates the WAL mechanism writing to dev, accounting into bytes.
func New(dev storage.Device, bytes *metrics.Bytes) *Mech {
	return &Mech{GroupCommitter: ftapi.NewGroupCommitter(dev, bytes, "wal-buffer", "wal-log")}
}

// Kind implements ftapi.Mechanism.
func (m *Mech) Kind() ftapi.Kind { return ftapi.WAL }

// SealEpoch implements ftapi.Mechanism: it buffers the epoch's committed
// commands in per-worker order (each worker appends the transactions whose
// condition operation it owned), the order a real per-worker logger
// produces.
func (m *Mech) SealEpoch(ep *ftapi.EpochResult) {
	recs := make([]codec.WALRecord, 0, len(ep.Graph.Txns))
	for w := 0; w < ep.Workers; w++ {
		for _, tn := range ep.Graph.Txns {
			if tn.Aborted() {
				continue // only committed transactions are logged
			}
			if tn.Ops[0].Chain.Owner != w {
				continue
			}
			recs = append(recs, codec.WALRecord{Event: tn.Txn.Event})
		}
	}
	m.SealInto(ep.Epoch, func(w *codec.Buffer) { codec.EncodeWALInto(w, recs) })
}

// GC implements ftapi.Mechanism; the engine truncates the durable log.
func (m *Mech) GC(uint64) {}

// Recover implements ftapi.Mechanism: reload all command records, sort
// them into global order, and redo them one by one on a single thread. A
// torn tail record — a group commit the device died inside — is discarded:
// its epochs never acknowledged, so they reprocess through the engine's
// uncommitted-tail path instead.
func (m *Mech) Recover(rc *ftapi.RecoveryContext) (uint64, error) {
	costs := vtime.Calibrate()
	readStop := metrics.SerialTimer(&rc.Breakdown.Reload, rc.Workers)
	cur, err := storage.ReadFrom(rc.Device, storage.LogFT, rc.SnapshotEpoch)
	readStop()
	if err != nil {
		return 0, fmt.Errorf("wal: recover: %w", err)
	}
	groups, committed, _, err := ftapi.DecodeCommittedCursor(cur, rc.SnapshotEpoch, rc.CommitLimit,
		func(_ uint64, payload []byte) ([]codec.WALRecord, error) { return codec.DecodeWAL(payload) })
	if err != nil {
		return 0, fmt.Errorf("wal: recover: %w", err)
	}
	var recs []codec.WALRecord
	for _, cg := range groups {
		for _, ep := range cg.Epochs {
			recs = append(recs, ep.Recs...)
		}
	}
	// Global ordering: the logs are per-worker ordered, and command redo
	// is only correct in timestamp order, so everything must be sorted —
	// the reload cost the paper highlights (all threads blocked behind
	// decode plus an n·log n sort).
	sort.Slice(recs, func(i, j int) bool { return recs[i].Event.Seq < recs[j].Event.Seq })
	reloadVirtual := time.Duration(len(recs))*costs.Record + costs.SortCost(len(recs))
	metrics.ChargeSerial(&rc.Breakdown.Reload, reloadVirtual, rc.Workers)
	rc.Prof.SerialPhase("decode+sort", reloadVirtual)

	// Sequential redo: command logs admit no safe parallelism, so one
	// virtual worker replays everything (executed for real here) while
	// the other W-1 idle — the wait time that makes WAL's bar the
	// tallest in the paper's stacked accounting. On the profiled timeline
	// every record lands on lane 0; the phase's critical path is the
	// largest single record cost — the best bound a command log can
	// claim, since it retains no dependency information at all.
	rc.Prof.BeginPhase("redo")
	var construct, execute time.Duration
	for i := range recs {
		txn := rc.App.Preprocess(recs[i].Event)
		aborted := ftapi.ExecuteTxnOnStore(rc.Store, &txn)
		if rc.Prof != nil {
			unit := costs.Preprocess + costs.TxnCost(&txn)
			rc.Prof.Op(0, "ev"+strconv.FormatUint(recs[i].Event.Seq, 10),
				construct+execute, 0, unit, aborted, vtime.EdgeNone, "", unit)
		}
		construct += costs.Preprocess
		execute += costs.TxnCost(&txn)
	}
	rc.Breakdown.Construct += construct
	rc.Breakdown.Execute += execute
	if rc.Workers > 1 {
		rc.Breakdown.Wait += time.Duration(rc.Workers-1) * (construct + execute)
		for w := 1; w < rc.Workers; w++ {
			rc.Prof.StallUntil(w, construct+execute, vtime.EdgeSerial, "redo")
		}
	}
	rc.Prof.EndPhase(construct + execute)
	return committed, nil
}
