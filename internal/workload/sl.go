package workload

import (
	"math/rand"

	"morphstreamr/internal/partition"
	"morphstreamr/internal/types"
)

// Streaming Ledger (SL): depositing and transferring money and assets
// between user accounts, the running example of the paper (Figures 1, 3).
// State lives in two tables — accounts and assets — and a transfer touches
// both sides of both tables in one state transaction, guarded by the
// source account's balance. The guard makes the credit-side operations
// parametrically dependent on the source account, which is why the paper
// characterises SL as the high-dependency workload.

// Table identifiers of the SL application.
const (
	SLAccounts types.TableID = 0
	SLAssets   types.TableID = 1
)

// Event kinds of the SL application.
const (
	SLDeposit types.EventKind = iota
	SLTransfer
)

// Output kinds mirror the event kinds: a deposit produces a balance
// statement, a transfer an invoice.

// SLParams configures the Streaming Ledger generator.
type SLParams struct {
	Seed int64
	// Rows is the size of each of the two tables.
	Rows uint32
	// Partitions is the data partition count (normally the worker count).
	Partitions int
	// Theta is the Zipfian skew of source-account selection.
	Theta float64
	// TransferRatio is the fraction of events that are transfers; the rest
	// are deposits.
	TransferRatio float64
	// MultiPartitionRatio is the fraction of transfers whose destination
	// lies in a different data partition than the source.
	MultiPartitionRatio float64
	// AbortRatio is the fraction of transfers engineered to fail their
	// balance guard. Natural aborts (drained hot accounts) add to this.
	AbortRatio float64
	// InitialBalance seeds every account and asset record.
	InitialBalance int64
}

// DefaultSLParams returns the configuration used by the paper-shaped
// experiments: moderate skew, a transfer-dominated mix, and half of the
// transfers crossing partitions.
func DefaultSLParams() SLParams {
	return SLParams{
		Seed:                1,
		Rows:                1 << 12,
		Partitions:          4,
		Theta:               0.6,
		TransferRatio:       0.6,
		MultiPartitionRatio: 0.5,
		AbortRatio:          0.05,
		InitialBalance:      100_000,
	}
}

// SLApp implements types.App for Streaming Ledger.
type SLApp struct {
	rows uint32
	init int64
}

// NewSLApp creates the application for tables of the given size.
func NewSLApp(rows uint32, initialBalance int64) *SLApp {
	return &SLApp{rows: rows, init: initialBalance}
}

// Name implements types.App.
func (a *SLApp) Name() string { return "SL" }

// Tables implements types.App.
func (a *SLApp) Tables() []types.TableSpec {
	return []types.TableSpec{
		{ID: SLAccounts, Rows: a.rows, Init: a.init},
		{ID: SLAssets, Rows: a.rows, Init: a.init},
	}
}

// Preprocess implements types.App. A deposit tops up the account and asset
// records; a transfer debits the source and credits the destination on
// both tables, all four operations guarded by the source account balance
// (the condition operation is the source-account debit).
func (a *SLApp) Preprocess(ev types.Event) types.Txn {
	txn := types.Txn{ID: ev.Seq, TS: ev.Seq, Event: ev}
	switch ev.Kind {
	case SLDeposit:
		acc, ast := ev.Keys[0], ev.Keys[1]
		amount := ev.Vals[0]
		txn.Ops = []types.Operation{
			{TxnID: ev.Seq, TS: ev.Seq, Idx: 0, Key: acc, Fn: types.FnAdd, Const: amount},
			{TxnID: ev.Seq, TS: ev.Seq, Idx: 1, Key: ast, Fn: types.FnAdd, Const: amount},
		}
	case SLTransfer:
		accSrc, accDst, astSrc, astDst := ev.Keys[0], ev.Keys[1], ev.Keys[2], ev.Keys[3]
		amount := ev.Vals[0]
		src := accSrc
		txn.Ops = []types.Operation{
			{TxnID: ev.Seq, TS: ev.Seq, Idx: 0, Key: accSrc, Fn: types.FnGuardedSubSelf, Const: amount},
			{TxnID: ev.Seq, TS: ev.Seq, Idx: 1, Key: accDst, Fn: types.FnGuardedAdd, Const: amount, Deps: []types.Key{src}},
			{TxnID: ev.Seq, TS: ev.Seq, Idx: 2, Key: astSrc, Fn: types.FnGuardedSub, Const: amount, Deps: []types.Key{src}},
			{TxnID: ev.Seq, TS: ev.Seq, Idx: 3, Key: astDst, Fn: types.FnGuardedAdd, Const: amount, Deps: []types.Key{src}},
		}
	default:
		panic("workload: unknown SL event kind")
	}
	return txn
}

// Postprocess implements types.App. Deposits emit a balance statement,
// transfers an invoice carrying a commit/abort status and the two
// post-transfer account balances.
func (a *SLApp) Postprocess(t *types.ExecutedTxn) types.Output {
	status := int64(0)
	if t.Aborted {
		status = 1
	}
	switch t.Txn.Event.Kind {
	case SLDeposit:
		return types.Output{
			EventSeq: t.Txn.ID,
			Kind:     SLDeposit,
			Vals:     []types.Value{t.Results[0], t.Results[1]},
		}
	case SLTransfer:
		return types.Output{
			EventSeq: t.Txn.ID,
			Kind:     SLTransfer,
			Vals:     []types.Value{status, t.Results[0], t.Results[1]},
		}
	default:
		panic("workload: unknown SL event kind")
	}
}

// SLGen generates the SL event stream.
type SLGen struct {
	p     SLParams
	app   *SLApp
	rng   *rand.Rand
	picks *keyPicker
	parts *partition.Ranges
	seq   uint64
}

// NewSL builds a Streaming Ledger generator.
func NewSL(p SLParams) *SLGen {
	app := NewSLApp(p.Rows, p.InitialBalance)
	return &SLGen{
		p:     p,
		app:   app,
		rng:   rand.New(rand.NewSource(p.Seed)),
		picks: newKeyPicker(p.Seed+1, p.Rows, p.Theta),
		parts: partition.NewRanges(app.Tables(), p.Partitions),
	}
}

// App implements Generator.
func (g *SLGen) App() types.App { return g.app }

// Next implements Generator.
func (g *SLGen) Next() types.Event {
	seq := g.seq
	g.seq++
	if g.rng.Float64() >= g.p.TransferRatio {
		row := g.picks.next()
		amount := 1 + g.rng.Int63n(100)
		return types.Event{
			Seq:  seq,
			Kind: SLDeposit,
			Keys: []types.Key{
				{Table: SLAccounts, Row: row},
				{Table: SLAssets, Row: row},
			},
			Vals: []types.Value{amount},
		}
	}
	srcRow := g.picks.next()
	srcPart := g.parts.Of(types.Key{Table: SLAccounts, Row: srcRow})
	var dstRow uint32
	for {
		if g.rng.Float64() < g.p.MultiPartitionRatio {
			dstRow = pickOther(g.rng, g.parts, SLAccounts, srcPart)
		} else {
			dstRow = pickIn(g.rng, g.parts, SLAccounts, srcPart)
		}
		if dstRow != srcRow {
			break
		}
	}
	amount := 1 + g.rng.Int63n(100)
	if g.rng.Float64() < g.p.AbortRatio {
		amount = doomedAmount
	}
	return types.Event{
		Seq:  seq,
		Kind: SLTransfer,
		Keys: []types.Key{
			{Table: SLAccounts, Row: srcRow},
			{Table: SLAccounts, Row: dstRow},
			{Table: SLAssets, Row: srcRow},
			{Table: SLAssets, Row: dstRow},
		},
		Vals: []types.Value{amount},
	}
}
