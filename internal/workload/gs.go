package workload

import (
	"math/rand"

	"morphstreamr/internal/partition"
	"morphstreamr/internal/types"
)

// Grep and Sum (GS): each Sum transaction reads a list of states and
// writes the summation result back to the first one. A single operation
// per transaction, but with a tunable number of parametric dependencies,
// tunable Zipfian skew, a tunable multi-partition ratio, and (for the
// sensitivity study of Figure 14c) a tunable abort ratio via a validation
// guard. The paper uses GS as its flexible sensitivity-study workload and
// characterises the default configuration as the most skewed one.

// GSTable is the single shared table of the GS application.
const GSTable types.TableID = 0

// Event kinds of the GS application.
const (
	// GSSum reads Keys[1:] and writes the sum (including the current
	// value) to Keys[0]. Vals[0] != 0 marks a doomed event whose
	// validation guard fails.
	GSSum types.EventKind = iota
	// GSPut overwrites Keys[0] with Vals[0]; the write-only mode used by
	// the skew sensitivity study (Figure 14b).
	GSPut
)

// GSParams configures the Grep&Sum generator.
type GSParams struct {
	Seed       int64
	Rows       uint32
	Partitions int
	// Theta is the Zipfian skew of the written key.
	Theta float64
	// Reads is the number of states each Sum reads besides its target
	// (the parametric dependency count per transaction).
	Reads int
	// MultiPartitionRatio is the probability that each read key is drawn
	// from a different data partition than the written key.
	MultiPartitionRatio float64
	// AbortRatio is the fraction of events whose validation guard fails.
	AbortRatio float64
	// WriteOnly switches every event to GSPut (skew study configuration).
	WriteOnly bool
}

// DefaultGSParams returns the paper-shaped default: high skew, three reads
// per sum, a third of reads crossing partitions.
func DefaultGSParams() GSParams {
	return GSParams{
		Seed:                1,
		Rows:                1 << 12,
		Partitions:          4,
		Theta:               1.0,
		Reads:               3,
		MultiPartitionRatio: 0.3,
		AbortRatio:          0,
	}
}

// GSApp implements types.App for Grep&Sum.
type GSApp struct {
	rows uint32
}

// NewGSApp creates the application for a table of the given size.
func NewGSApp(rows uint32) *GSApp { return &GSApp{rows: rows} }

// Name implements types.App.
func (a *GSApp) Name() string { return "GS" }

// Tables implements types.App. Records start at 1 so that sums start
// propagating non-trivial values immediately.
func (a *GSApp) Tables() []types.TableSpec {
	return []types.TableSpec{{ID: GSTable, Rows: a.rows, Init: 1}}
}

// Preprocess implements types.App.
func (a *GSApp) Preprocess(ev types.Event) types.Txn {
	txn := types.Txn{ID: ev.Seq, TS: ev.Seq, Event: ev}
	switch ev.Kind {
	case GSSum:
		txn.Ops = []types.Operation{{
			TxnID: ev.Seq, TS: ev.Seq, Idx: 0,
			Key:   ev.Keys[0],
			Fn:    types.FnSumAbortIf,
			Const: ev.Vals[0],
			Deps:  append([]types.Key(nil), ev.Keys[1:]...),
		}}
	case GSPut:
		txn.Ops = []types.Operation{{
			TxnID: ev.Seq, TS: ev.Seq, Idx: 0,
			Key: ev.Keys[0], Fn: types.FnPut, Const: ev.Vals[0],
		}}
	default:
		panic("workload: unknown GS event kind")
	}
	return txn
}

// Postprocess implements types.App: the output reports the written value
// and the commit/abort status.
func (a *GSApp) Postprocess(t *types.ExecutedTxn) types.Output {
	status := int64(0)
	if t.Aborted {
		status = 1
	}
	return types.Output{
		EventSeq: t.Txn.ID,
		Kind:     t.Txn.Event.Kind,
		Vals:     []types.Value{status, t.Results[0]},
	}
}

// GSGen generates the GS event stream.
type GSGen struct {
	p     GSParams
	app   *GSApp
	rng   *rand.Rand
	picks *keyPicker
	parts *partition.Ranges
	seq   uint64
}

// NewGS builds a Grep&Sum generator.
func NewGS(p GSParams) *GSGen {
	app := NewGSApp(p.Rows)
	return &GSGen{
		p:     p,
		app:   app,
		rng:   rand.New(rand.NewSource(p.Seed)),
		picks: newKeyPicker(p.Seed+1, p.Rows, p.Theta),
		parts: partition.NewRanges(app.Tables(), p.Partitions),
	}
}

// App implements Generator.
func (g *GSGen) App() types.App { return g.app }

// Next implements Generator.
func (g *GSGen) Next() types.Event {
	seq := g.seq
	g.seq++
	target := g.picks.next()
	if g.p.WriteOnly {
		return types.Event{
			Seq:  seq,
			Kind: GSPut,
			Keys: []types.Key{{Table: GSTable, Row: target}},
			Vals: []types.Value{g.rng.Int63n(1000)},
		}
	}
	keys := make([]types.Key, 0, 1+g.p.Reads)
	keys = append(keys, types.Key{Table: GSTable, Row: target})
	part := g.parts.Of(keys[0])
	retries := 0
	for len(keys) < 1+g.p.Reads {
		var row uint32
		switch {
		case retries > 8:
			// Tiny-partition fallback: draw from the whole table so the
			// generator cannot livelock when a partition has fewer rows
			// than the transaction needs distinct keys.
			row = uint32(g.rng.Int63n(int64(g.p.Rows)))
		case g.rng.Float64() < g.p.MultiPartitionRatio:
			row = pickOther(g.rng, g.parts, GSTable, part)
		default:
			row = pickIn(g.rng, g.parts, GSTable, part)
		}
		k := types.Key{Table: GSTable, Row: row}
		if containsKey(keys, k) {
			retries++
			continue
		}
		retries = 0
		keys = append(keys, k)
	}
	doomed := int64(0)
	if g.rng.Float64() < g.p.AbortRatio {
		doomed = 1
	}
	return types.Event{Seq: seq, Kind: GSSum, Keys: keys, Vals: []types.Value{doomed}}
}

func containsKey(keys []types.Key, k types.Key) bool {
	for _, kk := range keys {
		if kk == k {
			return true
		}
	}
	return false
}
