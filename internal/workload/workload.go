// Package workload implements the paper's three benchmark applications
// (Section VIII-A) as deterministic, seeded event generators paired with
// types.App implementations:
//
//   - Streaming Ledger (SL): money/asset transfers between accounts.
//     Parametric-dependency heavy — every transfer's credit and asset
//     operations depend on the source account's balance.
//   - Grep and Sum (GS): read a list of states, write the sum to the first.
//     Skew heavy, with tunable dependency count, multi-partition ratio and
//     abort ratio, making it the vehicle for the sensitivity studies.
//   - Toll Processing (TP): Linear Road-style per-segment speed and
//     vehicle-count maintenance with toll computation. Abort heavy —
//     invalid vehicle reports abort their transactions.
//
// Generators are pure functions of their seed: the same parameters always
// produce the same event stream, which the crash-recovery equivalence
// tests rely on.
package workload

import (
	"math/rand"

	"morphstreamr/internal/partition"
	"morphstreamr/internal/types"
	"morphstreamr/internal/zipf"
)

// Generator produces the input event stream for one application instance.
type Generator interface {
	// App returns the application the events are meant for.
	App() types.App
	// Next produces the next event; sequence numbers increase from 0.
	Next() types.Event
}

// Batch draws n consecutive events from a generator.
func Batch(g Generator, n int) []types.Event {
	out := make([]types.Event, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// doomedAmount is a transfer amount no account can ever hold, used to
// engineer guaranteed guard failures when a generator's abort ratio calls
// for one. Balances stay far below it: initial balances are ~10^4 and each
// deposit adds at most 10^2, so even 10^9 events stay below 10^11 << 2^40.
const doomedAmount = int64(1) << 40

// keyPicker draws rows with Zipfian skew, scattering hot ranks across the
// whole row space (and therefore across range partitions) with a fixed
// multiplicative permutation so that skew does not degenerate into
// "partition 0 is hot".
type keyPicker struct {
	z    *zipf.Generator
	rows uint32
}

func newKeyPicker(seed int64, rows uint32, theta float64) *keyPicker {
	return &keyPicker{z: zipf.New(seed, uint64(rows), theta), rows: rows}
}

// scramblePrime is coprime with every table size we use (it is prime and
// far larger than any row count), making rank -> row a bijection.
const scramblePrime = 2654435761

func (p *keyPicker) next() uint32 {
	rank := p.z.Next()
	return uint32((rank * scramblePrime) % uint64(p.rows))
}

// pickIn draws a uniform row inside data partition part of a table.
func pickIn(rng *rand.Rand, parts *partition.Ranges, t types.TableID, part int) uint32 {
	lo, hi := parts.RowsIn(t, part)
	if hi <= lo {
		return lo
	}
	return lo + uint32(rng.Int63n(int64(hi-lo)))
}

// pickOther draws a uniform row outside data partition part of a table.
func pickOther(rng *rand.Rand, parts *partition.Ranges, t types.TableID, part int) uint32 {
	if parts.Count() <= 1 {
		return pickIn(rng, parts, t, part)
	}
	p := int(rng.Int63n(int64(parts.Count() - 1)))
	if p >= part {
		p++
	}
	return pickIn(rng, parts, t, p)
}
