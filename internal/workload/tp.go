package workload

import (
	"math/rand"

	"morphstreamr/internal/types"
)

// Toll Processing (TP): the Linear Road-inspired workload. Roads are
// divided into segments; two mutable tables record each segment's average
// speed and its vehicle count. A position report folds the reported speed
// into the segment's moving average and increments the count, then the
// toll is computed during postprocessing from the two updated records.
// Invalid reports (negative speeds) abort the whole transaction, which is
// why the paper characterises TP as the abort-heavy workload with few
// parametric dependencies.

// Table identifiers of the TP application.
const (
	TPSpeed types.TableID = 0
	TPCount types.TableID = 1
)

// TPReport is the single event kind: a vehicle position report with
// Keys[0] = speed-table segment key, Keys[1] = count-table segment key,
// Vals[0] = reported speed (negative = invalid, aborts).
const TPReport types.EventKind = 0

// Linear Road-style toll model: segments congested below the speed
// threshold charge a toll growing quadratically with the vehicle count
// beyond the free quota.
const (
	tpSpeedThreshold = 40
	tpFreeVehicles   = 50
)

// TPParams configures the Toll Processing generator.
type TPParams struct {
	Seed int64
	// Segments is the number of road segments (rows per table).
	Segments   uint32
	Partitions int
	// Theta is the Zipfian skew of segment popularity.
	Theta float64
	// AbortRatio is the fraction of reports that are invalid.
	AbortRatio float64
}

// DefaultTPParams returns the paper-shaped default: a modest number of hot
// segments and a high invalid-report rate.
func DefaultTPParams() TPParams {
	return TPParams{
		Seed:       1,
		Segments:   1 << 11,
		Partitions: 4,
		Theta:      0.4,
		AbortRatio: 0.3,
	}
}

// TPApp implements types.App for Toll Processing.
type TPApp struct {
	segments uint32
}

// NewTPApp creates the application for the given number of road segments.
func NewTPApp(segments uint32) *TPApp { return &TPApp{segments: segments} }

// Name implements types.App.
func (a *TPApp) Name() string { return "TP" }

// Tables implements types.App.
func (a *TPApp) Tables() []types.TableSpec {
	return []types.TableSpec{
		{ID: TPSpeed, Rows: a.segments, Init: 0},
		{ID: TPCount, Rows: a.segments, Init: 0},
	}
}

// Preprocess implements types.App. The speed update is the condition
// operation: a negative report fails its guard and aborts the transaction,
// so the vehicle count (logically dependent) stays untouched.
func (a *TPApp) Preprocess(ev types.Event) types.Txn {
	txn := types.Txn{ID: ev.Seq, TS: ev.Seq, Event: ev}
	speedKey, cntKey := ev.Keys[0], ev.Keys[1]
	speed := ev.Vals[0]
	txn.Ops = []types.Operation{
		{TxnID: ev.Seq, TS: ev.Seq, Idx: 0, Key: speedKey, Fn: types.FnEwmaGuard, Const: speed},
		{TxnID: ev.Seq, TS: ev.Seq, Idx: 1, Key: cntKey, Fn: types.FnInc},
	}
	return txn
}

// Postprocess implements types.App: computes the toll from the updated
// average speed and vehicle count. Aborted reports emit a zero toll with
// an error status.
func (a *TPApp) Postprocess(t *types.ExecutedTxn) types.Output {
	if t.Aborted {
		return types.Output{EventSeq: t.Txn.ID, Kind: TPReport, Vals: []types.Value{1, 0}}
	}
	avgSpeed, count := t.Results[0], t.Results[1]
	toll := int64(0)
	if avgSpeed < tpSpeedThreshold && count > tpFreeVehicles {
		over := count - tpFreeVehicles
		toll = 2 * over * over
	}
	return types.Output{EventSeq: t.Txn.ID, Kind: TPReport, Vals: []types.Value{0, toll}}
}

// TPGen generates the TP event stream.
type TPGen struct {
	p     TPParams
	app   *TPApp
	rng   *rand.Rand
	picks *keyPicker
	seq   uint64
}

// NewTP builds a Toll Processing generator.
func NewTP(p TPParams) *TPGen {
	return &TPGen{
		p:     p,
		app:   NewTPApp(p.Segments),
		rng:   rand.New(rand.NewSource(p.Seed)),
		picks: newKeyPicker(p.Seed+1, p.Segments, p.Theta),
	}
}

// App implements Generator.
func (g *TPGen) App() types.App { return g.app }

// Next implements Generator.
func (g *TPGen) Next() types.Event {
	seq := g.seq
	g.seq++
	seg := g.picks.next()
	speed := 5 + g.rng.Int63n(75)
	if g.rng.Float64() < g.p.AbortRatio {
		speed = -1 - g.rng.Int63n(10)
	}
	return types.Event{
		Seq:  seq,
		Kind: TPReport,
		Keys: []types.Key{
			{Table: TPSpeed, Row: seg},
			{Table: TPCount, Row: seg},
		},
		Vals: []types.Value{speed},
	}
}
