package workload

import (
	"testing"

	"morphstreamr/internal/oracle"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/types"
)

// allGens builds one generator per app with small tables.
func allGens(seed int64) map[string]Generator {
	sl := DefaultSLParams()
	sl.Seed, sl.Rows = seed, 1024
	gs := DefaultGSParams()
	gs.Seed, gs.Rows, gs.AbortRatio = seed, 1024, 0.1
	tp := DefaultTPParams()
	tp.Seed, tp.Segments = seed, 512
	return map[string]Generator{
		"SL": NewSL(sl), "GS": NewGS(gs), "TP": NewTP(tp),
	}
}

// TestAllTxnsValid: every generated event must preprocess into a
// structurally valid transaction.
func TestAllTxnsValid(t *testing.T) {
	for name, gen := range allGens(1) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 3000; i++ {
				ev := gen.Next()
				if ev.Seq != uint64(i) {
					t.Fatalf("event %d has seq %d", i, ev.Seq)
				}
				txn := gen.App().Preprocess(ev)
				if err := types.ValidateTxn(&txn); err != nil {
					t.Fatalf("event %d: %v", i, err)
				}
			}
		})
	}
}

// TestDeterministic: same seed, same stream.
func TestDeterministic(t *testing.T) {
	a, b := allGens(7), allGens(7)
	for name := range a {
		for i := 0; i < 500; i++ {
			ea, eb := a[name].Next(), b[name].Next()
			if ea.Seq != eb.Seq || ea.Kind != eb.Kind || len(ea.Keys) != len(eb.Keys) {
				t.Fatalf("%s: event %d differs across identically seeded generators", name, i)
			}
			for j := range ea.Keys {
				if ea.Keys[j] != eb.Keys[j] {
					t.Fatalf("%s: event %d key %d differs", name, i, j)
				}
			}
			for j := range ea.Vals {
				if ea.Vals[j] != eb.Vals[j] {
					t.Fatalf("%s: event %d val %d differs", name, i, j)
				}
			}
		}
	}
}

// TestAbortRatioRealised: the fraction of transactions the oracle aborts
// must track the generator's configured abort ratio (doomed events plus a
// small natural-abort margin).
func TestAbortRatioRealised(t *testing.T) {
	cases := []struct {
		name  string
		gen   Generator
		ratio float64
		slack float64
	}{
		{"SL", NewSL(func() SLParams {
			p := DefaultSLParams()
			p.Rows, p.AbortRatio, p.TransferRatio = 1024, 0.3, 1.0
			return p
		}()), 0.3, 0.1},
		{"GS", NewGS(func() GSParams {
			p := DefaultGSParams()
			p.Rows, p.AbortRatio = 1024, 0.25
			return p
		}()), 0.25, 0.05},
		{"TP", NewTP(func() TPParams {
			p := DefaultTPParams()
			p.Segments, p.AbortRatio = 512, 0.4
			return p
		}()), 0.4, 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := oracle.New(tc.gen.App())
			const n = 4000
			aborts := 0
			for i := 0; i < n; i++ {
				txn := tc.gen.App().Preprocess(tc.gen.Next())
				if o.ExecuteTxn(&txn).Aborted {
					aborts++
				}
			}
			got := float64(aborts) / n
			if got < tc.ratio-tc.slack || got > tc.ratio+tc.slack+0.1 {
				t.Errorf("abort rate %.3f, configured %.2f", got, tc.ratio)
			}
		})
	}
}

// TestSLMultiPartitionRatio: the fraction of transfers crossing data
// partitions must track the configured ratio.
func TestSLMultiPartitionRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.5, 1.0} {
		p := DefaultSLParams()
		p.Rows, p.TransferRatio, p.MultiPartitionRatio = 4096, 1.0, ratio
		gen := NewSL(p)
		parts := partition.NewRanges(gen.App().Tables(), p.Partitions)
		cross, total := 0, 4000
		for i := 0; i < total; i++ {
			ev := gen.Next()
			if parts.Of(ev.Keys[0]) != parts.Of(ev.Keys[1]) {
				cross++
			}
		}
		got := float64(cross) / float64(total)
		if got < ratio-0.05 || got > ratio+0.05 {
			t.Errorf("ratio %.1f: measured cross-partition fraction %.3f", ratio, got)
		}
	}
}

// TestGSReadsDistinct: every Sum transaction reads the configured number
// of distinct keys, never its own target.
func TestGSReadsDistinct(t *testing.T) {
	p := DefaultGSParams()
	p.Rows, p.Reads = 256, 5
	gen := NewGS(p)
	for i := 0; i < 2000; i++ {
		ev := gen.Next()
		if len(ev.Keys) != 6 {
			t.Fatalf("event %d has %d keys, want 6", i, len(ev.Keys))
		}
		seen := map[types.Key]bool{}
		for _, k := range ev.Keys {
			if seen[k] {
				t.Fatalf("event %d repeats key %v", i, k)
			}
			seen[k] = true
		}
	}
}

// TestGSWriteOnlyMode: the skew-study configuration must emit only puts.
func TestGSWriteOnlyMode(t *testing.T) {
	p := DefaultGSParams()
	p.Rows, p.WriteOnly = 256, true
	gen := NewGS(p)
	for i := 0; i < 200; i++ {
		ev := gen.Next()
		if ev.Kind != GSPut || len(ev.Keys) != 1 {
			t.Fatalf("write-only mode emitted %+v", ev)
		}
		txn := gen.App().Preprocess(ev)
		if len(txn.Ops) != 1 || txn.Ops[0].Fn != types.FnPut {
			t.Fatalf("write-only txn = %+v", txn.Ops)
		}
	}
}

// TestSLConservation: deposits and committed transfers conserve the
// accounts/assets ledger: total(accounts) == total(assets) at all times
// when both tables start equal and every operation moves them in tandem.
func TestSLConservation(t *testing.T) {
	p := DefaultSLParams()
	p.Rows, p.AbortRatio = 512, 0.2
	gen := NewSL(p)
	o := oracle.New(gen.App())
	for i := 0; i < 3000; i++ {
		o.Apply(gen.Next())
	}
	var acc, ast int64
	for row := uint32(0); row < p.Rows; row++ {
		acc += o.Value(types.Key{Table: SLAccounts, Row: row})
		ast += o.Value(types.Key{Table: SLAssets, Row: row})
	}
	if acc != ast {
		t.Errorf("accounts total %d != assets total %d; transfer atomicity broken", acc, ast)
	}
}

// TestTPOutputs: toll outputs carry the abort status and a toll value
// consistent with the model.
func TestTPOutputs(t *testing.T) {
	p := DefaultTPParams()
	p.Segments, p.AbortRatio, p.Theta = 4, 0.3, 0 // tiny + hot: tolls must appear
	gen := NewTP(p)
	o := oracle.New(gen.App())
	sawToll, sawAbort := false, false
	for i := 0; i < 3000; i++ {
		out := o.Apply(gen.Next())
		if len(out.Vals) != 2 {
			t.Fatalf("TP output %+v", out)
		}
		if out.Vals[0] == 1 {
			sawAbort = true
			if out.Vals[1] != 0 {
				t.Fatal("aborted report must carry zero toll")
			}
		} else if out.Vals[1] > 0 {
			sawToll = true
		}
	}
	if !sawAbort {
		t.Error("no aborts observed at 30% invalid reports")
	}
	if !sawToll {
		t.Error("no tolls charged on 4 congested segments after 3000 reports")
	}
}

// TestScrambleSpreadsHotKeys: the hottest zipf ranks must not all land in
// data partition 0 — the key-scrambling permutation spreads them.
func TestScrambleSpreadsHotKeys(t *testing.T) {
	p := DefaultGSParams()
	p.Rows, p.Theta = 1<<14, 1.2
	gen := NewGS(p)
	parts := partition.NewRanges(gen.App().Tables(), 4)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		ev := gen.Next()
		counts[parts.Of(ev.Keys[0])]++
	}
	for part, c := range counts {
		if c == 0 {
			t.Errorf("partition %d received no writes despite scrambling", part)
		}
	}
}
