package workload

import (
	"math/rand"

	"morphstreamr/internal/types"
)

// Phased is the phase-shifting Grep&Sum stream behind the adaptive
// scheduling benchmark (cmd/schedbench's trajectory section): the stream
// alternates between a spread phase — uniform writes across the whole
// table, where the TPG decomposes into thousands of short chains and
// parallel execution shines — and a hot phase, where every write lands on
// a handful of keys, the graph collapses into a few long temporal chains,
// and any parallel scheduler mostly coordinates idle workers. A static
// worker count is wrong in one phase or the other; the adaptive controller
// must notice each shift from the graph's structure and morph.

// PhasedParams configures the phase-shifting generator.
type PhasedParams struct {
	Seed int64
	// Rows is the table size (and the key range of the spread phase).
	Rows uint32
	// PhaseEvents is the number of events in each phase before the stream
	// flips to the other.
	PhaseEvents int
	// HotRows is the number of distinct keys the hot phase writes; the
	// default of 1 makes the hot graph one strictly serial chain.
	HotRows uint32
}

// DefaultPhasedParams: 4096-row table, one hot key, and phases of 8
// benchmark epochs (schedbench runs 2048-event epochs), long enough for a
// hysteresis-damped controller to morph and then profit from it.
func DefaultPhasedParams() PhasedParams {
	return PhasedParams{Seed: 1, Rows: 1 << 12, PhaseEvents: 8 * 2048, HotRows: 1}
}

// PhasedGen generates the phase-shifting event stream. All events are
// GSPut writes (the GS skew-study mode), so chain structure — not
// parametric dependencies — is the only thing that changes across phases.
type PhasedGen struct {
	p   PhasedParams
	app *GSApp
	rng *rand.Rand
	seq uint64
}

// NewPhased builds a phase-shifting generator.
func NewPhased(p PhasedParams) *PhasedGen {
	if p.Rows == 0 {
		p.Rows = 1 << 12
	}
	if p.PhaseEvents <= 0 {
		p.PhaseEvents = 8 * 2048
	}
	if p.HotRows == 0 {
		p.HotRows = 1
	}
	return &PhasedGen{p: p, app: NewGSApp(p.Rows), rng: rand.New(rand.NewSource(p.Seed))}
}

// App implements Generator.
func (g *PhasedGen) App() types.App { return g.app }

// Next implements Generator.
func (g *PhasedGen) Next() types.Event {
	seq := g.seq
	g.seq++
	var row uint32
	if (seq/uint64(g.p.PhaseEvents))%2 == 0 {
		row = uint32(g.rng.Int63n(int64(g.p.Rows))) // spread phase
	} else {
		row = uint32(g.rng.Int63n(int64(g.p.HotRows))) // hot phase
	}
	return types.Event{
		Seq:  seq,
		Kind: GSPut,
		Keys: []types.Key{{Table: GSTable, Row: row}},
		Vals: []types.Value{g.rng.Int63n(1000)},
	}
}
