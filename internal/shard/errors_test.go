package shard_test

import (
	"errors"
	"fmt"
	"testing"

	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/supervisor"
)

// TestShardErrorIdentity (satellite: error-identity plumbing): a shard
// failure surfaced by the coordinator must stay matchable end to end —
// errors.As recovers the *ShardError (which shard died), and errors.Is sees
// the engine's sentinel through it, so the supervisor's taxonomy and the
// serving layer's heal path both classify the real cause, not the wrapper.
func TestShardErrorIdentity(t *testing.T) {
	app, batches := gsRun(21, 4, 16)
	g, err := shard.NewGroup(shard.Config{
		GroupShape: sweepShape(2), App: app, Kind: ftapi.WAL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ProcessEpoch(batches[0]); err != nil {
		t.Fatal(err)
	}
	g.Engine(1).Crash()
	procErr := g.ProcessEpoch(batches[1])
	if procErr == nil {
		t.Fatal("crashed shard processed an epoch")
	}
	var serr *shard.ShardError
	if !errors.As(procErr, &serr) || serr.Shard != 1 {
		t.Fatalf("want *ShardError for shard 1, got %v", procErr)
	}
	if !errors.Is(procErr, engine.ErrCrashed) {
		t.Fatalf("ShardError hides engine.ErrCrashed: %v", procErr)
	}

	// Further wrapping — what the serving layer's heal path does before
	// recording an incident — must not strip either identity.
	wrapped := fmt.Errorf("serve: heal: %w", fmt.Errorf("feed epoch 2: %w", procErr))
	if !errors.As(wrapped, &serr) || !errors.Is(wrapped, engine.ErrCrashed) {
		t.Fatalf("identity lost through wrapping: %v", wrapped)
	}
}

// TestShardErrorClassification: the supervisor taxonomy reads the cause
// through a ShardError the same way it reads a bare engine error.
func TestShardErrorClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"poisoned shard", &shard.ShardError{Shard: 0, Err: fmt.Errorf("wal: commit: %w: disk", ftapi.ErrPoisoned)}, "poisoned"},
		{"crashed shard", &shard.ShardError{Shard: 2, Err: engine.ErrCrashed}, "io-fatal"},
	}
	for _, tc := range cases {
		if got := supervisor.Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}
