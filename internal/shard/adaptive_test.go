package shard_test

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/types"
)

// TestAdaptiveGroupMatchesOracle: the adaptive controller coexists with
// the sharded coordinator — every shard engine morphs independently, yet
// the group still matches the sharded oracle and commits in lockstep. The
// shard protocol's determinism rests on the durable-write-neutrality of
// morphs, the same invariant the engine-level transcript pin checks.
func TestAdaptiveGroupMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		app, batches := gsRun(9, 6, 24)
		shape := types.GroupShape{
			RunShape: types.RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 4, Adaptive: true},
			Shards:   n,
		}
		g, err := shard.NewGroup(shard.Config{
			GroupShape: shape, App: app, Kind: ftapi.WAL,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Run(batches); err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		for _, committed := range g.CommittedVector() {
			if committed != 6 {
				t.Fatalf("shards=%d: committed vector %v, want all 6", n, g.CommittedVector())
			}
		}
		orc, err := shard.NewGroupOracle(app, n, batches)
		if err != nil {
			t.Fatal(err)
		}
		delivered := make([][]types.Output, n)
		for s := 0; s < n; s++ {
			delivered[s] = g.DeliveredUnion(s)
		}
		verifyAgainstOracle(t, g, orc, delivered)
	}
}
