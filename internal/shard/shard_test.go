package shard_test

import (
	"strings"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// sweepShape is the compact run every shard test uses: two workers per
// shard, commit every 2 epochs, snapshot every 4.
func sweepShape(shards int) types.GroupShape {
	return types.GroupShape{
		RunShape: types.RunShape{Workers: 2, CommitEvery: 2, SnapshotEvery: 4},
		Shards:   shards,
	}
}

// gsRun generates a seeded Grep&Sum run: the app and the per-epoch global
// batches both the group and its oracle consume.
func gsRun(seed int64, epochs, epochSize int) (types.App, [][]types.Event) {
	gen := fttest.GSGen(seed)
	batches := make([][]types.Event, epochs)
	for i := range batches {
		batches[i] = workload.Batch(gen, epochSize)
	}
	return gen.App(), batches
}

func realPending(g *shard.Group, s int) int {
	return g.Engine(s).PendingOutputsMatching(func(o types.Output) bool { return !shard.IsReplication(o) })
}

// verifyAgainstOracle checks every shard's state, routing counters, and
// exactly-once application outputs at the group's current epoch.
func verifyAgainstOracle(t *testing.T, g *shard.Group, orc *shard.GroupOracle, delivered [][]types.Output) {
	t.Helper()
	last := g.Epoch()
	for s := 0; s < g.Shards(); s++ {
		if err := orc.CheckState(s, last, g.Engine(s).Store()); err != nil {
			t.Fatal(err)
		}
		if got, want := g.FedReal(s), orc.RealEvents(s, last); got != want {
			t.Fatalf("shard %d: routed %d real events, oracle says %d", s, got, want)
		}
		outs := shard.RealOutputs(delivered[s])
		if err := orc.CheckOutputs(s, last, outs, realPending(g, s)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupMatchesOracle runs the live (no-crash) group protocol at
// several fan-outs and checks every shard against the sharded oracle.
func TestGroupMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		app, batches := gsRun(7, 6, 24)
		g, err := shard.NewGroup(shard.Config{
			GroupShape: sweepShape(n), App: app, Kind: ftapi.WAL,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Run(batches); err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if got := g.Epoch(); got != 6 {
			t.Fatalf("shards=%d: group at epoch %d, want 6", n, got)
		}
		for _, committed := range g.CommittedVector() {
			if committed != 6 {
				t.Fatalf("shards=%d: committed vector %v, want all 6", n, g.CommittedVector())
			}
		}
		orc, err := shard.NewGroupOracle(app, n, batches)
		if err != nil {
			t.Fatal(err)
		}
		delivered := make([][]types.Output, n)
		for s := 0; s < n; s++ {
			delivered[s] = g.DeliveredUnion(s)
		}
		verifyAgainstOracle(t, g, orc, delivered)
	}
}

// TestLocalReadsGroup covers the replication-free mode: a partition-local
// Grep&Sum (MultiPartitionRatio 0, Partitions == Shards) runs with
// LocalReads, crashes, recovers in parallel, and continues — all verified
// against the local oracle, which skips replication exactly as the
// coordinator does.
func TestLocalReadsGroup(t *testing.T) {
	const n = 4
	p := workload.DefaultGSParams()
	p.Seed, p.Rows, p.Theta = 19, 512, 0.2
	p.Partitions, p.MultiPartitionRatio = n, 0
	gen := workload.NewGS(p)
	app := gen.App()
	batches := make([][]types.Event, 7)
	for i := range batches {
		batches[i] = workload.Batch(gen, 24)
	}
	devs := make([]storage.Device, n)
	for i := range devs {
		devs[i] = storage.NewMem()
	}
	cfg := shard.Config{
		GroupShape: sweepShape(n), App: app, Kind: ftapi.WAL,
		Devices: devs, CoordDev: storage.NewMem(), LocalReads: true,
	}
	g, err := shard.NewGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(batches[:6]); err != nil {
		t.Fatal(err)
	}
	precrash := make([][]types.Output, n)
	for s := 0; s < n; s++ {
		precrash[s] = g.DeliveredUnion(s)
		// The coordinator must not have built a single replication event.
		for _, o := range precrash[s] {
			if shard.IsReplication(o) {
				t.Fatalf("shard %d delivered replication ack %d in LocalReads mode", s, o.EventSeq)
			}
		}
	}
	g.Crash()

	g2, rep, err := shard.GroupRecover(shard.RecoverConfig{
		Config: cfg, Source: shard.BatchSource(batches),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Target != 6 {
		t.Fatalf("recovered to epoch %d, want 6", rep.Target)
	}
	if err := g2.ProcessEpoch(batches[6]); err != nil {
		t.Fatal(err)
	}
	orc, err := shard.NewLocalGroupOracle(app, n, batches)
	if err != nil {
		t.Fatal(err)
	}
	delivered := make([][]types.Output, n)
	for s := 0; s < n; s++ {
		delivered[s] = append(precrash[s], g2.DeliveredUnion(s)...)
	}
	verifyAgainstOracle(t, g2, orc, delivered)
}

// TestWriteLocalityViolation proves the barrier rejects applications that
// write keys owned by other shards: StreamLedger transfers debit one
// account and credit another, so at two shards a cross-partition transfer
// must surface the locality error instead of silently corrupting the
// frontier.
func TestWriteLocalityViolation(t *testing.T) {
	gen := fttest.SLGen(41)
	g, err := shard.NewGroup(shard.Config{
		GroupShape: sweepShape(2), App: gen.App(), Kind: ftapi.WAL,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 6; ep++ {
		if err := g.ProcessEpoch(workload.Batch(gen, 24)); err != nil {
			if !strings.Contains(err.Error(), "write-locality") {
				t.Fatalf("want write-locality violation, got: %v", err)
			}
			if err := g.ProcessEpoch(nil); err != shard.ErrCrashed {
				t.Fatalf("group should be crashed after violation, got: %v", err)
			}
			return
		}
	}
	t.Fatal("no write-locality violation in 6 epochs of cross-partition transfers")
}

// TestGroupCrashRecoverContinue is the smoke version of the sharded sweep:
// crash the whole group after a full run, recover all shards in parallel,
// verify oracle equivalence, then keep processing and verify again.
func TestGroupCrashRecoverContinue(t *testing.T) {
	const n = 4
	app, batches := gsRun(11, 7, 24)
	pre := batches[:6]
	devs := make([]storage.Device, n)
	for i := range devs {
		devs[i] = storage.NewMem()
	}
	cfg := shard.Config{
		GroupShape: sweepShape(n), App: app, Kind: ftapi.CKPT,
		Devices: devs, CoordDev: storage.NewMem(),
	}
	g, err := shard.NewGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(pre); err != nil {
		t.Fatal(err)
	}
	precrash := make([][]types.Output, n)
	for s := 0; s < n; s++ {
		precrash[s] = g.DeliveredUnion(s)
	}
	g.Crash()
	if err := g.ProcessEpoch(nil); err != shard.ErrCrashed {
		t.Fatalf("crashed group accepted an epoch: %v", err)
	}

	g2, rep, err := shard.GroupRecover(shard.RecoverConfig{
		Config: cfg, Source: shard.BatchSource(batches),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Target != 6 {
		t.Fatalf("recovered to epoch %d, want 6", rep.Target)
	}
	if rep.SerialSim < rep.ParallelSim {
		t.Fatalf("serial sim %v < parallel sim %v", rep.SerialSim, rep.ParallelSim)
	}

	orc, err := shard.NewGroupOracle(app, n, batches)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.ProcessEpoch(batches[6]); err != nil {
		t.Fatal(err)
	}
	delivered := make([][]types.Output, n)
	for s := 0; s < n; s++ {
		delivered[s] = append(precrash[s], g2.DeliveredUnion(s)...)
	}
	verifyAgainstOracle(t, g2, orc, delivered)
}
