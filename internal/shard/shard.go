// Package shard scales the engine out across N shards: a coordinator
// routes events by key over internal/partition's range maps, runs one
// engine per shard (each with its own storage device, mechanism, and
// logs), and aligns the shards' epochs with punctuation barriers so
// cross-shard reads observe a consistent committed frontier.
//
// # Epoch protocol
//
// Every group epoch is one lockstep round:
//
//  1. route the global batch to per-shard sub-batches by each event's
//     first key (the write target; applications run sharded must be
//     write-local — every key a transaction writes lives in the shard
//     that owns its routing key, a property the barrier verifies);
//  2. prepend each shard's replication events — the previous barrier's
//     foreign write-sets as KindReplicate puts, sequenced below the
//     epoch's real events so frontier writes order before every real
//     read (see replicate.go);
//  3. process all shards (concurrently by default), then barrier;
//  4. extract each shard's owned write-set delta, append one frontier
//     record to the coordinator's own durable log, and stage the deltas
//     as the next epoch's replication payload.
//
// Cross-shard reads therefore observe other shards' state as of the last
// barrier — exactly the punctuation-aligned consistent frontier the
// protocol promises — and because replication rides the ordinary event
// path, every fault-tolerance mechanism logs and replays it with zero
// shard-specific code.
//
// # Recovery
//
// After a group crash, GroupRecover (see recovery.go) recovers every
// shard in parallel with stock engine.Recover — per-shard TPG replay ×
// shard fan-out — then re-aligns stragglers from the durable frontier log
// and reports a group MTTR. A single dead shard heals without stopping
// the survivors via Group.HealShard (see heal.go).
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
)

// LogFrontier is the coordinator's durable log of barrier frontier
// records: one record per group epoch, payload EncodeShardDeltas. It lives
// on the coordinator's own device, so shard logs and the group punctuation
// agreement survive crashes independently.
const LogFrontier = "frontier"

// Config assembles one shard group.
type Config struct {
	// GroupShape is the shard fan-out plus the per-shard engine knobs.
	// Pipeline is ignored: the coordinator feeds one epoch per barrier, so
	// there is never a multi-epoch run to overlap.
	types.GroupShape
	// App is the (write-local) application; the coordinator wraps it with
	// the replication-event handler.
	App types.App
	// Kind is the fault-tolerance mechanism every shard runs.
	Kind ftapi.Kind
	// Devices are the per-shard durable devices (len Shards). Nil entries
	// and a short or nil slice are filled with fresh in-memory devices.
	Devices []storage.Device
	// CoordDev is the coordinator's durable device for the frontier log.
	// Nil allocates a fresh in-memory device.
	CoordDev storage.Device
	// Obs, when non-nil, observes every shard engine (per-shard series)
	// and the group barriers.
	Obs *obs.Observer
	// Health receives shard-death incidents from HealShard; nil allocates
	// a fresh log.
	Health *metrics.Health
	// Sinks, when non-nil, receives each shard's released outputs
	// (Sinks[i] for shard i) in addition to the engines' ledgers.
	Sinks []func([]types.Output)
	// LocalReads declares the application partition-local: every key a
	// transaction reads lives in the shard that owns its routing key (GS
	// with MultiPartitionRatio 0 and Partitions == Shards, for example).
	// The coordinator then skips cross-shard replication entirely — no
	// frontier deltas, no replication events — which removes the per-epoch
	// broadcast tax and is what lets a partitionable workload scale near
	// linearly. Write locality is still verified every barrier; read
	// locality is the caller's assertion (reads are not captured) — if it
	// is wrong, a cross-shard read deterministically observes the table's
	// Init value instead of the replicated frontier.
	LocalReads bool
	// SerialEpochs processes the shards of each epoch sequentially instead
	// of concurrently. Benchmarks use it to measure clean per-shard walls
	// on oversubscribed hosts; the durable history is identical.
	SerialEpochs bool
	// RecordRouting retains the shard assignment of every routed event
	// (the determinism test's routed-event transcript).
	RecordRouting bool
	// OnCommit, when non-nil, is called after a completed barrier whenever
	// the group's committed punctuation frontier (see Committed) advances,
	// with the new frontier. Epochs at or below the frontier have durably
	// committed on every shard and released their outputs, so this is the
	// signal the serving layer keys exactly-once client acks to. Called on
	// the coordinator's feeding goroutine.
	OnCommit func(frontier uint64)
}

func (c *Config) normalize() error {
	if c.App == nil {
		return errors.New("shard: App is required")
	}
	if err := c.GroupShape.Normalize(); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if len(c.Devices) < c.Shards {
		c.Devices = append(append([]storage.Device(nil), c.Devices...),
			make([]storage.Device, c.Shards-len(c.Devices))...)
	}
	for i := range c.Devices {
		if c.Devices[i] == nil {
			c.Devices[i] = storage.NewMem()
		}
	}
	if c.CoordDev == nil {
		c.CoordDev = storage.NewMem()
	}
	if c.Health == nil {
		c.Health = metrics.NewHealth()
	}
	return nil
}

// ErrCrashed is returned by ProcessEpoch after the group crashed.
var ErrCrashed = errors.New("shard: group crashed; recover with GroupRecover")

// ShardError wraps a shard-local failure with the shard that died, so
// callers can distinguish "heal shard 2" from a group-wide failure.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying engine error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// EpochStat is one group epoch's timing: per-shard processing walls and
// the barrier (delta extraction + frontier append) wall. cmd/shardbench
// derives the simulated group ingest wall as Σ over epochs of
// (max shard wall + barrier wall).
type EpochStat struct {
	Epoch       uint64
	Events      int // real events fed this epoch, group-wide
	ShardWalls  []time.Duration
	BarrierWall time.Duration
}

// shardState is one shard's runtime: its engine, device, and the write-set
// capture that feeds the barrier.
type shardState struct {
	idx   int
	dev   storage.Device
	eng   *engine.Engine
	bytes *metrics.Bytes

	// writeSet holds the chain keys of epoch writeSetEpoch, captured by
	// the engine's OnWriteSet hook on the shard's goroutine and read only
	// after the barrier joins all shards.
	writeSet      []types.Key
	writeSetEpoch uint64

	// repKeys is the set of keys the coordinator fed shard idx as
	// replication puts this epoch. Replication deliberately writes
	// foreign-owned keys (that is what a replica is), so the barrier's
	// write-locality check exempts exactly these; any other foreign-key
	// write is an application locality violation. An application write to
	// a key that was also replicated this epoch is masked by the exemption
	// — acceptable, since such an application is already rejected the
	// first time it writes a foreign key that was not replicated.
	repKeys map[types.Key]bool

	fedReal int
	// banked holds outputs delivered by abandoned incarnations of this
	// shard (per-shard heals); DeliveredUnion joins them with the live
	// engine's ledger.
	banked []types.Output
}

// Group is a running shard group. Create with NewGroup (or GroupRecover),
// drive with ProcessEpoch.
type Group struct {
	cfg    Config
	app    *App
	router *partition.Ranges
	shards []*shardState
	coord  storage.Device

	epoch    uint64
	crashed  bool
	seqFloor uint64

	// lastDeltas is the previous barrier's per-shard delta — the next
	// epoch's replication payload. fullSync replaces it with every shard's
	// full owned partition for one epoch (set after a group recovery,
	// whose mechanism-replayed epochs have no captured write sets).
	lastDeltas []codec.ShardDelta
	fullSync   bool

	// notified is the last frontier surfaced through Config.OnCommit, so
	// the hook fires only on advancement.
	notified uint64

	// commitAt records when each epoch's commit became covered by the
	// group frontier (coordinator goroutine only, like the rest of the
	// epoch state). commitMarked is the highest epoch stamped.
	commitAt     map[uint64]time.Time
	commitMarked uint64

	stats  []EpochStat
	routes [][]int
}

// NewGroup builds a shard group with fresh engines over cfg's devices.
func NewGroup(cfg Config) (*Group, error) {
	g, err := newGroupShell(cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range g.shards {
		eng, err := engine.New(g.engineConfig(s))
		if err != nil {
			return nil, err
		}
		s.eng = eng
	}
	return g, nil
}

// newGroupShell validates the config and builds everything except the
// engines (GroupRecover seats recovered engines instead of fresh ones).
func newGroupShell(cfg Config) (*Group, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := &Group{
		cfg:      cfg,
		app:      WrapApp(cfg.App),
		router:   partition.NewRanges(cfg.App.Tables(), cfg.Shards),
		coord:    cfg.CoordDev,
		commitAt: map[uint64]time.Time{},
	}
	for i := 0; i < cfg.Shards; i++ {
		g.shards = append(g.shards, &shardState{
			idx:   i,
			dev:   cfg.Devices[i],
			bytes: metrics.NewBytes(),
		})
	}
	return g, nil
}

// engineConfig assembles shard s's engine configuration. The OnWriteSet
// closure captures into s only; during concurrent epochs each engine
// goroutine therefore touches its own shard state exclusively.
func (g *Group) engineConfig(s *shardState) engine.Config {
	shape := g.cfg.RunShape
	shape.Pipeline = false
	// One commit cadence per group: the punctuation agreement is exactly
	// that every shard's markers land on the same epochs, so the MSR
	// advisor must not retune CommitEvery per shard.
	shape.AutoCommit = false
	var sink func([]types.Output)
	if len(g.cfg.Sinks) > s.idx {
		sink = g.cfg.Sinks[s.idx]
	}
	return engine.Config{
		RunShape:  shape,
		App:       g.app,
		Device:    s.dev,
		Mechanism: core.NewMechanism(g.cfg.Kind, s.dev, s.bytes, msr.Default()),
		Bytes:     s.bytes,
		Obs:       g.cfg.Obs,
		Sink:      sink,
		Shard:     s.idx,
		OfShards:  g.cfg.Shards,
		OnWriteSet: func(ep uint64, keys []types.Key) {
			s.writeSet = append(s.writeSet[:0], keys...)
			s.writeSetEpoch = ep
		},
	}
}

// ProcessEpoch ingests one group punctuation interval: route, replicate,
// process all shards, barrier. A shard failure surfaces as a *ShardError
// and crashes the group (HealShard can instead heal that one shard and
// complete the epoch; see heal.go).
func (g *Group) ProcessEpoch(events []types.Event) error {
	if g.crashed {
		return ErrCrashed
	}
	ep := g.epoch + 1

	subs, minSeq, err := g.route(events)
	if err != nil {
		g.crashed = true
		return err
	}
	reps, err := g.replicationFor(minSeq)
	if err != nil {
		g.crashed = true
		return err
	}

	for i, s := range g.shards {
		s.repKeys = repKeySet(reps[i])
	}

	walls := make([]time.Duration, len(g.shards))
	errs := make([]error, len(g.shards))
	run := func(i int) {
		t0 := time.Now()
		batch := append(reps[i], subs[i]...)
		errs[i] = g.shards[i].eng.ProcessEpoch(batch)
		walls[i] = time.Since(t0)
	}
	if g.cfg.SerialEpochs {
		for i := range g.shards {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range g.shards {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			g.crashed = true
			return &ShardError{Shard: i, Err: err}
		}
	}
	for i, s := range g.shards {
		s.fedReal += len(subs[i])
	}

	t0 := time.Now()
	if err := g.completeBarrier(ep); err != nil {
		g.crashed = true
		return err
	}
	g.stats = append(g.stats, EpochStat{
		Epoch: ep, Events: len(events), ShardWalls: walls, BarrierWall: time.Since(t0),
	})
	return nil
}

// Run feeds a fixed batch list, one group epoch per batch.
func (g *Group) Run(batches [][]types.Event) error {
	for _, batch := range batches {
		if err := g.ProcessEpoch(batch); err != nil {
			return err
		}
	}
	return nil
}

// route splits the global batch into per-shard sub-batches by each
// event's first key, and returns the epoch's minimum real sequence number
// (the replication sequence ceiling).
func (g *Group) route(events []types.Event) ([][]types.Event, uint64, error) {
	subs := make([][]types.Event, len(g.shards))
	// An empty epoch anchors replication sequences just past the highest
	// sequence ever routed (no real events to order against).
	minSeq := g.seqFloor
	var route []int
	for i, ev := range events {
		if ev.Kind == KindReplicate {
			return nil, 0, fmt.Errorf("shard: input event %d uses reserved kind %d", ev.Seq, KindReplicate)
		}
		if len(ev.Keys) == 0 {
			return nil, 0, fmt.Errorf("shard: input event %d has no routing key", ev.Seq)
		}
		s := g.router.Of(ev.Keys[0])
		subs[s] = append(subs[s], ev)
		if g.cfg.RecordRouting {
			route = append(route, s)
		}
		if i == 0 || ev.Seq < minSeq {
			minSeq = ev.Seq
		}
		if ev.Seq+1 > g.seqFloor {
			g.seqFloor = ev.Seq + 1
		}
	}
	if g.cfg.RecordRouting {
		g.routes = append(g.routes, route)
	}
	return subs, minSeq, nil
}

// replicationFor builds every shard's replication events for the next
// epoch from the staged barrier deltas (or, after a group recovery, from
// every shard's full owned partition — the conservative re-sync that
// covers mechanism-replayed epochs whose write sets were never captured).
func (g *Group) replicationFor(minSeq uint64) ([][]types.Event, error) {
	reps := make([][]types.Event, len(g.shards))
	if g.cfg.LocalReads {
		g.fullSync = false
		return reps, nil
	}
	deltas := g.lastDeltas
	if g.fullSync {
		deltas = make([]codec.ShardDelta, len(g.shards))
		for i := range g.shards {
			deltas[i] = g.fullDelta(i)
		}
		if err := g.persistFullSync(deltas); err != nil {
			return nil, err
		}
		g.fullSync = false
		g.lastDeltas = deltas
	}
	if deltas == nil {
		return reps, nil
	}
	for i := range g.shards {
		ev, err := buildReplication(i, deltas, minSeq)
		if err != nil {
			return nil, err
		}
		reps[i] = ev
	}
	return reps, nil
}

// completeBarrier runs the barrier step of epoch ep: verify write
// locality, extract per-shard deltas, append the frontier record, advance
// the group epoch, and stage the deltas for the next epoch's replication.
func (g *Group) completeBarrier(ep uint64) error {
	deltas := make([]codec.ShardDelta, len(g.shards))
	for i, s := range g.shards {
		if g.cfg.LocalReads {
			// No replication, so no delta extraction — but write locality
			// is still the contract, and still checked.
			for _, k := range s.writeSet {
				if s.writeSetEpoch == ep && g.router.Of(k) != i {
					return fmt.Errorf("shard: write-locality violation: shard %d wrote %v owned by shard %d (application %q is not write-local)",
						i, k, g.router.Of(k), g.cfg.App.Name())
				}
			}
			continue
		}
		if s.writeSetEpoch != ep {
			// The shard reached ep without executing it through the live
			// pipeline (a heal whose mechanism replayed the epoch): its
			// exact write set is unknown, so publish the full owned
			// partition — replication writes authoritative values, so
			// over-publishing is deterministic and harmless.
			deltas[i] = g.fullDelta(i)
			continue
		}
		m := make(map[types.Key]types.Value, len(s.writeSet))
		for _, k := range s.writeSet {
			if owner := g.router.Of(k); owner != i {
				if s.repKeys[k] {
					continue // replica refresh, not an application write
				}
				return fmt.Errorf("shard: write-locality violation: shard %d wrote %v owned by shard %d (application %q is not write-local)",
					i, k, owner, g.cfg.App.Name())
			}
			m[k] = s.eng.Store().Get(k)
		}
		deltas[i] = sortedDelta(m)
	}
	payload := codec.EncodeShardDeltas(deltas)
	if err := g.coord.Append(LogFrontier, storage.Record{Epoch: ep, Payload: payload}); err != nil {
		return fmt.Errorf("shard: frontier record epoch %d: %w", ep, err)
	}
	g.lastDeltas = deltas
	g.epoch = ep
	if reg := g.cfg.Obs.Registry(); reg != nil {
		reg.Counter("group.barriers").Inc()
		reg.Gauge("group.epoch").Set(int64(ep))
	}
	if f := g.Committed(); f > g.commitMarked {
		// Stamp the frontier-advance time for every newly covered epoch —
		// the serving layer's journey tracer reads these as the commit
		// stage boundary. A recovered group may see the frontier jump far
		// past commitMarked (epochs committed by a previous incarnation);
		// only a recent window is stamped, older epochs fall back to the
		// caller's observation time.
		now := time.Now()
		lo := g.commitMarked + 1
		if f > 64 && lo < f-64 {
			lo = f - 64
		}
		for e := lo; e <= f; e++ {
			g.commitAt[e] = now
		}
		g.commitMarked = f
		if len(g.commitAt) > 8192 {
			for e := range g.commitAt {
				if e+4096 < f {
					delete(g.commitAt, e)
				}
			}
		}
	}
	if g.cfg.OnCommit != nil {
		if f := g.Committed(); f > g.notified {
			g.notified = f
			g.cfg.OnCommit(f)
		}
	}
	return nil
}

// CommittedAt returns when epoch ep was first covered by the committed
// punctuation frontier, as observed on the coordinator goroutine. ok is
// false for epochs committed by a previous incarnation (or pruned).
// Coordinator-goroutine only, like ProcessEpoch.
func (g *Group) CommittedAt(ep uint64) (time.Time, bool) {
	t, ok := g.commitAt[ep]
	return t, ok
}

// repKeySet collects the keys carried by a shard's replication events.
func repKeySet(reps []types.Event) map[types.Key]bool {
	if len(reps) == 0 {
		return nil
	}
	set := make(map[types.Key]bool)
	for _, ev := range reps {
		for _, k := range ev.Keys {
			set[k] = true
		}
	}
	return set
}

// fullDelta is shard i's entire owned key space with current values — the
// conservative replication payload used when an exact write set is
// unavailable. Specs iterate in table order so the delta is canonical.
func (g *Group) fullDelta(i int) codec.ShardDelta {
	specs := append([]types.TableSpec(nil), g.app.Tables()...)
	sort.Slice(specs, func(a, b int) bool { return specs[a].ID < specs[b].ID })
	var d codec.ShardDelta
	st := g.shards[i].eng.Store()
	for _, sp := range specs {
		lo, hi := g.router.RowsIn(sp.ID, i)
		for row := lo; row < hi; row++ {
			k := types.Key{Table: sp.ID, Row: row}
			d.Keys = append(d.Keys, k)
			d.Vals = append(d.Vals, st.Get(k))
		}
	}
	return d
}

// Crash models a group-wide stoppage: every shard engine crashes and only
// the devices (and the coordinator's frontier log) survive.
func (g *Group) Crash() {
	g.crashed = true
	for _, s := range g.shards {
		s.eng.Crash()
	}
}

// Epoch returns the number of group epochs completed (all shards aligned
// at this punctuation).
func (g *Group) Epoch() uint64 { return g.epoch }

// Shards returns the shard fan-out.
func (g *Group) Shards() int { return len(g.shards) }

// Engine exposes shard i's engine for inspection and tests.
func (g *Group) Engine(i int) *engine.Engine { return g.shards[i].eng }

// Router exposes the key→shard map.
func (g *Group) Router() *partition.Ranges { return g.router }

// App returns the replication-wrapped application every shard runs.
func (g *Group) App() *App { return g.app }

// Health returns the group's incident log (shard heals).
func (g *Group) Health() *metrics.Health { return g.cfg.Health }

// FedReal returns how many application events have been routed to shard i
// (replication events excluded).
func (g *Group) FedReal(i int) int { return g.shards[i].fedReal }

// DeliveredUnion returns every output shard i has released downstream
// across all of its incarnations (heals bank the abandoned engine's
// ledger), replication acknowledgements included.
func (g *Group) DeliveredUnion(i int) []types.Output {
	s := g.shards[i]
	out := append([]types.Output(nil), s.banked...)
	return append(out, s.eng.Delivered()...)
}

// Committed returns the group's committed punctuation frontier: the
// highest epoch durably committed on every shard (the minimum of the
// committed vector). Every epoch at or below it has released its outputs
// on every shard, so an acknowledgement covering it can never be revoked
// by a crash — the exactly-once gate the serving layer acks against.
func (g *Group) Committed() uint64 {
	var frontier uint64
	for i, s := range g.shards {
		c := s.eng.CommittedEpoch()
		if i == 0 || c < frontier {
			frontier = c
		}
	}
	return frontier
}

// CommittedVector returns each shard's punctuation frontier — the highest
// epoch whose commit marker fired.
func (g *Group) CommittedVector() []uint64 {
	v := make([]uint64, len(g.shards))
	for i, s := range g.shards {
		v[i] = s.eng.CommittedEpoch()
	}
	return v
}

// EpochStats returns the per-epoch timing records.
func (g *Group) EpochStats() []EpochStat { return g.stats }

// RouteLog returns the routed-event transcript (RecordRouting only):
// entry [e][j] is the shard of the e+1-th epoch's j-th event.
func (g *Group) RouteLog() [][]int { return g.routes }

// FrontierRecords reads the coordinator's durable frontier log through the
// streaming cursor API (materialised, for inspection and tests).
func (g *Group) FrontierRecords() ([]storage.Record, error) {
	cur, err := storage.ReadFrom(g.coord, LogFrontier, 0)
	if err != nil {
		return nil, err
	}
	return storage.ReadAll(cur)
}
