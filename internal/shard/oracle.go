package shard

import (
	"fmt"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/partition"
	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
)

// GroupOracle is the sharded twin of the crash sweep's single-engine
// oracle: a serial, trusted re-execution of the group protocol. It routes
// every batch over the same key→shard map, runs one sequential oracle per
// shard, and propagates cross-shard frontiers as value-diff deltas — the
// semantic content of the engine's write-set deltas. The two delta flavors
// differ syntactically (write sets include unchanged-value writes; a
// post-recovery full sync publishes whole partitions) but replication puts
// authoritative owner values, so every shard's store agrees with its
// oracle at every barrier regardless — which is exactly the property the
// sharded sweep asserts.
type GroupOracle struct {
	app    *App
	router *partition.Ranges
	oracles []*oracle.Oracle
	// prev mirrors each shard's owned values as of the last barrier, for
	// value-diff delta extraction.
	prev []map[types.Key]types.Value
	// states[s][e] is shard s's full state after group epoch e+1.
	states [][]map[types.Key]types.Value
	// outputs maps real event sequence → expected output.
	outputs map[uint64]types.Output
	// realFed[s][e] is the cumulative count of real events routed to shard
	// s through group epoch e+1.
	realFed [][]int
	deltas  []codec.ShardDelta
	epochs  int
	// localReads mirrors Config.LocalReads: no replication between shards,
	// so foreign rows stay at their Init values on every shard.
	localReads bool
}

// NewGroupOracle replays the whole run (one batch per group epoch)
// through the sharded oracle protocol.
func NewGroupOracle(app types.App, shards int, batches [][]types.Event) (*GroupOracle, error) {
	return newGroupOracle(app, shards, batches, false)
}

// NewLocalGroupOracle is the oracle for a Config.LocalReads group: the
// replication step is skipped, exactly as the live coordinator skips it.
func NewLocalGroupOracle(app types.App, shards int, batches [][]types.Event) (*GroupOracle, error) {
	return newGroupOracle(app, shards, batches, true)
}

func newGroupOracle(app types.App, shards int, batches [][]types.Event, localReads bool) (*GroupOracle, error) {
	wrapped := WrapApp(app)
	o := &GroupOracle{
		app:        wrapped,
		router:     partition.NewRanges(app.Tables(), shards),
		outputs:    make(map[uint64]types.Output),
		localReads: localReads,
	}
	for s := 0; s < shards; s++ {
		o.oracles = append(o.oracles, oracle.New(wrapped))
		o.prev = append(o.prev, o.ownedState(s))
		o.states = append(o.states, nil)
		o.realFed = append(o.realFed, nil)
	}
	for _, batch := range batches {
		if err := o.Extend(batch); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// ownedState reads shard s's current owned values from its oracle.
func (o *GroupOracle) ownedState(s int) map[types.Key]types.Value {
	owned := make(map[types.Key]types.Value)
	for _, sp := range o.app.Tables() {
		lo, hi := o.router.RowsIn(sp.ID, s)
		for row := lo; row < hi; row++ {
			k := types.Key{Table: sp.ID, Row: row}
			owned[k] = o.oracles[s].Value(k)
		}
	}
	return owned
}

// fullState materialises shard s's complete store image (Init fallback
// included), so retained states compare against engine stores key by key.
func (o *GroupOracle) fullState(s int) map[types.Key]types.Value {
	st := make(map[types.Key]types.Value)
	for _, sp := range o.app.Tables() {
		for row := uint32(0); row < sp.Rows; row++ {
			k := types.Key{Table: sp.ID, Row: row}
			st[k] = o.oracles[s].Value(k)
		}
	}
	return st
}

// Extend replays one more group epoch through the oracle protocol.
func (o *GroupOracle) Extend(batch []types.Event) error {
	// Route, tracking the epoch's minimum real sequence for replication.
	subs := make([][]types.Event, len(o.oracles))
	minSeq := uint64(0)
	for i, ev := range batch {
		if len(ev.Keys) == 0 {
			return fmt.Errorf("shard oracle: event %d has no routing key", ev.Seq)
		}
		subs[o.router.Of(ev.Keys[0])] = append(subs[o.router.Of(ev.Keys[0])], ev)
		if i == 0 || ev.Seq < minSeq {
			minSeq = ev.Seq
		}
	}
	// Feed replication then the sub-batch, serially per shard.
	for s, orc := range o.oracles {
		if o.deltas != nil && !o.localReads {
			reps, err := buildReplication(s, o.deltas, minSeq)
			if err != nil {
				return err
			}
			for _, ev := range reps {
				orc.Apply(ev)
			}
		}
		for _, ev := range subs[s] {
			out := orc.Apply(ev)
			o.outputs[ev.Seq] = out
		}
	}
	// Barrier: value-diff deltas over owned partitions, retained state.
	deltas := make([]codec.ShardDelta, len(o.oracles))
	for s := range o.oracles {
		cur := o.ownedState(s)
		diff := make(map[types.Key]types.Value)
		for k, v := range cur {
			if o.prev[s][k] != v {
				diff[k] = v
			}
		}
		deltas[s] = sortedDelta(diff)
		o.prev[s] = cur
	}
	o.deltas = deltas
	for s := range o.oracles {
		o.states[s] = append(o.states[s], o.fullState(s))
		fed := len(subs[s])
		if n := len(o.realFed[s]); n > 0 {
			fed += o.realFed[s][n-1]
		}
		o.realFed[s] = append(o.realFed[s], fed)
	}
	o.epochs++
	return nil
}

// Epochs returns how many group epochs the oracle has replayed.
func (o *GroupOracle) Epochs() int { return o.epochs }

// Output returns the expected output of a real event.
func (o *GroupOracle) Output(seq uint64) (types.Output, bool) {
	out, ok := o.outputs[seq]
	return out, ok
}

// RealEvents returns the cumulative count of real events routed to shard s
// through group epoch ep.
func (o *GroupOracle) RealEvents(s int, ep uint64) int {
	if ep == 0 || len(o.realFed[s]) == 0 {
		return 0
	}
	i := int(ep) - 1
	if i >= len(o.realFed[s]) {
		i = len(o.realFed[s]) - 1
	}
	return o.realFed[s][i]
}

// CheckOutputs verifies shard s's exactly-once delivery through group
// epoch last: delivered (the union of application outputs across the
// shard's incarnations, replication acknowledgements excluded) must be
// duplicate-free and value-equal to the oracle, and together with the
// still-pending application outputs account for every real event routed
// to the shard.
func (o *GroupOracle) CheckOutputs(s int, last uint64, delivered []types.Output, pending int) error {
	seen := make(map[uint64]bool, len(delivered))
	for _, out := range delivered {
		if IsReplication(out) {
			return fmt.Errorf("shard %d: replication output %d in application stream", s, out.EventSeq)
		}
		if seen[out.EventSeq] {
			return fmt.Errorf("shard %d: output for event %d delivered twice", s, out.EventSeq)
		}
		seen[out.EventSeq] = true
		want, ok := o.outputs[out.EventSeq]
		if !ok {
			return fmt.Errorf("shard %d: output for unknown event %d delivered", s, out.EventSeq)
		}
		if out.Kind != want.Kind || len(out.Vals) != len(want.Vals) {
			return fmt.Errorf("shard %d: output for event %d diverges: got %+v want %+v", s, out.EventSeq, out, want)
		}
		for i := range out.Vals {
			if out.Vals[i] != want.Vals[i] {
				return fmt.Errorf("shard %d: output for event %d diverges: got %+v want %+v", s, out.EventSeq, out, want)
			}
		}
	}
	if got, want := len(delivered)+pending, o.RealEvents(s, last); got != want {
		return fmt.Errorf("shard %d: delivered %d + pending %d outputs != %d events through epoch %d",
			s, len(delivered), pending, want, last)
	}
	return nil
}

// CheckState compares shard s's store against the oracle state after group
// epoch ep, reporting the first few divergent keys.
func (o *GroupOracle) CheckState(s int, ep uint64, st *store.Store) error {
	if ep == 0 || int(ep) > o.epochs {
		return fmt.Errorf("shard oracle: no retained state for epoch %d (have 1..%d)", ep, o.epochs)
	}
	want := o.states[s][ep-1]
	var diffs []string
	for _, sp := range o.app.Tables() {
		for row := uint32(0); row < sp.Rows; row++ {
			k := types.Key{Table: sp.ID, Row: row}
			if got, w := st.Get(k), want[k]; got != w {
				diffs = append(diffs, fmt.Sprintf("%v: got %d want %d", k, got, w))
				if len(diffs) == 3 {
					return fmt.Errorf("shard oracle: shard %d state diverges at epoch %d: %s (and possibly more)", s, ep, diffs)
				}
			}
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("shard oracle: shard %d state diverges at epoch %d: %s", s, ep, diffs)
	}
	return nil
}
