package shard

import (
	"fmt"
	"sort"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/types"
)

// KindReplicate is the reserved event kind carrying cross-shard state
// propagation: a frontier write-set chunk, applied as plain puts. It lives
// at the top of the kind space; application kinds are small iota values,
// so the coordinator rejects any input event that claims it.
const KindReplicate types.EventKind = 0xFF

// maxReplicateKeys bounds one replication event's key count. Operation
// indices are uint8 (at most 256 ops per transaction), so frontier deltas
// chunk into events of at most this many puts.
const maxReplicateKeys = 100

// App wraps an application with the replication-event handler: events of
// KindReplicate preprocess into transactions of unconditional puts
// (types.FnPut never aborts), every other event passes through unchanged.
//
// Replication-as-events is the load-bearing trick of the shard layer:
// because frontier propagation rides the ordinary event path, it is
// persisted by input logging, covered by every fault-tolerance mechanism's
// records, and replayed by stock engine recovery — per-shard recovery
// needs no shard-specific durability at all, which is what lets the group
// recover every shard in parallel with unmodified engine.Recover calls.
type App struct {
	inner types.App
}

// WrapApp builds the shard-level view of an application.
func WrapApp(inner types.App) *App { return &App{inner: inner} }

// Inner returns the wrapped application.
func (a *App) Inner() types.App { return a.inner }

// Name implements types.App.
func (a *App) Name() string { return a.inner.Name() + "+shard" }

// Tables implements types.App.
func (a *App) Tables() []types.TableSpec { return a.inner.Tables() }

// Preprocess implements types.App. A replication event's transaction puts
// each carried key to its carried value; all ops after index 0 logically
// depend on op 0, which is itself a put and can never abort.
func (a *App) Preprocess(ev types.Event) types.Txn {
	if ev.Kind != KindReplicate {
		return a.inner.Preprocess(ev)
	}
	txn := types.Txn{ID: ev.Seq, TS: ev.Seq, Event: ev}
	txn.Ops = make([]types.Operation, len(ev.Keys))
	for i := range ev.Keys {
		txn.Ops[i] = types.Operation{
			TxnID: ev.Seq, TS: ev.Seq, Idx: uint8(i),
			Key: ev.Keys[i], Fn: types.FnPut, Const: ev.Vals[i],
		}
	}
	return txn
}

// Postprocess implements types.App. Replication events acknowledge with an
// empty output of their kind; every downstream verifier filters these out
// of the application output stream (see IsReplication).
func (a *App) Postprocess(t *types.ExecutedTxn) types.Output {
	if t.Txn.Event.Kind != KindReplicate {
		return a.inner.Postprocess(t)
	}
	return types.Output{EventSeq: t.Txn.ID, Kind: KindReplicate}
}

// IsReplication reports whether an output is a replication acknowledgement
// rather than an application output.
func IsReplication(out types.Output) bool { return out.Kind == KindReplicate }

// RealOutputs filters a ledger down to application outputs.
func RealOutputs(outs []types.Output) []types.Output {
	kept := make([]types.Output, 0, len(outs))
	for _, out := range outs {
		if !IsReplication(out) {
			kept = append(kept, out)
		}
	}
	return kept
}

// sortedDelta flattens a delta map into the canonical key order shared by
// the frontier codec, replication events, and the oracle.
func sortedDelta(delta map[types.Key]types.Value) codec.ShardDelta {
	out := codec.ShardDelta{
		Keys: make([]types.Key, 0, len(delta)),
		Vals: make([]types.Value, 0, len(delta)),
	}
	for k := range delta {
		out.Keys = append(out.Keys, k)
	}
	sort.Slice(out.Keys, func(i, j int) bool { return out.Keys[i].Less(out.Keys[j]) })
	for _, k := range out.Keys {
		out.Vals = append(out.Vals, delta[k])
	}
	return out
}

// buildReplication turns the foreign portion of a barrier's deltas into
// the replication events shard dst ingests next epoch. Sequence numbers
// occupy [minSeq-n, minSeq): strictly below the epoch's first real
// sequence number, so every replicated put orders (by temporal dependency)
// before every real operation of the epoch, and frontier reads observe the
// consistent committed frontier. Sequence space below an epoch is finite;
// an epoch too small to host its replication fan-in is an error, not a
// silent reorder.
func buildReplication(dst int, deltas []codec.ShardDelta, minSeq uint64) ([]types.Event, error) {
	merged := make(map[types.Key]types.Value)
	for src, d := range deltas {
		if src == dst {
			continue
		}
		for i, k := range d.Keys {
			merged[k] = d.Vals[i]
		}
	}
	if len(merged) == 0 {
		return nil, nil
	}
	flat := sortedDelta(merged)
	n := (len(flat.Keys) + maxReplicateKeys - 1) / maxReplicateKeys
	if uint64(n) > minSeq {
		return nil, fmt.Errorf("shard: %d replication events do not fit below sequence %d (epoch too small for the replication fan-in)", n, minSeq)
	}
	events := make([]types.Event, 0, n)
	for i := 0; i < n; i++ {
		lo := i * maxReplicateKeys
		hi := lo + maxReplicateKeys
		if hi > len(flat.Keys) {
			hi = len(flat.Keys)
		}
		events = append(events, types.Event{
			Seq:  minSeq - uint64(n) + uint64(i),
			Kind: KindReplicate,
			Keys: flat.Keys[lo:hi],
			Vals: flat.Vals[lo:hi],
		})
	}
	return events, nil
}
