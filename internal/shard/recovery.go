package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"morphstreamr/internal/codec"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// Source supplies the global (pre-routing) batch of a group epoch for
// re-feeding during alignment, and reports whether it is known. It is the
// group-level analogue of the supervisor's rewindable source contract.
type Source func(epoch uint64) ([]types.Event, bool)

// BatchSource adapts a fixed batch list (batches[e-1] is epoch e).
func BatchSource(batches [][]types.Event) Source {
	return func(epoch uint64) ([]types.Event, bool) {
		if epoch == 0 || epoch > uint64(len(batches)) {
			return nil, false
		}
		return batches[epoch-1], true
	}
}

// RecoverConfig parameterizes a group recovery.
type RecoverConfig struct {
	// Config must match the crashed group's, with Devices and CoordDev the
	// surviving devices.
	Config
	// Source re-feeds the alignment epoch to lagging shards and
	// reconstructs routing counters; it must cover every epoch of the run.
	Source Source
	// Serial recovers the shards one at a time instead of in parallel —
	// the baseline the recovery-speedup benchmark compares against.
	Serial bool
	// Profilers, when non-nil, attaches a recovery profiler per shard
	// (index = shard) so the group report carries a rolled-up virtual-time
	// profile.
	Profilers []*vtime.Profiler
}

// GroupReport quantifies one group recovery.
type GroupReport struct {
	// Reports are the per-shard engine recovery reports, indexed by shard.
	Reports []*engine.RecoveryReport
	// Target is the punctuation frontier processing resumed from: the
	// maximum recovered epoch across shards.
	Target uint64
	// AlignedShards counts shards that lagged one epoch behind Target and
	// were re-fed to it.
	AlignedShards int
	// SerialSim is the simulated wall of recovering the shards one after
	// another (Σ per-shard SimWall); ParallelSim is the simulated wall of
	// the parallel recovery (max per-shard SimWall). Their ratio is the
	// parallel recovery speedup — the headline number of the shard layer.
	SerialSim   time.Duration
	ParallelSim time.Duration
	// Wall is the real wall-clock duration of the whole group recovery on
	// this host (the group MTTR), including alignment.
	Wall time.Duration
	// Profile is the per-shard virtual-time rollup (nil unless Profilers
	// were supplied).
	Profile *vtime.GroupProfile
}

// Speedup returns SerialSim / ParallelSim — how much faster the group
// recovers by replaying shards concurrently instead of one at a time.
func (r *GroupReport) Speedup() float64 {
	if r.ParallelSim <= 0 {
		return 0
	}
	return float64(r.SerialSim) / float64(r.ParallelSim)
}

// GroupRecover rebuilds a working group from the surviving devices after a
// group-wide crash — the headline protocol of the shard layer:
//
//  1. recover every shard in parallel with stock engine.Recover (each
//     shard's snapshot restore + mechanism replay + tail reprocessing is
//     independent of every other shard's);
//  2. verify the lockstep invariant: recovered epochs may spread by at
//     most one (a shard is fed epoch e+1 only after every shard finished
//     epoch e, and its inputs persist before processing);
//  3. re-align lagging shards by re-feeding the alignment epoch from
//     Source, with replication events rebuilt from the durable frontier
//     log (the coordinator appended that record before any shard was fed
//     the epoch);
//  4. arm a full re-sync: the next live epoch replicates every shard's
//     whole owned partition, covering mechanism-replayed epochs whose
//     exact write sets were never captured.
func GroupRecover(cfg RecoverConfig) (*Group, *GroupReport, error) {
	if cfg.Source == nil {
		return nil, nil, errors.New("shard: GroupRecover requires a Source")
	}
	g, err := newGroupShell(cfg.Config)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	report := &GroupReport{Reports: make([]*engine.RecoveryReport, len(g.shards))}

	errs := make([]error, len(g.shards))
	recoverShard := func(i int) {
		ec := g.engineConfig(g.shards[i])
		if len(cfg.Profilers) > i && cfg.Profilers[i] != nil {
			ec.RecoveryProfiler = cfg.Profilers[i]
		}
		eng, rep, err := engine.Recover(ec)
		if err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		g.shards[i].eng = eng
		report.Reports[i] = rep
	}
	if cfg.Serial {
		for i := range g.shards {
			recoverShard(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range g.shards {
			wg.Add(1)
			go func(i int) { defer wg.Done(); recoverShard(i) }(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("shard: group recover: %w", err)
		}
	}

	// Lockstep invariant: the barrier never lets a shard run more than one
	// epoch ahead of another.
	lo, hi := report.Reports[0].LastEpoch, report.Reports[0].LastEpoch
	for _, rep := range report.Reports[1:] {
		if rep.LastEpoch < lo {
			lo = rep.LastEpoch
		}
		if rep.LastEpoch > hi {
			hi = rep.LastEpoch
		}
	}
	if hi-lo > 1 {
		return nil, nil, fmt.Errorf("shard: group recover: recovered epochs spread from %d to %d; lockstep invariant violated", lo, hi)
	}
	report.Target = hi

	// Re-align lagging shards: re-feed the alignment epoch through the
	// normal pipeline (inputs re-persist, outputs deliver — the shard's
	// durability gate for this epoch never fired before the crash).
	if lo < hi {
		reps, err := g.alignmentReplication(hi, cfg.Source)
		if err != nil {
			return nil, nil, err
		}
		for i, s := range g.shards {
			if report.Reports[i].LastEpoch == hi {
				continue
			}
			batch := append(reps[i], g.subBatch(hi, i, cfg.Source)...)
			if err := s.eng.ProcessEpoch(batch); err != nil {
				return nil, nil, fmt.Errorf("shard: group recover: align shard %d to epoch %d: %w", i, hi, err)
			}
			report.AlignedShards++
		}
	}

	g.restoreCounters(hi, cfg.Source)
	g.epoch = hi
	g.fullSync = true

	for _, rep := range report.Reports {
		sw := rep.SimWall()
		report.SerialSim += sw
		if sw > report.ParallelSim {
			report.ParallelSim = sw
		}
	}
	if len(cfg.Profilers) > 0 {
		var profs []vtime.Profile
		for _, rep := range report.Reports {
			if rep.Profile != nil {
				profs = append(profs, *rep.Profile)
			}
		}
		if len(profs) > 0 {
			gp := vtime.RollupGroup(profs)
			report.Profile = &gp
		}
	}
	report.Wall = time.Since(start)
	if reg := g.cfg.Obs.Registry(); reg != nil {
		reg.Counter("group.recoveries").Inc()
		reg.Histogram("group.recovery_seconds").ObserveSince(start)
	}
	return g, report, nil
}

// subBatch routes epoch ep's global batch and returns shard i's slice.
func (g *Group) subBatch(ep uint64, i int, src Source) []types.Event {
	events, ok := src(ep)
	if !ok {
		return nil
	}
	var sub []types.Event
	for _, ev := range events {
		if len(ev.Keys) > 0 && g.router.Of(ev.Keys[0]) == i {
			sub = append(sub, ev)
		}
	}
	return sub
}

// alignmentReplication rebuilds every shard's replication events for
// epoch ep from the durable frontier record of ep-1, exactly as the live
// coordinator built them before the crash.
func (g *Group) alignmentReplication(ep uint64, src Source) ([][]types.Event, error) {
	reps := make([][]types.Event, len(g.shards))
	if ep <= 1 {
		return reps, nil
	}
	deltas, ok, err := g.frontierDeltas(ep - 1)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("shard: group recover: frontier record for epoch %d missing (needed to re-align epoch %d)", ep-1, ep)
	}
	events, ok := src(ep)
	if !ok {
		return nil, fmt.Errorf("shard: group recover: source has no batch for alignment epoch %d", ep)
	}
	minSeq := g.seqFloor
	for i, ev := range events {
		if i == 0 || ev.Seq < minSeq {
			minSeq = ev.Seq
		}
	}
	for i := range g.shards {
		ev, err := buildReplication(i, deltas, minSeq)
		if err != nil {
			return nil, err
		}
		reps[i] = ev
	}
	return reps, nil
}

// frontierDeltas returns the last durable frontier record for the given
// epoch. A decode failure on the log's final record is a torn tail (the
// coordinator died mid-append; no shard can have been fed past it) and
// reads as absent; earlier corruption is an error. Later records for the
// same epoch win: the first live epoch after a recovery re-appends its
// full-sync deltas under the current epoch so a future recovery never
// depends on a record lost to a coordinator-device crash.
func (g *Group) frontierDeltas(epoch uint64) ([]codec.ShardDelta, bool, error) {
	cur, err := storage.ReadFrom(g.coord, LogFrontier, 0)
	if err != nil {
		return nil, false, fmt.Errorf("shard: frontier log: %w", err)
	}
	defer cur.Close()
	// Stream with one record of lookahead, keeping the latest record for the
	// requested epoch and whether it closed the log (only then may a decode
	// failure read as a torn tail).
	var payload []byte
	found, foundIsTail := false, false
	rec, ok, err := cur.Next()
	if err != nil {
		return nil, false, fmt.Errorf("shard: frontier log: %w", err)
	}
	for ok {
		next, nok, nerr := cur.Next()
		if nerr != nil {
			return nil, false, fmt.Errorf("shard: frontier log: %w", nerr)
		}
		if rec.Epoch == epoch {
			payload, found, foundIsTail = rec.Payload, true, !nok
		}
		rec, ok = next, nok
	}
	if !found {
		return nil, false, nil
	}
	deltas, err := codec.DecodeShardDeltas(payload)
	if err != nil {
		if foundIsTail {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("shard: frontier record epoch %d: %w", epoch, err)
	}
	if len(deltas) != len(g.shards) {
		return nil, false, fmt.Errorf("shard: frontier record epoch %d has %d shards, group has %d", epoch, len(deltas), len(g.shards))
	}
	return deltas, true, nil
}

// restoreCounters reconstructs the routed-event counters and the sequence
// floor from the source, for epochs it covers.
func (g *Group) restoreCounters(through uint64, src Source) {
	for ep := uint64(1); ep <= through; ep++ {
		events, ok := src(ep)
		if !ok {
			continue
		}
		for _, ev := range events {
			if len(ev.Keys) == 0 {
				continue
			}
			g.shards[g.router.Of(ev.Keys[0])].fedReal++
			if ev.Seq+1 > g.seqFloor {
				g.seqFloor = ev.Seq + 1
			}
		}
	}
}

// persistFullSync appends the full re-sync deltas under the current epoch
// so alignment after a future crash can rebuild them from the frontier log
// (the record they would otherwise come from may predate the recovery or
// have been lost with the coordinator's crash).
func (g *Group) persistFullSync(deltas []codec.ShardDelta) error {
	payload := codec.EncodeShardDeltas(deltas)
	if err := g.coord.Append(LogFrontier, storage.Record{Epoch: g.epoch, Payload: payload}); err != nil {
		return fmt.Errorf("shard: full-sync frontier record epoch %d: %w", g.epoch, err)
	}
	return nil
}
