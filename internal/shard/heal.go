package shard

import (
	"errors"
	"fmt"
	"time"

	"morphstreamr/internal/engine"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/supervisor"
	"morphstreamr/internal/types"
)

// HealShard recovers a single dead shard in place after ProcessEpoch
// returned a *ShardError, without restarting the survivors — the
// coordinator-level analogue of the supervisor's in-process heal.
//
// When one shard fails mid-epoch the survivors have already completed the
// epoch (their write sets are captured and their commit markers fired;
// the concurrent barrier only joins afterwards), so the group is one dead
// engine away from completing the interrupted barrier. HealShard:
//
//  1. banks the dead engine's delivered ledger (its outputs left the
//     building; exactly-once accounting must keep them);
//  2. recovers the shard from its own device with stock engine.Recover —
//     a transient outage (storage.Flaky) has passed by retry time, a
//     persistent fault surfaces as a failed heal;
//  3. re-feeds the interrupted epoch if the mechanism did not already
//     replay it, using the in-memory replication deltas the live epoch
//     was fed with;
//  4. completes the interrupted barrier and resumes, recording the
//     incident (classification, MTTR) in the group's health log.
//
// The error must be the *ShardError the failed ProcessEpoch returned, and
// source must cover the interrupted epoch.
func (g *Group) HealShard(procErr error, source Source) (*engine.RecoveryReport, error) {
	var serr *ShardError
	if !errors.As(procErr, &serr) {
		return nil, fmt.Errorf("shard: HealShard wants a *ShardError, got %w", procErr)
	}
	if !g.crashed {
		return nil, errors.New("shard: HealShard on a live group")
	}
	if serr.Shard < 0 || serr.Shard >= len(g.shards) {
		return nil, fmt.Errorf("shard: HealShard: no shard %d", serr.Shard)
	}
	detected := time.Now()
	cause := supervisor.Classify(serr.Err)
	ep := g.epoch + 1
	events, ok := source(ep)
	if !ok {
		return nil, fmt.Errorf("shard: HealShard: source has no batch for interrupted epoch %d", ep)
	}

	s := g.shards[serr.Shard]
	s.banked = append(s.banked, s.eng.Delivered()...)
	s.eng.Crash()

	fail := func(err error) (*engine.RecoveryReport, error) {
		g.cfg.Health.Record(metrics.Incident{
			Cause: cause, Err: serr.Err.Error(), DetectedAt: detected,
			MTTR: time.Since(detected), Healed: false,
		})
		return nil, err
	}

	eng, rep, err := engine.Recover(g.engineConfig(s))
	if err != nil {
		return fail(fmt.Errorf("shard: heal shard %d: %w", serr.Shard, err))
	}
	s.eng = eng

	switch rep.LastEpoch {
	case ep:
		// The shard's durability gate for the interrupted epoch fired
		// before it died (e.g. the snapshot append failed after the commit
		// marker); recovery replayed it — nothing to re-feed.
	case ep - 1:
		// The interrupted epoch never completed on this shard: re-feed it
		// through the live pipeline with the same replication payload the
		// failed attempt was fed.
		minSeq := g.seqFloor
		for i, ev := range events {
			if i == 0 || ev.Seq < minSeq {
				minSeq = ev.Seq
			}
		}
		var reps []types.Event
		if g.lastDeltas != nil {
			reps, err = buildReplication(serr.Shard, g.lastDeltas, minSeq)
			if err != nil {
				return fail(err)
			}
		}
		s.repKeys = repKeySet(reps)
		batch := append(reps, g.subBatch(ep, serr.Shard, source)...)
		if err := s.eng.ProcessEpoch(batch); err != nil {
			return fail(fmt.Errorf("shard: heal shard %d: re-feed epoch %d: %w", serr.Shard, ep, err))
		}
	default:
		return fail(fmt.Errorf("shard: heal shard %d: recovered to epoch %d, interrupted epoch was %d", serr.Shard, rep.LastEpoch, ep))
	}

	// The failing ProcessEpoch bailed before crediting routed events or
	// running the barrier; every shard is now at ep, so finish the round.
	for _, ev := range events {
		if len(ev.Keys) > 0 {
			g.shards[g.router.Of(ev.Keys[0])].fedReal++
		}
	}
	if err := g.completeBarrier(ep); err != nil {
		return fail(fmt.Errorf("shard: heal shard %d: complete barrier %d: %w", serr.Shard, ep, err))
	}
	g.stats = append(g.stats, EpochStat{
		Epoch: ep, Events: len(events), ShardWalls: make([]time.Duration, len(g.shards)),
	})
	g.crashed = false
	g.cfg.Health.Record(metrics.Incident{
		Cause: cause, Err: serr.Err.Error(), DetectedAt: detected,
		MTTR: time.Since(detected), RecoveredEpoch: ep, Healed: true,
	})
	if reg := g.cfg.Obs.Registry(); reg != nil {
		reg.Counter("group.heals").Inc()
		reg.Histogram("group.heal_seconds").ObserveSince(detected)
	}
	return rep, nil
}
