package shard_test

import (
	"bytes"
	"reflect"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/shard"
	"morphstreamr/internal/types"
)

// runOnce drives one full group run with routing recording on and returns
// the observables determinism is asserted over: the routed-event
// transcript, the committed-epoch vector, and the coordinator's frontier
// log bytes (the byte-deterministic encoding of every barrier's per-shard
// write-set deltas).
func runOnce(t *testing.T, seed int64, shards int) ([][]int, []uint64, [][]byte) {
	t.Helper()
	app, batches := gsRun(seed, 6, 24)
	g, err := shard.NewGroup(shard.Config{
		GroupShape:    sweepShape(shards),
		App:           app,
		Kind:          ftapi.WAL,
		RecordRouting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(batches); err != nil {
		t.Fatal(err)
	}
	recs, err := g.FrontierRecords()
	if err != nil {
		t.Fatal(err)
	}
	frontier := make([][]byte, len(recs))
	for i, rec := range recs {
		frontier[i] = rec.Payload
	}
	return g.RouteLog(), g.CommittedVector(), frontier
}

// TestCrossShardDeterminism reruns the same seeded workload and requires
// bit-identical punctuation history: the same events route to the same
// shards in the same order, every shard commits the same epochs, and the
// coordinator's frontier log — the durable transcript of every barrier's
// cross-shard deltas — is byte-for-byte identical, even though the shards
// of each epoch execute concurrently. Run under -race in CI, this is also
// the data-race probe for the barrier protocol.
func TestCrossShardDeterminism(t *testing.T) {
	for _, shards := range []int{2, 4} {
		routesA, commitsA, frontierA := runOnce(t, 13, shards)
		routesB, commitsB, frontierB := runOnce(t, 13, shards)
		if !reflect.DeepEqual(routesA, routesB) {
			t.Fatalf("shards=%d: routed-event transcripts diverge", shards)
		}
		if !reflect.DeepEqual(commitsA, commitsB) {
			t.Fatalf("shards=%d: committed vectors diverge: %v vs %v", shards, commitsA, commitsB)
		}
		if len(frontierA) != len(frontierB) {
			t.Fatalf("shards=%d: frontier logs have %d vs %d records", shards, len(frontierA), len(frontierB))
		}
		for i := range frontierA {
			if !bytes.Equal(frontierA[i], frontierB[i]) {
				t.Fatalf("shards=%d: frontier record %d differs between identical runs", shards, i)
			}
		}
	}
}

// TestReplicationSequencing pins the replication event contract: sequences
// sit strictly below the epoch's minimum real sequence, chunks respect the
// operation-index budget, and the coordinator rejects input events that
// claim the reserved kind.
func TestReplicationSequencing(t *testing.T) {
	app, batches := gsRun(17, 4, 24)
	g, err := shard.NewGroup(shard.Config{
		GroupShape: sweepShape(2), App: app, Kind: ftapi.DL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(batches); err != nil {
		t.Fatal(err)
	}
	// Replication acknowledgements ride the delivered ledger (sequences
	// deliberately reuse the space below each epoch's real events, which
	// is why every verifier filters them before sequence-keyed dedup).
	// A 2-shard GS run must actually replicate, and filtering must leave
	// each shard's application stream duplicate-free.
	repAcks := 0
	for s := 0; s < g.Shards(); s++ {
		seen := make(map[uint64]bool)
		for _, out := range g.DeliveredUnion(s) {
			if shard.IsReplication(out) {
				repAcks++
				continue
			}
			if seen[out.EventSeq] {
				t.Fatalf("shard %d: real output %d delivered twice", s, out.EventSeq)
			}
			seen[out.EventSeq] = true
		}
	}
	if repAcks == 0 {
		t.Fatal("no replication events flowed in a 2-shard GS run")
	}

	if err := g.ProcessEpoch([]types.Event{{Seq: 999, Kind: shard.KindReplicate, Keys: []types.Key{{}}}}); err == nil {
		t.Fatal("coordinator accepted an input event with the reserved replication kind")
	}
}
