package scheduler

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
)

// RunChanRef is the seed channel-based parallel scheduler, preserved
// verbatim as the before side of the work-stealing comparison (see
// cmd/schedbench and BENCH_scheduler.json). Its two scaling bottlenecks
// are exactly what Run removes: a global mutex taken on every operation
// completion, and per-worker channels buffered at the graph's vertex
// count — O(workers·ops) allocation per epoch.
//
// It is not used on any production path; do not improve it.
func RunChanRef(g *tpg.Graph, st *store.Store, opt Options) ([]metrics.WorkerClock, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	clocks := make([]metrics.WorkerClock, workers)
	if g.NumOps == 0 {
		return clocks, nil
	}
	assign := opt.Assign
	if assign == nil {
		assign = HashAssign(workers)
	}
	for _, ch := range g.ChainList {
		owner := assign(ch)
		if owner < 0 || owner >= workers {
			return nil, fmt.Errorf("scheduler: chain %v assigned to worker %d of %d",
				ch.Key, owner, workers)
		}
		ch.Owner = owner
	}

	run := &chanRun{
		st:      st,
		queues:  make([]chan *tpg.OpNode, workers),
		timing:  opt.Timing,
		pending: int64(g.NumOps),
	}
	for w := range run.queues {
		// Buffer sized so sends never block: a node enters a queue at most
		// once, bounded by the graph's vertex count.
		run.queues[w] = make(chan *tpg.OpNode, g.NumOps)
	}
	for _, n := range g.Heads() {
		run.queues[n.Chain.Owner] <- n
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			run.worker(w, &clocks[w])
		}(w)
	}
	wg.Wait()
	if n := run.pendingLeft(); n != 0 {
		return clocks, fmt.Errorf("scheduler: %d operations never became ready (dependency cycle?)", n)
	}
	return clocks, nil
}

type chanRun struct {
	st     *store.Store
	queues []chan *tpg.OpNode
	timing bool

	mu      sync.Mutex
	pending int64
	closed  bool
}

// finish decrements the outstanding-operation count and closes all queues
// when it reaches zero, releasing blocked workers.
func (r *chanRun) finish() {
	r.mu.Lock()
	r.pending--
	done := r.pending == 0 && !r.closed
	if done {
		r.closed = true
	}
	r.mu.Unlock()
	if done {
		for _, q := range r.queues {
			close(q)
		}
	}
}

func (r *chanRun) pendingLeft() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

func (r *chanRun) worker(w int, clock *metrics.WorkerClock) {
	q := r.queues[w]
	var ready []*tpg.OpNode
	for {
		var n *tpg.OpNode
		var ok bool
		if r.timing {
			start := time.Now()
			select {
			case n, ok = <-q:
				clock.Explore += time.Since(start)
			default:
				n, ok = <-q
				clock.Wait += time.Since(start)
			}
		} else {
			n, ok = <-q
		}
		if !ok {
			return
		}
		// Chain-locality loop: after firing a node, its chain successor is
		// frequently the only newly ready node; keep it on this worker
		// without a queue round-trip when we own it.
		for n != nil {
			r.fire(n, clock)
			ready = tpg.Resolve(n, ready[:0])
			r.finish()
			n = nil
			for _, d := range ready {
				if n == nil && d.Chain.Owner == w {
					n = d
					continue
				}
				r.queues[d.Chain.Owner] <- d
			}
		}
	}
}

func (r *chanRun) fire(n *tpg.OpNode, clock *metrics.WorkerClock) {
	if !r.timing {
		tpg.Fire(n, r.st)
		return
	}
	start := time.Now()
	tpg.Fire(n, r.st)
	if n.Txn.Aborted() {
		clock.Abort += time.Since(start)
	} else {
		clock.Execute += time.Since(start)
	}
}
