package scheduler

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"morphstreamr/internal/tpg"
)

// TestOpPanicFailsEpochNotProcess: an operation panic must surface as an
// ErrOpPanic-wrapped error from Run — the pool shuts down, no goroutine
// leaks, the process survives.
func TestOpPanicFailsEpochNotProcess(t *testing.T) {
	gen := smallGens(1)["SL"]
	for _, workers := range []int{1, 2, 4} {
		g, st, _ := buildEpoch(gen, 400)
		target := g.NumOps / 2
		var fired atomic.Int64
		_, err := Run(g, st, Options{
			Workers: workers,
			FireHook: func(n *tpg.OpNode) {
				if fired.Add(1) == int64(target) {
					panic("injected op failure")
				}
			},
		})
		if !errors.Is(err, ErrOpPanic) {
			t.Fatalf("w=%d: want ErrOpPanic, got %v", workers, err)
		}
		if !strings.Contains(err.Error(), "injected op failure") {
			t.Fatalf("w=%d: panic value lost: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "panic_test.go") {
			t.Fatalf("w=%d: stack trace missing from error", workers)
		}
	}
}

// TestOpPanicFirstWins: when several workers panic, Run reports the first
// recorded one and survives the rest.
func TestOpPanicFirstWins(t *testing.T) {
	gen := smallGens(2)["GS"]
	g, st, _ := buildEpoch(gen, 400)
	_, err := Run(g, st, Options{
		Workers:  4,
		FireHook: func(n *tpg.OpNode) { panic("every op panics") },
	})
	if !errors.Is(err, ErrOpPanic) {
		t.Fatalf("want ErrOpPanic, got %v", err)
	}
}

// TestFireHookObservesEveryOp: with no panic, the hook sees every fired
// operation exactly once and the run completes normally.
func TestFireHookObservesEveryOp(t *testing.T) {
	gen := smallGens(3)["SL"]
	g, st, events := buildEpoch(gen, 400)
	var fired atomic.Int64
	if _, err := Run(g, st, Options{
		Workers:  4,
		FireHook: func(n *tpg.OpNode) { fired.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != int64(g.NumOps) {
		t.Fatalf("hook saw %d ops, want %d", got, g.NumOps)
	}
	compareToOracle(t, gen.App(), st, oracleState(gen.App(), events))
}
