package scheduler_test

import (
	"fmt"
	"testing"

	"morphstreamr/internal/schedbench"
)

// BenchmarkScheduler sweeps the work-stealing scheduler and the preserved
// channel-based reference across workloads × implementations × worker
// counts. cmd/schedbench runs the same grid and writes the committed
// BENCH_scheduler.json; regenerate with `go run ./cmd/schedbench`.
func BenchmarkScheduler(b *testing.B) {
	for _, wl := range schedbench.Workloads() {
		for _, impl := range schedbench.Impls() {
			for _, workers := range schedbench.Workers() {
				b.Run(fmt.Sprintf("%s/%s/w%d", wl.Name, impl, workers), func(b *testing.B) {
					ep := schedbench.Prepare(wl)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := schedbench.Run(impl, ep, workers); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(
						float64(ep.G.NumOps)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
				})
			}
		}
	}
}
