package scheduler

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"morphstreamr/internal/obs"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/workload"
)

// TestPoolMatchesRun: the pool executes a real epoch correctly (verified
// against the oracle) and keeps working across ResetExec reruns at varying
// worker counts — the adaptive engine's usage pattern.
func TestPoolMatchesRun(t *testing.T) {
	gen := workload.NewGS(workload.DefaultGSParams())
	g, st, events := buildEpoch(gen, 512)

	p := NewPool(8, nil)
	defer p.Close()
	if _, err := p.Run(g, st, Options{Workers: 8}); err != nil {
		t.Fatalf("pool run: %v", err)
	}
	compareToOracle(t, gen.App(), st, oracleState(gen.App(), events))

	// Schedbench-style reruns across sizes: the store evolves, which is
	// fine — this exercises deque reuse and per-run seeding, not values.
	for _, w := range []int{1, 3, 8, 2} {
		g.ResetExec()
		if _, err := p.Run(g, st, Options{Workers: w}); err != nil {
			t.Fatalf("pool rerun w=%d: %v", w, err)
		}
	}
}

// TestPoolResize: resizes take effect, clamp to [1, max], and count into
// the stats block.
func TestPoolResize(t *testing.T) {
	stats := &obs.SchedStats{}
	p := NewPool(4, stats)
	defer p.Close()
	if got := p.Size(); got != 4 {
		t.Fatalf("initial size %d, want 4", got)
	}
	if got := p.Resize(2); got != 2 {
		t.Fatalf("resize to 2 got %d", got)
	}
	if got := p.Resize(0); got != 1 {
		t.Fatalf("resize clamps low: got %d, want 1", got)
	}
	if got := p.Resize(99); got != 4 {
		t.Fatalf("resize clamps to max: got %d, want 4", got)
	}
	if got := stats.Resizes.Load(); got != 3 {
		t.Fatalf("resize counter %d, want 3", got)
	}
	if got := p.Resize(4); got != 4 || stats.Resizes.Load() != 3 {
		t.Fatalf("no-op resize must not count: size %d, counter %d", got, stats.Resizes.Load())
	}
}

// TestPoolClosed: Run after Close fails cleanly.
func TestPoolClosed(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()
	p.Close() // idempotent
	gen := workload.NewGS(workload.DefaultGSParams())
	g, st, _ := buildEpoch(gen, 16)
	if _, err := p.Run(g, st, Options{Workers: 2}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("run on closed pool: %v, want ErrPoolClosed", err)
	}
}

// TestPoolPanicIsolation: an operation panic fails the epoch but leaves the
// pool's worker goroutines alive for the next one.
func TestPoolPanicIsolation(t *testing.T) {
	gen := workload.NewGS(workload.DefaultGSParams())
	g, st, _ := buildEpoch(gen, 256)
	p := NewPool(4, nil)
	defer p.Close()

	var boom atomic.Bool
	boom.Store(true)
	_, err := p.Run(g, st, Options{Workers: 4, FireHook: func(n *tpg.OpNode) {
		if n.Op.TS > 100 && boom.CompareAndSwap(true, false) {
			panic("chaos")
		}
	}})
	if !errors.Is(err, ErrOpPanic) {
		t.Fatalf("panicking run: %v, want ErrOpPanic", err)
	}
	// The pool must still work — including across a resize.
	p.Resize(2)
	g2, st2, events := buildEpoch(workload.NewGS(workload.DefaultGSParams()), 256)
	if _, err := p.Run(g2, st2, Options{Workers: 2}); err != nil {
		t.Fatalf("run after panic: %v", err)
	}
	compareToOracle(t, gen.App(), st2, oracleState(gen.App(), events))
}

// TestPoolResizeUnderLoad is the -race stress test for the controller's
// worker-count morphs: one goroutine hammers Resize with random sizes while
// the run loop executes epochs back to back, so every interleaving of
// quiesce-then-resize against dispatch is exercised. The mutex contract
// means a resize can only land between runs; the race detector verifies no
// worker state is touched concurrently.
func TestPoolResizeUnderLoad(t *testing.T) {
	gen := workload.NewGS(workload.DefaultGSParams())
	g, st, _ := buildEpoch(gen, 512)

	p := NewPool(8, &obs.SchedStats{})
	defer p.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Resize(1 + rng.Intn(8))
		}
	}()

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		g.ResetExec()
		w := 1 + rng.Intn(8)
		if _, err := p.Run(g, st, Options{Workers: w, Stats: &obs.SchedStats{}}); err != nil {
			t.Fatalf("iteration %d (w=%d): %v", i, w, err)
		}
	}
	close(stop)
	wg.Wait()
}
