package scheduler

import (
	"sync"
	"testing"

	"morphstreamr/internal/tpg"
)

// TestDequeOwnerLIFO: without thieves, the owner sees its deque as a plain
// LIFO stack, across enough pushes to force ring growth.
func TestDequeOwnerLIFO(t *testing.T) {
	var d wsDeque
	d.init()
	const n = 3 * dequeInitialCap // two growths
	nodes := make([]*tpg.OpNode, n)
	for i := range nodes {
		nodes[i] = new(tpg.OpNode)
		d.push(nodes[i])
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.pop(); got != nodes[i] {
			t.Fatalf("pop %d: got %p want %p", i, got, nodes[i])
		}
	}
	if d.pop() != nil || !d.empty() {
		t.Fatal("deque not empty after draining")
	}
}

// TestDequeStealFIFO: without the owner racing, thieves drain oldest-first.
func TestDequeStealFIFO(t *testing.T) {
	var d wsDeque
	d.init()
	nodes := make([]*tpg.OpNode, 100)
	for i := range nodes {
		nodes[i] = new(tpg.OpNode)
		d.push(nodes[i])
	}
	for i := range nodes {
		n, retry := d.steal()
		if retry || n != nodes[i] {
			t.Fatalf("steal %d: got %p (retry=%v) want %p", i, n, retry, nodes[i])
		}
	}
	if n, _ := d.steal(); n != nil {
		t.Fatal("steal from empty deque returned a node")
	}
}

// TestDequeConcurrentSteals: one owner pushes and pops while many thieves
// steal; every pushed node must be consumed by exactly one party.
func TestDequeConcurrentSteals(t *testing.T) {
	const (
		total   = 20000
		thieves = 4
	)
	var d wsDeque
	d.init()

	ids := make(map[*tpg.OpNode]int, total)
	nodes := make([]*tpg.OpNode, total)
	for i := range nodes {
		nodes[i] = new(tpg.OpNode)
		ids[nodes[i]] = i
	}

	var wg sync.WaitGroup
	stolen := make([][]*tpg.OpNode, thieves)
	ownerGot := make([]*tpg.OpNode, 0, total)
	done := make(chan struct{})

	for th := 0; th < thieves; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n, retry := d.steal()
				if n != nil {
					stolen[th] = append(stolen[th], n)
					continue
				}
				if retry {
					continue
				}
				select {
				case <-done:
					// Owner finished pushing; one last sweep so nothing
					// is stranded between its final push and our exit.
					if n, _ := d.steal(); n != nil {
						stolen[th] = append(stolen[th], n)
						continue
					}
					return
				default:
				}
			}
		}()
	}

	// Owner: bursts of pushes interleaved with pops, like a worker
	// resolving a fan-out and then draining its own queue.
	for i := 0; i < total; {
		for b := 0; b < 37 && i < total; b++ {
			d.push(nodes[i])
			i++
		}
		for b := 0; b < 11; b++ {
			if n := d.pop(); n != nil {
				ownerGot = append(ownerGot, n)
			}
		}
	}
	close(done)
	// Owner drains what the thieves leave behind.
	for {
		n := d.pop()
		if n == nil {
			break
		}
		ownerGot = append(ownerGot, n)
	}
	wg.Wait()
	// A thief may have been holding the last element when the owner saw
	// empty; collect the stragglers after the join.
	for {
		n := d.pop()
		if n == nil {
			break
		}
		ownerGot = append(ownerGot, n)
	}

	seen := make([]bool, total)
	count := 0
	record := func(n *tpg.OpNode, who string) {
		i, ok := ids[n]
		if !ok {
			t.Fatalf("%s consumed a node that was never pushed", who)
		}
		if seen[i] {
			t.Fatalf("node %d consumed twice (last by %s)", i, who)
		}
		seen[i] = true
		count++
	}
	for _, n := range ownerGot {
		record(n, "owner")
	}
	for th := range stolen {
		for _, n := range stolen[th] {
			record(n, "thief")
		}
	}
	if count != total {
		t.Fatalf("consumed %d of %d nodes", count, total)
	}
}
