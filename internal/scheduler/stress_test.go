// Stress tests live in an external package: fttest (whose generators they
// borrow) itself imports scheduler, so an internal test would be a cycle.
package scheduler_test

import (
	"fmt"
	"testing"

	"morphstreamr/internal/ft/fttest"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// buildEpoch preprocesses one batch against a store and returns its graph.
func buildEpoch(app types.App, events []types.Event, st *store.Store) *tpg.Graph {
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := app.Preprocess(events[i])
		txns[i] = &txn
	}
	return tpg.Build(txns, st.Get)
}

// runStress drives several epochs of one generator through the parallel
// scheduler under an adversarial assignment (every chain lands on worker
// 0, so with more than one worker every other worker works only by
// stealing) and checks the resulting store against the sequential
// execution and the oracle, plus per-transaction abort verdicts.
func runStress(t *testing.T, newGen func(int64) workload.Generator, seed int64, workers int) {
	t.Helper()
	genP, genS := newGen(seed), newGen(seed)
	app := genP.App()
	stP, stS := store.New(app.Tables()), store.New(app.Tables())
	orc := oracle.New(app)

	const epochs, batch = 4, 384
	for e := 0; e < epochs; e++ {
		events := workload.Batch(genP, batch)
		if es := workload.Batch(genS, batch); len(es) != len(events) {
			t.Fatalf("generators diverged: %d vs %d events", len(events), len(es))
		}
		gP := buildEpoch(app, events, stP)
		gS := buildEpoch(app, events, stS)

		if _, err := scheduler.Run(gP, stP, scheduler.Options{
			Workers: workers,
			Assign:  func(*tpg.Chain) int { return 0 },
		}); err != nil {
			t.Fatalf("epoch %d: parallel run: %v", e+1, err)
		}
		if _, err := scheduler.RunSequential(gS, stS, false); err != nil {
			t.Fatalf("epoch %d: sequential run: %v", e+1, err)
		}
		for _, ev := range events {
			orc.Apply(ev)
		}

		// Abort verdicts are part of the schedule-independent outcome.
		for i := range gP.Txns {
			if gP.Txns[i].Aborted() != gS.Txns[i].Aborted() {
				t.Fatalf("epoch %d txn %d: parallel aborted=%v, sequential aborted=%v",
					e+1, i, gP.Txns[i].Aborted(), gS.Txns[i].Aborted())
			}
		}
	}

	if !stP.Equal(stS) {
		t.Fatalf("parallel store diverges from sequential: %v", stP.Diff(stS, 5))
	}
	for _, sp := range app.Tables() {
		for row := uint32(0); row < sp.Rows; row++ {
			k := types.Key{Table: sp.ID, Row: row}
			if got, want := stP.Get(k), orc.Value(k); got != want {
				t.Fatalf("%v: scheduler=%d oracle=%d", k, got, want)
			}
		}
	}
}

// TestStealingEquivalence: across workloads, worker counts, and seeds, the
// work-stealing scheduler with a pathological initial distribution is
// indistinguishable from sequential execution and the oracle.
func TestStealingEquivalence(t *testing.T) {
	gens := map[string]func(int64) workload.Generator{
		"TP": fttest.TPGen,
		"GS": fttest.GSGen,
		"SL": fttest.SLGen,
	}
	for name, gen := range gens {
		for _, workers := range []int{1, 2, 4, 8} {
			for seed := int64(1); seed <= 2; seed++ {
				name, gen, workers, seed := name, gen, workers, seed
				t.Run(fmt.Sprintf("%s/w%d/s%d", name, workers, seed), func(t *testing.T) {
					t.Parallel()
					runStress(t, gen, seed, workers)
				})
			}
		}
	}
}

// TestStealingHighContention: a single hot key makes the whole epoch one
// temporal chain — the chain-locality fast path and stealing must not
// double-fire or reorder operations on it.
func TestStealingHighContention(t *testing.T) {
	p := workload.DefaultGSParams()
	p.Seed, p.Rows, p.Theta = 7, 4, 1.5 // tiny key space, heavy skew
	newGen := func(seed int64) workload.Generator {
		q := p
		q.Seed = seed
		return workload.NewGS(q)
	}
	for _, workers := range []int{2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			t.Parallel()
			runStress(t, newGen, 7, workers)
		})
	}
}
