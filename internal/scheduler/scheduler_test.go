package scheduler

import (
	"fmt"
	"testing"

	"morphstreamr/internal/oracle"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// buildEpoch preprocesses a batch of generated events into a graph plus a
// fresh store.
func buildEpoch(gen workload.Generator, n int) (*tpg.Graph, *store.Store, []types.Event) {
	st := store.New(gen.App().Tables())
	events := workload.Batch(gen, n)
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := gen.App().Preprocess(events[i])
		txns[i] = &txn
	}
	return tpg.Build(txns, st.Get), st, events
}

// oracleState runs the oracle over the same events for comparison.
func oracleState(gen types.App, events []types.Event) *oracle.Oracle {
	o := oracle.New(gen)
	for _, ev := range events {
		o.Apply(ev)
	}
	return o
}

func compareToOracle(t *testing.T, app types.App, st *store.Store, o *oracle.Oracle) {
	t.Helper()
	bad := 0
	for _, spec := range app.Tables() {
		for row := uint32(0); row < spec.Rows; row++ {
			k := types.Key{Table: spec.ID, Row: row}
			if got, want := st.Get(k), o.Value(k); got != want {
				bad++
				if bad <= 3 {
					t.Errorf("%v: scheduler=%d oracle=%d", k, got, want)
				}
			}
		}
	}
	if bad > 3 {
		t.Errorf("... and %d more mismatches", bad-3)
	}
}

func smallGens(seed int64) map[string]workload.Generator {
	sl := workload.DefaultSLParams()
	sl.Rows, sl.Seed, sl.AbortRatio = 512, seed, 0.15
	gs := workload.DefaultGSParams()
	gs.Rows, gs.Seed, gs.Theta = 512, seed, 1.2
	tp := workload.DefaultTPParams()
	tp.Segments, tp.Seed = 256, seed
	return map[string]workload.Generator{
		"SL": workload.NewSL(sl),
		"GS": workload.NewGS(gs),
		"TP": workload.NewTP(tp),
	}
}

// TestParallelMatchesOracle: the core serializability property — parallel
// TPG execution is conflict-equivalent to sequential timestamp order —
// across workloads, worker counts, and seeds.
func TestParallelMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for name, gen := range smallGens(seed) {
			for _, workers := range []int{1, 2, 4, 7} {
				t.Run(fmt.Sprintf("%s/seed%d/w%d", name, seed, workers), func(t *testing.T) {
					g, st, events := buildEpoch(gen, 800)
					if _, err := Run(g, st, Options{Workers: workers}); err != nil {
						t.Fatal(err)
					}
					compareToOracle(t, gen.App(), st, oracleState(gen.App(), events))
				})
			}
		}
	}
}

// TestSequentialMatchesOracle: the sequential executor agrees too.
func TestSequentialMatchesOracle(t *testing.T) {
	for name, gen := range smallGens(11) {
		t.Run(name, func(t *testing.T) {
			g, st, events := buildEpoch(gen, 500)
			if _, err := RunSequential(g, st, true); err != nil {
				t.Fatal(err)
			}
			compareToOracle(t, gen.App(), st, oracleState(gen.App(), events))
		})
	}
}

// TestAbortAgreement: per-transaction abort decisions must match the
// oracle exactly, not just final state.
func TestAbortAgreement(t *testing.T) {
	gen := smallGens(21)["SL"]
	st := store.New(gen.App().Tables())
	o := oracle.New(gen.App())
	events := workload.Batch(gen, 600)
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := gen.App().Preprocess(events[i])
		txns[i] = &txn
	}
	g := tpg.Build(txns, st.Get)
	if _, err := Run(g, st, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		txn := gen.App().Preprocess(ev)
		want := o.ExecuteTxn(&txn)
		if got := g.Txns[i].Aborted(); got != want.Aborted {
			t.Fatalf("event %d abort: scheduler=%v oracle=%v", ev.Seq, got, want.Aborted)
		}
	}
}

// TestTimingClocksPopulated: with timing enabled, busy time must be
// recorded and roughly account for the work done.
func TestTimingClocksPopulated(t *testing.T) {
	gen := smallGens(31)["GS"]
	g, st, _ := buildEpoch(gen, 2000)
	clocks, err := Run(g, st, Options{Workers: 3, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range clocks {
		total += int64(c.Execute + c.Explore + c.Wait + c.Abort)
	}
	if total == 0 {
		t.Error("timing enabled but all clocks zero")
	}
	clocks, err = Run(rebuild(gen, st), st, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clocks {
		if c.Execute != 0 || c.Wait != 0 {
			t.Error("timing disabled but clocks non-zero")
		}
	}
}

func rebuild(gen workload.Generator, st *store.Store) *tpg.Graph {
	events := workload.Batch(gen, 100)
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := gen.App().Preprocess(events[i])
		txns[i] = &txn
	}
	return tpg.Build(txns, st.Get)
}

func TestBadAssignmentRejected(t *testing.T) {
	gen := smallGens(41)["TP"]
	g, st, _ := buildEpoch(gen, 50)
	_, err := Run(g, st, Options{Workers: 2, Assign: func(*tpg.Chain) int { return 5 }})
	if err == nil {
		t.Error("out-of-range assignment must be rejected")
	}
}

func TestEmptyGraphRuns(t *testing.T) {
	st := store.New([]types.TableSpec{{ID: 0, Rows: 1}})
	g := tpg.Build(nil, st.Get)
	if _, err := Run(g, st, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestHashAssignRange(t *testing.T) {
	assign := HashAssign(5)
	for row := uint32(0); row < 1000; row++ {
		ch := &tpg.Chain{Key: types.Key{Table: types.TableID(row % 3), Row: row}}
		if w := assign(ch); w < 0 || w >= 5 {
			t.Fatalf("HashAssign out of range: %d", w)
		}
	}
}

func TestHashAssignSpreads(t *testing.T) {
	counts := make([]int, 4)
	assign := HashAssign(4)
	for row := uint32(0); row < 4000; row++ {
		counts[assign(&tpg.Chain{Key: types.Key{Row: row}})]++
	}
	for w, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("worker %d got %d of 4000 chains; hash is badly skewed", w, c)
		}
	}
}
