package scheduler

import (
	"sync/atomic"

	"morphstreamr/internal/tpg"
)

// wsDeque is a Chase-Lev work-stealing deque of ready operations.
//
// The owning worker pushes and pops at the bottom (LIFO, which keeps the
// most recently resolved — and therefore cache-hot — nodes local); thieves
// steal single nodes from the top (FIFO, which takes the oldest ready work,
// typically the head of a chain another worker has not reached yet). The
// ring grows geometrically when full, so capacity adapts to the actual
// ready frontier instead of being provisioned at the graph's vertex count.
//
// All indices are monotonically increasing int64s; top advances only via
// compare-and-swap, which rules out ABA. Go's atomic operations are
// sequentially consistent, providing the fences the original algorithm
// (Chase & Lev, SPAA '05; Lê et al., PPoPP '13) places explicitly.
type wsDeque struct {
	top    atomic.Int64 // next index to steal from
	bottom atomic.Int64 // next index to push at; owner-written
	ring   atomic.Pointer[dequeRing]
}

// dequeRing is one power-of-two circular buffer generation.
type dequeRing struct {
	mask int64
	slot []atomic.Pointer[tpg.OpNode]
}

func newDequeRing(capacity int64) *dequeRing {
	return &dequeRing{mask: capacity - 1, slot: make([]atomic.Pointer[tpg.OpNode], capacity)}
}

// dequeInitialCap is the starting ring size; epochs with wider ready
// frontiers grow by doubling, amortised O(1) per push.
const dequeInitialCap = 64

func (d *wsDeque) init() {
	d.ring.Store(newDequeRing(dequeInitialCap))
}

// initDeques initialises a fleet of deques with their first-generation
// rings carved out of two shared allocations, keeping the per-epoch
// allocation count flat in the worker count. Rings that grow later are
// allocated individually — growth is the rare case.
func initDeques(ds []wsDeque) {
	rings := make([]dequeRing, len(ds))
	slots := make([]atomic.Pointer[tpg.OpNode], len(ds)*dequeInitialCap)
	for i := range ds {
		rings[i] = dequeRing{
			mask: dequeInitialCap - 1,
			slot: slots[i*dequeInitialCap : (i+1)*dequeInitialCap],
		}
		ds[i].ring.Store(&rings[i])
	}
}

// push appends a node at the bottom. Owner-only.
func (d *wsDeque) push(n *tpg.OpNode) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		r = d.grow(r, b, t)
	}
	r.slot[b&r.mask].Store(n)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window. Owner-only. Thieves that
// loaded the old ring still read correct values: the live slots of the old
// generation are never overwritten (push would have grown again first), and
// top's CAS protects against consuming a stale claim.
func (d *wsDeque) grow(old *dequeRing, b, t int64) *dequeRing {
	nr := newDequeRing((old.mask + 1) * 2)
	for i := t; i < b; i++ {
		nr.slot[i&nr.mask].Store(old.slot[i&old.mask].Load())
	}
	d.ring.Store(nr)
	return nr
}

// pop removes and returns the most recently pushed node, or nil when the
// deque is empty. Owner-only.
func (d *wsDeque) pop() *tpg.OpNode {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty state (bottom == top).
		d.bottom.Store(t)
		return nil
	}
	r := d.ring.Load()
	n := r.slot[b&r.mask].Load()
	if t == b {
		// Last element: race the thieves for it via top.
		if !d.top.CompareAndSwap(t, t+1) {
			n = nil // a thief won
		}
		d.bottom.Store(b + 1)
	}
	return n
}

// steal removes and returns the oldest node, or nil. retry reports a lost
// CAS race (the deque may still be non-empty and is worth another attempt).
func (d *wsDeque) steal() (n *tpg.OpNode, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.ring.Load()
	n = r.slot[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return n, false
}

// empty reports whether the deque currently holds no stealable work. It is
// a racy snapshot, used only as a wake/park heuristic.
func (d *wsDeque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
