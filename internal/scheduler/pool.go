package scheduler

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// ErrPoolClosed is returned by Pool.Run after Close.
var ErrPoolClosed = errors.New("scheduler: pool closed")

// Pool is a persistent worker pool for epoch-at-a-time graph execution.
// Where Run spawns fresh goroutines and deques per call, a Pool keeps both
// alive across epochs: workers block on their task channel between runs and
// the Chase-Lev rings (including any growth) are reused, which removes the
// per-epoch spawn/allocate cost the adaptive engine would otherwise pay on
// every small epoch.
//
// The pool is also the resize point of the adaptive controller: Resize
// changes the live worker count between epochs. Run and Resize serialise on
// one mutex, and Run holds it until every worker has finished the epoch and
// parked back on its channel — so a resize can only observe a quiesced
// pool: no worker is inside a run, no deque holds work, and the park/wake
// machinery of the retiring run has fully terminated. Shrinking closes the
// surplus workers' channels (their goroutines exit); growing spawns fresh
// ones. Worker goroutines survive operation panics: the panic is recorded
// against the failing run exactly like Run's isolation, and the worker
// parks for the next epoch.
type Pool struct {
	mu     sync.Mutex
	max    int
	size   int
	closed bool

	// deques is the shared fleet, length max: a run of W workers uses the
	// first W. All deques are empty between runs (the error path drains
	// residue), so reuse needs no reinitialisation.
	deques []wsDeque
	tasks  []chan poolTask

	// stats receives the Resizes counter (per-run counters come from each
	// run's Options).
	stats *obs.SchedStats
}

// poolTask is one worker's share of one epoch run.
type poolTask struct {
	run   *parallelRun
	w     int
	clock *metrics.WorkerClock
	wg    *sync.WaitGroup
}

// NewPool creates a pool with the given worker-count ceiling. The pool
// starts at the ceiling; Resize moves the live count within [1, max].
// stats, when non-nil, receives resize counts; it may be nil.
func NewPool(max int, stats *obs.SchedStats) *Pool {
	max = types.NormalizeWorkers(max)
	p := &Pool{max: max, deques: make([]wsDeque, max), stats: stats}
	initDeques(p.deques)
	p.mu.Lock()
	p.resizeLocked(max)
	p.mu.Unlock()
	return p
}

// Size returns the live worker count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// Max returns the worker-count ceiling.
func (p *Pool) Max() int { return p.max }

// Resize sets the live worker count, clamped to [1, max]. It blocks until
// any in-flight run has quiesced (the run mutex is the barrier), then
// returns the count actually in effect.
func (p *Pool) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	if n > p.max {
		n = p.max
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || n == p.size {
		return p.size
	}
	p.resizeLocked(n)
	if p.stats != nil {
		p.stats.Resizes.Add(1)
	}
	return p.size
}

// resizeLocked adjusts the worker goroutines to n. Caller holds mu.
func (p *Pool) resizeLocked(n int) {
	for len(p.tasks) > n {
		last := len(p.tasks) - 1
		close(p.tasks[last])
		p.tasks = p.tasks[:last]
	}
	for len(p.tasks) < n {
		ch := make(chan poolTask, 1)
		p.tasks = append(p.tasks, ch)
		go poolWorker(ch)
	}
	p.size = n
}

// Close terminates every worker goroutine. Idempotent; Run afterwards
// returns ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.resizeLocked(0)
	p.closed = true
}

// poolWorker is one persistent worker goroutine: it executes its share of
// each dispatched run, isolating operation panics so the goroutine itself
// survives for the next epoch.
func poolWorker(tasks <-chan poolTask) {
	for t := range tasks {
		runTask(t)
	}
}

func runTask(t poolTask) {
	defer t.wg.Done()
	defer func() {
		if pv := recover(); pv != nil {
			t.run.recordPanic(pv, debug.Stack())
			t.run.done.Store(true)
			t.run.wakeAll()
		}
	}()
	t.run.worker(t.w, t.clock)
}

// Run executes the graph on the pool, resizing to opt.Workers first (the
// adaptive engine's per-epoch worker morph — the resize is free when the
// count is unchanged). Semantics match Run: same options, same clocks,
// same error contract.
func (p *Pool) Run(g *tpg.Graph, st *store.Store, opt Options) ([]metrics.WorkerClock, error) {
	workers := types.NormalizeWorkers(opt.Workers)
	if workers > p.max {
		workers = p.max
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	if workers != p.size {
		p.resizeLocked(workers)
		if p.stats != nil {
			p.stats.Resizes.Add(1)
		}
	}
	clocks := make([]metrics.WorkerClock, workers)
	if g.NumOps == 0 {
		return clocks, nil
	}
	if err := assignOwners(g, workers, opt.Assign); err != nil {
		return nil, err
	}

	run := &parallelRun{
		st:     st,
		deques: p.deques[:workers],
		timing: opt.Timing,
		hook:   opt.FireHook,
		stats:  opt.Stats,
	}
	run.pending.Store(int64(g.NumOps))
	run.idleCond = sync.NewCond(&run.idleMu)
	// Seeding precedes the channel sends that start the workers, so
	// owner-only pushes from this goroutine are safe.
	for _, n := range g.Heads() {
		run.deques[n.Chain.Owner].push(n)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		p.tasks[w] <- poolTask{run: run, w: w, clock: &clocks[w], wg: &wg}
	}
	wg.Wait()

	if pv := run.panicked.Load(); pv != nil {
		p.drainDeques()
		pn := pv.(*opPanic)
		return clocks, fmt.Errorf("%w: %v\n%s", ErrOpPanic, pn.value, pn.stack)
	}
	if n := run.pending.Load(); n != 0 {
		// Stall residue: unexecuted nodes may still sit in the deques; they
		// must not leak into the next epoch's run.
		p.drainDeques()
		return clocks, fmt.Errorf("scheduler: %d operations never became ready (dependency cycle?)", n)
	}
	return clocks, nil
}

// drainDeques empties every deque after a failed run. Caller holds mu and
// every worker has quiesced, so owner-only pops from this goroutine are
// safe.
func (p *Pool) drainDeques() {
	for i := range p.deques {
		for p.deques[i].pop() != nil {
		}
	}
}
