// Package scheduler executes a task precedence graph.
//
// The parallel scheduler follows MorphStream's TxnScheduler shape — key
// chains are assigned to workers for data locality, ready operations gate
// on dependency counters — but drains the graph through lock-free
// work-stealing instead of per-worker channels: each worker owns a
// Chase-Lev ring deque of ready nodes, executes its own bottom (LIFO,
// cache-hot) and steals from other workers' tops when idle, so load
// imbalance self-corrects without any global lock. Operation completion is
// an atomic countdown; the worker that retires the last operation flips a
// one-shot done flag and wakes everyone. Per-worker clocks split elapsed
// time into explore (scheduling), execute (state accesses), abort
// (handling aborted transactions), and wait (idle: failed steals and
// parking) — the quantities stacked in Figure 11.
//
// The sequential executor runs the graph on one thread in timestamp order;
// it is the redo engine of WAL recovery and the one-core base case of the
// scalability study.
package scheduler

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// ErrOpPanic is wrapped by Run's error when an operation panicked. The
// panic is confined to the failing epoch: the worker pool shuts down
// cleanly, Run returns instead of crashing the process, and the caller
// (the supervisor) treats the epoch as failed and recovers.
var ErrOpPanic = errors.New("scheduler: operation panicked")

// Options configures a parallel run.
type Options struct {
	// Workers is the degree of parallelism; zero means 1, the same
	// zero-value rule as types.RunShape (the scheduler historically
	// defaulted to GOMAXPROCS here, a divergence the unified run-shape
	// removed: parallelism is always an explicit decision).
	Workers int
	// Assign maps a chain to its owning worker in [0, Workers). Nil uses
	// a hash of the chain's key, the engine's default partitioning. The
	// assignment seeds the initial work distribution and labels chains for
	// the logging mechanisms; stealing rebalances execution at runtime.
	Assign func(*tpg.Chain) int
	// Timing enables per-operation clock accounting. Leave it off on the
	// runtime hot path; recovery turns it on to produce breakdowns.
	Timing bool
	// FireHook, when non-nil, runs before every operation fires on the
	// parallel path. It exists for chaos testing — injecting panics or
	// wedging a worker at a chosen operation — and for the supervisor's
	// cancellation hooks; nil costs nothing on the hot path.
	FireHook func(*tpg.OpNode)
	// Stats, when non-nil, receives steal/park/stall/panic counters
	// (atomic increments off the fast path: only on steals, parking, and
	// termination events). Nil costs a pointer check.
	Stats *obs.SchedStats
}

// Run executes every node of the graph with the configured worker pool and
// returns the per-worker clocks (all zero unless Timing is set).
func Run(g *tpg.Graph, st *store.Store, opt Options) ([]metrics.WorkerClock, error) {
	workers := types.NormalizeWorkers(opt.Workers)
	clocks := make([]metrics.WorkerClock, workers)
	if g.NumOps == 0 {
		return clocks, nil
	}
	if err := assignOwners(g, workers, opt.Assign); err != nil {
		return nil, err
	}

	run := &parallelRun{
		st:     st,
		deques: make([]wsDeque, workers),
		timing: opt.Timing,
		hook:   opt.FireHook,
		stats:  opt.Stats,
	}
	run.pending.Store(int64(g.NumOps))
	run.idleCond = sync.NewCond(&run.idleMu)
	initDeques(run.deques)
	// Seeding happens before any worker starts, so owner-only pushes from
	// this goroutine are safe (goroutine start establishes happens-before).
	for _, n := range g.Heads() {
		run.deques[n.Chain.Owner].push(n)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Panic isolation: an operation panic fails the epoch, not the
			// process. Record the first panic, terminate the pool, and let
			// Run surface it; peers drain normally once done is set.
			defer func() {
				if pv := recover(); pv != nil {
					run.recordPanic(pv, debug.Stack())
					run.done.Store(true)
					run.wakeAll()
				}
			}()
			run.worker(w, &clocks[w])
		}(w)
	}
	wg.Wait()
	if pv := run.panicked.Load(); pv != nil {
		p := pv.(*opPanic)
		return clocks, fmt.Errorf("%w: %v\n%s", ErrOpPanic, p.value, p.stack)
	}
	if n := run.pending.Load(); n != 0 {
		return clocks, fmt.Errorf("scheduler: %d operations never became ready (dependency cycle?)", n)
	}
	return clocks, nil
}

// assignOwners labels every chain with its owning worker in [0, workers).
// A nil assign uses the default key-hash partitioning.
func assignOwners(g *tpg.Graph, workers int, assign func(*tpg.Chain) int) error {
	if assign == nil {
		assign = HashAssign(workers)
	}
	for _, ch := range g.ChainList {
		owner := assign(ch)
		if owner < 0 || owner >= workers {
			return fmt.Errorf("scheduler: chain %v assigned to worker %d of %d",
				ch.Key, owner, workers)
		}
		ch.Owner = owner
	}
	return nil
}

// spinSweeps is how many full pop+steal sweeps an idle worker performs
// (yielding between them) before parking on the condition variable.
// Parking promptly matters on oversubscribed hosts, where spinning idle
// workers would steal cycles from the one making progress.
const spinSweeps = 2

type parallelRun struct {
	st     *store.Store
	deques []wsDeque
	timing bool
	hook   func(*tpg.OpNode)
	stats  *obs.SchedStats

	// panicked holds the first *opPanic recovered from a worker.
	panicked atomic.Value

	// pending counts unretired operations; the worker that moves it to
	// zero sets done and wakes all parked workers.
	pending atomic.Int64
	done    atomic.Bool

	// parked mirrors the number of workers blocked on idleCond; pushers
	// check it before touching the mutex, keeping the hot path lock-free.
	parked   atomic.Int32
	idleMu   sync.Mutex
	idleCond *sync.Cond
}

func (r *parallelRun) worker(w int, clock *metrics.WorkerClock) {
	var ready []*tpg.OpNode
	var n *tpg.OpNode
	for {
		if n == nil {
			n = r.acquire(w, clock)
			if n == nil {
				return // done (or stalled; Run reports the residue)
			}
		}
		r.fire(n, clock)
		var t0 time.Time
		if r.timing {
			t0 = time.Now()
		}
		ready = tpg.Resolve(n, ready[:0])
		n = nil
		if len(ready) > 0 {
			// Chain-locality fast path: Resolve places the chain successor
			// first; run it next without a deque round-trip and publish the
			// rest for thieves.
			n = ready[0]
			if rest := ready[1:]; len(rest) > 0 {
				d := &r.deques[w]
				for _, x := range rest {
					d.push(x)
				}
				r.wake(len(rest))
			}
		}
		if r.timing {
			clock.Explore += time.Since(t0)
		}
		if r.pending.Add(-1) == 0 {
			// Last operation retired: nothing can be ready (so n == nil),
			// terminate everyone.
			r.done.Store(true)
			r.wakeAll()
			return
		}
	}
}

// acquire returns the next ready node, stealing when the local deque runs
// dry and parking when the whole pool looks idle. It returns nil when the
// run is complete (or a stall — a dependency cycle — was detected).
//
// Timing attribution: a dequeue that finds ready work without blocking —
// a local pop, or a first-sweep steal — is explore time (scheduling work
// actually done); once a full search comes up empty, everything until the
// next acquisition — futile sweeps, yields, parking — is wait time. This
// is the accounting the per-worker breakdown of Figure 11 expects: the
// seed implementation's select/default split misattributed blocked-receive
// time to Explore whenever the queue was momentarily empty.
func (r *parallelRun) acquire(w int, clock *metrics.WorkerClock) *tpg.OpNode {
	d := &r.deques[w]
	var t0 time.Time
	if r.timing {
		t0 = time.Now()
	}
	if n := d.pop(); n != nil {
		if r.timing {
			clock.Explore += time.Since(t0)
		}
		return n
	}
	if n := r.stealSweep(w); n != nil {
		if r.timing {
			clock.Explore += time.Since(t0)
		}
		return n
	}
	// Blocked: from here on, elapsed time is starvation.
	sweeps := 1
	for {
		if r.done.Load() {
			if r.timing {
				clock.Wait += time.Since(t0)
			}
			return nil
		}
		if sweeps < spinSweeps {
			runtime.Gosched()
		} else {
			r.park()
			sweeps = 0
			// Re-check the local deque after waking: termination may have
			// raced a push, and pop is owner-only so thieves cannot fully
			// drain it for us.
			if n := d.pop(); n != nil {
				if r.timing {
					clock.Wait += time.Since(t0)
				}
				return n
			}
		}
		if n := r.stealSweep(w); n != nil {
			if r.timing {
				clock.Wait += time.Since(t0)
			}
			return n
		}
		sweeps++
	}
}

// stealSweep tries every other worker's deque once (plus contention
// retries), starting after w to spread thieves across victims.
func (r *parallelRun) stealSweep(w int) *tpg.OpNode {
	W := len(r.deques)
	for i := 1; i < W; i++ {
		v := w + i
		if v >= W {
			v -= W
		}
		for {
			n, retry := r.deques[v].steal()
			if n != nil {
				if st := r.stats; st != nil {
					st.Steals.Add(1)
				}
				return n
			}
			if !retry {
				break
			}
		}
	}
	if st := r.stats; st != nil {
		st.StealFails.Add(1)
	}
	return nil
}

// park blocks until new work may exist or the run completes. The final
// parker performs stall detection: if every worker is parked, no deque
// holds work, and operations remain unretired, no progress is possible —
// a dependency cycle — so it terminates the pool instead of deadlocking.
func (r *parallelRun) park() {
	if st := r.stats; st != nil {
		st.Parks.Add(1)
	}
	r.idleMu.Lock()
	p := r.parked.Add(1)
	if int(p) == len(r.deques) && !r.anyWork() && !r.done.Load() && r.pending.Load() > 0 {
		if st := r.stats; st != nil {
			st.Stalls.Add(1)
		}
		r.done.Store(true)
		r.idleCond.Broadcast()
		r.parked.Add(-1)
		r.idleMu.Unlock()
		return
	}
	for !r.done.Load() && !r.anyWork() {
		r.idleCond.Wait()
	}
	r.parked.Add(-1)
	r.idleMu.Unlock()
}

// anyWork reports whether any deque currently holds stealable work. Racy
// by design; used only under idleMu as the park predicate.
func (r *parallelRun) anyWork() bool {
	for i := range r.deques {
		if !r.deques[i].empty() {
			return true
		}
	}
	return false
}

// wake rouses up to n parked workers. Pushers call it after publishing
// work; the atomic check keeps the loaded (nobody-parked) path lock-free.
func (r *parallelRun) wake(n int) {
	if r.parked.Load() == 0 {
		return
	}
	if st := r.stats; st != nil {
		st.Wakes.Add(1)
	}
	r.idleMu.Lock()
	if n == 1 {
		r.idleCond.Signal()
	} else {
		r.idleCond.Broadcast()
	}
	r.idleMu.Unlock()
}

// wakeAll rouses every parked worker (termination).
func (r *parallelRun) wakeAll() {
	r.idleMu.Lock()
	r.idleCond.Broadcast()
	r.idleMu.Unlock()
}

// opPanic records the first worker panic of a run.
type opPanic struct {
	value any
	stack []byte
}

// recordPanic stores the first panic; later ones (peers tripping over the
// same poisoned state) are dropped — the first is the cause.
func (r *parallelRun) recordPanic(pv any, stack []byte) {
	if st := r.stats; st != nil {
		st.Panics.Add(1)
	}
	r.panicked.CompareAndSwap(nil, &opPanic{value: pv, stack: stack})
}

func (r *parallelRun) fire(n *tpg.OpNode, clock *metrics.WorkerClock) {
	if h := r.hook; h != nil {
		h(n)
	}
	if !r.timing {
		tpg.Fire(n, r.st)
		return
	}
	start := time.Now()
	tpg.Fire(n, r.st)
	if n.Txn.Aborted() {
		clock.Abort += time.Since(start)
	} else {
		clock.Execute += time.Since(start)
	}
}

// RunSequential executes the graph on the calling goroutine in global
// timestamp order. The order is topological by construction (all edges
// point from smaller (TS, Idx) to larger), so no dependency bookkeeping is
// required — precisely why sequential WAL redo needs its input sorted.
func RunSequential(g *tpg.Graph, st *store.Store, timing bool) (metrics.WorkerClock, error) {
	var clock metrics.WorkerClock
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			if timing {
				start := time.Now()
				tpg.Fire(n, st)
				if tn.Aborted() {
					clock.Abort += time.Since(start)
				} else {
					clock.Execute += time.Since(start)
				}
			} else {
				tpg.Fire(n, st)
			}
		}
	}
	return clock, nil
}

// hashKey mixes a key into a well-distributed 64-bit hash
// (splitmix64-style finaliser).
func hashKey(k types.Key) uint64 {
	x := uint64(k.Row)<<8 | uint64(k.Table)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashAssign returns the default chain-to-worker assignment used at
// runtime: a stable hash of the chain key modulo the worker count.
func HashAssign(workers int) func(*tpg.Chain) int {
	return func(c *tpg.Chain) int { return int(hashKey(c.Key) % uint64(workers)) }
}
