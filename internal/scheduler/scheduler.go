// Package scheduler executes a task precedence graph.
//
// The parallel scheduler mirrors MorphStream's TxnScheduler: every key
// chain is owned by one worker (data locality), ready operations flow
// through per-worker queues, and dependency counters gate execution.
// Workers run their own chains but execute any ready node handed to them,
// so cross-chain dependencies never block a worker that has other ready
// work. Per-worker clocks split elapsed time into explore (scheduling),
// execute (state accesses), abort (handling aborted transactions), and
// wait (idle at an empty queue) — the quantities stacked in Figure 11.
//
// The sequential executor runs the graph on one thread in timestamp order;
// it is the redo engine of WAL recovery and the one-core base case of the
// scalability study.
package scheduler

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// Options configures a parallel run.
type Options struct {
	// Workers is the degree of parallelism; 0 means GOMAXPROCS.
	Workers int
	// Assign maps a chain to its owning worker in [0, Workers). Nil uses
	// a hash of the chain's key, the engine's default partitioning.
	Assign func(*tpg.Chain) int
	// Timing enables per-operation clock accounting. Leave it off on the
	// runtime hot path; recovery turns it on to produce breakdowns.
	Timing bool
}

// Run executes every node of the graph with the configured worker pool and
// returns the per-worker clocks (all zero unless Timing is set).
func Run(g *tpg.Graph, st *store.Store, opt Options) ([]metrics.WorkerClock, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	clocks := make([]metrics.WorkerClock, workers)
	if g.NumOps == 0 {
		return clocks, nil
	}
	assign := opt.Assign
	if assign == nil {
		assign = HashAssign(workers)
	}
	for _, ch := range g.ChainList {
		owner := assign(ch)
		if owner < 0 || owner >= workers {
			return nil, fmt.Errorf("scheduler: chain %v assigned to worker %d of %d",
				ch.Key, owner, workers)
		}
		ch.Owner = owner
	}

	run := &parallelRun{
		st:      st,
		queues:  make([]chan *tpg.OpNode, workers),
		timing:  opt.Timing,
		pending: int64(g.NumOps),
	}
	for w := range run.queues {
		// Buffer sized so sends never block: a node enters a queue at most
		// once, bounded by the graph's vertex count.
		run.queues[w] = make(chan *tpg.OpNode, g.NumOps)
	}
	for _, n := range g.Heads() {
		run.queues[n.Chain.Owner] <- n
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			run.worker(w, &clocks[w])
		}(w)
	}
	wg.Wait()
	if n := run.pendingLeft(); n != 0 {
		return clocks, fmt.Errorf("scheduler: %d operations never became ready (dependency cycle?)", n)
	}
	return clocks, nil
}

type parallelRun struct {
	st     *store.Store
	queues []chan *tpg.OpNode
	timing bool

	mu      sync.Mutex
	pending int64
	closed  bool
}

// finish decrements the outstanding-operation count and closes all queues
// when it reaches zero, releasing blocked workers.
func (r *parallelRun) finish() {
	r.mu.Lock()
	r.pending--
	done := r.pending == 0 && !r.closed
	if done {
		r.closed = true
	}
	r.mu.Unlock()
	if done {
		for _, q := range r.queues {
			close(q)
		}
	}
}

func (r *parallelRun) pendingLeft() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

func (r *parallelRun) worker(w int, clock *metrics.WorkerClock) {
	q := r.queues[w]
	var ready []*tpg.OpNode
	for {
		var n *tpg.OpNode
		var ok bool
		if r.timing {
			start := time.Now()
			select {
			case n, ok = <-q:
				clock.Explore += time.Since(start)
			default:
				n, ok = <-q
				clock.Wait += time.Since(start)
			}
		} else {
			n, ok = <-q
		}
		if !ok {
			return
		}
		// Chain-locality loop: after firing a node, its chain successor is
		// frequently the only newly ready node; keep it on this worker
		// without a queue round-trip when we own it.
		for n != nil {
			r.fire(n, clock)
			ready = tpg.Resolve(n, ready[:0])
			r.finish()
			n = nil
			for _, d := range ready {
				if n == nil && d.Chain.Owner == w {
					n = d
					continue
				}
				r.queues[d.Chain.Owner] <- d
			}
		}
	}
}

func (r *parallelRun) fire(n *tpg.OpNode, clock *metrics.WorkerClock) {
	if !r.timing {
		tpg.Fire(n, r.st)
		return
	}
	start := time.Now()
	tpg.Fire(n, r.st)
	if n.Txn.Aborted() {
		clock.Abort += time.Since(start)
	} else {
		clock.Execute += time.Since(start)
	}
}

// RunSequential executes the graph on the calling goroutine in global
// timestamp order. The order is topological by construction (all edges
// point from smaller (TS, Idx) to larger), so no dependency bookkeeping is
// required — precisely why sequential WAL redo needs its input sorted.
func RunSequential(g *tpg.Graph, st *store.Store, timing bool) (metrics.WorkerClock, error) {
	var clock metrics.WorkerClock
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			if timing {
				start := time.Now()
				tpg.Fire(n, st)
				if tn.Aborted() {
					clock.Abort += time.Since(start)
				} else {
					clock.Execute += time.Since(start)
				}
			} else {
				tpg.Fire(n, st)
			}
		}
	}
	return clock, nil
}

// hashKey mixes a key into a well-distributed 64-bit hash
// (splitmix64-style finaliser).
func hashKey(k types.Key) uint64 {
	x := uint64(k.Row)<<8 | uint64(k.Table)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashAssign returns the default chain-to-worker assignment used at
// runtime: a stable hash of the chain key modulo the worker count.
func HashAssign(workers int) func(*tpg.Chain) int {
	return func(c *tpg.Chain) int { return int(hashKey(c.Key) % uint64(workers)) }
}
