// Package core is the public façade of the library: it wires an
// application, a durable device, a fault-tolerance mechanism, and the
// engine into a System with a small lifecycle — process, crash, recover —
// and exposes the measurements the paper's evaluation is built from.
//
// Quick start:
//
//	gen := workload.NewSL(workload.DefaultSLParams())
//	sys, _ := core.New(gen.App(), core.Config{
//		RunShape: core.RunShape{Workers: 4},
//		FT:       core.MSR, BatchSize: 4096,
//	})
//	for i := 0; i < 12; i++ {
//		sys.ProcessBatch(workload.Batch(gen, 4096))
//	}
//	sys.Crash()
//	sys, report, _ := sys.Recover()
//	fmt.Println(report.Wall, report.Breakdown)
package core

import (
	"fmt"

	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/checkpoint"
	"morphstreamr/internal/ft/depgraph"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/lsnvector"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/ft/wal"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
)

// RunShape is the shared run-configuration surface (Workers, CommitEvery,
// SnapshotEvery, AutoCommit, Pipeline) with the tree's one zero-value and
// validation rule; see types.RunShape. Re-exported so example code only
// imports core.
type RunShape = types.RunShape

// Config selects the system composition.
type Config struct {
	// RunShape carries the run knobs: Workers (zero means 1), CommitEvery
	// (zero means 1; must divide SnapshotEvery), SnapshotEvery (zero means
	// 8), AutoCommit (workload-aware log commitment, MSR only), and
	// Pipeline (overlap epoch N+1's preprocessing and graph construction
	// with epoch N's execution when batches are submitted together via
	// ProcessBatches; durable writes and output release stay in epoch
	// order, so observable behaviour is unchanged).
	RunShape
	// FT is the fault-tolerance scheme (NAT, CKPT, WAL, DL, LV, MSR).
	FT ftapi.Kind
	// BatchSize is the punctuation interval in events; informational for
	// callers that size their own batches (default 4096).
	BatchSize int
	// AsyncCommit moves durable group-commit writes off the critical path
	// (Section VII's Lineage Stash-style direction); outputs still release
	// only after their commit record lands, preserving exactly-once.
	AsyncCommit bool
	// MSR configures MorphStreamR's logging and recovery optimizations;
	// ignored by other schemes. Zero value means msr.Default().
	MSR *msr.Options
	// Device is the durable storage; nil allocates an in-memory device.
	Device storage.Device
	// SSDModel wraps the device in the paper's Optane SSD performance
	// envelope (2 GB/s, 146 kIOPS), so I/O costs shape benchmarks the way
	// the paper's hardware shaped theirs.
	SSDModel bool
	// Compression DEFLATE-compresses every durable payload (Section VII's
	// log-compression direction): smaller logs and snapshots for extra CPU.
	Compression bool
	// Obs, when non-nil, wires the observability layer through the engine:
	// epoch/recovery spans, throughput counters, latency histograms, and
	// byte accounting, all served live by obs.Serve.
	Obs *obs.Observer
	// RecoveryProfiler, when non-nil, records the next recovery's
	// per-virtual-worker timeline, stall attribution, and critical-path
	// bounds (see vtime.Profiler); the report lands in
	// engine.RecoveryReport.Profile and, with Obs set, behind /recovery.
	RecoveryProfiler *vtime.Profiler
}

func (c *Config) normalize() error {
	if err := c.RunShape.Normalize(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.MSR == nil {
		d := msr.Default()
		c.MSR = &d
	}
	if c.Device == nil {
		c.Device = storage.NewMem()
	}
	return nil
}

// NewMechanism constructs a fault-tolerance mechanism of the given kind
// against a device and byte accounting. Exposed for callers that assemble
// engines directly.
func NewMechanism(kind ftapi.Kind, dev storage.Device, bytes *metrics.Bytes, opts msr.Options) ftapi.Mechanism {
	switch kind {
	case NAT:
		return nativeMech{}
	case ftapi.CKPT:
		return checkpoint.New()
	case ftapi.WAL:
		return wal.New(dev, bytes)
	case ftapi.DL:
		return depgraph.New(dev, bytes)
	case ftapi.LV:
		return lsnvector.New(dev, bytes)
	case ftapi.MSR:
		return msr.New(dev, bytes, opts)
	default:
		panic(fmt.Sprintf("core: unknown fault-tolerance kind %v", kind))
	}
}

// Re-exported scheme identifiers, so example code only imports core.
const (
	NAT  = ftapi.NAT
	CKPT = ftapi.CKPT
	WAL  = ftapi.WAL
	DL   = ftapi.DL
	LV   = ftapi.LV
	MSR  = ftapi.MSR
)

// System is one running instance: an application bound to an engine and a
// fault-tolerance mechanism over a durable device.
type System struct {
	App    types.App
	Cfg    Config
	Engine *engine.Engine

	bytes *metrics.Bytes
}

// New assembles a system with fresh state.
func New(app types.App, cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// Wrap the device through the canonical stack so the legal order —
	// compression below the SSD throttle — is enforced in one place.
	st := storage.NewStack(cfg.Device)
	if cfg.Compression {
		st.WithCompression()
	}
	if cfg.SSDModel {
		st.WithSSD()
	}
	dev, err := st.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bytes := metrics.NewBytes()
	mech := NewMechanism(cfg.FT, dev, bytes, *cfg.MSR)
	eng, err := engine.New(engine.Config{
		RunShape:    cfg.RunShape,
		App:         app,
		Device:      dev,
		Mechanism:   mech,
		AsyncCommit: cfg.AsyncCommit,
		Bytes:       bytes,
		Obs:         cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	keep := cfg
	keep.Device = dev
	keep.SSDModel = false    // already applied
	keep.Compression = false // already applied
	return &System{App: app, Cfg: keep, Engine: eng, bytes: bytes}, nil
}

// ProcessBatch ingests one punctuation interval's events.
func (s *System) ProcessBatch(events []types.Event) error {
	return s.Engine.ProcessEpoch(events)
}

// ProcessBatches ingests a run of punctuation intervals, one batch per
// epoch, in order — semantically a loop of ProcessBatch calls. With
// Config.Pipeline set, adjacent epochs' stream and transaction processing
// phases overlap (see engine.Config.Pipeline).
func (s *System) ProcessBatches(batches [][]types.Event) error {
	return s.Engine.ProcessEpochs(batches)
}

// Crash models a power failure: all volatile state is lost; only the
// durable device survives (and is reused by Recover).
func (s *System) Crash() {
	s.Engine.Crash()
}

// Recover rebuilds a working system from the durable device, returning it
// together with the recovery report. The crashed system's engine remains
// readable (tests consult its delivered-output ledger).
func (s *System) Recover() (*System, *engine.RecoveryReport, error) {
	bytes := metrics.NewBytes()
	mech := NewMechanism(s.Cfg.FT, s.Cfg.Device, bytes, *s.Cfg.MSR)
	shape := s.Cfg.RunShape
	// Recovery never re-runs the commit-interval advisor: the advisor
	// tunes on a live first epoch, which recovery does not have.
	shape.AutoCommit = false
	eng, report, err := engine.Recover(engine.Config{
		RunShape:         shape,
		App:              s.App,
		Device:           s.Cfg.Device,
		Mechanism:        mech,
		AsyncCommit:      s.Cfg.AsyncCommit,
		Bytes:            bytes,
		Obs:              s.Cfg.Obs,
		RecoveryProfiler: s.Cfg.RecoveryProfiler,
	})
	if err != nil {
		return nil, nil, err
	}
	return &System{App: s.App, Cfg: s.Cfg, Engine: eng, bytes: bytes}, report, nil
}

// Bytes exposes the artifact-size accounting of the current incarnation.
func (s *System) Bytes() *metrics.Bytes { return s.bytes }

// nativeMech is the no-op mechanism behind NAT.
type nativeMech struct{}

func (nativeMech) Kind() ftapi.Kind             { return ftapi.NAT }
func (nativeMech) SealEpoch(*ftapi.EpochResult) {}
func (nativeMech) Commit(uint64) error          { return nil }
func (nativeMech) GC(uint64)                    {}
func (nativeMech) Recover(*ftapi.RecoveryContext) (uint64, error) {
	return 0, fmt.Errorf("native execution has no recovery")
}
