package core

import (
	"strings"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

func slGen() workload.Generator {
	p := workload.DefaultSLParams()
	p.Rows = 512
	return workload.NewSL(p)
}

func TestConfigDefaults(t *testing.T) {
	gen := slGen()
	sys, err := New(gen.App(), Config{FT: ftapi.MSR})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Cfg
	if cfg.Workers != 1 || cfg.BatchSize != 4096 || cfg.CommitEvery != 1 || cfg.SnapshotEvery != 8 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.MSR == nil || *cfg.MSR != msr.Default() {
		t.Error("MSR options must default to all optimizations on")
	}
	if cfg.Device == nil {
		t.Error("device must default to an in-memory device")
	}
}

func TestSSDModelWrapsOnce(t *testing.T) {
	gen := slGen()
	sys, err := New(gen.App(), Config{FT: ftapi.CKPT, SSDModel: true})
	if err != nil {
		t.Fatal(err)
	}
	th, ok := sys.Cfg.Device.(*storage.Throttled)
	if !ok {
		t.Fatal("SSDModel did not wrap the device")
	}
	// Recover builds a second system over the same (already wrapped)
	// device; it must not wrap again.
	sys2, err := New(gen.App(), Config{FT: ftapi.CKPT, Device: th, SSDModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Cfg.Device != storage.Device(th) {
		t.Error("SSDModel double-wrapped an already throttled device")
	}
}

func TestNewMechanismKinds(t *testing.T) {
	dev := storage.NewMem()
	bytes := metrics.NewBytes()
	for _, kind := range ftapi.Kinds() {
		m := NewMechanism(kind, dev, bytes, msr.Default())
		if m.Kind() != kind {
			t.Errorf("NewMechanism(%v).Kind() = %v", kind, m.Kind())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	NewMechanism(ftapi.Kind(99), dev, bytes, msr.Default())
}

func TestNativeCannotRecover(t *testing.T) {
	gen := slGen()
	sys, err := New(gen.App(), Config{FT: ftapi.NAT})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProcessBatch(workload.Batch(gen, 100)); err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	if _, _, err := sys.Recover(); err == nil || !strings.Contains(err.Error(), "native") {
		t.Errorf("NAT recovery error = %v", err)
	}
}

// TestFileDeviceEndToEnd: the crash/recover protocol works over a real
// file-backed device — the configuration an actual deployment would use.
func TestFileDeviceEndToEnd(t *testing.T) {
	dev, err := storage.NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	gen := slGen()
	epochs := epochSlices(gen, 6, 200)
	o, wantOuts := oracleRun(gen.App(), epochs)

	sys, err := New(gen.App(), Config{
		RunShape: RunShape{Workers: 2, CommitEvery: 1, SnapshotEvery: 3},
		FT:       ftapi.MSR, Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.ProcessBatch(epochs[i]); err != nil {
			t.Fatal(err)
		}
	}
	pre := append([]types.Output(nil), sys.Engine.Delivered()...)
	sys.Crash()
	recovered, _, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.ProcessBatch(epochs[5]); err != nil {
		t.Fatal(err)
	}
	checkState(t, recovered, o)
	checkOutputs(t, append(pre, recovered.Engine.Delivered()...), wantOuts)
}
