package core

import (
	"fmt"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
)

// Asynchronous commit (Section VII's off-critical-path logging direction)
// must preserve every guarantee the synchronous path has: exactly-once
// delivery across crashes at any epoch, and oracle-equal state. The crash
// points here are the interesting ones — between a prepared commit and its
// completion is unobservable from outside ProcessBatch, but crashing right
// after an epoch whose commit may still be in flight exercises the
// delivery-watermark capping.
func TestAsyncCommitCrashRecoveryEquivalence(t *testing.T) {
	kinds := []ftapi.Kind{ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	gens := itGenerators()
	for _, name := range []string{"SL", "TP"} {
		mkGen := gens[name]
		for _, kind := range kinds {
			for crashAfter := 1; crashAfter <= itEpochs; crashAfter += 3 {
				t.Run(fmt.Sprintf("%s/%v/crash@%d", name, kind, crashAfter), func(t *testing.T) {
					gen := mkGen()
					epochs := epochSlices(gen, itEpochs, itBatch)
					o, wantOuts := oracleRun(gen.App(), epochs)

					cfg := itConfig(kind)
					cfg.AsyncCommit = true
					sys, err := New(gen.App(), cfg)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < crashAfter; i++ {
						if err := sys.ProcessBatch(epochs[i]); err != nil {
							t.Fatal(err)
						}
					}
					preCrash := append([]types.Output(nil), sys.Engine.Delivered()...)
					sys.Crash()
					recovered, _, err := sys.Recover()
					if err != nil {
						t.Fatal(err)
					}
					for i := crashAfter; i < itEpochs; i++ {
						if err := recovered.ProcessBatch(epochs[i]); err != nil {
							t.Fatal(err)
						}
					}
					checkState(t, recovered, o)
					checkOutputs(t, append(preCrash, recovered.Engine.Delivered()...), wantOuts)
				})
			}
		}
	}
}

// TestAsyncCommitWithholdsOutputsUntilDurable: outputs of an epoch whose
// commit is still in flight must not be visible; they appear once a later
// marker drains the write.
func TestAsyncCommitOutputGating(t *testing.T) {
	gen := itGenerators()["SL"]()
	cfg := itConfig(ftapi.MSR)
	cfg.AsyncCommit = true
	cfg.CommitEvery = 1
	sys, err := New(gen.App(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 commits asynchronously; its outputs may be pending right
	// after ProcessBatch returns, and must be delivered (drained) by the
	// time epoch 2's marker runs.
	if err := sys.ProcessBatch(epochSlices(gen, 1, itBatch)[0]); err != nil {
		t.Fatal(err)
	}
	delivered1 := len(sys.Engine.Delivered())
	pending1 := sys.Engine.PendingOutputs()
	if delivered1+pending1 != itBatch {
		t.Fatalf("epoch 1 outputs: delivered %d + pending %d != %d", delivered1, pending1, itBatch)
	}
	gen2 := itGenerators()["SL"]()
	all := epochSlices(gen2, 2, itBatch)
	if err := sys.ProcessBatch(all[1]); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Engine.Delivered()); got < itBatch {
		t.Errorf("epoch 1 outputs still unreleased after the next marker: delivered %d", got)
	}
}

// TestCompressionEndToEnd: the compression wrapper (Section VII's log
// compression direction) must be transparent to crash recovery and shrink
// the durable footprint.
func TestCompressionEndToEnd(t *testing.T) {
	gen := itGenerators()["SL"]()
	epochs := epochSlices(gen, itEpochs, itBatch)
	o, wantOuts := oracleRun(gen.App(), epochs)

	cfg := itConfig(ftapi.MSR)
	cfg.Compression = true
	sys, err := New(gen.App(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := sys.ProcessBatch(epochs[i]); err != nil {
			t.Fatal(err)
		}
	}
	pre := append([]types.Output(nil), sys.Engine.Delivered()...)
	sys.Crash()
	recovered, _, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for i := 7; i < itEpochs; i++ {
		if err := recovered.ProcessBatch(epochs[i]); err != nil {
			t.Fatal(err)
		}
	}
	checkState(t, recovered, o)
	checkOutputs(t, append(pre, recovered.Engine.Delivered()...), wantOuts)

	comp, ok := sys.Cfg.Device.(*storage.Compressed)
	if !ok {
		t.Fatal("config did not wrap the device in compression")
	}
	if r := comp.Ratio(); r >= 1 {
		t.Errorf("compression ratio %.3f; event logs should compress", r)
	}
}
