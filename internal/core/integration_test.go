package core

import (
	"fmt"
	"sort"
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/oracle"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// Integration tests: the engine, under every fault-tolerance mechanism and
// every workload, must produce exactly the oracle's final state and output
// set — with and without crashes, at every interesting crash point, and
// across repeated crashes. These are the paper's delivery and correctness
// guarantees (Section II-C) stated as executable checks.

const (
	itBatch  = 200
	itEpochs = 12
)

func itConfig(kind ftapi.Kind) Config {
	return Config{
		RunShape:  RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 4},
		FT:        kind,
		BatchSize: itBatch,
	}
}

// itGenerators returns small-table generator constructors per app.
func itGenerators() map[string]func() workload.Generator {
	return map[string]func() workload.Generator{
		"SL": func() workload.Generator {
			p := workload.DefaultSLParams()
			p.Rows = 2048
			p.Partitions = 4
			p.AbortRatio = 0.1
			return workload.NewSL(p)
		},
		"GS": func() workload.Generator {
			p := workload.DefaultGSParams()
			p.Rows = 2048
			p.Partitions = 4
			p.AbortRatio = 0.1
			return workload.NewGS(p)
		},
		"TP": func() workload.Generator {
			p := workload.DefaultTPParams()
			p.Segments = 1024
			p.Partitions = 4
			return workload.NewTP(p)
		},
	}
}

// epochSlices pregenerates all events split into epochs.
func epochSlices(gen workload.Generator, epochs, batch int) [][]types.Event {
	out := make([][]types.Event, epochs)
	for i := range out {
		out[i] = workload.Batch(gen, batch)
	}
	return out
}

// oracleRun executes all events sequentially and returns outputs plus the
// oracle itself for state comparison.
func oracleRun(app types.App, epochs [][]types.Event) (*oracle.Oracle, []types.Output) {
	o := oracle.New(app)
	var outs []types.Output
	for _, evs := range epochs {
		for _, ev := range evs {
			outs = append(outs, o.Apply(ev))
		}
	}
	return o, outs
}

// checkState compares the engine's store against the oracle over every
// record of every table.
func checkState(t *testing.T, sys *System, o *oracle.Oracle) {
	t.Helper()
	mismatches := 0
	for _, spec := range sys.App.Tables() {
		for row := uint32(0); row < spec.Rows; row++ {
			k := types.Key{Table: spec.ID, Row: row}
			got, want := sys.Engine.Store().Get(k), o.Value(k)
			if got != want {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("state mismatch at %v: engine=%d oracle=%d", k, got, want)
				}
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("... and %d more state mismatches", mismatches-5)
	}
}

// checkOutputs verifies the delivered output set is exactly the oracle's:
// no duplicates, no losses, identical payloads.
func checkOutputs(t *testing.T, delivered []types.Output, want []types.Output) {
	t.Helper()
	got := append([]types.Output(nil), delivered...)
	sort.Slice(got, func(i, j int) bool { return got[i].EventSeq < got[j].EventSeq })
	if len(got) != len(want) {
		t.Errorf("delivered %d outputs, oracle produced %d", len(got), len(want))
	}
	seen := make(map[uint64]bool, len(got))
	for _, o := range got {
		if seen[o.EventSeq] {
			t.Errorf("output for event %d delivered more than once", o.EventSeq)
		}
		seen[o.EventSeq] = true
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i].EventSeq != want[i].EventSeq {
			t.Fatalf("output %d: got event %d, want %d", i, got[i].EventSeq, want[i].EventSeq)
		}
		if got[i].Kind != want[i].Kind || !valsEqual(got[i].Vals, want[i].Vals) {
			t.Errorf("output for event %d differs: got kind=%d vals=%v, want kind=%d vals=%v",
				got[i].EventSeq, got[i].Kind, got[i].Vals, want[i].Kind, want[i].Vals)
		}
	}
}

func valsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNoCrashMatchesOracle runs every app under every mechanism without
// failures and checks state and outputs against the sequential oracle.
func TestNoCrashMatchesOracle(t *testing.T) {
	for name, mkGen := range itGenerators() {
		for _, kind := range ftapi.Kinds() {
			t.Run(fmt.Sprintf("%s/%v", name, kind), func(t *testing.T) {
				gen := mkGen()
				epochs := epochSlices(gen, itEpochs, itBatch)
				o, wantOuts := oracleRun(gen.App(), epochs)

				sys, err := New(gen.App(), itConfig(kind))
				if err != nil {
					t.Fatal(err)
				}
				for _, evs := range epochs {
					if err := sys.ProcessBatch(evs); err != nil {
						t.Fatal(err)
					}
				}
				checkState(t, sys, o)
				// Epoch 12 is a snapshot marker, so even CKPT has released
				// everything.
				if p := sys.Engine.PendingOutputs(); p != 0 {
					t.Errorf("%d outputs still pending at a snapshot boundary", p)
				}
				checkOutputs(t, sys.Engine.Delivered(), wantOuts)
			})
		}
	}
}

// TestCrashRecoveryEquivalence crashes at every epoch boundary, recovers,
// finishes the stream, and checks exactly-once delivery plus final-state
// equality with the oracle.
func TestCrashRecoveryEquivalence(t *testing.T) {
	kinds := []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	for name, mkGen := range itGenerators() {
		for _, kind := range kinds {
			for crashAfter := 1; crashAfter <= itEpochs; crashAfter++ {
				t.Run(fmt.Sprintf("%s/%v/crash@%d", name, kind, crashAfter), func(t *testing.T) {
					gen := mkGen()
					epochs := epochSlices(gen, itEpochs, itBatch)
					o, wantOuts := oracleRun(gen.App(), epochs)

					sys, err := New(gen.App(), itConfig(kind))
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < crashAfter; i++ {
						if err := sys.ProcessBatch(epochs[i]); err != nil {
							t.Fatal(err)
						}
					}
					preCrash := append([]types.Output(nil), sys.Engine.Delivered()...)
					sys.Crash()
					if err := sys.ProcessBatch(nil); err == nil {
						t.Fatal("crashed engine accepted work")
					}

					recovered, report, err := sys.Recover()
					if err != nil {
						t.Fatal(err)
					}
					if got, want := recovered.Engine.Epoch(), uint64(crashAfter); got != want {
						t.Fatalf("recovered to epoch %d, want %d", got, want)
					}
					if report.EventsReplayed != (crashAfter-int(report.SnapshotEpoch))*itBatch {
						t.Errorf("replayed %d events, want %d (snapshot at %d)",
							report.EventsReplayed, (crashAfter-int(report.SnapshotEpoch))*itBatch,
							report.SnapshotEpoch)
					}
					for i := crashAfter; i < itEpochs; i++ {
						if err := recovered.ProcessBatch(epochs[i]); err != nil {
							t.Fatal(err)
						}
					}
					checkState(t, recovered, o)
					if p := recovered.Engine.PendingOutputs(); p != 0 {
						t.Errorf("%d outputs still pending at a snapshot boundary", p)
					}
					all := append(preCrash, recovered.Engine.Delivered()...)
					checkOutputs(t, all, wantOuts)
				})
			}
		}
	}
}

// TestDoubleCrash exercises repeated failures: crash, recover, process one
// more epoch, crash again, recover, finish. This stresses the rebuilt
// runtime state of the dependency-tracking mechanisms.
func TestDoubleCrash(t *testing.T) {
	kinds := []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
	for name, mkGen := range itGenerators() {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%v", name, kind), func(t *testing.T) {
				gen := mkGen()
				epochs := epochSlices(gen, itEpochs, itBatch)
				o, wantOuts := oracleRun(gen.App(), epochs)

				sys, err := New(gen.App(), itConfig(kind))
				if err != nil {
					t.Fatal(err)
				}
				var delivered []types.Output
				next := 0
				step := func(s *System, n int) *System {
					for i := 0; i < n && next < itEpochs; i++ {
						if err := s.ProcessBatch(epochs[next]); err != nil {
							t.Fatal(err)
						}
						next++
					}
					return s
				}
				sys = step(sys, 5)
				delivered = append(delivered, sys.Engine.Delivered()...)
				sys.Crash()
				sys, _, err = sys.Recover()
				if err != nil {
					t.Fatal(err)
				}
				sys = step(sys, 1)
				delivered = append(delivered, sys.Engine.Delivered()...)
				sys.Crash()
				sys, _, err = sys.Recover()
				if err != nil {
					t.Fatal(err)
				}
				sys = step(sys, itEpochs-next)
				delivered = append(delivered, sys.Engine.Delivered()...)

				checkState(t, sys, o)
				checkOutputs(t, delivered, wantOuts)
			})
		}
	}
}
