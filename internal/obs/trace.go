package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span categories. The engine emits CatEpoch spans for the five epoch
// phases (preprocess, construct, execute, commit, snapshot) and CatRecovery
// spans for the four recovery phases (log-read, rebuild, replay, reseat);
// harness binaries add their own categories (e.g. "bench").
const (
	CatEpoch    = "epoch"
	CatRecovery = "recovery"
)

// SpanEvent is one completed span as stored in a lane's ring.
type SpanEvent struct {
	// Name is the phase ("execute", "replay", ...).
	Name string
	// Cat groups spans for trace viewers (CatEpoch, CatRecovery, ...).
	Cat string
	// Lane is the emitting lane (worker / goroutine slot).
	Lane int
	// Epoch tags the span with the epoch it belongs to (0 when n/a).
	Epoch uint64
	// Start is the offset from the tracer's epoch; Dur the span length.
	Start time.Duration
	Dur   time.Duration
	// Args carries extra key/values into the Chrome trace's args pane
	// (stall attribution, critical-path marks). Usually nil.
	Args map[string]any
}

// laneRing is one lane's fixed-capacity span buffer. Each lane has a
// dedicated producer by convention (the engine driver, the pipeline
// builder, one scheduler worker), so the mutex is essentially uncontended
// except while /trace drains.
type laneRing struct {
	mu      sync.Mutex
	buf     []SpanEvent
	n       int    // valid entries, ≤ cap
	next    int    // write cursor
	dropped uint64 // spans overwritten before being drained
}

func (r *laneRing) add(ev SpanEvent) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.dropped++ // overwriting the oldest undrained span
	} else {
		r.n++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.mu.Unlock()
}

// drain appends the ring's contents to out in emission order and resets it.
func (r *laneRing) drain(out []SpanEvent) ([]SpanEvent, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	dropped := r.dropped
	r.n, r.next, r.dropped = 0, 0, 0
	return out, dropped
}

// Tracer is the structured span tracer: per-lane ring buffers of completed
// spans, drained on demand and exportable as Chrome trace_event JSON.
//
// A nil *Tracer is the disabled tracer: Begin returns an inert Span and
// End is a no-op, so instrumented code calls the tracer unconditionally
// and pays only a nil check when tracing is off.
type Tracer struct {
	lanes []laneRing
	epoch time.Time
}

// NewTracer creates a tracer with the given number of lanes, each holding
// up to perLane spans (oldest overwritten first). Lanes beyond the count
// wrap around, so any small non-negative lane index is always valid.
func NewTracer(lanes, perLane int) *Tracer {
	if lanes < 1 {
		lanes = 1
	}
	if perLane < 1 {
		perLane = 4096
	}
	t := &Tracer{lanes: make([]laneRing, lanes), epoch: time.Now()}
	for i := range t.lanes {
		t.lanes[i].buf = make([]SpanEvent, perLane)
	}
	return t
}

// Span is an open span returned by Begin; End completes and records it.
// The zero Span (from a nil tracer) is inert.
type Span struct {
	t     *Tracer
	lane  int
	epoch uint64
	name  string
	cat   string
	start time.Duration
}

// Begin opens a span on the given lane. Safe on a nil tracer.
func (t *Tracer) Begin(lane int, cat, name string, epoch uint64) Span {
	if t == nil {
		return Span{}
	}
	if lane < 0 {
		lane = 0
	}
	return Span{
		t:     t,
		lane:  lane % len(t.lanes),
		epoch: epoch,
		name:  name,
		cat:   cat,
		start: time.Since(t.epoch),
	}
}

// End completes the span and records it in its lane's ring. Safe on the
// zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.lanes[s.lane].add(SpanEvent{
		Name:  s.name,
		Cat:   s.cat,
		Lane:  s.lane,
		Epoch: s.epoch,
		Start: s.start,
		Dur:   time.Since(s.t.epoch) - s.start,
	})
}

// Lanes returns the tracer's lane count (0 for a nil tracer).
func (t *Tracer) Lanes() int {
	if t == nil {
		return 0
	}
	return len(t.lanes)
}

// Drain removes and returns every recorded span, ordered by start time,
// together with the number of spans lost to ring overwrites since the
// previous drain. Safe on a nil tracer (returns nothing).
func (t *Tracer) Drain() ([]SpanEvent, uint64) {
	if t == nil {
		return nil, 0
	}
	var out []SpanEvent
	var dropped uint64
	for i := range t.lanes {
		var d uint64
		out, d = t.lanes[i].drain(out)
		dropped += d
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, dropped
}

// chromeEvent is one trace_event entry in Chrome's JSON trace format
// (ph "X" = complete event; ts/dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace file layout.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// ExportChrome writes the spans as a Chrome trace_event JSON document
// loadable in chrome://tracing and Perfetto. Lane maps to tid; span start
// offsets map to ts.
func ExportChrome(w io.Writer, events []SpanEvent, dropped uint64) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			Ts:   float64(ev.Start.Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  ev.Lane,
		}
		if ev.Epoch != 0 || len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args)+1)
			if ev.Epoch != 0 {
				ce.Args["epoch"] = ev.Epoch
			}
			for k, v := range ev.Args {
				ce.Args[k] = v
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if dropped > 0 {
		out.Metadata = map[string]any{"dropped_spans": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
