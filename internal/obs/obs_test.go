package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"morphstreamr/internal/metrics"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	// Every instrument on the disabled observer must be callable.
	sp := o.Begin(3, CatEpoch, "execute", 7)
	sp.End()
	o.Registry().Counter("epochs").Inc()
	o.Registry().Gauge("depth").Set(5)
	o.Registry().Histogram("lat").Observe(0.1)
	o.Registry().GaugeFunc("fn", func() int64 { return 1 })
	o.Registry().Attach("p", ProviderFunc(func() map[string]any { return nil }))
	if ev, dropped := o.T().Drain(); len(ev) != 0 || dropped != 0 {
		t.Fatalf("nil tracer drained %d events, %d dropped", len(ev), dropped)
	}
	snap := o.Registry().Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %+v", snap)
	}
}

func TestTracerRecordsAndDrains(t *testing.T) {
	tr := NewTracer(2, 16)
	sp := tr.Begin(0, CatEpoch, "execute", 42)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Begin(1, CatRecovery, "replay", 0).End()

	events, dropped := tr.Drain()
	if dropped != 0 {
		t.Fatalf("dropped %d spans from an underfull ring", dropped)
	}
	if len(events) != 2 {
		t.Fatalf("drained %d events, want 2", len(events))
	}
	// Drain orders by start time: the execute span began first.
	if events[0].Name != "execute" || events[0].Cat != CatEpoch || events[0].Epoch != 42 {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[0].Dur < time.Millisecond {
		t.Fatalf("execute span duration %v, want ≥1ms", events[0].Dur)
	}
	if events[1].Name != "replay" || events[1].Lane != 1 {
		t.Fatalf("second event = %+v", events[1])
	}
	// Drain resets the rings.
	if events, _ := tr.Drain(); len(events) != 0 {
		t.Fatalf("second drain returned %d events", len(events))
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Begin(0, CatEpoch, fmt.Sprintf("e%d", i), uint64(i)).End()
	}
	events, dropped := tr.Drain()
	if len(events) != 4 {
		t.Fatalf("ring of 4 drained %d events", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// The survivors are the newest four, in order.
	for i, ev := range events {
		if want := fmt.Sprintf("e%d", i+6); ev.Name != want {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, want)
		}
	}
}

func TestExportChromeIsLoadableJSON(t *testing.T) {
	tr := NewTracer(2, 16)
	tr.Begin(0, CatEpoch, "commit", 3).End()
	tr.Begin(1, CatRecovery, "rebuild", 0).End()
	events, dropped := tr.Drain()

	var buf bytes.Buffer
	if err := ExportChrome(&buf, events, dropped); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph %q, want complete event X", ev.Name, ev.Ph)
		}
	}
	if doc.TraceEvents[0].Args["epoch"] != float64(3) {
		t.Fatalf("commit span lost its epoch tag: %+v", doc.TraceEvents[0])
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.epochs").Add(5)
	r.Counter("engine.epochs").Inc() // same instrument by name
	r.Gauge("committer.depth").Set(3)
	r.GaugeFunc("pull.depth", func() int64 { return 9 })
	h := r.Histogram("epoch.seconds")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	snap := r.Snapshot()
	if snap.Counters["engine.epochs"] != 6 {
		t.Fatalf("counter = %d, want 6", snap.Counters["engine.epochs"])
	}
	if snap.Gauges["committer.depth"] != 3 || snap.Gauges["pull.depth"] != 9 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	st := snap.Histograms["epoch.seconds"]
	if st.Count != 100 || st.Min != 1 || st.Max != 100 {
		t.Fatalf("hist stats = %+v", st)
	}
	if st.Mean != 50.5 {
		t.Fatalf("mean = %g, want 50.5", st.Mean)
	}
	if st.P50 < 45 || st.P50 > 55 {
		t.Fatalf("p50 = %g, want ≈50", st.P50)
	}
	if st.P99 < 95 || st.P99 > 100 {
		t.Fatalf("p99 = %g, want ≈99", st.P99)
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	h := &Histogram{}
	// Fill the whole window with 1s, then half again with 100s: the
	// lifetime min/max span both phases, while quantiles see the window.
	for i := 0; i < histWindow; i++ {
		h.Observe(1)
	}
	for i := 0; i < histWindow; i++ {
		h.Observe(100)
	}
	st := h.Stats()
	if st.Count != 2*histWindow || st.Min != 1 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != 100 || st.P99 != 100 {
		t.Fatalf("window quantiles should only see recent samples: %+v", st)
	}
}

func TestRegistryProviders(t *testing.T) {
	r := NewRegistry()

	b := metrics.NewBytes()
	b.Written("wal", 1000)
	b.Written("snapshot", 500)
	b.Alloc("views", 64)
	r.AttachBytes("bytes", b)

	hlth := metrics.NewHealth()
	hlth.Record(metrics.Incident{Cause: "stall", Healed: true, MTTR: 2 * time.Second, RecoveredEpoch: 17})
	r.AttachHealth("health", hlth)

	var ss SchedStats
	ss.Steals.Add(7)
	ss.Parks.Add(2)
	ss.Register(r)

	snap := r.Snapshot()
	if got := snap.Providers["bytes"]["written_wal"]; got != int64(1000) {
		t.Fatalf("bytes.written_wal = %v", got)
	}
	if got := snap.Providers["bytes"]["total_written"]; got != int64(1500) {
		t.Fatalf("bytes.total_written = %v", got)
	}
	if got := snap.Providers["health"]["healed"]; got != 1 {
		t.Fatalf("health.healed = %v", got)
	}
	if got := snap.Providers["health"]["last_cause"]; got != "stall" {
		t.Fatalf("health.last_cause = %v", got)
	}
	if got := snap.Providers["scheduler"]["steals"]; got != int64(7) {
		t.Fatalf("scheduler.steals = %v", got)
	}

	// The whole snapshot must be JSON-marshalable for /metrics.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.epochs").Add(12)
	r.Gauge("committer.depth").Set(2)
	r.Histogram("epoch.seconds").Observe(0.25)
	var ss SchedStats
	ss.Steals.Add(3)
	ss.Register(r)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"engine_epochs 12\n",
		"committer_depth 2\n",
		"epoch_seconds_count 1\n",
		"epoch_seconds{quantile=\"0.5\"} 0.25\n",
		"scheduler_steals 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom output missing %q:\n%s", want, text)
		}
	}
	// Every line must be "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed prom line %q", line)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	o := NewObserver(4, 64)
	o.Reg.Counter("engine.epochs").Add(9)
	o.Begin(0, CatEpoch, "execute", 1).End()

	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["engine.epochs"] != 9 {
		t.Fatalf("/metrics counters = %+v", snap.Counters)
	}

	if prom := string(get("/metrics?format=prom")); !strings.Contains(prom, "engine_epochs 9") {
		t.Fatalf("prom format missing counter:\n%s", prom)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/trace"), &trace); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(trace.TraceEvents) != 1 {
		t.Fatalf("/trace has %d events, want 1", len(trace.TraceEvents))
	}
	// /trace drains: a second fetch is empty.
	if err := json.Unmarshal(get("/trace"), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.TraceEvents) != 0 {
		t.Fatalf("second /trace drain returned %d events", len(trace.TraceEvents))
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}

	// /tenants is 404 until a serving layer publishes the view, then serves
	// whatever the view returns at fetch time.
	if resp, err := http.Get(srv.URL() + "/tenants"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/tenants without a view: status %d, want 404", resp.StatusCode)
		}
	}
	o.SetView("tenants", func() any {
		return map[string]any{"committed": 7, "tenants": []string{"alpha"}}
	})
	var tv struct {
		Committed int      `json:"committed"`
		Tenants   []string `json:"tenants"`
	}
	if err := json.Unmarshal(get("/tenants"), &tv); err != nil {
		t.Fatalf("/tenants not JSON: %v", err)
	}
	if tv.Committed != 7 || len(tv.Tenants) != 1 || tv.Tenants[0] != "alpha" {
		t.Fatalf("/tenants = %+v", tv)
	}
}

// TestConcurrentSpansWhileDraining is the -race stress: eight workers emit
// spans and bump counters continuously while /trace and /metrics are
// fetched over HTTP, mimicking a live incident being watched.
func TestConcurrentSpansWhileDraining(t *testing.T) {
	o := NewObserver(8, 128)
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			h := o.Reg.Histogram("epoch.seconds")
			c := o.Reg.Counter("engine.epochs")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := o.Begin(lane, CatEpoch, "execute", uint64(i))
				c.Inc()
				h.Observe(float64(i%7) * 0.001)
				sp.End()
			}
		}(w)
	}

	var total int
	for fetch := 0; fetch < 20; fetch++ {
		resp, err := http.Get(srv.URL() + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var trace struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(body, &trace); err != nil {
			t.Fatalf("trace drain %d not JSON: %v", fetch, err)
		}
		total += len(trace.TraceEvents)

		mresp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mbody, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		var snap Snapshot
		if err := json.Unmarshal(mbody, &snap); err != nil {
			t.Fatalf("metrics fetch %d not JSON: %v", fetch, err)
		}
	}
	close(stop)
	wg.Wait()

	if total == 0 {
		t.Fatal("no spans observed across 20 live drains")
	}
	if got := o.Reg.Counter("engine.epochs").Value(); got == 0 {
		t.Fatal("no epochs counted during concurrent load")
	}
}
