package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exact exposition text: name sanitization
// (dots/slashes to underscores, leading digit prefixed, empty name kept as
// a bare underscore, colons legal), native histogram _bucket/_sum series
// (default and configured ladders) plus the legacy quantile lines, and the
// collision handling when sanitization or derived series collapse distinct
// registry names onto one Prometheus series.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("").Add(5)
	r.Counter("9lives").Inc()
	r.Counter("a.b").Add(2)
	r.Counter("engine.epochs").Add(12)
	r.Counter("ns:qualified").Add(3)
	// "lat_count" collides with the histogram "lat"'s derived _count series.
	r.Counter("lat_count").Add(7)
	// "a/b" sanitizes to the same series as the counter "a.b".
	r.Gauge("a/b").Set(1)

	r.Histogram("epoch.seconds").Observe(0.25)
	h := r.Histogram("lat")
	h.Observe(0.5)
	h.Observe(1.5)
	// Configured (non-default) bucket ladder.
	r.HistogramBuckets("small", []float64{1, 10}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")

	// Uptime is wall-clock dependent; check its shape and compare the rest
	// against the golden text exactly.
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "uptime_seconds ") {
		t.Fatalf("last line = %q, want uptime_seconds", last)
	}
	got := strings.Join(lines[:len(lines)-1], "\n") + "\n"

	const golden = `_ 5
_9lives 1
a_b 2
engine_epochs 12
lat_count 7
ns:qualified 3
a_b_2 1
epoch_seconds_bucket{le="0.001"} 0
epoch_seconds_bucket{le="0.0025"} 0
epoch_seconds_bucket{le="0.005"} 0
epoch_seconds_bucket{le="0.01"} 0
epoch_seconds_bucket{le="0.025"} 0
epoch_seconds_bucket{le="0.05"} 0
epoch_seconds_bucket{le="0.1"} 0
epoch_seconds_bucket{le="0.25"} 1
epoch_seconds_bucket{le="0.5"} 1
epoch_seconds_bucket{le="1"} 1
epoch_seconds_bucket{le="2.5"} 1
epoch_seconds_bucket{le="5"} 1
epoch_seconds_bucket{le="10"} 1
epoch_seconds_bucket{le="+Inf"} 1
epoch_seconds_sum 0.25
epoch_seconds_count 1
epoch_seconds_mean 0.25
epoch_seconds{quantile="0.5"} 0.25
epoch_seconds{quantile="0.99"} 0.25
lat_2_bucket{le="0.001"} 0
lat_2_bucket{le="0.0025"} 0
lat_2_bucket{le="0.005"} 0
lat_2_bucket{le="0.01"} 0
lat_2_bucket{le="0.025"} 0
lat_2_bucket{le="0.05"} 0
lat_2_bucket{le="0.1"} 0
lat_2_bucket{le="0.25"} 0
lat_2_bucket{le="0.5"} 1
lat_2_bucket{le="1"} 1
lat_2_bucket{le="2.5"} 2
lat_2_bucket{le="5"} 2
lat_2_bucket{le="10"} 2
lat_2_bucket{le="+Inf"} 2
lat_2_sum 2
lat_2_count 2
lat_2_mean 1
lat_2{quantile="0.5"} 1
lat_2{quantile="0.99"} 1.49
small_bucket{le="1"} 0
small_bucket{le="10"} 1
small_bucket{le="+Inf"} 1
small_sum 3
small_count 1
small_mean 3
small{quantile="0.5"} 3
small{quantile="0.99"} 3
`
	if got != golden {
		t.Errorf("prom exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "_"},
		{"engine.epochs", "engine_epochs"},
		{"sched/steals", "sched_steals"},
		{"9lives", "_9lives"},
		{"ns:metric", "ns:metric"},
		{"ok_name", "ok_name"},
		{"sp ace-dash", "sp_ace_dash"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSeriesDedupFamily: claiming a base must reserve its whole derived
// family, and a later claimant whose family overlaps any reserved series
// must be suffixed as a unit.
func TestSeriesDedupFamily(t *testing.T) {
	d := seriesDedup{}
	if got := d.claim("x", "_count", "_mean"); got != "x" {
		t.Fatalf("first claim = %q", got)
	}
	// Plain series colliding with a derived one from the first family.
	if got := d.claim("x_count"); got != "x_count_2" {
		t.Errorf("x_count claim = %q, want x_count_2", got)
	}
	// Whole-family collision: base free but a derived series taken.
	if got := d.claim("x", "_count"); got != "x_2" {
		t.Errorf("second x family claim = %q, want x_2", got)
	}
	if got := d.claim("x"); got != "x_3" {
		t.Errorf("third x claim = %q, want x_3", got)
	}
}
