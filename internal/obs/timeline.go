package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// TimelineEvent is one entry in the process timeline: a supervisor state
// transition, a serve-layer heal, an SLO breach edge, a Slowdown burst, a
// journey-derived stage-latency sample — anything a human reconstructing
// an incident wants on one ordered axis.
type TimelineEvent struct {
	// AtMs is the offset from the timeline epoch in milliseconds.
	AtMs float64 `json:"at_ms"`
	// Wall is the wall-clock time, RFC3339Nano (for cross-host merges).
	Wall string `json:"wall"`
	// Source names the emitting subsystem ("supervisor", "serve", "slo",
	// "journey", ...).
	Source string `json:"source"`
	// Kind is the event class ("state", "heal-begin", "heal-end",
	// "slowdown", "breach-begin", "breach-end", "stage-p99", ...).
	Kind string `json:"kind"`
	// Detail is the one-line human rendering.
	Detail string `json:"detail"`
	// Fields carries structured extras (MTTR, cause, per-stage p99s).
	Fields map[string]any `json:"fields,omitempty"`

	at time.Time
}

// anomalyKinds mark events that open (or extend) an incident; everything
// else is context that is merged into whichever incident covers it.
var anomalyKinds = map[string]bool{
	"heal-begin":   true,
	"heal-end":     true,
	"heal-failed":  true,
	"breach-begin": true,
	"breach-end":   true,
	"state":        true,
	"kill":         true,
	"shard-dead":   true,
}

// Timeline is a bounded, thread-safe, append-only event log with a fixed
// epoch, shared by every subsystem through the Observer. A nil *Timeline
// is the disabled timeline: Add is a no-op, Events returns nothing — the
// same nil-object contract as the rest of the package.
type Timeline struct {
	mu      sync.Mutex
	epoch   time.Time
	buf     []TimelineEvent
	n       int // valid entries, ≤ cap
	next    int // write cursor
	dropped uint64
	last    map[string]time.Time // AddLimited rate-limit state
}

// NewTimeline creates a timeline holding up to capacity events (oldest
// overwritten first; capacity < 1 defaults to 4096).
func NewTimeline(capacity int) *Timeline {
	if capacity < 1 {
		capacity = 4096
	}
	return &Timeline{
		epoch: time.Now(),
		buf:   make([]TimelineEvent, capacity),
		last:  make(map[string]time.Time),
	}
}

// Add appends one event. Nil-safe.
func (t *Timeline) Add(source, kind, detail string, fields map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.add(now, source, kind, detail, fields)
	t.mu.Unlock()
}

// AddLimited appends one event unless another with the same source+kind
// landed within minGap (burst suppression for high-rate signals like
// Slowdown frames). It reports whether the event was recorded. Nil-safe.
func (t *Timeline) AddLimited(minGap time.Duration, source, kind, detail string, fields map[string]any) bool {
	if t == nil {
		return false
	}
	now := time.Now()
	key := source + "\x00" + kind
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.last[key]; ok && now.Sub(prev) < minGap {
		t.dropped++
		return false
	}
	t.last[key] = now
	t.add(now, source, kind, detail, fields)
	return true
}

// add appends under t.mu.
func (t *Timeline) add(now time.Time, source, kind, detail string, fields map[string]any) {
	ev := TimelineEvent{
		AtMs:   float64(now.Sub(t.epoch)) / float64(time.Millisecond),
		Wall:   now.Format(time.RFC3339Nano),
		Source: source,
		Kind:   kind,
		Detail: detail,
		Fields: fields,
		at:     now,
	}
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Events returns a time-ordered snapshot of the retained events (the log
// is not drained; /incidents is a view, not a sink). Nil-safe.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TimelineEvent, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool { return out[a].AtMs < out[b].AtMs })
	return out
}

// Dropped returns how many events were lost to ring overwrites or rate
// limiting. Nil-safe.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Epoch returns the timeline's zero offset (zero time when disabled).
func (t *Timeline) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Incident is one reconstructed incident: a cluster of anomaly events
// (heals, state transitions, SLO breach edges) with every context event
// that falls inside its span merged in, ordered.
type Incident struct {
	Seq     int     `json:"seq"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	// Open reports whether the incident's last anomaly is a begin-edge
	// with no matching end (still in progress at snapshot time).
	Open bool `json:"open"`
	// Trigger is the first anomaly event's source/kind/detail line.
	Trigger string `json:"trigger"`
	// Events is the merged, ordered event list (anomalies + context).
	Events []TimelineEvent `json:"events"`
}

// BuildIncidents reconstructs incidents from a time-ordered event list:
// anomaly events closer than quiet form one incident; context events
// (slowdown bursts, journey stage-p99 samples) within an incident's span
// are merged into it. Events outside every incident are dropped from the
// incident view (the flat event list remains available alongside).
func BuildIncidents(events []TimelineEvent, quiet time.Duration) []Incident {
	quietMs := float64(quiet) / float64(time.Millisecond)
	if quietMs <= 0 {
		quietMs = 1000
	}
	var incidents []Incident
	var cur *Incident
	for _, ev := range events {
		if !anomalyKinds[ev.Kind] {
			continue
		}
		if cur != nil && ev.AtMs-cur.EndMs <= quietMs {
			cur.EndMs = ev.AtMs
			continue
		}
		if cur != nil {
			incidents = append(incidents, *cur)
		}
		cur = &Incident{
			Seq:     len(incidents) + 1,
			StartMs: ev.AtMs,
			EndMs:   ev.AtMs,
			Trigger: ev.Source + "/" + ev.Kind + ": " + ev.Detail,
		}
	}
	if cur != nil {
		incidents = append(incidents, *cur)
	}
	// Merge every event inside each incident's span (with a small margin
	// so context immediately around the edges is kept), and decide open
	// incidents by unmatched begin-edges.
	const marginMs = 50
	for i := range incidents {
		inc := &incidents[i]
		depth := 0
		for _, ev := range events {
			if ev.AtMs < inc.StartMs-marginMs || ev.AtMs > inc.EndMs+marginMs {
				continue
			}
			inc.Events = append(inc.Events, ev)
			switch ev.Kind {
			case "heal-begin", "breach-begin":
				depth++
			case "heal-end", "heal-failed", "breach-end":
				depth--
			}
		}
		inc.Open = depth > 0
	}
	return incidents
}

// IncidentReport is the /incidents document: the reconstructed incidents,
// the flat ordered event list they were built from, and ring accounting.
type IncidentReport struct {
	Incidents []Incident      `json:"incidents"`
	Events    []TimelineEvent `json:"events"`
	Dropped   uint64          `json:"dropped_events"`
}

// Report builds the /incidents document with the given quiet gap.
func (t *Timeline) Report(quiet time.Duration) IncidentReport {
	events := t.Events()
	return IncidentReport{
		Incidents: BuildIncidents(events, quiet),
		Events:    events,
		Dropped:   t.Dropped(),
	}
}

// ExportTimelineChrome writes the timeline as a Chrome trace_event JSON
// document: every event an instant ("i") on the lane of its source, and
// every reconstructed incident a complete span ("X") on lane 0 — so a
// kill-and-heal renders as one bar with the state flips, heals, breach
// edges, and latency samples dotted inside it.
func ExportTimelineChrome(w io.Writer, rep IncidentReport) error {
	lanes := map[string]int{"incident": 0}
	laneOf := func(src string) int {
		if id, ok := lanes[src]; ok {
			return id
		}
		id := len(lanes)
		lanes[src] = id
		return id
	}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(rep.Events)+len(rep.Incidents))}
	for _, inc := range rep.Incidents {
		dur := (inc.EndMs - inc.StartMs) * 1e3
		if dur <= 0 {
			dur = 1
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: inc.Trigger,
			Cat:  "incident",
			Ph:   "X",
			Ts:   inc.StartMs * 1e3,
			Dur:  dur,
			Pid:  1,
			Tid:  0,
			Args: map[string]any{"seq": inc.Seq, "open": inc.Open, "events": len(inc.Events)},
		})
	}
	for _, ev := range rep.Events {
		ce := chromeEvent{
			Name: ev.Kind + ": " + ev.Detail,
			Cat:  ev.Source,
			Ph:   "i",
			Ts:   ev.AtMs * 1e3,
			Pid:  1,
			Tid:  laneOf(ev.Source),
		}
		if len(ev.Fields) > 0 {
			ce.Args = ev.Fields
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if rep.Dropped > 0 {
		out.Metadata = map[string]any{"dropped_events": rep.Dropped}
	}
	return json.NewEncoder(w).Encode(&out)
}
