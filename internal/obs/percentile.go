package obs

import (
	"sort"
	"time"
)

// Percentile reads the q-quantile (0 ≤ q ≤ 1) from an ascending sample
// slice using linear interpolation between closest ranks (the R-7 /
// "numpy default" estimator): position (n-1)·q, fractional positions
// interpolated between the surrounding samples. Unlike the naive
// index-truncation formulas it replaces (`s[int(q*n)]`, `s[n*99/100]`),
// it is unbiased at small n — the p99 of 100 samples is no longer simply
// the maximum — and every caller in the repo (obs histograms, the serve
// chaos harness, cmd/journeybench) shares this one definition.
//
// An empty slice reads as 0.
func Percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// PercentileNearest is the standard nearest-rank definition — the
// ⌈q·n⌉-th smallest sample — for callers that must report an actually
// observed value rather than an interpolated one.
func PercentileNearest(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(q*float64(n)+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// DurPercentile sorts a copy of durs and returns the interpolated
// q-quantile as a duration. It is the duration-typed convenience wrapper
// the serve chaos harness and journeybench use on ack-lag samples.
func DurPercentile(durs []time.Duration, q float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	fs := make([]float64, len(durs))
	for i, d := range durs {
		fs[i] = float64(d)
	}
	sort.Float64s(fs)
	return time.Duration(Percentile(fs, q))
}
