// Package obs is the observability layer: a structured span tracer for
// epoch and recovery phases, a metrics registry (counters, gauges,
// sliding-window histograms, attached byte/health/scheduler providers),
// and a live telemetry HTTP endpoint exposing /metrics, /trace, and
// net/http/pprof.
//
// The package is built around the nil-object pattern: a nil *Observer,
// *Tracer, or *Registry is the disabled instrument, and every method is
// safe (and near-free) to call on it. Instrumented code therefore calls
// unconditionally — there is no "if enabled" branching in the engine,
// scheduler, or supervisor hot paths, and with observability off the cost
// is a nil check.
package obs

import "sync"

// Observer bundles the halves of the layer so components thread one
// pointer. A nil *Observer disables all of them.
type Observer struct {
	Reg    *Registry
	Tracer *Tracer
	TL     *Timeline

	viewMu sync.Mutex
	views  map[string]func() any
}

// NewObserver creates an observer with a fresh registry, a tracer of the
// given shape (see NewTracer), and an incident timeline.
func NewObserver(lanes, spansPerLane int) *Observer {
	return &Observer{
		Reg:    NewRegistry(),
		Tracer: NewTracer(lanes, spansPerLane),
		TL:     NewTimeline(0),
	}
}

// Registry returns the observer's registry, nil when disabled.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// T returns the observer's tracer, nil when disabled.
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Timeline returns the observer's incident timeline, nil when disabled.
func (o *Observer) Timeline() *Timeline {
	if o == nil {
		return nil
	}
	return o.TL
}

// Begin opens a span on the observer's tracer; inert when disabled.
func (o *Observer) Begin(lane int, cat, name string, epoch uint64) Span {
	return o.T().Begin(lane, cat, name, epoch)
}

// SetView registers (or replaces) a named pull-style view: fn is invoked
// at serve time and its result rendered as JSON. Views let subsystems
// publish structured reports (the recovery profile behind /recovery)
// without obs importing them — the dependency points the other way.
// Nil-safe; a nil fn removes the view.
func (o *Observer) SetView(name string, fn func() any) {
	if o == nil {
		return
	}
	o.viewMu.Lock()
	defer o.viewMu.Unlock()
	if fn == nil {
		delete(o.views, name)
		return
	}
	if o.views == nil {
		o.views = make(map[string]func() any)
	}
	o.views[name] = fn
}

// View returns the named view's current value. ok is false when the view
// is unset (or the observer disabled).
func (o *Observer) View(name string) (any, bool) {
	if o == nil {
		return nil, false
	}
	o.viewMu.Lock()
	fn := o.views[name]
	o.viewMu.Unlock()
	if fn == nil {
		return nil, false
	}
	return fn(), true
}
