package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTracerDrainRace exercises Drain directly against concurrent
// Begin/End on every lane (no HTTP in between) and checks the conservation
// invariant behind the dropped-span accounting (DESIGN.md §3c): each
// emitted span is either delivered by some drain or counted in a drain's
// dropped total — never both, never neither. Run under -race this also
// proves the lane rings need no external synchronisation.
func TestTracerDrainRace(t *testing.T) {
	const (
		lanes    = 4
		perLane  = 32 // small rings force overwrites, so dropped > 0
		spansPer = 2000
	)
	tr := NewTracer(lanes, perLane)

	doneEmitting := make(chan struct{})
	var emitted atomic.Uint64
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				tr.Begin(lane, CatRecovery, "replay", uint64(i)).End()
				emitted.Add(1)
			}
		}(lane)
	}

	done := make(chan struct{})
	var drained, dropped uint64
	go func() {
		defer close(done)
		for {
			evs, d := tr.Drain()
			drained += uint64(len(evs))
			dropped += d
			select {
			case <-doneEmitting:
			default:
				continue
			}
			// Producers finished: one final drain collects the remainder.
			evs, d = tr.Drain()
			drained += uint64(len(evs))
			dropped += d
			return
		}
	}()
	wg.Wait()
	close(doneEmitting)
	<-done

	if got := emitted.Load(); drained+dropped != got {
		t.Fatalf("span accounting leaked: drained %d + dropped %d != emitted %d", drained, dropped, got)
	}
	if drained == 0 {
		t.Fatal("no spans drained under concurrent load")
	}
}
