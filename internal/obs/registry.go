package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"morphstreamr/internal/metrics"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// usable; registry-issued counters are shared by pointer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depth, live bytes).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histWindow is the sliding-window size of a Histogram: quantiles are
// computed over the most recent histWindow observations.
const histWindow = 1024

// DefBuckets is the default bucket ladder for histograms whose bounds are
// not configured explicitly: latency-shaped, in seconds, matching the
// Prometheus client default.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram records duration-like observations in a sliding window and
// reports count/min/max/mean over the whole run plus p50/p99 over the
// window, and — for the native Prometheus exposition — cumulative counts
// over a fixed bucket ladder (lifetime, like Prometheus counters).
// Observation is mutex-guarded but cheap (one slot write + one bucket
// increment).
type Histogram struct {
	mu     sync.Mutex
	window [histWindow]float64
	n      int // valid entries in window, ≤ histWindow
	next   int // write cursor
	count  int64
	sum    float64
	min    float64
	max    float64

	// bounds are the ascending upper bucket bounds (exclusive of the
	// implicit +Inf bucket); bcounts[i] counts observations ≤ bounds[i],
	// non-cumulative per slot, with bcounts[len(bounds)] the +Inf slot.
	bounds  []float64
	bcounts []int64
}

// Observe records one sample. Units are the caller's choice; the engine
// records seconds.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.window[h.next] = v
	h.next = (h.next + 1) % histWindow
	if h.n < histWindow {
		h.n++
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.bounds == nil {
		h.bounds = DefBuckets
		h.bcounts = make([]int64, len(h.bounds)+1)
	}
	h.bcounts[sort.SearchFloat64s(h.bounds, v)]++
	h.mu.Unlock()
}

// setBuckets configures the bucket ladder. Only effective before the
// first observation; afterwards the recorded ladder is immutable (bucket
// counts are lifetime-cumulative, so re-bucketing would lie).
func (h *Histogram) setBuckets(bounds []float64) {
	if h == nil || len(bounds) == 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 {
		h.bounds = append([]float64(nil), bounds...)
		sort.Float64s(h.bounds)
		h.bcounts = make([]int64, len(h.bounds)+1)
	}
	h.mu.Unlock()
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// HistBucket is one cumulative bucket of a histogram snapshot: Count
// observations were ≤ LE. The implicit +Inf bucket is not materialised
// here (its cumulative count is the lifetime Count).
type HistBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistStats is a histogram snapshot: lifetime count/sum/min/max/mean,
// windowed p50/p99, and the lifetime cumulative bucket counts.
type HistStats struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Stats computes the snapshot.
func (h *Histogram) Stats() HistStats {
	if h == nil {
		return HistStats{}
	}
	h.mu.Lock()
	st := HistStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		st.Mean = h.sum / float64(h.count)
		st.Buckets = make([]HistBucket, len(h.bounds))
		var cum int64
		for i, le := range h.bounds {
			cum += h.bcounts[i]
			st.Buckets[i] = HistBucket{LE: le, Count: cum}
		}
	}
	samples := make([]float64, h.n)
	copy(samples, h.window[:h.n])
	h.mu.Unlock()
	if len(samples) > 0 {
		sort.Float64s(samples)
		st.P50 = Percentile(samples, 0.50)
		st.P99 = Percentile(samples, 0.99)
	}
	return st
}

// Provider contributes a named subtree to the registry snapshot; Bytes and
// Health attach through adapters implementing it.
type Provider interface {
	// Collect returns the provider's current values as a JSON-marshalable
	// map of leaf metrics (numbers or strings).
	Collect() map[string]any
}

// ProviderFunc adapts a closure to Provider.
type ProviderFunc func() map[string]any

// Collect implements Provider.
func (f ProviderFunc) Collect() map[string]any { return f() }

// Registry is the process-wide metrics registry: named counters, gauges,
// and histograms created on demand, plus attached providers (byte
// accounting, incident log, scheduler stats). A nil *Registry is the
// disabled registry — every accessor returns a nil instrument whose
// methods are no-ops, so instrumented code never branches on enablement.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	gaugeFns  map[string]func() int64
	providers map[string]Provider
	startedAt time.Time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		gaugeFns:  make(map[string]func() int64),
		providers: make(map[string]Provider),
		startedAt: time.Now(),
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge sampled at snapshot time (e.g.
// committer queue depth read from the mechanism). Nil-safe.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns (creating if needed) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramBuckets returns (creating if needed) the named histogram with
// the given Prometheus bucket bounds. Bounds only take effect if the
// histogram has not observed yet (bucket counts are lifetime-cumulative);
// an already-observed histogram keeps its ladder. Nil-safe.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	h := r.Histogram(name)
	h.setBuckets(bounds)
	return h
}

// Attach registers a provider under a name; its Collect map appears as a
// subtree of the snapshot. Nil-safe.
func (r *Registry) Attach(name string, p Provider) {
	if r == nil || p == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[name] = p
}

// AttachBytes publishes a metrics.Bytes tracker under the given name:
// per-category written bytes plus total/live/peak.
func (r *Registry) AttachBytes(name string, b *metrics.Bytes) {
	if b == nil {
		return
	}
	r.Attach(name, ProviderFunc(func() map[string]any {
		out := map[string]any{
			"total_written": b.TotalWritten(),
			"live":          b.Live(),
			"peak_live":     b.PeakLive(),
		}
		for _, cat := range b.Categories() {
			out["written_"+cat] = b.WrittenBy(cat)
		}
		return out
	}))
}

// AttachHealth publishes a metrics.Health incident log under the given
// name: incident/healed counts, mean MTTR, and the most recent incident.
func (r *Registry) AttachHealth(name string, h *metrics.Health) {
	if h == nil {
		return
	}
	r.Attach(name, ProviderFunc(func() map[string]any {
		incs := h.Incidents()
		out := map[string]any{
			"incidents":         len(incs),
			"healed":            h.Healed(),
			"mean_mttr_seconds": h.MeanMTTR().Seconds(),
		}
		if len(incs) > 0 {
			last := incs[len(incs)-1]
			out["last_cause"] = last.Cause
			out["last_mttr_seconds"] = last.MTTR.Seconds()
			out["last_healed"] = last.Healed
			out["last_recovered_epoch"] = last.RecoveredEpoch
		}
		return out
	}))
}

// Snapshot is a point-in-time view of every registered metric, shaped for
// JSON.
type Snapshot struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Counters      map[string]int64          `json:"counters"`
	Gauges        map[string]int64          `json:"gauges"`
	Histograms    map[string]HistStats      `json:"histograms"`
	Providers     map[string]map[string]any `json:"providers"`
}

// Snapshot collects current values. Nil-safe (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStats{},
		Providers:  map[string]map[string]any{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	providers := make(map[string]Provider, len(r.providers))
	for k, v := range r.providers {
		providers[k] = v
	}
	snap.UptimeSeconds = time.Since(r.startedAt).Seconds()
	r.mu.Unlock()

	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, fn := range gaugeFns {
		snap.Gauges[k] = fn()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Stats()
	}
	for k, p := range providers {
		snap.Providers[k] = p.Collect()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// seriesDedup keeps the exposition free of duplicate series. Sanitisation
// is lossy — "a.b" and "a/b" both map to "a_b" — and a histogram's derived
// series ("x_count") can collide with an unrelated counter of that exact
// name; Prometheus rejects an exposition containing the same series twice,
// so later claimants take a numeric suffix on their base name.
type seriesDedup map[string]struct{}

// claim reserves base plus every base+suffix series, suffixing base with
// _2, _3, ... until the whole family is free, and returns the final base.
func (d seriesDedup) claim(base string, derived ...string) string {
	free := func(b string) bool {
		if _, taken := d[b]; taken {
			return false
		}
		for _, suf := range derived {
			if _, taken := d[b+suf]; taken {
				return false
			}
		}
		return true
	}
	name := base
	for i := 2; !free(name); i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	d[name] = struct{}{}
	for _, suf := range derived {
		d[name+suf] = struct{}{}
	}
	return name
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (untyped samples; histogram quantiles as {quantile="..."} series).
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	seen := seriesDedup{}
	var names []string
	for k := range snap.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", seen.claim(promName(k)), snap.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range snap.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", seen.claim(promName(k)), snap.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range snap.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		st := snap.Histograms[k]
		base := seen.claim(promName(k), "_count", "_mean", "_sum", "_bucket")
		// Native Prometheus histogram series first (_bucket cumulative
		// counts ending at the implicit +Inf, then _sum and _count), then
		// the legacy windowed-quantile gauges.
		for _, b := range st.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", base, b.LE, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n", base, st.Count, base, st.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_mean %g\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.99\"} %g\n",
			base, st.Count, base, st.Mean, base, st.P50, base, st.P99); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range snap.Providers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		sub := snap.Providers[k]
		var keys []string
		for kk := range sub {
			keys = append(keys, kk)
		}
		sort.Strings(keys)
		for _, kk := range keys {
			switch v := sub[kk].(type) {
			case int:
				fmt.Fprintf(w, "%s %d\n", seen.claim(promName(k)+"_"+promName(kk)), v)
			case int64:
				fmt.Fprintf(w, "%s %d\n", seen.claim(promName(k)+"_"+promName(kk)), v)
			case uint64:
				fmt.Fprintf(w, "%s %d\n", seen.claim(promName(k)+"_"+promName(kk)), v)
			case float64:
				fmt.Fprintf(w, "%s %g\n", seen.claim(promName(k)+"_"+promName(kk)), v)
				// strings and bools are JSON-only; Prometheus samples are numeric
			}
		}
	}
	_, err := fmt.Fprintf(w, "%s %g\n", seen.claim("uptime_seconds"), snap.UptimeSeconds)
	return err
}

// promName maps a registry name ("engine.epochs", "sched/steals") to a
// legal Prometheus metric name: illegal characters become underscores, a
// leading digit gets an underscore prefix (rather than being destroyed),
// and the empty name becomes a bare underscore.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	out := make([]byte, 0, len(name)+1)
	if c := name[0]; c >= '0' && c <= '9' {
		out = append(out, '_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// SchedStats is the scheduler's contention-counter block: pure atomics so
// workers touch it wait-free on the hot path. A nil *SchedStats is
// disabled. Register it on a registry via Register.
type SchedStats struct {
	Steals     atomic.Int64 // tasks taken from another worker's deque
	StealFails atomic.Int64 // sweep passes that found nothing to steal
	Parks      atomic.Int64 // times a worker parked awaiting work
	Wakes      atomic.Int64 // times a parked worker was woken
	Stalls     atomic.Int64 // stall-detector trips
	Panics     atomic.Int64 // isolated task panics
	Resizes    atomic.Int64 // worker-pool resizes (adaptive controller morphs)
}

// Register attaches the stats block to a registry under the "scheduler"
// provider name.
func (s *SchedStats) Register(r *Registry) {
	if s == nil {
		return
	}
	r.Attach("scheduler", ProviderFunc(func() map[string]any {
		return map[string]any{
			"steals":      s.Steals.Load(),
			"steal_fails": s.StealFails.Load(),
			"parks":       s.Parks.Load(),
			"wakes":       s.Wakes.Load(),
			"stalls":      s.Stalls.Load(),
			"panics":      s.Panics.Load(),
			"resizes":     s.Resizes.Load(),
		}
	}))
}
