package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live telemetry endpoint bound to an observer.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoint on addr (e.g. "127.0.0.1:0" for an
// ephemeral port). Routes:
//
//	/metrics        registry snapshot as JSON; ?format=prom for the
//	                Prometheus text exposition format
//	/trace          drain the tracer rings as Chrome trace_event JSON
//	/recovery       the most recent recovery profile (per-worker
//	                virtual-time decomposition, critical path, top
//	                stalls), published via SetView("recovery", ...)
//	/tenants        the serving layer's per-tenant admission state
//	                (watermarks, queue depths, throttle counters),
//	                published via SetView("tenants", ...)
//	/slo            the current SLO snapshot (compliance, error budget,
//	                multi-window burn rates), published via
//	                SetView("slo", ...)
//	/incidents      the reconstructed incident timeline (supervisor
//	                transitions, heals, Slowdown bursts, SLO breach
//	                edges, journey-derived stage latencies) as ordered
//	                JSON; ?format=chrome for a Chrome trace; ?quiet_ms=N
//	                tunes the incident clustering gap
//	/debug/pprof/*  the standard runtime profiles
//
// The handler holds only the observer pointer, so metrics published after
// Serve starts are visible. /trace is destructive (it drains the rings);
// concurrent span emission during a drain is safe.
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := o.Registry()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events, dropped := o.T().Drain()
		w.Header().Set("Content-Type", "application/json")
		_ = ExportChrome(w, events, dropped)
	})
	mux.HandleFunc("/recovery", func(w http.ResponseWriter, r *http.Request) {
		v, ok := o.View("recovery")
		if !ok {
			http.Error(w, "no recovery profile recorded yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		v, ok := o.View("tenants")
		if !ok {
			http.Error(w, "no serving layer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		v, ok := o.View("slo")
		if !ok {
			http.Error(w, "no SLO monitor attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/incidents", func(w http.ResponseWriter, r *http.Request) {
		tl := o.Timeline()
		if tl == nil {
			http.Error(w, "no timeline recorded", http.StatusNotFound)
			return
		}
		quiet := time.Second
		if q := r.URL.Query().Get("quiet_ms"); q != "" {
			if ms, err := time.ParseDuration(q + "ms"); err == nil && ms > 0 {
				quiet = ms
			}
		}
		rep := tl.Report(quiet)
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = ExportTimelineChrome(w, rep)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// URL returns the server's base URL (http://host:port).
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server, waiting briefly for in-flight handlers.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
