package obs

import (
	"sync"
	"time"
)

// SLOConfig describes one latency service-level objective: Target fraction
// of events must be acknowledged within Objective.
type SLOConfig struct {
	// Name labels the objective ("ack-latency").
	Name string
	// Objective is the latency threshold; an observation above it burns
	// error budget.
	Objective time.Duration
	// Target is the goal fraction of good events (e.g. 0.999). Values
	// outside (0, 1) default to 0.99.
	Target float64
	// Windows are the sliding burn-rate windows (multi-window alerting à
	// la the SRE workbook). Defaults to 1m / 5m / 30m. Windows longer than
	// the monitor's retention (1h) are clamped.
	Windows []time.Duration
	// BreachBurn is the burn rate on the *shortest* window at which the
	// monitor declares a breach (posting breach-begin/breach-end to the
	// timeline). Defaults to 14 (the workbook's page-level fast burn).
	BreachBurn float64
	// Timeline, when set, receives breach-begin / breach-end events.
	Timeline *Timeline
}

// sloRetention is how much per-second history the monitor keeps; windows
// are clamped to it.
const sloRetention = 3600 * time.Second

// sloBucket is one second of good/bad counts.
type sloBucket struct {
	sec  int64 // unix second this bucket currently represents
	good int64
	bad  int64
}

// SLOMonitor tracks one latency objective from a stream of observed
// end-to-end latencies: lifetime compliance and remaining error budget,
// plus burn rates over sliding windows (per-second ring buckets). A nil
// *SLOMonitor is the disabled monitor — Observe is a no-op — matching the
// package's nil-object contract.
type SLOMonitor struct {
	cfg SLOConfig

	mu        sync.Mutex
	buckets   []sloBucket
	total     int64
	totalBad  int64
	startedAt time.Time
	breached  bool
	breaches  int64
}

// NewSLOMonitor creates a monitor for the given objective.
func NewSLOMonitor(cfg SLOConfig) *SLOMonitor {
	if cfg.Name == "" {
		cfg.Name = "slo"
	}
	if cfg.Objective <= 0 {
		cfg.Objective = 100 * time.Millisecond
	}
	if cfg.Target <= 0 || cfg.Target >= 1 {
		cfg.Target = 0.99
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	for i, w := range cfg.Windows {
		if w <= 0 {
			cfg.Windows[i] = time.Minute
		}
		if cfg.Windows[i] > sloRetention {
			cfg.Windows[i] = sloRetention
		}
	}
	if cfg.BreachBurn <= 0 {
		cfg.BreachBurn = 14
	}
	return &SLOMonitor{
		cfg:       cfg,
		buckets:   make([]sloBucket, int(sloRetention/time.Second)),
		startedAt: time.Now(),
	}
}

// Observe records one end-to-end latency. Nil-safe.
func (m *SLOMonitor) Observe(lat time.Duration) {
	if m == nil {
		return
	}
	now := time.Now()
	sec := now.Unix()
	bad := lat > m.cfg.Objective

	m.mu.Lock()
	b := &m.buckets[sec%int64(len(m.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	if bad {
		b.bad++
		m.totalBad++
	} else {
		b.good++
	}
	m.total++
	// Breach detection on the shortest window, evaluated inline so the
	// breach edge lands on the timeline at the moment it happens rather
	// than at the next /slo scrape.
	short := m.cfg.Windows[0]
	for _, w := range m.cfg.Windows[1:] {
		if w < short {
			short = w
		}
	}
	good, badN := m.windowCounts(sec, short)
	burn := burnRate(good, badN, m.cfg.Target)
	breached := good+badN > 0 && burn >= m.cfg.BreachBurn
	edge := breached != m.breached
	m.breached = breached
	if edge && breached {
		m.breaches++
	}
	tl := m.cfg.Timeline
	m.mu.Unlock()

	if edge {
		kind := "breach-end"
		if breached {
			kind = "breach-begin"
		}
		tl.Add("slo", kind, m.cfg.Name, map[string]any{
			"burn":      burn,
			"window_ms": short.Milliseconds(),
		})
	}
}

// windowCounts sums good/bad over the trailing window ending at nowSec.
// Caller holds m.mu.
func (m *SLOMonitor) windowCounts(nowSec int64, w time.Duration) (good, bad int64) {
	secs := int64(w / time.Second)
	if secs < 1 {
		secs = 1
	}
	for s := nowSec - secs + 1; s <= nowSec; s++ {
		b := &m.buckets[s%int64(len(m.buckets))]
		if b.sec == s {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burnRate is the error-budget burn multiplier: observed bad fraction over
// the allowed bad fraction. 1.0 = spending budget exactly at the rate that
// exhausts it at the SLO period's end; 14 = paging-fast.
func burnRate(good, bad int64, target float64) float64 {
	n := good + bad
	if n == 0 {
		return 0
	}
	return (float64(bad) / float64(n)) / (1 - target)
}

// SLOWindow is one sliding window's burn-rate reading.
type SLOWindow struct {
	WindowMs int64   `json:"window_ms"`
	Good     int64   `json:"good"`
	Bad      int64   `json:"bad"`
	Burn     float64 `json:"burn"`
}

// SLOSnapshot is the /slo document.
type SLOSnapshot struct {
	Name        string  `json:"name"`
	ObjectiveMs float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	Total       int64   `json:"total"`
	Bad         int64   `json:"bad"`
	// Compliance is the lifetime good fraction (1 when nothing observed).
	Compliance float64 `json:"compliance"`
	// BudgetRemaining is the unspent lifetime error budget fraction
	// (negative once the SLO is blown outright).
	BudgetRemaining float64     `json:"budget_remaining"`
	Windows         []SLOWindow `json:"windows"`
	Breached        bool        `json:"breached"`
	Breaches        int64       `json:"breaches"`
	UptimeSeconds   float64     `json:"uptime_seconds"`
}

// Snapshot reads the current SLO state. Nil-safe (zero snapshot).
func (m *SLOMonitor) Snapshot() SLOSnapshot {
	if m == nil {
		return SLOSnapshot{Compliance: 1, BudgetRemaining: 1}
	}
	sec := time.Now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := SLOSnapshot{
		Name:            m.cfg.Name,
		ObjectiveMs:     float64(m.cfg.Objective) / float64(time.Millisecond),
		Target:          m.cfg.Target,
		Total:           m.total,
		Bad:             m.totalBad,
		Compliance:      1,
		BudgetRemaining: 1,
		Breached:        m.breached,
		Breaches:        m.breaches,
		UptimeSeconds:   time.Since(m.startedAt).Seconds(),
	}
	if m.total > 0 {
		snap.Compliance = 1 - float64(m.totalBad)/float64(m.total)
		snap.BudgetRemaining = 1 - (float64(m.totalBad)/float64(m.total))/(1-m.cfg.Target)
	}
	for _, w := range m.cfg.Windows {
		good, bad := m.windowCounts(sec, w)
		snap.Windows = append(snap.Windows, SLOWindow{
			WindowMs: w.Milliseconds(),
			Good:     good,
			Bad:      bad,
			Burn:     burnRate(good, bad, m.cfg.Target),
		})
	}
	return snap
}

// PeakBurn returns the largest current burn rate across windows (0 for a
// nil monitor). Nil-safe.
func (m *SLOMonitor) PeakBurn() float64 {
	snap := m.Snapshot()
	var peak float64
	for _, w := range snap.Windows {
		if w.Burn > peak {
			peak = w.Burn
		}
	}
	return peak
}
