package adaptive

import (
	"testing"
	"time"

	"morphstreamr/internal/obs"
)

// sigPar builds structural signals with the given parallelism estimate:
// 1024 operations over chains of length 1024/par.
func sigPar(epoch uint64, par float64) Signals {
	ops := 1024
	mc := int(float64(ops) / par)
	if mc < 1 {
		mc = 1
	}
	return Signals{Epoch: epoch, Ops: ops, Chains: ops / mc, MaxChain: mc, Heads: ops / mc}
}

func TestInitialPick(t *testing.T) {
	cases := []struct {
		name string
		par  float64
		max  int
		want Strategy
	}{
		{"wide graph saturates", 500, 8, Strategy{Impl: ImplSteal, Workers: 8}},
		{"nearly serial goes sequential", 1.2, 8, Strategy{Impl: ImplSeq, Workers: 1}},
		{"exactly serial goes sequential", 1.0, 8, Strategy{Impl: ImplSeq, Workers: 1}},
		{"four chains get four workers", 4.5, 8, Strategy{Impl: ImplSteal, Workers: 4}},
		{"two chains get two workers", 2.3, 8, Strategy{Impl: ImplSteal, Workers: 2}},
		{"ceiling clamps", 500, 2, Strategy{Impl: ImplSteal, Workers: 2}},
		{"one-worker ceiling is sequential", 500, 1, Strategy{Impl: ImplSeq, Workers: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{MaxWorkers: tc.max})
			got := c.Decide(sigPar(1, tc.par))
			if got != tc.want {
				t.Fatalf("par=%.1f max=%d: got %v, want %v", tc.par, tc.max, got, tc.want)
			}
		})
	}
}

// TestPhaseMorph drives the controller through a parallel phase, a serial
// phase, and back, asserting it morphs once per phase shift (after
// cooldown+patience) and holds steady inside each phase.
func TestPhaseMorph(t *testing.T) {
	c := New(Config{MaxWorkers: 8, Patience: 2, Cooldown: 2})
	epoch := uint64(1)
	run := func(par float64, n int) []Strategy {
		var out []Strategy
		for i := 0; i < n; i++ {
			out = append(out, c.Decide(sigPar(epoch, par)))
			epoch++
		}
		return out
	}

	phaseA := run(500, 6)
	for i, s := range phaseA {
		if (s != Strategy{Impl: ImplSteal, Workers: 8}) {
			t.Fatalf("parallel phase epoch %d: got %v", i+1, s)
		}
	}
	phaseB := run(1.1, 8)
	last := phaseB[len(phaseB)-1]
	if (last != Strategy{Impl: ImplSeq, Workers: 1}) {
		t.Fatalf("serial phase did not converge to seq/1: got %v", last)
	}
	// The morph must be damped: the first Patience-1+cooldown epochs of the
	// new phase still run the old strategy.
	if (phaseB[0] != Strategy{Impl: ImplSteal, Workers: 8}) {
		t.Fatalf("morphed without patience: first serial-phase decision %v", phaseB[0])
	}
	phaseC := run(500, 8)
	lastC := phaseC[len(phaseC)-1]
	if (lastC != Strategy{Impl: ImplSteal, Workers: 8}) {
		t.Fatalf("did not recover parallel strategy: got %v", lastC)
	}
	// Exactly three recorded decisions: initial, morph to seq, morph back.
	if got := c.Morphs(); got != 3 {
		t.Fatalf("morphs = %d, want 3 (initial + one per phase shift); decisions: %+v",
			got, c.Decisions())
	}
}

// TestBoundaryNoOscillation feeds a signal fluttering across a worker-level
// boundary every epoch; the hysteresis rule must never morph.
func TestBoundaryNoOscillation(t *testing.T) {
	c := New(Config{MaxWorkers: 8, Patience: 2, Cooldown: 1, Margin: 0.15})
	first := c.Decide(sigPar(1, 4.5)) // initial: steal/4
	for i := 0; i < 40; i++ {
		par := 3.9 // just below the 4 boundary
		if i%2 == 1 {
			par = 4.1 // just above
		}
		got := c.Decide(sigPar(uint64(i+2), par))
		if got != first {
			t.Fatalf("epoch %d: oscillated from %v to %v on boundary signal", i+2, first, got)
		}
	}
	if got := c.Morphs(); got != 1 {
		t.Fatalf("morphs = %d, want 1 (initial only)", got)
	}
}

// TestDeadband: a drift that stays inside the margin band around the
// current level never becomes a candidate, even when persistent.
func TestDeadband(t *testing.T) {
	c := New(Config{MaxWorkers: 8, Patience: 2, Cooldown: 1, Margin: 0.15})
	want := c.Decide(sigPar(1, 4.2))
	if (want != Strategy{Impl: ImplSteal, Workers: 4}) {
		t.Fatalf("initial: got %v", want)
	}
	// 3.7 is below the level-4 threshold (raw target 2) but above
	// 4*(1-0.15)=3.4, so the controller holds 4 workers indefinitely.
	for i := 0; i < 20; i++ {
		if got := c.Decide(sigPar(uint64(i+2), 3.7)); got != want {
			t.Fatalf("epoch %d: in-band drift morphed to %v", i+2, got)
		}
	}
	// 3.0 clears the band; after patience the level drops.
	for i := 0; i < 6; i++ {
		c.Decide(sigPar(uint64(30+i), 3.0))
	}
	if got := c.Current(); (got != Strategy{Impl: ImplSteal, Workers: 2}) {
		t.Fatalf("out-of-band drift did not morph: %v", got)
	}
}

// TestStealFailStorm: persistent steal-fail feedback under the stealing
// pool flips the parallel strategy to the channel scheduler, and calm
// feedback decays the verdict back.
func TestStealFailStorm(t *testing.T) {
	c := New(Config{MaxWorkers: 8, Patience: 2, Cooldown: 1, StealFailStorm: 0.75})
	s := c.Decide(sigPar(1, 500))
	if s.Impl != ImplSteal {
		t.Fatalf("initial impl %v", s)
	}
	epoch := uint64(2)
	for i := 0; i < 8 && c.Current().Impl != ImplChanRef; i++ {
		c.Feedback(Feedback{Epoch: epoch, Strategy: s, Wall: time.Millisecond,
			Ops: 1024, StealFails: 4096})
		s = c.Decide(sigPar(epoch, 500))
		epoch++
	}
	if c.Current().Impl != ImplChanRef {
		t.Fatalf("storm did not morph to chanref: %v", c.Current())
	}
	// chanref produces no steal-fail counters; the EWMA decays and the
	// controller returns to stealing.
	for i := 0; i < 12 && c.Current().Impl != ImplSteal; i++ {
		c.Feedback(Feedback{Epoch: epoch, Strategy: c.Current(), Ops: 1024})
		c.Decide(sigPar(epoch, 500))
		epoch++
	}
	if c.Current().Impl != ImplSteal {
		t.Fatalf("calm feedback did not recover steal: %v", c.Current())
	}
}

func TestForceOverride(t *testing.T) {
	forced := Strategy{Impl: ImplChanRef, Workers: 3}
	c := New(Config{MaxWorkers: 8, Force: &forced})
	for i := 0; i < 10; i++ {
		par := 500.0
		if i%2 == 0 {
			par = 1.0
		}
		if got := c.Decide(sigPar(uint64(i+1), par)); got != forced {
			t.Fatalf("epoch %d: force override ignored: %v", i+1, got)
		}
	}
	if got := c.Morphs(); got != 1 {
		t.Fatalf("forced controller recorded %d decisions, want 1", got)
	}
}

func TestCommitInterval(t *testing.T) {
	c := New(Config{MaxWorkers: 1, GroupBudget: 1000})
	cases := []struct {
		bytes int64
		snap  int
		conf  int
		want  int
	}{
		{0, 8, 2, 2},    // no byte signal: keep configured
		{-1, 8, 4, 4},   // NAT runs keep configured
		{10, 8, 1, 8},   // tiny epochs batch to the snapshot interval
		{200, 8, 1, 4},  // 200*4=800 <= 1000 < 200*8
		{400, 8, 1, 2},  // 400*2 <= 1000 < 400*4
		{600, 8, 1, 1},  // large epochs flush every epoch
		{5000, 8, 1, 1}, // over budget alone: smallest divisor
		{10, 6, 1, 6},   // non-power-of-two interval: divisors {1,2,3,6}
		{250, 6, 1, 3},  // 250*3=750 <= 1000 < 250*6
		{10, 1, 1, 1},   // snapshot every epoch: nothing to batch
	}
	for _, tc := range cases {
		got := c.CommitInterval(tc.bytes, tc.conf, tc.snap)
		if got != tc.want {
			t.Fatalf("CommitInterval(%d, %d, %d) = %d, want %d",
				tc.bytes, tc.conf, tc.snap, got, tc.want)
		}
		if tc.snap%got != 0 {
			t.Fatalf("CommitInterval(%d, %d, %d) = %d does not divide the snapshot interval",
				tc.bytes, tc.conf, tc.snap, got)
		}
		// Stateless: the same input always yields the same cadence — the
		// property recovery's replay of the tail depends on.
		if again := c.CommitInterval(tc.bytes, tc.conf, tc.snap); again != got {
			t.Fatalf("CommitInterval not stateless: %d then %d", got, again)
		}
	}
}

// TestTracing: with an observer attached, decisions land in the registry
// (morph counter, worker gauge, provider snapshot) and emit spans.
func TestTracing(t *testing.T) {
	o := obs.NewObserver(1, 128)
	c := New(Config{MaxWorkers: 8, Patience: 1, Cooldown: 1, Obs: o})
	c.Decide(sigPar(1, 500))
	for i := 0; i < 6; i++ {
		c.Decide(sigPar(uint64(i+2), 1.0))
	}
	if c.Current().Impl != ImplSeq {
		t.Fatalf("did not morph: %v", c.Current())
	}
	if got := o.Registry().Counter("adaptive.morphs").Value(); got < 2 {
		t.Fatalf("adaptive.morphs = %d, want >= 2", got)
	}
	if got := o.Registry().Gauge("adaptive.workers").Value(); got != 1 {
		t.Fatalf("adaptive.workers gauge = %d, want 1", got)
	}
	events, _ := o.T().Drain()
	found := false
	for _, ev := range events {
		if ev.Cat == CatAdaptive {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %q spans traced", CatAdaptive)
	}
}
