// Package adaptive implements the per-epoch scheduling controller: the
// MorphStream-style feedback loop that picks an execution strategy for
// every epoch instead of fixing one at startup.
//
// The controller observes two kinds of signals. Structural signals come
// from the epoch's task precedence graph before it executes — operation
// count, chain count, the longest chain (the structural critical path), and
// the number of initially-ready heads — and are pure functions of the
// input stream, so every incarnation of an engine derives the same values
// for the same epoch. Feedback signals come from the scheduler's counters
// after the previous epoch executed — epoch wall time, steal and
// steal-fail rates, park and stall counts — and carry the timing noise of
// the host.
//
// Strategy decisions (worker count, work-stealing vs sequential vs
// channel-based execution) may use both kinds: they change how an epoch is
// explored but never what it writes, because the engine re-labels chains
// with the canonical partitioning before sealing (see engine docs). The
// log-commit granularity decision changes which epochs share a durable
// group record, so it uses only structural byte accounting and is a
// stateless function of the current epoch — a recovered engine that
// replays the tail reaches the identical commit cadence without any state
// that died with the crash.
//
// Every morph is hysteresis-damped: a candidate strategy must win for
// Patience consecutive epochs, a fresh morph starts a cooldown, and worker
// levels move only when the parallelism estimate clears a dead-band margin
// around the current level — a signal sitting on a decision boundary
// flutters the candidate, never the strategy.
//
// Structure alone cannot answer one question: whether the per-operation
// grain on this machine makes parallel coordination pay at all. A graph
// with thousands of independent chains still executes fastest sequentially
// when each operation costs tens of nanoseconds and the pool's deque and
// park traffic costs more. The controller settles it empirically with
// grain probes: once the current strategy is stable it occasionally spends
// a single epoch on the other side of the sequential/parallel divide,
// folds the measured ns/op into a per-side EWMA, and morphs only when the
// probed side wins by ProbeMargin. Probes re-arm every ProbeEvery epochs
// in both directions, so a stream whose operations grow heavier climbs
// back onto the worker ladder. Probing requires wall feedback — a
// controller that is never fed measurements never probes.
package adaptive

import (
	"fmt"
	"sync"
	"time"

	"morphstreamr/internal/obs"
)

// Execution strategies the controller morphs between. ImplSteal and
// ImplChanRef name the two parallel schedulers (scheduler.Run and
// scheduler.RunChanRef); ImplSeq is the sequential executor, the right
// choice when the graph is one long chain and any pool would just spin.
const (
	ImplSteal   = "steal"
	ImplChanRef = "chanref"
	ImplSeq     = "seq"
)

// Strategy is one executable scheduling choice.
type Strategy struct {
	// Impl selects the executor: ImplSteal, ImplChanRef, or ImplSeq.
	Impl string
	// Workers is the parallelism degree (1 for ImplSeq).
	Workers int
}

func (s Strategy) String() string { return fmt.Sprintf("%s/w%d", s.Impl, s.Workers) }

// Signals is the pre-execution view of one epoch: the graph's structure.
// All fields are deterministic functions of the input stream.
type Signals struct {
	// Epoch is the epoch number (for tracing).
	Epoch uint64
	// Ops is the graph's operation count.
	Ops int
	// Chains is the number of key chains.
	Chains int
	// MaxChain is the longest chain's operation count — the structural
	// critical path of a TPG whose only mandatory ordering is temporal.
	// Ops/MaxChain bounds the useful parallelism from below exactly the way
	// vtime's CPRatio bounds it from measurement.
	MaxChain int
	// Heads is the number of initially-ready operations — the seed depth
	// of the scheduler's deques.
	Heads int
}

// Par returns the structural parallelism estimate Ops/MaxChain.
func (s Signals) Par() float64 {
	if s.MaxChain <= 0 {
		return float64(s.Ops)
	}
	return float64(s.Ops) / float64(s.MaxChain)
}

// Feedback is the post-execution view of one epoch: what the chosen
// strategy actually cost. Counter fields are per-epoch deltas.
type Feedback struct {
	Epoch      uint64
	Strategy   Strategy
	Wall       time.Duration
	Ops        int
	Steals     int64
	StealFails int64
	Parks      int64
	Stalls     int64
}

// Decision records one strategy morph (or the initial choice).
type Decision struct {
	Epoch  uint64
	From   Strategy
	To     Strategy
	Par    float64
	Reason string
}

// Config tunes one controller.
type Config struct {
	// MaxWorkers is the parallelism ceiling — the run shape's Workers knob.
	MaxWorkers int
	// Margin is the dead-band around the current worker level: the
	// parallelism estimate must clear level*(1±Margin) before a resize
	// becomes a candidate. Zero means 0.15.
	Margin float64
	// Patience is how many consecutive epochs a candidate strategy must
	// persist before the controller morphs to it. Zero means 2.
	Patience int
	// Cooldown is how many epochs after a morph the controller holds still,
	// so the new strategy's feedback is measured before it can be revised.
	// Zero means 2.
	Cooldown int
	// ProbeEvery is how many epochs between grain probes: single-epoch
	// excursions across the sequential/parallel divide that measure what
	// structure cannot — whether this machine's per-operation grain makes
	// parallel coordination pay. Zero means 8; negative disables probing.
	ProbeEvery int
	// ProbeMargin is the measured ns/op advantage the probed side must show
	// before the controller morphs to it. Zero means 0.10.
	ProbeMargin float64
	// StealFailStorm is the steal-fails-per-operation rate above which the
	// work-stealing pool is judged to be thrashing (many idle workers
	// sweeping empty deques) and the channel scheduler — whose idle workers
	// block instead of sweeping — becomes the candidate. Zero means 0.75.
	StealFailStorm float64
	// GroupBudget is the target durable group-commit size in bytes for the
	// commit-granularity rule. Zero means 256 KiB.
	GroupBudget int64
	// Force, when non-nil, pins every decision to the given strategy. Tests
	// and A/B harnesses use it to hold the engine in a known configuration
	// while keeping the controller's tracing live.
	Force *Strategy
	// Obs receives a span per morph and the controller's registry series
	// (adaptive.morphs counter, adaptive.workers gauge, ...). Nil disables
	// tracing.
	Obs *obs.Observer
}

func (c *Config) normalize() {
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 1
	}
	if c.Margin <= 0 {
		c.Margin = 0.15
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.ProbeMargin <= 0 {
		c.ProbeMargin = 0.10
	}
	if c.StealFailStorm <= 0 {
		c.StealFailStorm = 0.75
	}
	if c.GroupBudget <= 0 {
		c.GroupBudget = 256 << 10
	}
}

// CatAdaptive is the span category of controller morphs.
const CatAdaptive = "adaptive"

// Controller drives one engine's strategy. It is not goroutine-safe: the
// engine calls it from its processing goroutine only (the registry
// provider reads a mutex-guarded snapshot).
type Controller struct {
	cfg    Config
	levels []int // worker ladder: 1, 2, 4, ... MaxWorkers

	started bool
	cur     Strategy

	// pending is the persistent-candidate tracker of the hysteresis rule.
	pending      Strategy
	pendingRuns  int
	cooldownLeft int

	// failRate is an EWMA of steal fails per operation from feedback.
	failRate float64

	// Measured grain: EWMA ns/op on each side of the sequential/parallel
	// divide, with sample counts. Fed only by Feedback calls that carry a
	// wall time.
	seqNs, parNs float64
	seqN, parN   int

	// Probe state: sinceProbe counts epochs since the last probe (or start),
	// probing marks that the strategy returned by the previous Decide was a
	// probe excursion whose verdict the next Decide applies.
	sinceProbe int
	probing    bool
	probed     Strategy
	probes     int

	// decisions is a bounded ring of morphs, newest last.
	mu        sync.Mutex
	decisions []Decision
	morphs    int

	// registry series (nil when Obs is nil).
	morphCtr   *obs.Counter
	probeCtr   *obs.Counter
	workersG   *obs.Gauge
	commitG    *obs.Gauge
	lastCommit int
}

// decisionRing bounds the kept decision history.
const decisionRing = 64

// New creates a controller.
func New(cfg Config) *Controller {
	cfg.normalize()
	c := &Controller{cfg: cfg}
	for w := 1; w < cfg.MaxWorkers; w *= 2 {
		c.levels = append(c.levels, w)
	}
	c.levels = append(c.levels, cfg.MaxWorkers)
	if reg := cfg.Obs.Registry(); reg != nil {
		c.morphCtr = reg.Counter("adaptive.morphs")
		c.probeCtr = reg.Counter("adaptive.probes")
		c.workersG = reg.Gauge("adaptive.workers")
		c.commitG = reg.Gauge("adaptive.commit_every")
		reg.Attach("adaptive", obs.ProviderFunc(c.view))
	}
	return c
}

// view is the registry provider snapshot.
func (c *Controller) view() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return map[string]any{
		"impl":    c.cur.Impl,
		"workers": c.cur.Workers,
		"morphs":  c.morphs,
		"probes":  c.probes,
	}
}

// Decide returns the strategy for the epoch described by sig. The first
// call chooses directly from structure (an initial pick, not a morph);
// later calls only change strategy under the hysteresis rule.
func (c *Controller) Decide(sig Signals) Strategy {
	if f := c.cfg.Force; f != nil {
		forced := *f
		if forced.Workers <= 0 {
			forced.Workers = 1
		}
		if !c.started {
			c.started = true
			c.record(sig, c.cur, forced, "forced")
		}
		c.cur = forced
		return forced
	}
	if c.probing {
		// The previous epoch was a probe excursion; apply its verdict before
		// anything else. A decisive measurement morphs without patience — the
		// probe itself was the evidence.
		c.probing = false
		c.sinceProbe = 0
		if to, reason, ok := c.probeVerdict(); ok {
			c.morph(sig, to, reason)
			return c.cur
		}
	}
	want := c.candidate(sig)
	if !c.started {
		c.started = true
		c.cooldownLeft = c.cfg.Cooldown
		c.record(sig, c.cur, want, "initial")
		c.cur = want
		return c.cur
	}
	c.sinceProbe++
	if c.cooldownLeft > 0 {
		c.cooldownLeft--
		c.pendingRuns = 0
		return c.cur
	}
	if want == c.cur {
		c.pendingRuns = 0
		if p, ok := c.probeCandidate(sig); ok {
			c.probing, c.probed = true, p
			c.mu.Lock()
			c.probes++
			c.mu.Unlock()
			c.probeCtr.Inc()
			return p
		}
		return c.cur
	}
	// A differing candidate must persist: a boundary signal that flutters
	// between candidates resets the count and never morphs.
	if want != c.pending {
		c.pending = want
		c.pendingRuns = 1
		return c.cur
	}
	c.pendingRuns++
	if c.pendingRuns < c.cfg.Patience {
		return c.cur
	}
	c.morph(sig, want, fmt.Sprintf("par=%.1f", sig.Par()))
	return c.cur
}

// candidate computes the raw (un-damped) strategy for one epoch.
func (c *Controller) candidate(sig Signals) Strategy {
	par := sig.Par()
	w := c.targetWorkers(par)
	if w <= 1 {
		return Strategy{Impl: ImplSeq, Workers: 1}
	}
	// Measured grain verdict: however wide the graph, this machine executes
	// these operations faster without coordination. Reverse probes keep the
	// verdict honest — see probeCandidate.
	if c.grainSeq() {
		return Strategy{Impl: ImplSeq, Workers: 1}
	}
	// Feedback escape hatch: a persistent steal-fail storm means the deques
	// are starved (many workers, little stealable work) — the blocking
	// channel scheduler sheds that sweep load.
	if c.failRate > c.cfg.StealFailStorm {
		return Strategy{Impl: ImplChanRef, Workers: w}
	}
	return Strategy{Impl: ImplSteal, Workers: w}
}

// grainSeq reports whether the measured ns/op says sequential execution
// decisively beats the parallel schedulers. False until both sides have
// been measured.
func (c *Controller) grainSeq() bool {
	return c.seqN > 0 && c.parN > 0 && c.seqNs < c.parNs*(1-c.cfg.ProbeMargin)
}

// probeCandidate decides whether the next epoch should be a grain probe,
// and with what strategy. Called only when the hysteresis state is stable
// (no cooldown, candidate == current).
func (c *Controller) probeCandidate(sig Signals) (Strategy, bool) {
	if c.cfg.ProbeEvery < 0 {
		return Strategy{}, false
	}
	if c.cur.Impl != ImplSeq {
		if c.parN == 0 {
			return Strategy{}, false // nothing measured yet to compare against
		}
		// The first sequential probe fires as soon as the parallel side has a
		// measurement and the sequential side has none; afterwards probes
		// re-arm every ProbeEvery epochs.
		if (c.seqN == 0 && c.sinceProbe >= 2) || c.sinceProbe >= c.cfg.ProbeEvery {
			return Strategy{Impl: ImplSeq, Workers: 1}, true
		}
		return Strategy{}, false
	}
	// Sequential side: re-probe the structural parallel choice, so a stream
	// whose operations grow heavier climbs back onto the worker ladder. Only
	// when structure actually wants parallelism — probing a serial graph
	// with a pool would measure nothing but overhead.
	if c.seqN == 0 || c.sinceProbe < c.cfg.ProbeEvery {
		return Strategy{}, false
	}
	if w := c.ladder(sig.Par()); w > 1 {
		return Strategy{Impl: ImplSteal, Workers: w}, true
	}
	return Strategy{}, false
}

// probeVerdict compares the probe's measurement against the incumbent
// side's EWMA and returns the morph it justifies, if any.
func (c *Controller) probeVerdict() (Strategy, string, bool) {
	if c.seqN == 0 || c.parN == 0 {
		return Strategy{}, "", false
	}
	m := 1 - c.cfg.ProbeMargin
	if c.probed.Impl == ImplSeq && c.cur.Impl != ImplSeq && c.seqNs < c.parNs*m {
		return c.probed, fmt.Sprintf("grain: seq %.0fns/op < par %.0fns/op", c.seqNs, c.parNs), true
	}
	if c.probed.Impl != ImplSeq && c.cur.Impl == ImplSeq && c.parNs < c.seqNs*m {
		return c.probed, fmt.Sprintf("grain: par %.0fns/op < seq %.0fns/op", c.parNs, c.seqNs), true
	}
	return Strategy{}, "", false
}

// ladder maps the parallelism estimate onto the worker ladder, no
// dead-band applied.
func (c *Controller) ladder(par float64) int {
	raw := 1
	for _, lvl := range c.levels {
		if par >= float64(lvl) {
			raw = lvl
		}
	}
	return raw
}

// targetWorkers maps the parallelism estimate onto the worker ladder with
// a dead-band around the current level.
func (c *Controller) targetWorkers(par float64) int {
	raw := c.ladder(par)
	if !c.started {
		return raw
	}
	cur := c.cur.Workers
	if raw > cur && par < float64(raw)*(1+c.cfg.Margin) {
		return cur // above the level boundary, but not clear of the band
	}
	if raw < cur && par > float64(cur)*(1-c.cfg.Margin) {
		return cur // below the current level, but still inside its band
	}
	return raw
}

// Feedback reports the measured cost of the epoch just executed.
func (c *Controller) Feedback(fb Feedback) {
	if fb.Wall > 0 && fb.Ops > 0 {
		ns := float64(fb.Wall.Nanoseconds()) / float64(fb.Ops)
		if fb.Strategy.Impl == ImplSeq {
			if c.seqN == 0 {
				c.seqNs = ns
			} else {
				c.seqNs = 0.5*c.seqNs + 0.5*ns
			}
			c.seqN++
		} else {
			if c.parN == 0 {
				c.parNs = ns
			} else {
				c.parNs = 0.5*c.parNs + 0.5*ns
			}
			c.parN++
		}
	}
	if fb.Ops > 0 && fb.Strategy.Impl == ImplSteal && fb.Strategy.Workers > 1 {
		rate := float64(fb.StealFails) / float64(fb.Ops)
		c.failRate = 0.5*c.failRate + 0.5*rate
	} else {
		// Other strategies produce no steal-fail signal; decay toward calm
		// so a stale storm verdict cannot pin the controller on chanref.
		c.failRate *= 0.5
	}
}

// morph switches the live strategy and records the decision.
func (c *Controller) morph(sig Signals, to Strategy, reason string) {
	from := c.cur
	c.cur = to
	c.pendingRuns = 0
	c.cooldownLeft = c.cfg.Cooldown
	c.record(sig, from, to, reason)
}

// record traces one decision (initial pick, forced pin, or morph).
func (c *Controller) record(sig Signals, from, to Strategy, reason string) {
	c.mu.Lock()
	c.decisions = append(c.decisions, Decision{
		Epoch: sig.Epoch, From: from, To: to, Par: sig.Par(), Reason: reason,
	})
	if len(c.decisions) > decisionRing {
		c.decisions = c.decisions[len(c.decisions)-decisionRing:]
	}
	c.morphs++
	c.mu.Unlock()
	c.morphCtr.Inc()
	c.workersG.Set(int64(to.Workers))
	sp := c.cfg.Obs.Begin(0, CatAdaptive, fmt.Sprintf("morph %s", to), sig.Epoch)
	sp.End()
}

// Current returns the live strategy (the zero Strategy before any Decide).
func (c *Controller) Current() Strategy { return c.cur }

// Morphs returns how many decisions (including the initial pick) have been
// recorded.
func (c *Controller) Morphs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.morphs
}

// Probes returns how many grain-probe epochs the controller has issued.
func (c *Controller) Probes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.probes
}

// Decisions returns a copy of the recent decision history, oldest first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// CommitInterval picks the log-commit granularity from one sealed epoch's
// payload size: the largest divisor of snapshotEvery whose group would stay
// within the byte budget, so small epochs batch into few durable writes and
// large epochs flush promptly. The rule is a stateless function of the
// current epoch — no controller state feeds it — so an engine recovered
// mid-run recomputes the identical cadence for every reprocessed epoch, and
// always a divisor of snapshotEvery, so snapshots still land on commit
// boundaries. epochBytes <= 0 (no committer, or a NAT run) keeps the
// configured interval.
func (c *Controller) CommitInterval(epochBytes int64, configured, snapshotEvery int) int {
	if epochBytes <= 0 || snapshotEvery <= 1 {
		return configured
	}
	ce := 1
	for d := 1; d <= snapshotEvery; d++ {
		if snapshotEvery%d != 0 {
			continue
		}
		if epochBytes*int64(d) <= c.cfg.GroupBudget {
			ce = d
		}
	}
	if ce != c.lastCommit {
		c.lastCommit = ce
		c.commitG.Set(int64(ce))
	}
	return ce
}
