package codec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"morphstreamr/internal/types"
)

// randEvent builds a pseudo-random but structurally valid event.
func randEvent(rng *rand.Rand, seq uint64) types.Event {
	nk := rng.Intn(5)
	nv := rng.Intn(3)
	ev := types.Event{Seq: seq, Kind: types.EventKind(rng.Intn(4))}
	for i := 0; i < nk; i++ {
		ev.Keys = append(ev.Keys, types.Key{
			Table: types.TableID(rng.Intn(3)),
			Row:   rng.Uint32(),
		})
	}
	for i := 0; i < nv; i++ {
		ev.Vals = append(ev.Vals, rng.Int63()-rng.Int63())
	}
	return ev
}

func randEvents(seed int64, n int) []types.Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]types.Event, n)
	for i := range out {
		out[i] = randEvent(rng, uint64(i))
	}
	return out
}

func eventsEqual(a, b []types.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Kind != b[i].Kind {
			return false
		}
		if len(a[i].Keys) != len(b[i].Keys) || len(a[i].Vals) != len(b[i].Vals) {
			return false
		}
		for j := range a[i].Keys {
			if a[i].Keys[j] != b[i].Keys[j] {
				return false
			}
		}
		for j := range a[i].Vals {
			if a[i].Vals[j] != b[i].Vals[j] {
				return false
			}
		}
	}
	return true
}

func TestEventsRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		events := randEvents(seed, int(n%64))
		got, err := DecodeEvents(EncodeEvents(events))
		if err != nil {
			return false
		}
		return eventsEqual(events, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyEventsRoundTrip(t *testing.T) {
	got, err := DecodeEvents(EncodeEvents(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch round trip: %v, %v", got, err)
	}
}

// TestDecodeTruncatedNeverPanics chops valid encodings at every byte
// offset; every prefix must decode to an error or a valid value, never
// panic — durable logs can be torn.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	events := randEvents(42, 10)
	full := EncodeEvents(events)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeEvents(full[:cut]); err == nil && cut < len(full)-1 {
			// Some prefixes are valid encodings of shorter batches only if
			// the count matched; a nil error with missing events is a bug.
			got, _ := DecodeEvents(full[:cut])
			if eventsEqual(events, got) {
				t.Fatalf("truncation at %d decoded as complete", cut)
			}
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		DecodeEvents(b)
		DecodeWAL(b)
		DecodeDL(b)
		DecodeLV(b)
		DecodeMSR(b)
		DecodeSnapshot(b)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tables := []SnapshotTable{
		{ID: 0, Init: 100, Vals: []types.Value{100, 105, 99, -3}},
		{ID: 1, Init: 0, Vals: []types.Value{0, 0, 7}},
	}
	got, err := DecodeSnapshot(EncodeSnapshot(tables))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tables, got) {
		t.Errorf("snapshot round trip: got %+v, want %+v", got, tables)
	}
}

func TestSnapshotDeltaEncodingCompresses(t *testing.T) {
	// A mostly-untouched table (every record at Init) must encode in ~1
	// byte per record thanks to delta coding.
	vals := make([]types.Value, 10000)
	for i := range vals {
		vals[i] = 10_000
	}
	b := EncodeSnapshot([]SnapshotTable{{ID: 0, Init: 10_000, Vals: vals}})
	if len(b) > len(vals)+64 {
		t.Errorf("untouched snapshot encoded to %d bytes for %d records", len(b), len(vals))
	}
}

func TestWALRoundTrip(t *testing.T) {
	events := randEvents(1, 20)
	recs := make([]WALRecord, len(events))
	for i := range events {
		recs[i] = WALRecord{Event: events[i]}
	}
	got, err := DecodeWAL(EncodeWAL(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !eventsEqual([]types.Event{recs[i].Event}, []types.Event{got[i].Event}) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestDLRoundTrip(t *testing.T) {
	events := randEvents(2, 10)
	recs := make([]DLRecord, len(events))
	for i := range events {
		recs[i] = DLRecord{Event: events[i]}
		for j := uint64(0); j < uint64(i); j += 2 {
			recs[i].In = append(recs[i].In, j) // sorted ascending, as required
		}
	}
	got, err := DecodeDL(EncodeDL(recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !reflect.DeepEqual(recs[i].In, got[i].In) {
			t.Errorf("record %d edges: got %v, want %v", i, got[i].In, recs[i].In)
		}
	}
}

func TestLVRoundTrip(t *testing.T) {
	events := randEvents(3, 10)
	recs := make([]LVRecord, len(events))
	for i := range events {
		recs[i] = LVRecord{
			Event:  events[i],
			Worker: uint32(i % 4),
			LSN:    uint64(i + 1),
			Vector: []uint64{uint64(i), 0, uint64(2 * i), 7},
		}
	}
	got, err := DecodeLV(EncodeLV(recs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Worker != recs[i].Worker || got[i].LSN != recs[i].LSN ||
			!reflect.DeepEqual(got[i].Vector, recs[i].Vector) {
			t.Errorf("record %d mismatch: got %+v", i, got[i])
		}
	}
}

func TestMSRRoundTrip(t *testing.T) {
	views := MSRViews{
		Aborted: []uint64{3, 17, 90},
		Parametric: []ViewEntry{
			{From: types.Key{Table: 0, Row: 1}, To: types.Key{Table: 0, Row: 2}, TS: 10, Value: -55},
			{From: types.Key{Table: 1, Row: 9}, To: types.Key{Table: 0, Row: 4}, TS: 11, Value: 1 << 40},
		},
	}
	got, err := DecodeMSR(EncodeMSR(views))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(views.Aborted, got.Aborted) {
		t.Errorf("aborted: got %v, want %v", got.Aborted, views.Aborted)
	}
	if !reflect.DeepEqual(views.Parametric, got.Parametric) {
		t.Errorf("parametric: got %+v, want %+v", got.Parametric, views.Parametric)
	}
}

func TestMSREmptyRoundTrip(t *testing.T) {
	got, err := DecodeMSR(EncodeMSR(MSRViews{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Aborted) != 0 || len(got.Parametric) != 0 {
		t.Errorf("empty views decoded to %+v", got)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(u uint64, s int64) bool {
		w := NewBuffer(24)
		w.Uvarint(u)
		w.Varint(s)
		r := NewReader(w.Bytes())
		return r.Uvarint() == u && r.Varint() == s && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderErrorSticks(t *testing.T) {
	r := NewReader(nil)
	r.Byte()
	if r.Err() == nil {
		t.Fatal("reading past the end must error")
	}
	// Subsequent reads keep returning zero values without panicking.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Byte() != 0 {
		t.Error("post-error reads must return zero values")
	}
}

func TestMSRGroupsRoundTrip(t *testing.T) {
	views := MSRViews{
		Aborted: []uint64{5},
		Groups: []GroupEntry{
			{Key: types.Key{Table: 0, Row: 10}, Group: 3},
			{Key: types.Key{Table: 1, Row: 99}, Group: 0},
		},
	}
	got, err := DecodeMSR(EncodeMSR(views))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(views.Groups, got.Groups) {
		t.Errorf("groups round trip: got %+v, want %+v", got.Groups, views.Groups)
	}
}
