package codec

import (
	"fmt"

	"morphstreamr/internal/types"
)

// ShardDelta is one shard's contribution to a group punctuation barrier:
// the owned keys its epoch wrote, with their values as of the barrier.
// Keys are in canonical (table, row) order so the encoding — and therefore
// the coordinator's frontier log — is byte-deterministic for a
// deterministic run, which the cross-shard determinism test compares
// directly.
type ShardDelta struct {
	Keys []types.Key
	Vals []types.Value
}

// EncodeShardDeltas frames one frontier record's per-shard deltas
// (deltas[i] belongs to shard i; empty deltas encode as zero counts).
func EncodeShardDeltas(deltas []ShardDelta) []byte {
	n := 0
	for _, d := range deltas {
		n += len(d.Keys)
	}
	w := NewBuffer(8 + n*10)
	w.Uvarint(uint64(len(deltas)))
	for _, d := range deltas {
		w.Uvarint(uint64(len(d.Keys)))
		for i, k := range d.Keys {
			w.Key(k)
			w.Varint(d.Vals[i])
		}
	}
	return w.Bytes()
}

// DecodeShardDeltas parses EncodeShardDeltas output.
func DecodeShardDeltas(payload []byte) ([]ShardDelta, error) {
	r := NewReader(payload)
	ns := r.Uvarint()
	if r.Err() == nil && ns > uint64(r.Remaining())+1 {
		return nil, fmt.Errorf("codec: frontier shard count %d exceeds input: %w", ns, ErrShortBuffer)
	}
	deltas := make([]ShardDelta, ns)
	for s := range deltas {
		nk := r.Uvarint()
		if r.Err() == nil && nk > uint64(r.Remaining()) {
			return nil, fmt.Errorf("codec: frontier key count %d exceeds input: %w", nk, ErrShortBuffer)
		}
		if nk == 0 {
			continue
		}
		deltas[s].Keys = make([]types.Key, nk)
		deltas[s].Vals = make([]types.Value, nk)
		for i := uint64(0); i < nk; i++ {
			deltas[s].Keys[i] = r.Key()
			deltas[s].Vals[i] = r.Varint()
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("codec: frontier: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("codec: frontier: %d trailing bytes", r.Remaining())
	}
	return deltas, nil
}
