package codec

import (
	"testing"

	"morphstreamr/internal/types"
)

// Allocation regression pins for the encode/decode hot paths. The Into
// variants exist so the seal and persist paths can reuse one grown buffer
// per call site; these tests pin that contract so a refactor cannot
// silently reintroduce per-epoch payload allocations.

func allocEvents(n int) []types.Event {
	events := make([]types.Event, n)
	for i := range events {
		events[i] = types.Event{
			Seq:  uint64(i + 1),
			Kind: types.EventKind(1),
			Keys: []types.Key{{Table: 0, Row: uint32(i % 64)}, {Table: 1, Row: uint32(i % 17)}},
			Vals: []types.Value{int64(i), -int64(i)},
		}
	}
	return events
}

// TestEncodeIntoAllocFree: once the reused buffer has grown, encoding a
// batch of events, WAL records, or a snapshot into it allocates nothing.
func TestEncodeIntoAllocFree(t *testing.T) {
	events := allocEvents(256)
	recs := make([]WALRecord, len(events))
	for i, ev := range events {
		recs[i] = WALRecord{Event: ev}
	}
	vals := make([]types.Value, 1024)
	for i := range vals {
		vals[i] = int64(i % 13)
	}
	tables := []SnapshotTable{{ID: 0, Init: 5, Vals: vals}}

	cases := []struct {
		name   string
		encode func(w *Buffer)
	}{
		{"events", func(w *Buffer) { EncodeEventsInto(w, events) }},
		{"wal", func(w *Buffer) { EncodeWALInto(w, recs) }},
		{"snapshot", func(w *Buffer) { EncodeSnapshotInto(w, tables) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewBuffer(0)
			tc.encode(w) // warm: grow the buffer once
			if got := testing.AllocsPerRun(100, func() {
				w.Reset()
				tc.encode(w)
			}); got != 0 {
				t.Fatalf("encode %s into warm buffer: %.1f allocs/op, want 0", tc.name, got)
			}
		})
	}
}

// TestPooledEncodeAllocFree: the GetBuffer/PutBuffer cycle itself is
// allocation-free at steady state — the pattern every seal path uses via
// ftapi.GroupCommitter.SealInto.
func TestPooledEncodeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items on purpose; the steady-state pin only holds without it")
	}
	events := allocEvents(256)
	// Warm the pool with one grown buffer.
	w := GetBuffer()
	EncodeEventsInto(w, events)
	PutBuffer(w)
	got := testing.AllocsPerRun(100, func() {
		w := GetBuffer()
		EncodeEventsInto(w, events)
		PutBuffer(w)
	})
	// sync.Pool may shed its buffer across a GC cycle; allow a stray grow
	// but fail on per-call allocation.
	if got >= 1 {
		t.Fatalf("pooled encode cycle: %.1f allocs/op, want < 1", got)
	}
}

// TestDecodeEventsAllocBound: decoding necessarily materialises the output
// (slices per event), but must stay at that floor — two allocations per
// event (Keys, Vals) plus constant framing overhead.
func TestDecodeEventsAllocBound(t *testing.T) {
	events := allocEvents(256)
	payload := EncodeEvents(events)
	got := testing.AllocsPerRun(50, func() {
		if _, err := DecodeEvents(payload); err != nil {
			t.Fatal(err)
		}
	})
	bound := float64(2*len(events) + 8)
	if got > bound {
		t.Fatalf("decode: %.1f allocs/op, want <= %.0f (2/event + framing)", got, bound)
	}
}
