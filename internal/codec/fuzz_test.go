package codec

import (
	"reflect"
	"testing"

	"morphstreamr/internal/types"
)

// The crash model makes one guarantee load-bearing: a record cut short by
// a torn write must FAIL to decode, never misparse into a shorter valid
// batch — recovery's torn-tail truncation relies on detection. Every
// format here writes its element count up front, so any strict prefix of
// a valid encoding is structurally incomplete. The fuzz targets check the
// decoders never panic and stay idempotent on whatever they do accept;
// the deterministic test below checks every strict prefix is rejected.

func fuzzEvents() []types.Event {
	return []types.Event{
		{Seq: 1, Kind: 0, Keys: []types.Key{{Table: 0, Row: 3}}, Vals: []types.Value{42}},
		{Seq: 2, Kind: 1, Keys: []types.Key{{Table: 1, Row: 9}, {Table: 0, Row: 0}}, Vals: []types.Value{-7, 1 << 40}},
	}
}

// seed adds a valid encoding plus torn variants: every format must have
// corpus entries that exercise the short-buffer paths from the start.
func seed(f *testing.F, enc []byte) {
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add(enc[:len(enc)-1])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
}

// check runs one decoder under the fuzz contract: no panic (the harness
// catches that), and decode∘encode∘decode = decode — accepted input maps
// to a value the codec round-trips exactly.
func check[T any](t *testing.T, b []byte, decode func([]byte) (T, error), encode func(T) []byte) {
	v, err := decode(b)
	if err != nil {
		return
	}
	again, err := decode(encode(v))
	if err != nil {
		t.Fatalf("re-decode of re-encoded value failed: %v", err)
	}
	if !reflect.DeepEqual(v, again) {
		t.Fatalf("decode not idempotent:\n first: %+v\nsecond: %+v", v, again)
	}
}

func FuzzDecodeEvents(f *testing.F) {
	seed(f, EncodeEvents(fuzzEvents()))
	seed(f, EncodeEvents(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		check(t, b, DecodeEvents, EncodeEvents)
	})
}

func FuzzDecodeWAL(f *testing.F) {
	seed(f, EncodeWAL([]WALRecord{{Event: fuzzEvents()[0]}, {Event: fuzzEvents()[1]}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		check(t, b, DecodeWAL, EncodeWAL)
	})
}

func FuzzDecodeDL(f *testing.F) {
	seed(f, EncodeDL([]DLRecord{
		{Event: fuzzEvents()[0], In: []uint64{1, 5, 9}},
		{Event: fuzzEvents()[1]},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Decoded edge lists are not revalidated as sorted, so re-encoding
		// delta-compresses garbage lists lossily; idempotence only holds
		// for sorted lists. Check the no-panic/no-misparse half only.
		_, _ = DecodeDL(b)
	})
}

func FuzzDecodeLV(f *testing.F) {
	seed(f, EncodeLV([]LVRecord{
		{Event: fuzzEvents()[0], Worker: 2, LSN: 17, Vector: []uint64{3, 0, 9}},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		check(t, b, DecodeLV, EncodeLV)
	})
}

func FuzzDecodeMSR(f *testing.F) {
	seed(f, EncodeMSR(MSRViews{
		Aborted: []uint64{4, 8},
		Parametric: []ViewEntry{
			{From: types.Key{Table: 0, Row: 1}, To: types.Key{Table: 1, Row: 2}, TS: 9, Value: -3},
		},
		Groups: []GroupEntry{{Key: types.Key{Table: 0, Row: 7}, Group: 2}},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Abort IDs share DL's sorted-delta caveat; skip idempotence.
		_, _ = DecodeMSR(b)
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	seed(f, EncodeSnapshot([]SnapshotTable{
		{ID: 0, Init: 100, Vals: []types.Value{100, 101, 99}},
		{ID: 1, Init: 0, Vals: []types.Value{0}},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		check(t, b, DecodeSnapshot, EncodeSnapshot)
	})
}

// TestStrictPrefixesRejected: for every record format, every strict
// prefix of a valid non-trivial encoding fails to decode. This is the
// deterministic form of the torn-write guarantee: a payload cut anywhere
// is detected, so a torn tail record can never silently shrink a batch.
func TestStrictPrefixesRejected(t *testing.T) {
	evs := fuzzEvents()
	cases := []struct {
		name   string
		enc    []byte
		decode func([]byte) error
	}{
		{"events", EncodeEvents(evs), func(b []byte) error { _, err := DecodeEvents(b); return err }},
		{"wal", EncodeWAL([]WALRecord{{Event: evs[0]}, {Event: evs[1]}}),
			func(b []byte) error { _, err := DecodeWAL(b); return err }},
		{"dl", EncodeDL([]DLRecord{{Event: evs[0], In: []uint64{2, 3}}, {Event: evs[1]}}),
			func(b []byte) error { _, err := DecodeDL(b); return err }},
		{"lv", EncodeLV([]LVRecord{{Event: evs[0], Worker: 1, LSN: 5, Vector: []uint64{1, 2}}}),
			func(b []byte) error { _, err := DecodeLV(b); return err }},
		{"msr", EncodeMSR(MSRViews{Aborted: []uint64{1}, Groups: []GroupEntry{{Key: types.Key{Row: 1}, Group: 1}}}),
			func(b []byte) error { _, err := DecodeMSR(b); return err }},
		{"snapshot", EncodeSnapshot([]SnapshotTable{{ID: 0, Init: 5, Vals: []types.Value{5, 6}}}),
			func(b []byte) error { _, err := DecodeSnapshot(b); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.enc); err != nil {
				t.Fatalf("full encoding failed to decode: %v", err)
			}
			for cut := 0; cut < len(tc.enc); cut++ {
				if err := tc.decode(tc.enc[:cut]); err == nil {
					t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(tc.enc))
				}
			}
		})
	}
}
