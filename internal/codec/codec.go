// Package codec implements the compact binary encoding of every durable
// artifact: input events, WAL commands, dependency-graph records (DL), LSN
// vector records (LV), MorphStreamR view entries, and state snapshots.
//
// The format is a simple varint-based byte stream (encoding/binary's uvarint
// plus zig-zag for signed values). It is not self-describing: each artifact
// type has a fixed field order and readers/writers are kept side by side in
// this package so they cannot drift. Log sizes feed directly into the
// paper's runtime-overhead and memory-footprint comparisons, so the encoding
// is deliberately tight: the relative log sizes of WAL vs DL vs LV vs MSR
// are part of the reproduced result.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"morphstreamr/internal/types"
)

// ErrShortBuffer is returned when a decoder runs out of input mid-record.
var ErrShortBuffer = errors.New("codec: short buffer")

// bufPool recycles encode buffers across epochs. Every storage.Device
// implementation copies record payloads on Append/WriteBlob (the documented
// contract — see storage.Mem), so an encode buffer may return to the pool
// the moment its durable write completes; steady-state encoding then
// allocates nothing once the pooled buffers have grown to the workload's
// payload sizes.
var bufPool = sync.Pool{New: func() any { return &Buffer{b: make([]byte, 0, 1024)} }}

// GetBuffer returns a reset pooled encode buffer. Pair with PutBuffer once
// the encoded bytes have been handed off (written to a device, or copied).
func GetBuffer() *Buffer {
	w := bufPool.Get().(*Buffer)
	w.Reset()
	return w
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must not
// touch the buffer — or any slice returned by its Bytes — afterwards.
func PutBuffer(w *Buffer) {
	if w != nil {
		bufPool.Put(w)
	}
}

// Buffer is an append-only encoder.
type Buffer struct {
	b []byte
}

// NewBuffer returns an encoder with the given capacity hint.
func NewBuffer(capHint int) *Buffer { return &Buffer{b: make([]byte, 0, capHint)} }

// Bytes returns the encoded content. The slice aliases the buffer.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of encoded bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset truncates the buffer for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// Uvarint appends an unsigned varint.
func (w *Buffer) Uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// Varint appends a zig-zag encoded signed varint.
func (w *Buffer) Varint(v int64) { w.b = binary.AppendVarint(w.b, v) }

// Byte appends one raw byte.
func (w *Buffer) Byte(v byte) { w.b = append(w.b, v) }

// Key appends a state key.
func (w *Buffer) Key(k types.Key) {
	w.Byte(byte(k.Table))
	w.Uvarint(uint64(k.Row))
}

// Reader decodes a byte stream produced by Buffer.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps an encoded byte slice.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint reads an unsigned varint; on error it records the error and
// returns 0, allowing straight-line decoding code with one final Err check.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = ErrShortBuffer
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = ErrShortBuffer
		return 0
	}
	r.off += n
	return v
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.err = ErrShortBuffer
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Key reads a state key.
func (r *Reader) Key() types.Key {
	t := r.Byte()
	row := r.Uvarint()
	return types.Key{Table: types.TableID(t), Row: uint32(row)}
}

// --- Events -----------------------------------------------------------

// Event appends one input event.
func (w *Buffer) Event(ev types.Event) {
	w.Uvarint(ev.Seq)
	w.Byte(byte(ev.Kind))
	w.Uvarint(uint64(len(ev.Keys)))
	for _, k := range ev.Keys {
		w.Key(k)
	}
	w.Uvarint(uint64(len(ev.Vals)))
	for _, v := range ev.Vals {
		w.Varint(v)
	}
}

// Event reads one input event.
func (r *Reader) Event() types.Event {
	var ev types.Event
	ev.Seq = r.Uvarint()
	ev.Kind = types.EventKind(r.Byte())
	nk := r.Uvarint()
	if r.err == nil && nk > uint64(r.Remaining()) {
		r.err = fmt.Errorf("codec: event key count %d exceeds input: %w", nk, ErrShortBuffer)
		return ev
	}
	if nk > 0 {
		ev.Keys = make([]types.Key, nk)
		for i := range ev.Keys {
			ev.Keys[i] = r.Key()
		}
	}
	nv := r.Uvarint()
	if r.err == nil && nv > uint64(r.Remaining()) {
		r.err = fmt.Errorf("codec: event val count %d exceeds input: %w", nv, ErrShortBuffer)
		return ev
	}
	if nv > 0 {
		ev.Vals = make([]types.Value, nv)
		for i := range ev.Vals {
			ev.Vals[i] = r.Varint()
		}
	}
	return ev
}

// EncodeEvents frames a batch of events: count followed by each event.
func EncodeEvents(events []types.Event) []byte {
	w := NewBuffer(16 + 24*len(events))
	EncodeEventsInto(w, events)
	return w.Bytes()
}

// EncodeEventsInto appends the EncodeEvents framing to w — the arena-reuse
// variant of the input-persistence hot path: the engine encodes every
// epoch's input batch into one persistent buffer instead of allocating a
// fresh slice per epoch.
func EncodeEventsInto(w *Buffer, events []types.Event) {
	w.Uvarint(uint64(len(events)))
	for _, ev := range events {
		w.Event(ev)
	}
}

// DecodeEvents parses a batch encoded by EncodeEvents.
func DecodeEvents(b []byte) ([]types.Event, error) {
	r := NewReader(b)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("codec: event count %d exceeds input: %w", n, ErrShortBuffer)
	}
	out := make([]types.Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Event())
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return out, r.Err()
}

// --- Snapshots --------------------------------------------------------

// EncodeSnapshot serialises a full store snapshot. Values are delta-encoded
// against the table's initial value, which compresses the common
// mostly-untouched-records case well under varint coding.
func EncodeSnapshot(tables []SnapshotTable) []byte {
	w := NewBuffer(1024)
	EncodeSnapshotInto(w, tables)
	return w.Bytes()
}

// EncodeSnapshotInto appends the EncodeSnapshot framing to w, letting the
// engine's snapshot writer reuse one buffer across snapshot markers.
func EncodeSnapshotInto(w *Buffer, tables []SnapshotTable) {
	w.Uvarint(uint64(len(tables)))
	for _, t := range tables {
		w.Byte(byte(t.ID))
		w.Uvarint(uint64(len(t.Vals)))
		w.Varint(t.Init)
		for _, v := range t.Vals {
			w.Varint(v - t.Init)
		}
	}
}

// SnapshotTable is the codec-level view of one table snapshot.
type SnapshotTable struct {
	ID   types.TableID
	Init types.Value
	Vals []types.Value
}

// DecodeSnapshot parses EncodeSnapshot output.
func DecodeSnapshot(b []byte) ([]SnapshotTable, error) {
	r := NewReader(b)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("codec: table count %d exceeds input: %w", n, ErrShortBuffer)
	}
	out := make([]SnapshotTable, 0, n)
	for i := uint64(0); i < n; i++ {
		var t SnapshotTable
		t.ID = types.TableID(r.Byte())
		rows := r.Uvarint()
		t.Init = r.Varint()
		if r.Err() == nil && rows > uint64(r.Remaining())+1 {
			return nil, fmt.Errorf("codec: row count %d exceeds input: %w", rows, ErrShortBuffer)
		}
		// The guard above is skipped when a read already failed, so check
		// before allocating: rows may hold a huge value whose trailing
		// bytes were cut off (fuzz-found out-of-memory otherwise).
		if err := r.Err(); err != nil {
			return nil, err
		}
		t.Vals = make([]types.Value, rows)
		for j := range t.Vals {
			t.Vals[j] = t.Init + r.Varint()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, r.Err()
}
