package codec

import (
	"fmt"

	"morphstreamr/internal/types"
)

// This file defines the per-mechanism log record formats. Record size is a
// measured quantity (Figures 12c/12d): WAL records are bare commands, DL
// records grow linearly with dependency count, LV records carry a fixed
// vector per transaction, and MSR view entries are small key/value tuples.

// WALRecord is one command-log record: the committed input event itself.
// Redoing the command re-runs preprocessing and the state accesses.
type WALRecord struct {
	Event types.Event
}

// EncodeWAL frames a batch of command records.
func EncodeWAL(recs []WALRecord) []byte {
	w := NewBuffer(16 + 24*len(recs))
	EncodeWALInto(w, recs)
	return w.Bytes()
}

// EncodeWALInto appends the EncodeWAL framing to w. The Into variants are
// the seal-path arena pass: mechanisms encode each epoch into a pooled
// buffer owned by their GroupCommitter (see ftapi.GroupCommitter.SealInto)
// instead of allocating a fresh payload per epoch.
func EncodeWALInto(w *Buffer, recs []WALRecord) {
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		w.Event(rec.Event)
	}
}

// DecodeWAL parses EncodeWAL output.
func DecodeWAL(b []byte) ([]WALRecord, error) {
	r := NewReader(b)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("codec: wal count %d exceeds input: %w", n, ErrShortBuffer)
	}
	out := make([]WALRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, WALRecord{Event: r.Event()})
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	// r.Err() catches a short or missing count: a zero-length torn payload
	// must fail, not parse as an empty batch.
	return out, r.Err()
}

// DLRecord is one dependency-logging record in the style of DistDGCC: the
// committed command plus the identifiers of the transactions it depends on
// (incoming edges). Outgoing edges are implied and rebuilt during recovery.
// Record size grows with the number of dependencies, which is exactly the
// runtime overhead the paper attributes to DL.
type DLRecord struct {
	Event types.Event
	// In lists the transaction IDs this transaction depends on (TD and PD
	// sources), deduplicated and sorted ascending.
	In []uint64
}

// EncodeDL frames a batch of dependency records. Incoming-edge lists are
// delta-encoded, exploiting their sorted order.
func EncodeDL(recs []DLRecord) []byte {
	w := NewBuffer(16 + 32*len(recs))
	EncodeDLInto(w, recs)
	return w.Bytes()
}

// EncodeDLInto appends the EncodeDL framing to w (see EncodeWALInto).
func EncodeDLInto(w *Buffer, recs []DLRecord) {
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		w.Event(rec.Event)
		w.Uvarint(uint64(len(rec.In)))
		prev := uint64(0)
		for _, id := range rec.In {
			w.Uvarint(id - prev)
			prev = id
		}
	}
}

// DecodeDL parses EncodeDL output.
func DecodeDL(b []byte) ([]DLRecord, error) {
	r := NewReader(b)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("codec: dl count %d exceeds input: %w", n, ErrShortBuffer)
	}
	out := make([]DLRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec DLRecord
		rec.Event = r.Event()
		ne := r.Uvarint()
		if r.Err() == nil && ne > uint64(r.Remaining())+1 {
			return nil, fmt.Errorf("codec: dl edge count %d exceeds input: %w", ne, ErrShortBuffer)
		}
		prev := uint64(0)
		for j := uint64(0); j < ne; j++ {
			prev += r.Uvarint()
			rec.In = append(rec.In, prev)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, r.Err()
}

// LVRecord is one Taurus-style log record: the committed command, the
// worker that executed it, its log sequence number on that worker, and the
// dependency vector (one LSN per worker) that must be recovered before this
// transaction may replay.
type LVRecord struct {
	Event  types.Event
	Worker uint32
	LSN    uint64
	Vector []uint64
}

// EncodeLV frames a batch of LSN-vector records.
func EncodeLV(recs []LVRecord) []byte {
	w := NewBuffer(16 + 48*len(recs))
	EncodeLVInto(w, recs)
	return w.Bytes()
}

// EncodeLVInto appends the EncodeLV framing to w (see EncodeWALInto).
func EncodeLVInto(w *Buffer, recs []LVRecord) {
	w.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		w.Event(rec.Event)
		w.Uvarint(uint64(rec.Worker))
		w.Uvarint(rec.LSN)
		w.Uvarint(uint64(len(rec.Vector)))
		for _, v := range rec.Vector {
			w.Uvarint(v)
		}
	}
}

// DecodeLV parses EncodeLV output.
func DecodeLV(b []byte) ([]LVRecord, error) {
	r := NewReader(b)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("codec: lv count %d exceeds input: %w", n, ErrShortBuffer)
	}
	out := make([]LVRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec LVRecord
		rec.Event = r.Event()
		rec.Worker = uint32(r.Uvarint())
		rec.LSN = r.Uvarint()
		nv := r.Uvarint()
		if r.Err() == nil && nv > uint64(r.Remaining())+1 {
			return nil, fmt.Errorf("codec: lv vector len %d exceeds input: %w", nv, ErrShortBuffer)
		}
		rec.Vector = make([]uint64, nv)
		for j := range rec.Vector {
			rec.Vector[j] = r.Uvarint()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, r.Err()
}

// ViewEntry is one MorphStreamR ParametricView record: the intermediate
// result of a resolved parametric dependency (Figure 5). During recovery an
// operation on To with timestamp TS that parametrically depends on From
// looks the consumed value up by the (From, To, TS) triple instead of
// re-resolving the dependency across threads.
type ViewEntry struct {
	From  types.Key
	To    types.Key
	TS    uint64
	Value types.Value
}

// GroupEntry records the selective-logging group of one chain, so that
// recovery can co-locate the chains whose intra-group dependencies were
// deliberately not logged (the shadow-exploration contract).
type GroupEntry struct {
	Key   types.Key
	Group uint8
}

// MSRViews is the epoch payload of the MorphStreamR Logging Manager: the
// AbortView (identifiers of aborted transactions, sorted ascending), the
// ParametricView entries recorded in the epoch, and — under selective
// logging — the chain-group assignments the classification used.
type MSRViews struct {
	Aborted    []uint64
	Parametric []ViewEntry
	Groups     []GroupEntry
}

// EncodeMSR frames one epoch's views. Abort IDs are delta-encoded.
func EncodeMSR(v MSRViews) []byte {
	w := NewBuffer(32 + 8*len(v.Aborted) + 24*len(v.Parametric) + 8*len(v.Groups))
	EncodeMSRInto(w, v)
	return w.Bytes()
}

// EncodeMSRInto appends the EncodeMSR framing to w (see EncodeWALInto).
func EncodeMSRInto(w *Buffer, v MSRViews) {
	w.Uvarint(uint64(len(v.Aborted)))
	prev := uint64(0)
	for _, id := range v.Aborted {
		w.Uvarint(id - prev)
		prev = id
	}
	w.Uvarint(uint64(len(v.Parametric)))
	for _, e := range v.Parametric {
		w.Key(e.From)
		w.Key(e.To)
		w.Uvarint(e.TS)
		w.Varint(e.Value)
	}
	w.Uvarint(uint64(len(v.Groups)))
	for _, e := range v.Groups {
		w.Key(e.Key)
		w.Byte(e.Group)
	}
}

// DecodeMSR parses EncodeMSR output.
func DecodeMSR(b []byte) (MSRViews, error) {
	var v MSRViews
	r := NewReader(b)
	na := r.Uvarint()
	if r.Err() == nil && na > uint64(len(b)) {
		return v, fmt.Errorf("codec: abort count %d exceeds input: %w", na, ErrShortBuffer)
	}
	prev := uint64(0)
	for i := uint64(0); i < na; i++ {
		prev += r.Uvarint()
		v.Aborted = append(v.Aborted, prev)
	}
	np := r.Uvarint()
	if r.Err() == nil && np > uint64(r.Remaining())+1 {
		return v, fmt.Errorf("codec: view count %d exceeds input: %w", np, ErrShortBuffer)
	}
	v.Parametric = make([]ViewEntry, 0, np)
	for i := uint64(0); i < np; i++ {
		var e ViewEntry
		e.From = r.Key()
		e.To = r.Key()
		e.TS = r.Uvarint()
		e.Value = r.Varint()
		if err := r.Err(); err != nil {
			return v, err
		}
		v.Parametric = append(v.Parametric, e)
	}
	ng := r.Uvarint()
	if r.Err() == nil && ng > uint64(r.Remaining())+1 {
		return v, fmt.Errorf("codec: group count %d exceeds input: %w", ng, ErrShortBuffer)
	}
	for i := uint64(0); i < ng; i++ {
		var e GroupEntry
		e.Key = r.Key()
		e.Group = r.Byte()
		if err := r.Err(); err != nil {
			return v, err
		}
		v.Groups = append(v.Groups, e)
	}
	return v, r.Err()
}
