//go:build race

package codec

// raceEnabled reports whether the race detector instruments this build;
// pins that depend on sync.Pool retention consult it (the detector drops
// pool items on purpose to expose reuse races).
const raceEnabled = true
