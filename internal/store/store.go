// Package store implements the shared mutable state of the engine: a set of
// fixed-size in-memory tables addressed by (table, row) keys.
//
// Concurrency model. The engine's schedulers guarantee that at most one
// worker writes a given record at a time (operations on one key form a
// temporal chain executed in timestamp order), but a record written by one
// worker may be read by another when resolving parametric dependencies at
// epoch boundaries. Record values are therefore accessed with atomic
// loads/stores: cheap, race-free, and strong enough because all cross-thread
// reads are ordered by the scheduler's dependency counters (which are
// themselves atomic and create the necessary happens-before edges).
package store

import (
	"fmt"
	"sync/atomic"

	"morphstreamr/internal/types"
)

// Store holds every table of one application instance.
type Store struct {
	// tables is dense, indexed directly by TableID: table identifiers are
	// small (uint8) and fixed at New, and Get/Set sit on the fire path of
	// every operation, where a map lookup per access is measurable.
	// Undeclared IDs within the slice hold nil.
	tables []*table
	specs  []types.TableSpec
}

type table struct {
	spec types.TableSpec
	rows []atomic.Int64
	// dirty is the partition-grain write bitmap behind incremental
	// checkpoints; nil until EnableDirtyTracking (legacy full-snapshot runs
	// never pay the branch).
	dirty *dirtyMap
}

// New creates a store with the given tables, each record initialised to the
// table's Init value.
func New(specs []types.TableSpec) *Store {
	maxID := types.TableID(0)
	for _, sp := range specs {
		if sp.ID > maxID {
			maxID = sp.ID
		}
	}
	s := &Store{tables: make([]*table, int(maxID)+1)}
	s.specs = append(s.specs, specs...)
	for _, sp := range specs {
		t := &table{spec: sp, rows: make([]atomic.Int64, sp.Rows)}
		if sp.Init != 0 {
			for i := range t.rows {
				t.rows[i].Store(sp.Init)
			}
		}
		s.tables[sp.ID] = t
	}
	return s
}

// Specs returns the table declarations the store was created with.
func (s *Store) Specs() []types.TableSpec { return s.specs }

// Get returns the current value of key. It panics on unknown tables or
// out-of-range rows: those are programming errors in workload generators,
// not runtime conditions.
func (s *Store) Get(k types.Key) types.Value {
	return s.row(k).Load()
}

// Set overwrites the value of key, marking its partition dirty when
// tracking is enabled (replayed mechanism writes and tail reprocessing also
// land here, which is what keeps the dirty map consistent across recovery:
// every post-checkpoint write is re-marked by the replay that redoes it).
func (s *Store) Set(k types.Key, v types.Value) {
	if int(k.Table) >= len(s.tables) || s.tables[k.Table] == nil {
		panic(fmt.Sprintf("store: unknown table %d", k.Table))
	}
	t := s.tables[k.Table]
	if k.Row >= uint32(len(t.rows)) {
		panic(fmt.Sprintf("store: row %d out of range for table %d (%d rows)",
			k.Row, k.Table, len(t.rows)))
	}
	t.rows[k.Row].Store(v)
	if t.dirty != nil {
		t.dirty.mark(k.Row)
	}
}

func (s *Store) row(k types.Key) *atomic.Int64 {
	if int(k.Table) >= len(s.tables) || s.tables[k.Table] == nil {
		panic(fmt.Sprintf("store: unknown table %d", k.Table))
	}
	t := s.tables[k.Table]
	if k.Row >= uint32(len(t.rows)) {
		panic(fmt.Sprintf("store: row %d out of range for table %d (%d rows)",
			k.Row, k.Table, len(t.rows)))
	}
	return &t.rows[k.Row]
}

// lookup returns the table for id, or nil when the store does not declare
// it. Unlike row, it tolerates out-of-range IDs (used by cross-store
// comparisons where the other store's layout may differ).
func (s *Store) lookup(id types.TableID) *table {
	if int(id) >= len(s.tables) {
		return nil
	}
	return s.tables[id]
}

// NumRecords returns the total number of records across all tables.
func (s *Store) NumRecords() int {
	n := 0
	for _, sp := range s.specs {
		n += int(sp.Rows)
	}
	return n
}

// Snapshot copies the full store content. The engine only calls it at epoch
// barriers when no workers are mutating state, so a plain value copy is a
// transaction-consistent global snapshot.
func (s *Store) Snapshot() *Snapshot {
	snap := &Snapshot{Tables: make([]TableSnapshot, 0, len(s.specs))}
	for _, sp := range s.specs {
		t := s.tables[sp.ID]
		vals := make([]types.Value, len(t.rows))
		for i := range t.rows {
			vals[i] = t.rows[i].Load()
		}
		snap.Tables = append(snap.Tables, TableSnapshot{Spec: sp, Vals: vals})
	}
	return snap
}

// Restore overwrites the store content from a snapshot. The snapshot's
// table specs must match the store's (same tables, same sizes).
func (s *Store) Restore(snap *Snapshot) error {
	if len(snap.Tables) != len(s.specs) {
		return fmt.Errorf("store: snapshot has %d tables, store has %d",
			len(snap.Tables), len(s.specs))
	}
	for _, ts := range snap.Tables {
		t := s.lookup(ts.Spec.ID)
		if t == nil {
			return fmt.Errorf("store: snapshot table %d not in store", ts.Spec.ID)
		}
		if len(ts.Vals) != len(t.rows) {
			return fmt.Errorf("store: snapshot table %d has %d rows, store has %d",
				ts.Spec.ID, len(ts.Vals), len(t.rows))
		}
		for i, v := range ts.Vals {
			t.rows[i].Store(v)
		}
	}
	return nil
}

// Equal reports whether two stores hold identical content. Used by the
// crash-recovery equivalence tests.
func (s *Store) Equal(o *Store) bool {
	if len(s.specs) != len(o.specs) {
		return false
	}
	for _, sp := range s.specs {
		t, ot := s.tables[sp.ID], o.lookup(sp.ID)
		if ot == nil || len(t.rows) != len(ot.rows) {
			return false
		}
		for i := range t.rows {
			if t.rows[i].Load() != ot.rows[i].Load() {
				return false
			}
		}
	}
	return true
}

// Diff returns up to max keys whose values differ between the stores,
// formatted for test failure messages.
func (s *Store) Diff(o *Store, max int) []string {
	var out []string
	for _, sp := range s.specs {
		t, ot := s.tables[sp.ID], o.lookup(sp.ID)
		if ot == nil {
			out = append(out, fmt.Sprintf("table %d missing", sp.ID))
			continue
		}
		for i := range t.rows {
			if len(out) >= max {
				return out
			}
			a, b := t.rows[i].Load(), ot.rows[i].Load()
			if a != b {
				k := types.Key{Table: sp.ID, Row: uint32(i)}
				out = append(out, fmt.Sprintf("%v: %d != %d", k, a, b))
			}
		}
	}
	return out
}

// Snapshot is a transaction-consistent copy of the entire store.
type Snapshot struct {
	Tables []TableSnapshot
}

// TableSnapshot is the snapshot of one table.
type TableSnapshot struct {
	Spec types.TableSpec
	Vals []types.Value
}

// Bytes estimates the in-memory size of the snapshot payload, used for
// storage accounting.
func (s *Snapshot) Bytes() int {
	n := 0
	for _, t := range s.Tables {
		n += 8 * len(t.Vals)
	}
	return n
}
