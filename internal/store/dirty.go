package store

import (
	"sort"
	"sync/atomic"

	"morphstreamr/internal/types"
)

// DirtyPartitionRows is the row granularity of dirty tracking: each table is
// divided into fixed partitions of this many rows, and one write anywhere in
// a partition marks the whole partition dirty for the current snapshot
// interval. Coarser than per-row tracking, it keeps the hot-path cost to one
// atomic load (and rarely a store) per Set while still letting incremental
// checkpoints skip the cold bulk of a skewed workload's state.
const DirtyPartitionRows = 64

// dirtyMap is the per-table dirty-partition bitmap. Partitions are marked
// with an idempotent Load-check-then-Store on atomic.Bool: concurrent
// markers race benignly (both write true), and the load-first fast path
// avoids cache-line ping-pong when a hot partition is marked repeatedly
// within one interval.
type dirtyMap struct {
	parts []atomic.Bool
}

func (d *dirtyMap) mark(row uint32) {
	p := int(row) / DirtyPartitionRows
	if !d.parts[p].Load() {
		d.parts[p].Store(true)
	}
}

// EnableDirtyTracking switches on partition-grain write tracking. It is a
// one-way switch, called by the engine before processing starts when the
// run shape asks for incremental checkpoints; a store created for a legacy
// full-snapshot run never pays the tracking branch.
func (s *Store) EnableDirtyTracking() {
	for _, t := range s.tables {
		if t == nil || t.dirty != nil {
			continue
		}
		n := (len(t.rows) + DirtyPartitionRows - 1) / DirtyPartitionRows
		t.dirty = &dirtyMap{parts: make([]atomic.Bool, n)}
	}
}

// DirtyTracking reports whether EnableDirtyTracking has been called.
func (s *Store) DirtyTracking() bool {
	for _, t := range s.tables {
		if t != nil {
			return t.dirty != nil
		}
	}
	return false
}

// PartitionRef names one dirty partition: a table and the partition's index
// within it (rows [Part*DirtyPartitionRows, ...)).
type PartitionRef struct {
	Table types.TableID
	Part  uint32
}

// DirtyPartitions returns the partitions written since the last ResetDirty,
// sorted by (table, partition) so delta encodings are deterministic.
func (s *Store) DirtyPartitions() []PartitionRef {
	var out []PartitionRef
	for _, sp := range s.specs {
		t := s.tables[sp.ID]
		if t.dirty == nil {
			continue
		}
		for p := range t.dirty.parts {
			if t.dirty.parts[p].Load() {
				out = append(out, PartitionRef{Table: sp.ID, Part: uint32(p)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// ResetDirty clears every dirty bit, opening the next snapshot interval.
// The engine calls it at the epoch barrier right after encoding a delta (or
// a base), when no workers are mutating state.
func (s *Store) ResetDirty() {
	for _, t := range s.tables {
		if t == nil || t.dirty == nil {
			continue
		}
		for p := range t.dirty.parts {
			t.dirty.parts[p].Store(false)
		}
	}
}

// PartitionVals copies one partition's current values (short final
// partitions yield short slices). Like Snapshot, it is only called at epoch
// barriers, so the copy is transaction-consistent.
func (s *Store) PartitionVals(ref PartitionRef) []types.Value {
	t := s.lookup(ref.Table)
	if t == nil {
		return nil
	}
	lo := int(ref.Part) * DirtyPartitionRows
	if lo >= len(t.rows) {
		return nil
	}
	hi := lo + DirtyPartitionRows
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	out := make([]types.Value, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = t.rows[i].Load()
	}
	return out
}

// RestorePartition overwrites one partition from a delta during recovery
// composition. Values beyond the table's end are rejected by length: the
// caller decoded them against the same specs, so a mismatch is corruption.
func (s *Store) RestorePartition(ref PartitionRef, vals []types.Value) bool {
	t := s.lookup(ref.Table)
	if t == nil {
		return false
	}
	lo := int(ref.Part) * DirtyPartitionRows
	if lo >= len(t.rows) || lo+len(vals) > len(t.rows) {
		return false
	}
	for i, v := range vals {
		t.rows[lo+i].Store(v)
	}
	return true
}
