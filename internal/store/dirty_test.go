package store

import (
	"sync"
	"testing"

	"morphstreamr/internal/types"
)

func bigTables() []types.TableSpec {
	return []types.TableSpec{
		{ID: 0, Rows: 4 * DirtyPartitionRows, Init: 100},
		{ID: 1, Rows: DirtyPartitionRows + 10},
	}
}

// TestDirtyTrackingMarksPartitions: writes mark exactly their partitions,
// in deterministic sorted order.
func TestDirtyTrackingMarksPartitions(t *testing.T) {
	s := New(bigTables())
	if s.DirtyTracking() {
		t.Fatal("tracking on before enable")
	}
	s.Set(types.Key{Table: 0, Row: 1}, 1) // not tracked yet
	s.EnableDirtyTracking()
	if !s.DirtyTracking() {
		t.Fatal("tracking off after enable")
	}
	if got := s.DirtyPartitions(); len(got) != 0 {
		t.Fatalf("pre-enable write tracked: %v", got)
	}

	s.Set(types.Key{Table: 0, Row: 0}, 5)
	s.Set(types.Key{Table: 0, Row: DirtyPartitionRows - 1}, 6) // same partition
	s.Set(types.Key{Table: 0, Row: 3 * DirtyPartitionRows}, 7) // partition 3
	s.Set(types.Key{Table: 1, Row: DirtyPartitionRows + 2}, 8) // table 1 partition 1
	got := s.DirtyPartitions()
	want := []PartitionRef{{Table: 0, Part: 0}, {Table: 0, Part: 3}, {Table: 1, Part: 1}}
	if len(got) != len(want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", got, want)
		}
	}

	s.ResetDirty()
	if got := s.DirtyPartitions(); len(got) != 0 {
		t.Fatalf("after reset: %v", got)
	}
}

// TestPartitionValsRoundTrip: a partition copies out and restores into a
// second store, short tail partitions included.
func TestPartitionValsRoundTrip(t *testing.T) {
	a := New(bigTables())
	for r := uint32(0); r < DirtyPartitionRows+10; r++ {
		a.Set(types.Key{Table: 1, Row: r}, types.Value(r)*3)
	}
	b := New(bigTables())
	for _, part := range []uint32{0, 1} {
		ref := PartitionRef{Table: 1, Part: part}
		vals := a.PartitionVals(ref)
		if part == 1 && len(vals) != 10 {
			t.Fatalf("tail partition len = %d, want 10", len(vals))
		}
		if !b.RestorePartition(ref, vals) {
			t.Fatalf("restore partition %d failed", part)
		}
	}
	if !a.Equal(b) {
		t.Fatalf("stores differ after partition restore: %v", a.Diff(b, 5))
	}
}

// TestRestorePartitionRejectsBadShapes: out-of-range partitions and
// overlong value slices are refused, not silently clipped.
func TestRestorePartitionRejectsBadShapes(t *testing.T) {
	s := New(bigTables())
	if s.RestorePartition(PartitionRef{Table: 9, Part: 0}, []types.Value{1}) {
		t.Fatal("unknown table accepted")
	}
	if s.RestorePartition(PartitionRef{Table: 1, Part: 5}, []types.Value{1}) {
		t.Fatal("out-of-range partition accepted")
	}
	long := make([]types.Value, DirtyPartitionRows)
	if s.RestorePartition(PartitionRef{Table: 1, Part: 1}, long) {
		t.Fatal("overlong tail restore accepted")
	}
	if s.PartitionVals(PartitionRef{Table: 1, Part: 7}) != nil {
		t.Fatal("out-of-range partition vals not nil")
	}
}

// TestDirtyTrackingConcurrent: concurrent writers marking the same and
// different partitions race benignly (exercised under -race in CI).
func TestDirtyTrackingConcurrent(t *testing.T) {
	s := New(bigTables())
	s.EnableDirtyTracking()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				row := uint32((w*37 + i) % (4 * DirtyPartitionRows))
				s.Set(types.Key{Table: 0, Row: row}, types.Value(i))
			}
		}(w)
	}
	wg.Wait()
	if got := s.DirtyPartitions(); len(got) != 4 {
		t.Fatalf("dirty partitions = %v, want all 4 of table 0", got)
	}
}
