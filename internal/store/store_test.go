package store

import (
	"testing"

	"morphstreamr/internal/types"
)

func twoTables() []types.TableSpec {
	return []types.TableSpec{
		{ID: 0, Rows: 8, Init: 100},
		{ID: 1, Rows: 4, Init: 0},
	}
}

func TestInitAndGetSet(t *testing.T) {
	s := New(twoTables())
	if got := s.Get(types.Key{Table: 0, Row: 3}); got != 100 {
		t.Errorf("initial value = %d, want 100", got)
	}
	if got := s.Get(types.Key{Table: 1, Row: 0}); got != 0 {
		t.Errorf("initial value = %d, want 0", got)
	}
	k := types.Key{Table: 0, Row: 5}
	s.Set(k, -7)
	if got := s.Get(k); got != -7 {
		t.Errorf("after Set: %d, want -7", got)
	}
	if s.NumRecords() != 12 {
		t.Errorf("NumRecords = %d, want 12", s.NumRecords())
	}
}

func TestPanicsOnBadKeys(t *testing.T) {
	s := New(twoTables())
	for _, k := range []types.Key{{Table: 9, Row: 0}, {Table: 0, Row: 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for bad key %v", k)
				}
			}()
			s.Get(k)
		}()
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(twoTables())
	s.Set(types.Key{Table: 0, Row: 1}, 42)
	snap := s.Snapshot()
	s.Set(types.Key{Table: 0, Row: 1}, 99)
	s.Set(types.Key{Table: 1, Row: 2}, 7)

	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(types.Key{Table: 0, Row: 1}); got != 42 {
		t.Errorf("restored value = %d, want 42", got)
	}
	if got := s.Get(types.Key{Table: 1, Row: 2}); got != 0 {
		t.Errorf("restored value = %d, want 0", got)
	}
	if snap.Bytes() != 8*12 {
		t.Errorf("snapshot Bytes() = %d, want %d", snap.Bytes(), 8*12)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New(twoTables())
	snap := s.Snapshot()
	s.Set(types.Key{Table: 0, Row: 0}, 1)
	if snap.Tables[0].Vals[0] != 100 {
		t.Error("snapshot aliases live store values")
	}
}

func TestRestoreShapeMismatch(t *testing.T) {
	s := New(twoTables())
	other := New([]types.TableSpec{{ID: 0, Rows: 8, Init: 100}})
	if err := s.Restore(other.Snapshot()); err == nil {
		t.Error("restoring a snapshot with missing tables must fail")
	}
	bad := s.Snapshot()
	bad.Tables[0].Vals = bad.Tables[0].Vals[:4]
	if err := s.Restore(bad); err == nil {
		t.Error("restoring a snapshot with short tables must fail")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := New(twoTables()), New(twoTables())
	if !a.Equal(b) {
		t.Fatal("fresh stores must be equal")
	}
	b.Set(types.Key{Table: 1, Row: 3}, 5)
	if a.Equal(b) {
		t.Fatal("stores differ but Equal says otherwise")
	}
	diff := a.Diff(b, 10)
	if len(diff) != 1 {
		t.Fatalf("Diff = %v, want one entry", diff)
	}
	b.Set(types.Key{Table: 0, Row: 0}, 1)
	b.Set(types.Key{Table: 0, Row: 1}, 2)
	if got := a.Diff(b, 2); len(got) != 2 {
		t.Errorf("Diff cap: got %d entries, want 2", len(got))
	}
}
