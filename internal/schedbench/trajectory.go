package schedbench

import (
	"time"

	"morphstreamr/internal/adaptive"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// A Trajectory is the adaptive benchmark's unit of measurement: a fresh
// multi-epoch run whose graphs evolve with the stream, unlike the static
// grid's single ResetExec'd epoch. The controller's value shows up only
// across epochs — it needs history to morph — so adaptive and static
// strategies are compared on whole trajectories.
type Trajectory struct {
	Name   string
	NewGen func() workload.Generator
	Epochs int
}

// Trajectories returns the adaptive benchmark's workload axis: two steady
// streams (one parallel-friendly, one hot-keyed and serial) that bound the
// controller against the best static choice, and the phase-shifting stream
// where no static choice is right.
func Trajectories() []Trajectory {
	return []Trajectory{
		{Name: "GS-steady-uniform", Epochs: 12, NewGen: func() workload.Generator {
			p := workload.DefaultGSParams()
			p.Theta, p.WriteOnly = 0, true
			return workload.NewGS(p)
		}},
		{Name: "GS-steady-hot", Epochs: 12, NewGen: func() workload.Generator {
			// Two rows: every epoch is a pair of ~1024-op serial chains, the
			// steady workload where fewer workers (or none) win.
			p := workload.DefaultGSParams()
			p.WriteOnly, p.Rows, p.Theta = true, 2, 0
			return workload.NewGS(p)
		}},
		{Name: "GS-phased", Epochs: 32, NewGen: func() workload.Generator {
			return workload.NewPhased(workload.DefaultPhasedParams())
		}},
	}
}

// TrajectoryResult is one measured trajectory run.
type TrajectoryResult struct {
	// Wall is the summed execution wall time (graph construction and event
	// generation excluded — identical work on every side).
	Wall time.Duration
	// Ops is the total operation count across epochs.
	Ops int
	// Morphs counts controller strategy changes (adaptive runs only).
	Morphs int
}

// runTrajectory drives the epochs of one fresh trajectory through exec,
// timing only execution.
func runTrajectory(tr Trajectory, exec func(g *tpg.Graph, st *store.Store) error) (TrajectoryResult, error) {
	gen := tr.NewGen()
	app := gen.App()
	st := store.New(app.Tables())
	b := tpg.NewBuilder()
	var res TrajectoryResult
	for e := 0; e < tr.Epochs; e++ {
		events := workload.Batch(gen, EpochEvents)
		txns := make([]*types.Txn, len(events))
		for i := range events {
			txn := app.Preprocess(events[i])
			txns[i] = &txn
		}
		g := b.Build(txns)
		g.CaptureBases(st.Get)
		t0 := time.Now()
		err := exec(g, st)
		res.Wall += time.Since(t0)
		res.Ops += g.NumOps
		if err != nil {
			return res, err
		}
		b.Release(g)
	}
	return res, nil
}

// RunTrajectoryStatic executes a trajectory the way a non-adaptive engine
// would: the work-stealing scheduler at one fixed worker count.
func RunTrajectoryStatic(tr Trajectory, workers int) (TrajectoryResult, error) {
	return runTrajectory(tr, func(g *tpg.Graph, st *store.Store) error {
		_, err := scheduler.Run(g, st, scheduler.Options{Workers: workers})
		return err
	})
}

// RunTrajectoryAdaptive executes a trajectory under the adaptive
// controller, mirroring the engine's adaptive path: per-epoch structural
// signals pick the strategy, the persistent pool executes steal runs, and
// wall/steal feedback trains the controller.
func RunTrajectoryAdaptive(tr Trajectory, maxWorkers int) (TrajectoryResult, error) {
	ctrl := adaptive.New(adaptive.Config{MaxWorkers: maxWorkers})
	pool := scheduler.NewPool(maxWorkers, nil)
	defer pool.Close()
	epoch := uint64(0)
	res, err := runTrajectory(tr, func(g *tpg.Graph, st *store.Store) error {
		epoch++
		maxChain := 0
		for _, ch := range g.ChainList {
			if len(ch.Ops) > maxChain {
				maxChain = len(ch.Ops)
			}
		}
		strat := ctrl.Decide(adaptive.Signals{
			Epoch:    epoch,
			Ops:      g.NumOps,
			Chains:   len(g.ChainList),
			MaxChain: maxChain,
			Heads:    len(g.Heads()),
		})
		var eps obs.SchedStats
		t0 := time.Now()
		var err error
		switch strat.Impl {
		case adaptive.ImplSeq:
			_, err = scheduler.RunSequential(g, st, false)
		case adaptive.ImplChanRef:
			_, err = scheduler.RunChanRef(g, st, scheduler.Options{Workers: strat.Workers, Stats: &eps})
		default:
			_, err = pool.Run(g, st, scheduler.Options{Workers: strat.Workers, Stats: &eps})
		}
		if err != nil {
			return err
		}
		ctrl.Feedback(adaptive.Feedback{
			Epoch:      epoch,
			Strategy:   strat,
			Wall:       time.Since(t0),
			Ops:        g.NumOps,
			Steals:     eps.Steals.Load(),
			StealFails: eps.StealFails.Load(),
			Parks:      eps.Parks.Load(),
			Stalls:     eps.Stalls.Load(),
		})
		return nil
	})
	res.Morphs = ctrl.Morphs()
	return res, err
}
