// Package schedbench is the shared harness behind the scheduler
// microbenchmarks: the Go benchmarks in internal/scheduler and the
// cmd/schedbench binary (which writes BENCH_scheduler.json) both drive it,
// so the committed numbers and `go test -bench` measure the same thing.
//
// A benchmark case executes one prepared epoch graph repeatedly: the graph
// is built once, and each run calls ResetExec to restore every dependency
// counter to its post-build state instead of rebuilding — so the
// measurement isolates scheduling cost (acquisition, stealing, resolution,
// termination) from graph construction. The store evolves across runs and
// captured dependency base values go stale; that is deliberate and fair,
// since execution cost per operation does not depend on the values and
// both implementations see the identical sequence of store states.
package schedbench

import (
	"fmt"

	"morphstreamr/internal/obs"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// EpochEvents is the batch size of every benchmark epoch.
const EpochEvents = 2048

// Implementations.
const (
	// ImplSteal is the work-stealing scheduler (scheduler.Run).
	ImplSteal = "steal"
	// ImplChanRef is the seed channel-based scheduler, preserved verbatim
	// as the before side of the comparison (scheduler.RunChanRef).
	ImplChanRef = "chanref"
)

// Impls lists both sides of the comparison.
func Impls() []string { return []string{ImplChanRef, ImplSteal} }

// Workers are the parallelism levels the trajectory sweeps.
func Workers() []int { return []int{1, 2, 4, 8} }

// Workload is one named generator configuration.
type Workload struct {
	Name   string
	NewGen func() workload.Generator
}

// Workloads returns the benchmark grid's workload axis: Grep&Sum across
// key skews (uniform, moderate, heavy — the skew controls temporal-chain
// length and hence how contended the hot chains are) and the Streaming
// Ledger's transfer mix (multi-op transactions with condition guards).
func Workloads() []Workload {
	gs := func(theta float64) func() workload.Generator {
		return func() workload.Generator {
			p := workload.DefaultGSParams()
			p.Theta = theta
			return workload.NewGS(p)
		}
	}
	return []Workload{
		{Name: "GS-theta0.0", NewGen: gs(0)},
		{Name: "GS-theta0.6", NewGen: gs(0.6)},
		{Name: "GS-theta1.2", NewGen: gs(1.2)},
		{Name: "SL-default", NewGen: func() workload.Generator {
			return workload.NewSL(workload.DefaultSLParams())
		}},
	}
}

// Epoch is one prepared benchmark input: a built graph over the store
// holding its epoch-start state.
type Epoch struct {
	G  *tpg.Graph
	St *store.Store
}

// Prepare draws one epoch of events and builds its graph.
func Prepare(w Workload) *Epoch {
	gen := w.NewGen()
	st := store.New(gen.App().Tables())
	events := workload.Batch(gen, EpochEvents)
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := gen.App().Preprocess(events[i])
		txns[i] = &txn
	}
	return &Epoch{G: tpg.Build(txns, st.Get), St: st}
}

// Run resets the epoch's execution state and runs it once under the given
// implementation.
func Run(impl string, ep *Epoch, workers int) error {
	return RunObserved(impl, ep, workers, nil, nil)
}

// RunObserved is Run with the observability layer wired in: scheduler
// steal/park/stall counters accumulate into stats and one execute span per
// run is emitted through o. Both are nil-safe — nil o and stats reproduce
// Run exactly, which is what the hot-path overhead budget is measured
// against.
func RunObserved(impl string, ep *Epoch, workers int, o *obs.Observer, stats *obs.SchedStats) error {
	ep.G.ResetExec()
	sp := o.Begin(0, obs.CatEpoch, "execute", 0)
	defer sp.End()
	opt := scheduler.Options{Workers: workers, Stats: stats}
	switch impl {
	case ImplSteal:
		_, err := scheduler.Run(ep.G, ep.St, opt)
		return err
	case ImplChanRef:
		_, err := scheduler.RunChanRef(ep.G, ep.St, opt)
		return err
	default:
		return fmt.Errorf("schedbench: unknown implementation %q", impl)
	}
}
