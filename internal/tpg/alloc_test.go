package tpg

import (
	"testing"

	"morphstreamr/internal/types"
)

// TestBuilderBuildAllocBound pins the arena-recycling contract of the
// epoch-construction hot path: once a graph has been built and released,
// rebuilding an epoch of the same shape reuses its arenas, slices, and map
// buckets, so the steady-state allocation count is a small constant — not
// proportional to the number of transactions or operations.
func TestBuilderBuildAllocBound(t *testing.T) {
	txns := make([]*types.Txn, 200)
	for i := range txns {
		id := uint64(i + 1)
		k1 := types.Key{Table: 0, Row: uint32(i % 31)}
		k2 := types.Key{Table: 0, Row: uint32((i + 7) % 31)}
		txns[i] = &types.Txn{ID: id, TS: id, Ops: []types.Operation{
			{TxnID: id, TS: id, Idx: 0, Key: k1, Fn: types.FnAdd, Const: 1},
			{TxnID: id, TS: id, Idx: 1, Key: k2, Fn: types.FnGuardedAdd, Const: 1, Deps: []types.Key{k1}},
		}}
	}

	b := NewBuilder()
	b.Release(b.Build(txns)) // warm: grow arenas once

	got := testing.AllocsPerRun(50, func() {
		b.Release(b.Build(txns))
	})
	// The pin is deliberately far below one allocation per transaction
	// (200 txns, 400 ops): a regression that reintroduces per-node or
	// per-chain allocation jumps past it immediately.
	const bound = 32
	if got > bound {
		t.Fatalf("recycled build: %.1f allocs/op, want <= %d (200 txns would be ~400+ without recycling)", got, bound)
	}
}
