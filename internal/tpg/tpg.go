// Package tpg implements the task precedence graph (TPG) at the heart of
// the engine (Section IV): vertices are state access operations, edges are
// the three fine-grained dependency kinds of Section II-A:
//
//   - Temporal dependencies (TD) order operations on the same key by
//     timestamp; each key's operations form a chain.
//   - Logical dependencies (LD) tie a transaction's operations to its
//     condition operation (index 0), which decides commit or abort.
//   - Parametric dependencies (PD) connect an operation to the most recent
//     earlier writer of each key whose value its function consumes.
//
// Determinism contract. An operation's dependency values are the values of
// its dep keys as of the operation's timestamp: the Result of the latest
// in-epoch writer with a smaller timestamp, or the epoch-start store value
// when no such writer exists (captured at build time, before any execution
// mutates the store). Because results are version-exact — consumers read
// the producing operation's recorded Result, never the live record — the
// final state is independent of the parallel schedule, and equals the
// sequential timestamp-order execution. The oracle package checks this.
//
// Abort contract. A transaction aborts if and only if its condition
// operation's function returns commit=false. Operations of an aborted
// transaction are value-preserving no-ops whose Result is their base value,
// keeping downstream temporal and parametric reads exact.
package tpg

import (
	"sort"
	"strconv"
	"sync/atomic"

	"morphstreamr/internal/types"
)

// OpNode is one TPG vertex: an operation plus its execution state.
type OpNode struct {
	Op  *types.Operation
	Txn *TxnNode

	// Chain links (TD edges).
	ChainPrev *OpNode
	ChainNext *OpNode
	Chain     *Chain

	// PDSrc[i] is the in-epoch producer of Op.Deps[i], or nil when the
	// value was captured from the epoch-start store into DepVals[i].
	PDSrc []*OpNode
	// PDOut lists operations whose DepVals await this node's Result.
	PDOut []*OpNode
	// CondSrc is the LD source (the transaction's condition op) for
	// non-condition operations of multi-op transactions.
	CondSrc *OpNode
	// LDOut lists same-transaction operations notified by this condition op.
	LDOut []*OpNode

	// DepVals holds the resolved dependency values, aligned with Op.Deps.
	// Entries with a nil PDSrc are filled at build time; the rest are
	// copied from the producer's Result when the scheduler resolves the
	// edge (or injected from the ParametricView during MSR recovery).
	DepVals []types.Value

	// Base is the value of Op.Key immediately before this operation; the
	// chain head reads it from the store, later links from ChainPrev.
	Base types.Value
	// Result is the value of Op.Key immediately after this operation.
	Result types.Value

	// pending counts unresolved incoming edges. The node becomes ready
	// when it reaches zero.
	pending atomic.Int32
	// executed is set exactly once, by the worker that ran the node.
	executed atomic.Bool
}

// Pending returns the current unresolved-dependency count.
func (n *OpNode) Pending() int32 { return n.pending.Load() }

// AddPending adjusts the unresolved-dependency count by delta and returns
// the new value. Schedulers use it to resolve edges; delta -1 reaching zero
// means the node is ready.
func (n *OpNode) AddPending(delta int32) int32 { return n.pending.Add(delta) }

// Executed reports whether the node has run.
func (n *OpNode) Executed() bool { return n.executed.Load() }

// MarkExecuted records that the node has run. It returns false if the node
// was already marked, which schedulers treat as a double-execution bug.
func (n *OpNode) MarkExecuted() bool { return n.executed.CompareAndSwap(false, true) }

// Ref returns a compact stable label for the node — "t<txn>.<idx>" — used
// by the recovery profiler to name timeline spans and stall blockers.
func (n *OpNode) Ref() string {
	return "t" + strconv.FormatUint(n.Op.TxnID, 10) + "." + strconv.Itoa(int(n.Op.Idx))
}

// TxnNode groups the operation nodes of one state transaction.
type TxnNode struct {
	Txn     *types.Txn
	Ops     []*OpNode
	aborted atomic.Bool
}

// Aborted reports whether the transaction's condition op failed its guard.
func (t *TxnNode) Aborted() bool { return t.aborted.Load() }

// SetAborted marks the transaction aborted. Only the condition operation's
// executor calls it; during MSR recovery, abort pushdown sets it before
// execution starts.
func (t *TxnNode) SetAborted() { t.aborted.Store(true) }

// Executed assembles the post-execution view consumed by postprocessing.
func (t *TxnNode) Executed() *types.ExecutedTxn {
	return t.ExecutedInto(&types.ExecutedTxn{})
}

// ExecutedInto fills view with the post-execution state of the transaction
// and returns it, reusing view's Results slice when it has capacity. The
// engine's postprocess loop threads one scratch view through all
// transactions of an epoch — valid because the App.Postprocess contract
// forbids retaining the view past the call.
func (t *TxnNode) ExecutedInto(view *types.ExecutedTxn) *types.ExecutedTxn {
	res := view.Results[:0]
	for _, op := range t.Ops {
		res = append(res, op.Result)
	}
	view.Txn, view.Results, view.Aborted = t.Txn, res, t.Aborted()
	return view
}

// Chain is the temporally ordered list of one key's operations.
type Chain struct {
	Key types.Key
	Ops []*OpNode // ascending timestamp
	// Owner is the worker (or recovery task) the chain is assigned to;
	// schedulers and partitioners set it before execution.
	Owner int
}

// Weight is the chain's operation count, the task weight used by load
// balancing and graph partitioning.
func (c *Chain) Weight() int { return len(c.Ops) }

// Graph is one epoch's TPG.
type Graph struct {
	Txns []*TxnNode
	// Chains maps each accessed key to its chain.
	Chains map[types.Key]*Chain
	// ChainList holds the chains in deterministic (key) order.
	ChainList []*Chain
	// NumOps is the total vertex count.
	NumOps int

	// Arenas back the node, transaction, and chain allocations. A fresh
	// graph grows them chunk by chunk; a recycled graph (see Builder)
	// rewinds and reuses them, eliminating steady-state allocation.
	nodes  arena[OpNode]
	txns   arena[TxnNode]
	chains arena[Chain]
}

// ReadBase supplies epoch-start values for keys without in-epoch producers.
// It is store.Get in practice; CaptureBases reads these values before
// execution starts so that store mutation cannot leak mid-epoch values
// into dependencies.
type ReadBase func(types.Key) types.Value

// Build constructs the TPG for one epoch's transactions and captures
// epoch-start base values. Transactions must arrive in ascending timestamp
// order (the spout's event order).
func Build(txns []*types.Txn, readBase ReadBase) *Graph {
	g := BuildStructure(txns)
	g.CaptureBases(readBase)
	return g
}

// BuildStructure constructs the TPG's vertices and edges without touching
// the store. The result is not executable until CaptureBases fills the
// epoch-start dependency values; the split lets a pipelined engine build
// epoch N+1's structure while epoch N is still mutating state, then
// capture bases at the epoch barrier.
func BuildStructure(txns []*types.Txn) *Graph {
	g := newGraph()
	g.build(txns)
	return g
}

func newGraph() *Graph {
	return &Graph{Chains: make(map[types.Key]*Chain)}
}

// newNode takes a (possibly recycled) node from the arena and resets it
// for op. Slice fields keep their capacity; everything else is zeroed.
// Fields are assigned individually because OpNode embeds atomics, which
// must not be copied wholesale.
func (g *Graph) newNode(op *types.Operation, tn *TxnNode) *OpNode {
	n := g.nodes.take()
	n.Op, n.Txn = op, tn
	n.ChainPrev, n.ChainNext, n.Chain = nil, nil, nil
	n.PDSrc = n.PDSrc[:0]
	n.PDOut = n.PDOut[:0]
	n.CondSrc = nil
	n.LDOut = n.LDOut[:0]
	n.DepVals = n.DepVals[:0]
	n.Base, n.Result = 0, 0
	n.pending.Store(0)
	n.executed.Store(false)
	return n
}

// build is the structural construction shared by Build, BuildStructure,
// and Builder.Build.
func (g *Graph) build(txns []*types.Txn) {
	if g.Txns == nil {
		g.Txns = make([]*TxnNode, 0, len(txns))
	}

	// Pass 1: create nodes and chains.
	for _, txn := range txns {
		tn := g.txns.take()
		tn.Txn = txn
		tn.aborted.Store(false)
		tn.Ops = resize(tn.Ops, len(txn.Ops))
		for i := range txn.Ops {
			op := &txn.Ops[i]
			n := g.newNode(op, tn)
			tn.Ops[i] = n
			ch, ok := g.Chains[op.Key]
			if !ok {
				ch = g.chains.take()
				ch.Key = op.Key
				ch.Ops = ch.Ops[:0]
				ch.Owner = 0
				g.Chains[op.Key] = ch
			}
			n.Chain = ch
			ch.Ops = append(ch.Ops, n)
			g.NumOps++
		}
		g.Txns = append(g.Txns, tn)
	}

	// Deterministic chain order for partitioners and schedulers.
	if g.ChainList == nil {
		g.ChainList = make([]*Chain, 0, len(g.Chains))
	}
	for _, ch := range g.Chains {
		g.ChainList = append(g.ChainList, ch)
	}
	sort.Slice(g.ChainList, func(i, j int) bool {
		return g.ChainList[i].Key.Less(g.ChainList[j].Key)
	})

	// Pass 2: TD edges. Transactions arrive in ascending TS, so each chain
	// is already sorted; assert-by-construction with a defensive sort only
	// if needed.
	for _, ch := range g.ChainList {
		if !sorted(ch.Ops) {
			sort.SliceStable(ch.Ops, func(i, j int) bool {
				return ch.Ops[i].Op.TS < ch.Ops[j].Op.TS
			})
		}
		for i := 1; i < len(ch.Ops); i++ {
			ch.Ops[i].ChainPrev = ch.Ops[i-1]
			ch.Ops[i-1].ChainNext = ch.Ops[i]
			ch.Ops[i].pending.Add(1)
		}
	}

	// Pass 3: LD and PD edges. Dependency values without an in-epoch
	// producer stay unfilled (PDSrc entry nil) until CaptureBases.
	for _, tn := range g.Txns {
		if len(tn.Ops) > 1 {
			cond := tn.Ops[0]
			for _, n := range tn.Ops[1:] {
				n.CondSrc = cond
				cond.LDOut = append(cond.LDOut, n)
				n.pending.Add(1)
			}
		}
		for _, n := range tn.Ops {
			if len(n.Op.Deps) == 0 {
				continue
			}
			n.PDSrc = resize(n.PDSrc, len(n.Op.Deps))
			n.DepVals = resize(n.DepVals, len(n.Op.Deps))
			for i, dk := range n.Op.Deps {
				src := latestEarlierWriter(g.Chains[dk], n.Op.TS)
				if src == nil {
					continue
				}
				n.PDSrc[i] = src
				src.PDOut = append(src.PDOut, n)
				n.pending.Add(1)
			}
		}
	}
}

// CaptureBases fills the dependency values that have no in-epoch producer
// with the store's current (epoch-start) content. It must run after the
// previous epoch's execution has fully finished and before this graph's
// execution starts — the epoch barrier of the pipelined engine.
func (g *Graph) CaptureBases(readBase ReadBase) {
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			for i, src := range n.PDSrc {
				if src == nil {
					n.DepVals[i] = readBase(n.Op.Deps[i])
				}
			}
		}
	}
}

// ResetExec rewinds the graph's execution state — dependency counters,
// executed flags, abort verdicts, base/result values — so the same
// structure can be executed again. Captured epoch-start dependency values
// are kept as-is, so a re-run against a mutated store is structurally
// identical but not value-identical to the first; benchmarks use it to
// measure pure scheduling cost without rebuilding the graph.
func (g *Graph) ResetExec() {
	for _, tn := range g.Txns {
		tn.aborted.Store(false)
		for _, n := range tn.Ops {
			n.pending.Store(0)
			n.executed.Store(false)
			n.Base, n.Result = 0, 0
		}
	}
	for _, ch := range g.ChainList {
		for i := 1; i < len(ch.Ops); i++ {
			ch.Ops[i].pending.Add(1)
		}
	}
	for _, tn := range g.Txns {
		if len(tn.Ops) > 1 {
			for _, n := range tn.Ops[1:] {
				n.pending.Add(1)
			}
		}
		for _, n := range tn.Ops {
			for _, src := range n.PDSrc {
				if src != nil {
					n.pending.Add(1)
				}
			}
		}
	}
}

// rewind clears the graph for reuse, keeping arena chunks, slice
// capacities, and the chain map's buckets.
func (g *Graph) rewind() {
	g.Txns = g.Txns[:0]
	clear(g.Chains)
	g.ChainList = g.ChainList[:0]
	g.NumOps = 0
	g.nodes.rewind()
	g.txns.rewind()
	g.chains.rewind()
}

// resize returns s with length n and zeroed content, reusing capacity.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

func sorted(ops []*OpNode) bool {
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Op.TS > ops[i].Op.TS {
			return false
		}
	}
	return true
}

// latestEarlierWriter returns the chain's last operation with a timestamp
// strictly below ts, or nil. Chains are sorted, so binary search applies.
func latestEarlierWriter(ch *Chain, ts uint64) *OpNode {
	if ch == nil || len(ch.Ops) == 0 {
		return nil
	}
	// First index with TS >= ts.
	i := sort.Search(len(ch.Ops), func(i int) bool { return ch.Ops[i].Op.TS >= ts })
	if i == 0 {
		return nil
	}
	return ch.Ops[i-1]
}

// Heads returns the nodes with no unresolved dependencies: the initial
// ready frontier for schedulers.
func (g *Graph) Heads() []*OpNode {
	var out []*OpNode
	for _, ch := range g.ChainList {
		for _, n := range ch.Ops {
			if n.Pending() == 0 {
				out = append(out, n)
			}
		}
	}
	return out
}

// ExecutedTxns assembles the post-execution views of all transactions in
// input order.
func (g *Graph) ExecutedTxns() []*types.ExecutedTxn {
	out := make([]*types.ExecutedTxn, len(g.Txns))
	for i, tn := range g.Txns {
		out[i] = tn.Executed()
	}
	return out
}
