package tpg

import (
	"fmt"

	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
)

// Fire executes one ready node: it resolves the node's base value (chain
// predecessor's result, or the store for chain heads), copies producer
// results into DepVals for resolved parametric edges, applies the operation
// function under the abort contract, records the Result, and writes it
// through to the store.
//
// Fire must only be called when the node's pending count is zero; it
// panics on double execution, which would indicate a scheduler bug rather
// than a recoverable condition.
func Fire(n *OpNode, st *store.Store) {
	if !n.MarkExecuted() {
		panic(fmt.Sprintf("tpg: node %v ts=%d executed twice", n.Op.Key, n.Op.TS))
	}
	if n.ChainPrev != nil {
		n.Base = n.ChainPrev.Result
	} else {
		n.Base = st.Get(n.Op.Key)
	}
	for i, src := range n.PDSrc {
		if src != nil {
			n.DepVals[i] = src.Result
		}
	}
	switch {
	case n.CondSrc != nil && n.Txn.Aborted():
		// Logical dependency: the condition op failed, so this operation
		// is a value-preserving no-op.
		n.Result = n.Base
	default:
		v, ok := types.Apply(n.Op.Fn, n.Base, n.DepVals, n.Op.Const)
		if ok {
			n.Result = v
		} else {
			n.Result = n.Base
			if n.Op.IsCondition() {
				n.Txn.SetAborted()
			}
		}
	}
	st.Set(n.Op.Key, n.Result)
}

// Resolve notifies the executed node's dependents and appends any that
// became ready (pending reached zero) to ready, returning the extended
// slice. The chain successor, if ready, is placed first so schedulers that
// pop from the front keep chain locality.
func Resolve(n *OpNode, ready []*OpNode) []*OpNode {
	if nx := n.ChainNext; nx != nil && nx.AddPending(-1) == 0 {
		ready = append(ready, nx)
	}
	for _, d := range n.LDOut {
		if d.AddPending(-1) == 0 {
			ready = append(ready, d)
		}
	}
	for _, d := range n.PDOut {
		if d.AddPending(-1) == 0 {
			ready = append(ready, d)
		}
	}
	return ready
}
