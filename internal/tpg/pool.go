package tpg

import (
	"sync"

	"morphstreamr/internal/types"
)

// arena is a chunked bump allocator. take hands out pointers into large
// backing slices (so they stay valid forever), and rewind makes every slot
// reusable without freeing the chunks — the caller is responsible for
// resetting a recycled slot before use.
type arena[T any] struct {
	chunks [][]T
	ci     int // current chunk
	i      int // next index within it
}

const (
	arenaFirstChunk = 256
	arenaMaxChunk   = 16384
)

func (a *arena[T]) take() *T {
	for {
		if a.ci < len(a.chunks) {
			c := a.chunks[a.ci]
			if a.i < len(c) {
				p := &c[a.i]
				a.i++
				return p
			}
			a.ci++
			a.i = 0
			continue
		}
		size := arenaFirstChunk
		if n := len(a.chunks); n > 0 {
			size = 2 * len(a.chunks[n-1])
			if size > arenaMaxChunk {
				size = arenaMaxChunk
			}
		}
		a.chunks = append(a.chunks, make([]T, size))
	}
}

func (a *arena[T]) rewind() {
	a.ci, a.i = 0, 0
}

// Builder recycles whole graphs across epochs. Build hands out a graph
// whose arenas, slices, and map buckets come from a previously released
// graph whenever one is available, so steady-state epoch construction
// allocates (almost) nothing; Release returns a graph once nothing
// references it any more — in the engine, after the fault-tolerance
// mechanism has sealed the epoch.
//
// Build and Release may be called from different goroutines (the pipelined
// engine builds on a background goroutine and releases on the barrier
// thread), but each is single-threaded with respect to itself, and a given
// graph must not be used after Release.
type Builder struct {
	mu   sync.Mutex
	free []*Graph
}

// NewBuilder creates an empty graph recycler.
func NewBuilder() *Builder { return &Builder{} }

// Build constructs the structural TPG for one epoch (see BuildStructure)
// on recycled memory. The caller must CaptureBases before executing it.
func (b *Builder) Build(txns []*types.Txn) *Graph {
	b.mu.Lock()
	var g *Graph
	if n := len(b.free); n > 0 {
		g = b.free[n-1]
		b.free = b.free[:n-1]
	}
	b.mu.Unlock()
	if g == nil {
		g = newGraph()
	}
	g.build(txns)
	return g
}

// Release returns a graph to the recycler. The graph, its nodes, and its
// chains must no longer be referenced by anyone.
func (b *Builder) Release(g *Graph) {
	if g == nil {
		return
	}
	g.rewind()
	b.mu.Lock()
	b.free = append(b.free, g)
	b.mu.Unlock()
}
